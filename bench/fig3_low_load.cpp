// Figure 3 -- Average execution time of a randomized application set
// with fewer processes than x86 cores (low load).  Lower is faster.
//
// Random sets of 1..5 applications drawn uniformly from the five
// benchmarks, 10 runs each, no background load.  Four systems: vanilla
// x86, vanilla ARM, always-FPGA, Xar-Trek.  Expected shape (paper
// §4.1): Xar-Trek at or near vanilla x86 (it mostly does not migrate,
// except the FPGA-favoured apps which win there), always-FPGA badly
// hurt whenever CG-A lands in the set, vanilla ARM slowest.
#include "bench/bench_util.hpp"
#include "exp/figures.hpp"

int main() {
  using namespace xartrek;

  exp::AvgExecConfig config;
  config.set_sizes = {1, 2, 3, 4, 5};
  config.total_processes = 0;  // low load: only the set itself
  config.systems = {apps::SystemMode::kVanillaX86,
                    apps::SystemMode::kVanillaArm,
                    apps::SystemMode::kAlwaysFpga,
                    apps::SystemMode::kXarTrek};
  config.runs = 10;
  config.seed = 2021;

  const auto result = exp::run_avg_exec_experiment(
      bench::suite(), bench::estimation().table, config);

  TextTable table(
      "Figure 3: Avg execution time (ms), low load (1-5 processes)");
  table.set_header({"set size", "Vanilla x86", "Vanilla ARM",
                    "Vanilla FPGA", "Xar-Trek", "Xar-Trek vs FPGA gain %"});
  for (int size : config.set_sizes) {
    const double x86 =
        result.cell(apps::SystemMode::kVanillaX86, size).mean_ms;
    const double arm =
        result.cell(apps::SystemMode::kVanillaArm, size).mean_ms;
    const double fpga =
        result.cell(apps::SystemMode::kAlwaysFpga, size).mean_ms;
    const double xar = result.cell(apps::SystemMode::kXarTrek, size).mean_ms;
    table.add_row({std::to_string(size), TextTable::num(x86, 0),
                   TextTable::num(arm, 0), TextTable::num(fpga, 0),
                   TextTable::num(xar, 0),
                   TextTable::num(bench::gain_pct(fpga, xar), 1)});
  }
  bench::print(table);
  std::cout << "Paper: Xar-Trek superior in all but two cases, gains vs\n"
               "always-FPGA between 50% and 75%; vanilla ARM always "
               "slowest.\n";
  return 0;
}
