// Figure 9 -- Xar-Trek's effectiveness for different percentages of
// compute-intensive applications, at a fixed load of 120 processes.
// Lower is better.
//
// Ten-application sets mixing CG-A (the non-compute-intensive pole:
// slowest on FPGA and ARM, Table 1) with Digit2000 (the
// compute-intensive pole: fastest on the FPGA), in seven ratios from
// 0% to 100% CG-A.  Expected shape (paper §4.4): Xar-Trek wins as long
// as compute-intensive applications dominate (26-32% gains), with the
// all-CG-A point the baseline-favoured extreme.  Our reproduction's
// deviation at that extreme is discussed in EXPERIMENTS.md: Algorithm 2
// (as published) still migrates CG-A to the 96-core ARM server at load
// 120, which beats a 20x-overcommitted x86 -- the paper's measured bars
// show vanilla winning there instead.
#include "bench/bench_util.hpp"
#include "exp/figures.hpp"

int main() {
  using namespace xartrek;

  exp::ProfitabilityConfig config;
  config.cg_counts = {0, 2, 4, 5, 6, 8, 10};
  config.set_size = 10;
  config.total_processes = 120;
  config.systems = {apps::SystemMode::kVanillaX86,
                    apps::SystemMode::kXarTrek};
  config.runs = 10;
  config.seed = 2021;

  const auto result = exp::run_profitability_experiment(
      bench::suite(), bench::estimation().table, config);

  TextTable table(
      "Figure 9: Avg execution time (ms) vs %CG-A in a 10-app set, 120 "
      "processes");
  table.set_header({"% CG-A (non-compute-intensive)", "Vanilla x86",
                    "Xar-Trek", "Xar-Trek gain %"});
  for (int cg : config.cg_counts) {
    const double x86 =
        result.cell(apps::SystemMode::kVanillaX86, cg).mean_ms;
    const double xar = result.cell(apps::SystemMode::kXarTrek, cg).mean_ms;
    table.add_row({std::to_string(cg * 10), TextTable::num(x86, 0),
                   TextTable::num(xar, 0),
                   TextTable::num(bench::gain_pct(x86, xar), 1)});
  }
  bench::print(table);
  std::cout << "Paper: gains of 26-32% while compute-intensive apps "
               "dominate; vanilla favoured only at 100% CG-A.\n";
  return 0;
}
