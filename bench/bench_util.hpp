// Shared plumbing for the reproduction harnesses: every bench binary
// compiles the five-benchmark suite, runs step G once for the seed
// thresholds, and prints paper-shaped tables.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "apps/benchmark_spec.hpp"
#include "common/table.hpp"
#include "exp/threshold_estimator.hpp"

namespace xartrek::bench {

/// The five paper benchmarks (shared by every harness).
inline const std::vector<apps::BenchmarkSpec>& suite() {
  static const std::vector<apps::BenchmarkSpec> specs =
      apps::paper_benchmarks();
  return specs;
}

/// Step-G output, computed once per process (deterministic).
inline const exp::EstimationResult& estimation() {
  static const exp::EstimationResult result = [] {
    std::cerr << "[bench] running step-G threshold estimation...\n";
    return exp::ThresholdEstimator().estimate(suite());
  }();
  return result;
}

/// Percentage gain of `ours` over `baseline` for lower-is-better data.
inline double gain_pct(double baseline, double ours) {
  return 100.0 * (baseline - ours) / baseline;
}

inline void print(const TextTable& table) {
  std::cout << table.render() << "\n";
}

}  // namespace xartrek::bench
