// Figure 4 -- Average execution time of randomized application sets at
// medium load: 60 total processes (more than the 6 x86 cores, fewer
// than the 102 total cores).  Background load comes from NPB MG-B
// instances, as in the paper.  Lower is faster.
//
// Expected shape: Xar-Trek almost always beats vanilla x86, with gains
// up to ~88% (paper §4.1).
#include "bench/bench_util.hpp"
#include "exp/figures.hpp"

int main() {
  using namespace xartrek;

  exp::AvgExecConfig config;
  config.set_sizes = {5, 10, 15, 20, 25};
  config.total_processes = 60;
  config.systems = {apps::SystemMode::kVanillaX86,
                    apps::SystemMode::kVanillaArm,
                    apps::SystemMode::kAlwaysFpga,
                    apps::SystemMode::kXarTrek};
  config.runs = 10;
  config.seed = 2021;

  const auto result = exp::run_avg_exec_experiment(
      bench::suite(), bench::estimation().table, config);

  TextTable table(
      "Figure 4: Avg execution time (ms), medium load (60 processes)");
  table.set_header({"set size", "Vanilla x86", "Vanilla ARM",
                    "Vanilla FPGA", "Xar-Trek", "Xar-Trek vs x86 gain %"});
  for (int size : config.set_sizes) {
    const double x86 =
        result.cell(apps::SystemMode::kVanillaX86, size).mean_ms;
    const double arm =
        result.cell(apps::SystemMode::kVanillaArm, size).mean_ms;
    const double fpga =
        result.cell(apps::SystemMode::kAlwaysFpga, size).mean_ms;
    const double xar = result.cell(apps::SystemMode::kXarTrek, size).mean_ms;
    table.add_row({std::to_string(size), TextTable::num(x86, 0),
                   TextTable::num(arm, 0), TextTable::num(fpga, 0),
                   TextTable::num(xar, 0),
                   TextTable::num(bench::gain_pct(x86, xar), 1)});
  }
  bench::print(table);
  std::cout << "Paper: Xar-Trek gains over vanilla x86 between 1% and 88% "
               "at medium load.\n";
  return 0;
}
