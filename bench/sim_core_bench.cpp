// Hot-path benchmark for the event engine and the scheduler wire codec.
//
// Drives >= 1M events through the pooled simulation core and >= 100k
// placement round-trips through the single-pass protocol codec, and
// compares both against faithful replicas of the pre-refactor designs
// (shared_ptr-per-event priority_queue core; two-BinaryWriter concat
// framing).  A global counting-allocator hook measures bytes and calls
// allocated per event/request.  Results land in BENCH_sim_core.json so
// future perf PRs have a tracked trajectory (schema: docs/perf.md).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <new>
#include <queue>
#include <string>
#include <type_traits>
#include <vector>

#include "common/binary_io.hpp"
#include "common/cpu_time.hpp"
#include "common/time.hpp"
#include "runtime/protocol.hpp"
#include "sim/shard.hpp"
#include "sim/simulation.hpp"

#include "bench/alloc_hook.hpp"

namespace xartrek::bench {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// CI smoke mode: same shapes, reduced iteration counts (the
/// bench-smoke workflow compares machine-neutral ratios, so shorter
/// runs keep the gate fast without losing signal).
bool smoke_mode() { return std::getenv("XARTREK_BENCH_SMOKE") != nullptr; }

// --- legacy event engine (the seed design, copied verbatim) ----------------

class LegacySimulation {
 public:
  using Callback = std::function<void()>;

  [[nodiscard]] TimePoint now() const { return now_; }

  /// The seed's EventHandle: a refcounted liveness flag.
  class Handle {
   public:
    Handle() = default;
    explicit Handle(std::shared_ptr<bool> alive) : alive_(std::move(alive)) {}
    void cancel() {
      if (alive_) *alive_ = false;
    }

   private:
    std::shared_ptr<bool> alive_;
  };

  Handle schedule_at(TimePoint t, Callback cb) {
    XAR_EXPECTS(t >= now_);
    XAR_EXPECTS(cb != nullptr);
    auto alive = std::make_shared<bool>(true);
    queue_.push(Event{t, next_seq_++, alive, std::move(cb)});
    return Handle{std::move(alive)};
  }
  Handle schedule_in(Duration d, Callback cb) {
    XAR_EXPECTS(d >= Duration::zero());
    return schedule_at(now_ + d, std::move(cb));
  }

  std::size_t run() {
    std::size_t n = 0;
    while (step(TimePoint::at_ms(std::numeric_limits<double>::infinity()))) {
      ++n;
    }
    return n;
  }

 private:
  struct Event {
    TimePoint at;
    std::uint64_t seq;
    std::shared_ptr<bool> alive;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  bool step(TimePoint horizon) {
    while (!queue_.empty()) {
      const Event& top = queue_.top();
      if (top.at > horizon) return false;
      Event ev{top.at, top.seq, top.alive,
               std::move(const_cast<Event&>(top).cb)};
      queue_.pop();
      if (!*ev.alive) continue;
      XAR_ASSERT(ev.at >= now_);
      now_ = ev.at;
      *ev.alive = false;
      ev.cb();
      return true;
    }
    return false;
  }

  TimePoint now_ = TimePoint::origin();
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

// --- legacy protocol framing (two writers + concat) ------------------------

std::vector<std::byte> legacy_encode_request(
    const runtime::PlacementRequestMsg& m) {
  BinaryWriter payload;
  payload.str(m.app);
  payload.str(m.kernel);
  payload.u32(m.pid);
  BinaryWriter framed;
  framed.u16(runtime::kProtocolMagic);
  framed.u8(runtime::kProtocolVersion);
  framed.u8(static_cast<std::uint8_t>(runtime::MessageType::kPlacementRequest));
  framed.u32(static_cast<std::uint32_t>(payload.size()));
  auto out = framed.take();
  auto body = payload.take();
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

std::vector<std::byte> legacy_encode_reply(
    const runtime::PlacementReplyMsg& m) {
  BinaryWriter payload;
  payload.u8(static_cast<std::uint8_t>(m.target));
  payload.u8(m.wait_for_fpga ? 1 : 0);
  payload.i32(m.observed_load);
  BinaryWriter framed;
  framed.u16(runtime::kProtocolMagic);
  framed.u8(runtime::kProtocolVersion);
  framed.u8(static_cast<std::uint8_t>(runtime::MessageType::kPlacementReply));
  framed.u32(static_cast<std::uint32_t>(payload.size()));
  auto out = framed.take();
  auto body = payload.take();
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

// --- workloads -------------------------------------------------------------

/// Self-rescheduling chain: each fired event schedules its successor,
/// so the pool/queue holds `chains` events in steady state while
/// `total` events execute overall.  The callback captures one pointer
/// and fits the engines' small-object buffers.  With `cancelling` set,
/// every firing also schedules a decoy event and cancels the previous
/// decoy -- the cancel-and-reschedule pattern PsResource and the load
/// monitor drive on every submit/tick, which exercises husk reaping.
template <typename Sim, typename Handle>
struct Churn {
  Sim* sim = nullptr;
  std::uint64_t budget = 0;
  std::uint64_t fired = 0;
  double period_ms = 1.0;
  bool cancelling = false;
  Handle decoy;

  void fire() {
    ++fired;
    if (cancelling) decoy.cancel();
    if (budget == 0) return;
    --budget;
    if (cancelling) {
      decoy = sim->schedule_in(Duration::ms(period_ms * 5.0), [] {});
    }
    sim->schedule_in(Duration::ms(period_ms), [this] { fire(); });
  }
};

struct ChurnResult {
  double seconds = 0;
  std::uint64_t events = 0;
  AllocSnapshot allocs{};  // during the measured (steady-state) phase
};

template <typename Sim, typename Handle>
ChurnResult run_churn(std::uint64_t total_events, std::uint64_t warmup,
                      std::size_t chains, bool cancelling) {
  Sim sim;
  std::vector<Churn<Sim, Handle>> lanes(chains);
  const std::uint64_t per_lane = (total_events + warmup) / chains;
  for (std::size_t i = 0; i < chains; ++i) {
    lanes[i].sim = &sim;
    lanes[i].budget = per_lane - 1;
    lanes[i].period_ms = 0.25 + 0.5 * static_cast<double>(i % 7);
    lanes[i].cancelling = cancelling;
    Churn<Sim, Handle>* lane = &lanes[i];
    sim.schedule_in(Duration::ms(lane->period_ms), [lane] { lane->fire(); });
  }
  // Warm the pool/queue/function storage, then measure the steady
  // state.  The legacy replica has no single-step API; it is measured
  // from cold, which only helps it on the allocation metric (its
  // per-event shared_ptr allocations dwarf one-time queue growth).
  if constexpr (std::is_same_v<Sim, sim::Simulation>) {
    std::uint64_t stepped = 0;
    while (stepped < warmup && sim.step_one(TimePoint::at_ms(1e18))) {
      ++stepped;
    }
  }
  const AllocSnapshot before = alloc_snapshot();
  const auto start = Clock::now();
  const std::size_t ran = sim.run();
  const double secs = seconds_since(start);
  const AllocSnapshot after = alloc_snapshot();
  ChurnResult r;
  r.seconds = secs;
  r.events = ran;
  r.allocs = {after.calls - before.calls, after.bytes - before.bytes};
  return r;
}

struct ProtoResult {
  double seconds = 0;
  std::uint64_t round_trips = 0;
  AllocSnapshot allocs{};
};

ProtoResult run_protocol_pooled(std::uint64_t round_trips) {
  runtime::PlacementRequestMsg request{"facedet320", "KNL_HW_FD320", 4242};
  runtime::PlacementReplyMsg reply{runtime::Target::kFpga, false, 17};
  std::vector<std::byte> scratch;
  // Warm the scratch buffer and the decode path once.
  runtime::encode_message_into(request, scratch);
  (void)runtime::decode_message(scratch);
  std::uint64_t decoded = 0;
  const AllocSnapshot before = alloc_snapshot();
  const auto start = Clock::now();
  for (std::uint64_t i = 0; i < round_trips; ++i) {
    runtime::encode_message_into(request, scratch);
    const auto req = runtime::decode_message(scratch);
    decoded += std::get<runtime::PlacementRequestMsg>(req).pid != 0;
    runtime::encode_message_into(reply, scratch);
    const auto rep = runtime::decode_message(scratch);
    decoded +=
        std::get<runtime::PlacementReplyMsg>(rep).observed_load != 0;
  }
  const double secs = seconds_since(start);
  const AllocSnapshot after = alloc_snapshot();
  if (decoded != 2 * round_trips) std::abort();  // defeat dead-code elim
  ProtoResult r;
  r.seconds = secs;
  r.round_trips = round_trips;
  r.allocs = {after.calls - before.calls, after.bytes - before.bytes};
  return r;
}

ProtoResult run_protocol_view(std::uint64_t round_trips) {
  // Borrowed decode: same framed round trips, but the decode side hands
  // back string_views into the frame instead of owning strings.
  runtime::PlacementRequestMsg request{"facedet320", "KNL_HW_FD320", 4242};
  runtime::PlacementReplyMsg reply{runtime::Target::kFpga, false, 17};
  std::vector<std::byte> scratch;
  runtime::encode_message_into(request, scratch);
  (void)runtime::decode_message_view(scratch);
  std::uint64_t decoded = 0;
  const AllocSnapshot before = alloc_snapshot();
  const auto start = Clock::now();
  for (std::uint64_t i = 0; i < round_trips; ++i) {
    runtime::encode_message_into(request, scratch);
    const auto req = runtime::decode_message_view(scratch);
    decoded += std::get<runtime::PlacementRequestView>(req).pid != 0;
    runtime::encode_message_into(reply, scratch);
    const auto rep = runtime::decode_message_view(scratch);
    decoded +=
        std::get<runtime::PlacementReplyMsg>(rep).observed_load != 0;
  }
  const double secs = seconds_since(start);
  const AllocSnapshot after = alloc_snapshot();
  if (decoded != 2 * round_trips) std::abort();
  ProtoResult r;
  r.seconds = secs;
  r.round_trips = round_trips;
  r.allocs = {after.calls - before.calls, after.bytes - before.bytes};
  return r;
}

ProtoResult run_protocol_legacy(std::uint64_t round_trips) {
  runtime::PlacementRequestMsg request{"facedet320", "KNL_HW_FD320", 4242};
  runtime::PlacementReplyMsg reply{runtime::Target::kFpga, false, 17};
  std::uint64_t decoded = 0;
  const AllocSnapshot before = alloc_snapshot();
  const auto start = Clock::now();
  for (std::uint64_t i = 0; i < round_trips; ++i) {
    const auto wire_req = legacy_encode_request(request);
    const auto req = runtime::decode_message(wire_req);
    decoded += std::get<runtime::PlacementRequestMsg>(req).pid != 0;
    const auto wire_rep = legacy_encode_reply(reply);
    const auto rep = runtime::decode_message(wire_rep);
    decoded +=
        std::get<runtime::PlacementReplyMsg>(rep).observed_load != 0;
  }
  const double secs = seconds_since(start);
  const AllocSnapshot after = alloc_snapshot();
  if (decoded != 2 * round_trips) std::abort();
  ProtoResult r;
  r.seconds = secs;
  r.round_trips = round_trips;
  r.allocs = {after.calls - before.calls, after.bytes - before.bytes};
  return r;
}

// --- sharded engine ---------------------------------------------------------

/// The multi-queue scaling workload: `total_chains` self-rescheduling
/// lanes spread across the shards, every `post_every`-th firing handing
/// a token to the next shard over a 2 ms cross-shard latency (>= the
/// 1 ms epoch).  The single-queue baseline runs the identical workload
/// on one plain Simulation (tokens become local 2 ms events), so the
/// comparison isolates the engine, not the model.
constexpr double kShardEpochMs = 1.0;
constexpr double kTokenLatencyMs = 2.0;
constexpr std::uint32_t kPostEvery = 16;

struct ShardLane {
  sim::ShardedSimulation* ssim = nullptr;
  sim::Simulation* local = nullptr;
  sim::ShardId home = 0;
  sim::ShardId next_shard = 0;
  std::uint64_t budget = 0;
  std::uint64_t fired = 0;
  double period_ms = 1.0;

  void fire() {
    ++fired;
    if (budget == 0) return;
    --budget;
    if (fired % kPostEvery == 0) {
      ssim->post(home, next_shard,
                 local->now() + Duration::ms(kTokenLatencyMs), [] {});
    }
    local->schedule_in(Duration::ms(period_ms), [this] { fire(); });
  }
};

struct ShardResult {
  double wall_seconds = 0;
  double busy_seconds = 0;  ///< summed per-shard thread-CPU time
  std::uint64_t events = 0;
  std::uint64_t posts = 0;
  std::uint64_t stalls = 0;
  /// Sum over shards of events_i / busy_i: aggregate processing
  /// capacity with one core per shard.  On an unloaded multicore host
  /// this converges to wall_events_per_sec.
  double aggregate_events_per_sec = 0;
};

ShardResult run_sharded(std::size_t shards, bool parallel,
                        std::uint64_t total_events,
                        std::size_t total_chains) {
  sim::ShardedSimulation ssim(sim::ShardedSimulation::Options{
      shards, Duration::ms(kShardEpochMs), 4096, parallel});
  std::vector<ShardLane> lanes(total_chains);
  const std::uint64_t per_lane = total_events / total_chains;
  for (std::size_t s = 0; s < shards; ++s) {
    ssim.shard(static_cast<sim::ShardId>(s))
        .reserve_events(2 * total_chains / shards + 64);
  }
  for (std::size_t i = 0; i < total_chains; ++i) {
    ShardLane& lane = lanes[i];
    lane.ssim = &ssim;
    lane.home = static_cast<sim::ShardId>(i % shards);
    lane.next_shard = static_cast<sim::ShardId>((i + 1) % shards);
    lane.local = &ssim.shard(lane.home);
    lane.budget = per_lane - 1;
    lane.period_ms = 0.25 + 0.5 * static_cast<double>(i % 7);
    ShardLane* p = &lane;
    lane.local->schedule_in(Duration::ms(lane.period_ms),
                            [p] { p->fire(); });
  }
  const auto start = Clock::now();
  const std::size_t ran = ssim.run();
  ShardResult r;
  r.wall_seconds = seconds_since(start);
  r.events = ran;
  for (sim::ShardId s = 0; s < ssim.shard_count(); ++s) {
    const sim::ShardStats& st = ssim.stats(s);
    r.busy_seconds += st.busy_seconds;
    r.posts += st.posts;
    r.stalls += st.backpressure_stalls;
    if (st.busy_seconds > 0.0) {
      r.aggregate_events_per_sec +=
          static_cast<double>(st.executed) / st.busy_seconds;
    }
  }
  return r;
}

ShardResult run_single_queue(std::uint64_t total_events,
                             std::size_t total_chains) {
  // The same lanes and token pattern on today's single global queue.
  sim::Simulation sim;
  struct Lane {
    sim::Simulation* sim = nullptr;
    std::uint64_t budget = 0;
    std::uint64_t fired = 0;
    double period_ms = 1.0;
    void fire() {
      ++fired;
      if (budget == 0) return;
      --budget;
      if (fired % kPostEvery == 0) {
        sim->schedule_in(Duration::ms(kTokenLatencyMs), [] {});
      }
      sim->schedule_in(Duration::ms(period_ms), [this] { fire(); });
    }
  };
  std::vector<Lane> lanes(total_chains);
  const std::uint64_t per_lane = total_events / total_chains;
  sim.reserve_events(2 * total_chains + 64);
  for (std::size_t i = 0; i < total_chains; ++i) {
    lanes[i].sim = &sim;
    lanes[i].budget = per_lane - 1;
    lanes[i].period_ms = 0.25 + 0.5 * static_cast<double>(i % 7);
    Lane* p = &lanes[i];
    sim.schedule_in(Duration::ms(p->period_ms), [p] { p->fire(); });
  }
  const double cpu0 = thread_cpu_seconds();
  const auto start = Clock::now();
  const std::size_t ran = sim.run();
  ShardResult r;
  r.wall_seconds = seconds_since(start);
  r.busy_seconds = thread_cpu_seconds() - cpu0;
  r.events = ran;
  r.aggregate_events_per_sec =
      static_cast<double>(ran) / r.busy_seconds;
  return r;
}

// --- report ----------------------------------------------------------------

void emit_engine(std::ostream& os, const char* key, const ChurnResult& r) {
  os << "    \"" << key << "\": {\n"
     << "      \"seconds\": " << r.seconds << ",\n"
     << "      \"events_per_sec\": "
     << static_cast<double>(r.events) / r.seconds << ",\n"
     << "      \"alloc_calls_per_event\": "
     << static_cast<double>(r.allocs.calls) / static_cast<double>(r.events)
     << ",\n"
     << "      \"alloc_bytes_per_event\": "
     << static_cast<double>(r.allocs.bytes) / static_cast<double>(r.events)
     << "\n    }";
}

void emit_proto(std::ostream& os, const char* key, const ProtoResult& r) {
  os << "    \"" << key << "\": {\n"
     << "      \"seconds\": " << r.seconds << ",\n"
     << "      \"requests_per_sec\": "
     << static_cast<double>(r.round_trips) / r.seconds << ",\n"
     << "      \"alloc_calls_per_request\": "
     << static_cast<double>(r.allocs.calls) /
            static_cast<double>(r.round_trips)
     << ",\n"
     << "      \"alloc_bytes_per_request\": "
     << static_cast<double>(r.allocs.bytes) /
            static_cast<double>(r.round_trips)
     << "\n    }";
}

double rate(const ChurnResult& r) {
  return static_cast<double>(r.events) / r.seconds;
}

void emit_scenario(std::ostream& os, const char* key,
                   const ChurnResult& pooled, const ChurnResult& legacy) {
  os << "    \"" << key << "\": {\n  ";
  emit_engine(os, "pooled", pooled);
  os << ",\n  ";
  emit_engine(os, "legacy", legacy);
  os << ",\n      \"speedup\": " << rate(pooled) / rate(legacy)
     << "\n    }";
}

void emit_sharded(std::ostream& os, const char* key, const ShardResult& r) {
  os << "    \"" << key << "\": {\n"
     << "      \"wall_seconds\": " << r.wall_seconds << ",\n"
     << "      \"busy_seconds\": " << r.busy_seconds << ",\n"
     << "      \"events\": " << r.events << ",\n"
     << "      \"wall_events_per_sec\": "
     << static_cast<double>(r.events) / r.wall_seconds << ",\n"
     << "      \"aggregate_events_per_sec\": " << r.aggregate_events_per_sec
     << ",\n"
     << "      \"posts\": " << r.posts << ",\n"
     << "      \"backpressure_stalls\": " << r.stalls << "\n    }";
}

int bench_main() {
  const bool smoke = smoke_mode();
  const std::uint64_t kEvents = smoke ? 100'000 : 1'000'000;
  const std::uint64_t kWarmup = smoke ? 5'000 : 50'000;
  constexpr std::size_t kChains = 256;
  // The codec section is microseconds-per-10k cheap; smoke mode keeps
  // it at full scale so its speedup ratios stay out of the noise floor.
  const std::uint64_t kRoundTrips = 100'000;
  const std::uint64_t kShardEvents = smoke ? 250'000 : 1'500'000;
  // The sharded section models the wide regime the ROADMAP targets:
  // 4x the chain count of the churn scenarios, so each epoch carries
  // enough work to amortize the boundary synchronization.
  constexpr std::size_t kShardChains = 1024;

  using Pooled = sim::Simulation;
  using PooledHandle = sim::Simulation::EventHandle;

  std::cerr << "[sim_core_bench] steady churn: " << kEvents
            << " events across " << kChains << " chains...\n";
  // Every timed section runs twice and keeps the faster measurement:
  // the CI gate compares ratios of these numbers, and "best of N" is
  // the standard way to keep a neighbor's noisy timeslice out of them.
  auto best2 = [](auto f) {
    const auto a = f();
    const auto b = f();
    return a.seconds <= b.seconds ? a : b;
  };
  const auto pooled_steady = best2([&] {
    return run_churn<Pooled, PooledHandle>(kEvents, kWarmup, kChains, false);
  });
  const auto legacy_steady = best2([&] {
    return run_churn<LegacySimulation, LegacySimulation::Handle>(
        kEvents, kWarmup, kChains, false);
  });
  std::cerr << "[sim_core_bench] cancel churn (decoy + cancel per fire)...\n";
  const auto pooled_cancel = best2([&] {
    return run_churn<Pooled, PooledHandle>(kEvents, kWarmup, kChains, true);
  });
  const auto legacy_cancel = best2([&] {
    return run_churn<LegacySimulation, LegacySimulation::Handle>(
        kEvents, kWarmup, kChains, true);
  });

  std::cerr << "[sim_core_bench] protocol: " << kRoundTrips
            << " placement round-trips...\n";
  const auto proto_pooled = best2([&] {
    return run_protocol_pooled(kRoundTrips);
  });
  const auto proto_view = best2([&] { return run_protocol_view(kRoundTrips); });
  const auto proto_legacy = best2([&] {
    return run_protocol_legacy(kRoundTrips);
  });

  std::cerr << "[sim_core_bench] sharded engine: " << kShardEvents
            << " events across " << kShardChains << " chains...\n";
  // Best of two per config: thread scheduling on an oversubscribed
  // host occasionally steals a big slice of one run, and the gated
  // scaling ratios should reflect the engine, not the neighbor.
  auto best_sharded = [&](std::size_t shards, bool parallel) {
    const auto a = run_sharded(shards, parallel, kShardEvents,
                               kShardChains);
    const auto b = run_sharded(shards, parallel, kShardEvents,
                               kShardChains);
    return a.aggregate_events_per_sec >= b.aggregate_events_per_sec ? a
                                                                    : b;
  };
  // Selected by the same metric the gated ratios divide by, so the
  // noise filter actually protects the denominator.
  const auto single_a = run_single_queue(kShardEvents, kShardChains);
  const auto single_b = run_single_queue(kShardEvents, kShardChains);
  const auto shard_single =
      single_a.aggregate_events_per_sec >= single_b.aggregate_events_per_sec
          ? single_a
          : single_b;
  const auto shard_1 = best_sharded(1, /*parallel=*/false);
  const auto shard_2 = best_sharded(2, /*parallel=*/true);
  const auto shard_4 = best_sharded(4, /*parallel=*/true);
  // Ratios compare CPU-time-based throughput (events per busy second):
  // per-event cost, unpolluted by descheduling on a shared host.  The
  // per-config wall numbers stay in the JSON for the ground truth.
  const double single_rate = shard_single.aggregate_events_per_sec;
  const double one_shard_ratio =
      shard_1.aggregate_events_per_sec / single_rate;
  const double aggregate_speedup_4 =
      shard_4.aggregate_events_per_sec / single_rate;
  const double wall_speedup_4 =
      (static_cast<double>(shard_4.events) / shard_4.wall_seconds) /
      (static_cast<double>(shard_single.events) /
       shard_single.wall_seconds);

  // Aggregate event throughput across both scenarios (equal-events
  // weighting: total fired events over total wall time per engine).
  const double pooled_rate =
      static_cast<double>(pooled_steady.events + pooled_cancel.events) /
      (pooled_steady.seconds + pooled_cancel.seconds);
  const double legacy_rate =
      static_cast<double>(legacy_steady.events + legacy_cancel.events) /
      (legacy_steady.seconds + legacy_cancel.seconds);
  const double event_speedup = pooled_rate / legacy_rate;
  const double proto_speedup =
      (static_cast<double>(proto_pooled.round_trips) / proto_pooled.seconds) /
      (static_cast<double>(proto_legacy.round_trips) / proto_legacy.seconds);

  std::ofstream out("BENCH_sim_core.json");
  out.precision(6);
  out << "{\n  \"bench\": \"sim_core\",\n  \"events\": {\n"
      << "    \"count_per_scenario\": " << pooled_steady.events << ",\n"
      << "    \"chains\": " << kChains << ",\n";
  emit_scenario(out, "steady_churn", pooled_steady, legacy_steady);
  out << ",\n";
  emit_scenario(out, "cancel_churn", pooled_cancel, legacy_cancel);
  out << ",\n    \"pooled_events_per_sec\": " << pooled_rate
      << ",\n    \"legacy_events_per_sec\": " << legacy_rate
      << ",\n    \"speedup\": " << event_speedup << "\n  },\n"
      << "  \"protocol\": {\n"
      << "    \"round_trips\": " << kRoundTrips << ",\n";
  emit_proto(out, "single_pass", proto_pooled);
  out << ",\n";
  emit_proto(out, "borrowed_view", proto_view);
  out << ",\n";
  emit_proto(out, "legacy_concat", proto_legacy);
  out << ",\n    \"speedup\": " << proto_speedup
      << ",\n    \"borrowed_speedup\": "
      << (static_cast<double>(proto_view.round_trips) / proto_view.seconds) /
             (static_cast<double>(proto_legacy.round_trips) /
              proto_legacy.seconds)
      << "\n  },\n"
      << "  \"sharded\": {\n"
      << "    \"total_events\": " << kShardEvents << ",\n"
      << "    \"chains\": " << kShardChains << ",\n"
      << "    \"epoch_ms\": " << kShardEpochMs << ",\n";
  emit_sharded(out, "single_queue", shard_single);
  out << ",\n";
  emit_sharded(out, "shards_1", shard_1);
  out << ",\n";
  emit_sharded(out, "shards_2", shard_2);
  out << ",\n";
  emit_sharded(out, "shards_4", shard_4);
  out << ",\n    \"ratio_1shard_vs_single_queue\": " << one_shard_ratio
      << ",\n    \"aggregate_speedup_4_shards\": " << aggregate_speedup_4
      << ",\n    \"wall_speedup_4_shards\": " << wall_speedup_4
      << "\n  }\n}\n";
  out.close();

  std::cerr << "[sim_core_bench] events/sec pooled=" << pooled_rate
            << " legacy=" << legacy_rate << " speedup=" << event_speedup
            << "\n"
            << "[sim_core_bench] steady-state allocs/event pooled="
            << static_cast<double>(pooled_steady.allocs.calls +
                                   pooled_cancel.allocs.calls) /
                   static_cast<double>(pooled_steady.events +
                                      pooled_cancel.events)
            << " legacy="
            << static_cast<double>(legacy_steady.allocs.calls +
                                   legacy_cancel.allocs.calls) /
                   static_cast<double>(legacy_steady.events +
                                      legacy_cancel.events)
            << "\n"
            << "[sim_core_bench] requests/sec single_pass="
            << static_cast<double>(proto_pooled.round_trips) /
                   proto_pooled.seconds
            << " legacy=" << static_cast<double>(proto_legacy.round_trips) /
                                 proto_legacy.seconds
            << " speedup=" << proto_speedup << "\n"
            << "[sim_core_bench] sharded: single_queue=" << single_rate
            << " ev/s, 1-shard ratio=" << one_shard_ratio
            << ", 4-shard aggregate="
            << shard_4.aggregate_events_per_sec
            << " ev/s (speedup " << aggregate_speedup_4 << ", wall "
            << wall_speedup_4 << ")\n"
            << "[sim_core_bench] wrote BENCH_sim_core.json\n";
  return 0;
}

}  // namespace
}  // namespace xartrek::bench

int main() { return xartrek::bench::bench_main(); }
