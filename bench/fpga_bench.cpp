// FPGA virtualization benchmark: slot-carved device vs whole-image
// residency under multi-tenant contention.
//
// Runs exp::run_fpga_contention -- K tenants per cell contending for
// one card, hot tenant spilling demand around the cell ring -- in three
// configurations over the identical arrival schedule:
//
//   * slot mode, serial engine     (the virtualized device + scheduler)
//   * slot mode, parallel engine   (trace must be bitwise identical)
//   * whole-image baseline, serial (one tenant resident at a time,
//                                   equal total area budget)
//
// The gated headline is speedup_vs_whole_image: aggregate on-fabric
// completions with slots over completions with whole-image swaps.  The
// ISSUE acceptance bar is >= 2x; the committed baselines sit well
// above it.  trace_identical pins the PR 5/6 determinism contract with
// the slot scheduler evicting and replicating mid-run, and
// slot_activity pins that the run actually exercised both policy arms
// (a trace-identity claim over an idle scheduler would be vacuous).
// All gated numbers are simulated-time counts -- deterministic and
// machine-neutral; wall-clock engine rates are reported ungated.
// Results land in BENCH_fpga.json (schema: docs/perf.md).
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "exp/contention.hpp"

namespace xartrek::bench {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

bool smoke_mode() { return std::getenv("XARTREK_BENCH_SMOKE") != nullptr; }

struct Run {
  exp::ContentionResult result;
  double wall_seconds = 0;
};

Run timed(const exp::ContentionSpec& spec) {
  const auto start = Clock::now();
  Run r;
  r.result = exp::run_fpga_contention(spec);
  r.wall_seconds = seconds_since(start);
  return r;
}

void emit_result(std::ofstream& out, const char* key, const Run& run) {
  const exp::ContentionResult& r = run.result;
  out << "    \"" << key << "\": {\n";
  out << "      \"arrivals\": " << r.arrivals << ",\n";
  out << "      \"fpga_completions\": " << r.fpga_completions << ",\n";
  out << "      \"fallbacks\": " << r.fallbacks << ",\n";
  out << "      \"reconfigurations\": " << r.reconfigurations << ",\n";
  out << "      \"evictions\": " << r.evictions << ",\n";
  out << "      \"replications\": " << r.replications << ",\n";
  out << "      \"completions_per_sim_sec\": " << r.completions_per_sim_sec
      << ",\n";
  out << "      \"executed_events\": " << r.executed_events << ",\n";
  out << "      \"wall_seconds\": " << run.wall_seconds << "\n";
  out << "    }";
}

int bench_main() {
  const bool smoke = smoke_mode();

  exp::ContentionSpec spec;
  spec.cells = 2;
  spec.tenants = 6;
  spec.slots = 4;
  spec.span = smoke ? Duration::ms(500.0) : Duration::seconds(2.0);

  std::cerr << "[fpga_bench] contention: " << spec.cells << " cells x "
            << spec.tenants << " tenants, " << spec.slots << " slots, "
            << spec.span.to_ms() << " ms span"
            << (smoke ? " (smoke)" : "") << "\n";

  exp::ContentionSpec serial = spec;
  serial.parallel = false;
  const Run slots_serial = timed(serial);

  exp::ContentionSpec parallel = spec;
  parallel.parallel = true;
  const Run slots_parallel = timed(parallel);

  exp::ContentionSpec whole = spec;
  whole.slots = 0;
  whole.parallel = false;
  const Run whole_image = timed(whole);

  const double speedup =
      whole_image.result.fpga_completions > 0
          ? static_cast<double>(slots_serial.result.fpga_completions) /
                static_cast<double>(whole_image.result.fpga_completions)
          : 0.0;
  const int trace_identical =
      (slots_serial.result.trace_hash == slots_parallel.result.trace_hash &&
       slots_serial.result.fpga_completions ==
           slots_parallel.result.fpga_completions)
          ? 1
          : 0;
  // Both policy arms must have fired for the determinism claim to mean
  // anything: evictions (cold tenant displaced) and replications (hot
  // tenant grown) mid-run.
  const int slot_activity = (slots_serial.result.evictions > 0 &&
                             slots_serial.result.replications > 0)
                                ? 1
                                : 0;

  std::cerr << "[fpga_bench] slots: "
            << slots_serial.result.fpga_completions << " completions ("
            << slots_serial.result.evictions << " evictions, "
            << slots_serial.result.replications << " replications); "
            << "whole-image: " << whole_image.result.fpga_completions
            << " completions; speedup " << speedup << "x\n";
  std::cerr << "[fpga_bench] serial hash " << std::hex
            << slots_serial.result.trace_hash << ", parallel hash "
            << slots_parallel.result.trace_hash << std::dec
            << " -> trace_identical=" << trace_identical << "\n";

  std::ofstream out("BENCH_fpga.json");
  out.precision(6);
  out << "{\n";
  out << "  \"bench\": \"fpga\",\n";
  out << "  \"smoke\": " << (smoke ? 1 : 0) << ",\n";
  out << "  \"slots\": {\n";
  out << "    \"cells\": " << spec.cells << ",\n";
  out << "    \"tenants\": " << spec.tenants << ",\n";
  out << "    \"slot_count\": " << spec.slots << ",\n";
  out << "    \"sim_span_ms\": " << spec.span.to_ms() << ",\n";
  emit_result(out, "virtualized", slots_serial);
  out << ",\n";
  emit_result(out, "virtualized_parallel", slots_parallel);
  out << ",\n";
  emit_result(out, "whole_image", whole_image);
  out << ",\n";
  out << "    \"speedup_vs_whole_image\": " << speedup << ",\n";
  out << "    \"trace_identical\": " << trace_identical << ",\n";
  out << "    \"slot_activity\": " << slot_activity << "\n";
  out << "  }\n";
  out << "}\n";
  std::cerr << "[fpga_bench] wrote BENCH_fpga.json\n";
  return 0;
}

}  // namespace
}  // namespace xartrek::bench

int main() { return xartrek::bench::bench_main(); }
