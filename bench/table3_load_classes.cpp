// Table 3 -- CPU load definition.
//
// The paper classifies load by process count relative to the testbed's
// core budget: low (< 6 x86 cores), medium (>= 6 but < 102 total
// cores), high (>= 102).  This harness prints the class boundaries for
// the modelled platform and verifies representative process counts.
#include "bench/bench_util.hpp"
#include "exp/figures.hpp"
#include "platform/testbed.hpp"

int main() {
  using namespace xartrek;

  platform::Testbed testbed;
  const int x86_cores = testbed.x86().spec().cores;
  const int total = testbed.total_cores();

  TextTable table("Table 3: CPU load definition (" +
                  std::to_string(x86_cores) + " x86 cores, " +
                  std::to_string(total) + " total cores)");
  table.set_header({"CPU Load", "Range of number of processes"});
  table.add_row({"Low", "#processes < " + std::to_string(x86_cores)});
  table.add_row({"Medium", std::to_string(x86_cores) +
                               " <= #processes < " + std::to_string(total)});
  table.add_row({"High", "#processes >= " + std::to_string(total)});
  bench::print(table);

  TextTable check("Classification of the paper's experimental loads");
  check.set_header({"#processes", "class"});
  for (int procs : {1, 5, 25, 60, 101, 102, 120, 160}) {
    check.add_row({std::to_string(procs),
                   exp::to_string(exp::classify_load(procs, x86_cores,
                                                     total))});
  }
  bench::print(check);
  return 0;
}
