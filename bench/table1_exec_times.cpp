// Table 1 -- Benchmark execution times (milliseconds).
//
// Reproduces the paper's Table 1: for each of the five benchmarks, the
// in-isolation execution time on vanilla x86 and under Xar-Trek's two
// migration scenarios (x86/FPGA and x86/ARM), communication overhead
// included.  The per-target service demands are calibrated against the
// authors' measurements (see DESIGN.md); this harness derives the
// scenario totals by actually running each scenario through the
// compiled pipeline on the simulated testbed, so migration, DMA, and
// XRT overheads all come from the models.
#include "bench/bench_util.hpp"

int main() {
  using namespace xartrek;

  // Paper values for side-by-side comparison.
  struct PaperRow {
    const char* app;
    double x86, fpga, arm;
  };
  const PaperRow paper[] = {
      {"cg_a", 2182, 10597, 8406},    {"facedet320", 175, 332, 642},
      {"facedet640", 885, 832, 2991}, {"digit500", 883, 470, 2281},
      {"digit2000", 3521, 1229, 8963},
  };

  TextTable table("Table 1: Benchmark execution times (ms)");
  table.set_header({"Benchmark", "Vanilla Linux (x86 only)",
                    "Xar-Trek (x86/FPGA)", "Xar-Trek (x86/ARM)",
                    "paper x86", "paper FPGA", "paper ARM"});

  for (const auto& row : bench::estimation().rows) {
    double paper_x86 = 0;
    double paper_fpga = 0;
    double paper_arm = 0;
    for (const auto& p : paper) {
      if (row.app == p.app) {
        paper_x86 = p.x86;
        paper_fpga = p.fpga;
        paper_arm = p.arm;
      }
    }
    table.add_row({row.app, TextTable::num(row.x86_exec.to_ms(), 0),
                   TextTable::num(row.fpga_exec.to_ms(), 0),
                   TextTable::num(row.arm_exec.to_ms(), 0),
                   TextTable::num(paper_x86, 0),
                   TextTable::num(paper_fpga, 0),
                   TextTable::num(paper_arm, 0)});
  }
  bench::print(table);
  return 0;
}
