// Ablation: compute-unit replication on the always-FPGA baseline.
//
// Under the Figure-7 periodic workload our always-FPGA baseline
// collapses: every wave's CG-A instances serialize on a single compute
// unit and the backlog compounds.  EXPERIMENTS.md hypothesizes the
// paper's milder FPGA bar reflects replicated compute units (Vitis
// `nk`).  This harness rebuilds the suite with 1, 2, and 4 CUs per
// kernel and re-runs the workload for the always-FPGA baseline and
// Xar-Trek, quantifying how much CU replication closes the gap.
#include "bench/bench_util.hpp"
#include "exp/figures.hpp"

int main() {
  using namespace xartrek;

  TextTable table(
      "Ablation: compute units per kernel under the Figure-7 workload");
  table.set_header({"CUs/kernel", "Vanilla FPGA avg (ms)",
                    "Xar-Trek avg (ms)", "Xar-Trek gain vs FPGA %"});

  // 1 and 2 CUs keep all five kernels in one XCLBIN on the U50; beyond
  // that the partitioner must split images and run-time reconfiguration
  // enters the picture, which would confound the CU effect.
  for (int cus : {1, 2}) {
    auto specs = bench::suite();
    for (auto& spec : specs) spec.kernel_profile.compute_units = cus;

    exp::PeriodicExecConfig config;
    config.waves = 30;
    config.apps_per_wave = 20;
    config.wave_interval = Duration::seconds(30);
    config.systems = {apps::SystemMode::kAlwaysFpga,
                      apps::SystemMode::kXarTrek};
    config.seed = 2021;
    config.record_load_trace = false;

    const auto cells = exp::run_periodic_exec_experiment(
        specs, bench::estimation().table, config);
    double fpga = 0;
    double xar = 0;
    for (const auto& cell : cells) {
      if (cell.system == apps::SystemMode::kAlwaysFpga) fpga = cell.mean_ms;
      if (cell.system == apps::SystemMode::kXarTrek) xar = cell.mean_ms;
    }
    table.add_row({std::to_string(cus), TextTable::num(fpga, 0),
                   TextTable::num(xar, 0),
                   TextTable::num(bench::gain_pct(fpga, xar), 1)});
  }
  bench::print(table);
  std::cout
      << "Replicating compute units drains the always-FPGA backlog and\n"
         "narrows its gap toward the paper's reported 32%; Xar-Trek's own\n"
         "numbers barely move because it only offloads when profitable.\n";
  return 0;
}
