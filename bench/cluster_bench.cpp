// Cluster-scaling benchmark for the topology-partitioned engine.
//
// Drives the identical per-cell workload -- a full testbed stack per
// cell with a micro-churn background cohort -- through exp::Experiment
// on the classic single queue and through exp::ClusterExperiment at
// 1/2/4 cells, and compares aggregate event-processing capacity
// (sum over shards of events per busy-CPU-second, the same metric
// BENCH_sim_core.json's sharded section gates).  A second section
// measures the million-job attach/detach sweep through
// apps::ShardedLoadGenerator -- per-shard batched bookkeeping --
// against the same cohort funneled through one CpuCluster process
// table.  A third section measures fault-handling overhead: the same
// tracked-job workload with and without a chaos plan (cell kill with a
// partitioned drain path), gating the event-count overhead ratio and
// the exactly-once completion contract.  A fourth section repeats the
// comparison against a gray-failure storm (slowed cells, lossy and
// corrupting links, flaky reconfiguration ports), gating conservation
// and the retry-overhead ratio of the reliability layer.  Results land
// in BENCH_cluster.json (schema: docs/perf.md).
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <vector>

#include "apps/benchmark_spec.hpp"
#include "apps/load_generator.hpp"
#include "bench/alloc_hook.hpp"
#include "common/cpu_time.hpp"
#include "exp/cluster.hpp"
#include "exp/experiment.hpp"
#include "exp/threshold_estimator.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "sim/fault.hpp"

namespace xartrek::bench {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

bool smoke_mode() { return std::getenv("XARTREK_BENCH_SMOKE") != nullptr; }

/// The churn cohort every config runs: short batch jobs whose demand is
/// spread per lane so completions pave the timeline instead of landing
/// on one tick.  The job count is what the schedulers' load metric
/// sees; the demand sets the event rate.
apps::ShardedLoadGenerator::Options churn_options() {
  apps::ShardedLoadGenerator::Options opts;
  opts.run_demand = Duration::ms(0.05);
  opts.demand_jitter = 0.5;
  return opts;
}

struct ConfigResult {
  double wall_seconds = 0;
  double busy_seconds = 0;  ///< summed per-shard thread-CPU time
  std::uint64_t events = 0;
  std::uint64_t posts = 0;
  /// Sum over shards of events_i / busy_i: capacity with one core per
  /// shard (converges to the wall rate on an unloaded multicore).
  double aggregate_events_per_sec = 0;
};

/// The classic default engine: one exp::Experiment, one global queue.
ConfigResult run_single_queue(std::uint64_t total_jobs,
                              Duration sim_span) {
  exp::ExperimentOptions options;
  exp::Experiment exp(apps::paper_benchmarks(), runtime::ThresholdTable{},
                      options);
  std::vector<platform::Testbed*> cells{&exp.testbed()};
  apps::ShardedLoadGenerator load(cells, total_jobs, churn_options());
  sim::Simulation& sim = exp.simulation();
  const std::uint64_t before = sim.executed_events();
  const double cpu0 = thread_cpu_seconds();
  const auto start = Clock::now();
  sim.run_until(sim.now() + sim_span);
  ConfigResult r;
  r.wall_seconds = seconds_since(start);
  r.busy_seconds = thread_cpu_seconds() - cpu0;
  r.events = sim.executed_events() - before;
  r.aggregate_events_per_sec =
      static_cast<double>(r.events) / r.busy_seconds;
  return r;
}

/// Cross-cell traffic: every 5 ms each cell ships a 64 KiB job image
/// to its ring neighbor, so the mailbox path carries real load while
/// the cohorts churn.
struct HandoffPump {
  exp::ClusterExperiment* cluster = nullptr;
  std::size_t cell = 0;
  Duration period = Duration::ms(5.0);
  void fire() {
    cluster->handoff(cell, 64 * 1024, [] {});
    cluster->cell(cell).simulation().schedule_in(period,
                                                 [this] { fire(); });
  }
};

/// The partitioned engine: the same per-cell stack and cohort, N cells
/// joined by a 2 ms datacenter interconnect (the auto-picked epoch).
ConfigResult run_cluster(std::size_t cells, std::uint64_t total_jobs,
                         Duration sim_span) {
  exp::ClusterSpec spec;
  spec.cells = cells;
  spec.parallel = cells > 1;
  spec.intercell.latency = Duration::ms(2.0);
  spec.epoch = Duration::ms(2.0);  // also sizes the 1-cell windows
  exp::ClusterExperiment cluster(apps::paper_benchmarks(),
                                 runtime::ThresholdTable{}, spec);
  cluster.set_background_load(total_jobs, churn_options());
  std::vector<HandoffPump> pumps(cells > 1 ? cells : 0);
  for (std::size_t c = 0; c < pumps.size(); ++c) {
    pumps[c] = HandoffPump{&cluster, c};
    HandoffPump* pump = &pumps[c];
    cluster.cell(c).simulation().schedule_in(Duration::ms(5.0),
                                             [pump] { pump->fire(); });
  }
  const std::uint64_t before = cluster.engine().engine().executed_events();
  const auto start = Clock::now();
  cluster.run_for(sim_span);
  ConfigResult r;
  r.wall_seconds = seconds_since(start);
  r.events = cluster.engine().engine().executed_events() - before;
  for (std::size_t c = 0; c < cells; ++c) {
    const sim::ShardStats& st =
        cluster.engine().engine().stats(static_cast<sim::ShardId>(c));
    r.busy_seconds += st.busy_seconds;
    r.posts += st.posts;
    if (st.busy_seconds > 0.0) {
      r.aggregate_events_per_sec +=
          static_cast<double>(st.executed) / st.busy_seconds;
    }
  }
  return r;
}

struct SkewResult {
  double wall_seconds = 0;
  double busy_seconds = 0;      ///< summed over workers
  double max_worker_busy = 0;   ///< the critical path on real cores
  std::uint64_t events = 0;
  std::uint64_t windows = 0;
  std::uint64_t steals = 0;
  /// Events per second of the busiest worker: the rate the cluster
  /// would sustain with one real core per worker.  Machine-neutral as
  /// a ratio between configs (same workload, same host).
  double cp_events_per_sec = 0;
};

/// The skewed-load section: 8 cells multiplexed onto 4 workers, with
/// cell 0's cohort looping `hot_scale`x shorter runs.  Cohort *size*
/// would not skew anything -- lanes share the cell's cores under
/// processor sharing, so a cell's event rate is capacity-bound, not
/// job-bound -- but loop *demand* does: every completion costs the
/// same few events, so a cell looping 3x shorter runs executes 3x the
/// events per simulated second.  The epoch is forced 20x tighter than
/// the 2 ms interconnect, so the fixed-window config pays maximal
/// synchronization while the adaptive config may legally coarsen to
/// the link latency whenever no cross-cell traffic is in flight.  The
/// static map pairs the hot cell with a cold one on worker 0 (cells c
/// and c+4 share worker c%4); stealing moves that cold cell off the
/// hot worker at the first rebalance, shortening the critical path.
/// All three configs execute the identical event trace -- the bench
/// asserts it -- so the capacity ratios measure pure engine overhead.
SkewResult run_skew_config(bool adaptive, bool steal,
                           std::uint64_t jobs_per_cell, double hot_scale,
                           Duration sim_span) {
  constexpr std::size_t kCells = 8;
  exp::ClusterSpec spec;
  spec.cells = kCells;
  spec.parallel = true;
  spec.exec.workers = 4;
  spec.exec.pin_threads = true;
  spec.exec.adaptive = adaptive;
  spec.exec.steal = steal;
  spec.intercell.latency = Duration::ms(2.0);
  spec.epoch = Duration::ms(0.1);  // forced: 20x below the link latency
  exp::ClusterExperiment cluster(apps::paper_benchmarks(),
                                 runtime::ThresholdTable{}, spec);
  std::vector<std::unique_ptr<apps::LoadGenerator>> cohorts;
  cohorts.reserve(kCells);
  for (std::size_t c = 0; c < kCells; ++c) {
    apps::LoadGenerator::Options lopts;
    lopts.run_demand =
        c == 0 ? Duration::ms(0.05 / hot_scale) : Duration::ms(0.05);
    lopts.demand_jitter = 0.5;
    lopts.reserve = true;
    cohorts.push_back(std::make_unique<apps::LoadGenerator>(
        cluster.cell(c).testbed(), static_cast<int>(jobs_per_cell), lopts));
  }
  // Sparse cross traffic: only the hot cell ships handoffs, every
  // 25 ms, so adaptation has long quiet stretches to coarsen through
  // and periodic posts to snap back on.
  HandoffPump pump{&cluster, 0, Duration::ms(25.0)};
  cluster.cell(0).simulation().schedule_in(Duration::ms(25.0),
                                           [&pump] { pump.fire(); });
  sim::ShardedSimulation& engine = cluster.engine().engine();
  const std::uint64_t before = engine.executed_events();
  const auto start = Clock::now();
  cluster.run_for(sim_span);
  SkewResult r;
  r.wall_seconds = seconds_since(start);
  r.events = engine.executed_events() - before;
  r.windows = engine.windows();
  r.steals = engine.steal_moves();
  for (std::uint32_t w = 0; w < engine.worker_count(); ++w) {
    const double busy = engine.worker_stats(w).busy_seconds;
    r.busy_seconds += busy;
    if (busy > r.max_worker_busy) r.max_worker_busy = busy;
  }
  if (r.max_worker_busy > 0.0) {
    r.cp_events_per_sec =
        static_cast<double>(r.events) / r.max_worker_busy;
  }
  return r;
}

void emit_skew_config(std::ostream& os, const char* key,
                      const SkewResult& r) {
  os << "    \"" << key << "\": {\n"
     << "      \"wall_seconds\": " << r.wall_seconds << ",\n"
     << "      \"events\": " << r.events << ",\n"
     << "      \"windows\": " << r.windows << ",\n"
     << "      \"steals\": " << r.steals << ",\n"
     << "      \"busy_seconds\": " << r.busy_seconds << ",\n"
     << "      \"max_worker_busy_seconds\": " << r.max_worker_busy
     << ",\n"
     << "      \"cp_events_per_sec\": " << r.cp_events_per_sec
     << "\n    }";
}

struct SweepResult {
  std::uint64_t jobs = 0;
  double attach_seconds = 0;
  double detach_seconds = 0;
};

/// Attach `jobs` across `cells` testbed cells, let the cohort settle
/// for one short window, tear it down.
SweepResult run_attach_detach(std::size_t cells, std::uint64_t jobs) {
  exp::ClusterSpec spec;
  spec.cells = cells;
  spec.parallel = cells > 1;
  exp::ClusterExperiment cluster(apps::paper_benchmarks(),
                                 runtime::ThresholdTable{}, spec);
  SweepResult r;
  r.jobs = jobs;
  auto start = Clock::now();
  cluster.set_background_load(jobs);
  r.attach_seconds = seconds_since(start);
  cluster.run_for(Duration::ms(10.0));
  start = Clock::now();
  cluster.set_background_load(0);
  r.detach_seconds = seconds_since(start);
  return r;
}

/// The pre-sharding path, replicated faithfully: every job funnels
/// through ONE CpuCluster with one process-table update per job (the
/// seed LoadGenerator's attach_process/detach_process loop), one
/// submit per job into one big PS heap, no up-front reservation.
SweepResult run_attach_detach_single(std::uint64_t jobs) {
  exp::Experiment exp(apps::paper_benchmarks(), runtime::ThresholdTable{});
  hw::CpuCluster& x86 = exp.testbed().x86();
  std::vector<hw::CpuCluster::JobId> ids(jobs);
  SweepResult r;
  r.jobs = jobs;
  auto start = Clock::now();
  for (std::uint64_t j = 0; j < jobs; ++j) {
    x86.attach_process();
    ids[j] = x86.run(apps::mg_b_run_demand(), [] {});
  }
  r.attach_seconds = seconds_since(start);
  exp.simulation().run_until(exp.simulation().now() + Duration::ms(10.0));
  start = Clock::now();
  for (std::uint64_t j = 0; j < jobs; ++j) {
    x86.cancel(ids[j]);
    x86.detach_process();
  }
  r.detach_seconds = seconds_since(start);
  return r;
}

struct FaultConfigResult {
  double wall_seconds = 0;
  std::uint64_t events = 0;
  std::uint64_t spans = 0;
  exp::ClusterExperiment::JobStats stats;
};

enum class FaultMode { kNone, kChaos, kGray };

/// Tracked jobs on a four-cell cluster: no faults, the chaos plan from
/// the CHAOS smoke (drain path partitioned, then cell 1 dies), or the
/// gray storm from the gray smoke (slowed CPUs, a lossy corrupting
/// ring link, a coin-flip reconfiguration port, plus a kill).  Event
/// counts are simulation-deterministic, so the faulted/no-fault ratios
/// are machine-neutral measures of what the fault machinery --
/// heartbeats, backoff, checksum retries, breaker demotion -- costs.
FaultConfigResult run_fault_config(const runtime::ThresholdTable& table,
                                   FaultMode mode, bool traced = false) {
  constexpr std::size_t kCells = 4;
  exp::ClusterSpec spec;
  spec.cells = kCells;
  spec.parallel = true;
  exp::ExperimentOptions options;
  options.mode = apps::SystemMode::kXarTrek;
  exp::ClusterExperiment cluster(apps::paper_benchmarks(), table, spec,
                                 options);
  if (traced) cluster.enable_tracing();
  for (std::size_t c = 0; c < kCells; ++c) {
    cluster.submit(c, "facedet320");
    cluster.submit(c, "digit500");
  }
  if (mode == FaultMode::kChaos) {
    sim::FaultPlan plan;
    plan.add({sim::FaultEvent::Kind::kLinkDown, TimePoint::at_ms(40.0), 1});
    plan.add({sim::FaultEvent::Kind::kCellKill, TimePoint::at_ms(50.0), 1});
    plan.add({sim::FaultEvent::Kind::kLinkUp, TimePoint::at_ms(160.0), 1});
    cluster.apply_fault_plan(plan);
  } else if (mode == FaultMode::kGray) {
    sim::FaultPlan plan;
    plan.add({sim::FaultEvent::Kind::kCellSlow, TimePoint::at_ms(20.0), 0,
              0.25, TimePoint::at_ms(120.0)});
    plan.add({sim::FaultEvent::Kind::kLinkDegraded, TimePoint::at_ms(30.0),
              1, 0.3, TimePoint::at_ms(200.0)});
    plan.add({sim::FaultEvent::Kind::kPortFlaky, TimePoint::at_ms(20.0), 2,
              0.5, TimePoint::at_ms(250.0)});
    plan.add({sim::FaultEvent::Kind::kDsmCorrupt, TimePoint::at_ms(30.0), 1,
              0.5, TimePoint::at_ms(200.0)});
    plan.add({sim::FaultEvent::Kind::kCellKill, TimePoint::at_ms(50.0), 1});
    cluster.apply_fault_plan(plan);
  }
  const std::uint64_t before = cluster.engine().engine().executed_events();
  const auto start = Clock::now();
  cluster.run_until_jobs_complete(Duration::minutes(5));
  FaultConfigResult r;
  r.wall_seconds = seconds_since(start);
  r.events = cluster.engine().engine().executed_events() - before;
  r.stats = cluster.job_stats();
  if (traced) r.spans = cluster.tracer()->span_count();
  return r;
}

struct ObsResult {
  double off_wall_seconds = 0;   ///< best-of-3 untraced gray run
  double on_wall_seconds = 0;    ///< best-of-3 traced gray run
  double overhead_ratio = 0;     ///< on / off, both best-of-3
  std::uint64_t spans = 0;
  std::uint64_t events = 0;      ///< identical on/off (pure metadata)
  int trace_nonempty = 0;
  int events_identical = 0;
  double alloc_calls_per_event = 0;
  double alloc_bytes_per_event = 0;
  std::uint64_t alloc_events = 0;
};

/// Tracer overhead + the zero-alloc steady-state contract.
///
/// Overhead: the gray-storm fault config with tracing off and on,
/// interleaved, best-of-3 walls per arm so a noisy timeslice cannot
/// land in the ratio.  Tracing is pure metadata -- the event counts
/// must match exactly -- so the wall ratio isolates the observability
/// layer's cost.
///
/// Allocation: after one warm-up pass has sized the span slab and the
/// histogram/counter pools, a measured pass of counter increments,
/// histogram records, and span emits must allocate nothing at all.
ObsResult run_obs_section(const runtime::ThresholdTable& table) {
  ObsResult r;
  double best_off = 0.0;
  double best_on = 0.0;
  std::uint64_t off_events = 0;
  for (int i = 0; i < 3; ++i) {
    const auto off = run_fault_config(table, FaultMode::kGray, false);
    const auto on = run_fault_config(table, FaultMode::kGray, true);
    if (i == 0 || off.wall_seconds < best_off) best_off = off.wall_seconds;
    if (i == 0 || on.wall_seconds < best_on) best_on = on.wall_seconds;
    off_events = off.events;
    r.events = on.events;
    r.spans = on.spans;
  }
  r.off_wall_seconds = best_off;
  r.on_wall_seconds = best_on;
  r.overhead_ratio = best_on / best_off;
  r.trace_nonempty = r.spans > 0 ? 1 : 0;
  r.events_identical = off_events == r.events ? 1 : 0;

  // Steady-state allocation contract on the hot primitives.
  constexpr std::uint64_t kAllocEvents = 100'000;
  obs::Registry registry;
  obs::Registry::Counter* counter = registry.counter("bench.events");
  obs::Histogram::Options hopts;
  hopts.lanes = 1;
  obs::Histogram* hist = registry.histogram("bench.latency_ms", hopts);
  obs::Tracer tracer(1);
  auto pump = [&](std::uint64_t n) {
    for (std::uint64_t i = 0; i < n; ++i) {
      counter->add(1);
      hist->record(0.001 * static_cast<double>(i % 4096));
      const auto span =
          tracer.begin(0, obs::kTrackJob, "bench.span", i + 1,
                       TimePoint::at_ms(static_cast<double>(i)));
      tracer.end(span, TimePoint::at_ms(static_cast<double>(i) + 0.5));
    }
  };
  pump(kAllocEvents);  // warm-up: size the slab and pools
  tracer.clear();      // keeps capacity
  const AllocSnapshot before = alloc_snapshot();
  pump(kAllocEvents);
  const AllocSnapshot after = alloc_snapshot();
  r.alloc_events = kAllocEvents;
  r.alloc_calls_per_event =
      static_cast<double>(after.calls - before.calls) /
      static_cast<double>(kAllocEvents);
  r.alloc_bytes_per_event =
      static_cast<double>(after.bytes - before.bytes) /
      static_cast<double>(kAllocEvents);
  return r;
}

void emit_config(std::ostream& os, const char* key, const ConfigResult& r) {
  os << "    \"" << key << "\": {\n"
     << "      \"wall_seconds\": " << r.wall_seconds << ",\n"
     << "      \"busy_seconds\": " << r.busy_seconds << ",\n"
     << "      \"events\": " << r.events << ",\n"
     << "      \"wall_events_per_sec\": "
     << static_cast<double>(r.events) / r.wall_seconds << ",\n"
     << "      \"aggregate_events_per_sec\": "
     << r.aggregate_events_per_sec << ",\n"
     << "      \"posts\": " << r.posts << "\n    }";
}

int bench_main() {
  const bool smoke = smoke_mode();
  const std::uint64_t kJobsPerCell = smoke ? 384 : 512;
  const Duration kSpan =
      smoke ? Duration::seconds(0.75) : Duration::seconds(2.0);
  const std::uint64_t kSweepJobs = smoke ? 100'000 : 1'000'000;
  constexpr std::size_t kSweepCells = 4;
  const std::uint64_t kTotalJobs = 4 * kJobsPerCell;

  std::cerr << "[cluster_bench] churn: " << kTotalJobs << " jobs over "
            << kSpan.to_seconds() << " sim-seconds per config...\n";
  // Best of two per config, selected by the gated metric, so a noisy
  // neighbor's timeslice does not land in the scaling ratios.
  auto best2 = [](auto f) {
    const auto a = f();
    const auto b = f();
    return a.aggregate_events_per_sec >= b.aggregate_events_per_sec ? a
                                                                    : b;
  };
  const auto single =
      best2([&] { return run_single_queue(kTotalJobs, kSpan); });
  const auto cells_1 =
      best2([&] { return run_cluster(1, kTotalJobs, kSpan); });
  const auto cells_2 =
      best2([&] { return run_cluster(2, kTotalJobs, kSpan); });
  const auto cells_4 =
      best2([&] { return run_cluster(4, kTotalJobs, kSpan); });

  const double single_rate = single.aggregate_events_per_sec;
  const double ratio_1cell = cells_1.aggregate_events_per_sec / single_rate;
  const double speedup_2 = cells_2.aggregate_events_per_sec / single_rate;
  const double speedup_4 = cells_4.aggregate_events_per_sec / single_rate;

  const std::uint64_t kSkewJobsPerCell = smoke ? 16 : 32;
  const double kHotScale = 3.0;
  const Duration kSkewSpan =
      smoke ? Duration::seconds(0.3) : Duration::seconds(1.0);
  std::cerr << "[cluster_bench] skewed load: 8 cells / 4 workers, hot "
               "cell at "
            << kHotScale << "x event rate, fixed vs adaptive vs "
            << "adaptive+steal...\n";
  auto best_skew = [&](bool adaptive, bool steal) {
    const auto a = run_skew_config(adaptive, steal, kSkewJobsPerCell,
                                   kHotScale, kSkewSpan);
    const auto b = run_skew_config(adaptive, steal, kSkewJobsPerCell,
                                   kHotScale, kSkewSpan);
    return a.cp_events_per_sec >= b.cp_events_per_sec ? a : b;
  };
  const auto skew_fixed = best_skew(false, false);
  const auto skew_adaptive = best_skew(true, false);
  const auto skew_steal = best_skew(true, true);
  const int skew_conserved = skew_fixed.events == skew_adaptive.events &&
                                     skew_fixed.events == skew_steal.events
                                 ? 1
                                 : 0;
  const double skew_speedup_adaptive =
      skew_adaptive.cp_events_per_sec / skew_fixed.cp_events_per_sec;
  const double skew_speedup_steal =
      skew_steal.cp_events_per_sec / skew_fixed.cp_events_per_sec;

  std::cerr << "[cluster_bench] attach/detach sweep: " << kSweepJobs
            << " jobs across " << kSweepCells << " cells...\n";
  const auto sweep = run_attach_detach(kSweepCells, kSweepJobs);
  const auto sweep_single = run_attach_detach_single(kSweepJobs);

  std::cerr << "[cluster_bench] fault overhead: tracked jobs with and "
               "without a chaos plan...\n";
  const auto fault_table =
      exp::ThresholdEstimator().estimate(apps::paper_benchmarks()).table;
  const auto fault_plain = run_fault_config(fault_table, FaultMode::kNone);
  const auto fault_chaos = run_fault_config(fault_table, FaultMode::kChaos);
  const double fault_overhead = static_cast<double>(fault_chaos.events) /
                                static_cast<double>(fault_plain.events);
  const int fault_conserved =
      fault_plain.stats.completed == fault_plain.stats.submitted &&
              fault_chaos.stats.completed == fault_chaos.stats.submitted
          ? 1
          : 0;

  std::cerr << "[cluster_bench] gray overhead: the same tracked jobs "
               "through a degraded-fault storm...\n";
  const auto fault_gray = run_fault_config(fault_table, FaultMode::kGray);
  // Retries, duplicate copies, heartbeat re-arms, and breaker-demoted
  // placements all show up as extra events; the ratio against the
  // clean run bounds what gray resilience costs end to end.
  const double gray_overhead = static_cast<double>(fault_gray.events) /
                               static_cast<double>(fault_plain.events);
  const int gray_conserved =
      fault_gray.stats.completed == fault_gray.stats.submitted ? 1 : 0;

  std::cerr << "[cluster_bench] obs overhead: the gray storm with the "
               "tracer off vs on, plus the zero-alloc contract...\n";
  const auto obs = run_obs_section(fault_table);
  const int obs_budget_met = obs.overhead_ratio <= 1.05 ? 1 : 0;
  const double sweep_rate =
      2.0 * static_cast<double>(sweep.jobs) /
      (sweep.attach_seconds + sweep.detach_seconds);
  const double sweep_single_rate =
      2.0 * static_cast<double>(sweep_single.jobs) /
      (sweep_single.attach_seconds + sweep_single.detach_seconds);

  std::ofstream out("BENCH_cluster.json");
  out.precision(6);
  out << "{\n  \"bench\": \"cluster\",\n  \"cluster\": {\n"
      << "    \"sim_seconds\": " << kSpan.to_seconds() << ",\n"
      << "    \"total_jobs\": " << kTotalJobs << ",\n"
      << "    \"run_demand_ms\": 0.05,\n";
  emit_config(out, "single_queue", single);
  out << ",\n";
  emit_config(out, "cells_1", cells_1);
  out << ",\n";
  emit_config(out, "cells_2", cells_2);
  out << ",\n";
  emit_config(out, "cells_4", cells_4);
  out << ",\n    \"ratio_1cell_vs_single_queue\": " << ratio_1cell
      << ",\n    \"aggregate_speedup_2_cells\": " << speedup_2
      << ",\n    \"aggregate_speedup_4_cells\": " << speedup_4
      << "\n  },\n  \"skew\": {\n"
      << "    \"cells\": 8,\n    \"workers\": 4,\n"
      << "    \"jobs_per_cell\": " << kSkewJobsPerCell << ",\n"
      << "    \"hot_demand_scale\": " << kHotScale << ",\n"
      << "    \"sim_seconds\": " << kSkewSpan.to_seconds() << ",\n"
      << "    \"epoch_ms\": 0.1,\n    \"max_epoch_ms\": 2,\n";
  emit_skew_config(out, "fixed", skew_fixed);
  out << ",\n";
  emit_skew_config(out, "adaptive", skew_adaptive);
  out << ",\n";
  emit_skew_config(out, "adaptive_steal", skew_steal);
  out << ",\n    \"events_conserved\": " << skew_conserved
      << ",\n    \"speedup_adaptive_vs_fixed\": " << skew_speedup_adaptive
      << ",\n    \"speedup_adaptive_steal_vs_fixed\": "
      << skew_speedup_steal << "\n  },\n  \"attach_detach\": {\n"
      << "    \"jobs\": " << sweep.jobs << ",\n"
      << "    \"cells\": " << kSweepCells << ",\n"
      << "    \"attach_seconds\": " << sweep.attach_seconds << ",\n"
      << "    \"detach_seconds\": " << sweep.detach_seconds << ",\n"
      << "    \"attach_jobs_per_sec\": "
      << static_cast<double>(sweep.jobs) / sweep.attach_seconds << ",\n"
      << "    \"jobs_per_sec\": " << sweep_rate << ",\n"
      << "    \"single_table_attach_seconds\": "
      << sweep_single.attach_seconds << ",\n"
      << "    \"single_table_jobs_per_sec\": " << sweep_single_rate
      << ",\n    \"sharded_vs_single_table_ratio\": "
      << sweep_rate / sweep_single_rate << "\n  },\n  \"fault\": {\n"
      << "    \"jobs\": " << fault_plain.stats.submitted << ",\n"
      << "    \"no_fault\": {\n"
      << "      \"wall_seconds\": " << fault_plain.wall_seconds << ",\n"
      << "      \"events\": " << fault_plain.events << ",\n"
      << "      \"sim_ms_to_complete\": "
      << fault_plain.stats.max_latency_ms << "\n    },\n"
      << "    \"chaos\": {\n"
      << "      \"wall_seconds\": " << fault_chaos.wall_seconds << ",\n"
      << "      \"events\": " << fault_chaos.events << ",\n"
      << "      \"sim_ms_to_complete\": "
      << fault_chaos.stats.max_latency_ms << ",\n"
      << "      \"drained\": " << fault_chaos.stats.drained << ",\n"
      << "      \"retries\": " << fault_chaos.stats.retries << ",\n"
      << "      \"p99_latency_ms\": " << fault_chaos.stats.p99_latency_ms
      << "\n    },\n"
      << "    \"completed_conserved\": " << fault_conserved << ",\n"
      << "    \"event_overhead_ratio\": " << fault_overhead
      << "\n  },\n  \"gray\": {\n"
      << "    \"jobs\": " << fault_gray.stats.submitted << ",\n"
      << "    \"wall_seconds\": " << fault_gray.wall_seconds << ",\n"
      << "    \"events\": " << fault_gray.events << ",\n"
      << "    \"sim_ms_to_complete\": " << fault_gray.stats.max_latency_ms
      << ",\n"
      << "    \"p99_latency_ms\": " << fault_gray.stats.p99_latency_ms
      << ",\n"
      << "    \"drained\": " << fault_gray.stats.drained << ",\n"
      << "    \"channel_retries\": " << fault_gray.stats.channel_retries
      << ",\n"
      << "    \"corrupt_recovered\": " << fault_gray.stats.corrupt_recovered
      << ",\n"
      << "    \"duplicates_suppressed\": "
      << fault_gray.stats.duplicates_suppressed << ",\n"
      << "    \"link_drops\": " << fault_gray.stats.link_drops << ",\n"
      << "    \"slow_replies\": " << fault_gray.stats.slow_replies << ",\n"
      << "    \"late_replies\": " << fault_gray.stats.late_replies << ",\n"
      << "    \"breaker_trips\": " << fault_gray.stats.breaker_trips
      << ",\n"
      << "    \"breaker_closes\": " << fault_gray.stats.breaker_closes
      << ",\n"
      << "    \"slots_quarantined\": "
      << fault_gray.stats.slots_quarantined << ",\n"
      << "    \"completed_conserved\": " << gray_conserved << ",\n"
      << "    \"retry_overhead_ratio\": " << gray_overhead
      << "\n  },\n  \"obs\": {\n"
      << "    \"tracer_off_wall_seconds\": " << obs.off_wall_seconds
      << ",\n"
      << "    \"tracer_on_wall_seconds\": " << obs.on_wall_seconds
      << ",\n"
      << "    \"overhead_ratio\": " << obs.overhead_ratio << ",\n"
      << "    \"budget_met\": " << obs_budget_met << ",\n"
      << "    \"spans\": " << obs.spans << ",\n"
      << "    \"trace_nonempty\": " << obs.trace_nonempty << ",\n"
      << "    \"events_identical\": " << obs.events_identical << ",\n"
      << "    \"alloc_events\": " << obs.alloc_events << ",\n"
      << "    \"alloc_calls_per_event\": " << obs.alloc_calls_per_event
      << ",\n"
      << "    \"alloc_bytes_per_event\": " << obs.alloc_bytes_per_event
      << "\n  }\n}\n";
  out.close();

  std::cerr << "[cluster_bench] aggregate capacity: single="
            << single_rate / 1e6 << "M ev/s, 1-cell ratio=" << ratio_1cell
            << ", 2-cell=" << speedup_2 << "x, 4-cell=" << speedup_4
            << "x\n"
            << "[cluster_bench] skew: adaptive=" << skew_speedup_adaptive
            << "x, adaptive+steal=" << skew_speedup_steal
            << "x vs fixed (windows " << skew_fixed.windows << " -> "
            << skew_steal.windows << ", steals=" << skew_steal.steals
            << ", conserved=" << skew_conserved << ")\n"
            << "[cluster_bench] attach/detach: " << sweep.jobs
            << " jobs @ " << sweep_rate / 1e6 << "M ops/s sharded vs "
            << sweep_single_rate / 1e6 << "M single-table (ratio "
            << sweep_rate / sweep_single_rate << ")\n"
            << "[cluster_bench] fault overhead: " << fault_overhead
            << "x events under chaos (" << fault_chaos.stats.drained
            << " drained, conserved=" << fault_conserved << ")\n"
            << "[cluster_bench] gray overhead: " << gray_overhead
            << "x events under gray storm ("
            << fault_gray.stats.channel_retries << " retries, "
            << fault_gray.stats.corrupt_recovered << " checksum catches, "
            << fault_gray.stats.breaker_trips
            << " breaker trips, conserved=" << gray_conserved << ")\n"
            << "[cluster_bench] obs overhead: " << obs.overhead_ratio
            << "x wall with tracing on (" << obs.spans << " spans, "
            << "events identical=" << obs.events_identical
            << ", alloc/event=" << obs.alloc_calls_per_event << ")\n"
            << "[cluster_bench] wrote BENCH_cluster.json\n";
  return 0;
}

}  // namespace
}  // namespace xartrek::bench

int main() { return xartrek::bench::bench_main(); }
