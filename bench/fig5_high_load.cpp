// Figure 5 -- Average execution time of randomized application sets at
// high load: 120 total processes (more than the 102 total cores).
// Lower is faster.
//
// Expected shape: Xar-Trek beats vanilla x86 by ~19-31% (paper §4.1).
#include "bench/bench_util.hpp"
#include "exp/figures.hpp"

int main() {
  using namespace xartrek;

  exp::AvgExecConfig config;
  config.set_sizes = {5, 10, 15, 20, 25};
  config.total_processes = 120;
  config.systems = {apps::SystemMode::kVanillaX86,
                    apps::SystemMode::kVanillaArm,
                    apps::SystemMode::kAlwaysFpga,
                    apps::SystemMode::kXarTrek};
  config.runs = 10;
  config.seed = 2021;

  const auto result = exp::run_avg_exec_experiment(
      bench::suite(), bench::estimation().table, config);

  TextTable table(
      "Figure 5: Avg execution time (ms), high load (120 processes)");
  table.set_header({"set size", "Vanilla x86", "Vanilla ARM",
                    "Vanilla FPGA", "Xar-Trek", "Xar-Trek vs x86 gain %"});
  for (int size : config.set_sizes) {
    const double x86 =
        result.cell(apps::SystemMode::kVanillaX86, size).mean_ms;
    const double arm =
        result.cell(apps::SystemMode::kVanillaArm, size).mean_ms;
    const double fpga =
        result.cell(apps::SystemMode::kAlwaysFpga, size).mean_ms;
    const double xar = result.cell(apps::SystemMode::kXarTrek, size).mean_ms;
    table.add_row({std::to_string(size), TextTable::num(x86, 0),
                   TextTable::num(arm, 0), TextTable::num(fpga, 0),
                   TextTable::num(xar, 0),
                   TextTable::num(bench::gain_pct(x86, xar), 1)});
  }
  bench::print(table);
  std::cout << "Paper: Xar-Trek gains over vanilla x86 between 19% and 31% "
               "at high load.\n";
  return 0;
}
