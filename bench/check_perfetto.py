#!/usr/bin/env python3
"""Validate an exported Chrome trace-event / Perfetto JSON file.

Stdlib-only schema check for the traces written by obs::perfetto_trace_json
(see docs/observability.md).  Used by the `obs_schema_check` ctest against
the trace the `obs_smoke` run exports.

Checks:
  * top-level object with displayTimeUnit == "ms" and a traceEvents list
  * every event is a complete-duration event (ph == "X") with the fields
    the Perfetto JSON importer needs: name, cat, ts, dur, pid, tid
  * ts/dur are finite numbers, dur >= 0 (microseconds)
  * args.trace_id present and integral

With --require-stitch, additionally asserts that at least one trace id > 0
appears on two or more pids (lanes) -- the cross-cell stitch of a migrated
job -- and that the span names the stitch is made of are present.

Exit code 0 on success; 1 with a message on stderr otherwise.
"""

import argparse
import json
import math
import sys


def fail(msg):
    print(f"check_perfetto: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def is_finite_number(x):
    return isinstance(x, (int, float)) and not isinstance(x, bool) \
        and math.isfinite(x)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="path to the exported trace JSON")
    parser.add_argument("--require-stitch", action="store_true",
                        help="require a trace id > 0 spanning >= 2 pids")
    parser.add_argument("--min-events", type=int, default=1,
                        help="minimum number of trace events (default 1)")
    args = parser.parse_args()

    try:
        with open(args.trace, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        fail(f"cannot load {args.trace}: {exc}")

    if not isinstance(doc, dict):
        fail("top level is not an object")
    if doc.get("displayTimeUnit") != "ms":
        fail("displayTimeUnit missing or not 'ms'")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("traceEvents missing or not a list")
    if len(events) < args.min_events:
        fail(f"only {len(events)} events, expected >= {args.min_events}")

    pids_by_trace_id = {}
    names_by_trace_id = {}
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            fail(f"{where} is not an object")
        for key in ("name", "cat", "ph", "ts", "dur", "pid", "tid", "args"):
            if key not in ev:
                fail(f"{where} missing '{key}'")
        if ev["ph"] != "X":
            fail(f"{where} ph is {ev['ph']!r}, expected 'X'")
        if ev["cat"] != "xartrek":
            fail(f"{where} cat is {ev['cat']!r}, expected 'xartrek'")
        if not isinstance(ev["name"], str) or not ev["name"]:
            fail(f"{where} name is not a non-empty string")
        for key in ("ts", "dur"):
            if not is_finite_number(ev[key]):
                fail(f"{where} {key} is not a finite number")
        if ev["dur"] < 0:
            fail(f"{where} dur is negative")
        for key in ("pid", "tid"):
            if not isinstance(ev[key], int) or isinstance(ev[key], bool):
                fail(f"{where} {key} is not an integer")
        trace_id = ev["args"].get("trace_id") if isinstance(ev["args"], dict) \
            else None
        if not isinstance(trace_id, int) or isinstance(trace_id, bool):
            fail(f"{where} args.trace_id missing or not integral")
        pids_by_trace_id.setdefault(trace_id, set()).add(ev["pid"])
        names_by_trace_id.setdefault(trace_id, set()).add(ev["name"])

    if args.require_stitch:
        stitched = [tid for tid, pids in pids_by_trace_id.items()
                    if tid > 0 and len(pids) >= 2]
        if not stitched:
            fail("no trace id > 0 appears on >= 2 pids (no cross-cell "
                 "stitch)")
        # A stitched job must show the drain legs and the completion.
        needed = {"drain.transfer", "job.complete"}
        if not any(needed <= names_by_trace_id[tid] for tid in stitched):
            fail(f"no stitched trace id carries all of {sorted(needed)}")
        print(f"check_perfetto: OK: {len(events)} events, "
              f"{len(stitched)} stitched trace id(s)")
    else:
        print(f"check_perfetto: OK: {len(events)} events")
    sys.exit(0)


if __name__ == "__main__":
    main()
