// Substrate microbenchmarks (google-benchmark).
//
// Measures the building blocks the reproduction rests on: the event
// engine, the processor-sharing resource, cross-ISA state
// transformation, DSM page movement, symbol alignment, HLS synthesis,
// XCLBIN partitioning, and the real workload kernels.
#include <benchmark/benchmark.h>

#include "apps/benchmark_spec.hpp"
#include "compiler/multi_isa_builder.hpp"
#include "compiler/xar_compiler.hpp"
#include "hls/xclbin.hpp"
#include "hw/link.hpp"
#include "isa/symbol.hpp"
#include "popcorn/dsm.hpp"
#include "popcorn/fat_binary_io.hpp"
#include "popcorn/state_transform.hpp"
#include "runtime/protocol.hpp"
#include "sim/ps_resource.hpp"
#include "sim/simulation.hpp"
#include "workloads/bfs.hpp"
#include "workloads/digitrec.hpp"
#include "workloads/face_detect.hpp"
#include "workloads/mg.hpp"

namespace {

using namespace xartrek;

void BM_EventEngineThroughput(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation sim;
    for (int i = 0; i < n; ++i) {
      sim.schedule_at(TimePoint::at_ms(static_cast<double>(i % 97)), [] {});
    }
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventEngineThroughput)->Arg(1'000)->Arg(10'000)->Arg(100'000);

void BM_PsResourceChurn(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation sim;
    sim::PsResource cpu(sim, {"cpu", 6.0, 1.0});
    for (int i = 0; i < jobs; ++i) {
      cpu.submit(1.0 + (i % 7), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(cpu.delivered_work());
  }
  state.SetItemsProcessed(state.iterations() * jobs);
}
BENCHMARK(BM_PsResourceChurn)->Arg(64)->Arg(512)->Arg(4096);

void BM_StateTransform(benchmark::State& state) {
  const auto ir = compiler::make_app_ir("bench", "hot", 600, 250);
  const compiler::MultiIsaBuilder builder;
  const auto metadata = builder.synthesize_metadata(ir);
  const popcorn::StateTransformer transformer(metadata);
  popcorn::MachineState x86(isa::IsaKind::kX86_64, "main", 1,
                            metadata.find("main", 1)->frame_size_for(
                                isa::IsaKind::kX86_64));
  x86.write_register("rdi", 42);
  for (auto _ : state) {
    auto arm = transformer.transform(x86, isa::IsaKind::kAarch64);
    benchmark::DoNotOptimize(arm);
  }
}
BENCHMARK(BM_StateTransform);

void BM_DsmPagePull(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    hw::Link eth(sim, hw::ethernet_1gbps());
    popcorn::Dsm dsm(sim, eth, popcorn::Dsm::Config{2, 256 * 1024, 4096});
    int pulled = 0;
    for (std::uint64_t page = 0; page < 64; ++page) {
      dsm.read(1, page * 4096, 64,
               [&pulled](std::vector<std::byte>) { ++pulled; });
    }
    sim.run();
    benchmark::DoNotOptimize(pulled);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_DsmPagePull);

void BM_SymbolAlignment(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<isa::Symbol> symbols;
  for (int i = 0; i < n; ++i) {
    isa::Symbol s;
    s.name = "sym" + std::to_string(i);
    s.section = isa::Section::kText;
    s.alignment = 16;
    s.size_by_isa[isa::IsaKind::kX86_64] = 100 + i % 57;
    s.size_by_isa[isa::IsaKind::kAarch64] = 120 + i % 57;
    symbols.push_back(std::move(s));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(isa::align_symbols(symbols, isa::all_isas()));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SymbolAlignment)->Arg(100)->Arg(1000);

void BM_FullPipelineCompile(benchmark::State& state) {
  const auto specs = apps::paper_benchmarks();
  const compiler::XarCompiler xar;
  for (auto _ : state) {
    benchmark::DoNotOptimize(xar.compile(apps::make_profile_spec(specs),
                                         apps::make_irs(specs),
                                         apps::make_kernel_profiles(specs)));
  }
}
BENCHMARK(BM_FullPipelineCompile);

void BM_XclbinPartition(benchmark::State& state) {
  const hls::HlsCompiler hls;
  std::vector<hls::XoFile> xos;
  for (int i = 0; i < 24; ++i) {
    hls::KernelSource src;
    src.kernel_name = "K" + std::to_string(i);
    src.source_function = src.kernel_name;
    src.ops = {20, 2, 6, 0, 1e6};
    src.iface = {64 * 1024, 4 * 1024};
    src.unroll_factor = 1.0;
    auto xo = hls.compile(src);
    xo.config.resources.brams = 150;  // force multi-bin packing
    xos.push_back(std::move(xo));
  }
  const hls::XclbinPartitioner partitioner(fpga::alveo_u50_spec());
  for (auto _ : state) {
    benchmark::DoNotOptimize(partitioner.partition(xos));
  }
}
BENCHMARK(BM_XclbinPartition);

void BM_DigitrecClassify(benchmark::State& state) {
  Rng rng(1);
  const auto ds = workloads::make_synthetic_digits(rng, 180, 100, 3.0);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& test = ds.tests[i++ % ds.tests.size()];
    benchmark::DoNotOptimize(
        workloads::knn_classify(ds.training, test.bits, 3));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DigitrecClassify);

void BM_FaceDetect(benchmark::State& state) {
  Rng rng(2);
  const auto scene = workloads::make_scene(rng, 320, 240, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(workloads::detect_faces(scene.image));
  }
}
BENCHMARK(BM_FaceDetect);

void BM_IntegralImage(benchmark::State& state) {
  Rng rng(3);
  const auto scene = workloads::make_scene(rng, 640, 480, 0);
  for (auto _ : state) {
    workloads::IntegralImage ii(scene.image);
    benchmark::DoNotOptimize(ii.rect_sum(0, 0, 640, 480));
  }
}
BENCHMARK(BM_IntegralImage);

void BM_BfsTraversal(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  Rng rng(4);
  const auto graph = workloads::make_random_graph(rng, nodes, 10.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(workloads::bfs_depths(graph, 0));
  }
  state.SetItemsProcessed(state.iterations() * nodes);
}
BENCHMARK(BM_BfsTraversal)->Arg(1'000)->Arg(5'000);

void BM_ProtocolRoundTrip(benchmark::State& state) {
  const runtime::ThresholdReportMsg msg{"digit2000", runtime::Target::kFpga,
                                        1229.5, 67};
  for (auto _ : state) {
    const auto bytes = runtime::encode_message(msg);
    benchmark::DoNotOptimize(runtime::decode_message(bytes));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProtocolRoundTrip);

void BM_FatBinaryRoundTrip(benchmark::State& state) {
  const auto ir = compiler::make_app_ir("bench", "hot", 600, 250);
  const compiler::MultiIsaBuilder builder;
  const auto binary = builder.build(ir);
  for (auto _ : state) {
    const auto image = popcorn::write_fat_binary(binary);
    benchmark::DoNotOptimize(popcorn::read_fat_binary(image));
  }
}
BENCHMARK(BM_FatBinaryRoundTrip);

void BM_MgVcycle(benchmark::State& state) {
  Rng rng(5);
  const int n = 16;
  const auto rhs = workloads::mg_random_rhs(rng, n);
  workloads::Grid3 u(n, 0.0);
  for (auto _ : state) {
    workloads::mg_vcycle(u, rhs);
    benchmark::DoNotOptimize(u.data().data());
  }
}
BENCHMARK(BM_MgVcycle);

}  // namespace

BENCHMARK_MAIN();
