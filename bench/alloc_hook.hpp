// Global counting-allocator hook shared by the perf benches.
//
// Including this header replaces the TU's (binary's) global operator
// new/delete with counting versions -- plain globals, no locking: the
// benches are single-threaded and the hook must not allocate or
// synchronize.  Include it from exactly one translation unit per bench
// binary.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <new>

namespace xartrek::bench {

inline std::uint64_t g_alloc_calls = 0;
inline std::uint64_t g_alloc_bytes = 0;

struct AllocSnapshot {
  std::uint64_t calls;
  std::uint64_t bytes;
};

inline AllocSnapshot alloc_snapshot() {
  return {g_alloc_calls, g_alloc_bytes};
}

}  // namespace xartrek::bench

void* operator new(std::size_t n) {
  ++xartrek::bench::g_alloc_calls;
  xartrek::bench::g_alloc_bytes += n;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  ++xartrek::bench::g_alloc_calls;
  xartrek::bench::g_alloc_bytes += n;
  return std::malloc(n ? n : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
