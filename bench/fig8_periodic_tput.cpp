// Figure 8 -- Face-detection throughput under a periodic workload: the
// background load swings between 10 and 120 processes (triangular wave)
// while the multi-image app runs ten sequential 60-second windows.
// Higher is better.
//
// Expected shape (paper §4.3): Xar-Trek above both baselines -- ~175%
// over vanilla x86 and ~50% over always-FPGA -- with smaller margins
// than the fixed-load Figure 6 because the load keeps moving.
#include "bench/bench_util.hpp"
#include "exp/figures.hpp"

int main() {
  using namespace xartrek;

  exp::PeriodicTputConfig config;
  config.min_load = 10;
  config.max_load = 120;
  config.load_period = Duration::minutes(7);
  config.app_runs = 10;
  config.systems = {apps::SystemMode::kVanillaX86,
                    apps::SystemMode::kAlwaysFpga,
                    apps::SystemMode::kXarTrek};
  config.seed = 2021;

  const auto cells = exp::run_periodic_throughput_experiment(
      bench::suite(), bench::estimation().table, config);

  TextTable table(
      "Figure 8: Face-detection throughput under periodic load "
      "(10-120 procs)");
  table.set_header({"System", "images/s (mean of 10 runs)", "stddev"});
  double vanilla = 0;
  double fpga = 0;
  double xartrek = 0;
  for (const auto& cell : cells) {
    if (cell.system == apps::SystemMode::kVanillaX86) {
      vanilla = cell.mean_images_per_second;
    }
    if (cell.system == apps::SystemMode::kAlwaysFpga) {
      fpga = cell.mean_images_per_second;
    }
    if (cell.system == apps::SystemMode::kXarTrek) {
      xartrek = cell.mean_images_per_second;
    }
    table.add_row({to_string(cell.system),
                   TextTable::num(cell.mean_images_per_second, 2),
                   TextTable::num(cell.stddev, 2)});
  }
  bench::print(table);
  std::cout << "Xar-Trek vs vanilla x86: +"
            << TextTable::num(100.0 * (xartrek - vanilla) / vanilla, 0)
            << "% (paper: +175%);  vs always-FPGA: +"
            << TextTable::num(100.0 * (xartrek - fpga) / fpga, 0)
            << "% (paper: +50%).\n";
  return 0;
}
