// DSM migration-burst benchmark: serialized vs pipelined data path.
//
// Three measurements land in BENCH_dsm.json:
//
//  1. `burst`: simulated completion time of a migration working-set
//     burst (destination node pulls W contiguous pages) across window
//     depths 1/2/4/8/16 and working sets of 16/64/256 pages, in two
//     shapes: `single_read` (one op spanning the set -- run coalescing
//     fuses it into one wire transfer) and `page_stream` (one op per
//     page -- the per-pair window overlaps the per-transfer latencies).
//     Depth 1 is the legacy serialized engine; the speedup keys are the
//     acceptance signal (>= 2x on the 64-page set at depth >= 4).
//
//  2. `migration_overlap`: the executor's ARM path with transform
//     hidden behind the wire -- measured latency vs the serialized
//     transform+transfer+exec+transform+transfer sum.
//
//  3. `engine`: host-side cost of the streaming engine -- repeated
//     invalidate + re-pull cycles through write_from/read_into with the
//     counting allocator armed; steady state must stay allocation-free.
//
// Schema: docs/perf.md.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <utility>
#include <vector>

#include "hw/link.hpp"
#include "platform/testbed.hpp"
#include "popcorn/dsm.hpp"
#include "runtime/migration_executor.hpp"
#include "sim/simulation.hpp"

#include "bench/alloc_hook.hpp"

namespace xartrek::bench {
namespace {

using popcorn::Dsm;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

constexpr std::uint64_t kPage = 4096;

struct BurstPoint {
  std::uint64_t pages = 0;
  std::size_t depth = 0;
  double sim_ms = 0;
  double mb_per_s = 0;  // simulated goodput
  Dsm::Stats stats;
};

/// One migration burst: node 1 pulls `pages` contiguous pages from the
/// owner over a fresh 1 Gbps link.  `stream` issues one op per page
/// (window-bound); otherwise one op spans the whole set (coalescing).
BurstPoint run_burst(std::uint64_t pages, std::size_t depth, bool stream) {
  sim::Simulation sim;
  hw::Link eth(sim, hw::ethernet_1gbps());
  Dsm dsm(sim, eth, Dsm::Config{2, 2 << 20, kPage, depth});
  std::vector<std::byte> buffer(pages * kPage);
  std::size_t done = 0;
  if (stream) {
    for (std::uint64_t p = 0; p < pages; ++p) {
      dsm.read_into(1, p * kPage, kPage, buffer.data() + p * kPage,
                    [&done] { ++done; });
    }
  } else {
    dsm.read_into(1, 0, pages * kPage, buffer.data(), [&done] { ++done; });
  }
  sim.run();
  XAR_ASSERT(done == (stream ? pages : 1));
  BurstPoint point;
  point.pages = pages;
  point.depth = depth;
  point.sim_ms = sim.now().to_ms();
  point.mb_per_s =
      static_cast<double>(pages * kPage) / (1024.0 * 1024.0) /
      (point.sim_ms / 1000.0);
  point.stats = dsm.stats();
  return point;
}

/// Measured ARM-path latency with transform overlapped behind the wire,
/// against the analytic serialized sum of the same legs.
struct OverlapResult {
  double serialized_model_ms = 0;
  double measured_ms = 0;
  double savings_ms = 0;
};

OverlapResult run_migration_overlap() {
  platform::Testbed testbed;
  runtime::MigrationExecutor executor(testbed);
  runtime::FunctionCosts costs;
  costs.arm_ms = Duration::ms(100);
  costs.migrate_bytes = 4 << 20;  // 4 MiB working set
  costs.return_bytes = 1 << 20;
  costs.transform_ms = Duration::ms(5);

  double measured = 0;
  bool done = false;
  executor.execute(runtime::Target::kArm, costs, [&](Duration d) {
    measured = d.to_ms();
    done = true;
  });
  while (!done && testbed.simulation().step_one(TimePoint::at_ms(1e9))) {
  }
  XAR_ASSERT(done);

  const auto wire_ms = [&testbed](std::uint64_t bytes) {
    const auto& spec = testbed.ethernet().spec();
    return spec.latency.to_ms() + static_cast<double>(bytes) /
                                      (1024.0 * 1024.0) /
                                      spec.bandwidth_mb_per_ms;
  };
  OverlapResult r;
  r.serialized_model_ms = costs.transform_ms.to_ms() +
                          wire_ms(costs.migrate_bytes) +
                          costs.arm_ms.to_ms() + costs.transform_ms.to_ms() +
                          wire_ms(costs.return_bytes);
  r.measured_ms = measured;
  r.savings_ms = r.serialized_model_ms - r.measured_ms;
  return r;
}

/// Host-side engine cost: repeated owner-write (invalidate) + reader
/// page-stream (re-pull) cycles through the zero-copy entry points.
struct EngineResult {
  std::uint64_t ops = 0;
  std::uint64_t pages = 0;
  double seconds = 0;
  AllocSnapshot allocs{};
};

EngineResult run_engine(std::uint64_t cycles, std::uint64_t warmup_cycles) {
  sim::Simulation sim;
  hw::Link eth(sim, hw::ethernet_1gbps());
  constexpr std::uint64_t kPages = 128;
  Dsm dsm(sim, eth, Dsm::Config{2, kPages * kPage, kPage, 8});
  std::vector<std::byte> payload(kPages * kPage, std::byte{0x5C});
  std::vector<std::byte> sink(kPages * kPage);

  std::uint64_t ops = 0;
  auto cycle = [&] {
    // Owner rewrites the working set (upgrades + invalidations), then
    // the reader streams it back page by page through the window.
    dsm.write_from(0, 0, payload, [&ops] { ++ops; });
    for (std::uint64_t p = 0; p < kPages; ++p) {
      dsm.read_into(1, p * kPage, kPage, sink.data() + p * kPage,
                    [&ops] { ++ops; });
    }
    sim.run();
  };
  for (std::uint64_t i = 0; i < warmup_cycles; ++i) cycle();

  const AllocSnapshot before = alloc_snapshot();
  const std::uint64_t measured_from = ops;
  const auto start = Clock::now();
  for (std::uint64_t i = 0; i < cycles; ++i) cycle();
  EngineResult r;
  r.seconds = seconds_since(start);
  const AllocSnapshot after = alloc_snapshot();
  r.ops = ops - measured_from;
  r.pages = cycles * kPages * 2;  // each cycle moves the set twice
  r.allocs = {after.calls - before.calls, after.bytes - before.bytes};
  return r;
}

void emit_point(std::ostream& os, const BurstPoint& p, bool last) {
  os << "      {\"pages\": " << p.pages << ", \"depth\": " << p.depth
     << ", \"sim_ms\": " << p.sim_ms << ", \"mb_per_s\": " << p.mb_per_s
     << ", \"link_transfers\": " << p.stats.link_transfers
     << ", \"coalesced_runs\": " << p.stats.coalesced_runs
     << ", \"max_in_flight\": " << p.stats.max_in_flight
     << ", \"bytes_per_transfer\": " << p.stats.bytes_per_transfer() << "}"
     << (last ? "" : ",") << "\n";
}

int bench_main() {
  const bool smoke = std::getenv("XARTREK_BENCH_SMOKE") != nullptr;
  const std::uint64_t kCycles = smoke ? 100 : 2'000;
  const std::uint64_t kWarmup = smoke ? 10 : 100;

  const std::vector<std::uint64_t> working_sets{16, 64, 256};
  const std::vector<std::size_t> depths{1, 2, 4, 8, 16};

  std::vector<BurstPoint> single_read;
  std::vector<BurstPoint> page_stream;
  for (const std::uint64_t pages : working_sets) {
    for (const std::size_t depth : depths) {
      single_read.push_back(run_burst(pages, depth, /*stream=*/false));
      page_stream.push_back(run_burst(pages, depth, /*stream=*/true));
    }
  }
  const auto point_ms = [&](const std::vector<BurstPoint>& pts,
                            std::uint64_t pages, std::size_t depth) {
    for (const auto& p : pts) {
      if (p.pages == pages && p.depth == depth) return p.sim_ms;
    }
    XAR_ASSERT(false);
    return 0.0;
  };
  const double speedup_single_w4 =
      point_ms(single_read, 64, 1) / point_ms(single_read, 64, 4);
  const double speedup_single_w8 =
      point_ms(single_read, 64, 1) / point_ms(single_read, 64, 8);
  const double speedup_stream_w4 =
      point_ms(page_stream, 64, 1) / point_ms(page_stream, 64, 4);
  const double speedup_stream_w8 =
      point_ms(page_stream, 64, 1) / point_ms(page_stream, 64, 8);

  std::cerr << "[dsm_bench] migration overlap...\n";
  const OverlapResult overlap = run_migration_overlap();

  std::cerr << "[dsm_bench] engine cost: " << kCycles
            << " invalidate+stream cycles...\n";
  const EngineResult engine = run_engine(kCycles, kWarmup);

  std::ofstream out("BENCH_dsm.json");
  out.precision(6);
  out << "{\n  \"bench\": \"dsm\",\n  \"burst\": {\n"
      << "    \"page_size\": " << kPage << ",\n"
      << "    \"single_read\": [\n";
  for (std::size_t i = 0; i < single_read.size(); ++i) {
    emit_point(out, single_read[i], i + 1 == single_read.size());
  }
  out << "    ],\n    \"page_stream\": [\n";
  for (std::size_t i = 0; i < page_stream.size(); ++i) {
    emit_point(out, page_stream[i], i + 1 == page_stream.size());
  }
  out << "    ],\n"
      << "    \"speedup_single_read_64p_w4\": " << speedup_single_w4 << ",\n"
      << "    \"speedup_single_read_64p_w8\": " << speedup_single_w8 << ",\n"
      << "    \"speedup_page_stream_64p_w4\": " << speedup_stream_w4 << ",\n"
      << "    \"speedup_page_stream_64p_w8\": " << speedup_stream_w8 << "\n"
      << "  },\n  \"migration_overlap\": {\n"
      << "    \"serialized_model_ms\": " << overlap.serialized_model_ms
      << ",\n"
      << "    \"measured_ms\": " << overlap.measured_ms << ",\n"
      << "    \"savings_ms\": " << overlap.savings_ms << "\n"
      << "  },\n  \"engine\": {\n"
      << "    \"ops\": " << engine.ops << ",\n"
      << "    \"pages_moved\": " << engine.pages << ",\n"
      << "    \"seconds\": " << engine.seconds << ",\n"
      << "    \"ns_per_page\": "
      << 1e9 * engine.seconds / static_cast<double>(engine.pages) << ",\n"
      << "    \"ops_per_sec\": "
      << static_cast<double>(engine.ops) / engine.seconds << ",\n"
      << "    \"alloc_calls_per_op\": "
      << static_cast<double>(engine.allocs.calls) /
             static_cast<double>(engine.ops)
      << ",\n    \"alloc_bytes_per_op\": "
      << static_cast<double>(engine.allocs.bytes) /
             static_cast<double>(engine.ops)
      << "\n  }\n}\n";
  out.close();

  std::cerr << "[dsm_bench] 64p single-read: depth1="
            << point_ms(single_read, 64, 1)
            << " ms, depth4=" << point_ms(single_read, 64, 4)
            << " ms (speedup " << speedup_single_w4 << "x)\n"
            << "[dsm_bench] 64p page-stream: depth1="
            << point_ms(page_stream, 64, 1)
            << " ms, depth4=" << point_ms(page_stream, 64, 4)
            << " ms (speedup " << speedup_stream_w4 << "x)\n"
            << "[dsm_bench] migration overlap: serialized "
            << overlap.serialized_model_ms << " ms -> " << overlap.measured_ms
            << " ms (saved " << overlap.savings_ms << ")\n"
            << "[dsm_bench] engine: "
            << 1e9 * engine.seconds / static_cast<double>(engine.pages)
            << " ns/page, allocs/op="
            << static_cast<double>(engine.allocs.calls) /
                   static_cast<double>(engine.ops)
            << "\n[dsm_bench] wrote BENCH_dsm.json\n";
  return 0;
}

}  // namespace
}  // namespace xartrek::bench

int main() { return xartrek::bench::bench_main(); }
