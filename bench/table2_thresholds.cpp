// Table 2 -- Xar-Trek's threshold estimation.
//
// Runs the step-G estimator (exp::ThresholdEstimator): measures the two
// migration scenarios in isolation, then sweeps the x86 load upward by
// launching additional instances of the same application until the
// plain-x86 time exceeds each scenario, and reports the crossing loads
// as FPGA_THR / ARM_THR.  The derived thresholds should match the
// paper's Table 2 in regime: exactly 0 for the FPGA-favoured apps, and
// within a few processes elsewhere.
#include "bench/bench_util.hpp"

int main() {
  using namespace xartrek;

  struct PaperRow {
    const char* app;
    int fpga_thr, arm_thr;
  };
  const PaperRow paper[] = {
      {"cg_a", 31, 25},      {"facedet320", 16, 31}, {"facedet640", 0, 23},
      {"digit500", 0, 18},   {"digit2000", 0, 17},
  };

  TextTable table("Table 2: Xar-Trek's threshold estimation");
  table.set_header({"Benchmark", "HW Kernel", "FPGA_THR", "ARM_THR",
                    "paper FPGA_THR", "paper ARM_THR"});
  for (const auto& row : bench::estimation().rows) {
    int paper_fpga = 0;
    int paper_arm = 0;
    for (const auto& p : paper) {
      if (row.app == p.app) {
        paper_fpga = p.fpga_thr;
        paper_arm = p.arm_thr;
      }
    }
    table.add_row({row.app, row.kernel, std::to_string(row.fpga_threshold),
                   std::to_string(row.arm_threshold),
                   std::to_string(paper_fpga), std::to_string(paper_arm)});
  }
  bench::print(table);
  return 0;
}
