#!/usr/bin/env python3
"""CI perf-regression gate: compare a fresh BENCH_*.json against the
committed baseline and fail when a tracked metric regresses past its
tolerance.

Usage:
    compare_bench.py --baseline BENCH_sim_core.json \
                     --candidate build/BENCH_sim_core.json [--tolerance 0.25]

The bench type is read from the JSON's "bench" field.  Two metric
classes are gated:

  * machine-neutral: allocation counts (exact contracts -- gated with a
    small absolute epsilon) and same-run ratios (pooled-vs-legacy
    speedups, sharded-vs-single-queue speedups, O(log n) flatness
    ratios).  These are robust across host generations because both
    sides of the ratio ran on the same machine.
  * cross-machine: absolute rates (ns/event, requests/sec).  These
    compare a CI run against the committed baseline, so a runner
    hardware change can shift them; refresh the baselines from the
    bench-smoke artifacts when that happens (see docs/ci.md).  Set
    XARTREK_BENCH_GATE_CROSS_MACHINE=0 to demote them to warnings.

Default tolerance is 25% in the regressing direction; improvements
never fail.
"""

import argparse
import json
import os
import sys

# (path, direction, cross_machine) -- direction "higher" means larger is
# better (gate: candidate >= baseline * (1 - tol)); "lower" means smaller
# is better (gate: candidate <= baseline * (1 + tol)); "abs" means the
# candidate must stay near zero; "exact" means the candidate must equal
# the baseline (conservation flags, which must not drift in either
# direction).
METRICS = {
    "sim_core": [
        ("events.steady_churn.pooled.alloc_calls_per_event", "abs", False),
        ("events.cancel_churn.pooled.alloc_calls_per_event", "abs", False),
        ("protocol.single_pass.alloc_calls_per_request", "abs", False),
        ("protocol.borrowed_view.alloc_calls_per_request", "abs", False),
        ("events.speedup", "higher", False),
        ("protocol.speedup", "higher", False),
        ("protocol.borrowed_speedup", "higher", False),
        ("sharded.ratio_1shard_vs_single_queue", "higher", False),
        ("sharded.aggregate_speedup_4_shards", "higher", False),
        ("events.steady_churn.pooled.events_per_sec", "higher", True),
        ("protocol.single_pass.requests_per_sec", "higher", True),
        ("sharded.single_queue.wall_events_per_sec", "higher", True),
    ],
    "ps_resource": [
        ("request_loop.alloc_calls_per_request", "abs", False),
        ("request_loop.alloc_bytes_per_request", "abs", False),
        ("scaling.pooled_cost_ratio_100k_vs_1k", "lower", False),
        ("batch_decode.per_frame.alloc_calls_per_request", "abs", False),
        ("batch_decode.vectorized.alloc_calls_per_request", "abs", False),
        ("batch_decode.speedup", "higher", False),
        ("scaling.pooled.0.ns_per_event", "lower", True),
        ("scaling.pooled.2.ns_per_event", "lower", True),
        ("request_loop.requests_per_sec", "higher", True),
        ("batch_decode.vectorized.ns_per_request", "lower", True),
    ],
    "cluster": [
        # Same-run capacity ratios (single queue vs 1/2/4 cells measured
        # on the same host in the same run) are machine-neutral; the
        # aggregate_speedup_4_cells key is the tentpole's >= 2.5x
        # acceptance bar.  Absolute rates cross machines.
        ("cluster.ratio_1cell_vs_single_queue", "higher", False),
        ("cluster.aggregate_speedup_2_cells", "higher", False),
        ("cluster.aggregate_speedup_4_cells", "higher", False),
        # Skewed load: same-run critical-path capacity ratios (fixed vs
        # adaptive vs adaptive+steal on the identical trace, identical
        # host) are machine-neutral; events_conserved pins the trace
        # identity contract exactly.  speedup_adaptive_steal_vs_fixed is
        # the adaptive-epochs/cell-stealing >= 1.3x acceptance bar.
        ("skew.speedup_adaptive_vs_fixed", "higher", False),
        ("skew.speedup_adaptive_steal_vs_fixed", "higher", False),
        ("skew.events_conserved", "exact", False),
        # Fault machinery: exactly-once completion is an exact contract;
        # the chaos/no-fault event ratio is simulation-deterministic
        # (same plan, same seeds), hence machine-neutral.
        ("fault.completed_conserved", "exact", False),
        ("fault.event_overhead_ratio", "lower", False),
        # Gray storm: degraded faults (slow cells, lossy/corrupting
        # links, flaky ports) must not lose jobs, and the retry/backoff
        # machinery's event cost over the clean run stays bounded.
        # Deterministic plan and seeds, hence machine-neutral.
        ("gray.completed_conserved", "exact", False),
        ("gray.retry_overhead_ratio", "lower", False),
        # Observability layer: tracing is pure metadata, so the event
        # counts with the tracer off and on must match exactly, the
        # best-of-3 wall overhead of tracing the gray storm stays
        # within the 5% budget, and the hot primitives (counter add,
        # histogram record, span begin/end) allocate nothing in steady
        # state -- an exact contract.
        ("obs.overhead_ratio", "lower", False),
        ("obs.budget_met", "exact", False),
        ("obs.events_identical", "exact", False),
        ("obs.trace_nonempty", "exact", False),
        ("obs.alloc_calls_per_event", "abs", False),
        ("obs.alloc_bytes_per_event", "abs", False),
        ("cluster.single_queue.wall_events_per_sec", "higher", True),
        ("attach_detach.jobs_per_sec", "higher", True),
    ],
    "fpga": [
        # Everything gated here is a simulated-time count from a
        # deterministic workload (same arrival schedule, same policy
        # decisions on any host), so all metrics are machine-neutral.
        # speedup_vs_whole_image is the virtualization tentpole's >= 2x
        # acceptance bar; trace_identical pins serial-vs-parallel
        # bitwise trace identity with the slot scheduler evicting and
        # replicating mid-run, and slot_activity pins that both policy
        # arms actually fired (identity over an idle scheduler would be
        # vacuous).  Gating both absolute completion counts keeps the
        # ratio honest -- the speedup cannot "improve" by degrading the
        # whole-image baseline.
        ("slots.speedup_vs_whole_image", "higher", False),
        ("slots.trace_identical", "exact", False),
        ("slots.slot_activity", "exact", False),
        ("slots.virtualized.fpga_completions", "higher", False),
        ("slots.whole_image.fpga_completions", "higher", False),
    ],
    "dsm": [
        # Simulated-time ratios and allocation contracts are exact and
        # machine-neutral; only the host-side engine rate crosses
        # machines.
        ("burst.speedup_single_read_64p_w4", "higher", False),
        ("burst.speedup_single_read_64p_w8", "higher", False),
        ("burst.speedup_page_stream_64p_w4", "higher", False),
        ("burst.speedup_page_stream_64p_w8", "higher", False),
        ("migration_overlap.savings_ms", "higher", False),
        ("engine.alloc_calls_per_op", "abs", False),
        ("engine.alloc_bytes_per_op", "abs", False),
        ("engine.ns_per_page", "lower", True),
        ("engine.ops_per_sec", "higher", True),
    ],
}

# Allocation-count contracts: the candidate must stay (near) zero
# regardless of the baseline value.
ABS_EPSILON = 0.01


def lookup(doc, path):
    node = doc
    for part in path.split("."):
        if isinstance(node, list):
            node = node[int(part)]
        else:
            node = node[part]
    return float(node)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--candidate", required=True)
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional regression (default 0.25)")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.candidate) as f:
        candidate = json.load(f)

    bench = candidate.get("bench")
    if bench != baseline.get("bench"):
        print(f"FAIL: baseline is '{baseline.get('bench')}' but candidate "
              f"is '{bench}'")
        return 1
    if bench not in METRICS:
        print(f"FAIL: unknown bench type '{bench}'")
        return 1

    gate_cross = os.environ.get(
        "XARTREK_BENCH_GATE_CROSS_MACHINE", "1") != "0"
    tol = args.tolerance
    failures = []
    print(f"{'metric':55} {'baseline':>12} {'candidate':>12}  verdict")
    for path, direction, cross_machine in METRICS[bench]:
        try:
            base = lookup(baseline, path)
            cand = lookup(candidate, path)
        except (KeyError, IndexError, TypeError):
            failures.append(f"{path}: missing from baseline or candidate")
            print(f"{path:55} {'-':>12} {'-':>12}  MISSING")
            continue
        if direction == "abs":
            ok = cand <= max(base, 0.0) + ABS_EPSILON
        elif direction == "exact":
            ok = abs(cand - base) <= ABS_EPSILON
        elif direction == "higher":
            ok = cand >= base * (1.0 - tol)
        else:  # lower
            ok = cand <= base * (1.0 + tol)
        verdict = "ok"
        if not ok:
            if cross_machine and not gate_cross:
                verdict = "WARN (cross-machine, not gated)"
            else:
                verdict = "REGRESSED"
                failures.append(
                    f"{path}: baseline {base:g}, candidate {cand:g} "
                    f"(direction: {direction}, tolerance {tol:.0%})")
        print(f"{path:55} {base:12.4g} {cand:12.4g}  {verdict}")

    if failures:
        print(f"\nFAIL: {len(failures)} metric(s) regressed more than "
              f"{tol:.0%} vs {args.baseline}:")
        for f_ in failures:
            print(f"  - {f_}")
        print("\nIf this is an accepted trade-off or a runner hardware "
              "change, refresh the baseline from the bench-smoke "
              "artifacts (see docs/ci.md).")
        return 1
    print(f"\nOK: no tracked metric regressed more than {tol:.0%}.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
