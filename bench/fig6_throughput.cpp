// Figure 6 -- Throughput of face detection (images per 60-second
// window) under fixed background load of 0/25/50/75/100 MG-B processes.
// Higher is better.
//
// The multi-image face-detection app targets 1000 images with a 60 s
// deadline; each image is one selected-function call, so the Xar-Trek
// scheduler decides per image.  Expected shape (paper §4.2): beyond the
// FPGA threshold (16), Xar-Trek migrates to the FPGA and wins ~4x over
// vanilla x86; it also beats the always-FPGA baseline thanks to eager
// configuration at application start.  An ablation with eager
// configuration disabled quantifies exactly that advantage.
#include "bench/bench_util.hpp"
#include "exp/figures.hpp"

int main() {
  using namespace xartrek;

  exp::ThroughputConfig config;
  config.background_loads = {0, 25, 50, 75, 100};
  config.systems = {apps::SystemMode::kVanillaX86,
                    apps::SystemMode::kAlwaysFpga,
                    apps::SystemMode::kXarTrek};
  config.runs = 10;
  config.seed = 2021;

  const auto result = exp::run_throughput_experiment(
      bench::suite(), bench::estimation().table, config);

  // Ablation 1: Xar-Trek with lazy (call-time) configuration.
  exp::ThroughputConfig lazy = config;
  lazy.systems = {apps::SystemMode::kXarTrek};
  lazy.base_options.eager_configure = false;
  const auto lazy_result = exp::run_throughput_experiment(
      bench::suite(), bench::estimation().table, lazy);

  TextTable table("Figure 6: Face-detection throughput (images / 60 s)");
  table.set_header({"#background procs", "Vanilla x86", "Vanilla FPGA",
                    "Xar-Trek", "Xar-Trek (lazy config)",
                    "Xar-Trek vs x86"});
  for (int load : config.background_loads) {
    const double x86 =
        result.cell(apps::SystemMode::kVanillaX86, load).mean_images;
    const double fpga =
        result.cell(apps::SystemMode::kAlwaysFpga, load).mean_images;
    const double xar =
        result.cell(apps::SystemMode::kXarTrek, load).mean_images;
    const double xar_lazy =
        lazy_result.cell(apps::SystemMode::kXarTrek, load).mean_images;
    table.add_row({std::to_string(load), TextTable::num(x86, 0),
                   TextTable::num(fpga, 0), TextTable::num(xar, 0),
                   TextTable::num(xar_lazy, 0),
                   TextTable::num(x86 > 0 ? xar / x86 : 0.0, 2) + "x"});
  }
  bench::print(table);
  std::cout
      << "Paper: ~4x average gain once the load exceeds 25 processes;\n"
         "Xar-Trek also beats always-FPGA because the XCLBIN is\n"
         "configured eagerly at main() start (the lazy-config ablation\n"
         "column gives up part of that edge on the first calls).\n";
  return 0;
}
