// Figure 10 -- Size of binaries.  Smaller is better.
//
// For each application, the three development processes produce:
//   traditional FPGA flow : x86 executable + XCLBIN
//   Popcorn (x86+ARM)     : multi-ISA executable
//   Xar-Trek              : multi-ISA executable + XCLBIN
// Xar-Trek subsumes both baselines, so it is always largest; the paper
// reports increases between 33% and 282%, and notes Popcorn's binary is
// largest for CG-A (900 LOC vs 300-500 for the others).
#include "bench/bench_util.hpp"
#include "compiler/size_model.hpp"
#include "compiler/xar_compiler.hpp"

int main() {
  using namespace xartrek;

  const auto& specs = bench::suite();
  const compiler::XarCompiler xar;
  const auto suite = xar.compile(apps::make_profile_spec(specs),
                                 apps::make_irs(specs),
                                 apps::make_kernel_profiles(specs));
  const hls::XclbinBuilder builder(fpga::alveo_u50_spec());

  TextTable table("Figure 10: Size of binaries (KiB)");
  table.set_header({"Application", "x86+FPGA (traditional)",
                    "Popcorn (x86+ARM)", "Xar-Trek",
                    "increase vs x86+FPGA %", "increase vs Popcorn %"});
  auto kib = [](std::uint64_t bytes) {
    return TextTable::num(static_cast<double>(bytes) / 1024.0, 0);
  };
  double min_inc = 1e9;
  double max_inc = -1e9;
  for (const auto& app : suite.apps) {
    const auto report = compiler::size_report(app, builder);
    const double inc_fpga =
        report.increase_over(report.traditional_fpga_total());
    const double inc_popcorn = report.increase_over(report.popcorn_total());
    min_inc = std::min({min_inc, inc_fpga, inc_popcorn});
    max_inc = std::max({max_inc, inc_fpga, inc_popcorn});
    table.add_row({app.name, kib(report.traditional_fpga_total()),
                   kib(report.popcorn_total()), kib(report.xartrek_total()),
                   TextTable::num(inc_fpga, 0),
                   TextTable::num(inc_popcorn, 0)});
  }
  bench::print(table);

  TextTable detail("Breakdown of Xar-Trek's overheads (KiB)");
  detail.set_header({"Application", "x86 executable", "multi-ISA executable",
                     "migration metadata", "alignment padding",
                     "XCLBIN (marginal)"});
  for (const auto& app : suite.apps) {
    const auto report = compiler::size_report(app, builder);
    detail.add_row({app.name, kib(report.x86_executable),
                    kib(report.multi_isa_executable),
                    kib(report.migration_metadata),
                    kib(report.alignment_padding),
                    kib(report.xclbin_marginal)});
  }
  bench::print(detail);
  std::cout << "Increase range: " << TextTable::num(min_inc, 0) << "% - "
            << TextTable::num(max_inc, 0)
            << "% (paper: 33% - 282%).\n";
  return 0;
}
