// Figure 7 -- Average execution time under a periodic workload: thirty
// waves of 20 applications launched every 30 seconds (43-minute frame),
// process count swinging between medium and high.  Lower is better.
//
// Also runs the DESIGN.md ablations that only matter under time-varying
// load: dynamic threshold refinement off (Algorithm 1), reconfiguration
// latency hiding off (Algorithm 2's overlap), and a cold-start
// threshold table (no step-G seeding).
#include "bench/bench_util.hpp"
#include "exp/figures.hpp"

int main() {
  using namespace xartrek;

  exp::PeriodicExecConfig config;
  config.waves = 30;
  config.apps_per_wave = 20;
  config.wave_interval = Duration::seconds(30);
  config.systems = {apps::SystemMode::kVanillaX86,
                    apps::SystemMode::kAlwaysFpga,
                    apps::SystemMode::kXarTrek};
  config.seed = 2021;

  const auto cells = exp::run_periodic_exec_experiment(
      bench::suite(), bench::estimation().table, config);

  TextTable table(
      "Figure 7: Periodic workload (30 waves x 20 apps / 30 s), avg "
      "execution time");
  table.set_header({"System", "avg exec (ms)", "stddev", "completed",
                    "makespan (min)", "x86 load min/mean/max"});
  double vanilla = 0;
  double xartrek = 0;
  double fpga = 0;
  for (const auto& cell : cells) {
    if (cell.system == apps::SystemMode::kVanillaX86) vanilla = cell.mean_ms;
    if (cell.system == apps::SystemMode::kXarTrek) xartrek = cell.mean_ms;
    if (cell.system == apps::SystemMode::kAlwaysFpga) fpga = cell.mean_ms;
    table.add_row({to_string(cell.system), TextTable::num(cell.mean_ms, 0),
                   TextTable::num(cell.stddev_ms, 0),
                   std::to_string(cell.completed),
                   TextTable::num(cell.makespan_minutes, 1),
                   TextTable::num(cell.load_min, 0) + "/" +
                       TextTable::num(cell.load_mean, 0) + "/" +
                       TextTable::num(cell.load_max, 0)});
  }
  bench::print(table);
  std::cout << "Xar-Trek vs vanilla x86: "
            << TextTable::num(bench::gain_pct(vanilla, xartrek), 1)
            << "% (paper: 18%);  vs always-FPGA: "
            << TextTable::num(bench::gain_pct(fpga, xartrek), 1)
            << "% (paper: 32%).\n\n";

  // --- Ablations (Xar-Trek only) -------------------------------------
  struct Ablation {
    const char* name;
    exp::ExperimentOptions options;
  };
  std::vector<Ablation> ablations;
  {
    Ablation a;
    a.name = "no dynamic threshold refinement (Algorithm 1 off)";
    a.options.dynamic_thresholds = false;
    ablations.push_back(a);
    Ablation b;
    b.name = "blocking reconfiguration (latency hiding off)";
    b.options.hide_reconfiguration = false;
    ablations.push_back(b);
    Ablation c;
    c.name = "lazy FPGA configuration (no eager main-start config)";
    c.options.eager_configure = false;
    ablations.push_back(c);
  }

  TextTable ab_table("Figure 7 ablations (Xar-Trek variants)");
  ab_table.set_header({"Variant", "avg exec (ms)", "delta vs full %"});
  ab_table.add_row({"full Xar-Trek", TextTable::num(xartrek, 0), "0.0"});
  for (const auto& ab : ablations) {
    exp::PeriodicExecConfig ab_config = config;
    ab_config.systems = {apps::SystemMode::kXarTrek};
    ab_config.base_options = ab.options;
    const auto ab_cells = exp::run_periodic_exec_experiment(
        bench::suite(), bench::estimation().table, ab_config);
    ab_table.add_row({ab.name, TextTable::num(ab_cells[0].mean_ms, 0),
                      TextTable::num(
                          100.0 * (ab_cells[0].mean_ms - xartrek) / xartrek,
                          1)});
  }
  // Cold-start seeding ablation: empty threshold table.
  {
    exp::PeriodicExecConfig cold = config;
    cold.systems = {apps::SystemMode::kXarTrek};
    const auto cold_cells = exp::run_periodic_exec_experiment(
        bench::suite(), runtime::ThresholdTable{}, cold);
    ab_table.add_row({"cold threshold table (no step-G seed)",
                      TextTable::num(cold_cells[0].mean_ms, 0),
                      TextTable::num(100.0 *
                                         (cold_cells[0].mean_ms - xartrek) /
                                         xartrek,
                                     1)});
  }
  bench::print(ab_table);
  return 0;
}
