// Table 4 -- Execution time of the BFS application (milliseconds).
//
// The paper's §4.4 anti-example: pointer-chasing BFS is orders of
// magnitude slower on the PCIe-attached FPGA than on x86 at every graph
// size, so the threshold estimator will (almost) never find a load that
// justifies migrating it.  The x86 column is the calibrated profile of
// the authors' measurements; the FPGA column follows the quadratic
// growth of their measurements (fit at the endpoints).  The harness
// also runs the *functional* BFS on each generated graph to show the
// kernel is real, and reports the estimated FPGA threshold for BFS.
#include "bench/bench_util.hpp"
#include "workloads/bfs.hpp"

int main() {
  using namespace xartrek;

  struct PaperRow {
    int nodes;
    double x86, fpga;
  };
  const PaperRow paper[] = {{1000, 3.36, 726.50},
                            {2000, 115.74, 2282.54},
                            {3000, 256.94, 4981.05},
                            {4000, 458.04, 8760.80},
                            {5000, 721.48, 13524.76}};

  TextTable table("Table 4: Execution time of BFS application (ms)");
  table.set_header({"BFS nodes", "x86", "FPGA", "paper x86", "paper FPGA",
                    "FPGA/x86 ratio", "reached nodes (functional run)"});

  Rng rng(2021);
  for (const auto& p : paper) {
    const auto times = apps::bfs_reference_times(p.nodes);
    // Functional check: actually run BFS over a graph of this size.
    const auto graph = workloads::make_random_graph(rng, p.nodes, 10.0);
    const auto depths = workloads::bfs_depths(graph, 0);
    int reached = 0;
    for (auto d : depths) {
      if (d >= 0) ++reached;
    }
    table.add_row({std::to_string(p.nodes),
                   TextTable::num(times.x86.to_ms(), 2),
                   TextTable::num(times.fpga.to_ms(), 2),
                   TextTable::num(p.x86, 2), TextTable::num(p.fpga, 2),
                   TextTable::num(times.fpga / times.x86, 1),
                   std::to_string(reached)});
  }
  bench::print(table);

  std::cout << "Consequence (paper §4.4): at every size the FPGA loses by\n"
               "an order of magnitude or more, so Xar-Trek's estimator\n"
               "would pin BFS's best target to x86 at any realistic load\n"
               "(the crossing load would exceed "
            << static_cast<int>(6.0 * 13524.76 / 721.48)
            << " processes even at 5000 nodes).\n";
  return 0;
}
