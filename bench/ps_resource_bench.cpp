// PsResource scaling + end-to-end request-loop benchmark.
//
// Three measurements land in BENCH_ps_resource.json:
//
//  1. `scaling`: per-event cost of the virtual-time PsResource with 1k,
//     10k and 100k resident jobs churning short jobs through
//     submit/complete -- near-flat (O(log n)) -- against an in-binary
//     replica of the pre-refactor per-job-decrement design, whose cost
//     grows linearly with residency (O(n) per event, O(n^2) sweeps).
//
//  2. `request_loop`: the whole steady-state placement loop -- PS-pool
//     submit -> wire encode -> borrowed decode -> Algorithm-2 decide ->
//     decision callback -- through a real SchedulerServer/LoadMonitor/
//     FpgaDevice stack, with a global counting-allocator hook asserting
//     zero steady-state allocations per request.
//
//  3. `batch_decode`: a spike tick's packed request arena decoded with
//     one vectorized sweep (decode_placement_request_arena, the
//     server's batch pass) against per-frame decode_message_view calls
//     -- the per-request ns delta of the vectorized decode.
//
// Schema: docs/perf.md.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include "fpga/device.hpp"
#include "hw/cpu_cluster.hpp"
#include "hw/link.hpp"
#include "runtime/load_monitor.hpp"
#include "runtime/protocol.hpp"
#include "runtime/scheduler_server.hpp"
#include "runtime/threshold_table.hpp"
#include "sim/ps_resource.hpp"
#include "sim/simulation.hpp"

#include "bench/alloc_hook.hpp"

namespace xartrek::bench {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// --- legacy PsResource (the seed design, O(resident) per event) -------------

class LegacyPs {
 public:
  using JobId = std::uint64_t;
  using Callback = std::function<void()>;

  LegacyPs(sim::Simulation& sim, double capacity, double per_job_cap)
      : sim_(sim),
        capacity_(capacity),
        per_job_cap_(per_job_cap),
        last_advance_(sim.now()) {}

  JobId submit(double demand, Callback on_complete) {
    advance();
    const JobId id = next_id_++;
    jobs_.emplace(id, Job{demand, std::move(on_complete)});
    reschedule();
    return id;
  }

 private:
  struct Job {
    double remaining;
    Callback on_complete;
  };

  [[nodiscard]] double rate_per_job(std::size_t n) const {
    if (n == 0) return 0.0;
    const double fair = capacity_ / static_cast<double>(n);
    return fair < per_job_cap_ ? fair : per_job_cap_;
  }

  void advance() {
    const double elapsed = (sim_.now() - last_advance_).to_ms();
    last_advance_ = sim_.now();
    if (elapsed <= 0.0 || jobs_.empty()) return;
    const double served = elapsed * rate_per_job(jobs_.size());
    for (auto& [id, job] : jobs_) {
      job.remaining -= served;
      if (job.remaining < 0.0) job.remaining = 0.0;
    }
  }

  void reschedule() {
    pending_.cancel();
    if (jobs_.empty()) return;
    double min_remaining = jobs_.begin()->second.remaining;
    for (const auto& [id, job] : jobs_) {
      if (job.remaining < min_remaining) min_remaining = job.remaining;
    }
    const Duration dt =
        Duration::ms(min_remaining / rate_per_job(jobs_.size()));
    pending_ = sim_.schedule_in(dt, [this] { on_tick(); });
  }

  void on_tick() {
    advance();
    std::vector<Callback> done;
    for (auto it = jobs_.begin(); it != jobs_.end();) {
      if (it->second.remaining <= 1e-9) {
        done.push_back(std::move(it->second.on_complete));
        it = jobs_.erase(it);
      } else {
        ++it;
      }
    }
    reschedule();
    for (auto& cb : done) cb();
  }

  sim::Simulation& sim_;
  double capacity_;
  double per_job_cap_;
  std::map<JobId, Job> jobs_;
  JobId next_id_ = 1;
  TimePoint last_advance_;
  sim::Simulation::EventHandle pending_;
};

// --- scaling workload -------------------------------------------------------

struct ScalePoint {
  std::size_t resident = 0;
  std::uint64_t events = 0;
  double seconds = 0;
  AllocSnapshot allocs{};
};

/// Preload `resident` never-finishing jobs, then churn short jobs
/// through `chains` self-resubmitting lanes until ~`target_events`
/// completions have fired.  Reports wall time and allocations over the
/// measured phase (after a warmup that primes pools and capacities).
template <typename Ps>
ScalePoint run_scale(std::size_t resident, std::uint64_t target_events,
                     std::uint64_t warmup) {
  sim::Simulation sim;
  Ps ps = [&sim]() -> Ps {
    if constexpr (std::is_same_v<Ps, sim::PsResource>) {
      return Ps(sim, sim::PsResource::Config{"scale", 6.0, 1.0});
    } else {
      return Ps(sim, 6.0, 1.0);
    }
  }();
  if constexpr (std::is_same_v<Ps, sim::PsResource>) {
    ps.reserve_jobs(resident + 64);
  }
  for (std::size_t i = 0; i < resident; ++i) {
    ps.submit(1e15, [] {});  // resident forever within the bench horizon
  }
  struct Chain {
    Ps* ps;
    std::uint64_t budget;
    std::uint64_t* completions;
    double demand;
    void fire() {
      ++*completions;
      if (budget == 0) return;
      --budget;
      ps->submit(demand, [this] { fire(); });
    }
  };
  constexpr std::size_t kChains = 16;
  std::uint64_t completions = 0;
  std::vector<Chain> chains(kChains);
  const std::uint64_t per_lane = (target_events + warmup) / kChains;
  for (std::size_t i = 0; i < kChains; ++i) {
    Chain& c = chains[i];
    c.ps = &ps;
    c.budget = per_lane;
    c.completions = &completions;
    // Staggered demands keep the chains' completion instants distinct,
    // so every completion is its own tick (one submit + one complete
    // per measured event, the Fig. 5 steady-state shape).
    c.demand = 0.5 + 0.125 * static_cast<double>(i);
    ps.submit(c.demand, [&c] { c.fire(); });
  }
  const TimePoint horizon = TimePoint::at_ms(1e14);  // < resident finish
  completions = 0;
  while (completions < warmup && sim.step_one(horizon)) {
  }

  const AllocSnapshot before = alloc_snapshot();
  const std::uint64_t measured_from = completions;
  const auto start = Clock::now();
  while (sim.step_one(horizon)) {
  }
  ScalePoint p;
  p.seconds = seconds_since(start);
  const AllocSnapshot after = alloc_snapshot();
  p.resident = resident;
  p.events = completions - measured_from;
  p.allocs = {after.calls - before.calls, after.bytes - before.bytes};
  return p;
}

// --- end-to-end request loop ------------------------------------------------

struct LoopResult {
  std::uint64_t requests = 0;
  double seconds = 0;
  AllocSnapshot allocs{};
};

/// Drives the full placement loop: each decision callback submits a
/// short job to the x86 PS pool and immediately issues the next request,
/// so every round trip exercises submit -> encode -> decode -> decide ->
/// callback.  Measured after a warmup phase that primes every pool.
LoopResult run_request_loop(std::uint64_t requests, std::uint64_t warmup) {
  sim::Simulation sim;
  hw::CpuCluster x86(sim, hw::xeon_bronze_3104());
  hw::Link pcie(sim, hw::pcie_gen3());
  fpga::FpgaDevice device(sim, pcie, fpga::alveo_u50_spec());
  runtime::ThresholdTable table;
  {
    runtime::ThresholdEntry entry;
    entry.app = "facedet320";
    entry.kernel_name = "KNL_HW_FD320";
    entry.fpga_threshold = 1 << 20;  // stay on x86: pure decision path
    entry.arm_threshold = 1 << 20;
    table.upsert(entry);
  }
  runtime::LoadMonitor monitor(sim, x86);
  runtime::SchedulerServer server(sim, monitor, device, table, {});

  struct Driver {
    runtime::SchedulerServer* server;
    hw::CpuCluster* x86;
    std::uint64_t remaining;
    std::uint64_t decisions = 0;
    void next() {
      if (remaining == 0) return;
      --remaining;
      server->request_placement("facedet320",
                                [this](runtime::PlacementDecision) {
                                  ++decisions;
                                  x86->run(Duration::ms(0.01), [] {});
                                  next();
                                });
    }
  };
  Driver driver{&server, &x86, requests + warmup};
  driver.next();
  const TimePoint horizon = TimePoint::at_ms(1e12);
  while (driver.decisions < warmup && sim.step_one(horizon)) {
  }
  const AllocSnapshot before = alloc_snapshot();
  const auto start = Clock::now();
  while (driver.decisions < warmup + requests && sim.step_one(horizon)) {
  }
  LoopResult r;
  r.seconds = seconds_since(start);
  const AllocSnapshot after = alloc_snapshot();
  r.requests = requests;
  r.allocs = {after.calls - before.calls, after.bytes - before.bytes};
  return r;
}

// --- vectorized batch decode ------------------------------------------------

struct DecodeResult {
  std::uint64_t requests = 0;
  double seconds = 0;
  AllocSnapshot allocs{};
};

/// Decode `batches` copies of a packed `frames`-request arena, either
/// per frame through decode_message_view or in one vectorized sweep.
/// The accumulated app-name length keeps the optimizer honest.
std::pair<DecodeResult, DecodeResult> run_batch_decode(
    std::uint64_t batches, std::uint64_t frames, std::uint64_t warmup) {
  using namespace xartrek::runtime;
  // A spike tick's arena: many requests, few distinct apps.
  const char* apps[4] = {"facedet320", "facedet640", "digit2000", "cg_a"};
  std::vector<std::byte> arena;
  std::vector<std::size_t> offsets;
  for (std::uint64_t i = 0; i < frames; ++i) {
    offsets.push_back(arena.size());
    encode_placement_request_append(apps[i % 4], {}, 0, arena);
  }
  offsets.push_back(arena.size());

  std::size_t checksum = 0;
  auto per_frame_pass = [&] {
    for (std::size_t i = 0; i + 1 < offsets.size(); ++i) {
      const auto view = decode_message_view(
          std::span<const std::byte>(arena).subspan(
              offsets[i], offsets[i + 1] - offsets[i]));
      checksum += std::get<PlacementRequestView>(view).app.size();
    }
  };
  std::vector<PlacementRequestView> views;
  auto vectorized_pass = [&] {
    decode_placement_request_arena(arena, frames, views);
    for (const auto& v : views) checksum += v.app.size();
  };

  auto measure = [&](auto&& pass) {
    for (std::uint64_t b = 0; b < warmup; ++b) pass();
    const AllocSnapshot before = alloc_snapshot();
    const auto start = Clock::now();
    for (std::uint64_t b = 0; b < batches; ++b) pass();
    DecodeResult r;
    r.seconds = seconds_since(start);
    const AllocSnapshot after = alloc_snapshot();
    r.requests = batches * frames;
    r.allocs = {after.calls - before.calls, after.bytes - before.bytes};
    return r;
  };
  auto per_frame = measure(per_frame_pass);
  auto vectorized = measure(vectorized_pass);
  if (checksum == 0) std::cerr << "";  // consume
  return {per_frame, vectorized};
}

// --- report ----------------------------------------------------------------

void emit_point(std::ostream& os, const ScalePoint& p, bool last) {
  os << "      {\"resident\": " << p.resident
     << ", \"events\": " << p.events << ", \"seconds\": " << p.seconds
     << ", \"ns_per_event\": "
     << 1e9 * p.seconds / static_cast<double>(p.events)
     << ", \"alloc_calls_per_event\": "
     << static_cast<double>(p.allocs.calls) / static_cast<double>(p.events)
     << "}" << (last ? "" : ",") << "\n";
}

int bench_main() {
  // CI smoke mode: same shapes, reduced iteration counts (the
  // bench-smoke workflow compares machine-neutral ratios, so shorter
  // runs keep the gate fast without losing signal).
  const bool smoke = std::getenv("XARTREK_BENCH_SMOKE") != nullptr;
  const std::uint64_t kEvents = smoke ? 60'000 : 400'000;
  const std::uint64_t kWarmup = smoke ? 6'000 : 40'000;
  const std::uint64_t kLegacyEvents = smoke ? 1'000 : 4'000;
  const std::uint64_t kLegacyWarmup = smoke ? 100 : 400;
  const std::uint64_t kRequests = smoke ? 40'000 : 200'000;
  const std::uint64_t kRequestWarmup = smoke ? 4'000 : 20'000;
  const std::uint64_t kDecodeBatches = smoke ? 2'000 : 20'000;
  const std::uint64_t kDecodeFrames = 64;
  const std::uint64_t kDecodeWarmup = smoke ? 200 : 2'000;

  std::vector<ScalePoint> pooled;
  for (const std::size_t resident : {1'000u, 10'000u, 100'000u}) {
    std::cerr << "[ps_resource_bench] pooled churn @ " << resident
              << " resident jobs...\n";
    pooled.push_back(
        run_scale<sim::PsResource>(resident, kEvents, kWarmup));
  }
  std::vector<ScalePoint> legacy;
  for (const std::size_t resident : {1'000u, 10'000u}) {
    std::cerr << "[ps_resource_bench] legacy churn @ " << resident
              << " resident jobs (O(n) per event; kept small)...\n";
    legacy.push_back(
        run_scale<LegacyPs>(resident, kLegacyEvents, kLegacyWarmup));
  }

  std::cerr << "[ps_resource_bench] end-to-end request loop: " << kRequests
            << " placements...\n";
  const LoopResult loop = run_request_loop(kRequests, kRequestWarmup);

  std::cerr << "[ps_resource_bench] batch decode: " << kDecodeBatches
            << " arenas of " << kDecodeFrames << " frames...\n";
  const auto [per_frame, vectorized] =
      run_batch_decode(kDecodeBatches, kDecodeFrames, kDecodeWarmup);
  const auto decode_ns = [](const DecodeResult& r) {
    return 1e9 * r.seconds / static_cast<double>(r.requests);
  };

  const auto ns_per = [](const ScalePoint& p) {
    return 1e9 * p.seconds / static_cast<double>(p.events);
  };
  const double flatness = ns_per(pooled.back()) / ns_per(pooled.front());
  const double legacy_slope = ns_per(legacy.back()) / ns_per(legacy.front());

  std::ofstream out("BENCH_ps_resource.json");
  out.precision(6);
  out << "{\n  \"bench\": \"ps_resource\",\n  \"scaling\": {\n"
      << "    \"pooled\": [\n";
  for (std::size_t i = 0; i < pooled.size(); ++i) {
    emit_point(out, pooled[i], i + 1 == pooled.size());
  }
  out << "    ],\n    \"legacy\": [\n";
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    emit_point(out, legacy[i], i + 1 == legacy.size());
  }
  out << "    ],\n"
      << "    \"pooled_cost_ratio_100k_vs_1k\": " << flatness << ",\n"
      << "    \"legacy_cost_ratio_10k_vs_1k\": " << legacy_slope << "\n"
      << "  },\n  \"request_loop\": {\n"
      << "    \"requests\": " << loop.requests << ",\n"
      << "    \"seconds\": " << loop.seconds << ",\n"
      << "    \"requests_per_sec\": "
      << static_cast<double>(loop.requests) / loop.seconds << ",\n"
      << "    \"alloc_calls_per_request\": "
      << static_cast<double>(loop.allocs.calls) /
             static_cast<double>(loop.requests)
      << ",\n    \"alloc_bytes_per_request\": "
      << static_cast<double>(loop.allocs.bytes) /
             static_cast<double>(loop.requests)
      << "\n  },\n  \"batch_decode\": {\n"
      << "    \"frames_per_batch\": " << kDecodeFrames << ",\n"
      << "    \"batches\": " << kDecodeBatches << ",\n"
      << "    \"per_frame\": {\"seconds\": " << per_frame.seconds
      << ", \"ns_per_request\": " << decode_ns(per_frame)
      << ", \"alloc_calls_per_request\": "
      << static_cast<double>(per_frame.allocs.calls) /
             static_cast<double>(per_frame.requests)
      << "},\n"
      << "    \"vectorized\": {\"seconds\": " << vectorized.seconds
      << ", \"ns_per_request\": " << decode_ns(vectorized)
      << ", \"alloc_calls_per_request\": "
      << static_cast<double>(vectorized.allocs.calls) /
             static_cast<double>(vectorized.requests)
      << "},\n"
      << "    \"delta_ns_per_request\": "
      << decode_ns(per_frame) - decode_ns(vectorized) << ",\n"
      << "    \"speedup\": " << decode_ns(per_frame) / decode_ns(vectorized)
      << "\n  }\n}\n";
  out.close();

  std::cerr << "[ps_resource_bench] pooled ns/event @1k="
            << ns_per(pooled[0]) << " @10k=" << ns_per(pooled[1])
            << " @100k=" << ns_per(pooled[2]) << " (100k/1k ratio "
            << flatness << ")\n"
            << "[ps_resource_bench] legacy ns/event @1k=" << ns_per(legacy[0])
            << " @10k=" << ns_per(legacy[1]) << " (10k/1k ratio "
            << legacy_slope << ")\n"
            << "[ps_resource_bench] request loop: "
            << static_cast<double>(loop.requests) / loop.seconds
            << " req/s, allocs/request="
            << static_cast<double>(loop.allocs.calls) /
                   static_cast<double>(loop.requests)
            << "\n[ps_resource_bench] batch decode: per-frame "
            << decode_ns(per_frame) << " ns/request, vectorized "
            << decode_ns(vectorized) << " ns/request (delta "
            << decode_ns(per_frame) - decode_ns(vectorized) << " ns, "
            << decode_ns(per_frame) / decode_ns(vectorized) << "x)"
            << "\n[ps_resource_bench] wrote BENCH_ps_resource.json\n";
  return 0;
}

}  // namespace
}  // namespace xartrek::bench

int main() { return xartrek::bench::bench_main(); }
