// FPGA virtualization: slot-carved device + slot scheduler.
//
// Mechanism tests pin the FpgaDevice slot-mode contracts -- the carve
// geometry, per-slot programming cost, serving-while-programming, the
// kNoFit completion, slot-confined ResidencyView invalidation, and
// drain-in-place eviction.  Policy tests pin the SlotScheduler's three
// decision arms (place / replicate-hottest / evict-coldest) and their
// hysteresis.  The last tests run the multi-tenant contention workload
// serial and parallel and require bitwise-identical traces while the
// scheduler is evicting and replicating mid-run -- the PR 5/6
// determinism contract extended to the virtualized device.
#include <gtest/gtest.h>

#include <vector>

#include "common/assert.hpp"
#include "exp/contention.hpp"
#include "fpga/device.hpp"
#include "fpga/slots.hpp"
#include "hw/link.hpp"
#include "sim/simulation.hpp"

namespace xartrek {
namespace {

fpga::HwKernelConfig kernel_with(std::string name,
                                 fpga::FpgaResources footprint) {
  fpga::HwKernelConfig k;
  k.name = std::move(name);
  k.resources = footprint;
  k.fixed_cycles = 300'000;  // 1 ms at the default 300 MHz
  return k;
}

struct SlotDeviceTest : ::testing::Test {
  sim::Simulation sim;
  hw::Link pcie{sim, hw::pcie_gen3()};
  fpga::FpgaDevice device{sim, pcie, fpga::alveo_u50_spec()};

  fpga::ReconfigureResult program(std::uint32_t slot,
                                  const fpga::HwKernelConfig& k,
                                  std::uint32_t replicas) {
    auto result = fpga::ReconfigureResult::kOfflineDrop;
    device.reconfigure_slot(slot, k, replicas,
                            [&](fpga::ReconfigureResult r) { result = r; });
    sim.run();
    return result;
  }
};

TEST_F(SlotDeviceTest, CarveGeometryAndOneWaySwitch) {
  EXPECT_FALSE(device.slot_mode());
  EXPECT_EQ(device.slot_count(), 0u);

  fpga::SlotConfig cfg;
  cfg.slots = 4;
  device.enable_slots(cfg);
  EXPECT_TRUE(device.slot_mode());
  EXPECT_EQ(device.slot_count(), 4u);
  // Equal carve of the usable (post-shell) region.
  EXPECT_EQ(device.slot_capacity(), device.spec().usable() / 4);
  for (std::uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(device.slot_kernel(s), std::nullopt);
  }

  // One-way: a second carve and whole-image downloads both violate the
  // contract.
  EXPECT_THROW(device.enable_slots(cfg), ContractViolation);
  fpga::XclbinImage image;
  image.id = "whole";
  image.kernels.push_back(
      kernel_with("K", device.slot_capacity() / 2));
  EXPECT_THROW(device.reconfigure(image, [](fpga::ReconfigureResult) {}),
               ContractViolation);
}

TEST_F(SlotDeviceTest, SlotProgrammingIsMuchCheaperThanFullImage) {
  device.enable_slots(fpga::SlotConfig{});
  const auto k = kernel_with("A", device.slot_capacity() / 4);

  double done_at = -1.0;
  device.reconfigure_slot(
      0, k, 1, [&](fpga::ReconfigureResult) { done_at = sim.now().to_ms(); });
  EXPECT_TRUE(device.reconfiguring());
  sim.run();
  // 4 MiB partial bitstream over PCIe (~0.13 ms) + 40 ms slot
  // programming -- an order of magnitude under the 300 ms full image.
  EXPECT_NEAR(done_at, 40.13, 0.05);
  EXPECT_LT(done_at, device.spec().programming_time.to_ms());
  EXPECT_TRUE(device.has_kernel("A"));
  EXPECT_EQ(device.slot_kernel(0), std::optional<std::string>("A"));
  EXPECT_EQ(device.reconfigurations(), 1u);
}

TEST_F(SlotDeviceTest, MultipleTenantsResidentConcurrently) {
  device.enable_slots(fpga::SlotConfig{});
  const fpga::FpgaResources quarter = device.slot_capacity() / 4;
  ASSERT_EQ(program(0, kernel_with("A", quarter), 1),
            fpga::ReconfigureResult::kOk);
  ASSERT_EQ(program(1, kernel_with("B", quarter), 1),
            fpga::ReconfigureResult::kOk);
  ASSERT_EQ(program(2, kernel_with("C", quarter), 1),
            fpga::ReconfigureResult::kOk);

  // Three tenants share the card -- the thing whole-image residency
  // could never do.
  EXPECT_TRUE(device.has_kernel("A"));
  EXPECT_TRUE(device.has_kernel("B"));
  EXPECT_TRUE(device.has_kernel("C"));
  const auto names = device.available_kernels();
  EXPECT_EQ(names, (std::vector<std::string>{"A", "B", "C"}));
}

TEST_F(SlotDeviceTest, OtherSlotsKeepServingWhileOneReprograms) {
  device.enable_slots(fpga::SlotConfig{});
  const fpga::FpgaResources quarter = device.slot_capacity() / 4;
  ASSERT_EQ(program(0, kernel_with("A", quarter), 1),
            fpga::ReconfigureResult::kOk);

  // Start programming slot 1; while its bitstream is in flight, slot
  // 0's tenant must stay callable and actually execute.
  device.reconfigure_slot(1, kernel_with("B", quarter), 1,
                          [](fpga::ReconfigureResult) {});
  ASSERT_TRUE(device.reconfiguring());
  ASSERT_TRUE(device.has_kernel("A"));
  bool ran = false;
  device.execute("A", 1, [&] { ran = true; });
  sim.run();
  EXPECT_TRUE(ran);
  EXPECT_TRUE(device.has_kernel("B"));
}

TEST_F(SlotDeviceTest, OversizedRequestCompletesNoFit) {
  device.enable_slots(fpga::SlotConfig{});
  // Three CUs of a half-slot kernel cannot fit the slot's area budget.
  const auto big = kernel_with("BIG", device.slot_capacity() / 2);
  EXPECT_EQ(program(0, big, 3), fpga::ReconfigureResult::kNoFit);
  EXPECT_FALSE(device.has_kernel("BIG"));
  EXPECT_EQ(device.reconfigurations(), 0u);
  // Two CUs do fit.
  EXPECT_EQ(program(0, big, 2), fpga::ReconfigureResult::kOk);
}

TEST_F(SlotDeviceTest, ReplicasInOneSlotRunConcurrently) {
  device.enable_slots(fpga::SlotConfig{});
  const auto k = kernel_with("A", device.slot_capacity() / 4);
  ASSERT_EQ(program(0, k, 2), fpga::ReconfigureResult::kOk);
  EXPECT_EQ(device.residency("A").cus, 2u);

  // Two 1 ms invocations on two CUs finish together; a third queues.
  const double t0 = sim.now().to_ms();
  std::vector<double> done;
  for (int i = 0; i < 3; ++i) {
    device.execute("A", 0, [&] { done.push_back(sim.now().to_ms() - t0); });
  }
  sim.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_NEAR(done[0], 1.0, 1e-9);
  EXPECT_NEAR(done[1], 1.0, 1e-9);
  EXPECT_NEAR(done[2], 2.0, 1e-9);
  EXPECT_EQ(device.kernel_invocations(), 3u);
}

TEST_F(SlotDeviceTest, ResidencyViewsInvalidatePerSlot) {
  device.enable_slots(fpga::SlotConfig{});
  const fpga::FpgaResources quarter = device.slot_capacity() / 4;
  ASSERT_EQ(program(0, kernel_with("A", quarter), 1),
            fpga::ReconfigureResult::kOk);
  ASSERT_EQ(program(1, kernel_with("B", quarter), 2),
            fpga::ReconfigureResult::kOk);

  const fpga::ResidencyView a = device.residency("A");
  const fpga::ResidencyView b = device.residency("B");
  EXPECT_TRUE(a.resident());
  EXPECT_EQ(a.slot, 0u);
  EXPECT_EQ(b.cus, 2u);

  // Reprogramming slot 1 invalidates B's view the moment programming
  // starts -- but A's slot didn't change, so A's memo stays valid.
  // That slot-confined invalidation is what the old device-wide
  // residency_version() could not express.
  device.reconfigure_slot(1, kernel_with("C", quarter), 1,
                          [](fpga::ReconfigureResult) {});
  EXPECT_TRUE(device.residency_current(a));
  EXPECT_FALSE(device.residency_current(b));
  sim.run();
  EXPECT_TRUE(device.residency_current(a));
  EXPECT_FALSE(device.has_kernel("B"));

  // A non-resident answer is epoch-keyed: it goes stale once the device
  // changes again.
  const fpga::ResidencyView absent = device.residency("B");
  EXPECT_FALSE(absent.resident());
  EXPECT_TRUE(device.residency_current(absent));
  ASSERT_EQ(program(1, kernel_with("B", quarter), 1),
            fpga::ReconfigureResult::kOk);
  EXPECT_FALSE(device.residency_current(absent));
}

TEST_F(SlotDeviceTest, SameKernelAcrossSlotsAggregatesCus) {
  device.enable_slots(fpga::SlotConfig{});
  const auto k = kernel_with("A", device.slot_capacity() / 4);
  ASSERT_EQ(program(0, k, 2), fpga::ReconfigureResult::kOk);
  ASSERT_EQ(program(1, k, 3), fpga::ReconfigureResult::kOk);
  const fpga::ResidencyView view = device.residency("A");
  EXPECT_EQ(view.cus, 5u);
  EXPECT_EQ(view.slot, 0u);  // first hosting slot
}

TEST_F(SlotDeviceTest, EvictionDrainsInFlightWorkInPlace) {
  device.enable_slots(fpga::SlotConfig{});
  const fpga::FpgaResources quarter = device.slot_capacity() / 4;
  ASSERT_EQ(program(0, kernel_with("A", quarter), 1),
            fpga::ReconfigureResult::kOk);

  // Queue two invocations, then evict the slot while both are pending.
  // The displaced CU drains in place: both completions still fire (with
  // the old service times) even though "A" stops being callable
  // immediately.
  int completions = 0;
  device.execute("A", 0, [&] { ++completions; });
  device.execute("A", 0, [&] { ++completions; });
  device.reconfigure_slot(0, kernel_with("B", quarter), 1,
                          [](fpga::ReconfigureResult) {});
  EXPECT_FALSE(device.has_kernel("A"));
  sim.run();
  EXPECT_EQ(completions, 2);
  EXPECT_EQ(device.kernel_invocations(), 2u);
  EXPECT_TRUE(device.has_kernel("B"));
}

// --- policy ---------------------------------------------------------------

struct SlotPolicyTest : SlotDeviceTest {
  void SetUp() override {
    device.enable_slots(fpga::SlotConfig{});
    quarter = device.slot_capacity() / 4;
  }

  fpga::SlotScheduler::Options tight_policy() {
    fpga::SlotScheduler::Options o;
    o.fold_window = 8;
    return o;
  }

  /// note_demand + provision until the port goes busy, then drain.
  bool provision_and_run(fpga::SlotScheduler& sched, const std::string& k) {
    const bool started = sched.provision(k);
    sim.run();
    return started;
  }

  fpga::FpgaResources quarter;
};

TEST_F(SlotPolicyTest, PlacesIntoEmptySlotsInOrder) {
  fpga::SlotScheduler sched(device, tight_policy());
  for (const char* name : {"A", "B", "C", "D"}) {
    sched.register_kernel(kernel_with(name, quarter));
  }
  EXPECT_TRUE(sched.knows("A"));
  EXPECT_FALSE(sched.knows("nope"));

  for (const char* name : {"A", "B", "C", "D"}) {
    sched.note_demand(name);
    EXPECT_TRUE(provision_and_run(sched, name)) << name;
  }
  EXPECT_EQ(device.slot_kernel(0), std::optional<std::string>("A"));
  EXPECT_EQ(device.slot_kernel(1), std::optional<std::string>("B"));
  EXPECT_EQ(device.slot_kernel(2), std::optional<std::string>("C"));
  EXPECT_EQ(device.slot_kernel(3), std::optional<std::string>("D"));
  EXPECT_EQ(sched.stats().programs, 4u);
  EXPECT_EQ(sched.stats().evictions, 0u);

  // A resident kernel with no replication case started nothing.
  EXPECT_FALSE(sched.provision("A"));
}

TEST_F(SlotPolicyTest, ClaimantBelowDemandFloorIsDenied) {
  // min_evict_demand is the anti-thrash floor: a claimant whose demand
  // hasn't reached it cannot displace anyone, no matter how cold the
  // residents are.
  fpga::SlotScheduler::Options policy = tight_policy();
  policy.min_evict_demand = 5.0;
  fpga::SlotScheduler sched(device, policy);
  for (const char* name : {"A", "B", "C", "D", "E"}) {
    sched.register_kernel(kernel_with(name, quarter));
  }
  for (const char* name : {"A", "B", "C", "D"}) {
    sched.note_demand(name);
    ASSERT_TRUE(provision_and_run(sched, name));
  }

  for (int i = 0; i < 4; ++i) sched.note_demand("E");
  EXPECT_FALSE(provision_and_run(sched, "E"));
  EXPECT_GE(sched.stats().denied_cold, 1u);
  EXPECT_FALSE(device.has_kernel("E"));
  EXPECT_EQ(sched.stats().evictions, 0u);
}

TEST_F(SlotPolicyTest, HotClaimantEvictsTheColdestResident) {
  fpga::SlotScheduler sched(device, tight_policy());
  for (const char* name : {"A", "B", "C", "D", "E"}) {
    sched.register_kernel(kernel_with(name, quarter));
  }
  // Fill the table with A..D, then keep A, C, D warm while B's demand
  // decays: B becomes the strict coldest resident.
  for (const char* name : {"A", "B", "C", "D"}) {
    for (int i = 0; i < 4; ++i) sched.note_demand(name);
    ASSERT_TRUE(provision_and_run(sched, name));
  }
  for (int i = 0; i < 16; ++i) {
    for (const char* name : {"A", "C", "D"}) sched.note_demand(name);
  }

  // E heats up until it clears the eviction margin: it takes exactly
  // B's slot, and nobody else moves.
  bool placed = false;
  for (int i = 0; i < 200 && !placed; ++i) {
    sched.note_demand("E");
    placed = provision_and_run(sched, "E");
  }
  ASSERT_TRUE(placed);
  EXPECT_EQ(sched.stats().evictions, 1u);
  EXPECT_FALSE(device.has_kernel("B"));
  EXPECT_EQ(device.slot_kernel(1), std::optional<std::string>("E"));
  EXPECT_TRUE(device.has_kernel("A"));
  EXPECT_TRUE(device.has_kernel("C"));
  EXPECT_TRUE(device.has_kernel("D"));
}

TEST_F(SlotPolicyTest, HottestResidentGrowsReplicas) {
  fpga::SlotScheduler sched(device, tight_policy());
  sched.register_kernel(kernel_with("A", quarter));
  sched.register_kernel(kernel_with("B", quarter));
  sched.note_demand("A");
  ASSERT_TRUE(provision_and_run(sched, "A"));
  sched.note_demand("B");
  ASSERT_TRUE(provision_and_run(sched, "B"));
  ASSERT_EQ(device.residency("A").cus, 1u);

  // A's demand dwarfs B's: each provision grows A by one CU until the
  // slot's area budget (4 quarter-footprint CUs) is spent.
  for (int i = 0; i < 32; ++i) sched.note_demand("A");
  for (std::uint32_t want = 2; want <= 4; ++want) {
    EXPECT_TRUE(provision_and_run(sched, "A"));
    EXPECT_EQ(device.residency("A").cus, want);
  }
  EXPECT_EQ(sched.stats().replications, 3u);
  // Budget exhausted: no further growth.
  EXPECT_FALSE(sched.provision("A"));
}

TEST_F(SlotPolicyTest, OneDecisionInFlightAtATime) {
  fpga::SlotScheduler sched(device, tight_policy());
  sched.register_kernel(kernel_with("A", quarter));
  sched.register_kernel(kernel_with("B", quarter));
  sched.note_demand("A");
  sched.note_demand("B");
  EXPECT_TRUE(sched.provision("A"));
  // Port busy: the scheduler early-outs instead of queueing blindly.
  EXPECT_FALSE(sched.provision("B"));
  sim.run();
  EXPECT_TRUE(sched.provision("B"));
  sim.run();
  EXPECT_TRUE(device.has_kernel("A"));
  EXPECT_TRUE(device.has_kernel("B"));
}

TEST_F(SlotPolicyTest, NeverFittingKernelIsDeniedNoFit) {
  fpga::SlotScheduler sched(device, tight_policy());
  fpga::HwKernelConfig huge = kernel_with("HUGE", device.spec().usable());
  sched.register_kernel(huge);
  sched.note_demand("HUGE");
  EXPECT_FALSE(sched.provision("HUGE"));
  EXPECT_EQ(sched.stats().denied_no_fit, 1u);
  EXPECT_EQ(sched.stats().programs, 0u);
}

// --- determinism under contention -----------------------------------------

TEST(FpgaContentionTest, SerialAndParallelTracesAreBitwiseIdentical) {
  // The acceptance contract: with the slot scheduler evicting and
  // replicating mid-run and tenant-0 demand spilling across the cell
  // ring, the parallel engine must produce the exact event trace of the
  // serial one -- same completions, same times, same policy decisions.
  exp::ContentionSpec spec;
  spec.span = Duration::ms(500.0);

  exp::ContentionSpec serial = spec;
  serial.parallel = false;
  const exp::ContentionResult s = exp::run_fpga_contention(serial);

  exp::ContentionSpec parallel = spec;
  parallel.parallel = true;
  const exp::ContentionResult p = exp::run_fpga_contention(parallel);

  // The run must actually exercise both policy arms, or the identity
  // claim is vacuous.
  EXPECT_GT(s.evictions, 0u);
  EXPECT_GT(s.replications, 0u);
  EXPECT_GT(s.fpga_completions, 0u);

  EXPECT_EQ(s.trace_hash, p.trace_hash);
  EXPECT_EQ(s.fpga_completions, p.fpga_completions);
  EXPECT_EQ(s.arrivals, p.arrivals);
  EXPECT_EQ(s.fallbacks, p.fallbacks);
  EXPECT_EQ(s.reconfigurations, p.reconfigurations);
  EXPECT_EQ(s.evictions, p.evictions);
  EXPECT_EQ(s.replications, p.replications);
  EXPECT_EQ(s.executed_events, p.executed_events);
}

TEST(FpgaContentionTest, SlotModeBeatsWholeImageAtEqualArea) {
  // The virtualization headline at test scale: same arrival schedule,
  // same total area budget, >= 2x the on-fabric completions.  The
  // bench gates the full-span version of this ratio in CI.
  exp::ContentionSpec spec;
  spec.span = Duration::ms(500.0);
  const exp::ContentionResult slots = exp::run_fpga_contention(spec);

  exp::ContentionSpec whole = spec;
  whole.slots = 0;
  const exp::ContentionResult base = exp::run_fpga_contention(whole);

  ASSERT_GT(base.fpga_completions, 0u);
  EXPECT_GE(static_cast<double>(slots.fpga_completions),
            2.0 * static_cast<double>(base.fpga_completions));
}

}  // namespace
}  // namespace xartrek
