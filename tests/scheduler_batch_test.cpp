// Batched decision passes in the SchedulerServer: same-instant
// requests share one scheduled event, one load-monitor sample and one
// kernel-residency probe per distinct app, while per-request semantics
// (decision values, round-trip delay, error propagation) stay exactly
// the unbatched ones.  Also covers cross-shard decision delivery.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "fpga/device.hpp"
#include "hw/cpu_cluster.hpp"
#include "hw/link.hpp"
#include "platform/testbed.hpp"
#include "runtime/load_monitor.hpp"
#include "runtime/scheduler_server.hpp"
#include "runtime/threshold_table.hpp"
#include "sim/shard.hpp"

namespace xartrek::runtime {
namespace {

ThresholdEntry entry(const std::string& app, const std::string& kernel,
                     int fpga_thr, int arm_thr) {
  ThresholdEntry e;
  e.app = app;
  e.kernel_name = kernel;
  e.fpga_threshold = fpga_thr;
  e.arm_threshold = arm_thr;
  return e;
}

struct BatchFixture : ::testing::Test {
  platform::Testbed testbed;
  ThresholdTable table;
  std::unique_ptr<LoadMonitor> monitor;
  std::unique_ptr<SchedulerServer> server;

  void SetUp() override {
    table.upsert(entry("alpha", "KNL_alpha", 1 << 20, 1 << 20));
    table.upsert(entry("beta", "KNL_beta", 1 << 20, 1 << 20));
    monitor = std::make_unique<LoadMonitor>(testbed.simulation(),
                                            testbed.x86());
    server = std::make_unique<SchedulerServer>(
        testbed.simulation(), *monitor, testbed.fpga(), table,
        std::vector<fpga::XclbinImage>{});
  }
};

TEST_F(BatchFixture, SameInstantRequestsShareOneDecisionPass) {
  std::vector<double> decided_at;
  std::vector<int> loads;
  for (int i = 0; i < 16; ++i) {
    server->request_placement(i % 2 == 0 ? "alpha" : "beta",
                              [&](PlacementDecision d) {
                                decided_at.push_back(
                                    testbed.simulation().now().to_ms());
                                loads.push_back(d.observed_load);
                              });
  }
  testbed.simulation().run_until(TimePoint::at_ms(10.0));
  ASSERT_EQ(decided_at.size(), 16u);
  const auto& stats = server->stats();
  EXPECT_EQ(stats.requests, 16u);
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.max_batch, 16u);
  // One residency probe per distinct app, not per request.
  EXPECT_EQ(stats.residency_probes, 2u);
  // Every decision fires at the same round-trip instant with the same
  // shared load sample.
  for (double t : decided_at) EXPECT_DOUBLE_EQ(t, decided_at.front());
  for (int l : loads) EXPECT_EQ(l, loads.front());
  EXPECT_NEAR(decided_at.front(), 0.08, 1e-9);  // 80 us default overhead
}

TEST_F(BatchFixture, LaterInstantOpensItsOwnBatch) {
  int decisions = 0;
  auto count = [&](PlacementDecision) { ++decisions; };
  server->request_placement("alpha", count);
  testbed.simulation().schedule_at(TimePoint::at_ms(1.0), [&] {
    server->request_placement("alpha", count);
    server->request_placement("beta", count);
  });
  testbed.simulation().run_until(TimePoint::at_ms(10.0));
  EXPECT_EQ(decisions, 3);
  EXPECT_EQ(server->stats().batches, 2u);
  EXPECT_EQ(server->stats().max_batch, 2u);
  // The second batch re-probes: memoization is per-pass, not global.
  EXPECT_EQ(server->stats().residency_probes, 3u);
}

TEST_F(BatchFixture, CallbackMayImmediatelyIssueTheNextRequest) {
  // The classic closed loop: each decision triggers the next request.
  int decisions = 0;
  std::function<void()> next = [&] {
    server->request_placement("alpha", [&](PlacementDecision) {
      if (++decisions < 5) next();
    });
  };
  next();
  testbed.simulation().run_until(TimePoint::at_ms(10.0));
  EXPECT_EQ(decisions, 5);
  EXPECT_EQ(server->stats().batches, 5u);  // sequential -> one each
  EXPECT_EQ(server->stats().max_batch, 1u);
}

TEST_F(BatchFixture, UnknownAppStillThrowsButBatchMatesAreAnswered) {
  int decisions = 0;
  server->request_placement("alpha", [&](PlacementDecision) { ++decisions; });
  server->request_placement("nope", [](PlacementDecision) {});
  server->request_placement("beta", [&](PlacementDecision) { ++decisions; });
  bool threw = false;
  try {
    testbed.simulation().run_until(TimePoint::at_ms(10.0));
  } catch (const Error&) {
    threw = true;
  }
  EXPECT_TRUE(threw);
  // Every valid request in the batch got its decision -- exactly as
  // the old per-request events would have delivered them -- and the
  // server keeps serving new batches afterwards.
  EXPECT_EQ(decisions, 2);
  server->request_placement("beta", [&](PlacementDecision) { ++decisions; });
  testbed.simulation().run_until(testbed.simulation().now() +
                                 Duration::ms(10.0));
  EXPECT_EQ(decisions, 3);
}

TEST_F(BatchFixture, MidBatchReconfigurationInvalidatesProbeCache) {
  // Batch [gamma, delta, gamma]: gamma's kernel is resident, delta's
  // request starts a reconfiguration -- which tears the loaded image
  // down synchronously -- so the second gamma must re-probe and see
  // the kernel gone, exactly as the per-request path would have.
  fpga::XclbinImage img_c;
  img_c.id = "img_gamma";
  img_c.size_bytes = 1 << 20;
  fpga::HwKernelConfig kc;
  kc.name = "KNL_gamma";
  img_c.kernels.push_back(kc);
  fpga::XclbinImage img_d = img_c;
  img_d.id = "img_delta";
  img_d.kernels[0].name = "KNL_delta";

  table.upsert(entry("gamma", "KNL_gamma", /*fpga_thr=*/5, /*arm_thr=*/100));
  table.upsert(entry("delta", "KNL_delta", /*fpga_thr=*/5, /*arm_thr=*/100));
  SchedulerServer srv(testbed.simulation(), *monitor, testbed.fpga(), table,
                      {img_c, img_d});

  // Make gamma's kernel resident, then raise the load past FPGA_THR.
  bool warm = false;
  testbed.fpga().reconfigure(img_c, [&](fpga::ReconfigureResult) { warm = true; });
  testbed.simulation().run_until(TimePoint::at_ms(2'000.0));
  ASSERT_TRUE(warm);
  ASSERT_TRUE(testbed.fpga().has_kernel("KNL_gamma"));
  for (int i = 0; i < 20; ++i) testbed.x86().attach_process();
  testbed.simulation().run_until(testbed.simulation().now() +
                                 Duration::ms(50.0));

  std::vector<PlacementDecision> decisions;
  auto record = [&](PlacementDecision d) { decisions.push_back(d); };
  srv.request_placement("gamma", record);
  srv.request_placement("delta", record);
  srv.request_placement("gamma", record);
  testbed.simulation().run_until(testbed.simulation().now() +
                                 Duration::ms(1.0));

  ASSERT_EQ(decisions.size(), 3u);
  EXPECT_EQ(decisions[0].target, Target::kFpga);   // resident, past thr
  EXPECT_TRUE(decisions[1].reconfiguration_started);
  // The stale cache would say "resident" and pick the FPGA while the
  // fabric is mid-reprogram; the fresh probe keeps the job on a CPU.
  EXPECT_NE(decisions[2].target, Target::kFpga);
  EXPECT_EQ(srv.stats().residency_probes, 3u);  // gamma probed twice
}

TEST(SchedulerCrossShardTest, DecisionArrivesOnClientShard) {
  // Server stack on shard 0, client on shard 1: the decision crosses
  // through the reply channel and fires on the client's shard one
  // channel latency after the decision pass.
  sim::ShardedSimulation ssim(sim::ShardedSimulation::Options{
      2, Duration::micros(50.0), 64, false});
  sim::Simulation& server_sim = ssim.shard(0);
  hw::CpuCluster x86(server_sim, hw::xeon_bronze_3104());
  hw::Link pcie(server_sim, hw::pcie_gen3());
  fpga::FpgaDevice device(server_sim, pcie, fpga::alveo_u50_spec());
  ThresholdTable table;
  table.upsert(entry("alpha", "KNL_alpha", 1 << 20, 1 << 20));
  LoadMonitor monitor(server_sim, x86);
  SchedulerServer::Options opts;
  opts.reply_channel =
      sim::CrossShardChannel(ssim, 0, 1, Duration::micros(60.0));
  SchedulerServer server(server_sim, monitor, device, table, {}, opts);

  double decided_at = -1.0;
  server_sim.schedule_at(TimePoint::at_ms(1.0), [&] {
    server.request_placement("alpha", [&](PlacementDecision d) {
      decided_at = ssim.shard(1).now().to_ms();
      EXPECT_EQ(d.target, Target::kX86);
    });
  });
  ssim.run_until(TimePoint::at_ms(10.0));
  // 1 ms send + 80 us round trip + 60 us cross-shard delivery.
  EXPECT_NEAR(decided_at, 1.0 + 0.08 + 0.06, 1e-9);
}

}  // namespace
}  // namespace xartrek::runtime
