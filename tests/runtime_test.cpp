// Tests for the Xar-Trek run-time: threshold table, load monitor,
// Algorithm 1 (client), Algorithm 2 (server), and the migration
// executor.
#include <gtest/gtest.h>

#include <tuple>

#include "platform/testbed.hpp"
#include "runtime/load_monitor.hpp"
#include "runtime/migration_executor.hpp"
#include "runtime/scheduler_client.hpp"
#include "runtime/scheduler_server.hpp"
#include "runtime/threshold_table.hpp"

namespace xartrek::runtime {
namespace {

ThresholdEntry entry(const std::string& app, int fpga_thr, int arm_thr,
                     double x86_ms, double arm_ms, double fpga_ms) {
  ThresholdEntry e;
  e.app = app;
  e.kernel_name = "KNL_" + app;
  e.fpga_threshold = fpga_thr;
  e.arm_threshold = arm_thr;
  e.x86_exec = Duration::ms(x86_ms);
  e.arm_exec = Duration::ms(arm_ms);
  e.fpga_exec = Duration::ms(fpga_ms);
  return e;
}

TEST(ThresholdTableTest, UpsertAndLookup) {
  ThresholdTable table;
  table.upsert(entry("a", 10, 20, 100, 300, 200));
  EXPECT_TRUE(table.contains("a"));
  EXPECT_FALSE(table.contains("b"));
  EXPECT_EQ(table.at("a").arm_threshold, 20);
  EXPECT_THROW(table.at("b"), Error);
  table.upsert(entry("a", 5, 20, 100, 300, 200));  // replace
  EXPECT_EQ(table.at("a").fpga_threshold, 5);
  EXPECT_EQ(table.size(), 1u);
}

TEST(ThresholdTableTest, InternsAppNamesToStableDenseIds) {
  ThresholdTable table;
  const AppId a = table.upsert(entry("a", 10, 20, 100, 300, 200));
  const AppId b = table.upsert(entry("b", 1, 2, 3, 4, 5));
  EXPECT_NE(a, b);
  EXPECT_EQ(table.id_of("a"), a);
  EXPECT_EQ(table.id_of("b"), b);
  EXPECT_EQ(table.id_of("zzz"), kInvalidAppId);
  // Ids are plain indices into entries().
  EXPECT_EQ(table.entries()[a].app, "a");
  EXPECT_EQ(&table.at(a), &table.entries()[a]);
  // Replacing a row keeps its id (interning is stable).
  EXPECT_EQ(table.upsert(entry("a", 99, 20, 100, 300, 200)), a);
  EXPECT_EQ(table.at(a).fpga_threshold, 99);
  EXPECT_EQ(table.size(), 2u);
}

TEST(ThresholdTableTest, HeterogeneousLookupByStringView) {
  ThresholdTable table;
  table.upsert(entry("facedet320", 16, 31, 175, 642, 332));
  const std::string_view view("facedet320+suffix");
  EXPECT_TRUE(table.contains(view.substr(0, 10)));
  EXPECT_EQ(table.at(view.substr(0, 10)).arm_threshold, 31);
  EXPECT_THROW(table.at(std::string_view("nope")), Error);
  table.at_mutable(view.substr(0, 10)).arm_threshold = 7;
  EXPECT_EQ(table.at("facedet320").arm_threshold, 7);
}

TEST(ThresholdTableTest, EntriesIterateInInsertionOrderNamesSorted) {
  ThresholdTable table;
  table.upsert(entry("zeta", 1, 2, 1, 1, 1));
  table.upsert(entry("alpha", 1, 2, 1, 1, 1));
  table.upsert(entry("mid", 1, 2, 1, 1, 1));
  ASSERT_EQ(table.entries().size(), 3u);
  EXPECT_EQ(table.entries()[0].app, "zeta");
  EXPECT_EQ(table.entries()[1].app, "alpha");
  EXPECT_EQ(table.entries()[2].app, "mid");
  const auto names = table.app_names();
  EXPECT_EQ(names, (std::vector<std::string>{"alpha", "mid", "zeta"}));
}

TEST(ThresholdTableTest, ExecAccessorsByTarget) {
  auto e = entry("a", 0, 0, 1, 2, 3);
  EXPECT_DOUBLE_EQ(e.exec_for(Target::kX86).to_ms(), 1.0);
  EXPECT_DOUBLE_EQ(e.exec_for(Target::kArm).to_ms(), 2.0);
  EXPECT_DOUBLE_EQ(e.exec_for(Target::kFpga).to_ms(), 3.0);
  e.set_exec(Target::kArm, Duration::ms(9));
  EXPECT_DOUBLE_EQ(e.arm_exec.to_ms(), 9.0);
}

TEST(LoadMonitorTest, SamplesPeriodically) {
  sim::Simulation sim;
  hw::CpuCluster x86(sim, hw::xeon_bronze_3104());
  LoadMonitor monitor(sim, x86, Duration::ms(100));
  EXPECT_EQ(monitor.x86_load(), 0);
  // Processes arrive after the first sample; the monitor only sees them
  // at the next tick (timer-driven, like the real server).
  for (int i = 0; i < 8; ++i) x86.attach_process();
  EXPECT_EQ(monitor.x86_load(), 0);
  sim.run_until(TimePoint::at_ms(150));
  EXPECT_EQ(monitor.x86_load(), 8);
  EXPECT_GE(monitor.samples(), 2u);
  for (int i = 0; i < 8; ++i) x86.detach_process();
}

// --- Algorithm 2: the pure policy, exhaustively ---------------------------

struct PolicyCase {
  int load;
  int arm_thr;
  int fpga_thr;
  bool kernel;
  Target expect;
  bool expect_reconfig;
};

class DecidePlacementTest : public ::testing::TestWithParam<PolicyCase> {};

TEST_P(DecidePlacementTest, FollowsAlgorithm2) {
  const auto& c = GetParam();
  bool wants_reconfig = false;
  const Target got = decide_placement(c.load, c.arm_thr, c.fpga_thr,
                                      c.kernel, wants_reconfig);
  EXPECT_EQ(got, c.expect);
  EXPECT_EQ(wants_reconfig, c.expect_reconfig);
}

INSTANTIATE_TEST_SUITE_P(
    PaperCases, DecidePlacementTest,
    ::testing::Values(
        // Lines 19-21: below both thresholds -> stay on x86.
        PolicyCase{5, 20, 10, false, Target::kX86, false},
        PolicyCase{5, 20, 10, true, Target::kX86, false},
        PolicyCase{10, 20, 10, true, Target::kX86, false},  // load == thr
        // Lines 9-13: above FPGA thr only, kernel absent -> x86 now,
        // reconfigure in the background.
        PolicyCase{15, 20, 10, false, Target::kX86, true},
        // Lines 14-18: above both, kernel absent -> ARM + reconfigure.
        PolicyCase{25, 20, 10, false, Target::kArm, true},
        // Lines 22-24: above ARM thr only -> ARM.
        PolicyCase{25, 20, 30, false, Target::kArm, false},
        PolicyCase{25, 20, 30, true, Target::kArm, false},
        // Lines 25-31: above FPGA thr, kernel present: smaller threshold
        // wins (smaller threshold implies faster target).
        PolicyCase{15, 20, 10, true, Target::kFpga, false},
        PolicyCase{25, 20, 10, true, Target::kFpga, false},
        PolicyCase{25, 10, 20, true, Target::kArm, false},
        // FPGA-favoured app (FPGA_THR = 0, paper Table 2): any load with
        // the kernel resident goes to hardware.
        PolicyCase{1, 18, 0, true, Target::kFpga, false},
        PolicyCase{120, 18, 0, true, Target::kFpga, false},
        PolicyCase{1, 18, 0, false, Target::kX86, true}));

// Property sweep: the policy is total (never crashes) and respects the
// kernel-residency invariant: never selects the FPGA when absent.
class PolicySweepTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, bool>> {};

TEST_P(PolicySweepTest, TotalAndNeverFpgaWithoutKernel) {
  const auto [load, arm_thr, fpga_thr, kernel] = GetParam();
  bool wants_reconfig = false;
  const Target got =
      decide_placement(load, arm_thr, fpga_thr, kernel, wants_reconfig);
  if (!kernel) {
    EXPECT_NE(got, Target::kFpga);
    // Reconfiguration is requested exactly when the load passed the
    // FPGA threshold.
    EXPECT_EQ(wants_reconfig, load > fpga_thr);
  } else {
    EXPECT_FALSE(wants_reconfig);
  }
  if (got == Target::kFpga) {
    EXPECT_TRUE(kernel);
    EXPECT_GT(load, fpga_thr);
    EXPECT_LT(fpga_thr, arm_thr);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PolicySweepTest,
    ::testing::Combine(::testing::Values(0, 1, 6, 16, 31, 60, 120),
                       ::testing::Values(0, 17, 25, 31),
                       ::testing::Values(0, 16, 31),
                       ::testing::Bool()));

// --- Algorithm 1: the client -----------------------------------------------

struct ClientFixture : ::testing::Test {
  ThresholdTable table;
  SchedulerClient client{table};

  void SetUp() override {
    // FaceDet320-like row: FPGA 332ms / ARM 642ms / x86 175ms,
    // thresholds 16 / 31.
    table.upsert(entry("face", 16, 31, 175, 642, 332));
  }
};

TEST_F(ClientFixture, X86SlowerThanFpgaBelowThresholdLowersFpgaThr) {
  RunObservation obs{"face", Target::kX86, Duration::ms(400), 12};
  EXPECT_EQ(client.on_function_return(obs),
            ThresholdUpdate::kLoweredFpgaThreshold);
  EXPECT_EQ(table.at("face").fpga_threshold, 12);
}

TEST_F(ClientFixture, X86SlowerThanArmOnlyLowersArmThr) {
  // Slower than ARM (642) but the load is above FPGA_THR, so the first
  // branch does not fire; the ARM branch does.
  RunObservation obs{"face", Target::kX86, Duration::ms(700), 20};
  EXPECT_EQ(client.on_function_return(obs),
            ThresholdUpdate::kLoweredArmThreshold);
  EXPECT_EQ(table.at("face").arm_threshold, 20);
  EXPECT_EQ(table.at("face").fpga_threshold, 16);  // untouched
}

TEST_F(ClientFixture, FastX86RunJustRecordsTime) {
  RunObservation obs{"face", Target::kX86, Duration::ms(180), 3};
  EXPECT_EQ(client.on_function_return(obs),
            ThresholdUpdate::kRecordedX86Exec);
  EXPECT_DOUBLE_EQ(table.at("face").x86_exec.to_ms(), 180.0);
}

TEST_F(ClientFixture, DisappointingArmRunRaisesArmThr) {
  RunObservation obs{"face", Target::kArm, Duration::ms(800), 40};
  EXPECT_EQ(client.on_function_return(obs),
            ThresholdUpdate::kRaisedArmThreshold);
  EXPECT_EQ(table.at("face").arm_threshold, 32);  // +1 step
  EXPECT_DOUBLE_EQ(table.at("face").arm_exec.to_ms(), 800.0);  // recorded
}

TEST_F(ClientFixture, GoodArmRunOnlyRecords) {
  RunObservation obs{"face", Target::kArm, Duration::ms(100), 40};
  EXPECT_EQ(client.on_function_return(obs), ThresholdUpdate::kRecordedOnly);
  EXPECT_EQ(table.at("face").arm_threshold, 31);
}

TEST_F(ClientFixture, DisappointingFpgaRunRaisesFpgaThr) {
  RunObservation obs{"face", Target::kFpga, Duration::ms(500), 40};
  EXPECT_EQ(client.on_function_return(obs),
            ThresholdUpdate::kRaisedFpgaThreshold);
  EXPECT_EQ(table.at("face").fpga_threshold, 17);
}

TEST_F(ClientFixture, RefinementCanBeDisabled) {
  SchedulerClient off(table, SchedulerClient::Options{1, 4096, false});
  RunObservation obs{"face", Target::kX86, Duration::ms(400), 12};
  EXPECT_EQ(off.on_function_return(obs), ThresholdUpdate::kDisabled);
  EXPECT_EQ(table.at("face").fpga_threshold, 16);  // untouched
}

TEST_F(ClientFixture, RaisesAreCapped) {
  table.upsert(entry("face", 16, 4095, 175, 642, 332));
  SchedulerClient capped(table, SchedulerClient::Options{10, 4096, true});
  RunObservation obs{"face", Target::kArm, Duration::ms(9999), 40};
  capped.on_function_return(obs);
  EXPECT_EQ(table.at("face").arm_threshold, 4096);
}

// --- Server + executor integration -----------------------------------------

struct ServerFixture : ::testing::Test {
  platform::Testbed testbed;
  ThresholdTable table;
  std::unique_ptr<LoadMonitor> monitor;
  std::unique_ptr<SchedulerServer> server;

  fpga::XclbinImage image() {
    fpga::XclbinImage img;
    img.id = "img0";
    img.size_bytes = 4 << 20;
    fpga::HwKernelConfig k;
    k.name = "KNL_face";
    k.clock_mhz = 300;
    k.fixed_cycles = 300'000;
    k.cycles_per_item = 300'000;
    img.kernels.push_back(k);
    return img;
  }

  void SetUp() override {
    table.upsert(entry("face", 16, 31, 175, 642, 332));
    monitor = std::make_unique<LoadMonitor>(testbed.simulation(),
                                            testbed.x86());
    server = std::make_unique<SchedulerServer>(
        testbed.simulation(), *monitor, testbed.fpga(), table,
        std::vector<fpga::XclbinImage>{image()});
  }

  PlacementDecision decide_now() {
    PlacementDecision decision;
    bool got = false;
    server->request_placement("face", [&](PlacementDecision d) {
      decision = d;
      got = true;
    });
    while (!got &&
           testbed.simulation().step_one(TimePoint::at_ms(1e9))) {
    }
    EXPECT_TRUE(got);
    return decision;
  }
};

TEST_F(ServerFixture, LowLoadStaysOnX86) {
  const auto decision = decide_now();
  EXPECT_EQ(decision.target, Target::kX86);
  EXPECT_FALSE(decision.reconfiguration_started);
  EXPECT_EQ(server->stats().to_x86, 1u);
}

TEST_F(ServerFixture, HighLoadWithoutKernelStartsReconfiguration) {
  for (int i = 0; i < 20; ++i) testbed.x86().attach_process();
  testbed.simulation().run_until(TimePoint::at_ms(200));  // monitor tick
  const auto decision = decide_now();
  // Load 20 > FPGA_THR 16 but <= ARM_THR 31, no kernel: stay on x86 and
  // configure in the background (Algorithm 2 lines 9-13).
  EXPECT_EQ(decision.target, Target::kX86);
  EXPECT_TRUE(decision.reconfiguration_started);
  EXPECT_TRUE(testbed.fpga().reconfiguring());
  // Once live, the same load goes to hardware.
  testbed.simulation().run_until(testbed.simulation().now() +
                                 Duration::seconds(2));
  EXPECT_TRUE(testbed.fpga().has_kernel("KNL_face"));
  const auto second = decide_now();
  EXPECT_EQ(second.target, Target::kFpga);
  EXPECT_EQ(server->stats().reconfigurations_started, 1u);
}

TEST_F(ServerFixture, VeryHighLoadWithoutKernelGoesToArm) {
  for (int i = 0; i < 40; ++i) testbed.x86().attach_process();
  testbed.simulation().run_until(TimePoint::at_ms(200));
  const auto decision = decide_now();
  EXPECT_EQ(decision.target, Target::kArm);
  EXPECT_TRUE(decision.reconfiguration_started);
}

TEST_F(ServerFixture, UnknownAppThrowsThroughRequest) {
  bool threw = false;
  server->request_placement("nope", [](PlacementDecision) {});
  try {
    testbed.simulation().run();
  } catch (const Error&) {
    threw = true;
  }
  EXPECT_TRUE(threw);
}

// --- Migration executor ------------------------------------------------------

struct ExecutorFixture : ::testing::Test {
  platform::Testbed testbed;
  MigrationExecutor executor{testbed};

  FunctionCosts costs() {
    FunctionCosts c;
    c.x86_ms = Duration::ms(150);
    c.arm_ms = Duration::ms(600);
    c.migrate_bytes = 1 << 20;
    c.return_bytes = 64 << 10;
    c.transform_ms = Duration::micros(250);
    c.kernel_name = "KNL_face";
    c.fpga_items = 1;
    c.fpga_input_bytes = 76'800;
    c.fpga_output_bytes = 4'096;
    c.xrt_call_overhead = Duration::ms(1.5);
    return c;
  }

  Duration run_target(Target t, bool wait = false) {
    Duration elapsed = Duration::zero();
    bool done = false;
    executor.execute(t, costs(),
                     [&](Duration d) {
                       elapsed = d;
                       done = true;
                     },
                     wait);
    while (!done && testbed.simulation().step_one(TimePoint::at_ms(1e9))) {
    }
    EXPECT_TRUE(done);
    return elapsed;
  }
};

TEST_F(ExecutorFixture, X86PathTakesSoftwareDemand) {
  EXPECT_NEAR(run_target(Target::kX86).to_ms(), 150.0, 1e-6);
}

TEST_F(ExecutorFixture, ArmPathIncludesMigrationOverheads) {
  const double ms = run_target(Target::kArm).to_ms();
  // Transform hides behind the wire in both directions:
  // max(0.25, eth 1 MiB ~ 8.12) + 600 + max(0.25, eth 64 KiB ~ 0.62).
  EXPECT_NEAR(ms, 608.74, 1.0);
  EXPECT_GT(ms, 600.0);
  // Strictly cheaper than the serialized sum of the same legs.
  EXPECT_LT(ms, 0.25 + 8.12 + 600.0 + 0.25 + 0.62);
}

TEST_F(ExecutorFixture, FpgaPathFallsBackWhenKernelMissing) {
  // Nothing configured: the executor degrades to the software path.
  const double ms = run_target(Target::kFpga).to_ms();
  EXPECT_NEAR(ms, 150.0, 1e-6);
  EXPECT_EQ(executor.fpga_fallbacks(), 1u);
}

TEST_F(ExecutorFixture, FpgaPathRunsKernelWhenLoaded) {
  fpga::XclbinImage img;
  img.id = "img";
  img.size_bytes = 4 << 20;
  fpga::HwKernelConfig k;
  k.name = "KNL_face";
  k.clock_mhz = 300;
  k.fixed_cycles = 0;
  k.cycles_per_item = 91'650'000;  // 305.5 ms
  img.kernels.push_back(k);
  testbed.fpga().reconfigure(img, [](fpga::ReconfigureResult) {});
  testbed.simulation().run_until(testbed.simulation().now() +
                                 Duration::seconds(2));
  const double ms = run_target(Target::kFpga).to_ms();
  // xrt 1.5 + dma in/out (sub-ms) + 305.5 kernel.
  EXPECT_NEAR(ms, 307.0, 0.5);
  EXPECT_EQ(executor.fpga_fallbacks(), 0u);
}

TEST_F(ExecutorFixture, WaitForFpgaBlocksUntilConfigured) {
  fpga::XclbinImage img;
  img.id = "img";
  img.size_bytes = 4 << 20;
  fpga::HwKernelConfig k;
  k.name = "KNL_face";
  k.clock_mhz = 300;
  k.fixed_cycles = 300'000;  // 1 ms
  k.cycles_per_item = 0;
  img.kernels.push_back(k);
  testbed.fpga().reconfigure(img, [](fpga::ReconfigureResult) {});  // takes ~300 ms
  const double ms = run_target(Target::kFpga, /*wait=*/true).to_ms();
  EXPECT_GT(ms, 300.0);  // waited for programming
  EXPECT_EQ(executor.fpga_fallbacks(), 0u);
}

}  // namespace
}  // namespace xartrek::runtime
