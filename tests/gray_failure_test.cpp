// Gray-failure resilience: degraded fault kinds, the reliability layer
// (frame checksums, ReliableChannel retry/backoff/dedup, DSM bounded
// re-request), graceful scheduler degradation (circuit breaker, slot
// quarantine), and the cluster-level invariants under a mixed gray
// plan -- conservation, serial/parallel trace identity, and the
// empty-plan bit-identical no-op.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "apps/benchmark_spec.hpp"
#include "common/assert.hpp"
#include "common/rng.hpp"
#include "exp/cluster.hpp"
#include "exp/threshold_estimator.hpp"
#include "fpga/device.hpp"
#include "fpga/slots.hpp"
#include "hw/link.hpp"
#include "hw/reliable_channel.hpp"
#include "popcorn/dsm.hpp"
#include "sim/fault.hpp"
#include "sim/simulation.hpp"

namespace xartrek {
namespace {

const runtime::ThresholdTable& shared_table() {
  static const exp::EstimationResult result =
      exp::ThresholdEstimator().estimate(apps::paper_benchmarks());
  return result.table;
}

// --- fault model ------------------------------------------------------------

TEST(GrayFaultPlanTest, CountAndToStringCoverDegradedKinds) {
  sim::FaultPlan plan;
  plan.add({sim::FaultEvent::Kind::kCellSlow, TimePoint::at_ms(10.0), 0,
            0.25, TimePoint::at_ms(20.0)});
  plan.add({sim::FaultEvent::Kind::kLinkDegraded, TimePoint::at_ms(10.0), 1,
            0.3, TimePoint::at_ms(20.0)});
  plan.add({sim::FaultEvent::Kind::kPortFlaky, TimePoint::at_ms(10.0), 0,
            0.5, TimePoint::at_ms(20.0)});
  plan.add({sim::FaultEvent::Kind::kDsmCorrupt, TimePoint::at_ms(10.0), 0,
            0.5, TimePoint::at_ms(20.0)});
  EXPECT_EQ(plan.count(sim::FaultEvent::Kind::kCellSlow), 1u);
  EXPECT_EQ(plan.count(sim::FaultEvent::Kind::kLinkDegraded), 1u);
  EXPECT_EQ(plan.count(sim::FaultEvent::Kind::kPortFlaky), 1u);
  EXPECT_EQ(plan.count(sim::FaultEvent::Kind::kDsmCorrupt), 1u);
  EXPECT_EQ(plan.count(sim::FaultEvent::Kind::kCellKill), 0u);
  EXPECT_STREQ(sim::to_string(sim::FaultEvent::Kind::kCellSlow),
               "cell-slow");
  EXPECT_STREQ(sim::to_string(sim::FaultEvent::Kind::kLinkDegraded),
               "link-degraded");
  EXPECT_STREQ(sim::to_string(sim::FaultEvent::Kind::kPortFlaky),
               "port-flaky");
  EXPECT_STREQ(sim::to_string(sim::FaultEvent::Kind::kDsmCorrupt),
               "dsm-corrupt");
  EXPECT_TRUE(plan.validate(2, 2));
}

TEST(GrayFaultPlanTest, ValidateRejectsBadVictimsWindowsAndMagnitudes) {
  std::string error;

  sim::FaultPlan cell_range;
  cell_range.add({sim::FaultEvent::Kind::kCellKill, TimePoint::at_ms(1.0),
                  5});
  EXPECT_FALSE(cell_range.validate(4, 4, &error));
  EXPECT_NE(error.find("cell index"), std::string::npos);

  sim::FaultPlan link_range;
  link_range.add({sim::FaultEvent::Kind::kLinkDegraded,
                  TimePoint::at_ms(1.0), 4, 0.3, TimePoint::at_ms(2.0)});
  EXPECT_FALSE(link_range.validate(8, 4, &error));
  EXPECT_NE(error.find("link index"), std::string::npos);

  sim::FaultPlan empty_window;
  empty_window.add({sim::FaultEvent::Kind::kCellSlow, TimePoint::at_ms(5.0),
                    0, 0.25, TimePoint::at_ms(5.0)});
  EXPECT_FALSE(empty_window.validate(4, 4, &error));
  EXPECT_NE(error.find("until"), std::string::npos);

  sim::FaultPlan bad_probability;
  bad_probability.add({sim::FaultEvent::Kind::kDsmCorrupt,
                       TimePoint::at_ms(1.0), 0, 1.5,
                       TimePoint::at_ms(2.0)});
  EXPECT_FALSE(bad_probability.validate(4, 4, &error));

  sim::FaultPlan bad_slowdown;
  bad_slowdown.add({sim::FaultEvent::Kind::kCellSlow, TimePoint::at_ms(1.0),
                    0, 0.0, TimePoint::at_ms(2.0)});
  EXPECT_FALSE(bad_slowdown.validate(4, 4, &error));

  // The binary kinds ignore magnitude/until entirely.
  sim::FaultPlan binary;
  binary.add({sim::FaultEvent::Kind::kCellKill, TimePoint::at_ms(1.0), 3});
  EXPECT_TRUE(binary.validate(4, 4));
}

// --- reliable channel over a degraded link ----------------------------------

TEST(ReliableChannelTest, RetriesThroughDropsAndDeliversExactlyOnce) {
  sim::Simulation sim;
  hw::Link link(sim, hw::LinkSpec{"lossy", 1.0, Duration::micros(100)});
  // Every other frame vanishes, on average.
  link.set_degraded(1.0, 0.5, Rng(11));

  hw::ReliableChannel::Options opts;
  opts.timeout = Duration::ms(2.0);
  opts.max_attempts = 24;  // residual loss 0.5^24: never in this test
  hw::ReliableChannel channel(sim, link, opts, Rng(7));

  constexpr std::uint64_t kMessages = 20;
  std::uint64_t delivered = 0;
  for (std::uint64_t i = 0; i < kMessages; ++i) {
    channel.send(1024, [&delivered] { ++delivered; });
  }
  sim.run();

  EXPECT_EQ(delivered, kMessages);
  EXPECT_EQ(channel.stats().delivered, kMessages);
  EXPECT_EQ(channel.stats().abandoned, 0u);
  EXPECT_EQ(channel.in_flight(), 0u);
  // The loss actually happened and was re-sent around.
  EXPECT_GT(link.stats().dropped_transfers, 0u);
  EXPECT_GT(channel.stats().retries, 0u);
  EXPECT_EQ(channel.stats().attempts,
            kMessages + channel.stats().retries);
}

TEST(ReliableChannelTest, SlowCopiesSuppressedAsDuplicates) {
  sim::Simulation sim;
  hw::Link link(sim, hw::LinkSpec{"slow", 1.0, Duration::ms(1.0)});
  // No loss, but 4x latency: every first copy overshoots the deadline,
  // the retry races it, and the loser must be swallowed.
  link.set_degraded(4.0, 0.0, Rng(3));

  hw::ReliableChannel::Options opts;
  opts.timeout = Duration::ms(2.0);
  hw::ReliableChannel channel(sim, link, opts, Rng(9));

  std::uint64_t delivered = 0;
  channel.send(512, [&delivered] { ++delivered; });
  sim.run();

  EXPECT_EQ(delivered, 1u);  // exactly once despite multiple copies
  EXPECT_EQ(channel.stats().delivered, 1u);
  EXPECT_GT(channel.stats().timeouts, 0u);
  EXPECT_GT(channel.stats().duplicates_suppressed, 0u);
  EXPECT_EQ(link.stats().dropped_transfers, 0u);
}

// --- DSM checksum verify + bounded re-request -------------------------------

TEST(DsmGrayTest, CorruptTransferDetectedAndRetriedExactlyOnce) {
  sim::Simulation sim;
  hw::Link link(sim, hw::ethernet_1gbps());
  popcorn::Dsm::Config cfg;
  cfg.nodes = 2;
  cfg.memory_bytes = 64 * 1024;
  cfg.page_size = 4096;
  popcorn::Dsm dsm(sim, link, cfg);

  // Node 0 owns a recognizable page; corrupt exactly the next wire
  // transfer, then pull the page from node 1.
  std::vector<std::byte> payload(256, std::byte{0x5A});
  bool wrote = false;
  dsm.write(0, 0, payload, [&wrote] { wrote = true; });
  sim.run();
  ASSERT_TRUE(wrote);

  link.corrupt_next(1);
  std::vector<std::byte> got;
  dsm.read(1, 0, payload.size(),
           [&got](std::vector<std::byte> data) { got = std::move(data); });
  sim.run();

  // Detected once, re-requested once, and the retry delivered intact
  // bytes -- the corrupt copy never touched memory or MSI state.
  EXPECT_EQ(dsm.stats().corrupt_detected, 1u);
  EXPECT_EQ(dsm.stats().retries, 1u);
  EXPECT_EQ(got, payload);
  EXPECT_EQ(link.stats().corrupted_transfers, 1u);
}

TEST(DsmGrayTest, CorruptionPastRetryBudgetThrows) {
  sim::Simulation sim;
  hw::Link link(sim, hw::ethernet_1gbps());
  popcorn::Dsm::Config cfg;
  cfg.nodes = 2;
  cfg.memory_bytes = 16 * 4096;
  cfg.max_transfer_retries = 2;
  popcorn::Dsm dsm(sim, link, cfg);

  // Every copy of the one needed page corrupts: initial + 2 retries,
  // then the DSM refuses to loop forever.
  link.corrupt_next(1000);
  dsm.read(1, 0, 64, [](std::vector<std::byte>) {});
  EXPECT_THROW(sim.run(), Error);
  EXPECT_EQ(dsm.stats().retries, 2u);
}

// --- slot quarantine --------------------------------------------------------

TEST(SlotQuarantineTest, FlakyPortQuarantinesSlotsThenFallsBackToCpu) {
  sim::Simulation sim;
  hw::Link pcie(sim, hw::pcie_gen3());
  fpga::FpgaDevice device(sim, pcie, fpga::alveo_u50_spec());
  fpga::SlotConfig slot_cfg;
  slot_cfg.slots = 2;
  device.enable_slots(slot_cfg);

  fpga::SlotScheduler::Options opts;
  opts.quarantine_limit = 2;
  fpga::SlotScheduler scheduler(device, opts);

  fpga::HwKernelConfig kernel;
  kernel.name = "victim";
  kernel.resources = device.slot_capacity() / 2;
  kernel.fixed_cycles = 300'000;
  scheduler.register_kernel(kernel);

  // Every programming attempt fails at the flaky reconfiguration port.
  device.set_port_flaky(1.0, Rng(13));

  // Each failed programming leaves the slot empty, so provision keeps
  // walking the non-quarantined slots: 2 failures quarantine slot 0,
  // 2 more quarantine slot 1.
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(scheduler.provision("victim")) << "attempt " << i;
    sim.run();
  }
  EXPECT_TRUE(scheduler.quarantined(0));
  EXPECT_TRUE(scheduler.quarantined(1));
  EXPECT_EQ(scheduler.quarantined_slots(), 2u);
  EXPECT_EQ(scheduler.stats().quarantined, 2u);
  EXPECT_EQ(scheduler.stats().failed, 4u);

  // All fabric written off: the claimant stays on the CPU -- even
  // after the port heals, quarantine is permanent within the run.
  device.clear_port_flaky();
  EXPECT_FALSE(scheduler.provision("victim"));
  EXPECT_EQ(scheduler.stats().denied_cold, 1u);
}

TEST(SlotQuarantineTest, SuccessResetsTheConsecutiveFailureCount) {
  sim::Simulation sim;
  hw::Link pcie(sim, hw::pcie_gen3());
  fpga::FpgaDevice device(sim, pcie, fpga::alveo_u50_spec());
  fpga::SlotConfig slot_cfg;
  slot_cfg.slots = 1;
  device.enable_slots(slot_cfg);

  fpga::SlotScheduler::Options opts;
  opts.quarantine_limit = 2;
  fpga::SlotScheduler scheduler(device, opts);

  fpga::HwKernelConfig kernel;
  kernel.name = "survivor";
  kernel.resources = device.slot_capacity() / 4;
  kernel.fixed_cycles = 300'000;
  scheduler.register_kernel(kernel);

  // Fail (streak 1), succeed (streak resets), fail again on the
  // replicate path (streak 1): with limit 2 the slot quarantines only
  // if the intervening success failed to reset the counter.
  device.inject_reconfigure_failure();
  ASSERT_TRUE(scheduler.provision("survivor"));
  sim.run();
  ASSERT_TRUE(scheduler.provision("survivor"));
  sim.run();
  ASSERT_TRUE(device.residency("survivor").resident());

  for (int i = 0; i < 10; ++i) scheduler.note_demand("survivor");
  device.inject_reconfigure_failure();
  ASSERT_TRUE(scheduler.provision("survivor"));  // replicate-hottest
  sim.run();

  EXPECT_FALSE(scheduler.quarantined(0));
  EXPECT_EQ(scheduler.stats().quarantined, 0u);
  EXPECT_EQ(scheduler.stats().failed, 2u);
}

// --- circuit breaker under kCellSlow ----------------------------------------

TEST(GrayClusterTest, SlowCellTripsBreakerThenRecovers) {
  const auto specs = apps::paper_benchmarks();
  exp::ClusterSpec spec;
  spec.cells = 1;
  exp::ExperimentOptions options;
  options.mode = apps::SystemMode::kXarTrek;
  exp::ClusterExperiment cluster(specs, shared_table(), spec, options);

  cluster.submit(0, "facedet320");

  // Quarter-speed CPUs for 100 ms: heartbeat replies stretch 4x past
  // the slow-reply bar but stay inside the miss timeout -- gray, not
  // dead.
  sim::FaultPlan plan;
  plan.add({sim::FaultEvent::Kind::kCellSlow, TimePoint::at_ms(10.0), 0,
            0.25, TimePoint::at_ms(110.0)});
  cluster.apply_fault_plan(plan);

  ASSERT_TRUE(cluster.run_until_jobs_complete());

  const auto& srv = cluster.cell(0).server().stats();
  EXPECT_GT(srv.slow_replies, 0u);
  EXPECT_GE(srv.breaker_trips, 1u);   // demoted while slowed...
  EXPECT_GE(srv.breaker_closes, 1u);  // ...reinstated after the window
  EXPECT_EQ(srv.evictions, 0u);       // never treated as dead
  EXPECT_EQ(cluster.cell(0).server().breaker_state(),
            runtime::SchedulerServer::BreakerState::kClosed);
  EXPECT_TRUE(cluster.cell(0).server().fpga_healthy());

  const auto stats = cluster.job_stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.breaker_trips, srv.breaker_trips);
  EXPECT_EQ(stats.slow_replies, srv.slow_replies);
}

// --- the mixed gray storm: conservation + determinism -----------------------

sim::FaultPlan mixed_gray_plan() {
  sim::FaultPlan plan;
  plan.add({sim::FaultEvent::Kind::kCellSlow, TimePoint::at_ms(15.0), 0,
            0.25, TimePoint::at_ms(120.0)});
  plan.add({sim::FaultEvent::Kind::kLinkDegraded, TimePoint::at_ms(20.0), 1,
            0.3, TimePoint::at_ms(200.0)});
  plan.add({sim::FaultEvent::Kind::kPortFlaky, TimePoint::at_ms(20.0), 2,
            0.5, TimePoint::at_ms(250.0)});
  plan.add({sim::FaultEvent::Kind::kDsmCorrupt, TimePoint::at_ms(20.0), 1,
            0.5, TimePoint::at_ms(200.0)});
  plan.add({sim::FaultEvent::Kind::kCellKill, TimePoint::at_ms(50.0), 1});
  return plan;
}

std::vector<double> run_gray_cluster(bool parallel,
                                     exp::ClusterExperiment::JobStats* out) {
  const auto specs = apps::paper_benchmarks();
  exp::ClusterSpec spec;
  spec.cells = 3;
  spec.parallel = parallel;
  exp::ExperimentOptions options;
  options.mode = apps::SystemMode::kXarTrek;
  exp::ClusterExperiment cluster(specs, shared_table(), spec, options);

  for (std::size_t c = 0; c < 3; ++c) {
    cluster.submit(c, "facedet320");
    cluster.submit(c, "digit500");
  }
  cluster.apply_fault_plan(mixed_gray_plan());

  EXPECT_TRUE(cluster.run_until_jobs_complete());
  EXPECT_EQ(cluster.completed_jobs(), cluster.submitted_jobs());
  if (out != nullptr) *out = cluster.job_stats();
  return cluster.job_completion_times_ms();
}

TEST(GrayClusterTest, MixedGrayPlanConservesJobsAndStaysDeterministic) {
  // The dying cell's checkpoints must cross a link that is inflating
  // latency, dropping frames, AND corrupting payloads -- and every job
  // still completes exactly once, with bitwise-identical completion
  // instants serial vs rerun vs threaded.
  exp::ClusterExperiment::JobStats stats;
  const auto serial_a = run_gray_cluster(false, &stats);
  const auto serial_b = run_gray_cluster(false, nullptr);
  const auto threaded = run_gray_cluster(true, nullptr);

  EXPECT_EQ(stats.completed, stats.submitted);
  // The storm was real: the reliability layer left fingerprints.
  EXPECT_GT(stats.channel_retries + stats.corrupt_recovered +
                stats.link_drops,
            0u);
  EXPECT_GE(stats.breaker_trips, 1u);

  ASSERT_EQ(serial_a.size(), serial_b.size());
  ASSERT_EQ(serial_a.size(), threaded.size());
  for (std::size_t i = 0; i < serial_a.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial_a[i], serial_b[i]) << "job " << i;
    EXPECT_DOUBLE_EQ(serial_a[i], threaded[i]) << "job " << i;
  }
}

std::vector<double> run_gray_fault_free(bool apply_empty_plan) {
  const auto specs = apps::paper_benchmarks();
  exp::ClusterSpec spec;
  spec.cells = 2;
  exp::ExperimentOptions options;
  options.mode = apps::SystemMode::kXarTrek;
  exp::ClusterExperiment cluster(specs, shared_table(), spec, options);
  cluster.submit(0, "facedet320");
  cluster.submit(1, "digit500");
  if (apply_empty_plan) {
    // Gray tunables attached and everything: an empty plan still must
    // not schedule a single event or start health checks.
    exp::FaultInjectionOptions opts;
    opts.health.period = Duration::ms(1.0);
    opts.degraded_latency_factor = 16.0;
    opts.drain_channel.timeout = Duration::ms(1.0);
    opts.gray_seed = 0xDEADBEEF;
    cluster.apply_fault_plan(sim::FaultPlan{}, opts);
    EXPECT_FALSE(cluster.cell(0).server().health_checks_active());
  }
  EXPECT_TRUE(cluster.run_until_jobs_complete());
  return cluster.job_completion_times_ms();
}

TEST(GrayClusterTest, EmptyPlanWithGrayOptionsIsBitIdenticalNoOp) {
  const auto baseline = run_gray_fault_free(false);
  const auto with_empty_plan = run_gray_fault_free(true);
  ASSERT_EQ(baseline.size(), with_empty_plan.size());
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_DOUBLE_EQ(baseline[i], with_empty_plan[i]) << "job " << i;
  }
}

}  // namespace
}  // namespace xartrek
