// Tests for whole-call-stack transformation (multi-frame Popcorn
// migration) and the Vitis-style reports.
#include <gtest/gtest.h>

#include "compiler/multi_isa_builder.hpp"
#include "hls/report.hpp"
#include "popcorn/machine_state.hpp"
#include "popcorn/state_transform.hpp"

namespace xartrek {
namespace {

using isa::IsaKind;
using popcorn::ValueLocation;
using popcorn::ValueType;

popcorn::MigrationMetadata call_chain_metadata() {
  // main@1 -> dispatch@0 -> (active) hot-loop site, three frames.
  popcorn::MigrationMetadata md;
  auto add = [&md](const std::string& fn, int site, std::uint64_t x86_frame,
                   std::uint64_t arm_frame,
                   std::vector<popcorn::LiveValue> values) {
    popcorn::CallSiteMetadata s;
    s.function = fn;
    s.site_id = site;
    s.frame_size[IsaKind::kX86_64] = x86_frame;
    s.frame_size[IsaKind::kAarch64] = arm_frame;
    s.live_values = std::move(values);
    md.add_site(std::move(s));
  };

  popcorn::LiveValue argc;
  argc.name = "argc";
  argc.type = ValueType::kI32;
  argc.location[IsaKind::kX86_64] = ValueLocation::on_stack(8);
  argc.location[IsaKind::kAarch64] = ValueLocation::on_stack(16);

  popcorn::LiveValue flag;
  flag.name = "flag";
  flag.type = ValueType::kI64;
  flag.location[IsaKind::kX86_64] = ValueLocation::in_register("rbx");
  flag.location[IsaKind::kAarch64] = ValueLocation::in_register("x19");

  popcorn::LiveValue acc;
  acc.name = "acc";
  acc.type = ValueType::kF64;
  acc.location[IsaKind::kX86_64] = ValueLocation::on_stack(0);
  acc.location[IsaKind::kAarch64] = ValueLocation::on_stack(8);

  add("main", 1, 48, 64, {argc});
  add("dispatch", 0, 32, 32, {flag});
  add("hot", 7, 64, 80, {acc});
  return md;
}

TEST(ThreadStackTest, PushAndAccounting) {
  popcorn::ThreadStack stack(IsaKind::kX86_64);
  EXPECT_TRUE(stack.empty());
  stack.push_frame(
      popcorn::MachineState(IsaKind::kX86_64, "main", 1, 48));
  stack.push_frame(
      popcorn::MachineState(IsaKind::kX86_64, "dispatch", 0, 32));
  EXPECT_EQ(stack.depth(), 2u);
  EXPECT_EQ(stack.top().function(), "dispatch");
  EXPECT_EQ(stack.total_frame_bytes(), 80u);
}

TEST(ThreadStackTest, RejectsWrongIsaFrame) {
  popcorn::ThreadStack stack(IsaKind::kX86_64);
  EXPECT_THROW(stack.push_frame(popcorn::MachineState(
                   IsaKind::kAarch64, "main", 1, 48)),
               ContractViolation);
}

TEST(StackTransformTest, AllFramesRelocate) {
  const auto md = call_chain_metadata();
  const popcorn::StateTransformer transformer(md);

  popcorn::ThreadStack x86(IsaKind::kX86_64);
  popcorn::MachineState main_fr(IsaKind::kX86_64, "main", 1, 48);
  main_fr.write_stack(8, 4, 3);  // argc = 3
  x86.push_frame(std::move(main_fr));
  popcorn::MachineState disp_fr(IsaKind::kX86_64, "dispatch", 0, 32);
  disp_fr.write_register("rbx", 2);  // flag = FPGA
  x86.push_frame(std::move(disp_fr));
  popcorn::MachineState hot_fr(IsaKind::kX86_64, "hot", 7, 64);
  hot_fr.write_stack(0, 8, 0x3FF0000000000000ull);  // acc = 1.0 bits
  x86.push_frame(std::move(hot_fr));

  const auto arm = transformer.transform_stack(x86, IsaKind::kAarch64);
  EXPECT_EQ(arm.isa(), IsaKind::kAarch64);
  ASSERT_EQ(arm.depth(), 3u);
  EXPECT_EQ(arm.frames()[0].read_stack(16, 4), 3u);
  EXPECT_EQ(arm.frames()[1].read_register("x19"), 2u);
  EXPECT_EQ(arm.frames()[2].read_stack(8, 8), 0x3FF0000000000000ull);
  // Frame sizes follow the destination table.
  EXPECT_EQ(arm.frames()[0].frame_size(), 64u);
  EXPECT_EQ(arm.frames()[2].frame_size(), 80u);

  // Round trip restores the original layout and values.
  const auto back = transformer.transform_stack(arm, IsaKind::kX86_64);
  EXPECT_EQ(back.frames()[0].read_stack(8, 4), 3u);
  EXPECT_EQ(back.frames()[1].read_register("rbx"), 2u);
  EXPECT_EQ(back.frames()[2].read_stack(0, 8), 0x3FF0000000000000ull);
}

TEST(StackTransformTest, CostGrowsWithDepthSublinearly) {
  const auto md = call_chain_metadata();
  const popcorn::StateTransformer transformer(md);

  popcorn::ThreadStack one(IsaKind::kX86_64);
  one.push_frame(popcorn::MachineState(IsaKind::kX86_64, "main", 1, 48));
  popcorn::ThreadStack three(IsaKind::kX86_64);
  three.push_frame(popcorn::MachineState(IsaKind::kX86_64, "main", 1, 48));
  three.push_frame(
      popcorn::MachineState(IsaKind::kX86_64, "dispatch", 0, 32));
  three.push_frame(popcorn::MachineState(IsaKind::kX86_64, "hot", 7, 64));

  const auto c1 = transformer.stack_transform_cost(one);
  const auto c3 = transformer.stack_transform_cost(three);
  EXPECT_GT(c3, c1);
  // Fixed machinery is paid once, so three frames cost less than 3x one.
  EXPECT_LT(c3.to_ms(), 3.0 * c1.to_ms());
}

TEST(StackTransformTest, WorksOnCompilerSynthesizedChain) {
  // The instrumented IR's own metadata supports stack transformation of
  // the main -> dispatch-stub chain.
  const auto ir = compiler::make_app_ir("demo", "hot", 400, 150);
  const compiler::MultiIsaBuilder builder;
  const auto md = builder.synthesize_metadata(ir);
  const popcorn::StateTransformer transformer(md);

  popcorn::ThreadStack stack(IsaKind::kX86_64);
  const auto* main_site = md.find("main", 1);
  ASSERT_NE(main_site, nullptr);
  stack.push_frame(popcorn::MachineState(
      IsaKind::kX86_64, "main", 1,
      main_site->frame_size_for(IsaKind::kX86_64)));
  const auto arm = transformer.transform_stack(stack, IsaKind::kAarch64);
  EXPECT_EQ(arm.frames()[0].frame_size(),
            main_site->frame_size_for(IsaKind::kAarch64));
}

// --- reports -----------------------------------------------------------

TEST(ReportTest, UtilizationReportContainsEveryResource) {
  const hls::HlsCompiler hls;
  hls::KernelSource src;
  src.kernel_name = "KNL_R";
  src.source_function = "r_fn";
  src.ops = {20, 4, 6, 0, 1e6};
  src.iface = {64 * 1024, 4 * 1024};
  src.compute_units = 2;
  const auto xo = hls.compile(src);
  const auto report = hls::utilization_report(xo, fpga::alveo_u50_spec());
  for (const char* needle :
       {"KNL_R", "LUT", "BRAM", "DSP", "compute units: 2", "latency"}) {
    EXPECT_NE(report.find(needle), std::string::npos) << needle;
  }
}

TEST(ReportTest, XclbinReportSummarizesImage) {
  const hls::HlsCompiler hls;
  std::vector<hls::XoFile> xos;
  for (int i = 0; i < 3; ++i) {
    hls::KernelSource src;
    src.kernel_name = "K" + std::to_string(i);
    src.source_function = src.kernel_name;
    src.ops = {20, 2, 6, 0, 1e6};
    src.iface = {32 * 1024, 4 * 1024};
    xos.push_back(hls.compile(src));
  }
  const hls::XclbinPartitioner partitioner(fpga::alveo_u50_spec());
  const auto bins = partitioner.partition(xos);
  ASSERT_EQ(bins.size(), 1u);
  const auto report = hls::xclbin_report(bins[0], fpga::alveo_u50_spec());
  EXPECT_NE(report.find("K0"), std::string::npos);
  EXPECT_NE(report.find("K2"), std::string::npos);
  EXPECT_NE(report.find("image total"), std::string::npos);
}

}  // namespace
}  // namespace xartrek
