// Tests for the IR validation pass, workload artifact serialization,
// the table-sync broadcast, Algorithm-1 boundary conditions, and the
// threshold->decision property that ties step G to the run-time.
#include <gtest/gtest.h>

#include <sstream>

#include "apps/benchmark_spec.hpp"
#include "compiler/validate.hpp"
#include "exp/experiment.hpp"
#include "exp/threshold_estimator.hpp"
#include "runtime/protocol.hpp"
#include "runtime/scheduler_client.hpp"
#include "runtime/scheduler_server.hpp"
#include "workloads/serialization.hpp"

namespace xartrek {
namespace {

// --- IR validation ---------------------------------------------------------

TEST(ValidateIrTest, CleanIrPasses) {
  const auto ir = compiler::make_app_ir("demo", "hot", 400, 150);
  for (const auto& issue : compiler::validate_ir(ir)) {
    EXPECT_NE(issue.severity, compiler::ValidationIssue::Severity::kError)
        << issue.message;
  }
  EXPECT_NO_THROW(compiler::validate_ir_or_throw(ir));
}

TEST(ValidateIrTest, CatchesMissingMain) {
  compiler::AppIr ir;
  ir.name = "x";
  compiler::IrFunction f;
  f.name = "f";
  f.lines_of_code = 10;
  f.ops.int_ops = 10;
  ir.functions.push_back(f);
  EXPECT_THROW(compiler::validate_ir_or_throw(ir), Error);
}

TEST(ValidateIrTest, CatchesDuplicateFunctionsAndUnknownCallees) {
  auto ir = compiler::make_app_ir("demo", "hot", 400, 150);
  ir.functions.push_back(ir.functions[1]);  // duplicate "hot"
  ir.functions[0].call_sites.push_back({"nowhere", 9});
  const auto issues = compiler::validate_ir(ir);
  int errors = 0;
  for (const auto& issue : issues) {
    if (issue.severity == compiler::ValidationIssue::Severity::kError) {
      ++errors;
    }
  }
  EXPECT_GE(errors, 2);
}

TEST(ValidateIrTest, RuntimeHooksAreExempt) {
  auto ir = compiler::make_app_ir("demo", "hot", 400, 150);
  ir.functions[0].call_sites.push_back({"__xar_client_init", 10});
  EXPECT_NO_THROW(compiler::validate_ir_or_throw(ir));
}

TEST(ValidateIrTest, WarnsOnRecursion) {
  auto ir = compiler::make_app_ir("demo", "hot", 400, 150);
  ir.find_mutable("hot")->call_sites.push_back({"hot", 0});
  bool warned = false;
  for (const auto& issue : compiler::validate_ir(ir)) {
    if (issue.severity == compiler::ValidationIssue::Severity::kWarning &&
        issue.message.find("recursive") != std::string::npos) {
      warned = true;
    }
  }
  EXPECT_TRUE(warned);
}

TEST(ValidateIrTest, DuplicateCallSiteIdsRejected) {
  auto ir = compiler::make_app_ir("demo", "hot", 400, 150);
  ir.functions[0].call_sites.push_back({"load_input", 0});  // id 0 reused
  EXPECT_THROW(compiler::validate_ir_or_throw(ir), Error);
}

// --- workload serialization -------------------------------------------------

TEST(WorkloadSerializationTest, DigitDatasetRoundTrip) {
  Rng rng(3);
  const auto ds = workloads::make_synthetic_digits(rng, 12, 30, 3.0);
  std::stringstream ss;
  workloads::write_digit_dataset(ss, ds);
  const auto back = workloads::read_digit_dataset(ss);
  ASSERT_EQ(back.training.size(), ds.training.size());
  ASSERT_EQ(back.tests.size(), ds.tests.size());
  for (std::size_t i = 0; i < ds.training.size(); ++i) {
    EXPECT_EQ(back.training[i].bits, ds.training[i].bits);
    EXPECT_EQ(back.training[i].label, ds.training[i].label);
  }
  // Classification results identical on the round-tripped corpus.
  EXPECT_EQ(workloads::digitrec_kernel(back).correct,
            workloads::digitrec_kernel(ds).correct);
}

TEST(WorkloadSerializationTest, DigitDatasetRejectsGarbage) {
  std::stringstream bad("NOPE");
  EXPECT_THROW((void)workloads::read_digit_dataset(bad), Error);
  // Truncated body.
  Rng rng(4);
  const auto ds = workloads::make_synthetic_digits(rng, 4, 2, 1.0);
  std::stringstream ss;
  workloads::write_digit_dataset(ss, ds);
  std::string bytes = ss.str();
  bytes.resize(bytes.size() / 2);
  std::stringstream truncated(bytes);
  EXPECT_THROW((void)workloads::read_digit_dataset(truncated), Error);
}

TEST(WorkloadSerializationTest, CascadeRoundTripPreservesDetections) {
  const auto cascade = workloads::Cascade::default_frontal();
  const auto text = workloads::cascade_to_string(cascade);
  const auto back = workloads::cascade_from_string(text);
  ASSERT_EQ(back.stages.size(), cascade.stages.size());
  EXPECT_EQ(back.base_window, cascade.base_window);

  Rng rng(17);
  const auto scene = workloads::make_scene(rng, 160, 120, 1, 28, 48);
  const auto d1 = workloads::detect_faces(scene.image, cascade);
  const auto d2 = workloads::detect_faces(scene.image, back);
  ASSERT_EQ(d1.size(), d2.size());
  for (std::size_t i = 0; i < d1.size(); ++i) {
    EXPECT_EQ(d1[i].x, d2[i].x);
    EXPECT_EQ(d1[i].size, d2[i].size);
  }
}

class CascadeErrorTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CascadeErrorTest, RejectsMalformedCascade) {
  EXPECT_THROW((void)workloads::cascade_from_string(GetParam()), Error);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, CascadeErrorTest,
    ::testing::Values("stage\nend\n",                        // no header
                      "cascade window 24\n",                 // no stages
                      "cascade window 24\nstage\nend\n",     // empty stage
                      "cascade window 24\nstage\n"
                      "  feature A 0 0 24 6 B 0 6 24 4 thr 0.1\n",  // no end
                      "cascade window 24\nstage\n"
                      "  feature A 0 0 0 6 B 0 6 24 4 thr 0.1\nend\n",
                      "cascade window 2\nstage\n"
                      "  feature A 0 0 24 6 B 0 6 24 4 thr 0.1\nend\n"));

// --- table-sync broadcast ----------------------------------------------------

TEST(TableBroadcastTest, EveryRowArrivesIntact) {
  const auto specs = apps::paper_benchmarks();
  const auto estimation = exp::ThresholdEstimator().estimate(specs);
  exp::ExperimentOptions options;
  options.mode = apps::SystemMode::kXarTrek;
  exp::Experiment exp(specs, estimation.table, options);

  const auto frames = exp.server().broadcast_table();
  ASSERT_EQ(frames.size(), 5u);
  runtime::ThresholdTable mirror;
  for (const auto& frame : frames) {
    const auto msg = runtime::decode_message(frame);
    ASSERT_TRUE(std::holds_alternative<runtime::TableSyncMsg>(msg));
    mirror.upsert(std::get<runtime::TableSyncMsg>(msg).entry);
  }
  for (const auto& app : exp.table().app_names()) {
    EXPECT_EQ(mirror.at(app).fpga_threshold,
              exp.table().at(app).fpga_threshold);
    EXPECT_EQ(mirror.at(app).arm_threshold,
              exp.table().at(app).arm_threshold);
  }
}

// --- Algorithm 1 boundary grid ------------------------------------------------

struct Algo1Case {
  runtime::Target executed;
  double exec_ms;
  int load;
  runtime::ThresholdUpdate expect;
};

class Algorithm1BoundaryTest : public ::testing::TestWithParam<Algo1Case> {};

TEST_P(Algorithm1BoundaryTest, BranchesExactlyAsPublished) {
  // Row under test: x86 175 / ARM 642 / FPGA 332, thresholds 16 / 31.
  runtime::ThresholdTable table;
  runtime::ThresholdEntry e;
  e.app = "face";
  e.kernel_name = "K";
  e.fpga_threshold = 16;
  e.arm_threshold = 31;
  e.x86_exec = Duration::ms(175);
  e.arm_exec = Duration::ms(642);
  e.fpga_exec = Duration::ms(332);
  table.upsert(e);
  runtime::SchedulerClient client(table);

  const auto& c = GetParam();
  EXPECT_EQ(client.on_function_return(
                {"face", c.executed, Duration::ms(c.exec_ms), c.load}),
            c.expect);
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, Algorithm1BoundaryTest,
    ::testing::Values(
        // Exactly at the stored FPGA time: NOT greater -> falls through.
        Algo1Case{runtime::Target::kX86, 332.0, 10,
                  runtime::ThresholdUpdate::kRecordedX86Exec},
        // Just above, load exactly at FPGA_THR: NOT below -> ARM branch
        // (642 not exceeded) -> records.
        Algo1Case{runtime::Target::kX86, 333.0, 16,
                  runtime::ThresholdUpdate::kRecordedX86Exec},
        // Just above, load below: lowers FPGA_THR.
        Algo1Case{runtime::Target::kX86, 333.0, 15,
                  runtime::ThresholdUpdate::kLoweredFpgaThreshold},
        // Above ARM time, load between thresholds: lowers ARM_THR.
        Algo1Case{runtime::Target::kX86, 643.0, 20,
                  runtime::ThresholdUpdate::kLoweredArmThreshold},
        // Above both with load below FPGA_THR: FPGA branch wins (it is
        // checked first in the published pseudocode).
        Algo1Case{runtime::Target::kX86, 700.0, 10,
                  runtime::ThresholdUpdate::kLoweredFpgaThreshold},
        // ARM run exactly at the stored x86 time: not greater ->
        // recorded only.
        Algo1Case{runtime::Target::kArm, 175.0, 40,
                  runtime::ThresholdUpdate::kRecordedOnly},
        Algo1Case{runtime::Target::kArm, 176.0, 40,
                  runtime::ThresholdUpdate::kRaisedArmThreshold},
        Algo1Case{runtime::Target::kFpga, 175.0, 40,
                  runtime::ThresholdUpdate::kRecordedOnly},
        Algo1Case{runtime::Target::kFpga, 176.0, 40,
                  runtime::ThresholdUpdate::kRaisedFpgaThreshold}));

// --- thresholds -> decisions (the step-G / Algorithm-2 contract) -------------

class ThresholdDecisionTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(ThresholdDecisionTest, RuntimeHonorsEstimatedThresholds) {
  static const auto specs = apps::paper_benchmarks();
  static const auto estimation =
      exp::ThresholdEstimator().estimate(specs);
  const std::string app = GetParam();
  const auto& entry = estimation.table.at(app);

  auto decide_at_load = [&](int background) {
    exp::ExperimentOptions options;
    options.mode = apps::SystemMode::kXarTrek;
    exp::Experiment exp(specs, estimation.table, options);
    exp.warm_fpga_for(app);
    exp.add_background_load(background);
    exp.simulation().run_until(exp.simulation().now() + Duration::ms(50));
    exp.launch(app);
    XAR_ASSERT(exp.run_until_complete(1));
    return exp.results().front().func_target;
  };

  // Sufficiently below every threshold: stays on x86.  (Load includes
  // the app itself, so background = threshold - 2.)
  const int lo =
      std::max(0, std::min(entry.fpga_threshold, entry.arm_threshold) - 2);
  if (lo >= 0 && std::min(entry.fpga_threshold, entry.arm_threshold) > 1) {
    EXPECT_EQ(decide_at_load(lo), runtime::Target::kX86) << app << " low";
  }

  // Far above both thresholds: migrates to the faster escape target
  // (the smaller threshold, Algorithm 2 lines 25-31).
  const int hi =
      std::max(entry.fpga_threshold, entry.arm_threshold) + 20;
  const runtime::Target expected =
      entry.fpga_threshold < entry.arm_threshold ? runtime::Target::kFpga
                                                 : runtime::Target::kArm;
  EXPECT_EQ(decide_at_load(hi), expected) << app << " high";
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, ThresholdDecisionTest,
                         ::testing::Values("cg_a", "facedet320",
                                           "facedet640", "digit500",
                                           "digit2000"));

}  // namespace
}  // namespace xartrek
