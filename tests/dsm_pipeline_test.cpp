// Pipelined DSM data path: window-depth-1 trace equivalence against a
// replica of the legacy serialized engine, randomized multi-node
// read/write fuzz with invariant checks after every drain, run
// coalescing and per-pair window behavior, and the zero-length /
// page-straddling / end-of-memory edge cases.
#include <gtest/gtest.h>

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "hw/link.hpp"
#include "popcorn/dsm.hpp"
#include "sim/simulation.hpp"

namespace xartrek {
namespace {

using popcorn::Dsm;
using popcorn::PageState;

// --- legacy serialized engine (the pre-pipelining design, verbatim) ---------
//
// One global FIFO, one transaction in flight, pages ensured one at a
// time, every Invalid page its own wire transfer.  The pipelined
// engine at window_depth == 1 must reproduce this trace exactly.

class LegacyDsm {
 public:
  using Callback = std::function<void()>;
  using ReadCallback = std::function<void(std::vector<std::byte>)>;

  LegacyDsm(sim::Simulation& sim, hw::Link& link, std::size_t nodes,
            std::uint64_t memory_bytes, std::uint64_t page_size)
      : sim_(sim), link_(link), nodes_(nodes), page_size_(page_size) {
    pages_ = memory_bytes / page_size;
    memory_.resize(nodes);
    page_states_.resize(nodes);
    for (std::size_t n = 0; n < nodes; ++n) {
      memory_[n].assign(memory_bytes, std::byte{0});
      page_states_[n].assign(pages_, n == 0 ? PageState::kModified
                                            : PageState::kInvalid);
    }
  }

  void read(std::size_t node, std::uint64_t addr, std::uint64_t len,
            ReadCallback on_done) {
    op_queue_.push_back(
        Op{false, node, addr, len, {}, std::move(on_done), nullptr});
    if (!op_active_) start_next_op();
  }

  void write(std::size_t node, std::uint64_t addr,
             std::vector<std::byte> data, Callback on_done) {
    op_queue_.push_back(Op{true, node, addr, data.size(), std::move(data),
                           nullptr, std::move(on_done)});
    if (!op_active_) start_next_op();
  }

  [[nodiscard]] PageState page_state(std::size_t node,
                                     std::uint64_t page) const {
    return page_states_[node][page];
  }
  [[nodiscard]] std::uint64_t page_transfers() const {
    return page_transfers_;
  }
  [[nodiscard]] std::uint64_t local_page_hits() const { return hits_; }
  [[nodiscard]] std::uint64_t invalidations() const { return invalidations_; }

 private:
  struct Op {
    bool is_write;
    std::size_t node;
    std::uint64_t addr;
    std::uint64_t len;
    std::vector<std::byte> data;
    ReadCallback on_read;
    Callback on_write;
  };

  void start_next_op() {
    if (op_queue_.empty()) {
      op_active_ = false;
      return;
    }
    op_active_ = true;
    auto op = std::make_shared<Op>(std::move(op_queue_.front()));
    op_queue_.pop_front();
    const std::uint64_t first = op->addr / page_size_;
    const std::uint64_t last =
        op->len == 0 ? first : (op->addr + op->len - 1) / page_size_;
    ensure_pages(op->node, first, last, op->is_write, [this, op] {
      if (op->is_write) {
        std::copy(op->data.begin(), op->data.end(),
                  memory_[op->node].begin() + static_cast<long>(op->addr));
        auto cb = std::move(op->on_write);
        start_next_op();
        cb();
      } else {
        std::vector<std::byte> out(
            memory_[op->node].begin() + static_cast<long>(op->addr),
            memory_[op->node].begin() +
                static_cast<long>(op->addr + op->len));
        auto cb = std::move(op->on_read);
        start_next_op();
        cb(std::move(out));
      }
    });
  }

  void ensure_pages(std::size_t node, std::uint64_t first, std::uint64_t last,
                    bool exclusive, Callback on_ready) {
    if (first > last) {
      on_ready();
      return;
    }
    ensure_one_page(node, first, exclusive,
                    [this, node, first, last, exclusive,
                     cb = std::move(on_ready)]() mutable {
                      ensure_pages(node, first + 1, last, exclusive,
                                   std::move(cb));
                    });
  }

  void ensure_one_page(std::size_t node, std::uint64_t page, bool exclusive,
                       Callback on_ready) {
    PageState& mine = page_states_[node][page];
    auto finish_exclusive = [this, node, page] {
      for (std::size_t n = 0; n < nodes_; ++n) {
        if (n != node && page_states_[n][page] != PageState::kInvalid) {
          page_states_[n][page] = PageState::kInvalid;
          ++invalidations_;
        }
      }
      page_states_[node][page] = PageState::kModified;
    };
    if (mine == PageState::kModified ||
        (mine == PageState::kShared && !exclusive)) {
      ++hits_;
      sim_.schedule_in(Duration::zero(), std::move(on_ready));
      return;
    }
    if (mine == PageState::kShared && exclusive) {
      sim_.schedule_in(link_.spec().latency,
                       [finish_exclusive, cb = std::move(on_ready)]() mutable {
                         finish_exclusive();
                         cb();
                       });
      return;
    }
    std::size_t source = nodes_;
    for (std::size_t n = 0; n < nodes_; ++n) {
      if (n == node) continue;
      if (page_states_[n][page] == PageState::kModified) {
        source = n;
        break;
      }
      if (page_states_[n][page] == PageState::kShared && source == nodes_) {
        source = n;
      }
    }
    ASSERT_LT(source, nodes_);
    link_.transfer(page_size_, [this, node, page, source, exclusive,
                                finish_exclusive,
                                cb = std::move(on_ready)]() mutable {
      const std::uint64_t off = page * page_size_;
      std::copy(memory_[source].begin() + static_cast<long>(off),
                memory_[source].begin() + static_cast<long>(off + page_size_),
                memory_[node].begin() + static_cast<long>(off));
      ++page_transfers_;
      if (exclusive) {
        finish_exclusive();
      } else {
        page_states_[source][page] = PageState::kShared;
        page_states_[node][page] = PageState::kShared;
      }
      cb();
    });
  }

  sim::Simulation& sim_;
  hw::Link& link_;
  std::size_t nodes_;
  std::uint64_t page_size_;
  std::uint64_t pages_;
  std::vector<std::vector<std::byte>> memory_;
  std::vector<std::vector<PageState>> page_states_;
  std::uint64_t page_transfers_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t invalidations_ = 0;
  std::deque<Op> op_queue_;
  bool op_active_ = false;
};

// --- shared op scripts ------------------------------------------------------

struct ScriptOp {
  bool is_write = false;
  std::size_t node = 0;
  std::uint64_t addr = 0;
  std::uint64_t len = 0;
  std::uint8_t fill = 0;  // write payload byte pattern
};

constexpr std::size_t kNodes = 3;
constexpr std::uint64_t kMemory = 64 * 1024;
constexpr std::uint64_t kPage = 4096;

std::vector<std::vector<ScriptOp>> make_script(std::uint64_t seed,
                                               std::size_t rounds,
                                               bool allow_empty) {
  Rng rng(seed);
  std::vector<std::vector<ScriptOp>> script(rounds);
  for (auto& round : script) {
    const std::size_t burst =
        static_cast<std::size_t>(rng.uniform_int(1, 24));
    for (std::size_t i = 0; i < burst; ++i) {
      ScriptOp op;
      op.is_write = rng.bernoulli(0.3);
      op.node = rng.pick_index(kNodes);
      op.addr = static_cast<std::uint64_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(kMemory)));
      const int shape = static_cast<int>(rng.uniform_int(0, 9));
      if (shape == 0 && allow_empty) {
        op.len = 0;
      } else if (shape <= 4) {
        op.len = static_cast<std::uint64_t>(rng.uniform_int(1, 64));
      } else if (shape <= 7) {
        op.len = static_cast<std::uint64_t>(
            rng.uniform_int(1, 3 * static_cast<std::int64_t>(kPage)));
      } else {
        op.len = static_cast<std::uint64_t>(
            rng.uniform_int(1, 8 * static_cast<std::int64_t>(kPage)));
      }
      if (op.addr > kMemory) op.addr = kMemory;
      if (op.addr + op.len > kMemory) op.len = kMemory - op.addr;
      if (op.len == 0 && !allow_empty) {
        op.addr = 0;
        op.len = 1;
      }
      op.fill = static_cast<std::uint8_t>(rng.uniform_int(1, 255));
      round.push_back(op);
    }
  }
  return script;
}

struct Completion {
  std::size_t op_index;
  double at_ms;
  std::vector<std::byte> bytes;  // reads
};

// --- window depth 1 == legacy trace -----------------------------------------

TEST(DsmTraceEquivalenceTest, Depth1MatchesLegacySerializedEngine) {
  const auto script = make_script(/*seed=*/0xD5A1, /*rounds=*/20,
                                  /*allow_empty=*/false);

  auto run_new = [&script] {
    sim::Simulation sim;
    hw::Link eth(sim, hw::ethernet_1gbps());
    Dsm dsm(sim, eth, Dsm::Config{kNodes, kMemory, kPage, 1});
    std::vector<Completion> done;
    std::size_t index = 0;
    for (const auto& round : script) {
      for (const auto& op : round) {
        const std::size_t my = index++;
        if (op.is_write) {
          dsm.write(op.node, op.addr,
                    std::vector<std::byte>(op.len, std::byte{op.fill}),
                    [&done, &sim, my] {
                      done.push_back({my, sim.now().to_ms(), {}});
                    });
        } else {
          dsm.read(op.node, op.addr, op.len,
                   [&done, &sim, my](std::vector<std::byte> b) {
                     done.push_back({my, sim.now().to_ms(), std::move(b)});
                   });
        }
      }
      sim.run();
      dsm.check_invariants();
    }
    struct Result {
      std::vector<Completion> done;
      std::uint64_t transfers, hits, invalidations;
      double delivered_mb;
      std::vector<PageState> states;
    } r{std::move(done), dsm.stats().page_transfers,
        dsm.stats().local_page_hits, dsm.stats().invalidations,
        eth.delivered_mb(), {}};
    for (std::size_t n = 0; n < kNodes; ++n) {
      for (std::uint64_t p = 0; p < dsm.page_count(); ++p) {
        r.states.push_back(dsm.page_state(n, p));
      }
    }
    return r;
  };

  auto run_legacy = [&script] {
    sim::Simulation sim;
    hw::Link eth(sim, hw::ethernet_1gbps());
    LegacyDsm dsm(sim, eth, kNodes, kMemory, kPage);
    std::vector<Completion> done;
    std::size_t index = 0;
    for (const auto& round : script) {
      for (const auto& op : round) {
        const std::size_t my = index++;
        if (op.is_write) {
          dsm.write(op.node, op.addr,
                    std::vector<std::byte>(op.len, std::byte{op.fill}),
                    [&done, &sim, my] {
                      done.push_back({my, sim.now().to_ms(), {}});
                    });
        } else {
          dsm.read(op.node, op.addr, op.len,
                   [&done, &sim, my](std::vector<std::byte> b) {
                     done.push_back({my, sim.now().to_ms(), std::move(b)});
                   });
        }
      }
      sim.run();
    }
    struct Result {
      std::vector<Completion> done;
      std::uint64_t transfers, hits, invalidations;
      double delivered_mb;
      std::vector<PageState> states;
    } r{std::move(done), dsm.page_transfers(), dsm.local_page_hits(),
        dsm.invalidations(), eth.delivered_mb(), {}};
    for (std::size_t n = 0; n < kNodes; ++n) {
      for (std::uint64_t p = 0; p < kMemory / kPage; ++p) {
        r.states.push_back(dsm.page_state(n, p));
      }
    }
    return r;
  };

  const auto pipelined = run_new();
  const auto legacy = run_legacy();

  ASSERT_EQ(pipelined.done.size(), legacy.done.size());
  for (std::size_t i = 0; i < legacy.done.size(); ++i) {
    EXPECT_EQ(pipelined.done[i].op_index, legacy.done[i].op_index) << i;
    EXPECT_DOUBLE_EQ(pipelined.done[i].at_ms, legacy.done[i].at_ms) << i;
    EXPECT_EQ(pipelined.done[i].bytes, legacy.done[i].bytes) << i;
  }
  EXPECT_EQ(pipelined.transfers, legacy.transfers);
  EXPECT_EQ(pipelined.hits, legacy.hits);
  EXPECT_EQ(pipelined.invalidations, legacy.invalidations);
  EXPECT_DOUBLE_EQ(pipelined.delivered_mb, legacy.delivered_mb);
  EXPECT_EQ(pipelined.states, legacy.states);
}

// --- randomized multi-node coherence fuzz -----------------------------------

class DsmFuzzTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DsmFuzzTest, InvariantsHoldAndEffectsSerializeInSubmissionOrder) {
  const std::size_t depth = GetParam();
  const auto script =
      make_script(/*seed=*/0xF0 + depth, /*rounds=*/40, /*allow_empty=*/true);

  sim::Simulation sim;
  hw::Link eth(sim, hw::ethernet_1gbps());
  Dsm dsm(sim, eth, Dsm::Config{kNodes, kMemory, kPage, depth});

  // Flat reference image: ops observably serialize in submission order,
  // so applying each write at submit time predicts every read exactly.
  std::vector<std::byte> ref(kMemory, std::byte{0});
  std::vector<std::size_t> completions;
  std::vector<std::pair<std::size_t, std::vector<std::byte>>> expected_reads;
  std::vector<std::pair<std::size_t, std::vector<std::byte>>> actual_reads;
  std::size_t index = 0;

  for (const auto& round : script) {
    const std::size_t round_start = index;
    for (const auto& op : round) {
      const std::size_t my = index++;
      if (op.is_write) {
        std::vector<std::byte> data(op.len, std::byte{op.fill});
        std::copy(data.begin(), data.end(),
                  ref.begin() + static_cast<long>(op.addr));
        dsm.write(op.node, op.addr, std::move(data),
                  [&completions, my] { completions.push_back(my); });
      } else {
        expected_reads.emplace_back(
            my, std::vector<std::byte>(
                    ref.begin() + static_cast<long>(op.addr),
                    ref.begin() + static_cast<long>(op.addr + op.len)));
        dsm.read(op.node, op.addr, op.len,
                 [&completions, &actual_reads, my](std::vector<std::byte> b) {
                   completions.push_back(my);
                   actual_reads.emplace_back(my, std::move(b));
                 });
      }
    }
    sim.run();
    dsm.check_invariants();
    // Every op of the round completed, in submission order.
    ASSERT_EQ(completions.size(), index);
    for (std::size_t i = round_start; i < index; ++i) {
      EXPECT_EQ(completions[i], i);
    }
  }

  ASSERT_EQ(actual_reads.size(), expected_reads.size());
  for (std::size_t i = 0; i < expected_reads.size(); ++i) {
    EXPECT_EQ(actual_reads[i].first, expected_reads[i].first);
    EXPECT_EQ(actual_reads[i].second, expected_reads[i].second) << i;
  }

  if (depth >= 4) {
    // The pipelined engine actually pipelined: multi-page pulls fused
    // and transfers overlapped (deterministic under the fixed seed).
    EXPECT_GT(dsm.stats().coalesced_runs, 0u);
    EXPECT_GE(dsm.stats().max_in_flight, 2u);
    EXPECT_GT(dsm.stats().bytes_per_transfer(), double(kPage));
  }
}

INSTANTIATE_TEST_SUITE_P(WindowDepths, DsmFuzzTest,
                         ::testing::Values(1u, 4u, 8u));

// --- zero-length, boundary and straddling ops -------------------------------

struct DsmEdgeFixture : ::testing::Test {
  sim::Simulation sim;
  hw::Link eth{sim, hw::ethernet_1gbps()};
  Dsm dsm{sim, eth, Dsm::Config{2, kMemory, kPage, 8}};
};

TEST_F(DsmEdgeFixture, ZeroLengthReadCompletesWithoutLinkTraffic) {
  bool done = false;
  dsm.read(1, 100, 0, [&](std::vector<std::byte> b) {
    done = true;
    EXPECT_TRUE(b.empty());
  });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(dsm.stats().page_transfers, 0u);
  EXPECT_EQ(dsm.stats().link_transfers, 0u);
  EXPECT_EQ(dsm.stats().local_page_hits, 0u);
  EXPECT_DOUBLE_EQ(eth.delivered_mb(), 0.0);
  EXPECT_DOUBLE_EQ(sim.now().to_ms(), 0.0);
  // The page spanned by `addr` is untouched.
  EXPECT_EQ(dsm.page_state(1, 0), PageState::kInvalid);
}

TEST_F(DsmEdgeFixture, ZeroLengthOpAtMemoryBoundaryIsLegal) {
  // addr == memory_bytes with len == 0 spans no page; the legacy engine
  // derived page_of(memory_bytes) here and walked off the page table.
  bool read_done = false;
  bool write_done = false;
  dsm.read(1, kMemory, 0,
           [&](std::vector<std::byte> b) {
             read_done = true;
             EXPECT_TRUE(b.empty());
           });
  dsm.write(1, kMemory, {}, [&] { write_done = true; });
  sim.run();
  EXPECT_TRUE(read_done);
  EXPECT_TRUE(write_done);
  EXPECT_EQ(dsm.stats().link_transfers, 0u);
  EXPECT_DOUBLE_EQ(eth.delivered_mb(), 0.0);
  dsm.check_invariants();
}

TEST_F(DsmEdgeFixture, ZeroLengthOpsRetireInSubmissionOrder) {
  std::vector<int> order;
  dsm.read(1, 0, 8, [&](std::vector<std::byte>) { order.push_back(0); });
  dsm.write(1, kMemory, {}, [&] { order.push_back(1); });
  sim.run();
  // The empty op costs nothing but still retires after the transfer
  // submitted before it.
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
}

TEST_F(DsmEdgeFixture, PageStraddlingWriteAcquiresBothPages) {
  const std::uint64_t addr = kPage - 2;
  dsm.write(1, addr, std::vector<std::byte>(4, std::byte{0x5A}), [] {});
  sim.run();
  EXPECT_EQ(dsm.page_state(1, 0), PageState::kModified);
  EXPECT_EQ(dsm.page_state(1, 1), PageState::kModified);
  EXPECT_EQ(dsm.stats().page_transfers, 2u);
  // Both pages were Invalid and contiguous from the same owner: one
  // coalesced wire transfer.
  EXPECT_EQ(dsm.stats().link_transfers, 1u);
  EXPECT_EQ(dsm.stats().coalesced_runs, 1u);
  std::vector<std::byte> seen;
  dsm.read(0, addr, 4, [&](std::vector<std::byte> b) { seen = std::move(b); });
  sim.run();
  ASSERT_EQ(seen.size(), 4u);
  for (auto b : seen) EXPECT_EQ(b, std::byte{0x5A});
  dsm.check_invariants();
}

TEST_F(DsmEdgeFixture, EndOfMemoryOpTouchesOnlyTheLastPage) {
  const std::uint64_t last_page = kMemory / kPage - 1;
  dsm.read(1, kMemory - 8, 8, [](std::vector<std::byte> b) {
    EXPECT_EQ(b.size(), 8u);
  });
  sim.run();
  EXPECT_EQ(dsm.page_state(1, last_page), PageState::kShared);
  EXPECT_EQ(dsm.stats().page_transfers, 1u);
  dsm.check_invariants();
}

TEST_F(DsmEdgeFixture, SubmissionInRetireWindowDoesNotStarveQueue) {
  // Serialized mode: op A in flight, op C queued.  A raw link transfer
  // of the same size shares the PS pool and completes in the same tick
  // as A's pull, with its callback running *between* A's op_ensured and
  // the zero-delay retire drain.  A submission landing in that window
  // must queue behind C, not start ahead of it (starting ahead used to
  // strand C and B forever).
  sim::Simulation sim2;
  hw::Link eth2(sim2, hw::ethernet_1gbps());
  Dsm serial(sim2, eth2, Dsm::Config{2, kMemory, kPage, 1});
  std::vector<char> order;
  serial.read(1, 0, 1, [&](std::vector<std::byte>) { order.push_back('a'); });
  serial.read(1, kPage, 1,
              [&](std::vector<std::byte>) { order.push_back('c'); });
  eth2.transfer(kPage, [&] {
    serial.read(1, 2 * kPage, 1,
                [&](std::vector<std::byte>) { order.push_back('b'); });
  });
  sim2.run();
  serial.check_invariants();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 'a');
  EXPECT_EQ(order[1], 'c');
  EXPECT_EQ(order[2], 'b');
}

// --- coalescing and windowing -----------------------------------------------

TEST(DsmPipelineTest, ContiguousBurstCoalescesIntoOneTransfer) {
  sim::Simulation sim;
  hw::Link eth(sim, hw::ethernet_1gbps());
  const std::uint64_t memory = 1 << 20;
  Dsm dsm(sim, eth, Dsm::Config{2, memory, kPage, 8});
  const std::uint64_t pages = 64;
  bool done = false;
  dsm.read(1, 0, pages * kPage, [&](std::vector<std::byte> b) {
    done = true;
    EXPECT_EQ(b.size(), pages * kPage);
  });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(dsm.stats().page_transfers, pages);
  EXPECT_EQ(dsm.stats().link_transfers, 1u);
  EXPECT_EQ(dsm.stats().coalesced_runs, 1u);
  EXPECT_DOUBLE_EQ(dsm.stats().bytes_per_transfer(),
                   static_cast<double>(pages * kPage));
  // One latency + 256 KiB at 0.125 MB/ms ~= 0.12 + 2.0 ms, against
  // 64 * 0.151 ms ~= 9.7 ms serialized.
  EXPECT_NEAR(sim.now().to_ms(), 2.12, 0.05);
}

TEST(DsmPipelineTest, WindowOverlapsPageStreamLatencies) {
  auto stream_time = [](std::size_t depth) {
    sim::Simulation sim;
    hw::Link eth(sim, hw::ethernet_1gbps());
    Dsm dsm(sim, eth, Dsm::Config{2, 1 << 20, kPage, depth});
    std::size_t done = 0;
    const std::size_t pages = 64;
    for (std::size_t p = 0; p < pages; ++p) {
      // One op per page: nothing to coalesce, the window does the work.
      dsm.read(1, p * kPage, kPage,
               [&done](std::vector<std::byte>) { ++done; });
    }
    sim.run();
    EXPECT_EQ(done, pages);
    return std::pair{sim.now().to_ms(), dsm.stats().max_in_flight};
  };
  const auto [serial_ms, serial_peak] = stream_time(1);
  const auto [windowed_ms, windowed_peak] = stream_time(8);
  EXPECT_EQ(serial_peak, 1u);
  EXPECT_EQ(windowed_peak, 8u);
  // 64 pages serialized pay 64 latencies; windowed pulls overlap them.
  EXPECT_NEAR(serial_ms, 64 * 0.15125, 0.05);
  EXPECT_LT(windowed_ms, serial_ms / 2.0);
}

TEST(DsmPipelineTest, ReadIntoStreamsWithoutResultVectors) {
  sim::Simulation sim;
  hw::Link eth(sim, hw::ethernet_1gbps());
  Dsm dsm(sim, eth, Dsm::Config{2, kMemory, kPage, 8});
  dsm.write(0, 64, std::vector<std::byte>(16, std::byte{0x7E}), [] {});
  std::vector<std::byte> buffer(16);
  bool done = false;
  dsm.read_into(1, 64, 16, buffer.data(), [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  for (auto b : buffer) EXPECT_EQ(b, std::byte{0x7E});
  dsm.check_invariants();
}

TEST(DsmPipelineTest, ConflictingOpsOnOnePageSerializeViaPendingList) {
  sim::Simulation sim;
  hw::Link eth(sim, hw::ethernet_1gbps());
  Dsm dsm(sim, eth, Dsm::Config{3, kMemory, kPage, 8});
  // All in flight at once, all touching page 0: the per-page pending
  // list must serialize them in submission order.
  std::vector<int> order;
  std::vector<std::byte> first_read;
  std::vector<std::byte> second_read;
  dsm.write(1, 8, std::vector<std::byte>(8, std::byte{0x11}), [&] {
    order.push_back(0);
  });
  dsm.read(2, 8, 8, [&](std::vector<std::byte> b) {
    order.push_back(1);
    first_read = std::move(b);
  });
  dsm.write(2, 8, std::vector<std::byte>(8, std::byte{0x22}), [&] {
    order.push_back(2);
  });
  dsm.read(0, 8, 8, [&](std::vector<std::byte> b) {
    order.push_back(3);
    second_read = std::move(b);
  });
  sim.run();
  dsm.check_invariants();
  ASSERT_EQ(order.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(order[i], i);
  ASSERT_EQ(first_read.size(), 8u);
  for (auto b : first_read) EXPECT_EQ(b, std::byte{0x11});
  ASSERT_EQ(second_read.size(), 8u);
  for (auto b : second_read) EXPECT_EQ(b, std::byte{0x22});
  // The final read pull downgraded the second writer's copy.
  EXPECT_EQ(dsm.page_state(2, 0), PageState::kShared);
  EXPECT_EQ(dsm.page_state(0, 0), PageState::kShared);
  EXPECT_EQ(dsm.page_state(1, 0), PageState::kInvalid);
}

}  // namespace
}  // namespace xartrek
