// Cluster-scale chaos: deterministic fault plans, cell kills with
// checkpointed drain, partitioned ring links, and the conservation
// invariant -- every submitted job completes exactly once, serial and
// parallel runs trace-identical under the same FaultPlan, and an empty
// plan is a bit-identical no-op.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "apps/benchmark_spec.hpp"
#include "common/rng.hpp"
#include "exp/cluster.hpp"
#include "exp/threshold_estimator.hpp"
#include "hw/link.hpp"
#include "sim/fault.hpp"
#include "sim/simulation.hpp"

namespace xartrek {
namespace {

const runtime::ThresholdTable& shared_table() {
  static const exp::EstimationResult result =
      exp::ThresholdEstimator().estimate(apps::paper_benchmarks());
  return result.table;
}

// --- rng stream splitting ---------------------------------------------------

TEST(RngSplitTest, SplitIsPureKeyedAndNonPerturbing) {
  Rng base(42);
  Rng probe(42);

  // Pure: the same (seed, stream) pair always lands in the same state.
  Rng s1 = base.split(7);
  Rng s2 = base.split(7);
  EXPECT_EQ(s1.seed(), s2.seed());
  EXPECT_EQ(s1.uniform_int(0, 1'000'000), s2.uniform_int(0, 1'000'000));

  // Keyed: adjacent streams are different states.
  EXPECT_NE(base.split(8).seed(), base.split(7).seed());

  // Non-perturbing: splitting never advanced `base` -- its draw stream
  // is still bit-identical to a fresh Rng with the same seed.  (fork()
  // deliberately does advance; split exists for the side channels.)
  EXPECT_EQ(base.uniform_int(0, 1'000'000), probe.uniform_int(0, 1'000'000));
}

// --- fault plan generation --------------------------------------------------

TEST(FaultPlanTest, GenerateIsPureSortedAndBudgeted) {
  sim::ChaosProfile profile;
  profile.cells = 4;
  profile.links = 4;
  profile.window_begin = TimePoint::at_ms(10.0);
  profile.window_end = TimePoint::at_ms(100.0);
  profile.cell_kill_probability = 1.0;
  profile.link_flap_probability = 1.0;
  profile.reconfigure_fail_probability = 1.0;
  profile.mean_partition = Duration::ms(20.0);

  const auto a = sim::FaultPlan::generate(profile, Rng(2026).split(3));
  const auto b = sim::FaultPlan::generate(profile, Rng(2026).split(3));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_DOUBLE_EQ(a.events()[i].at.to_ms(), b.events()[i].at.to_ms());
    EXPECT_EQ(a.events()[i].index, b.events()[i].index);
  }

  // Sorted, inside the window, and kill-budgeted: at least one cell
  // survives so drained jobs always have somewhere to land.
  for (std::size_t i = 1; i < a.size(); ++i) {
    EXPECT_LE(a.events()[i - 1].at.to_ms(), a.events()[i].at.to_ms());
  }
  for (const auto& ev : a.events()) {
    EXPECT_GE(ev.at.to_ms(), 10.0);
    EXPECT_LE(ev.at.to_ms(), 100.0);
  }
  EXPECT_EQ(a.count(sim::FaultEvent::Kind::kCellKill), profile.cells - 1u);
  // Every partition heals inside the window.
  EXPECT_EQ(a.count(sim::FaultEvent::Kind::kLinkDown),
            a.count(sim::FaultEvent::Kind::kLinkUp));
  EXPECT_EQ(a.count(sim::FaultEvent::Kind::kLinkDown), profile.links);
  EXPECT_EQ(a.count(sim::FaultEvent::Kind::kReconfigureFail),
            profile.cells);
}

// --- link partition semantics ----------------------------------------------

TEST(LinkPartitionTest, ParksFifoAndStoreAndForwardsInFlight) {
  sim::Simulation sim;
  hw::Link link(sim, hw::ethernet_1gbps());

  // An in-flight transfer survives the partition (store-and-forward:
  // the bytes already left the source NIC).
  double first_done = -1.0;
  link.transfer(1024 * 1024, [&] { first_done = sim.now().to_ms(); });
  sim.schedule_in(Duration::ms(1.0), [&] { link.set_down(true); });
  sim.run();
  EXPECT_GT(first_done, 0.0);
  EXPECT_TRUE(link.down());

  // New admissions park while down, then replay in arrival order.
  std::vector<int> order;
  link.transfer(1024, [&] { order.push_back(1); });
  link.transfer(1024, [&] { order.push_back(2); });
  link.transfer(1024, [&] { order.push_back(3); });
  sim.run();
  EXPECT_TRUE(order.empty());
  EXPECT_EQ(link.parked(), 3u);
  EXPECT_EQ(link.stats().parked_transfers, 3u);
  EXPECT_EQ(link.stats().downs, 1u);

  link.set_down(false);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(link.parked(), 0u);
}

// --- cluster chaos ----------------------------------------------------------

TEST(ChaosClusterTest, KillCellDrainsRunningJobsExactlyOnce) {
  const auto specs = apps::paper_benchmarks();
  exp::ClusterSpec spec;
  spec.cells = 3;
  exp::ExperimentOptions options;
  options.mode = apps::SystemMode::kXarTrek;
  exp::ClusterExperiment cluster(specs, shared_table(), spec, options);

  // Two jobs on the doomed cell (facedet320 runs for hundreds of ms,
  // so both are mid-flight at the 50 ms kill), one bystander.
  cluster.submit(1, "facedet320");
  cluster.submit(1, "facedet320");
  cluster.submit(0, "facedet320");

  sim::FaultPlan plan;
  plan.add({sim::FaultEvent::Kind::kCellKill, TimePoint::at_ms(50.0), 1});
  cluster.apply_fault_plan(plan);

  ASSERT_TRUE(cluster.run_until_jobs_complete());
  EXPECT_TRUE(cluster.cell_dead(1));
  EXPECT_FALSE(cluster.cell_dead(0));
  EXPECT_FALSE(cluster.cell_dead(2));

  // Conservation: every job completed exactly once, and the doomed
  // cell's jobs got there via checkpoint drain.
  const auto stats = cluster.job_stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.drained, 2u);
  for (const double t : cluster.job_completion_times_ms()) {
    EXPECT_GT(t, 0.0);
  }
  // Health checks were live from the moment the plan was applied.
  EXPECT_TRUE(cluster.cell(0).server().health_checks_active());
}

TEST(ChaosClusterTest, DeadCellBackoffRetriesOntoRingNeighbor) {
  const auto specs = apps::paper_benchmarks();
  exp::ClusterSpec spec;
  spec.cells = 2;
  exp::ExperimentOptions options;
  options.mode = apps::SystemMode::kXarTrek;
  exp::ClusterExperiment cluster(specs, shared_table(), spec, options);

  cluster.kill_cell(1);
  cluster.run_for(Duration::ms(1.0));
  ASSERT_TRUE(cluster.cell_dead(1));

  // Submitting to a dead cell: the placement finds the corpse, backs
  // off, and forwards the checkpoint to the surviving neighbor.
  cluster.submit(1, "facedet320");
  ASSERT_TRUE(cluster.run_until_jobs_complete());

  const auto stats = cluster.job_stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_GE(stats.retries, 1u);  // backoff re-placement, not a drain
  EXPECT_EQ(stats.drained, 0u);  // it was never running on the corpse
}

TEST(ChaosClusterTest, KillWithPartitionedDrainPathStillConservesJobs) {
  const auto specs = apps::paper_benchmarks();
  exp::ClusterSpec spec;
  spec.cells = 3;
  exp::ExperimentOptions options;
  options.mode = apps::SystemMode::kXarTrek;
  exp::ClusterExperiment cluster(specs, shared_table(), spec, options);

  cluster.submit(1, "facedet320");
  cluster.submit(1, "facedet320");

  // The drain path out of cell 1 is already partitioned when the cell
  // dies: checkpoints park on the downed link and deliver at repair.
  sim::FaultPlan plan;
  plan.add({sim::FaultEvent::Kind::kLinkDown, TimePoint::at_ms(40.0), 1});
  plan.add({sim::FaultEvent::Kind::kCellKill, TimePoint::at_ms(50.0), 1});
  plan.add({sim::FaultEvent::Kind::kLinkUp, TimePoint::at_ms(150.0), 1});
  cluster.apply_fault_plan(plan);

  ASSERT_TRUE(cluster.run_until_jobs_complete());
  const auto stats = cluster.job_stats();
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.drained, 2u);
  // Nothing could land before the link healed.
  EXPECT_GE(stats.max_latency_ms, 150.0);
}

std::vector<double> run_chaos_cluster(bool parallel) {
  const auto specs = apps::paper_benchmarks();
  exp::ClusterSpec spec;
  spec.cells = 3;
  spec.parallel = parallel;
  exp::ExperimentOptions options;
  options.mode = apps::SystemMode::kXarTrek;
  exp::ClusterExperiment cluster(specs, shared_table(), spec, options);

  for (std::size_t c = 0; c < 3; ++c) {
    cluster.submit(c, "facedet320");
    cluster.submit(c, "digit500");
  }

  sim::ChaosProfile profile;
  profile.cells = 3;
  profile.links = 3;
  profile.window_begin = TimePoint::at_ms(10.0);
  profile.window_end = TimePoint::at_ms(200.0);
  profile.cell_kill_probability = 0.6;
  profile.link_flap_probability = 0.6;
  profile.reconfigure_fail_probability = 0.6;
  profile.mean_partition = Duration::ms(20.0);
  const auto plan = sim::FaultPlan::generate(profile, Rng(2026).split(7));
  EXPECT_FALSE(plan.empty());
  cluster.apply_fault_plan(plan);

  EXPECT_TRUE(cluster.run_until_jobs_complete());
  EXPECT_EQ(cluster.completed_jobs(), cluster.submitted_jobs());
  return cluster.job_completion_times_ms();
}

TEST(ChaosClusterTest, SerialAndParallelChaosTracesIdentical) {
  // The determinism contract under fire: the same generated FaultPlan
  // produces bit-identical per-job completion instants across a rerun
  // and across serial vs threaded shard execution.
  const auto serial_a = run_chaos_cluster(false);
  const auto serial_b = run_chaos_cluster(false);
  const auto threaded = run_chaos_cluster(true);
  ASSERT_EQ(serial_a.size(), serial_b.size());
  ASSERT_EQ(serial_a.size(), threaded.size());
  for (std::size_t i = 0; i < serial_a.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial_a[i], serial_b[i]) << "job " << i;
    EXPECT_DOUBLE_EQ(serial_a[i], threaded[i]) << "job " << i;
  }
}

std::vector<double> run_fault_free_cluster(bool apply_empty_plan) {
  const auto specs = apps::paper_benchmarks();
  exp::ClusterSpec spec;
  spec.cells = 2;
  exp::ExperimentOptions options;
  options.mode = apps::SystemMode::kXarTrek;
  exp::ClusterExperiment cluster(specs, shared_table(), spec, options);
  cluster.submit(0, "facedet320");
  cluster.submit(1, "digit500");
  if (apply_empty_plan) {
    // Even with aggressive tunables attached, an empty plan must not
    // start health checks or schedule anything.
    exp::FaultInjectionOptions opts;
    opts.health.period = Duration::ms(1.0);
    cluster.apply_fault_plan(sim::FaultPlan{}, opts);
    EXPECT_FALSE(cluster.cell(0).server().health_checks_active());
  }
  EXPECT_TRUE(cluster.run_until_jobs_complete());
  return cluster.job_completion_times_ms();
}

TEST(ChaosClusterTest, EmptyFaultPlanIsBitIdenticalNoOp) {
  const auto baseline = run_fault_free_cluster(false);
  const auto with_empty_plan = run_fault_free_cluster(true);
  ASSERT_EQ(baseline.size(), with_empty_plan.size());
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_DOUBLE_EQ(baseline[i], with_empty_plan[i]) << "job " << i;
  }
}

}  // namespace
}  // namespace xartrek
