// Tests for the topology auto-partitioner and the cluster experiment:
// deterministic shard maps, lookahead validation with named edges,
// largest-legal-epoch auto-pick, derived channel wiring, and the
// 1-cell ClusterExperiment reproducing exp::Experiment's trace exactly.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/benchmark_spec.hpp"
#include "apps/load_generator.hpp"
#include "exp/cluster.hpp"
#include "exp/experiment.hpp"
#include "exp/threshold_estimator.hpp"
#include "hw/link.hpp"
#include "isa/isa.hpp"
#include "popcorn/machine_state.hpp"
#include "popcorn/metadata.hpp"
#include "popcorn/migration_runtime.hpp"
#include "popcorn/state_transform.hpp"
#include "sim/topology.hpp"

namespace xartrek {
namespace {

// --- partitioner ------------------------------------------------------------

TEST(TopologyTest, ShardMapIsDeterministicAndSortedByCell) {
  // Cells registered out of order: the map must order shards by
  // ascending CellId, independent of registration order.
  sim::Topology a;
  const auto a9 = a.add_node("nine", 9);
  const auto a2 = a.add_node("two", 2);
  const auto a5 = a.add_node("five", 5);
  const auto a2b = a.add_node("two-bis", 2);
  const auto plan_a = a.plan();

  EXPECT_EQ(plan_a.shards, 3u);
  EXPECT_EQ(plan_a.shard_cell, (std::vector<sim::CellId>{2, 5, 9}));
  EXPECT_EQ(plan_a.shard_of(a2), 0u);
  EXPECT_EQ(plan_a.shard_of(a2b), 0u);
  EXPECT_EQ(plan_a.shard_of(a5), 1u);
  EXPECT_EQ(plan_a.shard_of(a9), 2u);

  // Same graph, different registration order: same cell -> shard map.
  sim::Topology b;
  const auto b2 = b.add_node("two", 2);
  const auto b5 = b.add_node("five", 5);
  const auto b9 = b.add_node("nine", 9);
  const auto plan_b = b.plan();
  EXPECT_EQ(plan_b.shard_cell, plan_a.shard_cell);
  EXPECT_EQ(plan_b.shard_of(b2), plan_a.shard_of(a2));
  EXPECT_EQ(plan_b.shard_of(b5), plan_a.shard_of(a5));
  EXPECT_EQ(plan_b.shard_of(b9), plan_a.shard_of(a9));

  // Planning twice is bit-identical (pure function of the graph).
  const auto plan_a2 = a.plan();
  EXPECT_EQ(plan_a2.node_shard, plan_a.node_shard);
  EXPECT_EQ(plan_a2.epoch, plan_a.epoch);
}

TEST(TopologyTest, AutoPicksLargestLegalEpoch) {
  sim::Topology topo;
  const auto a = topo.add_node("a", 0);
  const auto b = topo.add_node("b", 1);
  const auto c = topo.add_node("c", 2);
  topo.add_edge(a, b, Duration::ms(3.0));
  topo.add_edge(b, c, Duration::ms(2.0));       // the binding constraint
  topo.add_edge(a, a, Duration::micros(1.0));   // in-cell: no constraint
  const auto plan = topo.plan();
  EXPECT_EQ(plan.epoch, Duration::ms(2.0));
  EXPECT_EQ(plan.cross_edges, 2u);
}

TEST(TopologyTest, PlanDerivesAdaptiveCeilingFromCrossEdges) {
  sim::Topology topo;
  const auto a = topo.add_node("a", 0);
  const auto b = topo.add_node("b", 1);
  topo.add_edge(a, b, Duration::ms(3.0));
  topo.add_edge(b, a, Duration::ms(2.0));

  // Auto-picked epoch: ceiling == epoch == the tightest cross edge.
  const auto auto_plan = topo.plan();
  EXPECT_EQ(auto_plan.epoch, Duration::ms(2.0));
  EXPECT_EQ(auto_plan.max_epoch, Duration::ms(2.0));

  // Forced tighter epoch: the ceiling stays at the tightest cross
  // edge, so adaptation may legally coarsen past the forced value.
  sim::Topology::PartitionOptions opts;
  opts.epoch = Duration::ms(0.5);
  const auto forced = topo.plan(opts);
  EXPECT_EQ(forced.epoch, Duration::ms(0.5));
  EXPECT_EQ(forced.max_epoch, Duration::ms(2.0));

  // Nothing crossing shards: any window is legal; the ceiling is the
  // bounded 256x cap.
  sim::Topology isolated;
  (void)isolated.add_node("solo", 0);
  const auto solo = isolated.plan();
  EXPECT_DOUBLE_EQ(solo.max_epoch.to_ms(), solo.epoch.to_ms() * 256.0);
}

TEST(TopologyTest, FallbackEpochWhenNothingCrosses) {
  sim::Topology topo;
  const auto a = topo.add_node("a", 0);
  topo.add_edge(a, a, Duration::zero());
  const auto plan = topo.plan();
  EXPECT_EQ(plan.shards, 1u);
  EXPECT_EQ(plan.cross_edges, 0u);
  EXPECT_EQ(plan.epoch, Duration::micros(100.0));
}

TEST(TopologyTest, RejectsEpochAboveCrossLatencyWithNamedEdge) {
  sim::Topology topo;
  const auto a = topo.add_node("cell0/x86", 0);
  const auto b = topo.add_node("cell1/x86", 1);
  topo.add_edge(a, b, Duration::ms(0.5));
  sim::Topology::PartitionOptions opts;
  opts.epoch = Duration::ms(1.0);
  try {
    (void)topo.plan(opts);
    FAIL() << "expected a lookahead-contract error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("cell0/x86 -> cell1/x86"), std::string::npos)
        << what;
    EXPECT_NE(what.find("lookahead"), std::string::npos) << what;
    EXPECT_NE(what.find("0.5 ms"), std::string::npos) << what;
  }
}

TEST(TopologyTest, RejectsZeroLatencyCrossEdge) {
  sim::Topology topo;
  const auto a = topo.add_node("a", 0);
  const auto b = topo.add_node("b", 1);
  topo.add_edge(a, b, Duration::zero());
  EXPECT_THROW((void)topo.plan(), Error);
}

// --- derived channels -------------------------------------------------------

TEST(PartitionedEngineTest, DerivesInertAndMailboxChannels) {
  sim::Topology topo;
  const auto a = topo.add_node("a", 0);
  const auto a2 = topo.add_node("a2", 0);
  const auto b = topo.add_node("b", 1);
  topo.add_edge(a, a2, Duration::micros(1.0));
  const auto cross = topo.add_edge(a, b, Duration::ms(2.0));
  sim::PartitionedEngine eng(std::move(topo));

  // Same shard: inert channel, the component keeps local behavior.
  EXPECT_FALSE(eng.channel_between(a, a2).connected());
  // Cross shard: mailbox channel carrying the edge's modeled latency.
  const auto channel = eng.channel(cross);
  EXPECT_TRUE(channel.connected());
  EXPECT_EQ(channel.latency(), Duration::ms(2.0));
  // Undeclared interaction: refused, not silently zero-latency.
  EXPECT_THROW((void)eng.channel_between(a2, b), Error);

  // End to end: a delivery crosses shards at the modeled latency.
  double arrived_at = -1.0;
  eng.sim_of(a).schedule_at(TimePoint::at_ms(1.0), [&] {
    channel.deliver([&eng, &arrived_at, b] {
      arrived_at = eng.sim_of(b).now().to_ms();
    });
  });
  eng.engine().run();
  EXPECT_DOUBLE_EQ(arrived_at, 3.0);
}

TEST(PartitionedEngineTest, LiveRemapMovesShardsAndKeepsChannelsValid) {
  // Three cells on two workers.  The plan fixes the node -> shard map
  // forever; the live shard -> worker map starts round-robin and may
  // be rewritten between runs.  Channels name shards, so a remap never
  // invalidates one -- a channel derived before the move and one
  // re-derived after must behave identically.
  sim::Topology topo;
  const auto a = topo.add_node("a", 0);
  const auto b = topo.add_node("b", 1);
  const auto c = topo.add_node("c", 2);
  const auto ab = topo.add_edge(a, b, Duration::ms(2.0));
  topo.add_edge(b, c, Duration::ms(2.0));
  sim::Topology::PartitionOptions opts;
  opts.exec.workers = 2;
  sim::PartitionedEngine eng(std::move(topo), opts);

  ASSERT_EQ(eng.engine().worker_count(), 2u);
  EXPECT_EQ(eng.worker_of(a), 0u);
  EXPECT_EQ(eng.worker_of(b), 1u);
  EXPECT_EQ(eng.worker_of(c), 0u);

  const auto before = eng.channel(ab);
  double first = -1.0;
  eng.sim_of(a).schedule_at(TimePoint::at_ms(1.0), [&] {
    before.deliver([&] { first = eng.sim_of(b).now().to_ms(); });
  });
  eng.engine().run();
  EXPECT_DOUBLE_EQ(first, 3.0);

  // Move node a's shard to worker 1 between runs; the node -> shard
  // map is untouched, only the execution lane changes.
  eng.engine().set_worker_of(eng.shard_of(a), 1);
  EXPECT_EQ(eng.worker_of(a), 1u);
  EXPECT_EQ(eng.shard_of(a), 0u);
  EXPECT_EQ(eng.engine().steal_moves(), 1u);

  // The old channel still delivers, and re-deriving it yields the
  // same shard pair and latency.
  const auto after = eng.channel(ab);
  EXPECT_TRUE(after.connected());
  EXPECT_EQ(after.latency(), before.latency());
  double second = -1.0;
  eng.sim_of(a).schedule_in(Duration::ms(1.0), [&] {
    before.deliver([&] { second = eng.sim_of(b).now().to_ms(); });
  });
  eng.engine().run();
  EXPECT_GT(second, first);
}

TEST(PartitionedEngineTest, LinkRegistersRouteAcrossCells) {
  sim::Topology topo;
  const auto src = topo.add_node("cell0/x86", 0);
  const auto dst = topo.add_node("cell1/x86", 1);
  topo.add_edge(src, dst, Duration::ms(2.0));
  sim::PartitionedEngine eng(std::move(topo));

  hw::Link link(eng.sim_of(src), hw::LinkSpec{"wire", 1.0,
                                              Duration::ms(0.25)});
  link.register_route(eng, src, dst);
  double arrived_at = -1.0;
  eng.sim_of(src).schedule_at(TimePoint::at_ms(1.0), [&] {
    link.transfer(0, [&] { arrived_at = eng.sim_of(dst).now().to_ms(); });
  });
  eng.engine().run();
  // send + link latency + 0-byte payload + registered edge latency.
  EXPECT_NEAR(arrived_at, 1.0 + 0.25 + 2.0, 1e-9);
}

TEST(PartitionedEngineTest, MigrationArrivalResumesOnDestinationShard) {
  sim::Topology topo;
  const auto src = topo.add_node("x86", 0);
  const auto dst = topo.add_node("arm", 1);
  topo.add_edge(src, dst, Duration::ms(2.0));
  sim::PartitionedEngine eng(std::move(topo));

  hw::Link eth(eng.sim_of(src), hw::ethernet_1gbps());
  popcorn::CallSiteMetadata site;
  site.function = "hot";
  site.site_id = 1;
  site.frame_size[isa::IsaKind::kX86_64] = 32;
  site.frame_size[isa::IsaKind::kAarch64] = 32;
  popcorn::MigrationMetadata md;
  md.add_site(std::move(site));
  const popcorn::StateTransformer transformer(md);
  popcorn::MigrationRuntime runtime(eng.sim_of(src), eth, transformer);
  runtime.register_arrival(eng, src, dst);

  double arrived_at = -1.0;
  popcorn::MachineState x86(isa::IsaKind::kX86_64, "hot", 1, 32);
  runtime.migrate(x86, isa::IsaKind::kAarch64, /*working_set_bytes=*/0,
                  [&](popcorn::MachineState st) {
                    EXPECT_EQ(st.isa(), isa::IsaKind::kAarch64);
                    arrived_at = eng.sim_of(dst).now().to_ms();
                  });
  eng.engine().run();
  // The resume fires on the destination shard, the registered 2 ms
  // edge latency after the wire burst lands.
  EXPECT_GT(arrived_at, 2.0);
  EXPECT_EQ(runtime.migrations(), 1u);
}

// --- cluster experiment -----------------------------------------------------

const runtime::ThresholdTable& shared_table() {
  static const exp::EstimationResult result =
      exp::ThresholdEstimator().estimate(apps::paper_benchmarks());
  return result.table;
}

TEST(ClusterExperimentTest, OneCellTraceIdenticalToExperiment) {
  // The acceptance bar: a 1-cell ClusterExperiment reproduces
  // exp::Experiment exactly (same completion times, same order, same
  // placements) on a Figure-3-sized workload -- five tenants, idle
  // server, Xar-Trek mode.
  const auto specs = apps::paper_benchmarks();
  exp::ExperimentOptions options;
  options.mode = apps::SystemMode::kXarTrek;

  exp::Experiment plain(specs, shared_table(), options);
  for (const auto& s : specs) plain.launch(s.name);
  ASSERT_TRUE(plain.run_until_complete(specs.size()));

  exp::ClusterExperiment cluster(specs, shared_table(), exp::ClusterSpec{},
                                 options);
  EXPECT_EQ(cluster.cell_count(), 1u);
  for (const auto& s : specs) cluster.launch(0, s.name);
  ASSERT_TRUE(cluster.run_until_complete(specs.size()));

  const auto& expected = plain.results();
  const auto& actual = cluster.results(0);
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].app, expected[i].app);
    EXPECT_EQ(actual[i].func_target, expected[i].func_target);
    EXPECT_DOUBLE_EQ(actual[i].started.to_ms(),
                     expected[i].started.to_ms());
    EXPECT_DOUBLE_EQ(actual[i].finished.to_ms(),
                     expected[i].finished.to_ms());
  }
  // Same scheduler story, decision for decision.
  EXPECT_EQ(cluster.cell(0).server().stats().requests,
            plain.server().stats().requests);
  EXPECT_EQ(cluster.cell(0).server().stats().to_fpga,
            plain.server().stats().to_fpga);
}

struct CellRun {
  std::string app;
  double started_ms;
  double finished_ms;
};

std::vector<std::vector<CellRun>> run_two_cell_cluster(exp::ClusterSpec spec) {
  const auto specs = apps::paper_benchmarks();
  spec.cells = 2;
  exp::ExperimentOptions options;
  options.mode = apps::SystemMode::kXarTrek;
  exp::ClusterExperiment cluster(specs, shared_table(), spec, options);
  cluster.launch(0, "facedet320");
  cluster.launch(0, "cg_a");
  cluster.launch(1, "digit2000");
  cluster.launch(1, "facedet640");
  EXPECT_TRUE(cluster.run_until_complete(4));
  std::vector<std::vector<CellRun>> out(2);
  for (std::size_t c = 0; c < 2; ++c) {
    for (const auto& r : cluster.results(c)) {
      out[c].push_back(CellRun{r.app, r.started.to_ms(),
                               r.finished.to_ms()});
    }
  }
  return out;
}

std::vector<std::vector<CellRun>> run_two_cell_cluster(bool parallel) {
  exp::ClusterSpec spec;
  spec.parallel = parallel;
  return run_two_cell_cluster(spec);
}

TEST(ClusterExperimentTest, MultiCellDeterministicAndParallelIdentical) {
  const auto serial_a = run_two_cell_cluster(false);
  const auto serial_b = run_two_cell_cluster(false);
  const auto threaded = run_two_cell_cluster(true);
  for (std::size_t c = 0; c < 2; ++c) {
    ASSERT_EQ(serial_a[c].size(), 2u);
    for (std::size_t i = 0; i < serial_a[c].size(); ++i) {
      EXPECT_EQ(serial_b[c][i].app, serial_a[c][i].app);
      EXPECT_DOUBLE_EQ(serial_b[c][i].finished_ms,
                       serial_a[c][i].finished_ms);
      EXPECT_EQ(threaded[c][i].app, serial_a[c][i].app);
      EXPECT_DOUBLE_EQ(threaded[c][i].finished_ms,
                       serial_a[c][i].finished_ms);
    }
  }
}

std::vector<std::vector<CellRun>> run_four_cell_cluster(
    exp::ClusterSpec spec) {
  const auto specs = apps::paper_benchmarks();
  spec.cells = 4;
  exp::ExperimentOptions options;
  options.mode = apps::SystemMode::kXarTrek;
  exp::ClusterExperiment cluster(specs, shared_table(), spec, options);
  cluster.launch(0, "facedet320");
  cluster.launch(0, "cg_a");
  cluster.launch(1, "digit2000");
  cluster.launch(2, "facedet640");
  cluster.launch(3, "facedet320");
  EXPECT_TRUE(cluster.run_until_complete(5));
  std::vector<std::vector<CellRun>> out(4);
  for (std::size_t c = 0; c < 4; ++c) {
    for (const auto& r : cluster.results(c)) {
      out[c].push_back(CellRun{r.app, r.started.to_ms(),
                               r.finished.to_ms()});
    }
  }
  return out;
}

TEST(ClusterExperimentTest, AdaptiveAndStealingKeepTheTraceIdentical) {
  // The acceptance pin for the adaptive sharded core: adaptive epochs,
  // two pinned workers carrying four cells, and stealing all switched
  // on at once must reproduce the plain fixed-epoch serial trace
  // exactly, serial and parallel alike.
  const auto baseline = run_four_cell_cluster(exp::ClusterSpec{});
  for (const bool parallel : {false, true}) {
    exp::ClusterSpec spec;
    spec.parallel = parallel;
    spec.exec.adaptive = true;
    spec.exec.steal = true;
    spec.exec.workers = 2;
    spec.exec.pin_threads = parallel;
    const auto tuned = run_four_cell_cluster(spec);
    for (std::size_t c = 0; c < 4; ++c) {
      ASSERT_EQ(tuned[c].size(), baseline[c].size());
      for (std::size_t i = 0; i < baseline[c].size(); ++i) {
        EXPECT_EQ(tuned[c][i].app, baseline[c][i].app);
        EXPECT_DOUBLE_EQ(tuned[c][i].started_ms, baseline[c][i].started_ms);
        EXPECT_DOUBLE_EQ(tuned[c][i].finished_ms,
                         baseline[c][i].finished_ms);
      }
    }
  }
}

TEST(ClusterExperimentTest, HandoffRidesTheIntercellLink) {
  const auto specs = apps::paper_benchmarks();
  exp::ClusterSpec spec;
  spec.cells = 2;
  exp::ClusterExperiment cluster(specs, shared_table(), spec);
  // Auto-picked epoch: the 1 Gbps intercell latency (120 us).
  EXPECT_EQ(cluster.engine().plan().epoch, Duration::micros(120.0));

  double arrived_at = -1.0;
  cluster.cell(0).simulation().schedule_at(TimePoint::at_ms(1.0), [&] {
    cluster.handoff(0, 0, [&] {
      arrived_at = cluster.cell(1).simulation().now().to_ms();
    });
  });
  cluster.run_for(Duration::ms(10.0));
  // send + link latency + registered edge latency (two 120 us hops).
  EXPECT_NEAR(arrived_at, 1.0 + 0.12 + 0.12, 1e-9);
  EXPECT_EQ(cluster.handoffs(), 1u);
}

TEST(ClusterExperimentTest, ShardedBackgroundLoadBatchesPerCell) {
  const auto specs = apps::paper_benchmarks();
  exp::ClusterSpec spec;
  spec.cells = 2;
  exp::ClusterExperiment cluster(specs, shared_table(), spec);
  cluster.set_background_load(11);
  EXPECT_EQ(cluster.cell(0).testbed().x86().load(), 6);
  EXPECT_EQ(cluster.cell(1).testbed().x86().load(), 5);
  ASSERT_NE(cluster.background_load(), nullptr);
  EXPECT_EQ(cluster.background_load()->total_jobs(), 11u);
  cluster.run_for(Duration::seconds(1.0));
  EXPECT_EQ(cluster.cell(0).testbed().x86().load(), 6);  // loops persist
  cluster.set_background_load(0);
  EXPECT_EQ(cluster.cell(0).testbed().x86().load(), 0);
  EXPECT_EQ(cluster.cell(1).testbed().x86().load(), 0);
}

}  // namespace
}  // namespace xartrek
