// Functional tests for the real workload implementations.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <map>
#include <queue>
#include <sstream>

#include "workloads/bfs.hpp"
#include "workloads/cg.hpp"
#include "workloads/digitrec.hpp"
#include "workloads/face_detect.hpp"
#include "workloads/image.hpp"
#include "workloads/mg.hpp"

namespace xartrek::workloads {
namespace {

// --- digitrec ----------------------------------------------------------

TEST(DigitrecTest, PopcountAndHamming) {
  DigitBits zero{};
  EXPECT_EQ(popcount196(zero), 0);
  DigitBits a{};
  a[0] = 0b1011;  // 3 bits
  EXPECT_EQ(popcount196(a), 3);
  DigitBits b{};
  b[0] = 0b0011;
  EXPECT_EQ(hamming196(a, b), 1);
  EXPECT_EQ(hamming196(a, a), 0);
  // Bits above 196 are masked out.
  DigitBits top{};
  top[3] = 0xFFFF'FFFF'FFFF'FFF0ull;  // only low 4 bits of word 3 count
  EXPECT_EQ(popcount196(top), 0);
}

TEST(DigitrecTest, KnnFindsExactMatch) {
  Rng rng(1);
  const auto ds = make_synthetic_digits(rng, 20, 0, 0.5);
  // Classify a training sample itself: its own digest is distance 0.
  for (int i = 0; i < 10; ++i) {
    const auto& t = ds.training[static_cast<std::size_t>(i) * 20];
    EXPECT_EQ(knn_classify(ds.training, t.bits, 1), t.label);
  }
}

TEST(DigitrecTest, HighAccuracyAtLowNoise) {
  Rng rng(7);
  const auto ds = make_synthetic_digits(rng, 50, 400, 3.0);
  const auto result = digitrec_kernel(ds, 3);
  EXPECT_EQ(result.total, 400);
  EXPECT_GT(result.accuracy(), 0.95);
}

TEST(DigitrecTest, AccuracyDegradesWithNoise) {
  Rng rng(7);
  const auto clean = make_synthetic_digits(rng, 50, 300, 2.0);
  Rng rng2(7);
  const auto noisy = make_synthetic_digits(rng2, 50, 300, 60.0);
  EXPECT_GT(digitrec_kernel(clean).accuracy(),
            digitrec_kernel(noisy).accuracy());
}

TEST(DigitrecTest, KnnRequiresTraining) {
  std::vector<LabeledDigit> empty;
  EXPECT_THROW(knn_classify(empty, DigitBits{}, 3), ContractViolation);
}

TEST(DigitrecTest, OpProfileStreamsTraining) {
  const auto ops = digitrec_op_profile(18'000);
  EXPECT_DOUBLE_EQ(ops.iterations_per_item, 18'000.0);
  EXPECT_EQ(ops.irregular_mem_ops, 0u);  // streaming, FPGA-friendly
}

// --- BFS ----------------------------------------------------------------

std::vector<std::int32_t> reference_bfs(const CsrGraph& g, int source) {
  std::vector<std::int32_t> depth(static_cast<std::size_t>(g.nodes), -1);
  std::queue<int> q;
  depth[static_cast<std::size_t>(source)] = 0;
  q.push(source);
  while (!q.empty()) {
    const int u = q.front();
    q.pop();
    for (auto i = g.row_ptr[static_cast<std::size_t>(u)];
         i < g.row_ptr[static_cast<std::size_t>(u) + 1]; ++i) {
      const auto v = g.adj[static_cast<std::size_t>(i)];
      if (depth[static_cast<std::size_t>(v)] < 0) {
        depth[static_cast<std::size_t>(v)] =
            depth[static_cast<std::size_t>(u)] + 1;
        q.push(static_cast<int>(v));
      }
    }
  }
  return depth;
}

class BfsPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BfsPropertyTest, MatchesReferenceAndTriangleInequality) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const auto g = make_random_graph(rng, 500, 6.0);
  const auto depth = bfs_depths(g, 0);
  EXPECT_EQ(depth, reference_bfs(g, 0));
  // Backbone guarantees reachability.
  for (int v = 0; v < g.nodes; ++v) {
    EXPECT_GE(depth[static_cast<std::size_t>(v)], 0) << v;
  }
  // Edge relaxation: depth[v] <= depth[u] + 1 for every edge (u,v).
  for (int u = 0; u < g.nodes; ++u) {
    for (auto i = g.row_ptr[static_cast<std::size_t>(u)];
         i < g.row_ptr[static_cast<std::size_t>(u) + 1]; ++i) {
      const auto v = g.adj[static_cast<std::size_t>(i)];
      EXPECT_LE(depth[static_cast<std::size_t>(v)],
                depth[static_cast<std::size_t>(u)] + 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BfsPropertyTest, ::testing::Range(1, 6));

TEST(BfsTest, GraphShapeMatchesRequest) {
  Rng rng(3);
  const auto g = make_random_graph(rng, 1000, 10.0);
  EXPECT_EQ(g.nodes, 1000);
  EXPECT_NEAR(static_cast<double>(g.edges()) / g.nodes, 10.0, 1.0);
  EXPECT_EQ(g.row_ptr.size(), 1001u);
  EXPECT_EQ(g.row_ptr.back(), static_cast<std::int32_t>(g.adj.size()));
}

TEST(BfsTest, OpProfileIsIrregular) {
  const auto ops = bfs_op_profile(10.0);
  EXPECT_GT(ops.irregular_mem_ops, 0u);  // the FPGA-hostile signature
}

// --- images -------------------------------------------------------------

TEST(ImageTest, PgmRoundTrip) {
  Rng rng(5);
  const auto scene = make_scene(rng, 64, 48, 1, 24, 32);
  std::stringstream ss;
  write_pgm(ss, scene.image);
  const auto back = read_pgm(ss);
  EXPECT_EQ(back.width(), 64);
  EXPECT_EQ(back.height(), 48);
  EXPECT_EQ(back.pixels(), scene.image.pixels());
}

TEST(ImageTest, ReadPgmRejectsGarbage) {
  std::stringstream ss("P6\n2 2\n255\nxxxx");
  EXPECT_THROW(read_pgm(ss), Error);
}

TEST(ImageTest, SceneRespectsFaceCountAndBounds) {
  Rng rng(11);
  const auto scene = make_scene(rng, 320, 240, 4);
  EXPECT_EQ(scene.faces.size(), 4u);
  for (const auto& f : scene.faces) {
    EXPECT_GE(f.x, 0);
    EXPECT_GE(f.y, 0);
    EXPECT_LE(f.x + f.size, 320);
    EXPECT_LE(f.y + f.size, 240);
    EXPECT_GE(f.size, 24);
  }
}

// --- face detection ------------------------------------------------------

TEST(IntegralImageTest, MatchesNaiveSums) {
  Rng rng(13);
  const auto scene = make_scene(rng, 40, 30, 0);
  const IntegralImage ii(scene.image);
  auto naive = [&](int x, int y, int w, int h) {
    std::uint64_t s = 0;
    for (int yy = y; yy < y + h; ++yy) {
      for (int xx = x; xx < x + w; ++xx) s += scene.image.at(xx, yy);
    }
    return s;
  };
  for (auto [x, y, w, h] : std::vector<std::array<int, 4>>{
           {0, 0, 40, 30}, {5, 7, 10, 3}, {39, 29, 1, 1}, {0, 29, 40, 1}}) {
    EXPECT_EQ(ii.rect_sum(x, y, w, h), naive(x, y, w, h));
  }
}

TEST(IntegralImageTest, RejectsOutOfBounds) {
  GrayImage img(10, 10, 100);
  const IntegralImage ii(img);
  EXPECT_THROW(ii.rect_sum(5, 5, 10, 1), ContractViolation);
}

TEST(FaceDetectTest, DetectsPlantedFaces) {
  Rng rng(17);
  const auto scene = make_scene(rng, 320, 240, 3, 28, 64);
  const auto detections = detect_faces(scene.image);
  // Recall: every planted face matched by some detection (IoU > 0.3).
  int matched = 0;
  for (const auto& f : scene.faces) {
    const Detection truth{f.x, f.y, f.size, 0.0};
    for (const auto& d : detections) {
      if (detection_iou(truth, d) > 0.3) {
        ++matched;
        break;
      }
    }
  }
  EXPECT_EQ(matched, 3) << "missed " << 3 - matched << " planted faces";
  // Precision: no detection far away from every face.
  for (const auto& d : detections) {
    bool near = false;
    for (const auto& f : scene.faces) {
      if (detection_iou(Detection{f.x, f.y, f.size, 0.0}, d) > 0.1) {
        near = true;
        break;
      }
    }
    EXPECT_TRUE(near) << "spurious detection at (" << d.x << "," << d.y
                      << ") size " << d.size;
  }
}

TEST(FaceDetectTest, EmptySceneYieldsNoDetections) {
  Rng rng(19);
  const auto scene = make_scene(rng, 200, 150, 0);
  EXPECT_TRUE(detect_faces(scene.image).empty());
}

TEST(FaceDetectTest, NmsSuppressesOverlaps) {
  std::vector<Detection> dets = {
      {10, 10, 30, 5.0}, {12, 12, 30, 3.0}, {100, 100, 30, 4.0}};
  const auto kept = non_max_suppress(dets, 0.3);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_DOUBLE_EQ(kept[0].score, 5.0);  // highest survives
  EXPECT_DOUBLE_EQ(kept[1].score, 4.0);
}

TEST(FaceDetectTest, IouProperties) {
  const Detection a{0, 0, 10, 0};
  EXPECT_DOUBLE_EQ(detection_iou(a, a), 1.0);
  const Detection far{100, 100, 10, 0};
  EXPECT_DOUBLE_EQ(detection_iou(a, far), 0.0);
  const Detection half{5, 0, 10, 0};
  EXPECT_NEAR(detection_iou(a, half), 50.0 / 150.0, 1e-9);
}

// --- CG -------------------------------------------------------------------

TEST(CgTest, MatrixIsSymmetricAndDiagonallyDominant) {
  Rng rng(23);
  const auto a = make_spd_matrix(rng, 64, 6);
  // Symmetry: collect (i,j,v) and check the transpose entry exists.
  std::map<std::pair<int, int>, double> entries;
  for (int i = 0; i < a.n; ++i) {
    for (auto p = a.row_ptr[static_cast<std::size_t>(i)];
         p < a.row_ptr[static_cast<std::size_t>(i) + 1]; ++p) {
      entries[{i, a.col_idx[static_cast<std::size_t>(p)]}] =
          a.values[static_cast<std::size_t>(p)];
    }
  }
  for (const auto& [ij, v] : entries) {
    auto it = entries.find({ij.second, ij.first});
    ASSERT_NE(it, entries.end());
    EXPECT_DOUBLE_EQ(it->second, v);
  }
  // Dominance: diag > sum |off-diag| per row.
  for (int i = 0; i < a.n; ++i) {
    double diag = 0.0;
    double off = 0.0;
    for (auto p = a.row_ptr[static_cast<std::size_t>(i)];
         p < a.row_ptr[static_cast<std::size_t>(i) + 1]; ++p) {
      const auto j = a.col_idx[static_cast<std::size_t>(p)];
      if (j == i) diag = a.values[static_cast<std::size_t>(p)];
      else off += std::abs(a.values[static_cast<std::size_t>(p)]);
    }
    EXPECT_GT(diag, off);
  }
}

TEST(CgTest, ConjGradReducesResidual) {
  Rng rng(29);
  const auto a = make_spd_matrix(rng, 128, 6);
  std::vector<double> x(128, 1.0);
  std::vector<double> z;
  const double r25 = conj_grad(a, x, z, 25);
  std::vector<double> z5;
  const double r5 = conj_grad(a, x, z5, 5);
  EXPECT_LT(r25, r5);
  EXPECT_LT(r25, 1e-6);  // SPD + dominance: fast convergence
}

TEST(CgTest, BenchmarkConvergesZeta) {
  Rng rng(31);
  const auto cls = CgClass::class_t();
  const auto a = make_spd_matrix(rng, cls.n, cls.nz_per_row);
  const auto result = cg_benchmark(a, cls);
  EXPECT_EQ(result.outer_iterations, cls.outer_iters);
  // zeta = shift + 1/(x . z) with A close to I-scale: finite, near shift.
  EXPECT_GT(result.zeta, cls.shift);
  EXPECT_LT(result.zeta, cls.shift + 5.0);
  EXPECT_LT(result.final_residual, 1e-6);
}

TEST(CgTest, ClassAParametersMatchNpb) {
  const auto a = CgClass::class_a();
  EXPECT_EQ(a.n, 14'000);
  EXPECT_EQ(a.outer_iters, 15);
  EXPECT_DOUBLE_EQ(a.shift, 20.0);
}

TEST(CgTest, OpProfileIsIrregular) {
  const auto ops = cg_op_profile(CgClass::class_a());
  EXPECT_GT(ops.irregular_mem_ops, 0u);
  EXPECT_GT(ops.iterations_per_item, 1e6);
}

// --- MG --------------------------------------------------------------------

TEST(MgTest, VcycleReducesResidual) {
  Rng rng(37);
  const int n = 16;
  const auto rhs = mg_random_rhs(rng, n);
  Grid3 u(n, 0.0);
  const double r0 = mg_residual_norm(u, rhs);
  mg_vcycle(u, rhs);
  const double r1 = mg_residual_norm(u, rhs);
  mg_vcycle(u, rhs);
  const double r2 = mg_residual_norm(u, rhs);
  EXPECT_LT(r1, r0 * 0.5);
  EXPECT_LT(r2, r1);
}

TEST(MgTest, SmoothingAloneConvergesSlowerThanVcycles) {
  // Multigrid's advantage is on the low-frequency error modes that
  // point smoothing barely touches; compare at equal smoothing work
  // (one V-cycle ~ 7 fine-grid sweeps) over several cycles.
  Rng rng(41);
  const int n = 16;
  const auto rhs = mg_random_rhs(rng, n);
  Grid3 smoothed(n, 0.0);
  for (int i = 0; i < 28; ++i) mg_smooth(smoothed, rhs);
  Grid3 cycled(n, 0.0);
  for (int i = 0; i < 4; ++i) mg_vcycle(cycled, rhs);
  EXPECT_LT(mg_residual_norm(cycled, rhs),
            mg_residual_norm(smoothed, rhs));
}

TEST(MgTest, RestrictionAveragesChildren) {
  Grid3 fine(8, 2.0);
  Grid3 coarse(4);
  mg_restrict(fine, coarse);
  for (double v : coarse.data()) EXPECT_DOUBLE_EQ(v, 2.0);
}

TEST(MgTest, PeriodicIndexingWraps) {
  Grid3 g(4);
  g.set(0, 0, 0, 9.0);
  EXPECT_DOUBLE_EQ(g.at(4, 4, 4), 9.0);
  EXPECT_DOUBLE_EQ(g.at(-4, 0, 0), 9.0);
}

TEST(MgTest, WorkModelGrowsWithGrid) {
  EXPECT_GT(mg_vcycle_points(32), mg_vcycle_points(16));
  EXPECT_GT(mg_vcycle_points(16), 7ull * 16 * 16 * 16);
}

TEST(MgTest, RandomRhsIsZeroMean) {
  Rng rng(43);
  const auto rhs = mg_random_rhs(rng, 8);
  double sum = 0.0;
  for (double v : rhs.data()) sum += v;
  EXPECT_NEAR(sum, 0.0, 1e-9);
}

}  // namespace
}  // namespace xartrek::workloads
