// Tests for the application layer: benchmark cost models (calibrated
// against the paper's Table 1), the process model, the load generator,
// and the multi-image throughput app.
#include <gtest/gtest.h>

#include "apps/application.hpp"
#include "apps/benchmark_spec.hpp"
#include "apps/load_generator.hpp"
#include "apps/multi_image_app.hpp"
#include "exp/experiment.hpp"
#include "exp/threshold_estimator.hpp"

namespace xartrek::apps {
namespace {

TEST(BenchmarkSpecTest, FiveBenchmarksWellFormed) {
  const auto specs = paper_benchmarks();
  ASSERT_EQ(specs.size(), 5u);
  const char* expected[] = {"cg_a", "facedet320", "facedet640", "digit500",
                            "digit2000"};
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(specs[i].name, expected[i]);
    EXPECT_FALSE(specs[i].kernel_name.empty());
    EXPECT_GT(specs[i].func_x86, Duration::zero());
    EXPECT_GT(specs[i].func_arm, specs[i].func_x86);  // ARM cores slower
    EXPECT_GT(specs[i].total_loc, specs[i].hot_loc);
  }
  EXPECT_EQ(benchmark_by_name(specs, "cg_a").kernel_name, "KNL_HW_CG_A");
  EXPECT_THROW(benchmark_by_name(specs, "nope"), Error);
}

TEST(BenchmarkSpecTest, KernelNamesMatchPaperTable2) {
  const auto specs = paper_benchmarks();
  EXPECT_EQ(benchmark_by_name(specs, "cg_a").kernel_name, "KNL_HW_CG_A");
  EXPECT_EQ(benchmark_by_name(specs, "facedet320").kernel_name,
            "KNL_HW_FD320");
  EXPECT_EQ(benchmark_by_name(specs, "facedet640").kernel_name,
            "KNL_HW_FD640");
  EXPECT_EQ(benchmark_by_name(specs, "digit500").kernel_name,
            "KNL_HW_DR500");
  EXPECT_EQ(benchmark_by_name(specs, "digit2000").kernel_name,
            "KNL_HW_DR200");
}

// The paper's Table 1 (milliseconds).  The three in-isolation scenarios
// of each benchmark must land within 5% of the authors' measurements:
// these are the *calibration* targets everything else derives from.
struct Table1Row {
  const char* app;
  double vanilla_x86;
  double xar_fpga;
  double xar_arm;
};
constexpr Table1Row kTable1[] = {
    {"cg_a", 2182, 10597, 8406},      {"facedet320", 175, 332, 642},
    {"facedet640", 885, 832, 2991},   {"digit500", 883, 470, 2281},
    {"digit2000", 3521, 1229, 8963},
};

class Table1CalibrationTest : public ::testing::TestWithParam<Table1Row> {};

TEST_P(Table1CalibrationTest, ScenarioTimesMatchPaper) {
  const auto& row = GetParam();
  const auto specs = paper_benchmarks();
  const exp::ThresholdEstimator estimator;

  const double x86 =
      estimator.scenario_time(specs, row.app, runtime::Target::kX86).to_ms();
  const double fpga =
      estimator.scenario_time(specs, row.app, runtime::Target::kFpga).to_ms();
  const double arm =
      estimator.scenario_time(specs, row.app, runtime::Target::kArm).to_ms();

  EXPECT_NEAR(x86, row.vanilla_x86, 0.05 * row.vanilla_x86) << row.app;
  EXPECT_NEAR(fpga, row.xar_fpga, 0.05 * row.xar_fpga) << row.app;
  EXPECT_NEAR(arm, row.xar_arm, 0.05 * row.xar_arm) << row.app;
}

INSTANTIATE_TEST_SUITE_P(PaperTable1, Table1CalibrationTest,
                         ::testing::ValuesIn(kTable1));

TEST(BenchmarkSpecTest, FpgaWinnersAndLosersMatchPaper) {
  // The paper's headline split: FPGA wins for FaceDet640/Digit500/
  // Digit2000, x86 wins for CG-A and FaceDet320; ARM is always the
  // slowest scenario in isolation.
  const auto specs = paper_benchmarks();
  const exp::ThresholdEstimator estimator;
  for (const auto& row : kTable1) {
    const double x86 =
        estimator.scenario_time(specs, row.app, runtime::Target::kX86)
            .to_ms();
    const double fpga =
        estimator.scenario_time(specs, row.app, runtime::Target::kFpga)
            .to_ms();
    const double arm =
        estimator.scenario_time(specs, row.app, runtime::Target::kArm)
            .to_ms();
    const bool fpga_wins = std::string(row.app) == "facedet640" ||
                           std::string(row.app) == "digit500" ||
                           std::string(row.app) == "digit2000";
    EXPECT_EQ(fpga < x86, fpga_wins) << row.app;
    EXPECT_GT(arm, x86) << row.app;
  }
}

TEST(BenchmarkSpecTest, BfsReferenceTimesMatchTable4) {
  // x86 column: exact at the measured sizes (piecewise interpolation);
  // FPGA column: quadratic fit, exact at the endpoints and within 8%
  // in between.  x86 wins by orders of magnitude everywhere (§4.4).
  const struct {
    int nodes;
    double x86;
    double fpga;
  } rows[] = {{1000, 3.36, 726.50},
              {2000, 115.74, 2282.54},
              {3000, 256.94, 4981.05},
              {4000, 458.04, 8760.80},
              {5000, 721.48, 13524.76}};
  for (const auto& row : rows) {
    const auto t = bfs_reference_times(row.nodes);
    EXPECT_NEAR(t.x86.to_ms(), row.x86, 1e-6);
    EXPECT_NEAR(t.fpga.to_ms(), row.fpga, 0.08 * row.fpga);
    EXPECT_GT(t.fpga.to_ms(), 15.0 * t.x86.to_ms());
  }
}

TEST(BenchmarkSpecTest, ProfileSpecRoundTrip) {
  const auto specs = paper_benchmarks();
  const auto profile = make_profile_spec(specs);
  const auto again =
      compiler::ProfileSpec::parse_string(profile.serialize());
  EXPECT_EQ(again.applications.size(), 5u);
  EXPECT_EQ(again.platform, "alveo-u50");
}

// --- Application process model -----------------------------------------

struct AppProcessFixture : ::testing::Test {
  std::vector<BenchmarkSpec> specs = paper_benchmarks();
  runtime::ThresholdTable seeded;

  void SetUp() override {
    // Paper Table 2 thresholds (the run-time consumes them as given).
    auto add = [&](const char* app, const char* kernel, int fpga, int arm,
                   double x86_ms, double arm_ms, double fpga_ms) {
      runtime::ThresholdEntry e;
      e.app = app;
      e.kernel_name = kernel;
      e.fpga_threshold = fpga;
      e.arm_threshold = arm;
      e.x86_exec = Duration::ms(x86_ms);
      e.arm_exec = Duration::ms(arm_ms);
      e.fpga_exec = Duration::ms(fpga_ms);
      seeded.upsert(e);
    };
    add("cg_a", "KNL_HW_CG_A", 31, 25, 2182, 8406, 10597);
    add("facedet320", "KNL_HW_FD320", 16, 31, 175, 642, 332);
    add("facedet640", "KNL_HW_FD640", 0, 23, 885, 2991, 832);
    add("digit500", "KNL_HW_DR500", 0, 18, 883, 2281, 470);
    add("digit2000", "KNL_HW_DR200", 0, 17, 3521, 8963, 1229);
  }

  exp::Experiment make(apps::SystemMode mode) {
    exp::ExperimentOptions options;
    options.mode = mode;
    return exp::Experiment(specs, seeded, options);
  }
};

TEST_F(AppProcessFixture, VanillaX86RunsEverythingLocally) {
  auto exp_ = make(SystemMode::kVanillaX86);
  exp_.launch("facedet320");
  ASSERT_TRUE(exp_.run_until_complete(1));
  const auto& r = exp_.results().front();
  EXPECT_EQ(r.func_target, runtime::Target::kX86);
  EXPECT_NEAR(r.elapsed().to_ms(), 175.0, 5.0);
}

TEST_F(AppProcessFixture, VanillaArmIsSlowest) {
  auto exp_ = make(SystemMode::kVanillaArm);
  exp_.launch("facedet320");
  ASSERT_TRUE(exp_.run_until_complete(1));
  const auto& r = exp_.results().front();
  EXPECT_EQ(r.func_target, runtime::Target::kArm);
  // Whole app on ARM: phases * factor + native ARM function (no
  // migration traffic) -- slower than every Table 1 scenario.
  EXPECT_GT(r.elapsed().to_ms(), 642.0);
}

TEST_F(AppProcessFixture, AlwaysFpgaPaysLazyConfiguration) {
  auto exp_ = make(SystemMode::kAlwaysFpga);
  exp_.launch("digit500");
  ASSERT_TRUE(exp_.run_until_complete(1));
  const auto& r = exp_.results().front();
  EXPECT_EQ(r.func_target, runtime::Target::kFpga);
  // Isolation FPGA time (470) plus the blocking XCLBIN configuration
  // (~300ms programming + download).
  EXPECT_GT(r.elapsed().to_ms(), 700.0);
  EXPECT_LT(r.elapsed().to_ms(), 900.0);
}

TEST_F(AppProcessFixture, XarTrekIdleStaysOnX86) {
  auto exp_ = make(SystemMode::kXarTrek);
  exp_.launch("facedet320");  // FPGA_THR 16 > load 1
  ASSERT_TRUE(exp_.run_until_complete(1));
  const auto& r = exp_.results().front();
  EXPECT_EQ(r.func_target, runtime::Target::kX86);
  EXPECT_NEAR(r.elapsed().to_ms(), 175.0, 10.0);
}

TEST_F(AppProcessFixture, XarTrekColdFpgaFirstRunHidesConfiguration) {
  // Algorithm 2 lines 9-13: the kernel is not live when the first
  // digit2000 run reaches its function call (its 50ms pre phase is
  // shorter than the XCLBIN programming), so it continues on x86 while
  // the image loads in the background -- latency hiding, not stalling.
  auto exp_ = make(SystemMode::kXarTrek);
  exp_.launch("digit2000");
  ASSERT_TRUE(exp_.run_until_complete(1));
  EXPECT_EQ(exp_.results().front().func_target, runtime::Target::kX86);
}

TEST_F(AppProcessFixture, XarTrekSendsFpgaFavouredAppToHardware) {
  // digit2000 has FPGA_THR = 0: once the image is live, any load routes
  // it to the FPGA.
  auto exp_ = make(SystemMode::kXarTrek);
  exp_.warm_fpga_for("digit2000");
  exp_.launch("digit2000");
  ASSERT_TRUE(exp_.run_until_complete(1));
  const auto& r = exp_.results().front();
  EXPECT_EQ(r.func_target, runtime::Target::kFpga);
  EXPECT_NEAR(r.elapsed().to_ms(), 1229.0, 62.0);  // Table 1 x86/FPGA
}

TEST_F(AppProcessFixture, XarTrekMigratesToArmUnderHighLoad) {
  auto exp_ = make(SystemMode::kXarTrek);
  exp_.add_background_load(60);
  // Let the load monitor observe the background processes.
  exp_.simulation().run_until(TimePoint::at_ms(250));
  exp_.launch("cg_a");  // load 60 > ARM_THR 25, FPGA_THR 31 < ARM? no:
                        // 31 > 25, so Algorithm 2 picks ARM.
  ASSERT_TRUE(exp_.run_until_complete(1));
  const auto& r = exp_.results().front();
  EXPECT_EQ(r.func_target, runtime::Target::kArm);
  // Far better than x86 under 60-process contention (2182 * 10).
  EXPECT_LT(r.elapsed().to_ms(), 12'000.0);
}

TEST_F(AppProcessFixture, ThresholdRefinementRunsAtExit) {
  auto exp_ = make(SystemMode::kXarTrek);
  exp_.add_background_load(12);
  exp_.simulation().run_until(TimePoint::at_ms(250));
  // facedet320 at load 13 stays on x86 (below FPGA_THR 16) but runs
  // ~13/6 slower than the isolation 175ms, exceeding the stored FPGA
  // time (332): Algorithm 1 lines 4-5 lower FPGA_THR to the observed
  // load.
  exp_.launch("facedet320");
  ASSERT_TRUE(exp_.run_until_complete(1));
  EXPECT_LT(exp_.table().at("facedet320").fpga_threshold, 16);
  EXPECT_EQ(exp_.results().front().func_target, runtime::Target::kX86);
}

// --- Load generator -------------------------------------------------------

TEST(LoadGeneratorTest, MaintainsRequestedLoad) {
  platform::Testbed testbed;
  LoadGenerator gen(testbed, 30);
  EXPECT_EQ(testbed.x86().load(), 30);
  // MG-B runs loop: still 30 resident processes after several runs.
  testbed.simulation().run_until(TimePoint::at_ms(60'000));
  EXPECT_EQ(testbed.x86().load(), 30);
  gen.stop();
  EXPECT_EQ(testbed.x86().load(), 0);
  EXPECT_FALSE(gen.running());
}

TEST(LoadGeneratorTest, StopIsIdempotentAndDestructorSafe) {
  platform::Testbed testbed;
  {
    LoadGenerator gen(testbed, 5);
    gen.stop();
    gen.stop();
  }  // destructor after stop: no crash
  testbed.simulation().run_until(TimePoint::at_ms(1000));
  EXPECT_EQ(testbed.x86().load(), 0);
}

// --- Multi-image app --------------------------------------------------------

TEST_F(AppProcessFixture, MultiImageAppHitsDeadline) {
  auto exp_ = make(SystemMode::kVanillaX86);
  MultiImageConfig config;
  config.target_images = 1000;
  config.deadline = Duration::seconds(60);
  bool done = false;
  MultiImageResult result;
  MultiImageFaceApp::launch(exp_.env(), exp_.spec("facedet320"),
                            SystemMode::kVanillaX86, config,
                            [&](const MultiImageResult& r) {
                              done = true;
                              result = r;
                            });
  const TimePoint horizon = TimePoint::at_ms(120'000);
  while (!done && exp_.simulation().step_one(horizon)) {
  }
  ASSERT_TRUE(done);
  // Per image: 2ms I/O + 150ms detect -> ~394 images in 60s.
  EXPECT_GT(result.images_processed, 350);
  EXPECT_LT(result.images_processed, 420);
  EXPECT_GE(result.elapsed, Duration::seconds(60));
}

TEST_F(AppProcessFixture, MultiImageXarTrekBeatsVanillaUnderLoad) {
  MultiImageConfig config;
  config.target_images = 1000;
  config.deadline = Duration::seconds(60);

  auto run_mode = [&](SystemMode mode) {
    auto exp_ = make(mode);
    exp_.add_background_load(50);
    exp_.simulation().run_until(TimePoint::at_ms(250));
    bool done = false;
    MultiImageResult result;
    MultiImageFaceApp::launch(exp_.env(), exp_.spec("facedet320"), mode,
                              config,
                              [&](const MultiImageResult& r) {
                                done = true;
                                result = r;
                              });
    const TimePoint horizon =
        exp_.simulation().now() + Duration::minutes(10);
    while (!done && exp_.simulation().step_one(horizon)) {
    }
    EXPECT_TRUE(done);
    return result.images_processed;
  };

  const int vanilla = run_mode(SystemMode::kVanillaX86);
  const int xartrek = run_mode(SystemMode::kXarTrek);
  // Paper Figure 6: ~4x gain above 25 background processes.
  EXPECT_GT(xartrek, 3 * vanilla);
}

}  // namespace
}  // namespace xartrek::apps
