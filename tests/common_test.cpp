// Unit tests for the common utilities.
#include <gtest/gtest.h>

#include <sstream>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/time.hpp"

namespace xartrek {
namespace {

TEST(DurationTest, NamedConstructorsAgree) {
  EXPECT_DOUBLE_EQ(Duration::seconds(1.5).to_ms(), 1500.0);
  EXPECT_DOUBLE_EQ(Duration::minutes(2.0).to_ms(), 120'000.0);
  EXPECT_DOUBLE_EQ(Duration::micros(1500.0).to_ms(), 1.5);
  EXPECT_DOUBLE_EQ(Duration::zero().to_ms(), 0.0);
}

TEST(DurationTest, Arithmetic) {
  const Duration a = Duration::ms(100);
  const Duration b = Duration::ms(40);
  EXPECT_DOUBLE_EQ((a + b).to_ms(), 140.0);
  EXPECT_DOUBLE_EQ((a - b).to_ms(), 60.0);
  EXPECT_DOUBLE_EQ((a * 2.5).to_ms(), 250.0);
  EXPECT_DOUBLE_EQ((2.0 * b).to_ms(), 80.0);
  EXPECT_DOUBLE_EQ((a / 4.0).to_ms(), 25.0);
  EXPECT_DOUBLE_EQ(a / b, 2.5);
  EXPECT_LT(b, a);
  Duration c = a;
  c += b;
  EXPECT_DOUBLE_EQ(c.to_ms(), 140.0);
  c -= a;
  EXPECT_DOUBLE_EQ(c.to_ms(), 40.0);
}

TEST(TimePointTest, PointsAndDurations) {
  const TimePoint t0 = TimePoint::at_ms(1000);
  const TimePoint t1 = t0 + Duration::ms(500);
  EXPECT_DOUBLE_EQ(t1.to_ms(), 1500.0);
  EXPECT_DOUBLE_EQ((t1 - t0).to_ms(), 500.0);
  EXPECT_DOUBLE_EQ((t1 - Duration::ms(250)).to_ms(), 1250.0);
  EXPECT_LT(t0, t1);
  EXPECT_EQ(TimePoint::origin().to_ms(), 0.0);
}

TEST(ContractTest, ExpectsThrowsWithContext) {
  try {
    XAR_EXPECTS(1 == 2);
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("precondition"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
  }
}

TEST(ContractTest, EnsuresAndAssertDistinguishKinds) {
  EXPECT_THROW(XAR_ENSURES(false), ContractViolation);
  EXPECT_THROW(XAR_ASSERT(false), ContractViolation);
  EXPECT_NO_THROW(XAR_EXPECTS(true));
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1'000'000), b.uniform_int(0, 1'000'000));
  }
}

TEST(RngTest, UniformIntRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(11);
  Rng child = parent.fork();
  // Child stream differs from the parent's continuation.
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) {
    if (parent.uniform_int(0, 1 << 30) != child.uniform_int(0, 1 << 30)) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(StatsTest, MeanVarianceMinMax) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StatsTest, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(StatsTest, EmptyThrows) {
  RunningStats s;
  EXPECT_THROW(s.mean(), ContractViolation);
  EXPECT_THROW(s.min(), ContractViolation);
}

TEST(TableTest, RendersAlignedColumns) {
  TextTable t("Demo");
  t.set_header({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("== Demo =="), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 22    |"), std::string::npos);
}

TEST(TableTest, CsvEscapesCommasAndQuotes) {
  TextTable t("csv");
  t.set_header({"a", "b"});
  t.add_row({"x,y", "he said \"hi\""});
  const std::string csv = t.render_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(TableTest, RowWidthMustMatchHeader) {
  TextTable t("bad");
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(TableTest, NumFormatsFixedPrecision) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

TEST(LogTest, LevelFilteringAndSink) {
  std::vector<std::string> lines;
  Logger log(LogLevel::kInfo, [&lines](LogLevel, std::string_view msg) {
    lines.emplace_back(msg);
  });
  log.debug("hidden ", 1);
  log.info("shown ", 2);
  log.warn("also shown ", 3.5);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "shown 2");
  EXPECT_EQ(lines[1], "also shown 3.5");
}

TEST(LogTest, LazyArgumentsEvaluateOnlyWhenEnabled) {
  std::vector<std::string> lines;
  Logger log(LogLevel::kInfo, [&lines](LogLevel, std::string_view msg) {
    lines.emplace_back(msg);
  });
  int expensive_calls = 0;
  const auto expensive = [&expensive_calls] {
    ++expensive_calls;
    return std::string("rendered");
  };
  log.debug("hidden ", expensive);  // below threshold: never invoked
  EXPECT_EQ(expensive_calls, 0);
  log.info("shown ", expensive);
  EXPECT_EQ(expensive_calls, 1);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "shown rendered");
}

TEST(LogTest, FixedBufferTruncatesOverlongMessages) {
  std::string line;
  Logger log(LogLevel::kInfo, [&line](LogLevel, std::string_view msg) {
    line = std::string(msg);
  });
  const std::string big(2000, 'x');
  log.info("head ", big);
  EXPECT_EQ(line.size(), LogBuffer::kCapacity);
  EXPECT_EQ(line.substr(0, 5), "head ");
  EXPECT_EQ(line.substr(line.size() - 3), "...");
}

TEST(LogTest, FormatsMixedArgumentTypes) {
  std::string line;
  Logger log(LogLevel::kTrace, [&line](LogLevel, std::string_view msg) {
    line = std::string(msg);
  });
  const std::string name = "facedet320";
  log.trace("app=", name, " load=", 17, " ok=", true, " ms=", 2.25,
            " u64=", std::uint64_t{1} << 40);
  EXPECT_EQ(line, "app=facedet320 load=17 ok=true ms=2.25 u64=1099511627776");
}

TEST(LogTest, DefaultLoggerDropsEverything) {
  Logger log;
  EXPECT_FALSE(log.enabled(LogLevel::kWarn));
  log.warn("no sink, no crash");
}

}  // namespace
}  // namespace xartrek
