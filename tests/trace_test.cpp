// Tests for the experiment trace recorder.
#include <gtest/gtest.h>

#include "exp/trace.hpp"
#include "hw/cpu_cluster.hpp"
#include "sim/simulation.hpp"

namespace xartrek::exp {
namespace {

TEST(TraceTest, SamplesProbesPeriodically) {
  sim::Simulation sim;
  int value = 0;
  TraceRecorder trace(sim, Duration::ms(10));
  trace.add_probe("v", [&value] { return static_cast<double>(value); });
  sim.schedule_at(TimePoint::at_ms(15), [&value] { value = 7; });
  sim.run_until(TimePoint::at_ms(45));

  ASSERT_EQ(trace.sample_count(), 4u);  // t=10,20,30,40
  const auto& s = trace.series("v");
  EXPECT_DOUBLE_EQ(s.values[0], 0.0);
  EXPECT_DOUBLE_EQ(s.values[1], 7.0);
  EXPECT_DOUBLE_EQ(s.values[3], 7.0);
  EXPECT_DOUBLE_EQ(trace.timestamps()[2].to_ms(), 30.0);
}

TEST(TraceTest, SummaryAndCsv) {
  sim::Simulation sim;
  double v = 0.0;
  TraceRecorder trace(sim, Duration::ms(1));
  trace.add_probe("ramp", [&v] { return v++; });
  trace.add_probe("flat", [] { return 5.0; });
  sim.run_until(TimePoint::at_ms(4));

  const auto ramp = trace.summarize("ramp");
  EXPECT_DOUBLE_EQ(ramp.min, 0.0);
  EXPECT_DOUBLE_EQ(ramp.max, 3.0);
  EXPECT_DOUBLE_EQ(ramp.mean, 1.5);

  const std::string csv = trace.to_csv();
  EXPECT_NE(csv.find("time_ms,ramp,flat"), std::string::npos);
  EXPECT_NE(csv.find("1,0,5"), std::string::npos);
  EXPECT_NE(csv.find("4,3,5"), std::string::npos);
}

TEST(TraceTest, UnknownSeriesThrows) {
  sim::Simulation sim;
  TraceRecorder trace(sim, Duration::ms(1));
  EXPECT_THROW((void)trace.series("nope"), Error);
}

TEST(TraceTest, TracksClusterLoad) {
  sim::Simulation sim;
  hw::CpuCluster x86(sim, hw::xeon_bronze_3104());
  TraceRecorder trace(sim, Duration::ms(5));
  trace.add_probe("load",
                  [&x86] { return static_cast<double>(x86.load()); });
  sim.schedule_at(TimePoint::at_ms(7), [&x86] {
    for (int i = 0; i < 12; ++i) x86.attach_process();
  });
  sim.schedule_at(TimePoint::at_ms(22), [&x86] {
    for (int i = 0; i < 12; ++i) x86.detach_process();
  });
  sim.run_until(TimePoint::at_ms(30));
  const auto summary = trace.summarize("load");
  EXPECT_DOUBLE_EQ(summary.min, 0.0);
  EXPECT_DOUBLE_EQ(summary.max, 12.0);
}

}  // namespace
}  // namespace xartrek::exp
