// Unit and property tests for the discrete-event core.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "sim/fifo_station.hpp"
#include "sim/ps_resource.hpp"
#include "sim/simulation.hpp"

namespace xartrek::sim {
namespace {

TEST(SimulationTest, ExecutesInTimestampOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(TimePoint::at_ms(30), [&] { order.push_back(3); });
  sim.schedule_at(TimePoint::at_ms(10), [&] { order.push_back(1); });
  sim.schedule_at(TimePoint::at_ms(20), [&] { order.push_back(2); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now().to_ms(), 30.0);
}

TEST(SimulationTest, FifoAmongSameTimeEvents) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(TimePoint::at_ms(5), [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulationTest, CancelPreventsExecution) {
  Simulation sim;
  bool fired = false;
  auto handle = sim.schedule_in(Duration::ms(5), [&] { fired = true; });
  EXPECT_TRUE(handle.pending());
  handle.cancel();
  EXPECT_FALSE(handle.pending());
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(SimulationTest, HandleInertAfterFiring) {
  Simulation sim;
  auto handle = sim.schedule_in(Duration::ms(1), [] {});
  sim.run();
  EXPECT_FALSE(handle.pending());
  handle.cancel();  // no-op, no crash
}

TEST(SimulationTest, EventsCanScheduleEvents) {
  Simulation sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) sim.schedule_in(Duration::ms(1), recurse);
  };
  sim.schedule_in(Duration::ms(1), recurse);
  sim.run();
  EXPECT_EQ(depth, 10);
  EXPECT_DOUBLE_EQ(sim.now().to_ms(), 10.0);
}

TEST(SimulationTest, RunUntilStopsAtHorizonAndAdvancesClock) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(TimePoint::at_ms(10), [&] { ++fired; });
  sim.schedule_at(TimePoint::at_ms(50), [&] { ++fired; });
  EXPECT_EQ(sim.run_until(TimePoint::at_ms(20)), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now().to_ms(), 20.0);
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_EQ(fired, 2);
}

TEST(SimulationTest, StepOneExecutesSingleEvent) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(TimePoint::at_ms(1), [&] { ++fired; });
  sim.schedule_at(TimePoint::at_ms(2), [&] { ++fired; });
  EXPECT_TRUE(sim.step_one(TimePoint::at_ms(100)));
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step_one(TimePoint::at_ms(100)));
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.step_one(TimePoint::at_ms(100)));
}

TEST(SimulationTest, SchedulingInThePastThrows) {
  Simulation sim;
  sim.schedule_at(TimePoint::at_ms(10), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(TimePoint::at_ms(5), [] {}),
               ContractViolation);
}

// --- event-pool semantics ---------------------------------------------------

TEST(SimulationTest, NegativeZeroTimestampOrdersAsZero) {
  // -0.0 passes the t >= now() precondition; the heap key must
  // canonicalize it or its sign bit would order after every positive
  // timestamp.
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(TimePoint::at_ms(5), [&] { order.push_back(2); });
  sim.schedule_at(TimePoint::at_ms(-0.0), [&] { order.push_back(1); });
  EXPECT_EQ(sim.run(), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_DOUBLE_EQ(sim.now().to_ms(), 5.0);
}

TEST(SimulationTest, CancelAfterFireIsNoOp) {
  Simulation sim;
  int fired = 0;
  auto handle = sim.schedule_in(Duration::ms(1), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  handle.cancel();  // must not throw or disturb anything
  handle.cancel();  // idempotent
  EXPECT_FALSE(handle.pending());
  // The engine keeps working normally afterwards.
  sim.schedule_in(Duration::ms(1), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulationTest, StaleHandleCannotCancelRecycledSlot) {
  Simulation sim;
  // Fire one event so its pool slot returns to the free list...
  auto stale = sim.schedule_in(Duration::ms(1), [] {});
  sim.run();
  EXPECT_FALSE(stale.pending());
  // ...then schedule a new event, which recycles that slot with a fresh
  // generation.  The stale handle must not be able to touch it.
  bool fired = false;
  auto fresh = sim.schedule_in(Duration::ms(1), [&] { fired = true; });
  stale.cancel();
  EXPECT_TRUE(fresh.pending());
  sim.run();
  EXPECT_TRUE(fired);
}

TEST(SimulationTest, StaleHandleSurvivesManyRecycles) {
  Simulation sim;
  auto stale = sim.schedule_in(Duration::ms(1), [] {});
  sim.run();
  int fired = 0;
  std::vector<Simulation::EventHandle> handles;
  for (int i = 0; i < 100; ++i) {
    handles.push_back(sim.schedule_in(Duration::ms(1), [&] { ++fired; }));
  }
  stale.cancel();  // aims at a long-recycled generation
  for (const auto& h : handles) EXPECT_TRUE(h.pending());
  sim.run();
  EXPECT_EQ(fired, 100);
}

TEST(SimulationTest, CancellingAnyCopyCancelsTheEvent) {
  Simulation sim;
  bool fired = false;
  auto a = sim.schedule_in(Duration::ms(5), [&] { fired = true; });
  auto b = a;  // copy
  b.cancel();
  EXPECT_FALSE(a.pending());
  EXPECT_FALSE(b.pending());
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(SimulationTest, HandleOutlivesSimulation) {
  Simulation::EventHandle handle;
  {
    Simulation sim;
    handle = sim.schedule_in(Duration::ms(5), [] {});
    EXPECT_TRUE(handle.pending());
  }
  EXPECT_FALSE(handle.pending());
  handle.cancel();  // must be a safe no-op after the simulation died
}

TEST(SimulationTest, CancelDuringCallbackOfOtherEvent) {
  Simulation sim;
  bool second_fired = false;
  auto second =
      sim.schedule_at(TimePoint::at_ms(10), [&] { second_fired = true; });
  sim.schedule_at(TimePoint::at_ms(5), [&] { second.cancel(); });
  sim.run();
  EXPECT_FALSE(second_fired);
  EXPECT_EQ(sim.executed_events(), 1u);
}

TEST(SimulationTest, QueuedEventsCountsHusksUntilReaped) {
  Simulation sim;
  auto a = sim.schedule_at(TimePoint::at_ms(1), [] {});
  sim.schedule_at(TimePoint::at_ms(2), [] {});
  EXPECT_EQ(sim.queued_events(), 2u);
  a.cancel();
  EXPECT_EQ(sim.queued_events(), 2u);  // husk not yet reaped
  sim.run();
  EXPECT_EQ(sim.queued_events(), 0u);
  EXPECT_EQ(sim.executed_events(), 1u);
}

// Property: FIFO tie-break order matches the pre-refactor engine's
// contract -- events execute in (time, insertion order), regardless of
// interleaved cancellations.  A straightforward model (stable sort by
// time over live events) predicts the exact order.
TEST(SimulationTest, RandomizedOrderMatchesModelWithCancellations) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    Simulation sim;
    std::vector<int> order;
    struct Scheduled {
      double at_ms;
      int id;
      bool cancelled;
      Simulation::EventHandle handle;
    };
    std::vector<Scheduled> scheduled;
    scheduled.reserve(400);
    for (int id = 0; id < 400; ++id) {
      // Few distinct timestamps => plenty of same-time ties.
      const double at = static_cast<double>(rng.uniform_int(0, 19));
      auto handle =
          sim.schedule_at(TimePoint::at_ms(at), [&order, id] {
            order.push_back(id);
          });
      scheduled.push_back(Scheduled{at, id, false, std::move(handle)});
    }
    for (auto& s : scheduled) {
      if (rng.bernoulli(0.3)) {
        s.cancelled = true;
        s.handle.cancel();
      }
    }
    sim.run();

    std::vector<int> expected;
    std::vector<Scheduled*> live;
    for (auto& s : scheduled) {
      if (!s.cancelled) live.push_back(&s);
    }
    std::stable_sort(live.begin(), live.end(),
                     [](const Scheduled* a, const Scheduled* b) {
                       return a->at_ms < b->at_ms;
                     });
    for (const auto* s : live) expected.push_back(s->id);
    EXPECT_EQ(order, expected) << "seed " << seed;
  }
}

// Property: events scheduled from inside callbacks (the dominant
// steady-state pattern, which exercises slot recycling and the deferred
// root replacement) still execute in global (time, seq) order.
TEST(SimulationTest, SelfReschedulingChainsInterleaveDeterministically) {
  Simulation sim;
  std::vector<std::pair<double, int>> trace;
  struct Chain {
    Simulation& sim;
    std::vector<std::pair<double, int>>& trace;
    int id;
    double period;
    int remaining;
    void fire() {
      trace.emplace_back(sim.now().to_ms(), id);
      if (remaining-- > 0) {
        sim.schedule_in(Duration::ms(period), [this] { fire(); });
      }
    }
  };
  std::vector<std::unique_ptr<Chain>> chains;
  for (int id = 0; id < 4; ++id) {
    chains.push_back(std::make_unique<Chain>(
        Chain{sim, trace, id, 1.0 + id * 0.5, 50}));
    Chain* c = chains.back().get();
    sim.schedule_in(Duration::ms(c->period), [c] { c->fire(); });
  }
  sim.run();
  ASSERT_EQ(trace.size(), 4u * 51u);
  // Timestamps never regress, and ties keep insertion order: a chain
  // with the smaller id scheduled its event first within equal times
  // only if it scheduled earlier -- verify monotone time throughout.
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i].first, trace[i - 1].first);
  }
}

// --- Processor sharing ------------------------------------------------

TEST(PsResourceTest, SingleJobRunsAtFullRate) {
  Simulation sim;
  PsResource cpu(sim, {"cpu", 6.0, 1.0});
  TimePoint done;
  cpu.submit(100.0, [&] { done = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(done.to_ms(), 100.0);  // per-job cap 1 unit/ms
}

TEST(PsResourceTest, UpToCapacityJobsUnaffected) {
  Simulation sim;
  PsResource cpu(sim, {"cpu", 6.0, 1.0});
  std::vector<double> completions;
  for (int i = 0; i < 6; ++i) {
    cpu.submit(100.0, [&] { completions.push_back(sim.now().to_ms()); });
  }
  sim.run();
  ASSERT_EQ(completions.size(), 6u);
  for (double t : completions) EXPECT_DOUBLE_EQ(t, 100.0);
}

// Property: n identical jobs on c cores finish at demand * max(1, n/c).
class PsSlowdownTest : public ::testing::TestWithParam<int> {};

TEST_P(PsSlowdownTest, ContentionScalesCompletionTime) {
  const int n = GetParam();
  constexpr double kCores = 6.0;
  constexpr double kDemand = 60.0;
  Simulation sim;
  PsResource cpu(sim, {"cpu", kCores, 1.0});
  std::vector<double> completions;
  for (int i = 0; i < n; ++i) {
    cpu.submit(kDemand, [&] { completions.push_back(sim.now().to_ms()); });
  }
  sim.run();
  ASSERT_EQ(completions.size(), static_cast<std::size_t>(n));
  const double expected =
      kDemand * std::max(1.0, static_cast<double>(n) / kCores);
  for (double t : completions) EXPECT_NEAR(t, expected, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(LoadSweep, PsSlowdownTest,
                         ::testing::Values(1, 2, 3, 6, 7, 12, 24, 60, 120));

TEST(PsResourceTest, StaggeredArrivalsShareFairly) {
  // Job A (demand 100) alone for 50ms, then job B (demand 25) joins on a
  // single-core resource: A has 50 left, both run at 1/2.  B finishes at
  // t=100 (25 served in 50ms); A's remaining 25 then runs alone until
  // t=125.
  Simulation sim;
  PsResource cpu(sim, {"cpu", 1.0, 1.0});
  double a_done = 0;
  double b_done = 0;
  cpu.submit(100.0, [&] { a_done = sim.now().to_ms(); });
  sim.schedule_at(TimePoint::at_ms(50), [&] {
    cpu.submit(25.0, [&] { b_done = sim.now().to_ms(); });
  });
  sim.run();
  EXPECT_NEAR(b_done, 100.0, 1e-9);
  EXPECT_NEAR(a_done, 125.0, 1e-9);
}

TEST(PsResourceTest, CancelRemovesJob) {
  Simulation sim;
  PsResource cpu(sim, {"cpu", 1.0, 1.0});
  bool a_fired = false;
  bool b_fired = false;
  auto a = cpu.submit(100.0, [&] { a_fired = true; });
  cpu.submit(100.0, [&] { b_fired = true; });
  sim.schedule_at(TimePoint::at_ms(10), [&] { EXPECT_TRUE(cpu.cancel(a)); });
  sim.run();
  EXPECT_FALSE(a_fired);
  EXPECT_TRUE(b_fired);
  // B: 10ms at rate 1/2 (5 served) + 95 remaining alone -> 105 total.
  EXPECT_DOUBLE_EQ(sim.now().to_ms(), 105.0);
}

TEST(PsResourceTest, CancelUnknownJobReturnsFalse) {
  Simulation sim;
  PsResource cpu(sim, {"cpu", 1.0, 1.0});
  EXPECT_FALSE(cpu.cancel(12345));
}

TEST(PsResourceTest, ZeroDemandCompletesImmediately) {
  Simulation sim;
  PsResource cpu(sim, {"cpu", 1.0, 1.0});
  bool fired = false;
  cpu.submit(0.0, [&] { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_DOUBLE_EQ(sim.now().to_ms(), 0.0);
}

TEST(PsResourceTest, WorkConservation) {
  Simulation sim;
  PsResource cpu(sim, {"cpu", 4.0, 1.0});
  double total_demand = 0.0;
  for (int i = 1; i <= 20; ++i) {
    const double demand = 7.0 * i;
    total_demand += demand;
    cpu.submit(demand, [] {});
  }
  sim.run();
  EXPECT_NEAR(cpu.delivered_work(), total_demand, 1e-6);
}

TEST(PsResourceTest, CompletionCallbackCanResubmit) {
  Simulation sim;
  PsResource cpu(sim, {"cpu", 1.0, 1.0});
  int rounds = 0;
  std::function<void()> loop = [&] {
    if (++rounds < 5) cpu.submit(10.0, loop);
  };
  cpu.submit(10.0, loop);
  sim.run();
  EXPECT_EQ(rounds, 5);
  EXPECT_DOUBLE_EQ(sim.now().to_ms(), 50.0);
}

TEST(PsResourceTest, RemainingDemandTracksService) {
  Simulation sim;
  PsResource cpu(sim, {"cpu", 1.0, 1.0});
  auto id = cpu.submit(100.0, [] {});
  sim.schedule_at(TimePoint::at_ms(40), [&] {
    EXPECT_NEAR(cpu.remaining_demand(id), 60.0, 1e-9);
  });
  sim.run();
}

TEST(PsResourceTest, PerJobCapLimitsLinkHogging) {
  // A channel with capacity 10 and per-job cap 10: one transfer uses the
  // whole link; two share it.
  Simulation sim;
  PsResource link(sim, {"link", 10.0, 10.0});
  double first_done = 0;
  link.submit(100.0, [&] { first_done = sim.now().to_ms(); });
  sim.run();
  EXPECT_DOUBLE_EQ(first_done, 10.0);
}

// --- FIFO station ------------------------------------------------------

TEST(FifoStationTest, ServesInOrder) {
  Simulation sim;
  FifoStation cu(sim, "cu");
  std::vector<int> order;
  cu.enqueue(Duration::ms(10), [&] { order.push_back(1); });
  cu.enqueue(Duration::ms(5), [&] { order.push_back(2); });
  cu.enqueue(Duration::ms(1), [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now().to_ms(), 16.0);
  EXPECT_EQ(cu.completed(), 3u);
}

TEST(FifoStationTest, QueueLengthAndBusy) {
  Simulation sim;
  FifoStation cu(sim, "cu");
  cu.enqueue(Duration::ms(10), [] {});
  cu.enqueue(Duration::ms(10), [] {});
  cu.enqueue(Duration::ms(10), [] {});
  EXPECT_TRUE(cu.busy());
  EXPECT_EQ(cu.queue_length(), 2u);
  sim.run();
  EXPECT_FALSE(cu.busy());
  EXPECT_EQ(cu.queue_length(), 0u);
}

TEST(FifoStationTest, BusyTimeAccumulates) {
  Simulation sim;
  FifoStation cu(sim, "cu");
  cu.enqueue(Duration::ms(10), [] {});
  sim.run();
  sim.schedule_in(Duration::ms(100), [&] {
    cu.enqueue(Duration::ms(5), [] {});
  });
  sim.run();
  EXPECT_DOUBLE_EQ(cu.busy_time().to_ms(), 15.0);
}

TEST(FifoStationTest, CallbackCanReEnqueue) {
  Simulation sim;
  FifoStation cu(sim, "cu");
  int served = 0;
  std::function<void()> again = [&] {
    if (++served < 3) cu.enqueue(Duration::ms(2), again);
  };
  cu.enqueue(Duration::ms(2), again);
  sim.run();
  EXPECT_EQ(served, 3);
  EXPECT_DOUBLE_EQ(sim.now().to_ms(), 6.0);
}

}  // namespace
}  // namespace xartrek::sim
