// Unit and property tests for the discrete-event core.
#include <gtest/gtest.h>

#include <vector>

#include "sim/fifo_station.hpp"
#include "sim/ps_resource.hpp"
#include "sim/simulation.hpp"

namespace xartrek::sim {
namespace {

TEST(SimulationTest, ExecutesInTimestampOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(TimePoint::at_ms(30), [&] { order.push_back(3); });
  sim.schedule_at(TimePoint::at_ms(10), [&] { order.push_back(1); });
  sim.schedule_at(TimePoint::at_ms(20), [&] { order.push_back(2); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now().to_ms(), 30.0);
}

TEST(SimulationTest, FifoAmongSameTimeEvents) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(TimePoint::at_ms(5), [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulationTest, CancelPreventsExecution) {
  Simulation sim;
  bool fired = false;
  auto handle = sim.schedule_in(Duration::ms(5), [&] { fired = true; });
  EXPECT_TRUE(handle.pending());
  handle.cancel();
  EXPECT_FALSE(handle.pending());
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(SimulationTest, HandleInertAfterFiring) {
  Simulation sim;
  auto handle = sim.schedule_in(Duration::ms(1), [] {});
  sim.run();
  EXPECT_FALSE(handle.pending());
  handle.cancel();  // no-op, no crash
}

TEST(SimulationTest, EventsCanScheduleEvents) {
  Simulation sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) sim.schedule_in(Duration::ms(1), recurse);
  };
  sim.schedule_in(Duration::ms(1), recurse);
  sim.run();
  EXPECT_EQ(depth, 10);
  EXPECT_DOUBLE_EQ(sim.now().to_ms(), 10.0);
}

TEST(SimulationTest, RunUntilStopsAtHorizonAndAdvancesClock) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(TimePoint::at_ms(10), [&] { ++fired; });
  sim.schedule_at(TimePoint::at_ms(50), [&] { ++fired; });
  EXPECT_EQ(sim.run_until(TimePoint::at_ms(20)), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now().to_ms(), 20.0);
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_EQ(fired, 2);
}

TEST(SimulationTest, StepOneExecutesSingleEvent) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(TimePoint::at_ms(1), [&] { ++fired; });
  sim.schedule_at(TimePoint::at_ms(2), [&] { ++fired; });
  EXPECT_TRUE(sim.step_one(TimePoint::at_ms(100)));
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step_one(TimePoint::at_ms(100)));
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.step_one(TimePoint::at_ms(100)));
}

TEST(SimulationTest, SchedulingInThePastThrows) {
  Simulation sim;
  sim.schedule_at(TimePoint::at_ms(10), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(TimePoint::at_ms(5), [] {}),
               ContractViolation);
}

// --- Processor sharing ------------------------------------------------

TEST(PsResourceTest, SingleJobRunsAtFullRate) {
  Simulation sim;
  PsResource cpu(sim, {"cpu", 6.0, 1.0});
  TimePoint done;
  cpu.submit(100.0, [&] { done = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(done.to_ms(), 100.0);  // per-job cap 1 unit/ms
}

TEST(PsResourceTest, UpToCapacityJobsUnaffected) {
  Simulation sim;
  PsResource cpu(sim, {"cpu", 6.0, 1.0});
  std::vector<double> completions;
  for (int i = 0; i < 6; ++i) {
    cpu.submit(100.0, [&] { completions.push_back(sim.now().to_ms()); });
  }
  sim.run();
  ASSERT_EQ(completions.size(), 6u);
  for (double t : completions) EXPECT_DOUBLE_EQ(t, 100.0);
}

// Property: n identical jobs on c cores finish at demand * max(1, n/c).
class PsSlowdownTest : public ::testing::TestWithParam<int> {};

TEST_P(PsSlowdownTest, ContentionScalesCompletionTime) {
  const int n = GetParam();
  constexpr double kCores = 6.0;
  constexpr double kDemand = 60.0;
  Simulation sim;
  PsResource cpu(sim, {"cpu", kCores, 1.0});
  std::vector<double> completions;
  for (int i = 0; i < n; ++i) {
    cpu.submit(kDemand, [&] { completions.push_back(sim.now().to_ms()); });
  }
  sim.run();
  ASSERT_EQ(completions.size(), static_cast<std::size_t>(n));
  const double expected =
      kDemand * std::max(1.0, static_cast<double>(n) / kCores);
  for (double t : completions) EXPECT_NEAR(t, expected, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(LoadSweep, PsSlowdownTest,
                         ::testing::Values(1, 2, 3, 6, 7, 12, 24, 60, 120));

TEST(PsResourceTest, StaggeredArrivalsShareFairly) {
  // Job A (demand 100) alone for 50ms, then job B (demand 25) joins on a
  // single-core resource: A has 50 left, both run at 1/2.  B finishes at
  // t=100 (25 served in 50ms); A's remaining 25 then runs alone until
  // t=125.
  Simulation sim;
  PsResource cpu(sim, {"cpu", 1.0, 1.0});
  double a_done = 0;
  double b_done = 0;
  cpu.submit(100.0, [&] { a_done = sim.now().to_ms(); });
  sim.schedule_at(TimePoint::at_ms(50), [&] {
    cpu.submit(25.0, [&] { b_done = sim.now().to_ms(); });
  });
  sim.run();
  EXPECT_NEAR(b_done, 100.0, 1e-9);
  EXPECT_NEAR(a_done, 125.0, 1e-9);
}

TEST(PsResourceTest, CancelRemovesJob) {
  Simulation sim;
  PsResource cpu(sim, {"cpu", 1.0, 1.0});
  bool a_fired = false;
  bool b_fired = false;
  auto a = cpu.submit(100.0, [&] { a_fired = true; });
  cpu.submit(100.0, [&] { b_fired = true; });
  sim.schedule_at(TimePoint::at_ms(10), [&] { EXPECT_TRUE(cpu.cancel(a)); });
  sim.run();
  EXPECT_FALSE(a_fired);
  EXPECT_TRUE(b_fired);
  // B: 10ms at rate 1/2 (5 served) + 95 remaining alone -> 105 total.
  EXPECT_DOUBLE_EQ(sim.now().to_ms(), 105.0);
}

TEST(PsResourceTest, CancelUnknownJobReturnsFalse) {
  Simulation sim;
  PsResource cpu(sim, {"cpu", 1.0, 1.0});
  EXPECT_FALSE(cpu.cancel(12345));
}

TEST(PsResourceTest, ZeroDemandCompletesImmediately) {
  Simulation sim;
  PsResource cpu(sim, {"cpu", 1.0, 1.0});
  bool fired = false;
  cpu.submit(0.0, [&] { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_DOUBLE_EQ(sim.now().to_ms(), 0.0);
}

TEST(PsResourceTest, WorkConservation) {
  Simulation sim;
  PsResource cpu(sim, {"cpu", 4.0, 1.0});
  double total_demand = 0.0;
  for (int i = 1; i <= 20; ++i) {
    const double demand = 7.0 * i;
    total_demand += demand;
    cpu.submit(demand, [] {});
  }
  sim.run();
  EXPECT_NEAR(cpu.delivered_work(), total_demand, 1e-6);
}

TEST(PsResourceTest, CompletionCallbackCanResubmit) {
  Simulation sim;
  PsResource cpu(sim, {"cpu", 1.0, 1.0});
  int rounds = 0;
  std::function<void()> loop = [&] {
    if (++rounds < 5) cpu.submit(10.0, loop);
  };
  cpu.submit(10.0, loop);
  sim.run();
  EXPECT_EQ(rounds, 5);
  EXPECT_DOUBLE_EQ(sim.now().to_ms(), 50.0);
}

TEST(PsResourceTest, RemainingDemandTracksService) {
  Simulation sim;
  PsResource cpu(sim, {"cpu", 1.0, 1.0});
  auto id = cpu.submit(100.0, [] {});
  sim.schedule_at(TimePoint::at_ms(40), [&] {
    EXPECT_NEAR(cpu.remaining_demand(id), 60.0, 1e-9);
  });
  sim.run();
}

TEST(PsResourceTest, PerJobCapLimitsLinkHogging) {
  // A channel with capacity 10 and per-job cap 10: one transfer uses the
  // whole link; two share it.
  Simulation sim;
  PsResource link(sim, {"link", 10.0, 10.0});
  double first_done = 0;
  link.submit(100.0, [&] { first_done = sim.now().to_ms(); });
  sim.run();
  EXPECT_DOUBLE_EQ(first_done, 10.0);
}

// --- FIFO station ------------------------------------------------------

TEST(FifoStationTest, ServesInOrder) {
  Simulation sim;
  FifoStation cu(sim, "cu");
  std::vector<int> order;
  cu.enqueue(Duration::ms(10), [&] { order.push_back(1); });
  cu.enqueue(Duration::ms(5), [&] { order.push_back(2); });
  cu.enqueue(Duration::ms(1), [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now().to_ms(), 16.0);
  EXPECT_EQ(cu.completed(), 3u);
}

TEST(FifoStationTest, QueueLengthAndBusy) {
  Simulation sim;
  FifoStation cu(sim, "cu");
  cu.enqueue(Duration::ms(10), [] {});
  cu.enqueue(Duration::ms(10), [] {});
  cu.enqueue(Duration::ms(10), [] {});
  EXPECT_TRUE(cu.busy());
  EXPECT_EQ(cu.queue_length(), 2u);
  sim.run();
  EXPECT_FALSE(cu.busy());
  EXPECT_EQ(cu.queue_length(), 0u);
}

TEST(FifoStationTest, BusyTimeAccumulates) {
  Simulation sim;
  FifoStation cu(sim, "cu");
  cu.enqueue(Duration::ms(10), [] {});
  sim.run();
  sim.schedule_in(Duration::ms(100), [&] {
    cu.enqueue(Duration::ms(5), [] {});
  });
  sim.run();
  EXPECT_DOUBLE_EQ(cu.busy_time().to_ms(), 15.0);
}

TEST(FifoStationTest, CallbackCanReEnqueue) {
  Simulation sim;
  FifoStation cu(sim, "cu");
  int served = 0;
  std::function<void()> again = [&] {
    if (++served < 3) cu.enqueue(Duration::ms(2), again);
  };
  cu.enqueue(Duration::ms(2), again);
  sim.run();
  EXPECT_EQ(served, 3);
  EXPECT_DOUBLE_EQ(sim.now().to_ms(), 6.0);
}

}  // namespace
}  // namespace xartrek::sim
