// Edge-case and contention tests across the stack: links under
// contention, zero-cost operations, stack migration, 3-node DSM,
// single-ISA builds, multi-function instrumentation, the decision
// explainer, and the periodic load controller.
#include <gtest/gtest.h>

#include "apps/benchmark_spec.hpp"
#include "compiler/instrumenter.hpp"
#include "compiler/multi_isa_builder.hpp"
#include "exp/experiment.hpp"
#include "exp/figures.hpp"
#include "exp/threshold_estimator.hpp"
#include "exp/trace.hpp"
#include "hw/link.hpp"
#include "popcorn/dsm.hpp"
#include "popcorn/migration_runtime.hpp"
#include "runtime/migration_executor.hpp"
#include "runtime/scheduler_server.hpp"
#include "sim/fifo_station.hpp"

namespace xartrek {
namespace {

TEST(LinkEdgeTest, ZeroByteTransferPaysOnlyLatency) {
  sim::Simulation sim;
  hw::Link eth(sim, hw::ethernet_1gbps());
  double done = -1;
  eth.transfer(0, [&] { done = sim.now().to_ms(); });
  sim.run();
  EXPECT_NEAR(done, 0.12, 1e-9);  // the fixed latency only
}

TEST(FifoEdgeTest, ZeroServiceRequestCompletesInstantly) {
  sim::Simulation sim;
  sim::FifoStation cu(sim, "cu");
  bool done = false;
  cu.enqueue(Duration::zero(), [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(sim.now().to_ms(), 0.0);
}

TEST(ExecutorContentionTest, ConcurrentArmMigrationsShareEthernet) {
  // Two simultaneous ARM migrations halve each other's wire bandwidth;
  // both finish later than a lone migration would.
  platform::Testbed testbed;
  runtime::MigrationExecutor executor(testbed);
  runtime::FunctionCosts costs;
  costs.arm_ms = Duration::ms(100);
  costs.migrate_bytes = 4 << 20;  // 4 MiB -> 32 ms alone
  costs.return_bytes = 0;
  costs.transform_ms = Duration::zero();

  auto run_n = [&](int n) {
    platform::Testbed tb;
    runtime::MigrationExecutor ex(tb);
    std::vector<double> done;
    for (int i = 0; i < n; ++i) {
      ex.execute(runtime::Target::kArm, costs,
                 [&done](Duration d) { done.push_back(d.to_ms()); });
    }
    while (static_cast<int>(done.size()) < n &&
           tb.simulation().step_one(TimePoint::at_ms(1e9))) {
    }
    return done.back();
  };
  const double lone = run_n(1);
  const double paired = run_n(2);
  EXPECT_GT(paired, lone + 20.0);  // the 32 ms payload became ~64 ms
}

TEST(MigrationRuntimeTest, StackMigrationMovesEveryFrame) {
  sim::Simulation sim;
  hw::Link eth(sim, hw::ethernet_1gbps());

  popcorn::MigrationMetadata md;
  for (int depth = 0; depth < 3; ++depth) {
    popcorn::CallSiteMetadata site;
    site.function = "f" + std::to_string(depth);
    site.site_id = 0;
    site.frame_size[isa::IsaKind::kX86_64] = 32;
    site.frame_size[isa::IsaKind::kAarch64] = 48;
    popcorn::LiveValue v;
    v.name = "v";
    v.type = popcorn::ValueType::kI64;
    v.location[isa::IsaKind::kX86_64] =
        popcorn::ValueLocation::on_stack(0);
    v.location[isa::IsaKind::kAarch64] =
        popcorn::ValueLocation::on_stack(8);
    site.live_values.push_back(v);
    md.add_site(std::move(site));
  }
  const popcorn::StateTransformer transformer(md);
  popcorn::MigrationRuntime runtime(sim, eth, transformer);

  popcorn::ThreadStack stack(isa::IsaKind::kX86_64);
  for (int depth = 0; depth < 3; ++depth) {
    popcorn::MachineState frame(isa::IsaKind::kX86_64,
                                "f" + std::to_string(depth), 0, 32);
    frame.write_stack(0, 8, static_cast<std::uint64_t>(100 + depth));
    stack.push_frame(std::move(frame));
  }

  bool arrived = false;
  runtime.migrate_stack(stack, isa::IsaKind::kAarch64, 1 << 20,
                        [&](popcorn::ThreadStack arm) {
                          arrived = true;
                          ASSERT_EQ(arm.depth(), 3u);
                          for (std::size_t d = 0; d < 3; ++d) {
                            EXPECT_EQ(arm.frames()[d].read_stack(8, 8),
                                      100 + d);
                            EXPECT_EQ(arm.frames()[d].frame_size(), 48u);
                          }
                        });
  sim.run();
  EXPECT_TRUE(arrived);
  EXPECT_EQ(runtime.migrations(), 1u);
}

TEST(DsmTest, ThreeNodeCoherence) {
  sim::Simulation sim;
  hw::Link eth(sim, hw::ethernet_1gbps());
  popcorn::Dsm dsm(sim, eth, popcorn::Dsm::Config{3, 64 * 1024, 4096});

  // Node 0 writes, nodes 1 and 2 read (page becomes Shared everywhere),
  // then node 2 writes (everyone else invalidated).
  dsm.write(0, 0, {std::byte{0x42}}, [] {});
  dsm.read(1, 0, 1, [](std::vector<std::byte> b) {
    EXPECT_EQ(b[0], std::byte{0x42});
  });
  dsm.read(2, 0, 1, [](std::vector<std::byte> b) {
    EXPECT_EQ(b[0], std::byte{0x42});
  });
  sim.run();
  dsm.check_invariants();
  EXPECT_EQ(dsm.page_state(1, 0), popcorn::PageState::kShared);
  EXPECT_EQ(dsm.page_state(2, 0), popcorn::PageState::kShared);

  dsm.write(2, 0, {std::byte{0x43}}, [] {});
  sim.run();
  dsm.check_invariants();
  EXPECT_EQ(dsm.page_state(2, 0), popcorn::PageState::kModified);
  EXPECT_EQ(dsm.page_state(0, 0), popcorn::PageState::kInvalid);
  EXPECT_EQ(dsm.page_state(1, 0), popcorn::PageState::kInvalid);
}

TEST(MultiIsaBuilderTest, SingleIsaBuildHasNoPadding) {
  compiler::MultiIsaBuildOptions opts;
  opts.targets = {isa::IsaKind::kX86_64};
  const compiler::MultiIsaBuilder builder(opts);
  const auto binary =
      builder.build(compiler::make_app_ir("demo", "hot", 400, 150));
  EXPECT_EQ(binary.layout().padding_bytes.at(isa::IsaKind::kX86_64), 0u);
}

TEST(InstrumenterTest, TwoSelectedFunctionsGetTwoStubs) {
  auto ir = compiler::make_app_ir("demo", "hot", 500, 150);
  // Add a second self-contained hot function, called from main.
  compiler::IrFunction hot2;
  hot2.name = "hot2";
  hot2.lines_of_code = 80;
  hot2.ops.int_ops = 640;
  hot2.num_locals = 6;
  ir.functions.push_back(hot2);
  ir.find_mutable("main")->call_sites.push_back({"hot2", 3});

  compiler::ApplicationProfile profile;
  profile.name = "demo";
  compiler::SelectedFunction f1;
  f1.function = "hot";
  f1.kernel_name = "K1";
  compiler::SelectedFunction f2;
  f2.function = "hot2";
  f2.kernel_name = "K2";
  profile.functions = {f1, f2};

  const compiler::Instrumenter pass;
  const auto out = pass.instrument(ir, profile);
  EXPECT_EQ(out.dispatch_stubs.size(), 2u);
  EXPECT_EQ(out.count(compiler::Insertion::Kind::kDispatchRewrite), 2u);
  // The scheduler hooks are inserted once, not per function.
  EXPECT_EQ(out.count(compiler::Insertion::Kind::kSchedulerClientInit), 1u);
  EXPECT_NE(out.ir.find("__xar_dispatch_hot2"), nullptr);
}

TEST(ExplainPlacementTest, NamesTheFiringBranch) {
  using runtime::explain_placement;
  EXPECT_NE(explain_placement(5, 31, 16, true).find("lines 19-21"),
            std::string::npos);
  EXPECT_NE(explain_placement(20, 31, 16, false).find("lines 9-13"),
            std::string::npos);
  EXPECT_NE(explain_placement(40, 31, 16, false).find("lines 14-18"),
            std::string::npos);
  EXPECT_NE(explain_placement(40, 31, 50, true).find("lines 22-24"),
            std::string::npos);
  EXPECT_NE(explain_placement(40, 31, 16, true).find("lines 25-31"),
            std::string::npos);
  EXPECT_NE(explain_placement(40, 16, 31, true).find("ARM is the faster"),
            std::string::npos);
}

TEST(ExplainPlacementTest, ExplanationMatchesDecision) {
  for (int load : {0, 10, 20, 40, 120}) {
    for (int arm : {0, 17, 31}) {
      for (int fpga : {0, 16, 31}) {
        for (bool kernel : {false, true}) {
          bool reconfig = false;
          const auto target =
              runtime::decide_placement(load, arm, fpga, kernel, reconfig);
          const auto text =
              runtime::explain_placement(load, arm, fpga, kernel);
          EXPECT_NE(text.find(to_string(target)), std::string::npos)
              << text;
        }
      }
    }
  }
}

TEST(PeriodicLoadTest, TriangularControllerActuallySwings) {
  // Drive the Figure-8 load controller standalone and verify the load
  // wave covers the configured range.
  const auto specs = apps::paper_benchmarks();
  exp::ExperimentOptions options;
  options.mode = apps::SystemMode::kVanillaX86;
  exp::Experiment exp(specs, runtime::ThresholdTable{}, options);
  exp::TraceRecorder trace(exp.simulation(), Duration::seconds(5));
  trace.add_probe("load", [&exp] {
    return static_cast<double>(exp.testbed().x86().load());
  });

  const double period_ms = Duration::minutes(2).to_ms();
  std::function<void()> adjust = [&] {
    const double phase =
        std::fmod(exp.simulation().now().to_ms(), period_ms) / period_ms;
    const double tri = phase < 0.5 ? 2.0 * phase : 2.0 * (1.0 - phase);
    exp.set_background_load(10 + static_cast<int>(tri * 110));
    exp.simulation().schedule_in(Duration::seconds(5), [&] { adjust(); });
  };
  adjust();
  exp.simulation().run_until(TimePoint::origin() + Duration::minutes(4));
  exp.set_background_load(0);

  const auto summary = trace.summarize("load");
  EXPECT_LE(summary.min, 15.0);
  EXPECT_GE(summary.max, 100.0);
}

TEST(ExperimentTest, WarmFpgaIsIdempotent) {
  const auto specs = apps::paper_benchmarks();
  exp::ExperimentOptions options;
  options.mode = apps::SystemMode::kXarTrek;
  exp::Experiment exp(specs, runtime::ThresholdTable{}, options);
  exp.warm_fpga_for("digit500");
  const auto reconfigs = exp.testbed().fpga().reconfigurations();
  exp.warm_fpga_for("digit500");  // already resident: no new download
  EXPECT_EQ(exp.testbed().fpga().reconfigurations(), reconfigs);
}

TEST(ServerOptionsTest, RequestOverheadDelaysDecision) {
  platform::Testbed testbed;
  runtime::ThresholdTable table;
  runtime::ThresholdEntry e;
  e.app = "a";
  e.kernel_name = "K";
  table.upsert(e);
  runtime::LoadMonitor monitor(testbed.simulation(), testbed.x86());
  runtime::SchedulerServer::Options opts;
  opts.request_overhead = Duration::ms(5);
  runtime::SchedulerServer server(testbed.simulation(), monitor,
                                  testbed.fpga(), table, {}, opts);
  double decided_at = -1;
  server.request_placement("a", [&](runtime::PlacementDecision) {
    decided_at = testbed.simulation().now().to_ms();
  });
  testbed.simulation().run_until(TimePoint::at_ms(100));
  EXPECT_NEAR(decided_at, 5.0, 1e-9);
}

}  // namespace
}  // namespace xartrek
