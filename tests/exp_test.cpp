// Tests for the experiment layer: the step-G threshold estimator
// (Table 2), load classification (Table 3), workload generation, and
// small end-to-end figure experiments.
#include <gtest/gtest.h>

#include <set>

#include "exp/experiment.hpp"
#include "exp/figures.hpp"
#include "exp/threshold_estimator.hpp"

namespace xartrek::exp {
namespace {

const runtime::ThresholdTable& shared_estimate_table() {
  static const EstimationResult result =
      ThresholdEstimator().estimate(apps::paper_benchmarks());
  return result.table;
}

const EstimationResult& shared_estimate() {
  static const EstimationResult result =
      ThresholdEstimator().estimate(apps::paper_benchmarks());
  return result;
}

TEST(ThresholdEstimatorTest, Table2Shape) {
  const auto& result = shared_estimate();
  ASSERT_EQ(result.rows.size(), 5u);

  auto row = [&](const std::string& app) -> const EstimationRow& {
    for (const auto& r : result.rows) {
      if (r.app == app) return r;
    }
    throw Error("missing row " + app);
  };

  // FPGA-favoured apps: threshold exactly 0 (paper Table 2 rows 3-5).
  EXPECT_EQ(row("facedet640").fpga_threshold, 0);
  EXPECT_EQ(row("digit500").fpga_threshold, 0);
  EXPECT_EQ(row("digit2000").fpga_threshold, 0);

  // CG-A: paper reports FPGA_THR 31, ARM_THR 25; the processor-sharing
  // model derives the crossing load from Table 1 isolation times
  // (10597/2182*6 ~ 29, 8406/2182*6 ~ 23) -- within a few processes.
  EXPECT_NEAR(row("cg_a").fpga_threshold, 31, 3);
  EXPECT_NEAR(row("cg_a").arm_threshold, 25, 3);

  // FaceDet320: paper 16/31; the derived crossings are 332/175*6 ~ 11
  // and 642/175*6 ~ 21 -- same ordering and regime, looser tolerance
  // (the paper's measured thresholds include effects our substrate
  // cannot see, e.g. frequency scaling).
  EXPECT_NEAR(row("facedet320").fpga_threshold, 16, 6);
  EXPECT_NEAR(row("facedet320").arm_threshold, 31, 10);

  // Digit ARM thresholds: paper 18/17, derived ~15.
  EXPECT_NEAR(row("digit500").arm_threshold, 18, 4);
  EXPECT_NEAR(row("digit2000").arm_threshold, 17, 4);

  // Ordering invariants the scheduler relies on: for FPGA-favoured apps
  // FPGA_THR < ARM_THR (Algorithm 2 then picks the FPGA); for CG-A the
  // ARM threshold is the smaller one (ARM is its better escape).
  EXPECT_LT(row("digit2000").fpga_threshold,
            row("digit2000").arm_threshold);
  EXPECT_LT(row("cg_a").arm_threshold, row("cg_a").fpga_threshold);
}

TEST(ThresholdEstimatorTest, TableMatchesRows) {
  const auto& result = shared_estimate();
  for (const auto& row : result.rows) {
    const auto& entry = result.table.at(row.app);
    EXPECT_EQ(entry.fpga_threshold, row.fpga_threshold);
    EXPECT_EQ(entry.arm_threshold, row.arm_threshold);
    EXPECT_EQ(entry.kernel_name, row.kernel);
    EXPECT_DOUBLE_EQ(entry.x86_exec.to_ms(), row.x86_exec.to_ms());
  }
}

TEST(ThresholdEstimatorTest, LoadSweepIsMonotone) {
  const ThresholdEstimator estimator;
  const auto specs = apps::paper_benchmarks();
  double prev = 0.0;
  for (int load : {1, 6, 12, 24}) {
    const double t =
        estimator.x86_time_under_load(specs, "facedet320", load).to_ms();
    EXPECT_GE(t, prev);
    prev = t;
  }
  // Beyond the core count, time scales ~linearly with load.
  const double t12 =
      estimator.x86_time_under_load(specs, "facedet320", 12).to_ms();
  const double t24 =
      estimator.x86_time_under_load(specs, "facedet320", 24).to_ms();
  EXPECT_NEAR(t24 / t12, 2.0, 0.2);
}

// --- Table 3 ---------------------------------------------------------------

TEST(LoadClassTest, PaperBoundaries) {
  // 6 x86 cores, 102 total.
  EXPECT_EQ(classify_load(1, 6, 102), LoadClass::kLow);
  EXPECT_EQ(classify_load(5, 6, 102), LoadClass::kLow);
  EXPECT_EQ(classify_load(60, 6, 102), LoadClass::kMedium);
  EXPECT_EQ(classify_load(101, 6, 102), LoadClass::kMedium);
  EXPECT_EQ(classify_load(120, 6, 102), LoadClass::kHigh);
}

// --- Workload generation ------------------------------------------------------

TEST(RandomSetTest, DeterministicAndInRange) {
  const auto specs = apps::paper_benchmarks();
  Rng a(99);
  Rng b(99);
  const auto set1 = random_app_set(a, specs, 20);
  const auto set2 = random_app_set(b, specs, 20);
  EXPECT_EQ(set1, set2);
  std::set<std::string> valid;
  for (const auto& s : specs) valid.insert(s.name);
  for (const auto& app : set1) EXPECT_TRUE(valid.contains(app));
}

TEST(RandomSetTest, UniformishCoverage) {
  const auto specs = apps::paper_benchmarks();
  Rng rng(7);
  std::map<std::string, int> counts;
  for (const auto& app : random_app_set(rng, specs, 2000)) ++counts[app];
  for (const auto& s : specs) {
    EXPECT_GT(counts[s.name], 300) << s.name;  // ~400 expected
  }
}

// --- Small end-to-end experiments -----------------------------------------

TEST(FigureExperimentTest, MediumLoadXarTrekBeatsVanilla) {
  // A scaled-down Figure 4 point: one set of 5 apps at 60 processes.
  AvgExecConfig config;
  config.set_sizes = {5};
  config.total_processes = 60;
  config.systems = {apps::SystemMode::kVanillaX86,
                    apps::SystemMode::kXarTrek};
  config.runs = 2;
  const auto result = run_avg_exec_experiment(
      apps::paper_benchmarks(), shared_estimate_table(), config);
  const double vanilla =
      result.cell(apps::SystemMode::kVanillaX86, 5).mean_ms;
  const double xartrek = result.cell(apps::SystemMode::kXarTrek, 5).mean_ms;
  EXPECT_LT(xartrek, vanilla);
}

TEST(FigureExperimentTest, LowLoadXarTrekCompetitiveWithVanilla) {
  // Figure 3 regime: no background load; Xar-Trek must not lose badly
  // anywhere (it mostly does not migrate, paper §4.1).
  AvgExecConfig config;
  config.set_sizes = {2};
  config.total_processes = 0;
  config.systems = {apps::SystemMode::kVanillaX86,
                    apps::SystemMode::kXarTrek};
  config.runs = 3;
  const auto result = run_avg_exec_experiment(
      apps::paper_benchmarks(), shared_estimate_table(), config);
  const double vanilla =
      result.cell(apps::SystemMode::kVanillaX86, 2).mean_ms;
  const double xartrek = result.cell(apps::SystemMode::kXarTrek, 2).mean_ms;
  EXPECT_LT(xartrek, vanilla * 1.3);
}

TEST(FigureExperimentTest, ProfitabilityMixMonotoneForVanilla) {
  // Scaled-down Figure 9: more CG-A (cheaper per run on x86) lowers the
  // vanilla mean; Xar-Trek beats vanilla on the all-Digit2000 mix.
  ProfitabilityConfig config;
  config.cg_counts = {0, 10};
  config.runs = 1;
  config.total_processes = 120;
  config.systems = {apps::SystemMode::kVanillaX86,
                    apps::SystemMode::kXarTrek};
  const auto result = run_profitability_experiment(
      apps::paper_benchmarks(), shared_estimate_table(), config);
  const double vanilla_digits =
      result.cell(apps::SystemMode::kVanillaX86, 0).mean_ms;
  const double xartrek_digits =
      result.cell(apps::SystemMode::kXarTrek, 0).mean_ms;
  EXPECT_LT(xartrek_digits, vanilla_digits / 2.0);
}

TEST(ExperimentTest, ColdStartStillCompletes) {
  // Ablation 4: no step-G seeding.  Zero thresholds route everything
  // with a resident kernel to the FPGA; runs must still complete.
  ExperimentOptions options;
  options.mode = apps::SystemMode::kXarTrek;
  Experiment exp(apps::paper_benchmarks(), runtime::ThresholdTable{},
                 options);
  exp.launch("facedet320");
  EXPECT_TRUE(exp.run_until_complete(1));
}

TEST(ExperimentTest, BackgroundLoadAdjustable) {
  ExperimentOptions options;
  options.mode = apps::SystemMode::kVanillaX86;
  Experiment exp(apps::paper_benchmarks(), runtime::ThresholdTable{},
                 options);
  exp.set_background_load(40);
  EXPECT_EQ(exp.testbed().x86().load(), 40);
  exp.set_background_load(10);
  EXPECT_EQ(exp.testbed().x86().load(), 10);
  exp.set_background_load(0);
  EXPECT_EQ(exp.testbed().x86().load(), 0);
}

}  // namespace
}  // namespace xartrek::exp
