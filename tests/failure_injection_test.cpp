// Failure injection: the accelerator card goes away.
//
// The multi-tenant premise (paper §1) is that the FPGA is an
// opportunistic escape valve, not a dependency: when the card is
// reclaimed by a paying tenant -- or simply dies -- Xar-Trek must keep
// serving from the CPUs, while the traditional always-FPGA flow has
// nowhere to go.  The health-check tests pin the heartbeat state
// machine's race behavior; the link tests pin partition park/replay
// down to the DSM's windowed data path.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "apps/application.hpp"
#include "apps/benchmark_spec.hpp"
#include "exp/experiment.hpp"
#include "exp/threshold_estimator.hpp"
#include "fpga/device.hpp"
#include "hw/link.hpp"
#include "popcorn/dsm.hpp"
#include "runtime/scheduler_server.hpp"
#include "sim/simulation.hpp"

namespace xartrek {
namespace {

const runtime::ThresholdTable& seeded_table() {
  static const runtime::ThresholdTable table =
      exp::ThresholdEstimator().estimate(apps::paper_benchmarks()).table;
  return table;
}

TEST(FpgaOfflineTest, DeviceDropsKernelsAndRejectsLoads) {
  platform::Testbed testbed;
  auto& device = testbed.fpga();

  fpga::XclbinImage image;
  image.id = "img";
  image.size_bytes = 4 << 20;
  fpga::HwKernelConfig k;
  k.name = "K";
  k.clock_mhz = 300;
  k.fixed_cycles = 300'000;
  image.kernels.push_back(k);

  device.reconfigure(image, [](fpga::ReconfigureResult) {});
  testbed.simulation().run_until(TimePoint::at_ms(2000));
  ASSERT_TRUE(device.has_kernel("K"));

  device.set_offline(true);
  EXPECT_FALSE(device.has_kernel("K"));
  EXPECT_EQ(device.loaded_image(), std::nullopt);

  // Reconfiguration requests complete -- reporting the offline drop --
  // and install nothing.
  bool completed = false;
  auto offline_result = fpga::ReconfigureResult::kOk;
  device.reconfigure(image, [&](fpga::ReconfigureResult r) {
    completed = true;
    offline_result = r;
  });
  testbed.simulation().run_until(testbed.simulation().now() +
                                 Duration::seconds(2));
  EXPECT_TRUE(completed);
  EXPECT_EQ(offline_result, fpga::ReconfigureResult::kOfflineDrop);
  EXPECT_FALSE(device.has_kernel("K"));

  // Back online: a fresh download works again and reports success.
  device.set_offline(false);
  auto online_result = fpga::ReconfigureResult::kOfflineDrop;
  device.reconfigure(image,
                     [&](fpga::ReconfigureResult r) { online_result = r; });
  testbed.simulation().run_until(testbed.simulation().now() +
                                 Duration::seconds(2));
  EXPECT_EQ(online_result, fpga::ReconfigureResult::kOk);
  EXPECT_TRUE(device.has_kernel("K"));
}

TEST(FpgaOfflineTest, DeathMidProgrammingInstallsNothing) {
  platform::Testbed testbed;
  auto& device = testbed.fpga();
  fpga::XclbinImage image;
  image.id = "img";
  image.size_bytes = 4 << 20;
  fpga::HwKernelConfig k;
  k.name = "K";
  k.clock_mhz = 300;
  image.kernels.push_back(k);

  bool completed = false;
  auto reported = fpga::ReconfigureResult::kOk;
  device.reconfigure(image, [&](fpga::ReconfigureResult r) {
    completed = true;
    reported = r;
  });
  // Kill the card halfway through the ~300 ms programming.
  testbed.simulation().schedule_at(TimePoint::at_ms(150),
                                   [&device] { device.set_offline(true); });
  testbed.simulation().run_until(TimePoint::at_ms(2000));
  EXPECT_TRUE(completed);
  EXPECT_EQ(reported, fpga::ReconfigureResult::kTornWrite);
  EXPECT_FALSE(device.has_kernel("K"));
  EXPECT_FALSE(device.reconfiguring());
}

TEST(FpgaOfflineTest, OfflineFlapDuringInFlightReconfigure) {
  // The card blips: offline at 150 ms, back at 160 ms -- inside the
  // programming window of a request issued at t=0.  The in-flight
  // request must fail cleanly (the bitstream write was torn) and the
  // recovered card must accept a fresh download.
  platform::Testbed testbed;
  auto& device = testbed.fpga();
  fpga::XclbinImage image;
  image.id = "img";
  image.size_bytes = 4 << 20;
  fpga::HwKernelConfig k;
  k.name = "K";
  k.clock_mhz = 300;
  k.fixed_cycles = 300'000;
  image.kernels.push_back(k);

  bool completed = false;
  auto flapped = fpga::ReconfigureResult::kOk;
  device.reconfigure(image, [&](fpga::ReconfigureResult r) {
    completed = true;
    flapped = r;
  });
  testbed.simulation().schedule_at(TimePoint::at_ms(150),
                                   [&device] { device.set_offline(true); });
  testbed.simulation().schedule_at(TimePoint::at_ms(160),
                                   [&device] { device.set_offline(false); });
  testbed.simulation().run_until(TimePoint::at_ms(2000));
  EXPECT_TRUE(completed);
  EXPECT_EQ(flapped, fpga::ReconfigureResult::kTornWrite);
  EXPECT_FALSE(device.has_kernel("K"));
  EXPECT_FALSE(device.reconfiguring());

  // The flap is over: a fresh download succeeds.
  auto retry = fpga::ReconfigureResult::kOfflineDrop;
  device.reconfigure(image, [&](fpga::ReconfigureResult r) { retry = r; });
  testbed.simulation().run_until(testbed.simulation().now() +
                                 Duration::seconds(2));
  EXPECT_EQ(retry, fpga::ReconfigureResult::kOk);
  EXPECT_TRUE(device.has_kernel("K"));
}

TEST(FpgaOfflineTest, InjectedReconfigureFailureIsOneShot) {
  platform::Testbed testbed;
  auto& device = testbed.fpga();
  fpga::XclbinImage image;
  image.id = "img";
  image.size_bytes = 4 << 20;
  fpga::HwKernelConfig k;
  k.name = "K";
  k.clock_mhz = 300;
  k.fixed_cycles = 300'000;
  image.kernels.push_back(k);

  const std::uint64_t v0 = device.residency_epoch();
  device.inject_reconfigure_failure();
  auto first = fpga::ReconfigureResult::kOk;
  device.reconfigure(image, [&](fpga::ReconfigureResult r) { first = r; });
  testbed.simulation().run_until(TimePoint::at_ms(2000));
  EXPECT_EQ(first, fpga::ReconfigureResult::kInjectedFailure);
  EXPECT_FALSE(device.has_kernel("K"));
  // The failure bumped the residency epoch: stale probe memos that
  // predicted this image must re-check.
  EXPECT_GT(device.residency_epoch(), v0);

  // One-shot: the next attempt programs normally.
  auto second = fpga::ReconfigureResult::kOfflineDrop;
  device.reconfigure(image, [&](fpga::ReconfigureResult r) { second = r; });
  testbed.simulation().run_until(testbed.simulation().now() +
                                 Duration::seconds(2));
  EXPECT_TRUE(succeeded(second));
  EXPECT_TRUE(device.has_kernel("K"));
}

TEST(FpgaOfflineTest, SlotFailuresAreConfinedToTheirSlot) {
  // Virtualized card: a programming failure (injected, or a torn write
  // from an offline blip) must cost only the slot being written, while
  // kernels in the other slots stay resident and callable.
  sim::Simulation sim;
  hw::Link pcie(sim, hw::pcie_gen3());
  fpga::FpgaDevice device(sim, pcie, fpga::alveo_u50_spec());
  device.enable_slots(fpga::SlotConfig{});

  fpga::HwKernelConfig a;
  a.name = "A";
  a.resources = device.slot_capacity() / 2;
  fpga::HwKernelConfig b = a;
  b.name = "B";

  auto a_result = fpga::ReconfigureResult::kOfflineDrop;
  device.reconfigure_slot(0, a, 1,
                          [&](fpga::ReconfigureResult r) { a_result = r; });
  sim.run();
  ASSERT_EQ(a_result, fpga::ReconfigureResult::kOk);
  ASSERT_TRUE(device.has_kernel("A"));

  // Injected one-shot failure lands on slot 1's write: slot 1 stays
  // empty, slot 0's tenant never notices.
  device.inject_reconfigure_failure();
  auto b_result = fpga::ReconfigureResult::kOk;
  device.reconfigure_slot(1, b, 1,
                          [&](fpga::ReconfigureResult r) { b_result = r; });
  sim.run();
  EXPECT_EQ(b_result, fpga::ReconfigureResult::kInjectedFailure);
  EXPECT_EQ(device.slot_kernel(1), std::nullopt);
  EXPECT_TRUE(device.has_kernel("A"));
  EXPECT_EQ(device.residency("A").cus, 1u);

  // An offline blip inside slot 1's programming window tears that
  // write.  The blip also wipes the card (device lost), so slot 0's
  // view must read as stale afterwards -- a memoized decision pass may
  // not keep routing to a kernel the outage removed.
  const fpga::ResidencyView a_view = device.residency("A");
  auto torn = fpga::ReconfigureResult::kOk;
  device.reconfigure_slot(1, b, 1,
                          [&](fpga::ReconfigureResult r) { torn = r; });
  sim.schedule_in(Duration::ms(1.0), [&] { device.set_offline(true); });
  sim.schedule_in(Duration::ms(2.0), [&] { device.set_offline(false); });
  sim.run();
  EXPECT_EQ(torn, fpga::ReconfigureResult::kTornWrite);
  EXPECT_FALSE(device.has_kernel("A"));
  EXPECT_FALSE(device.residency_current(a_view));
  EXPECT_FALSE(device.reconfiguring());

  // Recovered card accepts fresh slot programmings.
  auto again = fpga::ReconfigureResult::kOfflineDrop;
  device.reconfigure_slot(0, a, 1,
                          [&](fpga::ReconfigureResult r) { again = r; });
  sim.run();
  EXPECT_EQ(again, fpga::ReconfigureResult::kOk);
  EXPECT_TRUE(device.has_kernel("A"));
}

TEST(FpgaOfflineTest, OfflineSlotDeviceDropsQueuedProgrammings) {
  // Queued slot requests behind a dead card complete as offline drops,
  // same contract as whole-image mode.
  sim::Simulation sim;
  hw::Link pcie(sim, hw::pcie_gen3());
  fpga::FpgaDevice device(sim, pcie, fpga::alveo_u50_spec());
  device.enable_slots(fpga::SlotConfig{});

  fpga::HwKernelConfig a;
  a.name = "A";
  a.resources = device.slot_capacity() / 2;

  auto first = fpga::ReconfigureResult::kOk;
  auto queued = fpga::ReconfigureResult::kOk;
  device.reconfigure_slot(0, a, 1,
                          [&](fpga::ReconfigureResult r) { first = r; });
  device.reconfigure_slot(1, a, 1,
                          [&](fpga::ReconfigureResult r) { queued = r; });
  // Kill the card while the first write is in flight: it tears, and the
  // queued one is dropped without ever touching the fabric.
  sim.schedule_in(Duration::ms(1.0), [&] { device.set_offline(true); });
  sim.run();
  EXPECT_EQ(first, fpga::ReconfigureResult::kTornWrite);
  EXPECT_EQ(queued, fpga::ReconfigureResult::kOfflineDrop);
  EXPECT_FALSE(device.reconfiguring());
  EXPECT_EQ(device.slot_kernel(0), std::nullopt);
  EXPECT_EQ(device.slot_kernel(1), std::nullopt);
}

TEST(FpgaOfflineTest, XarTrekDegradesToCpuOnlyPlacement) {
  const auto specs = apps::paper_benchmarks();
  exp::ExperimentOptions options;
  options.mode = apps::SystemMode::kXarTrek;
  exp::Experiment exp(specs, seeded_table(), options);
  exp.testbed().fpga().set_offline(true);
  exp.add_background_load(60);
  exp.simulation().run_until(TimePoint::at_ms(250));

  // All five apps complete without the FPGA: digit/facedet fall into
  // Algorithm 2's no-kernel branches (x86 or ARM), CG-A to ARM.
  for (const auto& spec : specs) exp.launch(spec.name);
  ASSERT_TRUE(exp.run_until_complete(5));
  for (const auto& r : exp.results()) {
    EXPECT_NE(r.func_target, runtime::Target::kFpga) << r.app;
  }
  EXPECT_EQ(exp.server().stats().to_fpga, 0u);
}

TEST(FpgaOfflineTest, AlwaysFpgaBaselineStallsForever) {
  const auto specs = apps::paper_benchmarks();
  exp::ExperimentOptions options;
  options.mode = apps::SystemMode::kAlwaysFpga;
  exp::Experiment exp(specs, seeded_table(), options);
  exp.testbed().fpga().set_offline(true);
  exp.launch("digit500");
  // The traditional flow waits for a kernel that will never arrive.
  EXPECT_FALSE(exp.run_until_complete(1, Duration::minutes(5)));
  EXPECT_EQ(exp.completed_apps(), 0u);
}

TEST(FpgaOfflineTest, MidFlightOutageFallsBackToSoftware) {
  // The card dies after the placement decision but before the offload
  // reaches it: the executor's residency re-check falls back to x86
  // instead of crashing or hanging (the benign race of §3.2, plus an
  // outage).
  const auto specs = apps::paper_benchmarks();
  exp::ExperimentOptions options;
  options.mode = apps::SystemMode::kXarTrek;
  exp::Experiment exp(specs, seeded_table(), options);
  exp.warm_fpga_for("digit2000");
  exp.add_background_load(30);
  exp.simulation().run_until(exp.simulation().now() + Duration::ms(50));

  exp.launch("digit2000");
  // Kill the card while the app is still in its 50 ms pre phase, after
  // which the (stale-positive) decision may still say FPGA.
  exp.simulation().schedule_in(Duration::ms(60), [&exp] {
    exp.testbed().fpga().set_offline(true);
  });
  ASSERT_TRUE(exp.run_until_complete(1));
  // Completed on a CPU path either via the scheduler's no-kernel branch
  // or the executor fallback.
  EXPECT_NE(exp.results().front().func_target, runtime::Target::kFpga);
}

// --- heartbeat health checks ------------------------------------------------

TEST(SchedulerHealthTest, TimeoutRacingLateReplyEvictsAndIgnoresReply) {
  // Pathological tunables: the card's reply takes longer than the
  // server is willing to wait, so every heartbeat's timeout wins the
  // race and the reply always arrives late.  The state machine must
  // stay monotone: a late reply is counted and dropped, never
  // resurrecting the target its own timeout just condemned.
  const auto specs = apps::paper_benchmarks();
  exp::Experiment exp(specs, seeded_table());
  auto& server = exp.server();

  runtime::SchedulerServer::HealthOptions opts;
  opts.period = Duration::ms(10.0);
  opts.reply_latency = Duration::ms(5.0);  // loses to the 2 ms timeout
  opts.timeout = Duration::ms(2.0);
  opts.miss_limit = 2;
  server.start_health_checks(opts);
  EXPECT_TRUE(server.health_checks_active());

  exp.simulation().run_until(TimePoint::at_ms(100));
  EXPECT_FALSE(server.fpga_healthy());  // evicted despite a live card
  EXPECT_EQ(server.stats().evictions, 1u);
  EXPECT_GE(server.stats().late_replies, 5u);
  EXPECT_EQ(server.stats().reinstatements, 0u);

  server.stop_health_checks();
  EXPECT_FALSE(server.health_checks_active());
  EXPECT_TRUE(server.fpga_healthy());  // health off: pinned healthy
}

TEST(SchedulerHealthTest, OfflineCardEvictedThenReinstatedOnRecovery) {
  const auto specs = apps::paper_benchmarks();
  exp::Experiment exp(specs, seeded_table());
  auto& server = exp.server();

  server.start_health_checks();  // default tunables: 10 ms period
  exp.testbed().fpga().set_offline(true);
  exp.simulation().run_until(TimePoint::at_ms(100));
  // A dead card never answers: misses accumulate to the limit.
  EXPECT_FALSE(server.fpga_healthy());
  EXPECT_GE(server.stats().heartbeats_missed, 3u);
  EXPECT_EQ(server.stats().evictions, 1u);

  exp.testbed().fpga().set_offline(false);
  exp.simulation().run_until(TimePoint::at_ms(200));
  // First in-time reply reinstates the target.
  EXPECT_TRUE(server.fpga_healthy());
  EXPECT_EQ(server.stats().reinstatements, 1u);
}

// --- link partitions reaching into the DSM window ---------------------------

TEST(LinkPartitionTest, DsmWindowTransfersParkUntilRepair) {
  // A migration burst's page pulls are in the DSM's transfer window
  // when the inter-server link partitions: the pulls park on the link,
  // the reads stall without losing protocol state, and repairing the
  // link drains the window in FIFO order with coherence intact.
  sim::Simulation sim;
  hw::Link eth(sim, hw::ethernet_1gbps());
  popcorn::Dsm dsm(sim, eth,
                   popcorn::Dsm::Config{2, 1 << 20, 4096, 8});

  eth.set_down(true);
  bool done = false;
  std::vector<std::byte> bytes;
  dsm.read(1, 0, 4 * 4096, [&](std::vector<std::byte> b) {
    done = true;
    bytes = std::move(b);
  });
  sim.run();
  EXPECT_FALSE(done);  // parked, not lost
  EXPECT_TRUE(eth.down());
  EXPECT_GT(eth.stats().parked_transfers, 0u);
  dsm.check_invariants();

  eth.set_down(false);
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(bytes.size(), 4u * 4096u);
  EXPECT_EQ(eth.parked(), 0u);
  dsm.check_invariants();
}

}  // namespace
}  // namespace xartrek
