// Failure injection: the accelerator card goes away.
//
// The multi-tenant premise (paper §1) is that the FPGA is an
// opportunistic escape valve, not a dependency: when the card is
// reclaimed by a paying tenant -- or simply dies -- Xar-Trek must keep
// serving from the CPUs, while the traditional always-FPGA flow has
// nowhere to go.
#include <gtest/gtest.h>

#include "apps/application.hpp"
#include "apps/benchmark_spec.hpp"
#include "exp/experiment.hpp"
#include "exp/threshold_estimator.hpp"

namespace xartrek {
namespace {

const runtime::ThresholdTable& seeded_table() {
  static const runtime::ThresholdTable table =
      exp::ThresholdEstimator().estimate(apps::paper_benchmarks()).table;
  return table;
}

TEST(FpgaOfflineTest, DeviceDropsKernelsAndRejectsLoads) {
  platform::Testbed testbed;
  auto& device = testbed.fpga();

  fpga::XclbinImage image;
  image.id = "img";
  image.size_bytes = 4 << 20;
  fpga::HwKernelConfig k;
  k.name = "K";
  k.clock_mhz = 300;
  k.fixed_cycles = 300'000;
  image.kernels.push_back(k);

  device.reconfigure(image, [] {});
  testbed.simulation().run_until(TimePoint::at_ms(2000));
  ASSERT_TRUE(device.has_kernel("K"));

  device.set_offline(true);
  EXPECT_FALSE(device.has_kernel("K"));
  EXPECT_EQ(device.loaded_image(), std::nullopt);

  // Reconfiguration requests complete but install nothing.
  bool completed = false;
  device.reconfigure(image, [&] { completed = true; });
  testbed.simulation().run_until(testbed.simulation().now() +
                                 Duration::seconds(2));
  EXPECT_TRUE(completed);
  EXPECT_FALSE(device.has_kernel("K"));

  // Back online: a fresh download works again.
  device.set_offline(false);
  device.reconfigure(image, [] {});
  testbed.simulation().run_until(testbed.simulation().now() +
                                 Duration::seconds(2));
  EXPECT_TRUE(device.has_kernel("K"));
}

TEST(FpgaOfflineTest, DeathMidProgrammingInstallsNothing) {
  platform::Testbed testbed;
  auto& device = testbed.fpga();
  fpga::XclbinImage image;
  image.id = "img";
  image.size_bytes = 4 << 20;
  fpga::HwKernelConfig k;
  k.name = "K";
  k.clock_mhz = 300;
  image.kernels.push_back(k);

  bool completed = false;
  device.reconfigure(image, [&] { completed = true; });
  // Kill the card halfway through the ~300 ms programming.
  testbed.simulation().schedule_at(TimePoint::at_ms(150),
                                   [&device] { device.set_offline(true); });
  testbed.simulation().run_until(TimePoint::at_ms(2000));
  EXPECT_TRUE(completed);
  EXPECT_FALSE(device.has_kernel("K"));
  EXPECT_FALSE(device.reconfiguring());
}

TEST(FpgaOfflineTest, XarTrekDegradesToCpuOnlyPlacement) {
  const auto specs = apps::paper_benchmarks();
  exp::ExperimentOptions options;
  options.mode = apps::SystemMode::kXarTrek;
  exp::Experiment exp(specs, seeded_table(), options);
  exp.testbed().fpga().set_offline(true);
  exp.add_background_load(60);
  exp.simulation().run_until(TimePoint::at_ms(250));

  // All five apps complete without the FPGA: digit/facedet fall into
  // Algorithm 2's no-kernel branches (x86 or ARM), CG-A to ARM.
  for (const auto& spec : specs) exp.launch(spec.name);
  ASSERT_TRUE(exp.run_until_complete(5));
  for (const auto& r : exp.results()) {
    EXPECT_NE(r.func_target, runtime::Target::kFpga) << r.app;
  }
  EXPECT_EQ(exp.server().stats().to_fpga, 0u);
}

TEST(FpgaOfflineTest, AlwaysFpgaBaselineStallsForever) {
  const auto specs = apps::paper_benchmarks();
  exp::ExperimentOptions options;
  options.mode = apps::SystemMode::kAlwaysFpga;
  exp::Experiment exp(specs, seeded_table(), options);
  exp.testbed().fpga().set_offline(true);
  exp.launch("digit500");
  // The traditional flow waits for a kernel that will never arrive.
  EXPECT_FALSE(exp.run_until_complete(1, Duration::minutes(5)));
  EXPECT_EQ(exp.completed_apps(), 0u);
}

TEST(FpgaOfflineTest, MidFlightOutageFallsBackToSoftware) {
  // The card dies after the placement decision but before the offload
  // reaches it: the executor's residency re-check falls back to x86
  // instead of crashing or hanging (the benign race of §3.2, plus an
  // outage).
  const auto specs = apps::paper_benchmarks();
  exp::ExperimentOptions options;
  options.mode = apps::SystemMode::kXarTrek;
  exp::Experiment exp(specs, seeded_table(), options);
  exp.warm_fpga_for("digit2000");
  exp.add_background_load(30);
  exp.simulation().run_until(exp.simulation().now() + Duration::ms(50));

  exp.launch("digit2000");
  // Kill the card while the app is still in its 50 ms pre phase, after
  // which the (stale-positive) decision may still say FPGA.
  exp.simulation().schedule_in(Duration::ms(60), [&exp] {
    exp.testbed().fpga().set_offline(true);
  });
  ASSERT_TRUE(exp.run_until_complete(1));
  // Completed on a CPU path either via the scheduler's no-kernel branch
  // or the executor fallback.
  EXPECT_NE(exp.results().front().func_target, runtime::Target::kFpga);
}

}  // namespace
}  // namespace xartrek
