// Integration tests: whole-stack scenarios crossing module boundaries.
#include <gtest/gtest.h>

#include <set>

#include "apps/application.hpp"
#include "apps/benchmark_spec.hpp"
#include "exp/experiment.hpp"
#include "exp/figures.hpp"
#include "exp/threshold_estimator.hpp"
#include "fpga/device.hpp"
#include "hls/xclbin.hpp"
#include "hw/link.hpp"
#include "popcorn/dsm.hpp"
#include "popcorn/migration_runtime.hpp"
#include "sim/simulation.hpp"

namespace xartrek {
namespace {

const runtime::ThresholdTable& seeded_table() {
  static const runtime::ThresholdTable table =
      exp::ThresholdEstimator().estimate(apps::paper_benchmarks()).table;
  return table;
}

// --- Multi-CU device behaviour -------------------------------------------

TEST(MultiCuTest, ParallelInvocationsAcrossComputeUnits) {
  sim::Simulation sim;
  hw::Link pcie(sim, hw::pcie_gen3());
  fpga::FpgaDevice device(sim, pcie, fpga::alveo_u50_spec());

  fpga::XclbinImage image;
  image.id = "multi-cu";
  image.size_bytes = 4 << 20;
  fpga::HwKernelConfig k;
  k.name = "K";
  k.clock_mhz = 300;
  k.fixed_cycles = 0;
  k.cycles_per_item = 3'000'000;  // 10 ms
  k.compute_units = 3;
  image.kernels.push_back(k);
  device.reconfigure(image, [](fpga::ReconfigureResult) {});
  sim.run();

  const double t0 = sim.now().to_ms();
  std::vector<double> done;
  for (int i = 0; i < 6; ++i) {
    device.execute("K", 1, [&] { done.push_back(sim.now().to_ms() - t0); });
  }
  sim.run();
  ASSERT_EQ(done.size(), 6u);
  // Three CUs: invocations finish in two batches of three.
  EXPECT_NEAR(done[0], 10.0, 1e-9);
  EXPECT_NEAR(done[2], 10.0, 1e-9);
  EXPECT_NEAR(done[3], 20.0, 1e-9);
  EXPECT_NEAR(done[5], 20.0, 1e-9);
}

TEST(MultiCuTest, ComputeUnitsMultiplyAreaInPartitioning) {
  const hls::HlsCompiler hls;
  hls::KernelSource src;
  src.kernel_name = "K";
  src.source_function = "k";
  src.ops = {20, 2, 6, 0, 1e6};
  src.iface = {64 * 1024, 4 * 1024};
  src.compute_units = 4;
  const auto xo = hls.compile(src);
  EXPECT_EQ(xo.config.compute_units, 4);

  fpga::XclbinImage image;
  image.kernels.push_back(xo.config);
  fpga::XclbinImage single;
  auto cfg = xo.config;
  cfg.compute_units = 1;
  single.kernels.push_back(cfg);
  EXPECT_EQ(image.total_kernel_resources().luts,
            4 * single.total_kernel_resources().luts);
}

// --- Multi-XCLBIN run-time behaviour ---------------------------------------

TEST(MultiXclbinTest, SchedulerSwapsImagesAndExecutorSurvives) {
  // Shrink the device so the five kernels cannot share one image; the
  // scheduler must reconfigure between applications whose kernels live
  // in different images, and in-flight FPGA decisions whose kernel got
  // evicted must fall back to x86 rather than deadlock.
  const auto specs = apps::paper_benchmarks();
  exp::ExperimentOptions options;
  options.mode = apps::SystemMode::kXarTrek;
  exp::Experiment exp(specs, seeded_table(), options);

  // Build two artificial images, each holding a subset.
  const auto& all = exp.suite().xclbins;
  ASSERT_EQ(all.size(), 1u);
  fpga::XclbinImage img_a;
  img_a.id = "subset-a";
  fpga::XclbinImage img_b;
  img_b.id = "subset-b";
  for (const auto& k : all[0].kernels) {
    if (k.name == "KNL_HW_DR200" || k.name == "KNL_HW_DR500") {
      img_a.kernels.push_back(k);
    } else {
      img_b.kernels.push_back(k);
    }
  }
  img_a.size_bytes = img_b.size_bytes = 8 << 20;

  auto& device = exp.testbed().fpga();
  device.reconfigure(img_a, [](fpga::ReconfigureResult) {});
  exp.simulation().run_until(exp.simulation().now() + Duration::seconds(2));
  ASSERT_TRUE(device.has_kernel("KNL_HW_DR200"));

  // digit2000's kernel is resident -> FPGA; then swap to image B while
  // nothing protects residency, and run digit2000 again -> the decision
  // depends on the new image, never crashing.
  exp.add_background_load(30);
  exp.simulation().run_until(exp.simulation().now() + Duration::ms(50));
  exp.launch("digit2000");
  ASSERT_TRUE(exp.run_until_complete(1));
  EXPECT_EQ(exp.results()[0].func_target, runtime::Target::kFpga);

  device.reconfigure(img_b, [](fpga::ReconfigureResult) {});
  exp.simulation().run_until(exp.simulation().now() + Duration::seconds(2));
  EXPECT_FALSE(device.has_kernel("KNL_HW_DR200"));
  exp.launch("digit2000");
  ASSERT_TRUE(exp.run_until_complete(2));
  // The server sees the kernel missing; Algorithm 2's no-kernel branches
  // keep it off the FPGA (x86 or ARM at this load).
  EXPECT_NE(exp.results()[1].func_target, runtime::Target::kFpga);
}

// --- Functional migration across the full substrate -----------------------

TEST(FunctionalMigrationTest, StateAndMemoryArriveTogether) {
  // A thread's registers migrate via the state transformer while its
  // working set follows through the DSM -- the paper's software
  // migration path, assembled from the real pieces.
  sim::Simulation sim;
  hw::Link eth(sim, hw::ethernet_1gbps());
  popcorn::Dsm dsm(sim, eth, popcorn::Dsm::Config{2, 1 << 20, 4096});

  popcorn::MigrationMetadata metadata;
  popcorn::CallSiteMetadata site;
  site.function = "kernel";
  site.site_id = 0;
  site.frame_size[isa::IsaKind::kX86_64] = 64;
  site.frame_size[isa::IsaKind::kAarch64] = 64;
  popcorn::LiveValue ptr;
  ptr.name = "buf";
  ptr.type = popcorn::ValueType::kPtr;
  ptr.location[isa::IsaKind::kX86_64] =
      popcorn::ValueLocation::in_register("rdi");
  ptr.location[isa::IsaKind::kAarch64] =
      popcorn::ValueLocation::in_register("x0");
  site.live_values.push_back(ptr);
  metadata.add_site(site);

  const popcorn::StateTransformer transformer(metadata);
  popcorn::MigrationRuntime migration(sim, eth, transformer);

  // Node 0 (x86) writes data at address 0x3000 and migrates a thread
  // whose live pointer refers to it.
  const std::uint64_t addr = 0x3000;
  std::vector<std::byte> payload(256);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::byte>(i & 0xFF);
  }
  bool verified = false;
  dsm.write(0, addr, payload, [&] {
    popcorn::MachineState x86(isa::IsaKind::kX86_64, "kernel", 0, 64);
    x86.write_register("rdi", addr);
    migration.migrate(x86, isa::IsaKind::kAarch64, 64 * 1024,
                      [&](popcorn::MachineState arm) {
                        // On the ARM node, dereference the migrated
                        // pointer through the DSM.
                        const std::uint64_t p = arm.read_register("x0");
                        EXPECT_EQ(p, addr);
                        dsm.read(1, p, payload.size(),
                                 [&](std::vector<std::byte> bytes) {
                                   EXPECT_EQ(bytes, payload);
                                   verified = true;
                                 });
                      });
  });
  sim.run();
  EXPECT_TRUE(verified);
  dsm.check_invariants();
  EXPECT_GE(dsm.stats().page_transfers, 1u);
}

// --- Whole-figure smoke paths ----------------------------------------------

TEST(EndToEndTest, AllSystemsCompleteAMixedSet) {
  for (auto mode :
       {apps::SystemMode::kVanillaX86, apps::SystemMode::kVanillaArm,
        apps::SystemMode::kAlwaysFpga, apps::SystemMode::kXarTrek}) {
    exp::ExperimentOptions options;
    options.mode = mode;
    exp::Experiment exp(apps::paper_benchmarks(), seeded_table(), options);
    for (const auto& spec : exp.specs()) exp.launch(spec.name);
    EXPECT_TRUE(exp.run_until_complete(exp.specs().size()))
        << to_string(mode);
    EXPECT_EQ(exp.completed_apps(), 5u) << to_string(mode);
  }
}

TEST(EndToEndTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    exp::AvgExecConfig config;
    config.set_sizes = {3};
    config.total_processes = 30;
    config.systems = {apps::SystemMode::kXarTrek};
    config.runs = 2;
    config.seed = 7;
    const auto result = exp::run_avg_exec_experiment(
        apps::paper_benchmarks(), seeded_table(), config);
    return result.cells[0].mean_ms;
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(EndToEndTest, ColdStartConvergesTowardSeededBehaviour) {
  // Ablation 4: start with a cold (zero) threshold table and run the
  // same app repeatedly under load; Algorithm 1's refinement should
  // raise the ARM threshold after each disappointing migration until
  // decisions stabilize, and never crash meanwhile.
  const auto specs = apps::paper_benchmarks();
  exp::ExperimentOptions options;
  options.mode = apps::SystemMode::kXarTrek;
  exp::Experiment exp(specs, runtime::ThresholdTable{}, options);
  exp.warm_fpga_for("cg_a");
  exp.add_background_load(10);
  exp.simulation().run_until(exp.simulation().now() + Duration::ms(50));

  for (int run = 0; run < 6; ++run) {
    const std::size_t before = exp.completed_apps();
    exp.launch("cg_a");
    ASSERT_TRUE(exp.run_until_complete(before + 1));
  }
  // Cold FPGA_THR = 0 < cold ARM_THR? both 0: Algorithm 2 routes to the
  // FPGA (kernel resident, thresholds equal -> ARM? fpga_thr < arm_thr
  // is false when equal, so ARM).  Either way, each disappointing
  // migration raises its threshold by one.
  const auto& entry = exp.table().at("cg_a");
  EXPECT_GT(entry.fpga_threshold + entry.arm_threshold, 0);
}

TEST(EndToEndTest, ServerStatsAccountAllRequests) {
  const auto specs = apps::paper_benchmarks();
  exp::ExperimentOptions options;
  options.mode = apps::SystemMode::kXarTrek;
  exp::Experiment exp(specs, seeded_table(), options);
  for (int i = 0; i < 3; ++i) {
    for (const auto& spec : specs) exp.launch(spec.name);
  }
  ASSERT_TRUE(exp.run_until_complete(15));
  const auto& stats = exp.server().stats();
  EXPECT_EQ(stats.requests, 15u);
  EXPECT_EQ(stats.to_x86 + stats.to_arm + stats.to_fpga, 15u);
}

TEST(EndToEndTest, ThroughputExperimentShapesHold) {
  // Condensed Figure 6 invariants: Xar-Trek >= vanilla at load 50 by
  // ~4x, and >= always-FPGA (eager configuration + per-call init).
  exp::ThroughputConfig config;
  config.background_loads = {50};
  config.systems = {apps::SystemMode::kVanillaX86,
                    apps::SystemMode::kAlwaysFpga,
                    apps::SystemMode::kXarTrek};
  config.runs = 2;
  const auto result = exp::run_throughput_experiment(
      apps::paper_benchmarks(), seeded_table(), config);
  const double x86 =
      result.cell(apps::SystemMode::kVanillaX86, 50).mean_images;
  const double fpga =
      result.cell(apps::SystemMode::kAlwaysFpga, 50).mean_images;
  const double xar = result.cell(apps::SystemMode::kXarTrek, 50).mean_images;
  EXPECT_GT(xar, 3.0 * x86);
  EXPECT_GE(xar, fpga);
}

// --- Randomized PS-resource stress (property) -------------------------------

class PsStressTest : public ::testing::TestWithParam<int> {};

TEST_P(PsStressTest, RandomArrivalsCancellationsConserveWork) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  sim::Simulation sim;
  sim::PsResource cpu(sim, {"cpu", 6.0, 1.0});

  double expected_completed_work = 0.0;
  int completed = 0;
  int launched = 0;
  std::vector<sim::PsResource::JobId> cancellable;

  // 60 arrivals at random times with random demands; a third get
  // cancelled at random later times.
  for (int i = 0; i < 60; ++i) {
    const double at = rng.uniform_real(0.0, 200.0);
    const double demand = rng.uniform_real(1.0, 40.0);
    const bool cancel_later = i % 3 == 0;
    sim.schedule_at(TimePoint::at_ms(at), [&, demand, cancel_later] {
      ++launched;
      const auto id = cpu.submit(demand, [&, demand] {
        ++completed;
        expected_completed_work += demand;
      });
      if (cancel_later) cancellable.push_back(id);
    });
    if (cancel_later) {
      sim.schedule_at(TimePoint::at_ms(at + rng.uniform_real(0.5, 30.0)),
                      [&] {
                        if (!cancellable.empty()) {
                          cpu.cancel(cancellable.back());
                          cancellable.pop_back();
                        }
                      });
    }
  }
  sim.run();
  EXPECT_EQ(launched, 60);
  EXPECT_EQ(cpu.active_jobs(), 0u);
  // Completed jobs received exactly their demand; cancelled ones
  // strictly less -- so delivered work is bounded by both sides.
  EXPECT_GE(cpu.delivered_work() + 1e-6, expected_completed_work);
  EXPECT_GT(completed, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PsStressTest, ::testing::Range(1, 9));

}  // namespace
}  // namespace xartrek
