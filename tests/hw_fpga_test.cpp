// Tests for the hardware models: CPU clusters, links, the FPGA device.
#include <gtest/gtest.h>

#include "fpga/device.hpp"
#include "fpga/resources.hpp"
#include "hw/cpu_cluster.hpp"
#include "hw/link.hpp"
#include "platform/testbed.hpp"
#include "sim/simulation.hpp"

namespace xartrek {
namespace {

TEST(CpuClusterTest, SpecsMatchPaperTestbed) {
  EXPECT_EQ(hw::xeon_bronze_3104().cores, 6);
  EXPECT_EQ(hw::cavium_thunderx().cores, 96);
  EXPECT_DOUBLE_EQ(hw::xeon_bronze_3104().ghz, 1.7);
  EXPECT_DOUBLE_EQ(hw::cavium_thunderx().ghz, 2.0);
}

TEST(CpuClusterTest, LoadCountsResidentProcessesNotJobs) {
  sim::Simulation sim;
  hw::CpuCluster x86(sim, hw::xeon_bronze_3104());
  EXPECT_EQ(x86.load(), 0);
  // Load is process residency: jobs alone do not raise it, and an
  // attached process with no running burst still counts (it may be
  // blocked on an FPGA offload -- paper Table 3 counts processes).
  for (int i = 0; i < 10; ++i) x86.attach_process();
  EXPECT_EQ(x86.load(), 10);
  x86.run(Duration::ms(50), [] {});
  EXPECT_EQ(x86.load(), 10);
  EXPECT_EQ(x86.active_jobs(), 1);
  sim.run();
  EXPECT_EQ(x86.load(), 10);
  for (int i = 0; i < 10; ++i) x86.detach_process();
  EXPECT_EQ(x86.load(), 0);
  // Detaching below zero is a contract violation.
  EXPECT_THROW(x86.detach_process(), ContractViolation);
}

TEST(CpuClusterTest, ContentionBeyondCores) {
  sim::Simulation sim;
  hw::CpuCluster x86(sim, hw::xeon_bronze_3104());
  int done = 0;
  for (int i = 0; i < 12; ++i) {
    x86.run(Duration::ms(60), [&] { ++done; });
  }
  sim.run();
  EXPECT_EQ(done, 12);
  // 12 jobs on 6 cores -> 2x slowdown.
  EXPECT_NEAR(sim.now().to_ms(), 120.0, 1e-6);
}

TEST(LinkTest, TransferTimeIsLatencyPlusBandwidth) {
  sim::Simulation sim;
  hw::Link eth(sim, hw::ethernet_1gbps());
  double done_at = 0;
  // 1 MiB at 0.125 MB/ms = 8 ms + 0.12 ms latency.
  eth.transfer(1024 * 1024, [&] { done_at = sim.now().to_ms(); });
  sim.run();
  EXPECT_NEAR(done_at, 8.12, 1e-6);
}

TEST(LinkTest, ConcurrentTransfersShareBandwidth) {
  sim::Simulation sim;
  hw::Link eth(sim, hw::ethernet_1gbps());
  std::vector<double> done;
  for (int i = 0; i < 2; ++i) {
    eth.transfer(1024 * 1024, [&] { done.push_back(sim.now().to_ms()); });
  }
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  // Two 8ms payloads sharing the link -> 16ms + latency each.
  EXPECT_NEAR(done[0], 16.12, 1e-6);
  EXPECT_NEAR(done[1], 16.12, 1e-6);
}

TEST(LinkTest, PcieIsFasterThanEthernet) {
  sim::Simulation sim;
  hw::Link eth(sim, hw::ethernet_1gbps());
  hw::Link pcie(sim, hw::pcie_gen3());
  double eth_done = 0;
  double pcie_done = 0;
  eth.transfer(10 * 1024 * 1024, [&] { eth_done = sim.now().to_ms(); });
  pcie.transfer(10 * 1024 * 1024, [&] { pcie_done = sim.now().to_ms(); });
  sim.run();
  EXPECT_LT(pcie_done, eth_done / 50.0);
}

// --- FPGA resources ----------------------------------------------------

TEST(FpgaResourcesTest, ArithmeticAndFits) {
  const fpga::FpgaResources a{100, 200, 10, 2, 5};
  const fpga::FpgaResources b{50, 100, 5, 1, 2};
  const auto sum = a + b;
  EXPECT_EQ(sum.luts, 150u);
  EXPECT_EQ(sum.dsps, 7u);
  EXPECT_TRUE(fpga::FpgaResources::fits_within(b, a));
  EXPECT_FALSE(fpga::FpgaResources::fits_within(a, b));
  const auto diff = a - b;
  EXPECT_EQ(diff.ffs, 100u);
  EXPECT_THROW(b - a, ContractViolation);
}

TEST(FpgaResourcesTest, DominantFraction) {
  const fpga::FpgaResources cap{1000, 1000, 100, 10, 10};
  const fpga::FpgaResources r{100, 200, 90, 0, 1};
  EXPECT_DOUBLE_EQ(r.dominant_fraction(cap), 0.9);  // BRAM-bound
}

TEST(FpgaResourcesTest, U50ShellLeavesUsableArea) {
  const auto spec = fpga::alveo_u50_spec();
  const auto usable = spec.usable();
  EXPECT_GT(usable.luts, 600'000u);
  EXPECT_GT(usable.brams, 1000u);
}

// --- Kernel latency ----------------------------------------------------

TEST(KernelLatencyTest, FixedPlusPerItem) {
  fpga::HwKernelConfig k;
  k.clock_mhz = 300.0;
  k.fixed_cycles = 3'000'000;   // 10 ms at 300 MHz
  k.cycles_per_item = 300'000;  // 1 ms per item
  EXPECT_NEAR(kernel_latency(k, 0).to_ms(), 10.0, 1e-9);
  EXPECT_NEAR(kernel_latency(k, 5).to_ms(), 15.0, 1e-9);
}

// --- FPGA device -------------------------------------------------------

fpga::XclbinImage test_image(const std::string& id,
                             std::vector<std::string> kernels) {
  fpga::XclbinImage image;
  image.id = id;
  image.size_bytes = 4 * 1024 * 1024;
  for (const auto& name : kernels) {
    fpga::HwKernelConfig k;
    k.name = name;
    k.resources = {10'000, 15'000, 20, 0, 8};
    k.clock_mhz = 300.0;
    k.fixed_cycles = 300'000;    // 1 ms
    k.cycles_per_item = 300'000;  // 1 ms/item
    image.kernels.push_back(k);
  }
  return image;
}

struct DeviceFixture : ::testing::Test {
  sim::Simulation sim;
  hw::Link pcie{sim, hw::pcie_gen3()};
  fpga::FpgaDevice device{sim, pcie, fpga::alveo_u50_spec()};
};

TEST_F(DeviceFixture, ReconfigurationLifecycle) {
  EXPECT_FALSE(device.has_kernel("k0"));
  EXPECT_EQ(device.loaded_image(), std::nullopt);
  bool configured = false;
  device.reconfigure(test_image("img0", {"k0", "k1"}),
                     [&](fpga::ReconfigureResult r) { configured = succeeded(r); });
  EXPECT_TRUE(device.reconfiguring());
  sim.run();
  EXPECT_TRUE(configured);
  EXPECT_FALSE(device.reconfiguring());
  EXPECT_TRUE(device.has_kernel("k0"));
  EXPECT_TRUE(device.has_kernel("k1"));
  EXPECT_EQ(device.loaded_image(), std::optional<std::string>("img0"));
  EXPECT_EQ(device.reconfigurations(), 1u);
}

TEST_F(DeviceFixture, ReconfigurationTakesTransferPlusProgramming) {
  double done_at = 0;
  device.reconfigure(test_image("img0", {"k0"}),
                     [&](fpga::ReconfigureResult) { done_at = sim.now().to_ms(); });
  sim.run();
  // 4 MiB over PCIe (0.125 ms) + 0.005 latency + 300 ms programming.
  EXPECT_NEAR(done_at, 300.13, 0.01);
}

TEST_F(DeviceFixture, ReplacementEvictsOldKernels) {
  device.reconfigure(test_image("img0", {"k0"}), [](fpga::ReconfigureResult) {});
  sim.run();
  device.reconfigure(test_image("img1", {"k9"}), [](fpga::ReconfigureResult) {});
  EXPECT_FALSE(device.has_kernel("k0"));  // torn down immediately
  sim.run();
  EXPECT_TRUE(device.has_kernel("k9"));
  EXPECT_FALSE(device.has_kernel("k0"));
}

TEST_F(DeviceFixture, QueuedReconfigurationsSerialize) {
  int completions = 0;
  device.reconfigure(test_image("a", {"ka"}), [&](fpga::ReconfigureResult) { ++completions; });
  device.reconfigure(test_image("b", {"kb"}), [&](fpga::ReconfigureResult) { ++completions; });
  EXPECT_TRUE(device.reconfiguring());
  sim.run();
  EXPECT_EQ(completions, 2);
  EXPECT_EQ(device.loaded_image(), std::optional<std::string>("b"));
  EXPECT_EQ(device.reconfigurations(), 2u);
}

TEST_F(DeviceFixture, KernelExecutionFifoPerCu) {
  device.reconfigure(test_image("img", {"k"}), [](fpga::ReconfigureResult) {});
  sim.run();
  const double t0 = sim.now().to_ms();
  std::vector<double> done;
  device.execute("k", 1, [&] { done.push_back(sim.now().to_ms() - t0); });
  device.execute("k", 1, [&] { done.push_back(sim.now().to_ms() - t0); });
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 2.0, 1e-9);  // 1 fixed + 1 per-item
  EXPECT_NEAR(done[1], 4.0, 1e-9);  // queued behind the first
  EXPECT_EQ(device.kernel_invocations(), 2u);
}

TEST_F(DeviceFixture, ExecuteUnknownKernelThrows) {
  device.reconfigure(test_image("img", {"k"}), [](fpga::ReconfigureResult) {});
  sim.run();
  EXPECT_THROW(device.execute("nope", 1, [] {}), ContractViolation);
}

TEST_F(DeviceFixture, OversizedImageRejected) {
  fpga::XclbinImage image = test_image("huge", {"k"});
  image.kernels[0].resources.luts = 10'000'000;  // bigger than the die
  EXPECT_THROW(device.reconfigure(image, [](fpga::ReconfigureResult) {}), ContractViolation);
}

TEST(TestbedTest, AssemblesPaperPlatform) {
  platform::Testbed testbed;
  EXPECT_EQ(testbed.x86().spec().cores, 6);
  EXPECT_EQ(testbed.arm().spec().cores, 96);
  EXPECT_EQ(testbed.total_cores(), 102);  // Table 3's core budget
  EXPECT_EQ(testbed.fpga().spec().model, "Xilinx Alveo U50");
  EXPECT_DOUBLE_EQ(testbed.ethernet().spec().bandwidth_mb_per_ms, 0.125);
}

}  // namespace
}  // namespace xartrek
