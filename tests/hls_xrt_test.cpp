// Tests for the HLS toolchain model (steps D/E/F) and the XRT-style
// host runtime.
#include <gtest/gtest.h>

#include <cstring>

#include "fpga/device.hpp"
#include "hls/hls_compiler.hpp"
#include "hls/xclbin.hpp"
#include "hw/link.hpp"
#include "sim/simulation.hpp"
#include "xrt/xrt.hpp"

namespace xartrek {
namespace {

hls::KernelSource simple_source(const std::string& name,
                                std::uint64_t int_ops = 20,
                                std::uint64_t irregular = 0,
                                double iterations = 1e6,
                                double unroll = 1.0) {
  hls::KernelSource src;
  src.source_function = name + "_fn";
  src.kernel_name = name;
  src.lines_of_code = 150;
  src.ops.int_ops = int_ops;
  src.ops.mem_ops = 4;
  src.ops.fp_ops = 2;
  src.ops.irregular_mem_ops = irregular;
  src.ops.iterations_per_item = iterations;
  src.iface.input_bytes = 64 * 1024;
  src.iface.output_bytes = 4 * 1024;
  src.unroll_factor = unroll;
  return src;
}

TEST(HlsCompilerTest, ProducesConsistentXo) {
  const hls::HlsCompiler hls;
  const auto xo = hls.compile(simple_source("KNL_A"));
  EXPECT_EQ(xo.kernel_name, "KNL_A");
  EXPECT_EQ(xo.source_function, "KNL_A_fn");
  EXPECT_EQ(xo.config.name, "KNL_A");
  EXPECT_GT(xo.config.resources.luts, 4000u);
  EXPECT_GT(xo.config.resources.ffs, xo.config.resources.luts);
  EXPECT_GT(xo.file_bytes, 96u * 1024);
  EXPECT_GT(xo.synthesis_walltime, Duration::seconds(60));
}

TEST(HlsCompilerTest, UnrollTradesAreaForLatency) {
  const hls::HlsCompiler hls;
  const auto narrow = hls.compile(simple_source("K", 40, 0, 1e6, 1.0));
  const auto wide = hls.compile(simple_source("K", 40, 0, 1e6, 4.0));
  EXPECT_GT(wide.config.resources.luts, narrow.config.resources.luts);
  EXPECT_LT(wide.config.cycles_per_item, narrow.config.cycles_per_item);
}

TEST(HlsCompilerTest, IrregularAccessDominatesLatency) {
  const hls::HlsCompiler hls;
  const auto regular = hls.compile(simple_source("R", 20, 0));
  const auto irregular = hls.compile(simple_source("I", 20, 2));
  // Two 120-cycle stalls per iteration vs a ~6-cycle pipelined body.
  EXPECT_GT(irregular.config.cycles_per_item,
            30.0 * regular.config.cycles_per_item);
}

TEST(HlsCompilerTest, InitiationIntervalFloorsAtOne) {
  const hls::HlsCompiler hls;
  // A tiny body heavily unrolled cannot beat II = 1.
  const auto xo = hls.compile(simple_source("T", 1, 0, 1000.0, 64.0));
  EXPECT_GE(xo.config.cycles_per_item, 1000.0);
}

TEST(HlsCompilerTest, MonstrousKernelRejected) {
  const hls::HlsCompiler hls;
  auto src = simple_source("HUGE", 1'000'000, 0, 1.0, 64.0);
  EXPECT_THROW(hls.compile(src), Error);
}

// --- Partitioning (step E) ---------------------------------------------

std::vector<hls::XoFile> make_xos(int count, std::uint64_t brams_each) {
  const hls::HlsCompiler hls;
  std::vector<hls::XoFile> xos;
  for (int i = 0; i < count; ++i) {
    auto xo = hls.compile(simple_source("KNL_" + std::to_string(i)));
    xo.config.resources.brams = brams_each;  // force BRAM-bound packing
    xos.push_back(xo);
  }
  return xos;
}

TEST(XclbinPartitionTest, AllKernelsFitOneImageWhenSmall) {
  const hls::XclbinPartitioner partitioner(fpga::alveo_u50_spec());
  const auto bins = partitioner.partition(make_xos(5, 50));
  ASSERT_EQ(bins.size(), 1u);
  EXPECT_EQ(bins[0].xos.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(bins[0].contains_kernel("KNL_" + std::to_string(i)));
  }
}

TEST(XclbinPartitionTest, SplitsWhenAreaExceeded) {
  // Usable BRAM is 1344 - 270 = 1074; six 400-BRAM kernels need 3 bins.
  const hls::XclbinPartitioner partitioner(fpga::alveo_u50_spec());
  const auto bins = partitioner.partition(make_xos(6, 400));
  EXPECT_EQ(bins.size(), 3u);
  // Every kernel placed exactly once.
  std::size_t placed = 0;
  for (const auto& bin : bins) {
    placed += bin.xos.size();
    EXPECT_TRUE(fpga::FpgaResources::fits_within(
        bin.total_resources(), fpga::alveo_u50_spec().usable()));
  }
  EXPECT_EQ(placed, 6u);
}

TEST(XclbinPartitionTest, SingleOversizedKernelThrows) {
  const hls::XclbinPartitioner partitioner(fpga::alveo_u50_spec());
  EXPECT_THROW(partitioner.partition(make_xos(1, 5000)), Error);
}

TEST(XclbinPartitionTest, ManualGroupingRespected) {
  const hls::XclbinPartitioner partitioner(fpga::alveo_u50_spec());
  const auto xos = make_xos(4, 50);
  const auto bins = partitioner.partition_manual(
      xos, {{"KNL_0", "KNL_3"}, {"KNL_1", "KNL_2"}});
  ASSERT_EQ(bins.size(), 2u);
  EXPECT_TRUE(bins[0].contains_kernel("KNL_0"));
  EXPECT_TRUE(bins[0].contains_kernel("KNL_3"));
  EXPECT_TRUE(bins[1].contains_kernel("KNL_1"));
}

TEST(XclbinPartitionTest, ManualErrors) {
  const hls::XclbinPartitioner partitioner(fpga::alveo_u50_spec());
  const auto xos = make_xos(2, 50);
  EXPECT_THROW(partitioner.partition_manual(xos, {{"KNL_0", "NOPE"}}),
               Error);  // unknown kernel
  EXPECT_THROW(partitioner.partition_manual(xos, {{"KNL_0", "KNL_0"}}),
               Error);  // duplicate
  EXPECT_THROW(partitioner.partition_manual(xos, {{"KNL_0"}}),
               Error);  // KNL_1 unassigned
}

TEST(XclbinBuildTest, ImageCarriesKernelsAndSize) {
  const hls::XclbinPartitioner partitioner(fpga::alveo_u50_spec());
  const hls::XclbinBuilder builder(fpga::alveo_u50_spec());
  const auto xos = make_xos(3, 50);
  const auto bins = partitioner.partition(xos);
  ASSERT_EQ(bins.size(), 1u);
  const auto image = builder.build(bins[0]);
  EXPECT_EQ(image.kernels.size(), 3u);
  EXPECT_GT(image.size_bytes, 2u * 1024 * 1024);  // shell base + regions
  EXPECT_TRUE(image.contains_kernel("KNL_1"));
}

// --- XRT ------------------------------------------------------------

struct XrtFixture : ::testing::Test {
  sim::Simulation sim;
  hw::Link pcie{sim, hw::pcie_gen3()};
  fpga::FpgaDevice card{sim, pcie, fpga::alveo_u50_spec()};
  xrt::Device device{sim, card, pcie};

  fpga::XclbinImage image() {
    const hls::HlsCompiler hls;
    const hls::XclbinBuilder builder(fpga::alveo_u50_spec());
    hls::XclbinSpec spec;
    spec.id = "img";
    spec.xos.push_back(hls.compile(simple_source("KNL_X")));
    return builder.build(spec);
  }
};

TEST_F(XrtFixture, BufferSyncMovesBytesOverPcie) {
  xrt::Buffer buf(device, 256);
  std::memset(buf.host().data(), 0x5A, buf.host().size());
  bool synced = false;
  buf.sync_to_device([&] { synced = true; });
  sim.run();
  EXPECT_TRUE(synced);
  for (auto b : buf.device_shadow()) EXPECT_EQ(b, std::byte{0x5A});

  // Mutate the shadow path in reverse.
  std::memset(buf.host().data(), 0, buf.host().size());
  buf.sync_from_device([] {});
  sim.run();
  for (auto b : buf.host()) EXPECT_EQ(b, std::byte{0x5A});
}

TEST_F(XrtFixture, KernelEnqueueRequiresLoadedXclbin) {
  xrt::Kernel kernel(device, "KNL_X");
  EXPECT_THROW(kernel.enqueue(1, [] {}), Error);
  device.load_xclbin(image(), [](fpga::ReconfigureResult) {});
  sim.run();
  EXPECT_TRUE(device.kernel_ready("KNL_X"));
  bool done = false;
  kernel.enqueue(1, [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
}

TEST_F(XrtFixture, OffloadChainsInKernelOut) {
  device.load_xclbin(image(), [](fpga::ReconfigureResult) {});
  sim.run();
  xrt::Kernel kernel(device, "KNL_X");
  xrt::Buffer in(device, 1024 * 1024);
  xrt::Buffer out(device, 64 * 1024);
  std::memset(in.host().data(), 0x11, in.host().size());
  const double t0 = sim.now().to_ms();
  bool done = false;
  xrt::offload(device, kernel, &in, &out, 1, [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_GT(sim.now().to_ms(), t0);  // DMA + kernel time elapsed
  for (auto b : in.device_shadow()) EXPECT_EQ(b, std::byte{0x11});
  EXPECT_EQ(card.kernel_invocations(), 1u);
}

TEST_F(XrtFixture, OffloadWithoutBuffers) {
  device.load_xclbin(image(), [](fpga::ReconfigureResult) {});
  sim.run();
  xrt::Kernel kernel(device, "KNL_X");
  bool done = false;
  xrt::offload(device, kernel, nullptr, nullptr, 2, [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace xartrek
