// Borrowed-decode (MessageView) tests: field lifetimes, round-trip
// equivalence with the owning decode_message, and truncated / hostile
// frames.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <span>
#include <variant>
#include <vector>

#include "runtime/protocol.hpp"

namespace xartrek::runtime {
namespace {

PlacementRequestMsg sample_request() {
  return PlacementRequestMsg{"facedet320", "KNL_HW_FD320", 4242};
}

ThresholdReportMsg sample_report() {
  ThresholdReportMsg m;
  m.app = "digit2000";
  m.executed_on = Target::kFpga;
  m.exec_time_ms = 332.5;
  m.x86_load = 23;
  return m;
}

TableSyncMsg sample_sync() {
  TableSyncMsg m;
  m.entry.app = "cg_a";
  m.entry.kernel_name = "KNL_HW_CG";
  m.entry.fpga_threshold = 16;
  m.entry.arm_threshold = 31;
  m.entry.x86_exec = Duration::ms(175.0);
  m.entry.arm_exec = Duration::ms(642.0);
  m.entry.fpga_exec = Duration::ms(332.0);
  return m;
}

/// True when `view` points inside `frame`'s storage.
bool aliases(std::string_view view, const std::vector<std::byte>& frame) {
  const char* begin = reinterpret_cast<const char*>(frame.data());
  const char* end = begin + frame.size();
  return view.data() >= begin && view.data() + view.size() <= end;
}

TEST(MessageViewTest, RequestFieldsAliasTheFrame) {
  const auto frame = encode_message(sample_request());
  const auto view =
      std::get<PlacementRequestView>(decode_message_view(frame));
  EXPECT_EQ(view.app, "facedet320");
  EXPECT_EQ(view.kernel, "KNL_HW_FD320");
  EXPECT_EQ(view.pid, 4242u);
  EXPECT_TRUE(aliases(view.app, frame));
  EXPECT_TRUE(aliases(view.kernel, frame));
}

TEST(MessageViewTest, ViewReflectsInPlaceFrameMutation) {
  // Proof of borrowing: patching a byte of the app name inside the frame
  // must show through the already-decoded view.
  auto frame = encode_message(sample_request());
  const auto view =
      std::get<PlacementRequestView>(decode_message_view(frame));
  ASSERT_EQ(view.app.front(), 'f');
  const std::size_t off =
      static_cast<std::size_t>(view.app.data() -
                               reinterpret_cast<const char*>(frame.data()));
  frame[off] = static_cast<std::byte>('F');
  EXPECT_EQ(view.app, "Facedet320");
}

TEST(MessageViewTest, RoundTripMatchesOwningDecodeForAllTypes) {
  const std::vector<Message> messages = {
      sample_request(),
      PlacementReplyMsg{Target::kArm, true, 29},
      sample_report(),
      sample_sync(),
  };
  for (const auto& msg : messages) {
    const auto frame = encode_message(msg);
    const Message owned = decode_message(frame);
    const Message materialized = to_owning(decode_message_view(frame));
    EXPECT_TRUE(owned == msg);
    EXPECT_TRUE(materialized == msg);
  }
}

TEST(MessageViewTest, ReportAndSyncViewsCarryAllFields) {
  {
    const auto frame = encode_message(sample_report());
    const auto v = std::get<ThresholdReportView>(decode_message_view(frame));
    EXPECT_EQ(v.app, "digit2000");
    EXPECT_EQ(v.executed_on, Target::kFpga);
    EXPECT_DOUBLE_EQ(v.exec_time_ms, 332.5);
    EXPECT_EQ(v.x86_load, 23);
    EXPECT_TRUE(aliases(v.app, frame));
  }
  {
    const auto frame = encode_message(sample_sync());
    const auto v = std::get<TableSyncView>(decode_message_view(frame));
    EXPECT_EQ(v.app, "cg_a");
    EXPECT_EQ(v.kernel_name, "KNL_HW_CG");
    EXPECT_EQ(v.fpga_threshold, 16);
    EXPECT_EQ(v.arm_threshold, 31);
    EXPECT_DOUBLE_EQ(v.x86_exec_ms, 175.0);
    EXPECT_DOUBLE_EQ(v.arm_exec_ms, 642.0);
    EXPECT_DOUBLE_EQ(v.fpga_exec_ms, 332.0);
  }
}

TEST(MessageViewTest, EveryTruncationLengthThrows) {
  const auto frame = encode_message(sample_request());
  for (std::size_t len = 0; len < frame.size(); ++len) {
    EXPECT_THROW(
        (void)decode_message_view(std::span(frame.data(), len)), Error)
        << "prefix length " << len;
  }
  // The full frame decodes.
  EXPECT_NO_THROW((void)decode_message_view(frame));
}

TEST(MessageViewTest, TrailingBytesThrow) {
  auto frame = encode_message(sample_request());
  frame.push_back(std::byte{0});
  EXPECT_THROW((void)decode_message_view(frame), Error);
}

TEST(MessageViewTest, BadMagicVersionAndTypeThrow) {
  auto frame = encode_message(sample_request());
  auto corrupt = frame;
  corrupt[0] = std::byte{0x00};  // magic
  EXPECT_THROW((void)decode_message_view(corrupt), Error);
  corrupt = frame;
  corrupt[2] = std::byte{99};  // version
  EXPECT_THROW((void)decode_message_view(corrupt), Error);
  corrupt = frame;
  corrupt[3] = std::byte{77};  // type
  EXPECT_THROW((void)decode_message_view(corrupt), Error);
}

TEST(MessageViewTest, HostileStringLengthCannotEscapeThePayload) {
  // Patch the app string's 16-bit length prefix to claim more bytes
  // than the payload holds; the bounds-checked reader must throw, and
  // must never hand out a view past the frame.
  auto frame = encode_message(sample_request());
  // Payload begins at kHeaderBytes; first field is the app string's
  // length prefix.
  frame[kHeaderBytes] = std::byte{0xFF};
  frame[kHeaderBytes + 1] = std::byte{0xFF};
  EXPECT_THROW((void)decode_message_view(frame), Error);
}

TEST(MessageViewTest, HostilePayloadLengthMismatchThrows) {
  auto frame = encode_message(sample_request());
  // Claim one byte fewer / more than actually present.
  const auto patch_len = [&](std::uint32_t delta_sign) {
    auto f = frame;
    std::uint32_t len = 0;
    std::memcpy(&len, f.data() + 4, 4);  // little-endian host assumed in test
    len += delta_sign;
    std::memcpy(f.data() + 4, &len, 4);
    return f;
  };
  EXPECT_THROW((void)decode_message_view(patch_len(1u)), Error);
  EXPECT_THROW(
      (void)decode_message_view(patch_len(static_cast<std::uint32_t>(-1))),
      Error);
}

TEST(MessageViewTest, EmptyStringsDecodeAsEmptyViews) {
  const auto frame = encode_message(PlacementRequestMsg{"", "", 0});
  const auto view =
      std::get<PlacementRequestView>(decode_message_view(frame));
  EXPECT_TRUE(view.app.empty());
  EXPECT_TRUE(view.kernel.empty());
}

}  // namespace
}  // namespace xartrek::runtime
