// Tests for the epoch-synchronized sharded simulation core: SPSC
// mailbox semantics, trace determinism across shard counts and across
// serial/parallel execution, lookahead-contract enforcement, and
// mailbox overflow backpressure.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sim/mailbox.hpp"
#include "sim/shard.hpp"
#include "sim/simulation.hpp"

namespace xartrek::sim {
namespace {

// --- SPSC ring --------------------------------------------------------------

TEST(SpscRingTest, FifoAcrossWrapAround) {
  SpscRing<int> ring(4);
  int out = 0;
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 3; ++i) {
      EXPECT_TRUE(ring.try_push(round * 10 + i));
    }
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(ring.try_pop(out));
      EXPECT_EQ(out, round * 10 + i);
    }
  }
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(SpscRingTest, RefusesWhenFull) {
  SpscRing<int> ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(int{i}));
  EXPECT_FALSE(ring.try_push(99));
  int out = 0;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(ring.try_push(4));  // slot freed by the pop
  EXPECT_EQ(ring.size(), 4u);
}

TEST(SpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  SpscRing<int> ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
}

// --- single-shard equivalence ----------------------------------------------

TEST(ShardedSimulationTest, OneShardReproducesPlainSimulationTrace) {
  // The same self-rescheduling workload on a plain Simulation and on a
  // 1-shard ShardedSimulation must produce the identical event trace.
  struct Chain {
    Simulation* sim;
    std::vector<std::pair<double, int>>* trace;
    int id;
    double period;
    int remaining;
    void fire() {
      trace->emplace_back(sim->now().to_ms(), id);
      if (remaining-- > 0) {
        sim->schedule_in(Duration::ms(period), [this] { fire(); });
      }
    }
  };
  auto drive = [](Simulation& sim, std::vector<std::pair<double, int>>& out) {
    std::vector<std::unique_ptr<Chain>> chains;
    for (int id = 0; id < 4; ++id) {
      chains.push_back(std::make_unique<Chain>(
          Chain{&sim, &out, id, 0.7 + 0.4 * id, 30}));
      Chain* c = chains.back().get();
      sim.schedule_in(Duration::ms(c->period), [c] { c->fire(); });
    }
    return chains;  // keep alive while running
  };

  std::vector<std::pair<double, int>> plain_trace;
  Simulation plain;
  auto keep1 = drive(plain, plain_trace);
  plain.run();

  std::vector<std::pair<double, int>> sharded_trace;
  ShardedSimulation sharded(
      ShardedSimulation::Options{1, Duration::ms(0.5), 64, false});
  auto keep2 = drive(sharded.shard(0), sharded_trace);
  sharded.run();

  EXPECT_EQ(sharded_trace, plain_trace);
  EXPECT_EQ(sharded.executed_events(), plain.executed_events());
}

// --- cross-shard determinism ------------------------------------------------

// A ring of chains, one per "component": each chain self-reschedules on
// its own shard and every fourth firing hands a token to the next chain
// through a CrossShardChannel (latency 2 ms >= the 1 ms epoch).  The
// per-chain timeline (own firings and token arrivals) must be identical
// for every shard count and for serial vs parallel execution.
struct RingResult {
  std::vector<std::vector<double>> fires;     // per chain
  std::vector<std::vector<double>> arrivals;  // per chain
  std::uint64_t executed = 0;
  std::uint64_t stalls = 0;
};

RingResult run_ring(std::size_t shards, bool parallel,
                    std::size_t mailbox_capacity = 64,
                    std::size_t post_every = 4) {
  constexpr int kChains = 8;
  constexpr int kFires = 40;
  ShardedSimulation ssim(ShardedSimulation::Options{
      shards, Duration::ms(1.0), mailbox_capacity, parallel});

  RingResult result;
  result.fires.resize(kChains);
  result.arrivals.resize(kChains);

  struct Chain {
    ShardedSimulation* ssim;
    Simulation* local;
    CrossShardChannel to_next;
    std::vector<double>* fires;
    std::vector<double>* arrivals;
    int remaining;
    double period;
    std::size_t post_every = 4;
    void fire() {
      fires->push_back(local->now().to_ms());
      if (fires->size() % post_every == 0) {
        to_next.deliver([this] {
          next_arrivals->push_back(next_local->now().to_ms());
        });
      }
      if (remaining-- > 0) {
        local->schedule_in(Duration::ms(period), [this] { fire(); });
      }
    }
    std::vector<double>* next_arrivals = nullptr;
    Simulation* next_local = nullptr;
  };

  std::vector<std::unique_ptr<Chain>> chains;
  for (int c = 0; c < kChains; ++c) {
    const ShardId home = static_cast<ShardId>(c % shards);
    const ShardId next = static_cast<ShardId>((c + 1) % kChains % shards);
    auto chain = std::make_unique<Chain>();
    chain->ssim = &ssim;
    chain->local = &ssim.shard(home);
    chain->to_next = CrossShardChannel(ssim, home, next, Duration::ms(2.0));
    chain->fires = &result.fires[c];
    chain->arrivals = &result.arrivals[c];
    chain->remaining = kFires;
    chain->period = 0.31 + 0.173 * c;  // no cross-chain ties
    chain->post_every = post_every;
    chains.push_back(std::move(chain));
  }
  for (int c = 0; c < kChains; ++c) {
    chains[c]->next_arrivals = &result.arrivals[(c + 1) % kChains];
    chains[c]->next_local = chains[(c + 1) % kChains]->local;
    Chain* chain = chains[c].get();
    chain->local->schedule_in(Duration::ms(chain->period),
                              [chain] { chain->fire(); });
  }

  result.executed = ssim.run();
  for (ShardId s = 0; s < ssim.shard_count(); ++s) {
    result.stalls += ssim.stats(s).backpressure_stalls;
  }
  return result;
}

TEST(ShardedSimulationTest, TracesIdenticalAcrossShardCounts) {
  const RingResult one = run_ring(1, false);
  const RingResult two = run_ring(2, false);
  const RingResult four = run_ring(4, false);
  EXPECT_EQ(two.fires, one.fires);
  EXPECT_EQ(four.fires, one.fires);
  EXPECT_EQ(two.arrivals, one.arrivals);
  EXPECT_EQ(four.arrivals, one.arrivals);
  // Each chain fired kFires+1 times and received every token.
  for (const auto& f : one.fires) EXPECT_EQ(f.size(), 41u);
  for (const auto& a : one.arrivals) EXPECT_EQ(a.size(), 10u);
}

TEST(ShardedSimulationTest, ParallelMatchesSerial) {
  const RingResult serial = run_ring(4, false);
  const RingResult parallel = run_ring(4, true);
  EXPECT_EQ(parallel.fires, serial.fires);
  EXPECT_EQ(parallel.arrivals, serial.arrivals);
  EXPECT_EQ(parallel.executed, serial.executed);
}

TEST(ShardedSimulationTest, BackpressureDelaysButDeliversEverything) {
  // Every firing posts a token; a capacity-2 mailbox forces part of
  // each window's burst through the spill path.
  const RingResult roomy = run_ring(4, false, 64, 1);
  const RingResult tight = run_ring(4, false, 2, 1);
  EXPECT_EQ(roomy.stalls, 0u);
  EXPECT_GT(tight.stalls, 0u);
  // Every token still arrives exactly once.
  for (const auto& a : tight.arrivals) EXPECT_EQ(a.size(), 41u);
  EXPECT_EQ(tight.fires, roomy.fires);  // local timelines unaffected
}

TEST(ShardedSimulationTest, MailboxOverflowBurstSpillsAndDrains) {
  // 100 same-window posts through a capacity-4 mailbox: all must land,
  // FIFO, even though delivery slips across several boundaries.
  ShardedSimulation ssim(
      ShardedSimulation::Options{2, Duration::ms(1.0), 4, false});
  std::vector<int> received;
  ssim.shard(0).schedule_at(TimePoint::at_ms(1.0), [&] {
    for (int i = 0; i < 100; ++i) {
      ssim.post(0, 1, ssim.shard(0).now() + Duration::ms(2.0),
                [&received, i] { received.push_back(i); });
    }
  });
  ssim.run();
  ASSERT_EQ(received.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(received[i], i);
  EXPECT_GT(ssim.stats(0).backpressure_stalls, 0u);
  EXPECT_EQ(ssim.stats(1).received, 100u);
}

// --- API contracts ----------------------------------------------------------

TEST(ShardedSimulationTest, ChannelLatencyMustCoverEpoch) {
  ShardedSimulation ssim(
      ShardedSimulation::Options{2, Duration::ms(1.0), 64, false});
  EXPECT_THROW(CrossShardChannel(ssim, 0, 1, Duration::micros(10.0)),
               ContractViolation);
  // Same-shard channels may be arbitrarily fast.
  EXPECT_NO_THROW(CrossShardChannel(ssim, 0, 0, Duration::micros(10.0)));
}

TEST(ShardedSimulationTest, RunUntilAlignsEveryShardClock) {
  ShardedSimulation ssim(
      ShardedSimulation::Options{3, Duration::ms(1.0), 64, false});
  int fired = 0;
  ssim.shard(1).schedule_at(TimePoint::at_ms(5.0), [&] { ++fired; });
  ssim.shard(2).schedule_at(TimePoint::at_ms(50.0), [&] { ++fired; });
  EXPECT_EQ(ssim.run_until(TimePoint::at_ms(20.0)), 1u);
  EXPECT_EQ(fired, 1);
  for (ShardId s = 0; s < 3; ++s) {
    EXPECT_DOUBLE_EQ(ssim.shard(s).now().to_ms(), 20.0);
  }
  EXPECT_EQ(ssim.run(), 1u);
  EXPECT_EQ(fired, 2);
}

TEST(ShardedSimulationTest, FastForwardsOverIdleGaps) {
  // Two events 10 seconds apart with a 0.1 ms epoch: the window
  // scheduler must jump the gap instead of grinding 100k empty epochs.
  ShardedSimulation ssim(
      ShardedSimulation::Options{2, Duration::micros(100.0), 64, false});
  int fired = 0;
  ssim.shard(0).schedule_at(TimePoint::at_ms(1.0), [&] { ++fired; });
  ssim.shard(1).schedule_at(TimePoint::at_ms(10'000.0), [&] { ++fired; });
  EXPECT_EQ(ssim.run(), 2u);
  EXPECT_EQ(fired, 2);
}

TEST(ShardedSimulationTest, ErrorInParallelShardPropagates) {
  ShardedSimulation ssim(
      ShardedSimulation::Options{2, Duration::ms(1.0), 64, true});
  ssim.shard(1).schedule_at(TimePoint::at_ms(1.0),
                            [] { throw Error("shard boom"); });
  ssim.shard(0).schedule_at(TimePoint::at_ms(0.5), [] {});
  EXPECT_THROW(ssim.run(), Error);
}

}  // namespace
}  // namespace xartrek::sim
