// Tests for the epoch-synchronized sharded simulation core: SPSC
// mailbox semantics, trace determinism across shard counts and across
// serial/parallel execution, lookahead-contract enforcement, and
// mailbox overflow backpressure.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "sim/mailbox.hpp"
#include "sim/shard.hpp"
#include "sim/simulation.hpp"

namespace xartrek::sim {
namespace {

// --- SPSC ring --------------------------------------------------------------

TEST(SpscRingTest, FifoAcrossWrapAround) {
  SpscRing<int> ring(4);
  int out = 0;
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 3; ++i) {
      EXPECT_TRUE(ring.try_push(round * 10 + i));
    }
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(ring.try_pop(out));
      EXPECT_EQ(out, round * 10 + i);
    }
  }
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(SpscRingTest, RefusesWhenFull) {
  SpscRing<int> ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(int{i}));
  EXPECT_FALSE(ring.try_push(99));
  int out = 0;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(ring.try_push(4));  // slot freed by the pop
  EXPECT_EQ(ring.size(), 4u);
}

TEST(SpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  SpscRing<int> ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
}

TEST(SpscRingTest, TracksHighWaterDepth) {
  SpscRing<int> ring(8);
  EXPECT_EQ(ring.high_water(), 0u);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(ring.try_push(int{i}));
  int out = 0;
  ASSERT_TRUE(ring.try_pop(out));
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(ring.high_water(), 3u);  // pops don't lower the mark
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ring.try_push(int{i}));
  EXPECT_EQ(ring.high_water(), 6u);  // 1 left + 5 pushed
}

// --- single-shard equivalence ----------------------------------------------

TEST(ShardedSimulationTest, OneShardReproducesPlainSimulationTrace) {
  // The same self-rescheduling workload on a plain Simulation and on a
  // 1-shard ShardedSimulation must produce the identical event trace.
  struct Chain {
    Simulation* sim;
    std::vector<std::pair<double, int>>* trace;
    int id;
    double period;
    int remaining;
    void fire() {
      trace->emplace_back(sim->now().to_ms(), id);
      if (remaining-- > 0) {
        sim->schedule_in(Duration::ms(period), [this] { fire(); });
      }
    }
  };
  auto drive = [](Simulation& sim, std::vector<std::pair<double, int>>& out) {
    std::vector<std::unique_ptr<Chain>> chains;
    for (int id = 0; id < 4; ++id) {
      chains.push_back(std::make_unique<Chain>(
          Chain{&sim, &out, id, 0.7 + 0.4 * id, 30}));
      Chain* c = chains.back().get();
      sim.schedule_in(Duration::ms(c->period), [c] { c->fire(); });
    }
    return chains;  // keep alive while running
  };

  std::vector<std::pair<double, int>> plain_trace;
  Simulation plain;
  auto keep1 = drive(plain, plain_trace);
  plain.run();

  std::vector<std::pair<double, int>> sharded_trace;
  ShardedSimulation sharded(
      ShardedSimulation::Options{1, Duration::ms(0.5), 64, false});
  auto keep2 = drive(sharded.shard(0), sharded_trace);
  sharded.run();

  EXPECT_EQ(sharded_trace, plain_trace);
  EXPECT_EQ(sharded.executed_events(), plain.executed_events());
}

// --- cross-shard determinism ------------------------------------------------

// A ring of chains, one per "component": each chain self-reschedules on
// its own shard and every fourth firing hands a token to the next chain
// through a CrossShardChannel (latency 2 ms >= the 1 ms epoch).  The
// per-chain timeline (own firings and token arrivals) must be identical
// for every shard count and for serial vs parallel execution.
struct RingResult {
  std::vector<std::vector<double>> fires;     // per chain
  std::vector<std::vector<double>> arrivals;  // per chain
  std::uint64_t executed = 0;
  std::uint64_t stalls = 0;
};

struct RingChain {
  ShardedSimulation* ssim;
  Simulation* local;
  CrossShardChannel to_next;
  std::vector<double>* fires;
  std::vector<double>* arrivals;
  int remaining;
  double period;
  std::size_t post_every = 4;
  void fire() {
    fires->push_back(local->now().to_ms());
    if (fires->size() % post_every == 0) {
      to_next.deliver([this] {
        next_arrivals->push_back(next_local->now().to_ms());
      });
    }
    if (remaining-- > 0) {
      local->schedule_in(Duration::ms(period), [this] { fire(); });
    }
  }
  std::vector<double>* next_arrivals = nullptr;
  Simulation* next_local = nullptr;
};

std::vector<std::unique_ptr<RingChain>> build_ring(ShardedSimulation& ssim,
                                                   RingResult& result,
                                                   std::size_t post_every) {
  constexpr int kChains = 8;
  constexpr int kFires = 40;
  result.fires.resize(kChains);
  result.arrivals.resize(kChains);
  const std::size_t shards = ssim.shard_count();
  std::vector<std::unique_ptr<RingChain>> chains;
  for (int c = 0; c < kChains; ++c) {
    const ShardId home = static_cast<ShardId>(c % shards);
    const ShardId next = static_cast<ShardId>((c + 1) % kChains % shards);
    auto chain = std::make_unique<RingChain>();
    chain->ssim = &ssim;
    chain->local = &ssim.shard(home);
    chain->to_next = CrossShardChannel(ssim, home, next, Duration::ms(2.0));
    chain->fires = &result.fires[c];
    chain->arrivals = &result.arrivals[c];
    chain->remaining = kFires;
    chain->period = 0.31 + 0.173 * c;  // no cross-chain ties
    chain->post_every = post_every;
    chains.push_back(std::move(chain));
  }
  for (int c = 0; c < kChains; ++c) {
    chains[c]->next_arrivals = &result.arrivals[(c + 1) % kChains];
    chains[c]->next_local = chains[(c + 1) % kChains]->local;
    RingChain* chain = chains[c].get();
    chain->local->schedule_in(Duration::ms(chain->period),
                              [chain] { chain->fire(); });
  }
  return chains;
}

/// Run the ring workload on an engine built from `opts`.  When `mid`
/// is set, the run pauses at `mid_at_ms` to let the test poke the
/// engine (e.g. force a shard steal) before finishing.
RingResult run_ring_opts(
    const ShardedSimulation::Options& opts, std::size_t post_every = 4,
    const std::function<void(ShardedSimulation&)>& mid = nullptr,
    double mid_at_ms = 0.0) {
  ShardedSimulation ssim(opts);
  RingResult result;
  auto chains = build_ring(ssim, result, post_every);
  if (mid) {
    result.executed = ssim.run_until(TimePoint::at_ms(mid_at_ms));
    mid(ssim);
    result.executed += ssim.run();
  } else {
    result.executed = ssim.run();
  }
  for (ShardId s = 0; s < ssim.shard_count(); ++s) {
    result.stalls += ssim.stats(s).backpressure_stalls;
  }
  return result;
}

RingResult run_ring(std::size_t shards, bool parallel,
                    std::size_t mailbox_capacity = 64,
                    std::size_t post_every = 4) {
  return run_ring_opts(ShardedSimulation::Options{shards, Duration::ms(1.0),
                                                  mailbox_capacity, parallel},
                       post_every);
}

TEST(ShardedSimulationTest, TracesIdenticalAcrossShardCounts) {
  const RingResult one = run_ring(1, false);
  const RingResult two = run_ring(2, false);
  const RingResult four = run_ring(4, false);
  EXPECT_EQ(two.fires, one.fires);
  EXPECT_EQ(four.fires, one.fires);
  EXPECT_EQ(two.arrivals, one.arrivals);
  EXPECT_EQ(four.arrivals, one.arrivals);
  // Each chain fired kFires+1 times and received every token.
  for (const auto& f : one.fires) EXPECT_EQ(f.size(), 41u);
  for (const auto& a : one.arrivals) EXPECT_EQ(a.size(), 10u);
}

TEST(ShardedSimulationTest, ParallelMatchesSerial) {
  const RingResult serial = run_ring(4, false);
  const RingResult parallel = run_ring(4, true);
  EXPECT_EQ(parallel.fires, serial.fires);
  EXPECT_EQ(parallel.arrivals, serial.arrivals);
  EXPECT_EQ(parallel.executed, serial.executed);
}

TEST(ShardedSimulationTest, BackpressureDelaysButDeliversEverything) {
  // Every firing posts a token; a capacity-2 mailbox forces part of
  // each window's burst through the spill path.
  const RingResult roomy = run_ring(4, false, 64, 1);
  const RingResult tight = run_ring(4, false, 2, 1);
  EXPECT_EQ(roomy.stalls, 0u);
  EXPECT_GT(tight.stalls, 0u);
  // Every token still arrives exactly once.
  for (const auto& a : tight.arrivals) EXPECT_EQ(a.size(), 41u);
  EXPECT_EQ(tight.fires, roomy.fires);  // local timelines unaffected
}

TEST(ShardedSimulationTest, MailboxOverflowBurstSpillsAndDrains) {
  // 100 same-window posts through a capacity-4 mailbox: all must land,
  // FIFO, even though delivery slips across several boundaries.
  ShardedSimulation ssim(
      ShardedSimulation::Options{2, Duration::ms(1.0), 4, false});
  std::vector<int> received;
  ssim.shard(0).schedule_at(TimePoint::at_ms(1.0), [&] {
    for (int i = 0; i < 100; ++i) {
      ssim.post(0, 1, ssim.shard(0).now() + Duration::ms(2.0),
                [&received, i] { received.push_back(i); });
    }
  });
  ssim.run();
  ASSERT_EQ(received.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(received[i], i);
  EXPECT_GT(ssim.stats(0).backpressure_stalls, 0u);
  EXPECT_EQ(ssim.stats(1).received, 100u);
}

// --- adaptive epochs --------------------------------------------------------

TEST(ShardedSimulationTest, AdaptiveEpochCoarsensWhenQuietAndSnapsBack) {
  // A purely local workload (no cross-shard posts) on a 0.1 ms base
  // epoch: the fixed engine grinds a boundary every ~0.1 ms, the
  // adaptive one coarsens geometrically to the 5 ms ceiling.
  auto make_opts = [](bool adaptive) {
    ShardedSimulation::Options opts;
    opts.shards = 2;
    opts.epoch = Duration::micros(100.0);
    opts.exec.adaptive = adaptive;
    opts.max_epoch = Duration::ms(5.0);
    opts.exec.adapt_quiet_windows = 2;
    return opts;
  };
  auto drive = [](ShardedSimulation& ssim) {
    struct Local {
      Simulation* sim;
      std::vector<double>* trace;
      int remaining;
      void fire() {
        trace->push_back(sim->now().to_ms());
        if (remaining-- > 0) {
          sim->schedule_in(Duration::micros(50.0), [this] { fire(); });
        }
      }
    };
    auto local = std::make_unique<Local>();
    local->sim = &ssim.shard(0);
    local->remaining = 400;
    auto trace = std::make_unique<std::vector<double>>();
    local->trace = trace.get();
    Local* l = local.get();
    ssim.shard(0).schedule_in(Duration::micros(50.0), [l] { l->fire(); });
    ssim.run();
    return std::make_pair(std::move(trace), std::move(local));
  };

  ShardedSimulation fixed(make_opts(false));
  const auto fixed_run = drive(fixed);
  ShardedSimulation adaptive(make_opts(true));
  const auto adaptive_run = drive(adaptive);

  EXPECT_EQ(*adaptive_run.first, *fixed_run.first);  // trace unchanged
  EXPECT_EQ(adaptive.current_epoch(), Duration::ms(5.0));  // hit the cap
  EXPECT_EQ(fixed.current_epoch(), fixed.epoch());  // never moved
  // Coarsening is the point: the quiet stretch costs far fewer
  // synchronization windows.
  EXPECT_LT(adaptive.windows(), fixed.windows() / 4);

  // Cross-shard traffic snaps the window back to the base epoch.
  double arrived = -1.0;
  adaptive.shard(0).schedule_in(Duration::ms(1.0), [&] {
    adaptive.post(0, 1, adaptive.shard(0).now() + Duration::ms(5.0),
                  [&] { arrived = adaptive.shard(1).now().to_ms(); });
  });
  adaptive.run();
  EXPECT_GT(arrived, 0.0);
  EXPECT_EQ(adaptive.current_epoch(), adaptive.epoch());
}

TEST(ShardedSimulationTest, AdaptiveTraceMatchesFixedSerialAndParallel) {
  // The ring's cross-shard channels model 2 ms, so windows may legally
  // coarsen to 2 ms; the trace must not notice, serial or parallel.
  const RingResult fixed = run_ring(4, false);
  auto opts = [](bool parallel) {
    ShardedSimulation::Options o;
    o.shards = 4;
    o.epoch = Duration::ms(1.0);
    o.mailbox_capacity = 64;
    o.parallel = parallel;
    o.exec.adaptive = true;
    o.max_epoch = Duration::ms(2.0);
    o.exec.adapt_quiet_windows = 1;
    return o;
  };
  const RingResult serial = run_ring_opts(opts(false));
  const RingResult parallel = run_ring_opts(opts(true));
  EXPECT_EQ(serial.fires, fixed.fires);
  EXPECT_EQ(serial.arrivals, fixed.arrivals);
  EXPECT_EQ(parallel.fires, fixed.fires);
  EXPECT_EQ(parallel.arrivals, fixed.arrivals);
  EXPECT_EQ(serial.executed, fixed.executed);
  EXPECT_EQ(parallel.executed, fixed.executed);
}

TEST(ShardedSimulationTest, AdaptiveOffPinsFixedEpochBehavior) {
  // adaptive=false with every new knob at its default must reproduce
  // the fixed-epoch engine exactly: same trace, same window count,
  // window length never moves, and the ceiling degenerates to the
  // epoch itself (so channel validation is unchanged).
  ShardedSimulation::Options defaults;
  defaults.shards = 4;
  defaults.epoch = Duration::ms(1.0);
  defaults.mailbox_capacity = 64;
  ShardedSimulation probe(defaults);
  EXPECT_EQ(probe.max_epoch(), probe.epoch());
  EXPECT_EQ(probe.current_epoch(), probe.epoch());

  ShardedSimulation a(defaults);
  ShardedSimulation b(defaults);
  RingResult ra;
  RingResult rb;
  auto keep_a = build_ring(a, ra, 4);
  auto keep_b = build_ring(b, rb, 4);
  ra.executed = a.run();
  rb.executed = b.run();
  EXPECT_EQ(ra.fires, rb.fires);
  EXPECT_EQ(a.windows(), b.windows());
  EXPECT_GT(a.windows(), 0u);
  EXPECT_EQ(a.current_epoch(), a.epoch());
  EXPECT_EQ(ra.fires, run_ring(1, false).fires);  // today's trace
}

// --- deterministic shard stealing -------------------------------------------

TEST(ShardedSimulationTest, ForcedMidRunStealPreservesTrace) {
  const RingResult baseline = run_ring(4, false);
  auto opts = [](bool parallel) {
    ShardedSimulation::Options o;
    o.shards = 4;
    o.epoch = Duration::ms(1.0);
    o.mailbox_capacity = 64;
    o.parallel = parallel;
    o.exec.workers = 2;
    return o;
  };
  for (const bool parallel : {false, true}) {
    std::uint64_t moves = 0;
    std::size_t new_worker = 99;
    const RingResult stolen = run_ring_opts(
        opts(parallel), 4,
        [&](ShardedSimulation& ssim) {
          // Mid-run, between spans: move shard 0 off worker 0.
          EXPECT_EQ(ssim.worker_of(0), 0u);
          ssim.set_worker_of(0, 1);
          moves = ssim.steal_moves();
          new_worker = ssim.worker_of(0);
        },
        /*mid_at_ms=*/20.0);
    EXPECT_EQ(moves, 1u);
    EXPECT_EQ(new_worker, 1u);
    EXPECT_EQ(stolen.fires, baseline.fires) << "parallel=" << parallel;
    EXPECT_EQ(stolen.arrivals, baseline.arrivals);
    EXPECT_EQ(stolen.executed, baseline.executed);
  }
}

TEST(ShardedSimulationTest, OrganicStealingIsDeterministicAcrossModes) {
  // 8 shards on 2 workers with the ring's uneven per-shard load: the
  // rebalancer's decisions (whatever they are) must be identical in
  // serial and parallel mode, and the trace must not notice them.
  const RingResult baseline = run_ring(8, false);
  auto opts = [](bool parallel) {
    ShardedSimulation::Options o;
    o.shards = 8;
    o.epoch = Duration::ms(1.0);
    o.mailbox_capacity = 64;
    o.parallel = parallel;
    o.exec.workers = 2;
    o.exec.steal = true;
    o.exec.steal_period = 4;
    o.exec.steal_imbalance = 1.1;
    return o;
  };
  std::uint64_t serial_moves = 0;
  std::uint64_t parallel_moves = 0;
  std::vector<std::size_t> serial_map;
  std::vector<std::size_t> parallel_map;
  auto capture = [](std::uint64_t& moves, std::vector<std::size_t>& map) {
    return [&moves, &map](ShardedSimulation& ssim) {
      moves = ssim.steal_moves();
      for (ShardId s = 0; s < ssim.shard_count(); ++s) {
        map.push_back(ssim.worker_of(s));
      }
    };
  };
  // The "mid" hook past the end of the workload reads the final map
  // (the engine is destroyed when run_ring_opts returns).
  const RingResult serial = run_ring_opts(
      opts(false), 4, capture(serial_moves, serial_map), /*mid_at_ms=*/80.0);
  const RingResult parallel = run_ring_opts(
      opts(true), 4, capture(parallel_moves, parallel_map),
      /*mid_at_ms=*/80.0);
  EXPECT_EQ(serial.fires, baseline.fires);
  EXPECT_EQ(serial.arrivals, baseline.arrivals);
  EXPECT_EQ(parallel.fires, baseline.fires);
  EXPECT_EQ(parallel.arrivals, baseline.arrivals);
  EXPECT_EQ(parallel_moves, serial_moves);
  EXPECT_EQ(parallel_map, serial_map);
}

TEST(ShardedSimulationTest, RebalancerIsolatesHotShard) {
  // One hot shard (20x the event rate) sharing worker 0 with a cold
  // shard: the rebalancer must move the cold shard away -- exactly
  // once (the donor then owns a single shard and may not give it up)
  // -- and identically in serial and parallel mode.
  struct Local {
    Simulation* sim;
    std::vector<double>* trace;
    double period_ms;
    int remaining;
    void fire() {
      trace->push_back(sim->now().to_ms());
      if (remaining-- > 0) {
        sim->schedule_in(Duration::ms(period_ms), [this] { fire(); });
      }
    }
  };
  auto run_mode = [](bool parallel, std::uint64_t& moves,
                     std::vector<std::size_t>& map,
                     std::vector<std::vector<double>>& traces) {
    ShardedSimulation::Options o;
    o.shards = 4;
    o.epoch = Duration::ms(1.0);
    o.parallel = parallel;
    o.exec.workers = 2;
    o.exec.steal = true;
    o.exec.steal_period = 4;
    o.exec.steal_imbalance = 1.5;
    ShardedSimulation ssim(o);
    traces.assign(4, {});
    std::vector<std::unique_ptr<Local>> chains;
    for (ShardId s = 0; s < 4; ++s) {
      auto c = std::make_unique<Local>();
      c->sim = &ssim.shard(s);
      c->trace = &traces[s];
      c->period_ms = s == 0 ? 0.05 : 1.0;  // shard 0 is the hot one
      c->remaining = s == 0 ? 400 : 20;
      Local* raw = c.get();
      c->sim->schedule_in(Duration::ms(c->period_ms), [raw] { raw->fire(); });
      chains.push_back(std::move(c));
    }
    ssim.run();
    moves = ssim.steal_moves();
    map.clear();
    for (ShardId s = 0; s < 4; ++s) map.push_back(ssim.worker_of(s));
  };

  std::uint64_t serial_moves = 0;
  std::uint64_t parallel_moves = 0;
  std::vector<std::size_t> serial_map;
  std::vector<std::size_t> parallel_map;
  std::vector<std::vector<double>> serial_traces;
  std::vector<std::vector<double>> parallel_traces;
  run_mode(false, serial_moves, serial_map, serial_traces);
  run_mode(true, parallel_moves, parallel_map, parallel_traces);

  EXPECT_EQ(serial_moves, 1u);  // cold shard 2 leaves worker 0, once
  EXPECT_EQ(serial_map, (std::vector<std::size_t>{0, 1, 1, 1}));
  EXPECT_EQ(parallel_moves, serial_moves);
  EXPECT_EQ(parallel_map, serial_map);
  EXPECT_EQ(parallel_traces, serial_traces);
}

TEST(ShardedSimulationTest, WorkerStatsAccountEveryEvent) {
  ShardedSimulation::Options opts;
  opts.shards = 4;
  opts.epoch = Duration::ms(1.0);
  opts.mailbox_capacity = 64;
  opts.parallel = true;
  opts.exec.workers = 2;
  ShardedSimulation ssim(opts);
  RingResult result;
  auto keep = build_ring(ssim, result, 4);
  result.executed = ssim.run();
  ASSERT_EQ(ssim.worker_count(), 2u);
  std::uint64_t by_worker = 0;
  for (std::size_t w = 0; w < ssim.worker_count(); ++w) {
    by_worker += ssim.worker_stats(w).executed;
  }
  EXPECT_EQ(by_worker, result.executed);
  std::uint64_t by_shard = 0;
  for (ShardId s = 0; s < ssim.shard_count(); ++s) {
    by_shard += ssim.stats(s).executed;
  }
  EXPECT_EQ(by_shard, result.executed);
}

TEST(ShardedSimulationTest, MailboxHighWaterStatTracksInboundBursts) {
  // Capacity-2 mailboxes with a post on every firing: boundaries drain
  // multi-message bursts, and the stat must see them.
  const RingResult tight = run_ring(4, false, 2, 1);
  EXPECT_GT(tight.stalls, 0u);
  ShardedSimulation::Options opts;
  opts.shards = 4;
  opts.epoch = Duration::ms(1.0);
  opts.mailbox_capacity = 2;
  ShardedSimulation ssim(opts);
  RingResult result;
  auto keep = build_ring(ssim, result, 1);
  result.executed = ssim.run();
  std::uint64_t max_hwm = 0;
  for (ShardId s = 0; s < ssim.shard_count(); ++s) {
    max_hwm = std::max(max_hwm, ssim.stats(s).mailbox_hwm);
  }
  EXPECT_GT(max_hwm, 1u);
}

// --- API contracts ----------------------------------------------------------

TEST(ShardedSimulationTest, ChannelLatencyMustCoverEpoch) {
  ShardedSimulation ssim(
      ShardedSimulation::Options{2, Duration::ms(1.0), 64, false});
  EXPECT_THROW(CrossShardChannel(ssim, 0, 1, Duration::micros(10.0)),
               ContractViolation);
  // Same-shard channels may be arbitrarily fast.
  EXPECT_NO_THROW(CrossShardChannel(ssim, 0, 0, Duration::micros(10.0)));
}

TEST(ShardedSimulationTest, RunUntilAlignsEveryShardClock) {
  ShardedSimulation ssim(
      ShardedSimulation::Options{3, Duration::ms(1.0), 64, false});
  int fired = 0;
  ssim.shard(1).schedule_at(TimePoint::at_ms(5.0), [&] { ++fired; });
  ssim.shard(2).schedule_at(TimePoint::at_ms(50.0), [&] { ++fired; });
  EXPECT_EQ(ssim.run_until(TimePoint::at_ms(20.0)), 1u);
  EXPECT_EQ(fired, 1);
  for (ShardId s = 0; s < 3; ++s) {
    EXPECT_DOUBLE_EQ(ssim.shard(s).now().to_ms(), 20.0);
  }
  EXPECT_EQ(ssim.run(), 1u);
  EXPECT_EQ(fired, 2);
}

TEST(ShardedSimulationTest, FastForwardsOverIdleGaps) {
  // Two events 10 seconds apart with a 0.1 ms epoch: the window
  // scheduler must jump the gap instead of grinding 100k empty epochs.
  ShardedSimulation ssim(
      ShardedSimulation::Options{2, Duration::micros(100.0), 64, false});
  int fired = 0;
  ssim.shard(0).schedule_at(TimePoint::at_ms(1.0), [&] { ++fired; });
  ssim.shard(1).schedule_at(TimePoint::at_ms(10'000.0), [&] { ++fired; });
  EXPECT_EQ(ssim.run(), 2u);
  EXPECT_EQ(fired, 2);
}

TEST(ShardedSimulationTest, ErrorInParallelShardPropagates) {
  ShardedSimulation ssim(
      ShardedSimulation::Options{2, Duration::ms(1.0), 64, true});
  ssim.shard(1).schedule_at(TimePoint::at_ms(1.0),
                            [] { throw Error("shard boom"); });
  ssim.shard(0).schedule_at(TimePoint::at_ms(0.5), [] {});
  EXPECT_THROW(ssim.run(), Error);
}

}  // namespace
}  // namespace xartrek::sim
