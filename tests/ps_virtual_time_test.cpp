// Property tests pinning the virtual-time PsResource to the contract of
// the original per-job-decrement formulation: identical completion
// times, identical same-instant completion order, conserved delivered
// work -- under interleaved submit/cancel storms.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "sim/ps_resource.hpp"
#include "sim/simulation.hpp"

namespace xartrek::sim {
namespace {

// --- reference model: the pre-refactor O(resident jobs) design -------------
//
// A faithful replica of the seed PsResource: ordered map of jobs, every
// submit/cancel/tick charges elapsed service to *each* resident job.
// Completion ties resolve in id (submission) order.  The virtual-time
// implementation must reproduce its observable behavior exactly.
class ModelPs {
 public:
  using JobId = std::uint64_t;
  using Callback = std::function<void()>;

  ModelPs(Simulation& sim, double capacity, double per_job_cap)
      : sim_(sim),
        capacity_(capacity),
        per_job_cap_(per_job_cap),
        last_advance_(sim.now()) {}

  JobId submit(double demand, Callback on_complete) {
    advance();
    const JobId id = next_id_++;
    jobs_.emplace(id, Job{demand, std::move(on_complete)});
    reschedule();
    return id;
  }

  bool cancel(JobId id) {
    auto it = jobs_.find(id);
    if (it == jobs_.end()) return false;
    advance();
    jobs_.erase(it);
    reschedule();
    return true;
  }

  [[nodiscard]] double delivered_work() const {
    const double elapsed = (sim_.now() - last_advance_).to_ms();
    const double rate = rate_per_job(jobs_.size());
    return delivered_ + elapsed * rate * static_cast<double>(jobs_.size());
  }

  [[nodiscard]] std::size_t active_jobs() const { return jobs_.size(); }

 private:
  struct Job {
    double remaining;
    Callback on_complete;
  };

  [[nodiscard]] double rate_per_job(std::size_t n) const {
    if (n == 0) return 0.0;
    const double fair = capacity_ / static_cast<double>(n);
    return fair < per_job_cap_ ? fair : per_job_cap_;
  }

  void advance() {
    const double elapsed = (sim_.now() - last_advance_).to_ms();
    last_advance_ = sim_.now();
    if (elapsed <= 0.0 || jobs_.empty()) return;
    const double served = elapsed * rate_per_job(jobs_.size());
    delivered_ += served * static_cast<double>(jobs_.size());
    for (auto& [id, job] : jobs_) {
      job.remaining -= served;
      if (job.remaining < 0.0) job.remaining = 0.0;
    }
  }

  void reschedule() {
    pending_.cancel();
    if (jobs_.empty()) return;
    double min_remaining = jobs_.begin()->second.remaining;
    for (const auto& [id, job] : jobs_) {
      if (job.remaining < min_remaining) min_remaining = job.remaining;
    }
    const double rate = rate_per_job(jobs_.size());
    const Duration dt = Duration::ms(min_remaining / rate);
    pending_ = sim_.schedule_in(dt, [this] { on_tick(); });
  }

  void on_tick() {
    advance();
    std::vector<Callback> done;
    for (auto it = jobs_.begin(); it != jobs_.end();) {
      if (it->second.remaining <= 1e-9) {
        done.push_back(std::move(it->second.on_complete));
        it = jobs_.erase(it);
      } else {
        ++it;
      }
    }
    reschedule();
    for (auto& cb : done) cb();
  }

  Simulation& sim_;
  double capacity_;
  double per_job_cap_;
  std::map<JobId, Job> jobs_;
  JobId next_id_ = 1;
  TimePoint last_advance_;
  double delivered_ = 0.0;
  Simulation::EventHandle pending_;
};

/// One recorded completion: (sim time, storm-level job tag).
using Trace = std::vector<std::pair<double, int>>;

/// A randomized submit/cancel storm, replayable against either
/// implementation.  Drives submissions at random times with random
/// demands, and cancels a random earlier-submitted job ~30% of the time.
struct StormScript {
  struct Submission {
    double at_ms;
    double demand;
    int tag;
  };
  struct Cancellation {
    double at_ms;
    int victim_tag;  ///< cancel the job submitted with this tag
  };
  std::vector<Submission> submissions;
  std::vector<Cancellation> cancellations;

  static StormScript random(std::uint64_t seed, int jobs) {
    Rng rng(seed);
    StormScript s;
    for (int i = 0; i < jobs; ++i) {
      // Coarse timestamps force plenty of same-instant submissions.
      const double at = static_cast<double>(rng.uniform_int(0, 40));
      // Small demand range forces plenty of same-instant completions.
      const double demand = 5.0 * static_cast<double>(rng.uniform_int(1, 6));
      s.submissions.push_back({at, demand, i});
      if (i > 0 && rng.bernoulli(0.3)) {
        const int victim =
            static_cast<int>(rng.uniform_int(0, static_cast<int>(i) - 1));
        s.cancellations.push_back(
            {at + static_cast<double>(rng.uniform_int(0, 20)), victim});
      }
    }
    return s;
  }
};

/// Runs the storm against implementation `Ps`; returns the completion
/// trace and the final delivered work.
template <typename Ps>
std::pair<Trace, double> run_storm(const StormScript& script,
                                   double capacity, double per_job_cap) {
  Simulation sim;
  Ps ps(sim, capacity, per_job_cap);
  Trace trace;
  std::map<int, typename Ps::JobId> ids;
  for (const auto& sub : script.submissions) {
    sim.schedule_at(TimePoint::at_ms(sub.at_ms), [&ps, &trace, &ids, &sim,
                                                  sub] {
      ids[sub.tag] = ps.submit(sub.demand, [&trace, &sim, tag = sub.tag] {
        trace.emplace_back(sim.now().to_ms(), tag);
      });
    });
  }
  for (const auto& can : script.cancellations) {
    sim.schedule_at(TimePoint::at_ms(can.at_ms), [&ps, &ids, can] {
      const auto it = ids.find(can.victim_tag);
      if (it != ids.end()) (void)ps.cancel(it->second);
    });
  }
  sim.run();
  return {trace, ps.delivered_work()};
}

/// Adapter giving the real PsResource the two-double constructor the
/// template above expects.
class RealPs : public PsResource {
 public:
  RealPs(Simulation& sim, double capacity, double per_job_cap)
      : PsResource(sim, Config{"storm", capacity, per_job_cap}) {}
};

TEST(PsVirtualTimeTest, StormMatchesModelCompletionsAndOrder) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const StormScript script = StormScript::random(seed, 120);
    const auto [real_trace, real_work] = run_storm<RealPs>(script, 6.0, 1.0);
    const auto [model_trace, model_work] =
        run_storm<ModelPs>(script, 6.0, 1.0);

    ASSERT_EQ(real_trace.size(), model_trace.size()) << "seed " << seed;
    for (std::size_t i = 0; i < real_trace.size(); ++i) {
      // Same completion order (including same-instant ties), same time.
      EXPECT_EQ(real_trace[i].second, model_trace[i].second)
          << "seed " << seed << " completion " << i;
      EXPECT_NEAR(real_trace[i].first, model_trace[i].first, 1e-6)
          << "seed " << seed << " completion " << i;
    }
    EXPECT_NEAR(real_work, model_work, 1e-6 * (1.0 + model_work))
        << "seed " << seed;
  }
}

TEST(PsVirtualTimeTest, StormOnLinkSharingMatchesModel) {
  // per_job_cap == capacity: the link regime (one job can saturate).
  for (std::uint64_t seed = 20; seed <= 24; ++seed) {
    const StormScript script = StormScript::random(seed, 80);
    const auto [real_trace, real_work] = run_storm<RealPs>(script, 10.0, 10.0);
    const auto [model_trace, model_work] =
        run_storm<ModelPs>(script, 10.0, 10.0);
    ASSERT_EQ(real_trace.size(), model_trace.size()) << "seed " << seed;
    for (std::size_t i = 0; i < real_trace.size(); ++i) {
      EXPECT_EQ(real_trace[i].second, model_trace[i].second) << "seed "
                                                             << seed;
      EXPECT_NEAR(real_trace[i].first, model_trace[i].first, 1e-6);
    }
    EXPECT_NEAR(real_work, model_work, 1e-6 * (1.0 + model_work));
  }
}

TEST(PsVirtualTimeTest, DeliveredWorkConservedUnderCancellation) {
  // Delivered work must equal the sum of completed demands plus the
  // attained service of every cancelled job at its cancellation instant.
  Simulation sim;
  PsResource cpu(sim, {"cpu", 1.0, 1.0});
  double completed_demand = 0.0;

  // Two long jobs share the core; one is cancelled at t=10 having
  // attained 10 * 1/2 = 5 units.
  cpu.submit(100.0, [&] { completed_demand += 100.0; });
  const auto victim = cpu.submit(100.0, [] { ADD_FAILURE(); });
  sim.schedule_at(TimePoint::at_ms(10), [&] {
    EXPECT_TRUE(cpu.cancel(victim));
  });
  sim.run();
  EXPECT_NEAR(cpu.delivered_work(), completed_demand + 5.0, 1e-9);
}

TEST(PsVirtualTimeTest, SameInstantCompletionsFireInSubmissionOrder) {
  // Six identical jobs on a six-core cluster: all complete at the same
  // instant; order must be submission order.
  Simulation sim;
  PsResource cpu(sim, {"cpu", 6.0, 1.0});
  std::vector<int> order;
  for (int i = 0; i < 6; ++i) {
    cpu.submit(50.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(PsVirtualTimeTest, StaggeredJobsEngineeredToTieFollowSubmissionOrder) {
  // Capacity 2, cap 1: with <= 2 jobs each runs at full speed, so B
  // submitted at t=2 with demand 8 ties A (demand 10, t=0) at t=10.
  Simulation sim;
  PsResource cpu(sim, {"cpu", 2.0, 1.0});
  std::vector<char> order;
  cpu.submit(10.0, [&] { order.push_back('A'); });
  sim.schedule_at(TimePoint::at_ms(2), [&] {
    cpu.submit(8.0, [&] { order.push_back('B'); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(sim.now().to_ms(), 10.0);
  EXPECT_EQ(order, (std::vector<char>{'A', 'B'}));
}

TEST(PsVirtualTimeTest, StaleIdsNeverAliasRecycledSlots) {
  Simulation sim;
  PsResource cpu(sim, {"cpu", 4.0, 1.0});
  std::vector<PsResource::JobId> finished_ids;
  // Round 1: jobs complete, returning their slots to the free list.
  for (int i = 0; i < 8; ++i) {
    finished_ids.push_back(cpu.submit(1.0, [] {}));
  }
  sim.run();
  // Round 2: new jobs recycle those slots.
  int survivors = 0;
  for (int i = 0; i < 8; ++i) {
    cpu.submit(1.0, [&survivors] { ++survivors; });
  }
  // Stale ids (completed jobs) must not cancel the new occupants.
  for (const auto id : finished_ids) EXPECT_FALSE(cpu.cancel(id));
  sim.run();
  EXPECT_EQ(survivors, 8);
}

TEST(PsVirtualTimeTest, CancelledIdIsImmediatelyStale) {
  Simulation sim;
  PsResource cpu(sim, {"cpu", 1.0, 1.0});
  const auto id = cpu.submit(10.0, [] { ADD_FAILURE(); });
  EXPECT_TRUE(cpu.cancel(id));
  EXPECT_FALSE(cpu.cancel(id));  // double cancel: stale
  // The recycled slot's next occupant is untouchable through the old id.
  bool fired = false;
  cpu.submit(1.0, [&fired] { fired = true; });
  EXPECT_FALSE(cpu.cancel(id));
  sim.run();
  EXPECT_TRUE(fired);
}

TEST(PsVirtualTimeTest, RemainingDemandConsistentAfterRateChanges) {
  Simulation sim;
  PsResource cpu(sim, {"cpu", 1.0, 1.0});
  const auto a = cpu.submit(100.0, [] {});
  // t in [0,10): alone at rate 1.  t in [10,30): shared at rate 1/2.
  sim.schedule_at(TimePoint::at_ms(10), [&] {
    cpu.submit(10.0, [] {});
    EXPECT_NEAR(cpu.remaining_demand(a), 90.0, 1e-9);
  });
  sim.schedule_at(TimePoint::at_ms(20), [&] {
    EXPECT_NEAR(cpu.remaining_demand(a), 85.0, 1e-9);
  });
  sim.run();
}

TEST(PsVirtualTimeTest, HundredThousandResidentJobsDrainCorrectly) {
  // A smoke-scale version of the Fig. 5 sweep: O(log n) bookkeeping has
  // to survive six-digit residency with exact accounting.
  Simulation sim;
  PsResource cpu(sim, {"cpu", 6.0, 1.0});
  cpu.reserve_jobs(100'000);
  std::size_t completions = 0;
  double total_demand = 0.0;
  for (int i = 0; i < 100'000; ++i) {
    const double demand = 1.0 + (i % 7);
    total_demand += demand;
    cpu.submit(demand, [&completions] { ++completions; });
  }
  EXPECT_EQ(cpu.active_jobs(), 100'000u);
  sim.run();
  EXPECT_EQ(completions, 100'000u);
  EXPECT_EQ(cpu.active_jobs(), 0u);
  EXPECT_NEAR(cpu.delivered_work(), total_demand,
              1e-9 * total_demand);
}

}  // namespace
}  // namespace xartrek::sim
