// Tests for the heterogeneous-ISA substrate: ISA descriptions, symbol
// alignment, machine state, cross-ISA state transformation, DSM, and
// the multi-ISA binary model.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "hw/link.hpp"
#include "isa/isa.hpp"
#include "isa/symbol.hpp"
#include "popcorn/dsm.hpp"
#include "popcorn/machine_state.hpp"
#include "popcorn/metadata.hpp"
#include "popcorn/migration_runtime.hpp"
#include "popcorn/multi_isa_binary.hpp"
#include "popcorn/state_transform.hpp"
#include "sim/simulation.hpp"

namespace xartrek {
namespace {

using isa::IsaKind;
using popcorn::ValueLocation;
using popcorn::ValueType;

TEST(IsaTest, RegisterFiles) {
  const auto& x86 = isa::x86_64_info();
  EXPECT_TRUE(x86.has_register("rax"));
  EXPECT_TRUE(x86.has_register("r15"));
  EXPECT_FALSE(x86.has_register("x0"));
  EXPECT_TRUE(x86.is_callee_saved("rbx"));
  EXPECT_FALSE(x86.is_callee_saved("rax"));

  const auto& arm = isa::aarch64_info();
  EXPECT_TRUE(arm.has_register("x0"));
  EXPECT_TRUE(arm.has_register("x30"));
  EXPECT_TRUE(arm.has_register("sp"));
  EXPECT_TRUE(arm.is_callee_saved("x19"));
  EXPECT_FALSE(arm.is_callee_saved("x0"));
}

TEST(IsaTest, CallingConventions) {
  EXPECT_EQ(isa::x86_64_info().cc.integer_arg_regs.size(), 6u);
  EXPECT_EQ(isa::aarch64_info().cc.integer_arg_regs.size(), 8u);
  EXPECT_EQ(isa::x86_64_info().cc.integer_ret_reg, "rax");
  EXPECT_EQ(isa::aarch64_info().cc.integer_ret_reg, "x0");
  EXPECT_TRUE(isa::x86_64_info().cc.link_register.empty());
  EXPECT_EQ(isa::aarch64_info().cc.link_register, "x30");
}

TEST(IsaTest, CodeDensityDiffers) {
  // The RISC target emits more bytes per IR op -- the root of multi-ISA
  // alignment padding.
  EXPECT_LT(isa::x86_64_info().code_bytes_per_op,
            isa::aarch64_info().code_bytes_per_op);
}

// --- Symbol alignment --------------------------------------------------

isa::Symbol sym(const std::string& name, isa::Section sec,
                std::uint64_t x86_size, std::uint64_t arm_size,
                std::uint64_t align = 16) {
  isa::Symbol s;
  s.name = name;
  s.section = sec;
  s.alignment = align;
  s.size_by_isa[IsaKind::kX86_64] = x86_size;
  s.size_by_isa[IsaKind::kAarch64] = arm_size;
  return s;
}

TEST(SymbolAlignTest, IdenticalAddressesAcrossIsas) {
  const std::vector<isa::Symbol> symbols = {
      sym("main", isa::Section::kText, 100, 130),
      sym("kernel", isa::Section::kText, 400, 470),
      sym("table", isa::Section::kData, 64, 64),
  };
  const auto layout = isa::align_symbols(symbols, isa::all_isas());
  // One address per symbol -- valid for every ISA by construction.
  EXPECT_EQ(layout.vaddr_of.size(), 3u);
  EXPECT_EQ(layout.address_of("main") % 16, 0u);
  EXPECT_EQ(layout.address_of("kernel") % 16, 0u);
  // Padding charged to the denser ISA (x86 images are smaller).
  EXPECT_GT(layout.padding_bytes.at(IsaKind::kX86_64),
            layout.padding_bytes.at(IsaKind::kAarch64));
}

TEST(SymbolAlignTest, SectionOrderTextBeforeData) {
  const std::vector<isa::Symbol> symbols = {
      sym("globals", isa::Section::kData, 64, 64),
      sym("main", isa::Section::kText, 100, 100),
  };
  const auto layout = isa::align_symbols(symbols, isa::all_isas());
  EXPECT_LT(layout.address_of("main"), layout.address_of("globals"));
}

TEST(SymbolAlignTest, RejectsDuplicatesAndBadAlignment) {
  std::vector<isa::Symbol> dup = {
      sym("a", isa::Section::kText, 10, 10),
      sym("a", isa::Section::kText, 20, 20),
  };
  EXPECT_THROW(isa::align_symbols(dup, isa::all_isas()), Error);
  std::vector<isa::Symbol> bad = {sym("b", isa::Section::kText, 10, 10, 3)};
  EXPECT_THROW(isa::align_symbols(bad, isa::all_isas()), Error);
}

// Property: no two symbols overlap, addresses respect alignment, and the
// window reserved for each symbol covers its largest per-ISA size.
class SymbolAlignPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SymbolAlignPropertyTest, NonOverlappingAlignedWindows) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<isa::Symbol> symbols;
  const isa::Section sections[] = {isa::Section::kText,
                                   isa::Section::kRodata,
                                   isa::Section::kData, isa::Section::kBss};
  for (int i = 0; i < 40; ++i) {
    const std::uint64_t align = 1ull << rng.uniform_int(0, 6);
    symbols.push_back(sym("s" + std::to_string(i),
                          sections[rng.pick_index(4)],
                          static_cast<std::uint64_t>(rng.uniform_int(1, 4096)),
                          static_cast<std::uint64_t>(rng.uniform_int(1, 4096)),
                          align));
  }
  const auto layout = isa::align_symbols(symbols, isa::all_isas());

  std::vector<std::pair<std::uint64_t, std::uint64_t>> windows;
  for (const auto& s : symbols) {
    const std::uint64_t addr = layout.address_of(s.name);
    EXPECT_EQ(addr % s.alignment, 0u) << s.name;
    windows.emplace_back(addr, addr + s.max_size());
  }
  std::sort(windows.begin(), windows.end());
  for (std::size_t i = 1; i < windows.size(); ++i) {
    EXPECT_LE(windows[i - 1].second, windows[i].first) << "overlap at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SymbolAlignPropertyTest,
                         ::testing::Range(1, 9));

// --- Machine state -----------------------------------------------------

TEST(MachineStateTest, RegisterReadWrite) {
  popcorn::MachineState st(IsaKind::kX86_64, "f", 0, 64);
  st.write_register("rdi", 0xDEADBEEF);
  EXPECT_EQ(st.read_register("rdi"), 0xDEADBEEFu);
  EXPECT_EQ(st.read_register("rsi"), 0u);  // never written -> 0
  EXPECT_THROW(st.write_register("x0", 1), Error);  // wrong ISA
  EXPECT_THROW(st.read_register("x5"), Error);
}

TEST(MachineStateTest, StackLittleEndianRoundTrip) {
  popcorn::MachineState st(IsaKind::kAarch64, "f", 0, 32);
  st.write_stack(8, 8, 0x0102030405060708ull);
  EXPECT_EQ(st.read_stack(8, 8), 0x0102030405060708ull);
  EXPECT_EQ(st.read_stack(8, 1), 0x08u);   // low byte first
  EXPECT_EQ(st.read_stack(15, 1), 0x01u);  // high byte last
  EXPECT_THROW(st.read_stack(30, 8), Error);  // past frame end
}

TEST(MachineStateTest, TypeMasking) {
  EXPECT_EQ(popcorn::mask_to_type(0xFFFF'FFFF'FFFF'FFFFull, ValueType::kI8),
            0xFFull);
  EXPECT_EQ(popcorn::mask_to_type(0x1234'5678'9ABC'DEF0ull, ValueType::kI32),
            0x9ABC'DEF0ull);
  EXPECT_EQ(popcorn::mask_to_type(0x1234'5678'9ABC'DEF0ull, ValueType::kPtr),
            0x1234'5678'9ABC'DEF0ull);
}

// --- State transformation ----------------------------------------------

popcorn::MigrationMetadata one_site_metadata() {
  popcorn::CallSiteMetadata site;
  site.function = "hot";
  site.site_id = 1;
  site.frame_size[IsaKind::kX86_64] = 96;
  site.frame_size[IsaKind::kAarch64] = 112;

  popcorn::LiveValue a;
  a.name = "a";
  a.type = ValueType::kI64;
  a.location[IsaKind::kX86_64] = ValueLocation::in_register("rdi");
  a.location[IsaKind::kAarch64] = ValueLocation::in_register("x0");
  site.live_values.push_back(a);

  popcorn::LiveValue b;
  b.name = "b";
  b.type = ValueType::kF64;
  b.location[IsaKind::kX86_64] = ValueLocation::on_stack(16);
  b.location[IsaKind::kAarch64] = ValueLocation::on_stack(24);
  site.live_values.push_back(b);

  popcorn::LiveValue c;
  c.name = "c";
  c.type = ValueType::kI32;
  c.location[IsaKind::kX86_64] = ValueLocation::on_stack(40);
  c.location[IsaKind::kAarch64] = ValueLocation::in_register("x7");
  site.live_values.push_back(c);

  popcorn::MigrationMetadata md;
  md.add_site(site);
  return md;
}

TEST(StateTransformTest, ValuesRelocateAcrossFormats) {
  const auto md = one_site_metadata();
  const popcorn::StateTransformer transformer(md);

  popcorn::MachineState x86(IsaKind::kX86_64, "hot", 1, 96);
  x86.write_register("rdi", 42);
  x86.write_stack(16, 8, 0x400921FB54442D18ull);  // pi as raw f64 bits
  x86.write_stack(40, 4, 1234);

  const auto arm = transformer.transform(x86, IsaKind::kAarch64);
  EXPECT_EQ(arm.isa(), IsaKind::kAarch64);
  EXPECT_EQ(arm.frame_size(), 112u);
  EXPECT_EQ(arm.read_register("x0"), 42u);
  EXPECT_EQ(arm.read_stack(24, 8), 0x400921FB54442D18ull);
  EXPECT_EQ(arm.read_register("x7"), 1234u);
  // ABI anchors established.
  EXPECT_NE(arm.read_register("sp"), 0u);
  EXPECT_NE(arm.read_register("x29"), 0u);
}

TEST(StateTransformTest, RoundTripPreservesLiveValues) {
  const auto md = one_site_metadata();
  const popcorn::StateTransformer transformer(md);

  popcorn::MachineState x86(IsaKind::kX86_64, "hot", 1, 96);
  x86.write_register("rdi", 777);
  x86.write_stack(16, 8, 0xCAFEBABE12345678ull);
  x86.write_stack(40, 4, 99);

  const auto arm = transformer.transform(x86, IsaKind::kAarch64);
  const auto back = transformer.transform(arm, IsaKind::kX86_64);
  EXPECT_EQ(back.read_register("rdi"), 777u);
  EXPECT_EQ(back.read_stack(16, 8), 0xCAFEBABE12345678ull);
  EXPECT_EQ(back.read_stack(40, 4), 99u);
}

TEST(StateTransformTest, UnknownSiteThrows) {
  const auto md = one_site_metadata();
  const popcorn::StateTransformer transformer(md);
  popcorn::MachineState st(IsaKind::kX86_64, "unknown_fn", 7, 64);
  EXPECT_THROW(transformer.transform(st, IsaKind::kAarch64), Error);
}

TEST(StateTransformTest, CostGrowsWithLiveValues) {
  popcorn::MigrationMetadata small_md;
  popcorn::CallSiteMetadata small;
  small.function = "f";
  small.site_id = 0;
  small.frame_size[IsaKind::kX86_64] = 32;
  small.frame_size[IsaKind::kAarch64] = 32;
  small_md.add_site(small);

  popcorn::MigrationMetadata big_md;
  popcorn::CallSiteMetadata big = small;
  for (int i = 0; i < 50; ++i) {
    popcorn::LiveValue v;
    v.name = "v" + std::to_string(i);
    v.type = ValueType::kI64;
    v.location[IsaKind::kX86_64] = ValueLocation::on_stack(0);
    v.location[IsaKind::kAarch64] = ValueLocation::on_stack(0);
    big.live_values.push_back(v);
  }
  big_md.add_site(big);

  popcorn::MachineState st_small(IsaKind::kX86_64, "f", 0, 32);
  popcorn::MachineState st_big(IsaKind::kX86_64, "f", 0, 32);
  EXPECT_LT(popcorn::StateTransformer(small_md).transform_cost(st_small),
            popcorn::StateTransformer(big_md).transform_cost(st_big));
}

// Property: every primitive type survives a round trip through both
// frame formats at several frame offsets.
class TransformTypeTest : public ::testing::TestWithParam<ValueType> {};

TEST_P(TransformTypeTest, RoundTripByType) {
  const ValueType type = GetParam();
  popcorn::CallSiteMetadata site;
  site.function = "g";
  site.site_id = 0;
  site.frame_size[IsaKind::kX86_64] = 64;
  site.frame_size[IsaKind::kAarch64] = 80;
  popcorn::LiveValue v;
  v.name = "v";
  v.type = type;
  v.location[IsaKind::kX86_64] = ValueLocation::on_stack(8);
  v.location[IsaKind::kAarch64] = ValueLocation::on_stack(48);
  site.live_values.push_back(v);
  popcorn::MigrationMetadata md;
  md.add_site(site);
  const popcorn::StateTransformer transformer(md);

  popcorn::MachineState x86(IsaKind::kX86_64, "g", 0, 64);
  const std::uint64_t pattern = 0xA5A5'5A5A'C3C3'3C3Cull;
  const std::uint64_t expect = popcorn::mask_to_type(pattern, type);
  x86.write_stack(8, popcorn::size_of(type), expect);

  const auto arm = transformer.transform(x86, IsaKind::kAarch64);
  EXPECT_EQ(arm.read_stack(48, popcorn::size_of(type)), expect);
  const auto back = transformer.transform(arm, IsaKind::kX86_64);
  EXPECT_EQ(back.read_stack(8, popcorn::size_of(type)), expect);
}

INSTANTIATE_TEST_SUITE_P(AllTypes, TransformTypeTest,
                         ::testing::Values(ValueType::kI8, ValueType::kI16,
                                           ValueType::kI32, ValueType::kI64,
                                           ValueType::kF32, ValueType::kF64,
                                           ValueType::kPtr));

// --- Metadata ----------------------------------------------------------

TEST(MetadataTest, FindAndDuplicateRejection) {
  auto md = one_site_metadata();
  EXPECT_NE(md.find("hot", 1), nullptr);
  EXPECT_EQ(md.find("hot", 2), nullptr);
  EXPECT_EQ(md.find("cold", 1), nullptr);
  popcorn::CallSiteMetadata dup;
  dup.function = "hot";
  dup.site_id = 1;
  EXPECT_THROW(md.add_site(dup), ContractViolation);
}

TEST(MetadataTest, EncodedSizeScalesWithContent) {
  const auto md = one_site_metadata();
  // 1 site header (32) + 3 values x 2 ISA locations x 16 bytes.
  EXPECT_EQ(md.encoded_size_bytes(), 32u + 3 * 2 * 16);
}

// --- Multi-ISA binary ---------------------------------------------------

TEST(MultiIsaBinaryTest, FatBinaryBiggerThanSingleIsa) {
  std::map<IsaKind, popcorn::SectionSizes> sections;
  sections[IsaKind::kX86_64] = {100'000, 10'000, 5'000, 2'000};
  sections[IsaKind::kAarch64] = {118'000, 10'000, 5'000, 2'000};
  const auto layout = isa::align_symbols(
      {sym("blob", isa::Section::kText, 100'000, 118'000)}, isa::all_isas());
  popcorn::MultiIsaBinary fat("app", isa::all_isas(), sections, layout,
                              one_site_metadata());
  EXPECT_GT(fat.file_bytes(), fat.single_isa_file_bytes(IsaKind::kX86_64));
  EXPECT_GT(fat.file_bytes(),
            fat.image_file_bytes(IsaKind::kX86_64) +
                fat.image_file_bytes(IsaKind::kAarch64));  // ELF overhead
  // bss costs no file space.
  EXPECT_EQ(fat.sections_for(IsaKind::kX86_64).file_bytes(), 115'000u);
}

// --- DSM ----------------------------------------------------------------

struct DsmFixture : ::testing::Test {
  sim::Simulation sim;
  hw::Link eth{sim, hw::ethernet_1gbps()};
  popcorn::Dsm dsm{sim, eth, popcorn::Dsm::Config{2, 64 * 1024, 4096}};
};

TEST_F(DsmFixture, InitialOwnershipAtNodeZero) {
  EXPECT_EQ(dsm.page_state(0, 0), popcorn::PageState::kModified);
  EXPECT_EQ(dsm.page_state(1, 0), popcorn::PageState::kInvalid);
  dsm.check_invariants();
}

TEST_F(DsmFixture, RemoteReadPullsPageAndShares) {
  std::vector<std::byte> seen;
  dsm.write(0, 100, {std::byte{0xAB}, std::byte{0xCD}}, [] {});
  dsm.read(1, 100, 2, [&](std::vector<std::byte> bytes) {
    seen = std::move(bytes);
  });
  sim.run();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], std::byte{0xAB});
  EXPECT_EQ(seen[1], std::byte{0xCD});
  EXPECT_EQ(dsm.page_state(0, 0), popcorn::PageState::kShared);
  EXPECT_EQ(dsm.page_state(1, 0), popcorn::PageState::kShared);
  EXPECT_EQ(dsm.stats().page_transfers, 1u);
  dsm.check_invariants();
}

TEST_F(DsmFixture, RemoteWriteInvalidatesOtherCopies) {
  dsm.read(1, 0, 8, [](std::vector<std::byte>) {});  // share page 0
  sim.run();
  dsm.write(1, 0, {std::byte{0x7F}}, [] {});
  sim.run();
  EXPECT_EQ(dsm.page_state(1, 0), popcorn::PageState::kModified);
  EXPECT_EQ(dsm.page_state(0, 0), popcorn::PageState::kInvalid);
  EXPECT_GE(dsm.stats().invalidations, 1u);
  dsm.check_invariants();
  // Node 0 reading again pulls the fresh data back.
  std::vector<std::byte> seen;
  dsm.read(0, 0, 1, [&](std::vector<std::byte> b) { seen = std::move(b); });
  sim.run();
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], std::byte{0x7F});
  dsm.check_invariants();
}

TEST_F(DsmFixture, CrossPageWriteAcquiresAllPages) {
  const std::uint64_t addr = 4096 - 2;  // spans pages 0 and 1
  dsm.write(1, addr, std::vector<std::byte>(4, std::byte{0x11}), [] {});
  sim.run();
  EXPECT_EQ(dsm.page_state(1, 0), popcorn::PageState::kModified);
  EXPECT_EQ(dsm.page_state(1, 1), popcorn::PageState::kModified);
  dsm.check_invariants();
  std::vector<std::byte> seen;
  dsm.read(0, addr, 4, [&](std::vector<std::byte> b) { seen = std::move(b); });
  sim.run();
  for (auto b : seen) EXPECT_EQ(b, std::byte{0x11});
}

TEST_F(DsmFixture, LocalHitsAreFree) {
  dsm.read(0, 0, 16, [](std::vector<std::byte>) {});
  sim.run();
  EXPECT_EQ(dsm.stats().page_transfers, 0u);
  EXPECT_GE(dsm.stats().local_page_hits, 1u);
  EXPECT_DOUBLE_EQ(sim.now().to_ms(), 0.0);  // zero-latency local access
}

TEST_F(DsmFixture, PageTransferChargesTheLink) {
  dsm.read(1, 0, 1, [](std::vector<std::byte>) {});
  sim.run();
  // One 4 KiB page at 0.125 MB/ms + 0.12 ms latency ~= 0.151 ms.
  EXPECT_NEAR(sim.now().to_ms(), 0.151, 0.01);
}

// --- Migration runtime ---------------------------------------------------

TEST(MigrationRuntimeTest, TransformsAndTransfers) {
  sim::Simulation sim;
  hw::Link eth(sim, hw::ethernet_1gbps());
  const auto md = one_site_metadata();
  const popcorn::StateTransformer transformer(md);
  popcorn::MigrationRuntime runtime(sim, eth, transformer);

  popcorn::MachineState x86(IsaKind::kX86_64, "hot", 1, 96);
  x86.write_register("rdi", 5);

  bool arrived = false;
  runtime.migrate(x86, IsaKind::kAarch64, 1024 * 1024,
                  [&](popcorn::MachineState st) {
                    arrived = true;
                    EXPECT_EQ(st.isa(), IsaKind::kAarch64);
                    EXPECT_EQ(st.read_register("x0"), 5u);
                  });
  sim.run();
  EXPECT_TRUE(arrived);
  EXPECT_EQ(runtime.migrations(), 1u);
  // ~1 MiB payload at 0.125 MB/ms: at least 8 ms elapsed.
  EXPECT_GT(sim.now().to_ms(), 8.0);
}

}  // namespace
}  // namespace xartrek
