// Tests for the Xar-Trek compiler pipeline (steps A-F) and the
// binary-size model.
#include <gtest/gtest.h>

#include <sstream>

#include "apps/benchmark_spec.hpp"
#include "compiler/app_ir.hpp"
#include "compiler/instrumenter.hpp"
#include "compiler/multi_isa_builder.hpp"
#include "compiler/profile_spec.hpp"
#include "compiler/size_model.hpp"
#include "compiler/xar_compiler.hpp"
#include "compiler/xo_generator.hpp"

namespace xartrek::compiler {
namespace {

// --- Step A: profile spec -----------------------------------------------

constexpr const char* kSpecText = R"(# demo spec
platform alveo-u50
application facedet320
  function detect_faces kernel KNL_HW_FD320 input_bytes 76800 output_bytes 4096 items 1
end
application digit500
  function digitrec_kernel kernel KNL_HW_DR500 input_bytes 592000 output_bytes 2048 items 500
end
)";

TEST(ProfileSpecTest, ParsesWellFormedSpec) {
  const auto spec = ProfileSpec::parse_string(kSpecText);
  EXPECT_EQ(spec.platform, "alveo-u50");
  ASSERT_EQ(spec.applications.size(), 2u);
  const auto* app = spec.find_application("facedet320");
  ASSERT_NE(app, nullptr);
  const auto* fn = app->find("detect_faces");
  ASSERT_NE(fn, nullptr);
  EXPECT_EQ(fn->kernel_name, "KNL_HW_FD320");
  EXPECT_EQ(fn->input_bytes, 76'800u);
  EXPECT_EQ(fn->items_per_call, 1u);
  const auto* digit = spec.find_application("digit500");
  ASSERT_NE(digit, nullptr);
  EXPECT_EQ(digit->functions[0].items_per_call, 500u);
}

TEST(ProfileSpecTest, RoundTripsThroughSerialize) {
  const auto spec = ProfileSpec::parse_string(kSpecText);
  const auto again = ProfileSpec::parse_string(spec.serialize());
  EXPECT_EQ(again.platform, spec.platform);
  ASSERT_EQ(again.applications.size(), spec.applications.size());
  for (std::size_t i = 0; i < spec.applications.size(); ++i) {
    EXPECT_EQ(again.applications[i].name, spec.applications[i].name);
    ASSERT_EQ(again.applications[i].functions.size(),
              spec.applications[i].functions.size());
    EXPECT_EQ(again.applications[i].functions[0].kernel_name,
              spec.applications[i].functions[0].kernel_name);
  }
}

// Malformed inputs: each must throw with a line-numbered message.
class ProfileSpecErrorTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(ProfileSpecErrorTest, RejectsMalformedInput) {
  try {
    (void)ProfileSpec::parse_string(GetParam());
    FAIL() << "expected parse failure for: " << GetParam();
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line"), std::string::npos);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ProfileSpecErrorTest,
    ::testing::Values(
        "application a\n  function f kernel K\nend\n",         // no platform
        "platform p\napplication a\nend\n",                    // no functions
        "platform p\napplication a\n  function f\nend\n",      // no kernel
        "platform p\napplication a\n  function f kernel K\n",  // no end
        "platform p\nbogus keyword\n",                         // unknown kw
        "platform p\napplication a\n  function f kernel K\n"
        "  function f kernel K2\nend\n",                       // dup function
        "platform p\napplication a\napplication b\n",          // nested app
        "platform p\nend\n",                                   // stray end
        "platform p\napplication a\n"
        "  function f kernel K items 0\nend\n"));               // bad items

// --- Step B: instrumentation ---------------------------------------------

ApplicationProfile demo_profile() {
  ApplicationProfile profile;
  profile.name = "demo";
  SelectedFunction fn;
  fn.function = "hot";
  fn.kernel_name = "KNL_HOT";
  fn.input_bytes = 1024;
  fn.output_bytes = 64;
  profile.functions.push_back(fn);
  return profile;
}

TEST(InstrumenterTest, InsertsHooksAndDispatch) {
  const auto ir = make_app_ir("demo", "hot", 400, 150);
  const Instrumenter pass;
  const auto out = pass.instrument(ir, demo_profile());

  EXPECT_EQ(out.count(Insertion::Kind::kSchedulerClientInit), 1u);
  EXPECT_EQ(out.count(Insertion::Kind::kFpgaPreconfigure), 1u);
  EXPECT_EQ(out.count(Insertion::Kind::kSchedulerClientFini), 1u);
  EXPECT_EQ(out.count(Insertion::Kind::kDispatchRewrite), 1u);

  // main's first call sites are the client init then the FPGA configure;
  // the last is the client teardown.
  const IrFunction* main_fn = out.ir.find("main");
  ASSERT_NE(main_fn, nullptr);
  EXPECT_EQ(main_fn->call_sites.front().callee, "__xar_client_init");
  EXPECT_EQ(main_fn->call_sites[1].callee, "__xar_fpga_configure");
  EXPECT_EQ(main_fn->call_sites.back().callee, "__xar_client_fini");

  // The original hot call is redirected to the dispatch stub.
  bool direct_call_remains = false;
  for (const auto& site : main_fn->call_sites) {
    if (site.callee == "hot") direct_call_remains = true;
  }
  EXPECT_FALSE(direct_call_remains);
  ASSERT_EQ(out.dispatch_stubs.size(), 1u);
  EXPECT_EQ(out.dispatch_stubs[0], "__xar_dispatch_hot");
  const IrFunction* stub = out.ir.find("__xar_dispatch_hot");
  ASSERT_NE(stub, nullptr);
  // The stub calls the software original and the XRT offload path.
  EXPECT_EQ(stub->call_sites.size(), 2u);
}

TEST(InstrumenterTest, RejectsMissingMainOrFunction) {
  const Instrumenter pass;
  AppIr no_main;
  no_main.name = "x";
  EXPECT_THROW(pass.instrument(no_main, demo_profile()), Error);

  auto ir = make_app_ir("demo", "hot", 400, 150);
  ApplicationProfile bad = demo_profile();
  bad.functions[0].function = "missing_fn";
  EXPECT_THROW(pass.instrument(ir, bad), Error);
}

TEST(InstrumenterTest, RejectsNonSelfContainedSelection) {
  auto ir = make_app_ir("demo", "hot", 400, 150);
  // Make `hot` call something: Vitis-style synthesis must refuse.
  ir.find_mutable("hot")->call_sites.push_back(IrCallSite{"helper", 0});
  const Instrumenter pass;
  EXPECT_THROW(pass.instrument(ir, demo_profile()), Error);
}

// --- Step C: multi-ISA build ----------------------------------------------

TEST(MultiIsaBuilderTest, FatBinaryCarriesBothIsas) {
  const auto ir = make_app_ir("demo", "hot", 400, 150);
  const MultiIsaBuilder builder;
  const auto binary = builder.build(ir);
  EXPECT_EQ(binary.isas().size(), 2u);
  // ARM text is larger (lower code density), so its image is too.
  EXPECT_GT(binary.sections_for(isa::IsaKind::kAarch64).text,
            binary.sections_for(isa::IsaKind::kX86_64).text);
  // The fat binary beats any single image but not their sum + overheads.
  EXPECT_GT(binary.file_bytes(),
            binary.single_isa_file_bytes(isa::IsaKind::kX86_64));
}

TEST(MultiIsaBuilderTest, SymbolsShareAddressesAcrossIsas) {
  const auto ir = make_app_ir("demo", "hot", 400, 150);
  const MultiIsaBuilder builder;
  const auto binary = builder.build(ir);
  // One address per symbol by construction; every function is present.
  for (const auto& fn : ir.functions) {
    EXPECT_NO_THROW((void)binary.layout().address_of(fn.name));
  }
}

TEST(MultiIsaBuilderTest, MetadataCoversEveryCallSite) {
  auto ir = make_app_ir("demo", "hot", 400, 150);
  const Instrumenter pass;
  const auto instrumented = pass.instrument(ir, demo_profile());
  const MultiIsaBuilder builder;
  const auto metadata = builder.synthesize_metadata(instrumented.ir);
  for (const auto& fn : instrumented.ir.functions) {
    for (const auto& site : fn.call_sites) {
      EXPECT_NE(metadata.find(fn.name, site.site_id), nullptr)
          << fn.name << "@" << site.site_id;
    }
  }
}

TEST(MultiIsaBuilderTest, MetadataLocationsAreAbiValid) {
  const auto ir = make_app_ir("demo", "hot", 400, 150);
  const MultiIsaBuilder builder;
  const auto metadata = builder.synthesize_metadata(ir);
  for (const auto& site : metadata.sites()) {
    for (const auto& value : site.live_values) {
      for (const auto& [isa_kind, loc] : value.location) {
        if (loc.kind == popcorn::ValueLocation::Kind::kRegister) {
          EXPECT_TRUE(isa::info_for(isa_kind).has_register(loc.reg));
        } else {
          EXPECT_LE(loc.offset + popcorn::size_of(value.type),
                    site.frame_size_for(isa_kind));
        }
      }
    }
  }
}

// --- Step D and facade -----------------------------------------------------

TEST(XoGeneratorTest, MissingKernelProfileThrows) {
  const XoGenerator gen;
  const auto profile = demo_profile();
  EXPECT_THROW(gen.generate(profile, {}), Error);
}

TEST(XarCompilerTest, CompilesTheFiveBenchmarkSuite) {
  const auto specs = apps::paper_benchmarks();
  const XarCompiler xar;
  const auto suite = xar.compile(apps::make_profile_spec(specs),
                                 apps::make_irs(specs),
                                 apps::make_kernel_profiles(specs));
  ASSERT_EQ(suite.apps.size(), 5u);
  // All five kernels fit one XCLBIN on the U50 (no run-time thrash).
  ASSERT_EQ(suite.xclbins.size(), 1u);
  for (const auto& spec : specs) {
    EXPECT_NE(suite.xclbin_with(spec.kernel_name), nullptr)
        << spec.kernel_name;
    const auto* app = suite.find_app(spec.name);
    ASSERT_NE(app, nullptr);
    EXPECT_EQ(app->xos.size(), 1u);
    EXPECT_EQ(app->xos[0].kernel_name, spec.kernel_name);
  }
  EXPECT_EQ(suite.xclbin_with("NOPE"), nullptr);
}

TEST(XarCompilerTest, MissingIrThrows) {
  const auto specs = apps::paper_benchmarks();
  const XarCompiler xar;
  auto irs = apps::make_irs(specs);
  irs.erase("cg_a");
  EXPECT_THROW(xar.compile(apps::make_profile_spec(specs), irs,
                           apps::make_kernel_profiles(specs)),
               Error);
}

// --- Size model (Figure 10) -------------------------------------------------

TEST(SizeModelTest, TotalsOrderAsInPaper) {
  const auto specs = apps::paper_benchmarks();
  const XarCompiler xar;
  const auto suite = xar.compile(apps::make_profile_spec(specs),
                                 apps::make_irs(specs),
                                 apps::make_kernel_profiles(specs));
  const hls::XclbinBuilder builder(fpga::alveo_u50_spec());
  for (const auto& app : suite.apps) {
    const auto report = size_report(app, builder);
    // Xar-Trek subsumes both baselines (paper: always largest).
    EXPECT_GT(report.xartrek_total(), report.traditional_fpga_total());
    EXPECT_GT(report.xartrek_total(), report.popcorn_total());
    EXPECT_GT(report.multi_isa_executable, report.x86_executable);
    EXPECT_GT(report.migration_metadata, 0u);
    EXPECT_GT(report.alignment_padding, 0u);
    const double vs_fpga =
        report.increase_over(report.traditional_fpga_total());
    const double vs_popcorn = report.increase_over(report.popcorn_total());
    EXPECT_GT(vs_fpga, 0.0);
    EXPECT_GT(vs_popcorn, 0.0);
    // Within the paper's observed 33%-282% band, loosely.
    EXPECT_LT(vs_fpga, 400.0);
    EXPECT_LT(vs_popcorn, 400.0);
  }
}

TEST(SizeModelTest, CgHasLargestPopcornBinary) {
  // Paper §4.5: Popcorn's binary is largest for CG-A (900 LOC vs
  // 300-500).
  const auto specs = apps::paper_benchmarks();
  const XarCompiler xar;
  const auto suite = xar.compile(apps::make_profile_spec(specs),
                                 apps::make_irs(specs),
                                 apps::make_kernel_profiles(specs));
  const auto* cg = suite.find_app("cg_a");
  ASSERT_NE(cg, nullptr);
  for (const auto& app : suite.apps) {
    if (app.name == "cg_a") continue;
    EXPECT_GE(cg->binary.file_bytes(), app.binary.file_bytes()) << app.name;
  }
}

}  // namespace
}  // namespace xartrek::compiler
