// Observability layer: histogram percentile bounds vs exact statistics,
// registry snapshots and deltas, tracer span mechanics, and the
// cluster-level determinism contract -- serial and parallel gray-storm
// runs export byte-identical Perfetto traces and metrics snapshots, a
// sampling=0 tracer is a bit-identical no-op, and a drained job's spans
// stitch across cells.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "apps/benchmark_spec.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "exp/cluster.hpp"
#include "exp/threshold_estimator.hpp"
#include "obs/export.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "sim/fault.hpp"
#include "sim/shard.hpp"
#include "sim/simulation.hpp"

namespace xartrek {
namespace {

// --- histogram --------------------------------------------------------------

double exact_quantile(std::vector<double> sorted, double q) {
  const auto idx = static_cast<std::size_t>(std::ceil(
                       q * static_cast<double>(sorted.size()))) -
                   1;
  return sorted[std::min(idx, sorted.size() - 1)];
}

TEST(ObsHistogramTest, PercentileNeverOverestimatesAndErrorIsBounded) {
  obs::Histogram h;
  RunningStats exact;
  std::vector<double> values;
  Rng rng(0xBEEF);
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform over ~9 decades, exercising many octaves.
    const double v = std::exp(rng.uniform_real(-6.0, 14.0));
    h.record(v);
    exact.add(v);
    values.push_back(v);
  }
  std::sort(values.begin(), values.end());

  EXPECT_EQ(h.count(), exact.count());
  EXPECT_NEAR(h.sum(), exact.sum(), exact.sum() * 1e-12);
  EXPECT_DOUBLE_EQ(h.min(), exact.min());  // exact, not bucketed
  EXPECT_DOUBLE_EQ(h.max(), exact.max());

  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    const double est = h.percentile(q);
    const double truth = exact_quantile(values, q);
    // Lower-edge estimate: never above the true quantile, and at most
    // one sub-bucket (1/32, plus slack for the edge) below it.
    EXPECT_LE(est, truth) << "q=" << q;
    EXPECT_GE(est, truth * (1.0 - 2.0 / 32.0)) << "q=" << q;
  }
}

TEST(ObsHistogramTest, ExtremesLandInUnderflowAndOverflowBuckets) {
  obs::Histogram h;
  h.record(0.0);      // below 2^-10 ms
  h.record(1e300);    // above 2^26 ms
  h.record(-3.0);     // negative: underflow, never UB
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), -3.0);
  EXPECT_DOUBLE_EQ(h.max(), 1e300);
  // Percentiles stay inside the exact observed range.
  EXPECT_GE(h.percentile(0.5), h.min());
  EXPECT_LE(h.percentile(0.999), h.max());
}

TEST(ObsHistogramTest, LaneShardingMergesToTheSameBuckets) {
  obs::Histogram::Options opts;
  opts.lanes = 4;
  obs::Histogram sharded(opts);
  obs::Histogram single;
  Rng rng(7);
  for (int i = 0; i < 4000; ++i) {
    const double v = rng.uniform_real(0.001, 5000.0);
    sharded.record(static_cast<std::size_t>(i % 4), v);
    single.record(v);
  }
  EXPECT_EQ(sharded.count(), single.count());
  EXPECT_EQ(sharded.merged_buckets(), single.merged_buckets());
  EXPECT_DOUBLE_EQ(sharded.percentile(0.99), single.percentile(0.99));
}

// --- registry ---------------------------------------------------------------

TEST(ObsRegistryTest, CountersLinksProbesAndHistogramsSnapshotInOrder) {
  obs::Registry reg;
  obs::Registry::Counter* c = reg.counter("a.counter");
  std::uint64_t linked = 0;
  reg.link_counter("b.linked", &linked);
  double level = 0.0;
  reg.link_value("c.gauge", &level, obs::Registry::Kind::kGauge);
  reg.probe("d.probe", [] { return 42.0; });
  obs::Histogram* h = reg.histogram("e.hist");

  c->add(3);
  linked = 7;
  level = 1.5;
  h->record(10.0);

  const obs::Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.scalars.size(), 4u);
  EXPECT_EQ(snap.scalars[0].name, "a.counter");
  EXPECT_DOUBLE_EQ(snap.scalars[0].value, 3.0);
  EXPECT_EQ(snap.scalars[1].name, "b.linked");
  EXPECT_DOUBLE_EQ(snap.scalars[1].value, 7.0);
  EXPECT_EQ(snap.scalars[2].name, "c.gauge");
  EXPECT_DOUBLE_EQ(snap.scalars[2].value, 1.5);
  EXPECT_EQ(snap.scalars[3].name, "d.probe");
  EXPECT_DOUBLE_EQ(snap.scalars[3].value, 42.0);
  ASSERT_EQ(snap.hists.size(), 1u);
  EXPECT_EQ(snap.hists[0].count, 1u);
}

TEST(ObsRegistryTest, DeltaSubtractsCountersAndKeepsGauges) {
  obs::Registry reg;
  obs::Registry::Counter* c = reg.counter("events");
  double peak = 10.0;
  reg.link_value("peak", &peak, obs::Registry::Kind::kGauge);
  obs::Histogram* h = reg.histogram("lat");
  c->add(5);
  h->record(1.0);
  const obs::Snapshot before = reg.snapshot();
  c->add(2);
  peak = 12.0;
  h->record(100.0);
  h->record(100.0);
  const obs::Snapshot after = reg.snapshot();

  const obs::Snapshot d = after.delta(before);
  EXPECT_DOUBLE_EQ(d.scalars[0].value, 2.0);   // counter: subtracted
  EXPECT_DOUBLE_EQ(d.scalars[1].value, 12.0);  // gauge: later value
  ASSERT_EQ(d.hists.size(), 1u);
  EXPECT_EQ(d.hists[0].count, 2u);  // only the window's samples
  // The window's percentile reflects the window's values (both 100).
  EXPECT_LE(d.hists[0].p50, 100.0);
  EXPECT_GT(d.hists[0].p50, 50.0);
}

// --- tracer -----------------------------------------------------------------

TEST(ObsTracerTest, SpansSortDeterministicallyAndClearKeepsCapacity) {
  obs::Tracer tracer(2);
  ASSERT_TRUE(tracer.enabled());
  tracer.emit(1, obs::kTrackJob, "b", 2, TimePoint::at_ms(5.0),
              TimePoint::at_ms(9.0));
  const obs::SpanRef ref =
      tracer.begin(0, obs::kTrackSched, "a", 1, TimePoint::at_ms(5.0));
  EXPECT_TRUE(ref.valid());
  tracer.end(ref, TimePoint::at_ms(7.0));
  tracer.instant(0, obs::kTrackJob, "c", 1, TimePoint::at_ms(1.0));

  const std::vector<obs::Span> spans = tracer.sorted_spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_STREQ(spans[0].name, "c");  // earliest start first
  EXPECT_STREQ(spans[1].name, "a");  // tie on start: lane 0 before 1
  EXPECT_STREQ(spans[2].name, "b");
  EXPECT_DOUBLE_EQ(spans[1].end_ms - spans[1].start_ms, 2.0);

  tracer.clear();
  EXPECT_EQ(tracer.span_count(), 0u);
  // Ending a stale ref after clear() is harmless (generation check).
  tracer.end(ref, TimePoint::at_ms(8.0));
  EXPECT_EQ(tracer.span_count(), 0u);
}

TEST(ObsTracerTest, SamplingZeroDisablesAndNKeepsMultiples) {
  obs::Tracer::Options off;
  off.sampling = 0;
  obs::Tracer none(1, off);
  EXPECT_FALSE(none.enabled());
  EXPECT_FALSE(none.sampled(0));
  EXPECT_FALSE(none.sampled(7));
  EXPECT_FALSE(none.begin(0, 0, "x", 1, TimePoint::at_ms(0.0)).valid());
  none.emit(0, 0, "x", 1, TimePoint::at_ms(0.0), TimePoint::at_ms(1.0));
  EXPECT_EQ(none.span_count(), 0u);

  obs::Tracer::Options every4;
  every4.sampling = 4;
  obs::Tracer some(1, every4);
  EXPECT_TRUE(some.sampled(0));  // infrastructure: always on when enabled
  EXPECT_TRUE(some.sampled(8));
  EXPECT_FALSE(some.sampled(9));
}

// --- cluster-level determinism contract -------------------------------------

const runtime::ThresholdTable& shared_table() {
  static const exp::EstimationResult result =
      exp::ThresholdEstimator().estimate(apps::paper_benchmarks());
  return result.table;
}

sim::FaultPlan storm_plan() {
  sim::FaultPlan plan;
  plan.add({sim::FaultEvent::Kind::kCellSlow, TimePoint::at_ms(15.0), 0,
            0.25, TimePoint::at_ms(120.0)});
  plan.add({sim::FaultEvent::Kind::kLinkDegraded, TimePoint::at_ms(20.0), 1,
            0.3, TimePoint::at_ms(200.0)});
  plan.add({sim::FaultEvent::Kind::kPortFlaky, TimePoint::at_ms(20.0), 2,
            0.5, TimePoint::at_ms(250.0)});
  plan.add({sim::FaultEvent::Kind::kDsmCorrupt, TimePoint::at_ms(20.0), 1,
            0.5, TimePoint::at_ms(200.0)});
  plan.add({sim::FaultEvent::Kind::kCellKill, TimePoint::at_ms(50.0), 1});
  return plan;
}

struct ObsRun {
  std::string trace;
  std::string metrics;
  std::vector<double> completions;
  std::size_t spans = 0;
};

ObsRun run_traced_storm(bool parallel, std::uint64_t sampling) {
  const auto specs = apps::paper_benchmarks();
  exp::ClusterSpec spec;
  spec.cells = 3;
  spec.parallel = parallel;
  exp::ExperimentOptions options;
  options.mode = apps::SystemMode::kXarTrek;
  exp::ClusterExperiment cluster(specs, shared_table(), spec, options);
  obs::Tracer::Options topts;
  topts.sampling = sampling;
  cluster.enable_tracing(topts);

  for (std::size_t c = 0; c < 3; ++c) {
    cluster.submit(c, "facedet320");
    cluster.submit(c, "digit500");
  }
  cluster.apply_fault_plan(storm_plan());
  EXPECT_TRUE(cluster.run_until_jobs_complete());
  EXPECT_EQ(cluster.completed_jobs(), cluster.submitted_jobs());

  ObsRun out;
  out.trace = obs::perfetto_trace_json(*cluster.tracer());
  out.metrics = obs::metrics_json(cluster.registry().snapshot());
  out.completions = cluster.job_completion_times_ms();
  out.spans = cluster.tracer()->span_count();
  return out;
}

TEST(ObsClusterTest, GrayStormExportsAreByteIdenticalSerialVsParallel) {
  const ObsRun serial = run_traced_storm(false, 1);
  const ObsRun threaded = run_traced_storm(true, 1);
  EXPECT_GT(serial.spans, 0u);
  // The whole export -- span order, timestamps, metric values -- is a
  // pure function of the deterministic event trace.
  EXPECT_EQ(serial.trace, threaded.trace);
  EXPECT_EQ(serial.metrics, threaded.metrics);
}

TEST(ObsClusterTest, SamplingZeroTracerIsABitIdenticalNoOp) {
  const ObsRun traced = run_traced_storm(true, 1);
  const ObsRun off = run_traced_storm(true, 0);
  EXPECT_EQ(off.spans, 0u);
  // Attached-but-disabled tracing never perturbs the simulation: every
  // job completes at the exact same instant.
  ASSERT_EQ(traced.completions.size(), off.completions.size());
  for (std::size_t i = 0; i < traced.completions.size(); ++i) {
    EXPECT_DOUBLE_EQ(traced.completions[i], off.completions[i]) << i;
  }
}

TEST(ObsClusterTest, DrainedJobSpansStitchAcrossCells) {
  const auto specs = apps::paper_benchmarks();
  exp::ClusterSpec spec;
  spec.cells = 3;
  spec.parallel = true;
  exp::ExperimentOptions options;
  options.mode = apps::SystemMode::kXarTrek;
  exp::ClusterExperiment cluster(specs, shared_table(), spec, options);
  cluster.enable_tracing();
  for (std::size_t c = 0; c < 3; ++c) {
    cluster.submit(c, "facedet320");
    cluster.submit(c, "digit500");
  }
  cluster.apply_fault_plan(storm_plan());
  ASSERT_TRUE(cluster.run_until_jobs_complete());

  // Cell 1 died mid-run, so its jobs drained to cell 2: their trace ids
  // must appear on at least two lanes, with the drain legs on the dying
  // cell and the landing + completion on the survivor.
  std::size_t stitched = 0;
  for (std::uint64_t id = 0; id < cluster.submitted_jobs(); ++id) {
    const std::uint64_t tid = exp::ClusterExperiment::trace_id_of(id);
    std::vector<std::uint32_t> lanes;
    bool landed = false;
    bool drained = false;
    bool completed = false;
    for (const obs::Span& s : cluster.tracer()->sorted_spans()) {
      if (s.trace_id != tid) continue;
      lanes.push_back(s.lane);
      landed |= std::string_view(s.name) == "job.land";
      drained |= std::string_view(s.name) == "drain.transfer";
      completed |= std::string_view(s.name) == "job.complete";
    }
    std::sort(lanes.begin(), lanes.end());
    lanes.erase(std::unique(lanes.begin(), lanes.end()), lanes.end());
    if (lanes.size() >= 2) {
      ++stitched;
      EXPECT_TRUE(landed);
      EXPECT_TRUE(drained);
      EXPECT_TRUE(completed);
    }
  }
  EXPECT_GT(stitched, 0u);
}

TEST(ObsClusterTest, MailboxPairHighWaterIsExportedAndExact) {
  const auto specs = apps::paper_benchmarks();
  exp::ClusterSpec spec;
  spec.cells = 3;
  spec.parallel = false;
  exp::ExperimentOptions options;
  options.mode = apps::SystemMode::kXarTrek;
  exp::ClusterExperiment cluster(specs, shared_table(), spec, options);
  for (std::size_t c = 0; c < 3; ++c) cluster.submit(c, "facedet320");
  cluster.apply_fault_plan(storm_plan());
  ASSERT_TRUE(cluster.run_until_jobs_complete());

  const obs::Snapshot snap = cluster.registry().snapshot();
  std::uint64_t exported_total = 0;
  std::size_t pair_gauges = 0;
  for (const obs::Snapshot::Scalar& s : snap.scalars) {
    if (s.name.find("sim.mailbox.") != 0) continue;
    ++pair_gauges;
    // The exported gauge reads exactly what the engine reports.
    const std::size_t us = s.name.find('.', 12);
    const std::string pair = s.name.substr(12, us - 12);
    const auto sep = pair.find('_');
    const auto src = static_cast<sim::ShardId>(std::stoul(
        pair.substr(0, sep)));
    const auto dst = static_cast<sim::ShardId>(std::stoul(
        pair.substr(sep + 1)));
    EXPECT_DOUBLE_EQ(
        s.value,
        static_cast<double>(
            cluster.engine().engine().mailbox_pair_hwm(src, dst)));
    exported_total += static_cast<std::uint64_t>(s.value);
  }
  EXPECT_EQ(pair_gauges, 6u);  // 3 shards, src != dst
  // The storm crossed cells (placement replies, drains), so some pair
  // saw traffic.
  EXPECT_GT(exported_total, 0u);
}

}  // namespace
}  // namespace xartrek
