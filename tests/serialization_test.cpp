// Tests for the serialization layers: the scheduler wire protocol, the
// threshold-table text format, and the fat-binary image format.
#include <gtest/gtest.h>

#include "apps/benchmark_spec.hpp"
#include "common/rng.hpp"
#include "compiler/multi_isa_builder.hpp"
#include "popcorn/fat_binary_io.hpp"
#include "popcorn/state_transform.hpp"
#include "runtime/protocol.hpp"
#include "runtime/threshold_table_io.hpp"

namespace xartrek {
namespace {

using runtime::decode_message;
using runtime::encode_message;
using runtime::Message;
using runtime::MessageType;
using runtime::peek_message_type;

// --- wire protocol -------------------------------------------------------

TEST(ProtocolTest, PlacementRequestRoundTrip) {
  runtime::PlacementRequestMsg msg{"digit2000", "KNL_HW_DR200", 4242};
  const auto bytes = encode_message(msg);
  EXPECT_EQ(peek_message_type(bytes), MessageType::kPlacementRequest);
  const auto decoded = decode_message(bytes);
  ASSERT_TRUE(std::holds_alternative<runtime::PlacementRequestMsg>(decoded));
  EXPECT_EQ(std::get<runtime::PlacementRequestMsg>(decoded), msg);
}

TEST(ProtocolTest, PlacementReplyRoundTrip) {
  runtime::PlacementReplyMsg msg{runtime::Target::kFpga, true, 67};
  const auto decoded = decode_message(encode_message(msg));
  ASSERT_TRUE(std::holds_alternative<runtime::PlacementReplyMsg>(decoded));
  EXPECT_EQ(std::get<runtime::PlacementReplyMsg>(decoded), msg);
}

TEST(ProtocolTest, ThresholdReportRoundTrip) {
  runtime::ThresholdReportMsg msg{"cg_a", runtime::Target::kArm, 8406.25,
                                  120};
  const auto decoded = decode_message(encode_message(msg));
  ASSERT_TRUE(std::holds_alternative<runtime::ThresholdReportMsg>(decoded));
  EXPECT_EQ(std::get<runtime::ThresholdReportMsg>(decoded), msg);
}

TEST(ProtocolTest, TableSyncRoundTrip) {
  runtime::TableSyncMsg msg;
  msg.entry.app = "facedet320";
  msg.entry.kernel_name = "KNL_HW_FD320";
  msg.entry.fpga_threshold = 16;
  msg.entry.arm_threshold = 31;
  msg.entry.x86_exec = Duration::ms(175);
  msg.entry.arm_exec = Duration::ms(642);
  msg.entry.fpga_exec = Duration::ms(332);
  const auto decoded = decode_message(encode_message(msg));
  ASSERT_TRUE(std::holds_alternative<runtime::TableSyncMsg>(decoded));
  EXPECT_EQ(std::get<runtime::TableSyncMsg>(decoded), msg);
}

TEST(ProtocolTest, EmptyStringsSurvive) {
  runtime::PlacementRequestMsg msg{"", "", 0};
  const auto decoded = decode_message(encode_message(msg));
  EXPECT_EQ(std::get<runtime::PlacementRequestMsg>(decoded), msg);
}

TEST(ProtocolTest, RejectsBadMagicVersionType) {
  auto bytes = encode_message(
      runtime::PlacementRequestMsg{"a", "k", 1});
  auto corrupt = bytes;
  corrupt[0] = std::byte{0x00};  // magic
  EXPECT_THROW((void)decode_message(corrupt), Error);
  corrupt = bytes;
  corrupt[2] = std::byte{99};  // version
  EXPECT_THROW((void)decode_message(corrupt), Error);
  corrupt = bytes;
  corrupt[3] = std::byte{42};  // type
  EXPECT_THROW((void)decode_message(corrupt), Error);
}

TEST(ProtocolTest, RejectsTruncationAndTrailing) {
  const auto bytes =
      encode_message(runtime::ThresholdReportMsg{"app", runtime::Target::kX86,
                                                 1.0, 2});
  // Truncated payload.
  std::vector<std::byte> shorter(bytes.begin(), bytes.end() - 3);
  EXPECT_THROW((void)decode_message(shorter), Error);
  // Header alone.
  std::vector<std::byte> header_only(bytes.begin(),
                                     bytes.begin() + 4);
  EXPECT_THROW((void)decode_message(header_only), Error);
  // Trailing garbage (length field no longer matches).
  auto longer = bytes;
  longer.push_back(std::byte{0xAA});
  EXPECT_THROW((void)decode_message(longer), Error);
}

TEST(ProtocolTest, RejectsInvalidTargetId) {
  auto bytes = encode_message(
      runtime::PlacementReplyMsg{runtime::Target::kX86, false, 0});
  bytes[runtime::kHeaderBytes] = std::byte{7};  // bogus target
  EXPECT_THROW((void)decode_message(bytes), Error);
}

// Property: every message type round-trips through encode/decode.
class ProtocolRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(ProtocolRoundTripTest, RandomizedMessagesRoundTrip) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 50; ++i) {
    const auto pick = rng.uniform_int(0, 3);
    Message msg;
    const std::string name = "app" + std::to_string(rng.uniform_int(0, 999));
    switch (pick) {
      case 0:
        msg = runtime::PlacementRequestMsg{
            name, "KNL_" + name,
            static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 20))};
        break;
      case 1:
        msg = runtime::PlacementReplyMsg{
            static_cast<runtime::Target>(rng.uniform_int(0, 2)),
            rng.bernoulli(0.5),
            static_cast<std::int32_t>(rng.uniform_int(0, 4096))};
        break;
      case 2:
        msg = runtime::ThresholdReportMsg{
            name, static_cast<runtime::Target>(rng.uniform_int(0, 2)),
            rng.uniform_real(0.0, 1e6),
            static_cast<std::int32_t>(rng.uniform_int(0, 4096))};
        break;
      default: {
        runtime::TableSyncMsg sync;
        sync.entry.app = name;
        sync.entry.kernel_name = "KNL_" + name;
        sync.entry.fpga_threshold =
            static_cast<int>(rng.uniform_int(0, 128));
        sync.entry.arm_threshold = static_cast<int>(rng.uniform_int(0, 128));
        sync.entry.x86_exec = Duration::ms(rng.uniform_real(0, 1e5));
        sync.entry.arm_exec = Duration::ms(rng.uniform_real(0, 1e5));
        sync.entry.fpga_exec = Duration::ms(rng.uniform_real(0, 1e5));
        msg = sync;
      }
    }
    const auto decoded = decode_message(encode_message(msg));
    EXPECT_EQ(decoded.index(), msg.index());
    EXPECT_TRUE(decoded == msg);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolRoundTripTest,
                         ::testing::Range(1, 7));

// Property: the single-pass scratch-buffer encoder produces exactly the
// bytes of the allocating encoder, for randomized messages reusing ONE
// buffer across the whole sequence (the per-connection pattern).
TEST(ProtocolTest, EncodeIntoReusedScratchMatchesEncodeMessage) {
  Rng rng(99);
  std::vector<std::byte> scratch;
  for (int i = 0; i < 200; ++i) {
    Message msg;
    const std::string name =
        std::string(static_cast<std::size_t>(rng.uniform_int(0, 40)), 'x') +
        std::to_string(rng.uniform_int(0, 999));
    switch (rng.uniform_int(0, 3)) {
      case 0:
        msg = runtime::PlacementRequestMsg{
            name, "KNL_" + name,
            static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 20))};
        break;
      case 1:
        msg = runtime::PlacementReplyMsg{
            static_cast<runtime::Target>(rng.uniform_int(0, 2)),
            rng.bernoulli(0.5),
            static_cast<std::int32_t>(rng.uniform_int(0, 4096))};
        break;
      case 2:
        msg = runtime::ThresholdReportMsg{
            name, static_cast<runtime::Target>(rng.uniform_int(0, 2)),
            rng.uniform_real(0.0, 1e6),
            static_cast<std::int32_t>(rng.uniform_int(0, 4096))};
        break;
      default: {
        runtime::TableSyncMsg sync;
        sync.entry.app = name;
        sync.entry.kernel_name = "KNL_" + name;
        sync.entry.fpga_threshold = static_cast<int>(rng.uniform_int(0, 128));
        sync.entry.arm_threshold = static_cast<int>(rng.uniform_int(0, 128));
        sync.entry.x86_exec = Duration::ms(rng.uniform_real(0, 1e5));
        msg = sync;
      }
    }
    runtime::encode_message_into(msg, scratch);
    EXPECT_EQ(scratch, encode_message(msg));
    EXPECT_TRUE(decode_message(scratch) == msg);
  }
}

TEST(ProtocolTest, EncodeTableSyncIntoMatchesMessagePath) {
  runtime::ThresholdEntry e;
  e.app = "cg_a";
  e.kernel_name = "KNL_HW_CG_A";
  e.fpga_threshold = 29;
  e.arm_threshold = 23;
  e.x86_exec = Duration::ms(2182);
  e.arm_exec = Duration::ms(8406.5);
  e.fpga_exec = Duration::ms(10597.75);
  std::vector<std::byte> direct;
  runtime::encode_table_sync_into(e, direct);
  runtime::TableSyncMsg msg;
  msg.entry = e;
  EXPECT_EQ(direct, encode_message(msg));
  // The scratch overload clears previous contents.
  runtime::encode_table_sync_into(e, direct);
  EXPECT_EQ(direct, encode_message(msg));
}

// --- threshold-table text format ------------------------------------------

TEST(ThresholdTableIoTest, RoundTripsStepGOutput) {
  runtime::ThresholdTable table;
  runtime::ThresholdEntry e;
  e.app = "cg_a";
  e.kernel_name = "KNL_HW_CG_A";
  e.fpga_threshold = 29;
  e.arm_threshold = 23;
  e.x86_exec = Duration::ms(2182);
  e.arm_exec = Duration::ms(8406.5);
  e.fpga_exec = Duration::ms(10597.75);
  table.upsert(e);
  e.app = "digit500";
  e.kernel_name = "KNL_HW_DR500";
  e.fpga_threshold = 0;
  e.arm_threshold = 15;
  table.upsert(e);

  const auto text = runtime::serialize_threshold_table(table);
  const auto parsed = runtime::parse_threshold_table_string(text);
  EXPECT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed.at("cg_a").fpga_threshold, 29);
  EXPECT_EQ(parsed.at("cg_a").kernel_name, "KNL_HW_CG_A");
  EXPECT_DOUBLE_EQ(parsed.at("cg_a").fpga_exec.to_ms(), 10597.75);
  EXPECT_EQ(parsed.at("digit500").fpga_threshold, 0);
}

TEST(ThresholdTableIoTest, CommentsAndBlankLinesIgnored) {
  const auto table = runtime::parse_threshold_table_string(
      "# header comment\n\n"
      "app a kernel K fpga_thr 1 arm_thr 2  # trailing comment\n");
  EXPECT_EQ(table.at("a").arm_threshold, 2);
}

class ThresholdTableIoErrorTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(ThresholdTableIoErrorTest, RejectsMalformedInput) {
  try {
    (void)runtime::parse_threshold_table_string(GetParam());
    FAIL() << "expected parse failure for: " << GetParam();
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line"), std::string::npos);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ThresholdTableIoErrorTest,
    ::testing::Values(
        "bogus a kernel K fpga_thr 1 arm_thr 2\n",        // keyword
        "app a fpga_thr 1 arm_thr 2\n",                   // missing kernel
        "app a kernel K arm_thr 2\n",                     // missing fpga
        "app a kernel K fpga_thr -3 arm_thr 2\n",          // negative
        "app a kernel K fpga_thr 1 arm_thr 2 wat 9\n",     // unknown key
        "app a kernel K fpga_thr 1 arm_thr 2\n"
        "app a kernel K fpga_thr 1 arm_thr 2\n"));         // duplicate

TEST(ThresholdTableIoTest, EstimatorOutputRoundTrips) {
  // The real step-G artifact survives serialize -> parse intact.
  const auto specs = apps::paper_benchmarks();
  // (Reuse a tiny subset for speed: two apps.)
  std::vector<apps::BenchmarkSpec> two = {specs[1], specs[3]};
  runtime::ThresholdTable table;
  runtime::ThresholdEntry a;
  a.app = two[0].name;
  a.kernel_name = two[0].kernel_name;
  a.fpga_threshold = 11;
  a.arm_threshold = 22;
  table.upsert(a);
  const auto parsed = runtime::parse_threshold_table_string(
      runtime::serialize_threshold_table(table));
  EXPECT_TRUE(parsed.contains(two[0].name));
}

// --- fat binary -----------------------------------------------------------

TEST(FatBinaryTest, RoundTripsRealBuild) {
  const auto ir = compiler::make_app_ir("demo", "hot", 500, 200, 4096);
  const compiler::MultiIsaBuilder builder;
  const auto binary = builder.build(ir);

  const auto image = popcorn::write_fat_binary(binary);
  EXPECT_GT(image.size(), 64u);
  const auto back = popcorn::read_fat_binary(image);

  EXPECT_EQ(back.name(), binary.name());
  EXPECT_EQ(back.isas(), binary.isas());
  for (isa::IsaKind kind : binary.isas()) {
    EXPECT_EQ(back.sections_for(kind).text, binary.sections_for(kind).text);
    EXPECT_EQ(back.sections_for(kind).rodata,
              binary.sections_for(kind).rodata);
    EXPECT_EQ(back.sections_for(kind).bss, binary.sections_for(kind).bss);
    EXPECT_EQ(back.image_file_bytes(kind), binary.image_file_bytes(kind));
  }
  EXPECT_EQ(back.file_bytes(), binary.file_bytes());
  EXPECT_EQ(back.layout().image_span, binary.layout().image_span);
  EXPECT_EQ(back.layout().vaddr_of, binary.layout().vaddr_of);
  EXPECT_EQ(back.metadata().sites().size(), binary.metadata().sites().size());
  EXPECT_EQ(back.metadata().encoded_size_bytes(),
            binary.metadata().encoded_size_bytes());

  // A migration point survives with its live values intact.
  const auto* site = back.metadata().find("main", 1);
  ASSERT_NE(site, nullptr);
  const auto* orig = binary.metadata().find("main", 1);
  EXPECT_EQ(site->live_values.size(), orig->live_values.size());
  EXPECT_EQ(site->frame_size, orig->frame_size);
}

TEST(FatBinaryTest, RejectsCorruptImages) {
  const auto ir = compiler::make_app_ir("demo", "hot", 400, 150);
  const compiler::MultiIsaBuilder builder;
  const auto image = popcorn::write_fat_binary(builder.build(ir));

  auto bad_magic = image;
  bad_magic[0] = std::byte{0};
  EXPECT_THROW((void)popcorn::read_fat_binary(bad_magic), Error);

  auto bad_version = image;
  bad_version[4] = std::byte{9};
  EXPECT_THROW((void)popcorn::read_fat_binary(bad_version), Error);

  std::vector<std::byte> truncated(image.begin(),
                                   image.begin() + image.size() / 2);
  EXPECT_THROW((void)popcorn::read_fat_binary(truncated), Error);

  auto trailing = image;
  trailing.push_back(std::byte{1});
  EXPECT_THROW((void)popcorn::read_fat_binary(trailing), Error);
}

TEST(FatBinaryTest, TransformerWorksOnDeserializedMetadata) {
  // End-to-end: metadata that crossed the serialization boundary still
  // drives a correct state transformation.
  const auto ir = compiler::make_app_ir("demo", "hot", 400, 150);
  const compiler::MultiIsaBuilder builder;
  const auto back =
      popcorn::read_fat_binary(popcorn::write_fat_binary(builder.build(ir)));

  const popcorn::StateTransformer transformer(back.metadata());
  const auto* site = back.metadata().find("hot", 0);
  // `hot` has no call sites; use main@1 (the hot call site) instead.
  if (site == nullptr) site = back.metadata().find("main", 1);
  ASSERT_NE(site, nullptr);
  popcorn::MachineState x86(isa::IsaKind::kX86_64, site->function,
                            site->site_id,
                            site->frame_size_for(isa::IsaKind::kX86_64));
  const auto arm = transformer.transform(x86, isa::IsaKind::kAarch64);
  EXPECT_EQ(arm.frame_size(),
            site->frame_size_for(isa::IsaKind::kAarch64));
}

}  // namespace
}  // namespace xartrek
