// Epoch-synchronized sharded simulation core.
//
// A ShardedSimulation partitions a discrete-event model into N shards
// (one per component group: hw, fpga, popcorn, runtime -- or one per
// datacenter cell), each owning a private `sim::Simulation` with its
// pooled 4-ary heap.  Shards advance in lock-step synchronization
// windows ("epochs"): within a window every shard drains its local
// queue up to the window end with no locks and no shared state;
// cross-shard events travel through fixed-capacity SPSC mailboxes
// (sim/mailbox.hpp) that are drained at window boundaries.
//
// Correctness rests on the classic conservative-PDES lookahead
// contract: every cross-shard interaction models a latency of at least
// one window, so an event executed inside window W can only create
// work for other shards at or after the end of W -- by the time the
// message is drained, its timestamp is still in the receiver's future.
// The window end is `min(next event anywhere) + epoch`, which both
// bounds the work a window can discover and fast-forwards over
// globally idle stretches in one step.
//
// Shards vs workers.  A *shard* is the unit of model state (one
// Simulation, one mailbox row/column); a *worker* is an execution lane
// that runs some set of shards each window.  By default there is one
// worker per shard; `Options::workers` packs more shards per lane.
// Because shards share nothing inside a window, WHICH worker runs a
// shard can never affect the trace -- which is what makes the two
// scheduling freedoms below deterministic:
//
//   * Adaptive epochs (`Options::adaptive`): after K consecutive
//     windows with zero cross-shard posts the window coarsens
//     (doubling, up to `Options::max_epoch`, the model's legal
//     maximum: the minimum cross-shard latency); any cross-shard
//     traffic snaps it back to the base epoch.  The decision is a pure
//     function of the per-window post counters, computed at the drain
//     boundary, so serial and parallel runs size identical windows.
//   * Deterministic shard stealing (`Options::steal`): every
//     `steal_period` windows the boundary step re-evaluates the live
//     shard->worker map from per-shard executed-event counters and
//     moves the busiest worker's coldest shard to the idlest worker.
//     Again a pure function of deterministic counters -- the map
//     evolves identically in serial and parallel runs, and the trace
//     does not depend on it at all.
//
// In parallel mode shard workers are created ONCE and parked on a
// start gate between `run_span` calls (no per-call spawn/join), and
// `Options::pin_threads` pins each pool thread to a CPU.
//
// Determinism: each shard's local execution is the ordinary (time,
// insertion-seq) order of its own Simulation; at a boundary, inbound
// mailboxes are drained in source-shard order, FIFO within a source,
// so cross-shard events enter the local heap with a deterministic
// (time, source shard, source order) tie-break.  The schedule is a pure
// function of the model -- independent of thread interleaving, and a
// 1-shard ShardedSimulation executes exactly today's single-queue
// trace.  `Options::parallel` only chooses whether shards run on
// pooled std::threads or round-robin on the calling thread; both modes
// produce identical traces.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/time.hpp"
#include "sim/callback.hpp"
#include "sim/exec_options.hpp"
#include "sim/mailbox.hpp"
#include "sim/simulation.hpp"

namespace xartrek::obs {
class Registry;
}  // namespace xartrek::obs

namespace xartrek::sim {

using ShardId = std::uint32_t;

/// One cross-shard message: a callback and the absolute time it must
/// run at on the destination shard.
struct CrossShardEvent {
  double at_ms = 0.0;
  UniqueCallback cb;
};

/// Per-shard counters (diagnostics, tests, and the scaling bench).
struct ShardStats {
  std::uint64_t executed = 0;  ///< events executed on this shard
  std::uint64_t posts = 0;     ///< cross-shard messages sent
  std::uint64_t received = 0;  ///< cross-shard messages drained in
  /// Posts that found the mailbox full and spilled to the unbounded
  /// overflow (delivery slips by whole epochs, order preserved).
  std::uint64_t backpressure_stalls = 0;
  /// CPU seconds this shard's thread spent executing events (excludes
  /// barrier waits and time spent descheduled), so summing
  /// events/busy_seconds across shards measures aggregate processing
  /// capacity even on an oversubscribed host.
  double busy_seconds = 0.0;
  /// Times the rebalancer moved this shard to another worker.
  std::uint64_t steals = 0;
  /// Largest inbound occupancy ever observed at a drained boundary:
  /// messages popped from the rings PLUS backlog still sitting in
  /// source-side spill FIFOs destined here.  Exact -- a burst that
  /// overflowed the rings is counted the boundary it happened, not
  /// epochs later when the spill finally drains through.
  std::uint64_t mailbox_hwm = 0;
};

/// Per-worker counters (parallel mode; the skewed-load bench's
/// critical-path capacity metric reads these).
struct WorkerStats {
  std::uint64_t executed = 0;  ///< events run on this lane
  /// Whole-span thread-CPU time: event execution, mailbox work and
  /// barrier arrivals, but not time blocked or descheduled.
  double busy_seconds = 0.0;
};

class ShardedSimulation {
 public:
  struct Options {
    std::size_t shards = 1;
    /// Base synchronization window length.  Every cross-shard latency
    /// must be >= this (the lookahead contract); smaller epochs
    /// synchronize more often, larger ones amortize the boundary cost.
    Duration epoch = Duration::micros(100.0);
    /// SPSC mailbox capacity per ordered shard pair; overflow spills to
    /// an unbounded FIFO drained at later boundaries.
    std::size_t mailbox_capacity = 1024;
    /// Run shards on a persistent pool of std::threads (the caller's
    /// thread runs worker 0).  Off = deterministic round-robin on the
    /// calling thread.  Traces are identical either way.
    bool parallel = false;
    /// Legal maximum window: the minimum cross-shard latency of the
    /// model (the Topology partitioner derives it).  Zero means
    /// `epoch` -- adaptation enabled but with no room never coarsens.
    Duration max_epoch = Duration::zero();
    /// Worker mapping / adaptive-epoch / stealing knobs, shared with
    /// Topology::PartitionOptions and exp::ClusterSpec.
    ExecOptions exec;
  };

  ShardedSimulation() : ShardedSimulation(Options{}) {}
  explicit ShardedSimulation(Options opts);
  ~ShardedSimulation();
  ShardedSimulation(const ShardedSimulation&) = delete;
  ShardedSimulation& operator=(const ShardedSimulation&) = delete;

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] Duration epoch() const { return opts_.epoch; }
  /// Largest window the engine may adapt to.  Cross-shard channels
  /// must model at least this much latency (== epoch() when the engine
  /// is not adaptive, so the classic contract is unchanged).
  [[nodiscard]] Duration max_epoch() const {
    return Duration::ms(max_epoch_ms_);
  }
  /// The window length the adaptation currently sits at.
  [[nodiscard]] Duration current_epoch() const {
    return Duration::ms(cur_epoch_ms_);
  }
  /// Synchronization windows executed since construction.
  [[nodiscard]] std::uint64_t windows() const { return windows_; }

  /// The shard's local engine.  Components constructed against it work
  /// unchanged; schedule onto it freely before and between runs.
  [[nodiscard]] Simulation& shard(ShardId id) {
    XAR_EXPECTS(id < shards_.size());
    return shards_[id]->sim;
  }

  // --- live shard -> worker map ------------------------------------------

  [[nodiscard]] std::size_t worker_count() const { return workers_; }
  [[nodiscard]] std::size_t worker_of(ShardId id) const {
    XAR_EXPECTS(id < cell_worker_.size());
    return cell_worker_[id];
  }
  /// Reassign a shard to a worker (tests, or an external placement
  /// policy).  Call between runs only; counts as a steal when the
  /// assignment actually changes.
  void set_worker_of(ShardId id, std::size_t worker);
  /// Total rebalance moves (manual and automatic) since construction.
  [[nodiscard]] std::uint64_t steal_moves() const { return steal_moves_; }

  [[nodiscard]] const WorkerStats& worker_stats(std::size_t w) const {
    XAR_EXPECTS(w < worker_stats_.size());
    return worker_stats_[w];
  }

  /// Post `cb` to run on shard `dst` at absolute time `t`.  Must be
  /// called from shard `src` (its worker's thread, when parallel).
  /// Requires `t` to be at or past the current window's end --
  /// guaranteed when the modeled latency is >= max_epoch(); see
  /// CrossShardChannel.
  void post(ShardId src, ShardId dst, TimePoint t, UniqueCallback cb);

  /// Run until every shard is idle and every mailbox is empty.
  /// Returns events executed.  Clocks end at the final window boundary.
  std::size_t run();

  /// Run windows until no work remains at or before `horizon`; all
  /// shard clocks read exactly `horizon` afterwards.
  std::size_t run_until(TimePoint horizon);

  [[nodiscard]] const ShardStats& stats(ShardId id) const {
    XAR_EXPECTS(id < shards_.size());
    return shards_[id]->stats;
  }

  /// Deepest the (src, dst) pair's traffic has ever run: ring
  /// high-water plus any spill backlog at the moment of the peak.
  /// Producer-exact during a window; read it between runs (a boundary
  /// barrier or join orders it).
  [[nodiscard]] std::uint64_t mailbox_pair_hwm(ShardId src, ShardId dst) const;

  /// Register per-shard counters and per-(src,dst) mailbox high-water
  /// gauges under `prefix` (e.g. "sim").  Only deterministic values
  /// are registered (wall-clock busy_seconds and the scheduling-
  /// dependent steals counter are deliberately skipped), so serial and
  /// parallel runs snapshot identically.
  void register_metrics(obs::Registry& registry,
                        const std::string& prefix) const;

  /// Current time (all shard clocks agree between runs).
  [[nodiscard]] TimePoint now() const { return shards_[0]->sim.now(); }

  /// Total events executed across all shards since construction.
  [[nodiscard]] std::uint64_t executed_events() const;

 private:
  struct ShardState {
    Simulation sim;
    ShardStats stats;
    /// Overflow FIFO per destination shard, drained front-first into
    /// the mailbox at boundaries (head index avoids O(n) pop-front).
    std::vector<std::vector<CrossShardEvent>> spill;
    std::vector<std::size_t> spill_head;
    /// Messages currently sitting in the spill FIFOs (all
    /// destinations).  Owned by this shard's worker; lets both the
    /// flush and the boundary's min_next scan skip shards that have
    /// never spilled with one load instead of an O(shards) walk.
    std::size_t spilled = 0;
    /// Per-destination peak of ring depth + spill backlog, recorded by
    /// the producer at post time -- the spill-inclusive half of
    /// mailbox_pair_hwm() (the ring's own high_water covers bursts
    /// that never overflowed).
    std::vector<std::size_t> spill_peak;
  };

  /// One inbound-occupancy counter per destination shard: messages
  /// sitting in the destination's column of mailboxes.  Producers
  /// bump it on push (post and spill flush), the destination's drain
  /// subtracts what it popped -- so a boundary with no inbound traffic
  /// costs the destination one relaxed load instead of probing every
  /// (src, dst) ring.  Padded: producers on different workers would
  /// otherwise false-share neighboring counters.
  struct alignas(64) InboundCount {
    std::atomic<std::uint64_t> n{0};
  };

  using Mailbox = SpscRing<CrossShardEvent>;

  [[nodiscard]] Mailbox& mailbox(ShardId src, ShardId dst) {
    return *mailboxes_[src * shards_.size() + dst];
  }

  /// Move spilled messages into the (drained) mailboxes, FIFO.
  void flush_spill(ShardId src);
  /// Drain all inbound mailboxes into the local heap, in source order.
  void drain_inbound(ShardId dst);
  /// Execute one window on one shard.  `account_cpu` adds per-call
  /// thread-CPU deltas to busy_seconds; returns events executed.
  std::uint64_t run_shard(ShardId id, TimePoint window_end,
                          bool account_cpu);
  /// Earliest pending work anywhere (events, spilled messages), or
  /// +inf.  Call only at a boundary (mailboxes already drained).
  [[nodiscard]] double min_next_ms();

  /// The boundary step, identical in serial and parallel mode: adapt
  /// the epoch from the per-window post counters, re-evaluate the
  /// shard->worker map, then size the next window.  Returns false when
  /// no work remains at or before `horizon_ms`.  Runs single-threaded
  /// (serial loop, or the drain barrier's completion while every
  /// worker is parked).
  bool plan_next_window(double horizon_ms);
  void adapt_epoch();
  void maybe_rebalance();

  std::size_t run_span(TimePoint horizon);
  std::size_t run_span_serial(TimePoint horizon);
  std::size_t run_span_parallel(TimePoint horizon);

  // Persistent worker pool (parallel mode).
  struct Pool;
  void ensure_pool();
  void worker_thread(std::size_t w);
  void worker_span(std::size_t w);
  void on_drained() noexcept;

  Options opts_;
  std::vector<std::unique_ptr<ShardState>> shards_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;  ///< [src * n + dst]
  std::unique_ptr<InboundCount[]> inbound_;          ///< [dst]

  // Live shard -> worker assignment.  Read by workers during a window,
  // written only at boundaries (single-threaded, barrier-ordered).
  std::size_t workers_ = 1;
  std::vector<std::uint32_t> cell_worker_;
  std::vector<WorkerStats> worker_stats_;
  /// Per-shard CPU accounting per window when the worker/shard mapping
  /// is not the static 1:1 (attribution needs per-call deltas);
  /// otherwise the worker's whole-span measurement doubles as its only
  /// shard's busy time, PR-3 style.
  bool per_cell_cpu_ = false;

  // Adaptive-epoch state (touched at boundaries only).
  double base_epoch_ms_ = 0.0;
  double max_epoch_ms_ = 0.0;
  double cur_epoch_ms_ = 0.0;
  std::uint32_t quiet_windows_ = 0;
  std::uint64_t posts_at_boundary_ = 0;
  std::uint64_t windows_ = 0;

  // Rebalancer state (boundaries only).
  std::uint32_t windows_since_rebalance_ = 0;
  std::uint64_t steal_moves_ = 0;
  std::vector<std::uint64_t> executed_at_rebalance_;  ///< by shard
  std::vector<std::uint64_t> load_scratch_;           ///< by worker

  /// End of the window currently executing (what `post` checks the
  /// lookahead contract against).  Written at boundaries only.
  double window_end_ms_ = 0.0;
  double span_horizon_ms_ = 0.0;
  bool done_ = false;  ///< parallel-run termination flag
  std::unique_ptr<Pool> pool_;
};

/// A typed edge between two component groups living on different
/// shards: "deliver this completion to the other side, `latency`
/// later".  Components hold one and stay topology-agnostic; a
/// default-constructed channel is inert (`connected()` is false) and
/// the component falls back to its in-shard behavior.  The latency
/// must be >= the engine's max_epoch() -- the base epoch, or the
/// adaptive ceiling when the engine coarsens windows -- so the
/// lookahead contract holds at every window length the engine may
/// pick; delivery timing is then identical for every shard count.
/// Channels name shards, not workers: a rebalance move never
/// invalidates one.
class CrossShardChannel {
 public:
  CrossShardChannel() = default;
  CrossShardChannel(ShardedSimulation& ssim, ShardId src, ShardId dst,
                    Duration latency)
      : ssim_(&ssim), src_(src), dst_(dst), latency_(latency) {
    XAR_EXPECTS(src < ssim.shard_count() && dst < ssim.shard_count());
    XAR_EXPECTS(latency >= Duration::zero());
    XAR_EXPECTS(src == dst || latency >= ssim.max_epoch());
  }

  [[nodiscard]] bool connected() const { return ssim_ != nullptr; }
  [[nodiscard]] Duration latency() const { return latency_; }

  /// Run `cb` on the destination shard `latency` after the source
  /// shard's current time.  Requires connected().
  void deliver(UniqueCallback cb) const {
    XAR_EXPECTS(ssim_ != nullptr);
    ssim_->post(src_, dst_, ssim_->shard(src_).now() + latency_,
                std::move(cb));
  }

 private:
  ShardedSimulation* ssim_ = nullptr;
  ShardId src_ = 0;
  ShardId dst_ = 0;
  Duration latency_ = Duration::zero();
};

}  // namespace xartrek::sim
