// Epoch-synchronized sharded simulation core.
//
// A ShardedSimulation partitions a discrete-event model into N shards
// (one per component group: hw, fpga, popcorn, runtime -- or one per
// datacenter cell), each owning a private `sim::Simulation` with its
// pooled 4-ary heap.  Shards advance in lock-step synchronization
// windows ("epochs"): within a window every shard drains its local
// queue up to the window end with no locks and no shared state;
// cross-shard events travel through fixed-capacity SPSC mailboxes
// (sim/mailbox.hpp) that are drained at window boundaries.
//
// Correctness rests on the classic conservative-PDES lookahead
// contract: every cross-shard interaction models a latency of at least
// one epoch, so an event executed inside window W can only create work
// for other shards at or after the end of W -- by the time the message
// is drained, its timestamp is still in the receiver's future.  The
// window end is `min(next event anywhere) + epoch`, which both bounds
// the work a window can discover and fast-forwards over globally idle
// stretches in one step.
//
// Determinism: each shard's local execution is the ordinary (time,
// insertion-seq) order of its own Simulation; at a boundary, inbound
// mailboxes are drained in source-shard order, FIFO within a source,
// so cross-shard events enter the local heap with a deterministic
// (time, source shard, source order) tie-break.  The schedule is a pure
// function of the model -- independent of thread interleaving, and a
// 1-shard ShardedSimulation executes exactly today's single-queue
// trace.  `Options::parallel` only chooses whether shards run on
// std::threads or round-robin on the calling thread; both modes
// produce identical traces.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/assert.hpp"
#include "common/time.hpp"
#include "sim/callback.hpp"
#include "sim/mailbox.hpp"
#include "sim/simulation.hpp"

namespace xartrek::sim {

using ShardId = std::uint32_t;

/// One cross-shard message: a callback and the absolute time it must
/// run at on the destination shard.
struct CrossShardEvent {
  double at_ms = 0.0;
  UniqueCallback cb;
};

/// Per-shard counters (diagnostics, tests, and the scaling bench).
struct ShardStats {
  std::uint64_t executed = 0;  ///< events executed on this shard
  std::uint64_t posts = 0;     ///< cross-shard messages sent
  std::uint64_t received = 0;  ///< cross-shard messages drained in
  /// Posts that found the mailbox full and spilled to the unbounded
  /// overflow (delivery slips by whole epochs, order preserved).
  std::uint64_t backpressure_stalls = 0;
  /// CPU seconds this shard's thread spent executing events (excludes
  /// barrier waits and time spent descheduled), so summing
  /// events/busy_seconds across shards measures aggregate processing
  /// capacity even on an oversubscribed host.
  double busy_seconds = 0.0;
};

class ShardedSimulation {
 public:
  struct Options {
    std::size_t shards = 1;
    /// Synchronization window length.  Every cross-shard latency must
    /// be >= this (the lookahead contract); smaller epochs synchronize
    /// more often, larger ones amortize the boundary cost.
    Duration epoch = Duration::micros(100.0);
    /// SPSC mailbox capacity per ordered shard pair; overflow spills to
    /// an unbounded FIFO drained at later boundaries.
    std::size_t mailbox_capacity = 1024;
    /// Run shards on std::threads (one per shard, caller's thread runs
    /// shard 0).  Off = deterministic round-robin on the calling
    /// thread.  Traces are identical either way.
    bool parallel = false;
  };

  ShardedSimulation() : ShardedSimulation(Options{}) {}
  explicit ShardedSimulation(Options opts);
  ShardedSimulation(const ShardedSimulation&) = delete;
  ShardedSimulation& operator=(const ShardedSimulation&) = delete;

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] Duration epoch() const { return opts_.epoch; }

  /// The shard's local engine.  Components constructed against it work
  /// unchanged; schedule onto it freely before and between runs.
  [[nodiscard]] Simulation& shard(ShardId id) {
    XAR_EXPECTS(id < shards_.size());
    return shards_[id]->sim;
  }

  /// Post `cb` to run on shard `dst` at absolute time `t`.  Must be
  /// called from shard `src` (its thread, when parallel).  Requires
  /// `t` to be at or past the current window's end -- guaranteed when
  /// the modeled latency is >= epoch(); see CrossShardChannel.
  void post(ShardId src, ShardId dst, TimePoint t, UniqueCallback cb);

  /// Run until every shard is idle and every mailbox is empty.
  /// Returns events executed.  Clocks end at the final window boundary.
  std::size_t run();

  /// Run windows until no work remains at or before `horizon`; all
  /// shard clocks read exactly `horizon` afterwards.
  std::size_t run_until(TimePoint horizon);

  [[nodiscard]] const ShardStats& stats(ShardId id) const {
    XAR_EXPECTS(id < shards_.size());
    return shards_[id]->stats;
  }

  /// Current time (all shard clocks agree between runs).
  [[nodiscard]] TimePoint now() const { return shards_[0]->sim.now(); }

  /// Total events executed across all shards since construction.
  [[nodiscard]] std::uint64_t executed_events() const;

 private:
  struct ShardState {
    Simulation sim;
    ShardStats stats;
    /// Overflow FIFO per destination shard, drained front-first into
    /// the mailbox at boundaries (head index avoids O(n) pop-front).
    std::vector<std::vector<CrossShardEvent>> spill;
    std::vector<std::size_t> spill_head;
  };

  using Mailbox = SpscRing<CrossShardEvent>;

  [[nodiscard]] Mailbox& mailbox(ShardId src, ShardId dst) {
    return *mailboxes_[src * shards_.size() + dst];
  }

  /// Move spilled messages into the (drained) mailboxes, FIFO.
  void flush_spill(ShardId src);
  /// Drain all inbound mailboxes into the local heap, in source order.
  void drain_inbound(ShardId dst);
  /// Execute one window on one shard.  `account_cpu` adds per-call
  /// thread-CPU deltas to busy_seconds (serial mode); the parallel
  /// workers instead measure their whole lifetime once.
  void run_shard(ShardId id, TimePoint window_end, bool account_cpu);
  /// Earliest pending work anywhere (events, spilled messages), or
  /// +inf.  Call only at a boundary (mailboxes already drained).
  [[nodiscard]] double min_next_ms();

  std::size_t run_span(TimePoint horizon);
  std::size_t run_span_serial(TimePoint horizon);
  std::size_t run_span_parallel(TimePoint horizon);

  Options opts_;
  std::vector<std::unique_ptr<ShardState>> shards_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;  ///< [src * n + dst]
  /// End of the window currently executing (what `post` checks the
  /// lookahead contract against).  Written at boundaries only.
  double window_end_ms_ = 0.0;
  bool done_ = false;  ///< parallel-run termination flag
};

/// A typed edge between two component groups living on different
/// shards: "deliver this completion to the other side, `latency`
/// later".  Components hold one and stay topology-agnostic; a
/// default-constructed channel is inert (`connected()` is false) and
/// the component falls back to its in-shard behavior.  The latency
/// must be >= the engine's epoch so the lookahead contract holds --
/// delivery timing is then identical for every shard count.
class CrossShardChannel {
 public:
  CrossShardChannel() = default;
  CrossShardChannel(ShardedSimulation& ssim, ShardId src, ShardId dst,
                    Duration latency)
      : ssim_(&ssim), src_(src), dst_(dst), latency_(latency) {
    XAR_EXPECTS(src < ssim.shard_count() && dst < ssim.shard_count());
    XAR_EXPECTS(latency >= Duration::zero());
    XAR_EXPECTS(src == dst || latency >= ssim.epoch());
  }

  [[nodiscard]] bool connected() const { return ssim_ != nullptr; }
  [[nodiscard]] Duration latency() const { return latency_; }

  /// Run `cb` on the destination shard `latency` after the source
  /// shard's current time.  Requires connected().
  void deliver(UniqueCallback cb) const {
    XAR_EXPECTS(ssim_ != nullptr);
    ssim_->post(src_, dst_, ssim_->shard(src_).now() + latency_,
                std::move(cb));
  }

 private:
  ShardedSimulation* ssim_ = nullptr;
  ShardId src_ = 0;
  ShardId dst_ = 0;
  Duration latency_ = Duration::zero();
};

}  // namespace xartrek::sim
