// Move-only small-buffer callables for the hot paths.
//
// std::function pays an indirect "manager" call for every move and
// destroy, which adds up to several per scheduled event, and it heap
// allocates whenever a capture outgrows its small buffer.  The
// components' callbacks are overwhelmingly small lambdas over
// pointers/references, so UniqueFunction specializes for them:
// callables that fit the inline buffer and are trivially copyable move
// by plain memcpy and destroy for free -- no indirect calls outside the
// single invocation.  Anything bigger (or not nothrow-movable)
// transparently falls back to the heap, so any callable -- including a
// whole std::function -- still works.
//
// UniqueFunction<R(Args...)> is the general form used by components
// whose completions carry a payload (a PlacementDecision, an elapsed
// Duration, a migrated MachineState); UniqueCallback is the void()
// alias the event engine schedules.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace xartrek::sim {

template <typename Sig>
class UniqueFunction;  // undefined; only the R(Args...) form exists

template <typename R, typename... Args>
class UniqueFunction<R(Args...)> {
 public:
  /// Inline capture budget: enough for a `this` pointer plus a moved-in
  /// std::function, the largest shape the components schedule.
  static constexpr std::size_t kInlineBytes = 48;

  UniqueFunction() = default;
  UniqueFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, UniqueFunction> &&
                !std::is_same_v<std::remove_cvref_t<F>, std::nullptr_t>>>
  UniqueFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using T = std::remove_cvref_t<F>;
    if constexpr (sizeof(T) <= kInlineBytes &&
                  alignof(T) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<T>) {
      new (buf_) T(std::forward<F>(f));
      invoke_ = [](void* b, Args&&... args) -> R {
        return (*std::launder(reinterpret_cast<T*>(b)))(
            std::forward<Args>(args)...);
      };
      if constexpr (!(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_destructible_v<T>)) {
        relocate_ = [](void* dst, void* src) {
          T* s = std::launder(reinterpret_cast<T*>(src));
          new (dst) T(std::move(*s));
          s->~T();
        };
        destroy_ = [](void* b) {
          std::launder(reinterpret_cast<T*>(b))->~T();
        };
      }
    } else {
      T* p = new T(std::forward<F>(f));
      std::memcpy(buf_, &p, sizeof(p));
      invoke_ = [](void* b, Args&&... args) -> R {
        T* p;
        std::memcpy(&p, b, sizeof(p));
        return (*p)(std::forward<Args>(args)...);
      };
      destroy_ = [](void* b) {
        T* p;
        std::memcpy(&p, b, sizeof(p));
        delete p;
      };
      // The pointer itself relocates by memcpy: relocate_ stays null.
    }
  }

  UniqueFunction(UniqueFunction&& other) noexcept {
    adopt(std::move(other));
  }
  UniqueFunction& operator=(UniqueFunction&& other) noexcept {
    if (this != &other) {
      reset();
      adopt(std::move(other));
    }
    return *this;
  }
  UniqueFunction& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }
  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;
  ~UniqueFunction() { reset(); }

  R operator()(Args... args) {
    return invoke_(buf_, std::forward<Args>(args)...);
  }
  explicit operator bool() const { return invoke_ != nullptr; }
  friend bool operator==(const UniqueFunction& c, std::nullptr_t) {
    return c.invoke_ == nullptr;
  }

 private:
  void reset() noexcept {
    if (destroy_ != nullptr) destroy_(buf_);
    invoke_ = nullptr;
    relocate_ = nullptr;
    destroy_ = nullptr;
  }
  void adopt(UniqueFunction&& other) noexcept {
    invoke_ = other.invoke_;
    relocate_ = other.relocate_;
    destroy_ = other.destroy_;
    if (invoke_ != nullptr) {
      if (relocate_ != nullptr) {
        relocate_(buf_, other.buf_);
      } else {
        std::memcpy(buf_, other.buf_, kInlineBytes);
      }
    }
    other.invoke_ = nullptr;
    other.relocate_ = nullptr;
    other.destroy_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  R (*invoke_)(void*, Args&&...) = nullptr;
  void (*relocate_)(void* dst, void* src) = nullptr;
  void (*destroy_)(void*) = nullptr;
};

/// The event engine's callable: what Simulation schedules.
using UniqueCallback = UniqueFunction<void()>;

}  // namespace xartrek::sim
