// Generation-counted slot pool.
//
// The allocation-free steady state of the event engine, the
// processor-sharing resource and the scheduler's in-flight request pool
// all rest on the same idiom: values live in a slab of recycled slots
// chained through a free list, and each slot carries a generation that
// bumps on release so any stale reference (an EventHandle, a PsResource
// JobId, a heap husk) to a recycled slot reads as inert instead of
// aliasing the new occupant.  This template is that idiom, once.
//
// The pool manages occupancy only.  Value cleanup stays with the
// caller -- deliberately: the engine drops a callback's captures at
// release time, while the scheduler keeps a released slot's wire buffer
// warm so its capacity is reused.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace xartrek::sim {

template <typename T>
class SlotPool {
 public:
  static constexpr std::uint32_t kNoSlot = 0xFFFF'FFFFu;

  /// Take a free slot (recycled, or freshly grown).  The slot reads as
  /// live under its current generation until release().
  [[nodiscard]] std::uint32_t acquire() {
    if (free_head_ != kNoSlot) {
      const std::uint32_t slot = free_head_;
      Entry& e = entries_[slot];
      free_head_ = e.next_free;
      e.next_free = kNoSlot;
      e.live = true;
      return slot;
    }
    XAR_ASSERT(entries_.size() < kNoSlot);
    entries_.emplace_back();
    entries_.back().live = true;
    return static_cast<std::uint32_t>(entries_.size() - 1);
  }

  /// Return a slot to the free list.  Bumps the generation, so every
  /// outstanding (slot, generation) reference becomes inert.  Does not
  /// touch the value: clear it first if its captures must die now.
  void release(std::uint32_t slot) {
    Entry& e = entries_[slot];
    XAR_ASSERT(e.live);
    e.live = false;
    ++e.generation;
    e.next_free = free_head_;
    free_head_ = slot;
  }

  /// True when `slot` is live *and* still the same incarnation the
  /// caller captured.  Bounds-checked: a forged/garbage slot index is
  /// simply not live.
  [[nodiscard]] bool live_at(std::uint32_t slot,
                             std::uint32_t generation) const {
    return slot < entries_.size() && entries_[slot].live &&
           entries_[slot].generation == generation;
  }

  [[nodiscard]] std::uint32_t generation_of(std::uint32_t slot) const {
    return entries_[slot].generation;
  }

  [[nodiscard]] T& operator[](std::uint32_t slot) {
    return entries_[slot].value;
  }
  [[nodiscard]] const T& operator[](std::uint32_t slot) const {
    return entries_[slot].value;
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  void reserve(std::size_t n) { entries_.reserve(n); }

 private:
  struct Entry {
    T value{};
    std::uint32_t generation = 1;
    std::uint32_t next_free = kNoSlot;
    bool live = false;
  };

  std::vector<Entry> entries_;  ///< slab; grows, never shrinks
  std::uint32_t free_head_ = kNoSlot;
};

}  // namespace xartrek::sim
