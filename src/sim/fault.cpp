#include "sim/fault.hpp"

#include <algorithm>
#include <tuple>

#include "common/assert.hpp"

namespace xartrek::sim {

const char* to_string(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::kCellKill:        return "cell-kill";
    case FaultEvent::Kind::kLinkDown:        return "link-down";
    case FaultEvent::Kind::kLinkUp:          return "link-up";
    case FaultEvent::Kind::kReconfigureFail: return "reconfigure-fail";
    case FaultEvent::Kind::kCellSlow:        return "cell-slow";
    case FaultEvent::Kind::kLinkDegraded:    return "link-degraded";
    case FaultEvent::Kind::kPortFlaky:       return "port-flaky";
    case FaultEvent::Kind::kDsmCorrupt:      return "dsm-corrupt";
  }
  return "?";
}

namespace {

[[nodiscard]] auto order_key(const FaultEvent& e) {
  return std::make_tuple(e.at.to_ms(), static_cast<std::uint8_t>(e.kind),
                         e.index);
}

}  // namespace

void FaultPlan::add(FaultEvent event) {
  const auto pos = std::upper_bound(
      events_.begin(), events_.end(), event,
      [](const FaultEvent& a, const FaultEvent& b) {
        return order_key(a) < order_key(b);
      });
  events_.insert(pos, event);
}

std::size_t FaultPlan::count(FaultEvent::Kind kind) const {
  return static_cast<std::size_t>(
      std::count_if(events_.begin(), events_.end(),
                    [kind](const FaultEvent& e) { return e.kind == kind; }));
}

namespace {

[[nodiscard]] bool targets_link(FaultEvent::Kind kind) {
  return kind == FaultEvent::Kind::kLinkDown ||
         kind == FaultEvent::Kind::kLinkUp ||
         kind == FaultEvent::Kind::kLinkDegraded;
}

[[nodiscard]] bool carries_probability(FaultEvent::Kind kind) {
  return kind == FaultEvent::Kind::kLinkDegraded ||
         kind == FaultEvent::Kind::kPortFlaky ||
         kind == FaultEvent::Kind::kDsmCorrupt;
}

void describe(const FaultEvent& e, const char* what, std::string* error) {
  if (error == nullptr) return;
  *error = std::string(to_string(e.kind)) + " @" +
           std::to_string(e.at.to_ms()) + "ms index " +
           std::to_string(e.index) + ": " + what;
}

}  // namespace

bool FaultPlan::validate(std::uint32_t cells, std::uint32_t links,
                         std::string* error) const {
  for (const FaultEvent& e : events_) {
    const std::uint32_t limit = targets_link(e.kind) ? links : cells;
    if (e.index >= limit) {
      describe(e, targets_link(e.kind) ? "link index out of range"
                                       : "cell index out of range",
               error);
      return false;
    }
    if (!is_degraded(e.kind)) continue;
    if (e.until <= e.at) {
      describe(e, "degradation window is empty (until <= at)", error);
      return false;
    }
    if (e.kind == FaultEvent::Kind::kCellSlow &&
        (e.magnitude <= 0.0 || e.magnitude > 1.0)) {
      describe(e, "slow factor must be in (0, 1]", error);
      return false;
    }
    if (carries_probability(e.kind) &&
        (e.magnitude < 0.0 || e.magnitude > 1.0)) {
      describe(e, "probability must be in [0, 1]", error);
      return false;
    }
  }
  return true;
}

FaultPlan FaultPlan::generate(const ChaosProfile& profile, Rng rng) {
  XAR_EXPECTS(profile.window_end > profile.window_begin);
  XAR_EXPECTS(profile.mean_partition > Duration::zero());
  const double begin_ms = profile.window_begin.to_ms();
  const double end_ms = profile.window_end.to_ms();

  FaultPlan plan;
  // Draw order is fixed (kills, then flaps, then reconfigure failures;
  // victims in index order) so the plan is a pure function of the
  // profile and the Rng's seed.
  std::uint32_t kill_budget = profile.max_cell_kills != 0
                                  ? profile.max_cell_kills
                                  : (profile.cells > 0 ? profile.cells - 1
                                                       : 0);
  for (std::uint32_t c = 0; c < profile.cells; ++c) {
    const bool hit = rng.bernoulli(profile.cell_kill_probability);
    const double at = rng.uniform_real(begin_ms, end_ms);
    if (!hit || kill_budget == 0) continue;
    --kill_budget;
    plan.add(FaultEvent{FaultEvent::Kind::kCellKill, TimePoint::at_ms(at),
                        c});
  }
  for (std::uint32_t l = 0; l < profile.links; ++l) {
    const bool hit = rng.bernoulli(profile.link_flap_probability);
    const double at = rng.uniform_real(begin_ms, end_ms);
    const double len = rng.exponential_mean(profile.mean_partition.to_ms());
    if (!hit) continue;
    // Heal strictly inside the window so a flapped link never stays
    // down past the chaos phase (parked traffic always drains).
    const double up = std::min(at + std::max(len, 1e-3), end_ms);
    plan.add(FaultEvent{FaultEvent::Kind::kLinkDown, TimePoint::at_ms(at),
                        l});
    plan.add(FaultEvent{FaultEvent::Kind::kLinkUp, TimePoint::at_ms(up),
                        l});
  }
  for (std::uint32_t c = 0; c < profile.cells; ++c) {
    const bool hit = rng.bernoulli(profile.reconfigure_fail_probability);
    const double at = rng.uniform_real(begin_ms, end_ms);
    if (!hit) continue;
    plan.add(FaultEvent{FaultEvent::Kind::kReconfigureFail,
                        TimePoint::at_ms(at), c});
  }
  // Gray kinds draw after every binary kind, each in its own loop, so a
  // profile with all gray probabilities at 0 (the default) consumes the
  // binary draws identically and yields a bit-identical plan.
  const auto gray_window = [&](double at, double len) {
    // Lift strictly inside the chaos window, like link heals.
    return std::min(at + std::max(len, 1e-3), end_ms);
  };
  for (std::uint32_t c = 0; c < profile.cells; ++c) {
    const bool hit = rng.bernoulli(profile.cell_slow_probability);
    const double at = rng.uniform_real(begin_ms, end_ms);
    const double len = rng.exponential_mean(profile.mean_degradation.to_ms());
    if (!hit) continue;
    plan.add(FaultEvent{FaultEvent::Kind::kCellSlow, TimePoint::at_ms(at), c,
                        profile.slow_factor,
                        TimePoint::at_ms(gray_window(at, len))});
  }
  for (std::uint32_t l = 0; l < profile.links; ++l) {
    const bool hit = rng.bernoulli(profile.link_degrade_probability);
    const double at = rng.uniform_real(begin_ms, end_ms);
    const double len = rng.exponential_mean(profile.mean_degradation.to_ms());
    if (!hit) continue;
    plan.add(FaultEvent{FaultEvent::Kind::kLinkDegraded, TimePoint::at_ms(at),
                        l, profile.degraded_drop_probability,
                        TimePoint::at_ms(gray_window(at, len))});
  }
  for (std::uint32_t c = 0; c < profile.cells; ++c) {
    const bool hit = rng.bernoulli(profile.port_flaky_probability);
    const double at = rng.uniform_real(begin_ms, end_ms);
    const double len = rng.exponential_mean(profile.mean_degradation.to_ms());
    if (!hit) continue;
    plan.add(FaultEvent{FaultEvent::Kind::kPortFlaky, TimePoint::at_ms(at), c,
                        profile.flaky_fail_probability,
                        TimePoint::at_ms(gray_window(at, len))});
  }
  for (std::uint32_t c = 0; c < profile.cells; ++c) {
    const bool hit = rng.bernoulli(profile.dsm_corrupt_probability);
    const double at = rng.uniform_real(begin_ms, end_ms);
    const double len = rng.exponential_mean(profile.mean_degradation.to_ms());
    if (!hit) continue;
    plan.add(FaultEvent{FaultEvent::Kind::kDsmCorrupt, TimePoint::at_ms(at),
                        c, profile.corrupt_probability,
                        TimePoint::at_ms(gray_window(at, len))});
  }
  return plan;
}

}  // namespace xartrek::sim
