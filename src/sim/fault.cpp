#include "sim/fault.hpp"

#include <algorithm>
#include <tuple>

#include "common/assert.hpp"

namespace xartrek::sim {

const char* to_string(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::kCellKill:        return "cell-kill";
    case FaultEvent::Kind::kLinkDown:        return "link-down";
    case FaultEvent::Kind::kLinkUp:          return "link-up";
    case FaultEvent::Kind::kReconfigureFail: return "reconfigure-fail";
  }
  return "?";
}

namespace {

[[nodiscard]] auto order_key(const FaultEvent& e) {
  return std::make_tuple(e.at.to_ms(), static_cast<std::uint8_t>(e.kind),
                         e.index);
}

}  // namespace

void FaultPlan::add(FaultEvent event) {
  const auto pos = std::upper_bound(
      events_.begin(), events_.end(), event,
      [](const FaultEvent& a, const FaultEvent& b) {
        return order_key(a) < order_key(b);
      });
  events_.insert(pos, event);
}

std::size_t FaultPlan::count(FaultEvent::Kind kind) const {
  return static_cast<std::size_t>(
      std::count_if(events_.begin(), events_.end(),
                    [kind](const FaultEvent& e) { return e.kind == kind; }));
}

FaultPlan FaultPlan::generate(const ChaosProfile& profile, Rng rng) {
  XAR_EXPECTS(profile.window_end > profile.window_begin);
  XAR_EXPECTS(profile.mean_partition > Duration::zero());
  const double begin_ms = profile.window_begin.to_ms();
  const double end_ms = profile.window_end.to_ms();

  FaultPlan plan;
  // Draw order is fixed (kills, then flaps, then reconfigure failures;
  // victims in index order) so the plan is a pure function of the
  // profile and the Rng's seed.
  std::uint32_t kill_budget = profile.max_cell_kills != 0
                                  ? profile.max_cell_kills
                                  : (profile.cells > 0 ? profile.cells - 1
                                                       : 0);
  for (std::uint32_t c = 0; c < profile.cells; ++c) {
    const bool hit = rng.bernoulli(profile.cell_kill_probability);
    const double at = rng.uniform_real(begin_ms, end_ms);
    if (!hit || kill_budget == 0) continue;
    --kill_budget;
    plan.add(FaultEvent{FaultEvent::Kind::kCellKill, TimePoint::at_ms(at),
                        c});
  }
  for (std::uint32_t l = 0; l < profile.links; ++l) {
    const bool hit = rng.bernoulli(profile.link_flap_probability);
    const double at = rng.uniform_real(begin_ms, end_ms);
    const double len = rng.exponential_mean(profile.mean_partition.to_ms());
    if (!hit) continue;
    // Heal strictly inside the window so a flapped link never stays
    // down past the chaos phase (parked traffic always drains).
    const double up = std::min(at + std::max(len, 1e-3), end_ms);
    plan.add(FaultEvent{FaultEvent::Kind::kLinkDown, TimePoint::at_ms(at),
                        l});
    plan.add(FaultEvent{FaultEvent::Kind::kLinkUp, TimePoint::at_ms(up),
                        l});
  }
  for (std::uint32_t c = 0; c < profile.cells; ++c) {
    const bool hit = rng.bernoulli(profile.reconfigure_fail_probability);
    const double at = rng.uniform_real(begin_ms, end_ms);
    if (!hit) continue;
    plan.add(FaultEvent{FaultEvent::Kind::kReconfigureFail,
                        TimePoint::at_ms(at), c});
  }
  return plan;
}

}  // namespace xartrek::sim
