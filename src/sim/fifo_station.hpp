// Single-server FIFO station.
//
// Models exclusive-use devices: an FPGA compute unit executes exactly one
// kernel invocation at a time, queueing the rest in arrival order.  Also
// used for the reconfiguration port (one XCLBIN download at a time).
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "common/assert.hpp"
#include "common/time.hpp"
#include "sim/callback.hpp"
#include "sim/simulation.hpp"

namespace xartrek::sim {

/// A one-at-a-time server with a FIFO queue inside a Simulation.
class FifoStation {
 public:
  using Callback = UniqueCallback;

  FifoStation(Simulation& sim, std::string name)
      : sim_(sim), name_(std::move(name)) {}
  FifoStation(const FifoStation&) = delete;
  FifoStation& operator=(const FifoStation&) = delete;

  /// Enqueue a request taking `service` time once it reaches the server.
  /// `on_complete` fires when service finishes.
  void enqueue(Duration service, Callback on_complete);

  /// True while a request is in service.
  [[nodiscard]] bool busy() const { return busy_; }

  /// Requests waiting behind the one in service.
  [[nodiscard]] std::size_t queue_length() const { return queue_.size(); }

  /// Completed request count (diagnostics).
  [[nodiscard]] std::uint64_t completed() const { return completed_; }

  /// Cumulative busy time (utilization accounting for tests/benches).
  [[nodiscard]] Duration busy_time() const;

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  struct Request {
    Duration service;
    Callback on_complete;
  };

  void start_next();
  void finish_current();

  Simulation& sim_;
  std::string name_;
  std::deque<Request> queue_;
  /// Completion callback of the request in service: parked here instead
  /// of in the scheduled event so the event captures only `this` (which
  /// stays inside the engine's inline buffer, no per-service allocation).
  Callback in_service_;
  bool busy_ = false;
  std::uint64_t completed_ = 0;
  Duration busy_accum_ = Duration::zero();
  TimePoint busy_since_ = TimePoint::origin();
};

}  // namespace xartrek::sim
