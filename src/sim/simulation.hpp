// Discrete-event simulation core.
//
// A Simulation owns a virtual clock and an event queue.  Components
// (CPU clusters, links, the FPGA, the scheduler) register callbacks at
// future time points; `run`/`run_until` drains the queue in timestamp
// order, breaking ties by insertion order so executions are fully
// deterministic.
//
// The engine is allocation-free in steady state: events live in a
// slab-allocated pool recycled through a free list, the ready queue is
// an explicit 4-ary heap over small POD entries, and cancellation is
// generation-counted (an EventHandle is an index plus a generation, no
// per-event reference counting).  Cancelled events leave a husk in the
// heap that is reaped lazily when it reaches the top.
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <vector>

#include "common/assert.hpp"
#include "common/time.hpp"
#include "sim/callback.hpp"
#include "sim/slot_pool.hpp"

namespace xartrek::sim {

/// The event-driven simulator.  Not copyable: components hold references
/// to it for the lifetime of an experiment.
class Simulation {
 public:
  /// Accepts any callable, including a moved-in std::function; small
  /// trivially-copyable captures (the common case) schedule and fire
  /// without a single indirect manager call or heap allocation.
  using Callback = UniqueCallback;

  /// A cancellation handle for a scheduled event.  Default-constructed
  /// handles are inert.  Handles are cheap to copy; cancelling any copy
  /// cancels the event.  A handle never refcounts its event: it names a
  /// pool slot plus the generation the slot had when the event was
  /// scheduled, so a handle to a fired or cancelled event can never
  /// touch a recycled slot.
  class EventHandle {
   public:
    EventHandle() = default;

    /// Prevent the event from firing.  Idempotent; safe after the event
    /// has already run (then a no-op), and safe after the Simulation
    /// itself has been destroyed.
    void cancel() {
      if (anchor_) {
        if (Simulation* sim = *anchor_) sim->cancel_slot(slot_, generation_);
      }
    }

    /// True if the event is still scheduled to fire.
    [[nodiscard]] bool pending() const {
      if (!anchor_) return false;
      const Simulation* sim = *anchor_;
      return sim != nullptr && sim->slot_pending(slot_, generation_);
    }

   private:
    friend class Simulation;
    EventHandle(std::shared_ptr<Simulation*> anchor, std::uint32_t slot,
                std::uint32_t generation)
        : anchor_(std::move(anchor)), slot_(slot), generation_(generation) {}
    /// Shared back-pointer to the owning simulation; nulled out when the
    /// simulation dies so stale handles degrade to no-ops (one heap
    /// allocation per Simulation, none per event).
    std::shared_ptr<Simulation*> anchor_;
    std::uint32_t slot_ = 0;
    std::uint32_t generation_ = 0;
  };

  Simulation() : anchor_(std::make_shared<Simulation*>(this)) {}
  ~Simulation() { *anchor_ = nullptr; }
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time.
  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedule `cb` at absolute time `t`.  Requires t >= now().
  EventHandle schedule_at(TimePoint t, Callback cb);

  /// Schedule `cb` after delay `d`.  Requires d >= 0.
  EventHandle schedule_in(Duration d, Callback cb) {
    XAR_EXPECTS(d >= Duration::zero());
    return schedule_at(now_ + d, std::move(cb));
  }

  /// Run until the queue is empty.  Returns the number of events executed.
  std::size_t run();

  /// Run events with timestamp <= horizon; afterwards the clock reads
  /// exactly `horizon` (even if the queue drained earlier).  Returns the
  /// number of events executed.
  std::size_t run_until(TimePoint horizon);

  /// Execute at most one event with timestamp <= horizon.  Returns false
  /// (and leaves the clock untouched) when none remains.  Lets callers
  /// run until an external condition holds even while periodic
  /// components (load monitors, load generators) keep the queue
  /// populated forever.
  bool step_one(TimePoint horizon) { return step(horizon); }

  /// Number of events currently scheduled (including cancelled husks not
  /// yet reaped); intended for tests and diagnostics.
  [[nodiscard]] std::size_t queued_events() const {
    return heap_.size() - (root_stale_ ? 1 : 0);
  }

  /// Timestamp of the next runnable event, or +infinity when the queue
  /// is empty.  Reaps cancelled husks and the deferred fired root on the
  /// way, which is why it is non-const.  The sharded engine's epoch
  /// scheduler uses this to size synchronization windows and to
  /// fast-forward over globally idle stretches.
  [[nodiscard]] TimePoint next_event_time();

  /// Total events executed since construction.
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

  /// Grow the event pool and heap up front so a known load level runs
  /// without a single reallocation (diagnostics/benchmarks; optional).
  void reserve_events(std::size_t n) {
    slots_.reserve(n);
    heap_.reserve(n);
  }

 private:
  /// The heap orders on a single 128-bit integer key: the raw IEEE-754
  /// bits of the timestamp in the high word and the insertion sequence
  /// number in the low word.  Timestamps never go negative (the clock
  /// starts at the origin and schedule_at rejects the past), so the bit
  /// pattern orders exactly like the double -- and a one-word-pair
  /// integer compare lets sift-down pick the minimum child with
  /// conditional moves instead of unpredictable branches.  Sequence
  /// numbers make keys unique, which is what preserves FIFO order among
  /// same-time events.
  using HeapKey = unsigned __int128;

  struct HeapEntry {
    HeapKey key;
    std::uint32_t slot;
    std::uint32_t generation;
  };

  static HeapKey heap_key(TimePoint t, std::uint64_t seq) {
    double ms = t.to_ms();
    if (ms == 0.0) ms = 0.0;  // canonicalize -0.0: its sign bit would
                              // order after every positive timestamp
    std::uint64_t bits;
    std::memcpy(&bits, &ms, sizeof(bits));
    return (static_cast<HeapKey>(bits) << 64) | seq;
  }
  static TimePoint key_time(HeapKey key) {
    const std::uint64_t bits = static_cast<std::uint64_t>(key >> 64);
    double ms;
    std::memcpy(&ms, &bits, sizeof(ms));
    return TimePoint::at_ms(ms);
  }

  /// Pop and execute one runnable event with timestamp <= horizon.
  /// Returns false if none remains.
  bool step(TimePoint horizon);

  /// Materialize the deferred root removal and reap cancelled husks
  /// until the root is a live event (or the heap is empty).
  void prune();

  void release_slot(std::uint32_t slot);
  void cancel_slot(std::uint32_t slot, std::uint32_t generation);
  [[nodiscard]] bool slot_pending(std::uint32_t slot,
                                  std::uint32_t generation) const {
    return slots_.live_at(slot, generation);
  }

  void heap_push(HeapEntry entry);
  void heap_pop_root();
  void sift_down_from_root(HeapEntry entry);

  TimePoint now_ = TimePoint::origin();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  /// Only the callback lives in the slab; the ordering key is kept in
  /// the heap entry so sift operations never touch it.
  SlotPool<Callback> slots_;
  std::vector<HeapEntry> heap_;  ///< 4-ary min-heap on (time, seq)
  /// True while heap_[0] is a fired event whose removal is deferred: if
  /// the callback schedules a successor (the dominant pattern), the new
  /// entry replaces the root with a single sift-down instead of a pop
  /// followed by a push.
  bool root_stale_ = false;
  std::shared_ptr<Simulation*> anchor_;
};

}  // namespace xartrek::sim
