// Discrete-event simulation core.
//
// A Simulation owns a virtual clock and an event queue.  Components
// (CPU clusters, links, the FPGA, the scheduler) register callbacks at
// future time points; `run`/`run_until` drains the queue in timestamp
// order, breaking ties by insertion order so executions are fully
// deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/assert.hpp"
#include "common/time.hpp"

namespace xartrek::sim {

/// The event-driven simulator.  Not copyable: components hold references
/// to it for the lifetime of an experiment.
class Simulation {
 public:
  using Callback = std::function<void()>;

  /// A cancellation handle for a scheduled event.  Default-constructed
  /// handles are inert.  Handles are cheap to copy; cancelling any copy
  /// cancels the event.
  class EventHandle {
   public:
    EventHandle() = default;

    /// Prevent the event from firing.  Idempotent; safe after the event
    /// has already run (then a no-op).
    void cancel() {
      if (alive_) *alive_ = false;
    }

    /// True if the event is still scheduled to fire.
    [[nodiscard]] bool pending() const { return alive_ && *alive_; }

   private:
    friend class Simulation;
    explicit EventHandle(std::shared_ptr<bool> alive)
        : alive_(std::move(alive)) {}
    std::shared_ptr<bool> alive_;
  };

  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time.
  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedule `cb` at absolute time `t`.  Requires t >= now().
  EventHandle schedule_at(TimePoint t, Callback cb);

  /// Schedule `cb` after delay `d`.  Requires d >= 0.
  EventHandle schedule_in(Duration d, Callback cb) {
    XAR_EXPECTS(d >= Duration::zero());
    return schedule_at(now_ + d, std::move(cb));
  }

  /// Run until the queue is empty.  Returns the number of events executed.
  std::size_t run();

  /// Run events with timestamp <= horizon; afterwards the clock reads
  /// exactly `horizon` (even if the queue drained earlier).  Returns the
  /// number of events executed.
  std::size_t run_until(TimePoint horizon);

  /// Execute at most one event with timestamp <= horizon.  Returns false
  /// (and leaves the clock untouched) when none remains.  Lets callers
  /// run until an external condition holds even while periodic
  /// components (load monitors, load generators) keep the queue
  /// populated forever.
  bool step_one(TimePoint horizon) { return step(horizon); }

  /// Number of events currently scheduled (including cancelled husks not
  /// yet reaped); intended for tests and diagnostics.
  [[nodiscard]] std::size_t queued_events() const { return queue_.size(); }

  /// Total events executed since construction.
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    TimePoint at;
    std::uint64_t seq;
    std::shared_ptr<bool> alive;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;  // FIFO among same-time events
    }
  };

  /// Pop and execute one runnable event with timestamp <= horizon.
  /// Returns false if none remains.
  bool step(TimePoint horizon);

  TimePoint now_ = TimePoint::origin();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace xartrek::sim
