// Deterministic, seed-driven fault schedules for cluster experiments.
//
// The paper's multi-tenant premise (§1) is that the accelerator -- and,
// at cluster scale, whole cells -- can disappear while jobs keep
// running.  A FaultPlan is the schedule of such disappearances: cell
// kills, ring-link partitions and flaps, and FPGA reconfiguration
// failures, each stamped with the simulated instant it strikes and the
// index of its victim.  The plan is plain data: it owns no simulation
// state, so the same plan can be applied to a serial and a parallel
// cluster run and -- because every event is injected on its victim's
// own shard -- the two runs stay trace-identical.
//
// Plans come from two places: tests hand-build them event by event, and
// chaos runs generate them from a ChaosProfile through Rng::split, so
// the fault stream is reproducible from (seed, stream) without
// perturbing the workload's own draws.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"

namespace xartrek::sim {

/// One scheduled fault.
struct FaultEvent {
  enum class Kind : std::uint8_t {
    kCellKill,         ///< cell `index` dies (drain + re-place its jobs)
    kLinkDown,         ///< ring link `index` partitions
    kLinkUp,           ///< ring link `index` heals
    kReconfigureFail,  ///< cell `index`'s next FPGA programming fails
  };

  Kind kind = Kind::kCellKill;
  TimePoint at;             ///< absolute simulated time the fault strikes
  std::uint32_t index = 0;  ///< victim: cell or ring-link number
};

[[nodiscard]] const char* to_string(FaultEvent::Kind kind);

/// Knobs for FaultPlan::generate.  Probabilities are per victim (one
/// draw per cell / link), times uniform inside the chaos window.
struct ChaosProfile {
  std::uint32_t cells = 0;  ///< cluster size (victim candidates)
  std::uint32_t links = 0;  ///< ring links (usually == cells)
  TimePoint window_begin;   ///< faults strike inside [begin, end)
  TimePoint window_end;
  double cell_kill_probability = 0.25;
  double link_flap_probability = 0.25;
  double reconfigure_fail_probability = 0.25;
  /// Mean partition length of a link flap (exponential, clamped to the
  /// window so the link always heals before the chaos window closes).
  Duration mean_partition = Duration::ms(50.0);
  /// Hard cap on kills.  Defaults (0) to cells - 1: at least one cell
  /// survives, so drained jobs always have somewhere to land.
  std::uint32_t max_cell_kills = 0;
};

/// A sorted, immutable-once-built schedule of FaultEvents.
class FaultPlan {
 public:
  /// Insert one event, keeping the (time, kind, index) order invariant.
  void add(FaultEvent event);

  [[nodiscard]] const std::vector<FaultEvent>& events() const {
    return events_;
  }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t size() const { return events_.size(); }

  /// Events of one kind (diagnostics / tests).
  [[nodiscard]] std::size_t count(FaultEvent::Kind kind) const;

  /// Draw a plan from `profile`.  A pure function of (profile, rng
  /// state): the same seeded Rng always yields the identical plan.
  /// Pass a split stream (rng.split(k)) so generation never perturbs
  /// the workload's randomness.
  [[nodiscard]] static FaultPlan generate(const ChaosProfile& profile,
                                          Rng rng);

 private:
  std::vector<FaultEvent> events_;  ///< sorted by (at, kind, index)
};

}  // namespace xartrek::sim
