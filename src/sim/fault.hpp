// Deterministic, seed-driven fault schedules for cluster experiments.
//
// The paper's multi-tenant premise (§1) is that the accelerator -- and,
// at cluster scale, whole cells -- can disappear while jobs keep
// running.  A FaultPlan is the schedule of such disappearances: cell
// kills, ring-link partitions and flaps, and FPGA reconfiguration
// failures, each stamped with the simulated instant it strikes and the
// index of its victim.  The plan is plain data: it owns no simulation
// state, so the same plan can be applied to a serial and a parallel
// cluster run and -- because every event is injected on its victim's
// own shard -- the two runs stay trace-identical.
//
// Plans come from two places: tests hand-build them event by event, and
// chaos runs generate them from a ChaosProfile through Rng::split, so
// the fault stream is reproducible from (seed, stream) without
// perturbing the workload's own draws.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"

namespace xartrek::sim {

/// One scheduled fault.
///
/// The first four kinds are binary (PR 6): a victim is dead or alive.
/// The gray kinds degrade a victim for a window instead of killing it:
/// each carries a `magnitude` (a rate multiplier or a probability) and
/// an `until` instant at which the cluster restores the victim.
struct FaultEvent {
  enum class Kind : std::uint8_t {
    kCellKill,         ///< cell `index` dies (drain + re-place its jobs)
    kLinkDown,         ///< ring link `index` partitions
    kLinkUp,           ///< ring link `index` heals
    kReconfigureFail,  ///< cell `index`'s next FPGA programming fails
    kCellSlow,         ///< cell `index` serves CPU work at `magnitude`x
                       ///< rate until `until`
    kLinkDegraded,     ///< ring link `index` inflates latency and drops
                       ///< each transfer with probability `magnitude`
                       ///< until `until`
    kPortFlaky,        ///< cell `index`'s reconfiguration port fails
                       ///< each programming with probability `magnitude`
                       ///< until `until`
    kDsmCorrupt,       ///< cell `index`'s DSM corrupts each transfer
                       ///< payload with probability `magnitude` until
                       ///< `until`
  };

  Kind kind = Kind::kCellKill;
  TimePoint at;             ///< absolute simulated time the fault strikes
  std::uint32_t index = 0;  ///< victim: cell or ring-link number
  /// Degraded kinds only: service-rate multiplier (kCellSlow) or
  /// per-event probability (kLinkDegraded / kPortFlaky / kDsmCorrupt).
  /// Ignored by the binary kinds, excluded from the plan's sort key.
  double magnitude = 0.0;
  /// Degraded kinds only: when the degradation lifts.  Ignored by the
  /// binary kinds, excluded from the plan's sort key.
  TimePoint until;
};

/// True for the windowed degradation kinds (kCellSlow and later).
[[nodiscard]] constexpr bool is_degraded(FaultEvent::Kind kind) {
  return kind >= FaultEvent::Kind::kCellSlow;
}

[[nodiscard]] const char* to_string(FaultEvent::Kind kind);

/// Knobs for FaultPlan::generate.  Probabilities are per victim (one
/// draw per cell / link), times uniform inside the chaos window.
struct ChaosProfile {
  std::uint32_t cells = 0;  ///< cluster size (victim candidates)
  std::uint32_t links = 0;  ///< ring links (usually == cells)
  TimePoint window_begin;   ///< faults strike inside [begin, end)
  TimePoint window_end;
  double cell_kill_probability = 0.25;
  double link_flap_probability = 0.25;
  double reconfigure_fail_probability = 0.25;
  /// Mean partition length of a link flap (exponential, clamped to the
  /// window so the link always heals before the chaos window closes).
  Duration mean_partition = Duration::ms(50.0);
  /// Hard cap on kills.  Defaults (0) to cells - 1: at least one cell
  /// survives, so drained jobs always have somewhere to land.
  std::uint32_t max_cell_kills = 0;

  // --- Gray-failure knobs (all default off so pre-existing profiles
  // generate bit-identical plans; their draws run after the binary
  // kinds' draws, in a fixed order).
  double cell_slow_probability = 0.0;     ///< per cell
  double link_degrade_probability = 0.0;  ///< per link
  double port_flaky_probability = 0.0;    ///< per cell
  double dsm_corrupt_probability = 0.0;   ///< per cell
  /// Service-rate multiplier a slowed cell runs at (kCellSlow
  /// magnitude); 0.25 = quarter speed.
  double slow_factor = 0.25;
  /// Per-transfer drop probability on a degraded link (kLinkDegraded
  /// magnitude).
  double degraded_drop_probability = 0.1;
  /// Per-programming failure probability on a flaky port (kPortFlaky
  /// magnitude).
  double flaky_fail_probability = 0.5;
  /// Per-transfer corruption probability under kDsmCorrupt.
  double corrupt_probability = 0.25;
  /// Mean length of a gray window (exponential, clamped inside the
  /// chaos window like link flaps are).
  Duration mean_degradation = Duration::ms(50.0);
};

/// A sorted, immutable-once-built schedule of FaultEvents.
class FaultPlan {
 public:
  /// Insert one event, keeping the (time, kind, index) order invariant.
  void add(FaultEvent event);

  [[nodiscard]] const std::vector<FaultEvent>& events() const {
    return events_;
  }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t size() const { return events_.size(); }

  /// Events of one kind (diagnostics / tests).
  [[nodiscard]] std::size_t count(FaultEvent::Kind kind) const;

  /// Build-time victim-range check: every cell-targeting event's index
  /// must be < `cells` and every link-targeting event's < `links`, and
  /// degraded events must carry a sane window (`until` > `at`) and a
  /// magnitude in [0, 1] for the probability kinds.  Returns false (and
  /// fills `error`, if given) instead of asserting mid-run.
  [[nodiscard]] bool validate(std::uint32_t cells, std::uint32_t links,
                              std::string* error = nullptr) const;

  /// Draw a plan from `profile`.  A pure function of (profile, rng
  /// state): the same seeded Rng always yields the identical plan.
  /// Pass a split stream (rng.split(k)) so generation never perturbs
  /// the workload's randomness.
  [[nodiscard]] static FaultPlan generate(const ChaosProfile& profile,
                                          Rng rng);

 private:
  std::vector<FaultEvent> events_;  ///< sorted by (at, kind, index)
};

}  // namespace xartrek::sim
