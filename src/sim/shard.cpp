#include "sim/shard.hpp"

#include <algorithm>
#include <barrier>
#include <exception>
#include <limits>
#include <thread>
#include <utility>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "common/cpu_time.hpp"
#include "obs/registry.hpp"

namespace xartrek::sim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Best-effort affinity pin: worker w -> CPU (w mod ncpu).  A
/// restricted mask (cgroups, taskset) can reject the target CPU; the
/// worker then simply stays unpinned.
void pin_to_cpu(std::size_t w) {
#if defined(__linux__)
  const unsigned ncpu = std::max(1u, std::thread::hardware_concurrency());
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(w % ncpu), &set);
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)w;
#endif
}

}  // namespace

// Persistent worker pool.  Threads for workers 1..W-1 are created on
// the first parallel span and then park on `start_gate` between spans;
// the calling thread is worker 0.  `drained`'s completion step -- run
// on exactly one thread while every other participant is blocked in
// the barrier -- is the single-threaded boundary where the epoch
// adapts, shards migrate between workers, and the next window is
// sized.
struct ShardedSimulation::Pool {
  struct Boundary {
    ShardedSimulation* s;
    void operator()() noexcept { s->on_drained(); }
  };

  std::barrier<> flushed;
  std::barrier<Boundary> drained;
  std::barrier<> start_gate;  ///< span kickoff + shutdown release
  std::barrier<> end_gate;    ///< span completion
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors;  ///< by worker
  bool shutdown = false;  ///< written before start_gate, read after

  Pool(ShardedSimulation* s, std::size_t w)
      : flushed(static_cast<std::ptrdiff_t>(w)),
        drained(static_cast<std::ptrdiff_t>(w), Boundary{s}),
        start_gate(static_cast<std::ptrdiff_t>(w)),
        end_gate(static_cast<std::ptrdiff_t>(w)),
        errors(w) {}
};

ShardedSimulation::ShardedSimulation(Options opts) : opts_(opts) {
  XAR_EXPECTS(opts.shards >= 1);
  XAR_EXPECTS(opts.epoch > Duration::zero());
  XAR_EXPECTS(opts.mailbox_capacity >= 1);
  XAR_EXPECTS(opts.max_epoch.to_ms() == 0.0 || opts.max_epoch >= opts.epoch);
  XAR_EXPECTS(opts.exec.steal_period >= 1);
  XAR_EXPECTS(opts.exec.steal_imbalance >= 1.0);
  const std::size_t n = opts.shards;
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto state = std::make_unique<ShardState>();
    state->spill.resize(n);
    state->spill_head.assign(n, 0);
    state->spill_peak.assign(n, 0);
    shards_.push_back(std::move(state));
  }
  mailboxes_.reserve(n * n);
  for (std::size_t i = 0; i < n * n; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>(opts.mailbox_capacity));
  }
  inbound_ = std::make_unique<InboundCount[]>(n);

  // Workers and the initial static shard -> worker map.  The map (and
  // the stealing that rewrites it) is maintained in serial mode too,
  // so serial and parallel runs agree on every decision and stat.
  workers_ = opts.exec.workers == 0 ? n : std::min(opts.exec.workers, n);
  cell_worker_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    cell_worker_[i] = static_cast<std::uint32_t>(i % workers_);
  }
  worker_stats_.resize(workers_);
  per_cell_cpu_ = opts.exec.steal || workers_ != n;

  base_epoch_ms_ = cur_epoch_ms_ = opts.epoch.to_ms();
  max_epoch_ms_ = (opts.exec.adaptive && opts.max_epoch.to_ms() > 0.0)
                      ? opts.max_epoch.to_ms()
                      : base_epoch_ms_;
  executed_at_rebalance_.assign(n, 0);
  // Pre-size so the boundary step never allocates (it runs inside a
  // noexcept barrier completion).
  load_scratch_.reserve(workers_);
}

ShardedSimulation::~ShardedSimulation() {
  if (pool_ != nullptr) {
    pool_->shutdown = true;  // ordered by the barrier below
    pool_->start_gate.arrive_and_wait();
    for (auto& t : pool_->threads) t.join();
  }
}

std::uint64_t ShardedSimulation::executed_events() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->sim.executed_events();
  return total;
}

void ShardedSimulation::set_worker_of(ShardId id, std::size_t worker) {
  XAR_EXPECTS(id < shards_.size());
  XAR_EXPECTS(worker < workers_);
  if (cell_worker_[id] == worker) return;
  cell_worker_[id] = static_cast<std::uint32_t>(worker);
  ++shards_[id]->stats.steals;
  ++steal_moves_;
}

void ShardedSimulation::post(ShardId src, ShardId dst, TimePoint t,
                             UniqueCallback cb) {
  XAR_EXPECTS(src < shards_.size() && dst < shards_.size());
  XAR_EXPECTS(cb != nullptr);
  ShardState& s = *shards_[src];
  if (src == dst) {
    // Same shard: an ordinary local event, any time >= now.
    s.sim.schedule_at(t, std::move(cb));
    return;
  }
  // Lookahead contract: the receiver is executing the same window, so
  // the message must land at or past its end.  Channel latencies are
  // checked against max_epoch(), so this holds at every window length
  // the adaptation can pick.  (A tiny epsilon absorbs the rounding
  // slack of `now + latency` vs `min_next + epoch`.)
  XAR_EXPECTS(t.to_ms() >= window_end_ms_ - 1e-9);
  ++s.stats.posts;
  CrossShardEvent ev{t.to_ms(), std::move(cb)};
  auto& spill = s.spill[dst];
  const bool spilling = s.spill_head[dst] < spill.size();
  if (spilling || !mailbox(src, dst).try_push(std::move(ev))) {
    // Full (or already spilling -- later messages must queue behind the
    // spill to keep FIFO order).  Delivery slips to a later boundary.
    ++s.stats.backpressure_stalls;
    spill.push_back(std::move(ev));
    ++s.spilled;
    // Producer-exact pair depth including the overflow the ring's own
    // high_water cannot see (the consumer is parked mid-window, so
    // size() is exact here).
    const std::size_t depth =
        mailbox(src, dst).size() + (spill.size() - s.spill_head[dst]);
    if (depth > s.spill_peak[dst]) s.spill_peak[dst] = depth;
  } else {
    inbound_[dst].n.fetch_add(1, std::memory_order_relaxed);
  }
}

void ShardedSimulation::flush_spill(ShardId src) {
  ShardState& s = *shards_[src];
  if (s.spilled == 0) return;  // nothing pending anywhere: one load, done
  for (ShardId dst = 0; dst < shards_.size(); ++dst) {
    auto& spill = s.spill[dst];
    std::size_t& head = s.spill_head[dst];
    while (head < spill.size() &&
           mailbox(src, dst).try_push(std::move(spill[head]))) {
      ++head;
      --s.spilled;
      inbound_[dst].n.fetch_add(1, std::memory_order_relaxed);
    }
    if (head == spill.size()) {
      spill.clear();  // keeps capacity for the next burst
      head = 0;
    }
  }
}

void ShardedSimulation::drain_inbound(ShardId dst) {
  // Occupancy check first: a boundary with no inbound traffic costs
  // one relaxed load instead of probing every source's ring.  Exact
  // here because every producer is past the flush barrier (which also
  // publishes its relaxed increments) and none posts again until after
  // the drain barrier.
  auto& pending = inbound_[dst].n;
  if (pending.load(std::memory_order_relaxed) == 0) return;
  ShardState& d = *shards_[dst];
  const double now_ms = d.sim.now().to_ms();
  std::uint64_t drained = 0;
  CrossShardEvent ev;
  for (ShardId src = 0; src < shards_.size(); ++src) {
    if (src == dst) continue;
    while (mailbox(src, dst).try_pop(ev)) {
      // A message deferred by backpressure may surface after its
      // timestamp; it then runs as early as possible.
      const double at = std::max(ev.at_ms, now_ms);
      d.sim.schedule_at(TimePoint::at_ms(at), std::move(ev.cb));
      ++drained;
    }
  }
  d.stats.received += drained;
  // Exact inbound occupancy at this boundary: what the rings delivered
  // plus backlog still spilled at the sources.  Reading the sources'
  // spill bookkeeping here is race-free -- spill is written only in
  // the flush/run phases, and the flushed barrier (which every worker
  // has passed before any drain starts) orders those writes before
  // this read.  Backlog can only be nonzero while the source's ring to
  // us is full, so the pending==0 early-out above never skips it.
  std::uint64_t backlog = 0;
  for (ShardId src = 0; src < shards_.size(); ++src) {
    if (src == dst) continue;
    const ShardState& ss = *shards_[src];
    if (ss.spilled == 0) continue;
    backlog += ss.spill[dst].size() - ss.spill_head[dst];
  }
  if (drained + backlog > d.stats.mailbox_hwm) {
    d.stats.mailbox_hwm = drained + backlog;
  }
  pending.fetch_sub(drained, std::memory_order_relaxed);
}

std::uint64_t ShardedSimulation::run_shard(ShardId id, TimePoint window_end,
                                           bool account_cpu) {
  ShardState& s = *shards_[id];
  const std::uint64_t before = s.sim.executed_events();
  const double cpu0 = account_cpu ? thread_cpu_seconds() : 0.0;
  s.sim.run_until(window_end);
  if (account_cpu) s.stats.busy_seconds += thread_cpu_seconds() - cpu0;
  const std::uint64_t delta = s.sim.executed_events() - before;
  s.stats.executed += delta;
  return delta;
}

double ShardedSimulation::min_next_ms() {
  double min_next = kInf;
  bool spill_left = false;
  for (auto& s : shards_) {
    min_next = std::min(min_next, s->sim.next_event_time().to_ms());
    spill_left = spill_left || s->spilled != 0;
  }
  if (spill_left) {
    // Spilled messages must reach the next boundary as soon as
    // possible: bound the window to one epoch from the current time.
    min_next = std::min(min_next, shards_[0]->sim.now().to_ms());
  }
  return min_next;
}

void ShardedSimulation::adapt_epoch() {
  std::uint64_t posts = 0;
  for (const auto& s : shards_) posts += s->stats.posts;
  const std::uint64_t delta = posts - posts_at_boundary_;
  posts_at_boundary_ = posts;
  if (delta != 0) {
    // Traffic: snap back to the base epoch so cross-shard delivery
    // granularity (and spill pressure) stays what the model asked for.
    quiet_windows_ = 0;
    cur_epoch_ms_ = base_epoch_ms_;
  } else if (quiet_windows_ < opts_.exec.adapt_quiet_windows) {
    ++quiet_windows_;
  } else {
    // Quiet streak: coarsen geometrically up to the legal maximum (the
    // model's minimum cross-shard latency).
    cur_epoch_ms_ = std::min(cur_epoch_ms_ * 2.0, max_epoch_ms_);
  }
}

void ShardedSimulation::maybe_rebalance() {
  if (++windows_since_rebalance_ < opts_.exec.steal_period) return;
  windows_since_rebalance_ = 0;
  const std::size_t n = shards_.size();
  // Per-worker load over the evaluation period, from the per-shard
  // executed-event counters -- deterministic, so serial and parallel
  // runs rewrite the map identically.
  load_scratch_.assign(workers_, 0);
  for (std::size_t c = 0; c < n; ++c) {
    load_scratch_[cell_worker_[c]] +=
        shards_[c]->sim.executed_events() - executed_at_rebalance_[c];
  }
  std::size_t wmax = 0;
  std::size_t wmin = 0;
  for (std::size_t w = 1; w < workers_; ++w) {
    if (load_scratch_[w] > load_scratch_[wmax]) wmax = w;
    if (load_scratch_[w] < load_scratch_[wmin]) wmin = w;
  }
  const std::uint64_t hot = load_scratch_[wmax];
  const std::uint64_t cold = load_scratch_[wmin];
  if (wmax != wmin && hot != 0 &&
      static_cast<double>(hot) >
          opts_.exec.steal_imbalance * static_cast<double>(cold + 1)) {
    // Move the hot worker's coldest shard (ties -> lowest id): it
    // narrows the gap with the least disruption, and a hot shard never
    // migrates away from the lane it is keeping warm.
    std::size_t owned = 0;
    std::size_t pick = n;
    std::uint64_t pick_delta = 0;
    for (std::size_t c = 0; c < n; ++c) {
      if (cell_worker_[c] != wmax) continue;
      ++owned;
      const std::uint64_t delta =
          shards_[c]->sim.executed_events() - executed_at_rebalance_[c];
      if (pick == n || delta < pick_delta) {
        pick = c;
        pick_delta = delta;
      }
    }
    // Guards: the donor must keep at least one shard, and the move
    // must strictly lower the maximum load (the recipient may end up
    // above the donor, but never above the old maximum, so successive
    // moves monotonically tighten the spread instead of ping-ponging).
    if (owned >= 2 && pick_delta < hot - cold) {
      cell_worker_[pick] = static_cast<std::uint32_t>(wmin);
      ++shards_[pick]->stats.steals;
      ++steal_moves_;
    }
  }
  for (std::size_t c = 0; c < n; ++c) {
    executed_at_rebalance_[c] = shards_[c]->sim.executed_events();
  }
}

bool ShardedSimulation::plan_next_window(double horizon_ms) {
  if (opts_.exec.adaptive) adapt_epoch();
  if (opts_.exec.steal && workers_ < shards_.size()) maybe_rebalance();
  const double min_next = min_next_ms();
  if (min_next == kInf || min_next > horizon_ms) return false;
  window_end_ms_ = std::min(min_next + cur_epoch_ms_, horizon_ms);
  ++windows_;
  return true;
}

std::size_t ShardedSimulation::run_span_serial(TimePoint horizon) {
  const std::uint64_t before = executed_events();
  const double horizon_ms = horizon.to_ms();
  for (;;) {
    for (ShardId s = 0; s < shards_.size(); ++s) flush_spill(s);
    for (ShardId s = 0; s < shards_.size(); ++s) drain_inbound(s);
    if (!plan_next_window(horizon_ms)) break;
    const TimePoint window_end = TimePoint::at_ms(window_end_ms_);
    for (ShardId s = 0; s < shards_.size(); ++s) {
      run_shard(s, window_end, /*account_cpu=*/true);
    }
  }
  return executed_events() - before;
}

void ShardedSimulation::on_drained() noexcept {
  for (const auto& e : pool_->errors) {
    if (e != nullptr) {
      done_ = true;
      return;
    }
  }
  done_ = !plan_next_window(span_horizon_ms_);
}

void ShardedSimulation::worker_span(std::size_t w) {
  // One thread-CPU measurement spans the whole call: worker busy time
  // covers event execution, mailbox work and barrier arrival -- but
  // not time blocked or descheduled -- at the cost of two clock reads
  // per span instead of two per window.
  const double cpu0 = thread_cpu_seconds();
  std::uint64_t executed = 0;
  const std::size_t n = shards_.size();
  // Boundary protocol per window: every worker flushes its shards'
  // outbound spill, barrier; drains their inbound mailboxes, barrier
  // (whose completion -- run on exactly one thread while the rest are
  // parked -- adapts the epoch, rebalances the map, and sizes the next
  // window or declares termination); runs its shards.  The run phase
  // of window W overlaps other workers' flush for the next boundary,
  // which is safe: each mailbox has one producer (flush/post from the
  // shard's owner) and one consumer (the destination owner's drain,
  // strictly after the flush barrier).  The shard -> worker map is
  // only written inside the drain barrier's completion, so every read
  // here is ordered against it.
  for (;;) {
    for (std::size_t c = 0; c < n; ++c) {
      if (cell_worker_[c] == w) flush_spill(static_cast<ShardId>(c));
    }
    pool_->flushed.arrive_and_wait();
    for (std::size_t c = 0; c < n; ++c) {
      if (cell_worker_[c] == w) drain_inbound(static_cast<ShardId>(c));
    }
    pool_->drained.arrive_and_wait();
    if (done_) break;
    const TimePoint window_end = TimePoint::at_ms(window_end_ms_);
    try {
      for (std::size_t c = 0; c < n; ++c) {
        if (cell_worker_[c] == w) {
          executed +=
              run_shard(static_cast<ShardId>(c), window_end, per_cell_cpu_);
        }
      }
    } catch (...) {
      // Park the error and keep honoring the barriers so no peer
      // deadlocks; the next boundary terminates everyone.
      pool_->errors[w] = std::current_exception();
    }
  }
  const double cpu = thread_cpu_seconds() - cpu0;
  worker_stats_[w].executed += executed;
  worker_stats_[w].busy_seconds += cpu;
  // With the static 1:1 map, worker w's whole-span measurement is also
  // its only shard's busy time (per-shard attribution with per-window
  // clock reads is reserved for runs where the map can diverge).
  if (!per_cell_cpu_) shards_[w]->stats.busy_seconds += cpu;
}

void ShardedSimulation::worker_thread(std::size_t w) {
  if (opts_.exec.pin_threads) pin_to_cpu(w);
  for (;;) {
    pool_->start_gate.arrive_and_wait();
    if (pool_->shutdown) return;
    worker_span(w);
    pool_->end_gate.arrive_and_wait();
  }
}

void ShardedSimulation::ensure_pool() {
  if (pool_ != nullptr) return;
  pool_ = std::make_unique<Pool>(this, workers_);
  pool_->threads.reserve(workers_ - 1);
  for (std::size_t w = 1; w < workers_; ++w) {
    pool_->threads.emplace_back([this, w] { worker_thread(w); });
  }
}

std::size_t ShardedSimulation::run_span_parallel(TimePoint horizon) {
  const std::uint64_t before = executed_events();
  ensure_pool();
  done_ = false;
  span_horizon_ms_ = horizon.to_ms();
  for (auto& e : pool_->errors) e = nullptr;
  // Wake the parked pool, run worker 0's share on this thread, then
  // wait for everyone to finish the span.  The caller's thread is
  // never pinned -- only pool threads are.
  pool_->start_gate.arrive_and_wait();
  worker_span(0);
  pool_->end_gate.arrive_and_wait();
  for (auto& e : pool_->errors) {
    if (e != nullptr) std::rethrow_exception(e);
  }
  return executed_events() - before;
}

std::size_t ShardedSimulation::run_span(TimePoint horizon) {
  const std::size_t executed = (opts_.parallel && workers_ > 1)
                                   ? run_span_parallel(horizon)
                                   : run_span_serial(horizon);
  if (horizon.to_ms() < kInf) {
    // Align every clock with the horizon (mirrors Simulation::run_until).
    for (auto& s : shards_) {
      if (s->sim.now() < horizon) s->sim.run_until(horizon);
    }
  }
  return executed;
}

std::uint64_t ShardedSimulation::mailbox_pair_hwm(ShardId src,
                                                  ShardId dst) const {
  XAR_EXPECTS(src < shards_.size() && dst < shards_.size());
  if (src == dst) return 0;
  const std::size_t ring =
      mailboxes_[src * shards_.size() + dst]->high_water();
  const std::size_t spill = shards_[src]->spill_peak[dst];
  return static_cast<std::uint64_t>(std::max(ring, spill));
}

void ShardedSimulation::register_metrics(obs::Registry& registry,
                                         const std::string& prefix) const {
  const std::size_t n = shards_.size();
  for (std::size_t s = 0; s < n; ++s) {
    const std::string base = prefix + ".shard" + std::to_string(s) + ".";
    const ShardStats& st = shards_[s]->stats;
    registry.link_counter(base + "executed", &st.executed);
    registry.link_counter(base + "posts", &st.posts);
    registry.link_counter(base + "received", &st.received);
    registry.link_counter(base + "backpressure_stalls",
                          &st.backpressure_stalls);
    // steals (like busy_seconds) is wall-clock scheduling state -- 0 in
    // serial mode, worker-dependent in parallel -- so registering it
    // would break the byte-identical serial-vs-parallel snapshot.
    registry.link_gauge(base + "mailbox_hwm", &st.mailbox_hwm);
  }
  for (std::size_t src = 0; src < n; ++src) {
    for (std::size_t dst = 0; dst < n; ++dst) {
      if (src == dst) continue;
      registry.probe(
          prefix + ".mailbox." + std::to_string(src) + "_" +
              std::to_string(dst) + ".hwm",
          [this, src, dst] {
            return static_cast<double>(mailbox_pair_hwm(
                static_cast<ShardId>(src), static_cast<ShardId>(dst)));
          },
          obs::Registry::Kind::kGauge);
    }
  }
}

std::size_t ShardedSimulation::run() {
  return run_span(TimePoint::at_ms(kInf));
}

std::size_t ShardedSimulation::run_until(TimePoint horizon) {
  XAR_EXPECTS(horizon >= now());
  return run_span(horizon);
}

}  // namespace xartrek::sim
