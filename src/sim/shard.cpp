#include "sim/shard.hpp"

#include <algorithm>
#include <barrier>
#include <exception>
#include <limits>
#include <thread>
#include <utility>

#include "common/cpu_time.hpp"

namespace xartrek::sim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

ShardedSimulation::ShardedSimulation(Options opts) : opts_(opts) {
  XAR_EXPECTS(opts.shards >= 1);
  XAR_EXPECTS(opts.epoch > Duration::zero());
  XAR_EXPECTS(opts.mailbox_capacity >= 1);
  const std::size_t n = opts.shards;
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto state = std::make_unique<ShardState>();
    state->spill.resize(n);
    state->spill_head.assign(n, 0);
    shards_.push_back(std::move(state));
  }
  mailboxes_.reserve(n * n);
  for (std::size_t i = 0; i < n * n; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>(opts.mailbox_capacity));
  }
}

std::uint64_t ShardedSimulation::executed_events() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->sim.executed_events();
  return total;
}

void ShardedSimulation::post(ShardId src, ShardId dst, TimePoint t,
                             UniqueCallback cb) {
  XAR_EXPECTS(src < shards_.size() && dst < shards_.size());
  XAR_EXPECTS(cb != nullptr);
  ShardState& s = *shards_[src];
  if (src == dst) {
    // Same shard: an ordinary local event, any time >= now.
    s.sim.schedule_at(t, std::move(cb));
    return;
  }
  // Lookahead contract: the receiver is executing the same window, so
  // the message must land at or past its end.  (A tiny epsilon absorbs
  // the rounding slack of `now + latency` vs `min_next + epoch`.)
  XAR_EXPECTS(t.to_ms() >= window_end_ms_ - 1e-9);
  ++s.stats.posts;
  CrossShardEvent ev{t.to_ms(), std::move(cb)};
  auto& spill = s.spill[dst];
  const bool spilling = s.spill_head[dst] < spill.size();
  if (spilling || !mailbox(src, dst).try_push(std::move(ev))) {
    // Full (or already spilling -- later messages must queue behind the
    // spill to keep FIFO order).  Delivery slips to a later boundary.
    ++s.stats.backpressure_stalls;
    spill.push_back(std::move(ev));
  }
}

void ShardedSimulation::flush_spill(ShardId src) {
  ShardState& s = *shards_[src];
  for (ShardId dst = 0; dst < shards_.size(); ++dst) {
    auto& spill = s.spill[dst];
    std::size_t& head = s.spill_head[dst];
    while (head < spill.size() &&
           mailbox(src, dst).try_push(std::move(spill[head]))) {
      ++head;
    }
    if (head == spill.size()) {
      spill.clear();  // keeps capacity for the next burst
      head = 0;
    }
  }
}

void ShardedSimulation::drain_inbound(ShardId dst) {
  ShardState& d = *shards_[dst];
  const double now_ms = d.sim.now().to_ms();
  CrossShardEvent ev;
  for (ShardId src = 0; src < shards_.size(); ++src) {
    if (src == dst) continue;
    while (mailbox(src, dst).try_pop(ev)) {
      // A message deferred by backpressure may surface after its
      // timestamp; it then runs as early as possible.
      const double at = std::max(ev.at_ms, now_ms);
      d.sim.schedule_at(TimePoint::at_ms(at), std::move(ev.cb));
      ++d.stats.received;
    }
  }
}

void ShardedSimulation::run_shard(ShardId id, TimePoint window_end,
                                  bool account_cpu) {
  ShardState& s = *shards_[id];
  const std::uint64_t before = s.sim.executed_events();
  const double cpu0 = account_cpu ? thread_cpu_seconds() : 0.0;
  s.sim.run_until(window_end);
  if (account_cpu) s.stats.busy_seconds += thread_cpu_seconds() - cpu0;
  s.stats.executed += s.sim.executed_events() - before;
}

double ShardedSimulation::min_next_ms() {
  double min_next = kInf;
  bool spill_left = false;
  for (auto& s : shards_) {
    min_next = std::min(min_next, s->sim.next_event_time().to_ms());
    for (std::size_t dst = 0; dst < shards_.size(); ++dst) {
      spill_left = spill_left || s->spill_head[dst] < s->spill[dst].size();
    }
  }
  if (spill_left) {
    // Spilled messages must reach the next boundary as soon as
    // possible: bound the window to one epoch from the current time.
    min_next = std::min(min_next, shards_[0]->sim.now().to_ms());
  }
  return min_next;
}

std::size_t ShardedSimulation::run_span_serial(TimePoint horizon) {
  const std::uint64_t before = executed_events();
  for (;;) {
    for (ShardId s = 0; s < shards_.size(); ++s) flush_spill(s);
    for (ShardId s = 0; s < shards_.size(); ++s) drain_inbound(s);
    const double min_next = min_next_ms();
    if (min_next == kInf) break;            // globally idle and drained
    if (min_next > horizon.to_ms()) break;  // nothing left within horizon
    window_end_ms_ =
        std::min(min_next + opts_.epoch.to_ms(), horizon.to_ms());
    const TimePoint window_end = TimePoint::at_ms(window_end_ms_);
    for (ShardId s = 0; s < shards_.size(); ++s) {
      run_shard(s, window_end, /*account_cpu=*/true);
    }
  }
  return executed_events() - before;
}

std::size_t ShardedSimulation::run_span_parallel(TimePoint horizon) {
  const std::uint64_t before = executed_events();
  const std::size_t n = shards_.size();
  done_ = false;
  std::vector<std::exception_ptr> errors(n);

  // Boundary protocol per window: every thread flushes its outbound
  // spill, barrier; drains its inbound mailboxes, barrier (whose
  // completion -- run on exactly one thread while the rest are parked
  // -- sizes the next window or declares termination); runs its shard.
  // The run phase of window W overlaps other shards' flush of W+1,
  // which is safe: each mailbox has one producer (flush/post from src)
  // and one consumer (drain on dst, which is strictly after the
  // barrier that the producer's run phase precedes).
  auto on_drained = [this, horizon, &errors]() noexcept {
    for (const auto& e : errors) {
      if (e != nullptr) {
        done_ = true;
        return;
      }
    }
    const double min_next = min_next_ms();
    if (min_next == kInf || min_next > horizon.to_ms()) {
      done_ = true;
      return;
    }
    window_end_ms_ =
        std::min(min_next + opts_.epoch.to_ms(), horizon.to_ms());
  };
  std::barrier flushed(static_cast<std::ptrdiff_t>(n));
  std::barrier<decltype(on_drained)> drained(static_cast<std::ptrdiff_t>(n),
                                             on_drained);

  auto worker = [&](ShardId id) {
    // One thread-CPU measurement spans the whole run: per-shard busy
    // time then covers event execution, mailbox work and barrier
    // arrival -- but not time blocked or descheduled -- at the cost of
    // two clock reads per run instead of two per window.
    const double cpu0 = thread_cpu_seconds();
    for (;;) {
      flush_spill(id);
      flushed.arrive_and_wait();
      drain_inbound(id);
      drained.arrive_and_wait();
      if (done_) break;
      try {
        run_shard(id, TimePoint::at_ms(window_end_ms_),
                  /*account_cpu=*/false);
      } catch (...) {
        // Park the error and keep honoring the barriers so no peer
        // deadlocks; the next boundary terminates everyone.
        errors[id] = std::current_exception();
      }
    }
    shards_[id]->stats.busy_seconds += thread_cpu_seconds() - cpu0;
  };

  std::vector<std::thread> threads;
  threads.reserve(n - 1);
  for (ShardId id = 1; id < n; ++id) {
    threads.emplace_back(worker, id);
  }
  worker(0);
  for (auto& t : threads) t.join();
  for (auto& e : errors) {
    if (e != nullptr) std::rethrow_exception(e);
  }
  return executed_events() - before;
}

std::size_t ShardedSimulation::run_span(TimePoint horizon) {
  const std::size_t executed =
      (opts_.parallel && shards_.size() > 1) ? run_span_parallel(horizon)
                                             : run_span_serial(horizon);
  if (horizon.to_ms() < kInf) {
    // Align every clock with the horizon (mirrors Simulation::run_until).
    for (auto& s : shards_) {
      if (s->sim.now() < horizon) s->sim.run_until(horizon);
    }
  }
  return executed;
}

std::size_t ShardedSimulation::run() {
  return run_span(TimePoint::at_ms(kInf));
}

std::size_t ShardedSimulation::run_until(TimePoint horizon) {
  XAR_EXPECTS(horizon >= now());
  return run_span(horizon);
}

}  // namespace xartrek::sim
