#include "sim/ps_resource.hpp"

#include <utility>
#include <vector>

namespace xartrek::sim {

namespace {
// Completion tolerance: service demands are milliseconds-scale doubles;
// anything below a femto-unit of residual demand is rounding noise.
constexpr double kEps = 1e-9;
}  // namespace

PsResource::PsResource(Simulation& sim, Config cfg)
    : sim_(sim), cfg_(std::move(cfg)), last_advance_(sim.now()) {
  XAR_EXPECTS(cfg_.capacity > 0.0);
  XAR_EXPECTS(cfg_.per_job_cap > 0.0);
}

PsResource::JobId PsResource::submit(double demand, Callback on_complete) {
  XAR_EXPECTS(demand >= 0.0);
  XAR_EXPECTS(on_complete != nullptr);
  advance();
  const JobId id = next_id_++;
  jobs_.emplace(id, Job{demand, std::move(on_complete)});
  reschedule();
  return id;
}

bool PsResource::cancel(JobId id) {
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  advance();
  jobs_.erase(it);
  reschedule();
  return true;
}

double PsResource::delivered_work() const {
  // Include service accrued since the last bookkeeping point.
  const double elapsed = (sim_.now() - last_advance_).to_ms();
  const double rate = rate_per_job(jobs_.size());
  return delivered_ + elapsed * rate * static_cast<double>(jobs_.size());
}

double PsResource::remaining_demand(JobId id) const {
  auto it = jobs_.find(id);
  XAR_EXPECTS(it != jobs_.end());
  const double elapsed = (sim_.now() - last_advance_).to_ms();
  const double served = elapsed * rate_per_job(jobs_.size());
  const double rem = it->second.remaining - served;
  return rem > 0.0 ? rem : 0.0;
}

void PsResource::advance() {
  const double elapsed = (sim_.now() - last_advance_).to_ms();
  last_advance_ = sim_.now();
  if (elapsed <= 0.0 || jobs_.empty()) return;
  const double served = elapsed * rate_per_job(jobs_.size());
  delivered_ += served * static_cast<double>(jobs_.size());
  for (auto& [id, job] : jobs_) {
    job.remaining -= served;
    if (job.remaining < 0.0) job.remaining = 0.0;
  }
}

void PsResource::reschedule() {
  pending_.cancel();
  if (jobs_.empty()) return;
  double min_remaining = jobs_.begin()->second.remaining;
  for (const auto& [id, job] : jobs_) {
    if (job.remaining < min_remaining) min_remaining = job.remaining;
  }
  const double rate = rate_per_job(jobs_.size());
  XAR_ASSERT(rate > 0.0);
  const Duration dt = Duration::ms(min_remaining / rate);
  pending_ = sim_.schedule_in(dt, [this] { on_tick(); });
}

void PsResource::on_tick() {
  advance();
  // Collect finished jobs first, then run their callbacks after internal
  // state is consistent: callbacks routinely resubmit work to this very
  // resource (CP.22 in spirit -- never call unknown code mid-update).
  std::vector<Callback> done;
  for (auto it = jobs_.begin(); it != jobs_.end();) {
    if (it->second.remaining <= kEps) {
      done.push_back(std::move(it->second.on_complete));
      it = jobs_.erase(it);
    } else {
      ++it;
    }
  }
  reschedule();
  for (auto& cb : done) cb();
}

}  // namespace xartrek::sim
