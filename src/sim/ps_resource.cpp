#include "sim/ps_resource.hpp"

#include <algorithm>
#include <utility>

namespace xartrek::sim {

namespace {
// Completion tolerance: service demands are milliseconds-scale doubles;
// anything below a femto-unit of residual demand is rounding noise.
constexpr double kEps = 1e-9;
}  // namespace

PsResource::PsResource(Simulation& sim, Config cfg)
    : sim_(sim), cfg_(std::move(cfg)), last_advance_(sim.now()) {
  XAR_EXPECTS(cfg_.capacity > 0.0);
  XAR_EXPECTS(cfg_.per_job_cap > 0.0);
}

void PsResource::release_slot(std::uint32_t slot) {
  slots_[slot].on_complete = nullptr;
  slots_.release(slot);  // invalidates outstanding ids and heap husks
  --live_;
}

void PsResource::heap_push(HeapEntry entry) {
  heap_.push_back(entry);
  std::push_heap(heap_.begin(), heap_.end(), later);
}

void PsResource::heap_pop_root() {
  XAR_ASSERT(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), later);
  heap_.pop_back();
}

PsResource::JobId PsResource::submit(double demand, Callback on_complete) {
  XAR_EXPECTS(demand >= 0.0);
  XAR_EXPECTS(on_complete != nullptr);
  advance();
  const std::uint32_t slot = slots_.acquire();
  JobSlot& s = slots_[slot];
  s.finish_v = vtime_ + demand;
  s.seq = next_seq_++;
  s.on_complete = std::move(on_complete);
  ++live_;
  const std::uint32_t generation = slots_.generation_of(slot);
  heap_push(HeapEntry{s.finish_v, s.seq, slot, generation});
  reschedule();
  return encode_id(slot, generation);
}

void PsResource::set_capacity_scale(double scale) {
  XAR_EXPECTS(scale > 0.0);
  if (scale == scale_) return;
  // Settle attained service at the old rate, switch, re-arm the next
  // completion at the new rate -- the standard mid-run mutation pattern.
  advance();
  scale_ = scale;
  reschedule();
}

bool PsResource::cancel(JobId id) {
  const std::uint32_t slot = resolve(id);
  if (slot == kNoSlot) return false;
  advance();
  release_slot(slot);  // the heap husk is reaped lazily
  reschedule();
  return true;
}

double PsResource::delivered_work() const {
  // Include service accrued since the last bookkeeping point.
  const double elapsed = (sim_.now() - last_advance_).to_ms();
  const double rate = rate_per_job(live_);
  return delivered_ + elapsed * rate * static_cast<double>(live_);
}

double PsResource::remaining_demand(JobId id) const {
  const std::uint32_t slot = resolve(id);
  XAR_EXPECTS(slot != kNoSlot);
  const double elapsed = (sim_.now() - last_advance_).to_ms();
  const double v_now = vtime_ + elapsed * rate_per_job(live_);
  const double rem = slots_[slot].finish_v - v_now;
  return rem > 0.0 ? rem : 0.0;
}

void PsResource::advance() {
  const double elapsed = (sim_.now() - last_advance_).to_ms();
  last_advance_ = sim_.now();
  if (elapsed <= 0.0 || live_ == 0) return;
  const double served = elapsed * rate_per_job(live_);
  vtime_ += served;
  delivered_ += served * static_cast<double>(live_);
}

void PsResource::reschedule() {
  pending_.cancel();
  // Reap cancelled husks so the root names the next live completion.
  while (!heap_.empty() && !entry_live(heap_.front())) heap_pop_root();
  if (heap_.empty()) {
    // Idle: no live job (every live job holds a heap entry) and no
    // outstanding finish time references the clock, so rebase it.
    // Otherwise vtime_ would grow monotonically forever and its ulp
    // would eventually swallow small demands in long simulations.
    vtime_ = 0.0;
    return;
  }
  const double rate = rate_per_job(live_);
  XAR_ASSERT(rate > 0.0);
  double dt_ms = (heap_.front().finish_v - vtime_) / rate;
  if (dt_ms < 0.0) dt_ms = 0.0;
  pending_ = sim_.schedule_in(Duration::ms(dt_ms), [this] { on_tick(); });
}

void PsResource::on_tick() {
  advance();
  // Collect finished jobs first, then run their callbacks after internal
  // state is consistent: callbacks routinely resubmit work to this very
  // resource (CP.22 in spirit -- never call unknown code mid-update).
  // The scratch vector is taken out of the member (re-entrant callbacks
  // see an empty pool and fall back to a fresh allocation) and its
  // capacity returned afterwards, so the steady state reuses one warm
  // buffer.
  auto done = std::move(done_scratch_);
  done.clear();
  while (!heap_.empty()) {
    const HeapEntry top = heap_.front();
    if (!entry_live(top)) {
      heap_pop_root();
      continue;
    }
    JobSlot& s = slots_[top.slot];
    if (s.finish_v - vtime_ > kEps) break;
    done.emplace_back(s.seq, std::move(s.on_complete));
    release_slot(top.slot);
    heap_pop_root();
  }
  // The heap surfaces the batch in (finish_v, seq) order; a batch may
  // contain *near*-ties whose finish times differ only by rounding
  // (below kEps), so restore exact submission order before invoking --
  // the documented same-instant contract, and what the per-job-decrement
  // formulation did by iterating its id-ordered map.
  std::sort(done.begin(), done.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  reschedule();
  for (auto& [seq, cb] : done) cb();
  done.clear();
  done_scratch_ = std::move(done);
}

}  // namespace xartrek::sim
