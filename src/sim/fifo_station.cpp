#include "sim/fifo_station.hpp"

#include <utility>

namespace xartrek::sim {

void FifoStation::enqueue(Duration service, Callback on_complete) {
  XAR_EXPECTS(service >= Duration::zero());
  XAR_EXPECTS(on_complete != nullptr);
  queue_.push_back(Request{service, std::move(on_complete)});
  if (!busy_) start_next();
}

void FifoStation::start_next() {
  XAR_ASSERT(!busy_);
  if (queue_.empty()) return;
  Request req = std::move(queue_.front());
  queue_.pop_front();
  busy_ = true;
  busy_since_ = sim_.now();
  in_service_ = std::move(req.on_complete);
  sim_.schedule_in(req.service, [this] { finish_current(); });
}

void FifoStation::finish_current() {
  busy_ = false;
  busy_accum_ += sim_.now() - busy_since_;
  ++completed_;
  Callback cb = std::move(in_service_);
  // Start the next request before invoking the callback so a callback
  // that re-enqueues observes a consistent queue.
  start_next();
  cb();
}

Duration FifoStation::busy_time() const {
  Duration t = busy_accum_;
  if (busy_) t += sim_.now() - busy_since_;
  return t;
}

}  // namespace xartrek::sim
