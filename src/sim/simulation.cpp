#include "sim/simulation.hpp"

#include <limits>
#include <utility>

namespace xartrek::sim {

Simulation::EventHandle Simulation::schedule_at(TimePoint t, Callback cb) {
  XAR_EXPECTS(t >= now_);
  XAR_EXPECTS(cb != nullptr);
  auto alive = std::make_shared<bool>(true);
  queue_.push(Event{t, next_seq_++, alive, std::move(cb)});
  return EventHandle{std::move(alive)};
}

bool Simulation::step(TimePoint horizon) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (top.at > horizon) return false;
    // Move the event out before executing: the callback may schedule
    // further events and mutate the queue.
    Event ev{top.at, top.seq, top.alive, std::move(const_cast<Event&>(top).cb)};
    queue_.pop();
    if (!*ev.alive) continue;  // cancelled
    XAR_ASSERT(ev.at >= now_);
    now_ = ev.at;
    *ev.alive = false;  // the event has fired; handles become inert
    ++executed_;
    ev.cb();
    return true;
  }
  return false;
}

std::size_t Simulation::run() {
  std::size_t n = 0;
  while (step(TimePoint::at_ms(std::numeric_limits<double>::infinity()))) ++n;
  return n;
}

std::size_t Simulation::run_until(TimePoint horizon) {
  XAR_EXPECTS(horizon >= now_);
  std::size_t n = 0;
  while (step(horizon)) ++n;
  if (horizon > now_) now_ = horizon;
  return n;
}

}  // namespace xartrek::sim
