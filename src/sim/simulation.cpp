#include "sim/simulation.hpp"

#include <limits>
#include <utility>

namespace xartrek::sim {

namespace {
constexpr std::size_t kHeapArity = 4;
}  // namespace

void Simulation::release_slot(std::uint32_t slot) {
  slots_[slot] = nullptr;  // drop captured state now, not at slot reuse
  slots_.release(slot);    // existing handles and heap husks become inert
}

void Simulation::cancel_slot(std::uint32_t slot, std::uint32_t generation) {
  // The heap entry stays behind as a husk; `step` reaps it when it
  // surfaces.  A generation mismatch means the event already fired (or
  // this very slot was recycled for a newer event): nothing to do.
  if (slot_pending(slot, generation)) release_slot(slot);
}

// Both sift directions move a hole instead of swapping: one entry copy
// per level rather than three.
void Simulation::heap_push(HeapEntry entry) {
  if (root_stale_) {
    // The fired root is logically gone; the new entry takes its place
    // with one sift-down instead of a pop followed by a push.
    root_stale_ = false;
    sift_down_from_root(entry);
    return;
  }
  std::size_t i = heap_.size();
  heap_.push_back(entry);  // reserves the hole; overwritten on placement
  while (i > 0) {
    const std::size_t parent = (i - 1) / kHeapArity;
    if (entry.key >= heap_[parent].key) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = entry;
}

void Simulation::heap_pop_root() {
  XAR_ASSERT(!heap_.empty());
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  if (heap_.empty()) return;
  sift_down_from_root(last);
}

void Simulation::sift_down_from_root(HeapEntry entry) {
  const std::size_t n = heap_.size();
  std::size_t i = 0;
  for (;;) {
    const std::size_t first_child = i * kHeapArity + 1;
    if (first_child >= n) break;
    std::size_t best;
    if (first_child + kHeapArity <= n) {
      // Full block of four children: keys are unique, so a pairwise
      // min tree is exact, and the unpredictable comparisons become
      // conditional moves.
      const std::size_t a =
          heap_[first_child + 1].key < heap_[first_child].key
              ? first_child + 1
              : first_child;
      const std::size_t b =
          heap_[first_child + 3].key < heap_[first_child + 2].key
              ? first_child + 3
              : first_child + 2;
      best = heap_[b].key < heap_[a].key ? b : a;
    } else {
      best = first_child;
      for (std::size_t c = first_child + 1; c < n; ++c) {
        if (heap_[c].key < heap_[best].key) best = c;
      }
    }
    if (heap_[best].key >= entry.key) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = entry;
}

Simulation::EventHandle Simulation::schedule_at(TimePoint t, Callback cb) {
  XAR_EXPECTS(t >= now_);
  XAR_EXPECTS(cb != nullptr);
  const std::uint32_t slot = slots_.acquire();
  slots_[slot] = std::move(cb);
  const std::uint32_t generation = slots_.generation_of(slot);
  heap_push(HeapEntry{heap_key(t, next_seq_++), slot, generation});
  return EventHandle{anchor_, slot, generation};
}

void Simulation::prune() {
  if (root_stale_) {
    // The previous event's callback scheduled nothing; materialize
    // the deferred removal now.
    root_stale_ = false;
    heap_pop_root();
  }
  while (!heap_.empty() &&
         !slots_.live_at(heap_.front().slot, heap_.front().generation)) {
    heap_pop_root();  // cancelled husk
  }
}

TimePoint Simulation::next_event_time() {
  prune();
  if (heap_.empty()) {
    return TimePoint::at_ms(std::numeric_limits<double>::infinity());
  }
  return key_time(heap_.front().key);
}

bool Simulation::step(TimePoint horizon) {
  prune();
  if (heap_.empty()) return false;
  const HeapEntry top = heap_.front();
  const TimePoint at = key_time(top.key);
  if (at > horizon) return false;
  XAR_ASSERT(at >= now_);
  now_ = at;
  // Move the callback out and retire the slot before executing: the
  // callback may schedule further events (growing the slab) and its
  // own handle must already read as fired.  The root entry's removal
  // is deferred so a successor scheduled by the callback can replace
  // it in one sift.
  root_stale_ = true;
  Callback cb = std::move(slots_[top.slot]);
  release_slot(top.slot);
  ++executed_;
  cb();
  return true;
}

std::size_t Simulation::run() {
  std::size_t n = 0;
  while (step(TimePoint::at_ms(std::numeric_limits<double>::infinity()))) ++n;
  return n;
}

std::size_t Simulation::run_until(TimePoint horizon) {
  XAR_EXPECTS(horizon >= now_);
  std::size_t n = 0;
  while (step(horizon)) ++n;
  if (horizon > now_) now_ = horizon;
  return n;
}

}  // namespace xartrek::sim
