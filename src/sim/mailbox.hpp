// Fixed-capacity single-producer/single-consumer mailboxes.
//
// The sharded simulation core posts cross-shard events (link
// deliveries, migration completions, scheduler replies) through one
// mailbox per ordered shard pair.  Within an epoch only the source
// shard's thread pushes and only the destination shard's thread pops
// (and those phases are further separated by the epoch barriers), so a
// wait-free SPSC ring with acquire/release indices is sufficient -- no
// locks, no allocation after construction.
//
// Capacity is fixed: `try_push` refuses when the ring is full and the
// caller (the shard) spills to an unbounded per-destination overflow
// vector that drains into the ring at epoch boundaries.  The spill
// keeps FIFO order, so backpressure delays delivery by whole epochs
// but never reorders it -- and because every shard executes the same
// event sequence regardless of thread interleaving, whether a given
// message spills is itself deterministic.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/assert.hpp"

namespace xartrek::sim {

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two (min 2) so the index
  /// arithmetic is a mask instead of a modulo.
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    buf_.resize(cap);
    mask_ = cap - 1;
  }
  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side.  False when full (caller spills).
  [[nodiscard]] bool try_push(T&& value) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    if (tail - head > mask_) return false;
    buf_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    // Producer-owned high-water mark (one compare on data already in
    // registers): how deep this pair's traffic has ever run, feeding
    // the adaptive-epoch diagnostics and capacity tuning.
    const auto depth = static_cast<std::size_t>(tail + 1 - head);
    if (depth > high_water_) high_water_ = depth;
    return true;
  }

  /// Consumer side.  False when empty.
  [[nodiscard]] bool try_pop(T& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) return false;
    out = std::move(buf_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Approximate from either side; exact at epoch boundaries (when the
  /// other side is parked at the barrier).
  [[nodiscard]] std::size_t size() const {
    return static_cast<std::size_t>(tail_.load(std::memory_order_acquire) -
                                    head_.load(std::memory_order_acquire));
  }
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

  /// Deepest the ring has ever been.  Written by the producer only;
  /// read it from the producer's thread, or from anywhere once the
  /// epoch barriers (or a join) have ordered the sides.  Exact for the
  /// ring itself (the consumer only pops at boundaries, so the
  /// producer-side depth never misses a peak); traffic that overflowed
  /// into the shard's spill FIFO is not visible here -- the sharded
  /// engine folds it in via ShardedSimulation::mailbox_pair_hwm().
  [[nodiscard]] std::size_t high_water() const { return high_water_; }

 private:
  std::vector<T> buf_;
  std::size_t mask_ = 0;
  std::size_t high_water_ = 0;  ///< producer-owned, see high_water()
  /// Producer and consumer indices on separate cache lines so the two
  /// sides never false-share.
  alignas(64) std::atomic<std::uint64_t> head_{0};  ///< consumer
  alignas(64) std::atomic<std::uint64_t> tail_{0};  ///< producer
};

}  // namespace xartrek::sim
