// Allocation-free FIFO ring queue.
//
// Components that park move-only callbacks (hw::Link's latency-phase
// queue, anything with a bounded breathing FIFO) need a queue whose
// steady state never touches the allocator.  std::deque frees and
// re-acquires its chunks as the queue empties and refills, which shows
// up as per-wave allocations on the streaming paths; this ring keeps
// one power-of-two buffer that only ever grows.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/assert.hpp"

namespace xartrek::sim {

template <typename T>
class RingQueue {
 public:
  void push(T value) {
    if (size_ == buf_.size()) grow();
    buf_[(head_ + size_) & (buf_.size() - 1)] = std::move(value);
    ++size_;
  }

  [[nodiscard]] T pop() {
    XAR_EXPECTS(size_ > 0);
    T value = std::move(buf_[head_]);
    head_ = (head_ + 1) & (buf_.size() - 1);
    --size_;
    return value;
  }

  [[nodiscard]] T& front() {
    XAR_EXPECTS(size_ > 0);
    return buf_[head_];
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

 private:
  void grow() {
    const std::size_t cap = buf_.empty() ? 8 : buf_.size() * 2;
    std::vector<T> next(cap);
    for (std::size_t i = 0; i < size_; ++i) {
      next[i] = std::move(buf_[(head_ + i) & (buf_.size() - 1)]);
    }
    buf_ = std::move(next);
    head_ = 0;
  }

  std::vector<T> buf_;  ///< power-of-two capacity; grows, never shrinks
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace xartrek::sim
