// Topology graph + deterministic auto-partitioner for the sharded core.
//
// PR 3 built the epoch-synchronized multi-queue engine
// (sim::ShardedSimulation), but every user had to assemble the
// cross-shard routing by hand: pick a shard per component, construct a
// CrossShardChannel per interaction, and eyeball the conservative
// lookahead contract (every cross-shard latency >= the epoch).  That
// assembly is exactly the kind of mapping SYNERGY-style systems derive
// from a declarative description, and hand-wiring it per experiment is
// why the sharded core never became the default execution engine.
//
// This header derives the mapping instead.  Components register as
// *nodes* of a Topology, each tagged with an affinity group ("cell": a
// datacenter cell, a server, a component group); interactions register
// as *edges* carrying the latency they model.  The partitioner then
//
//   * groups nodes by cell and assigns one ShardedSimulation shard per
//     cell, in ascending cell order -- a pure function of the graph, so
//     the same graph always produces the same shard map;
//   * validates the lookahead contract: every cross-shard edge must
//     model a latency >= the epoch, and a violation is reported with
//     the offending edge's endpoints and the largest epoch that would
//     be legal;
//   * auto-picks the largest legal epoch (the minimum cross-shard edge
//     latency) when none is forced, so synchronization is as coarse as
//     the model allows;
//   * emits the CrossShardChannel wiring: PartitionedEngine::channel
//     derives each edge's channel from the shard map -- inert when both
//     endpoints share a shard (the component keeps its in-shard
//     behavior), a mailbox-backed channel with the edge's modeled
//     latency when they do not.
//
// A single-cell topology degenerates to one shard whose trace is
// identical to the plain single-queue Simulation; adding cells changes
// where components run, never what they compute.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/time.hpp"
#include "sim/shard.hpp"
#include "sim/simulation.hpp"

namespace xartrek::sim {

/// Affinity group: nodes with the same cell always land on the same
/// shard (one shard per distinct cell in the graph).
using CellId = std::uint32_t;
/// A registered component.
using NodeId = std::uint32_t;
/// A registered interaction between two components.
using EdgeId = std::uint32_t;

/// The component/interaction graph an experiment declares before any
/// simulation exists.  Build it up front, then realize it with a
/// PartitionedEngine; the graph itself owns no simulation state.
class Topology {
 public:
  struct Node {
    std::string name;  ///< diagnostics and error messages
    CellId cell = 0;
  };

  /// A directed interaction: "src may create work for dst, `latency`
  /// after the causing event".  The latency is the *model's* cost of
  /// the interaction (a link's propagation + stack traversal, a
  /// reply's far-side hop); the partitioner turns it into the
  /// lookahead bound when the endpoints land on different shards.
  struct Edge {
    NodeId src = 0;
    NodeId dst = 0;
    Duration latency = Duration::zero();
  };

  struct PartitionOptions {
    /// Force a synchronization window length.  Unset = auto-pick the
    /// largest legal epoch (the minimum cross-shard edge latency).
    std::optional<Duration> epoch;
    /// Window length used when nothing constrains it (a single-cell
    /// graph, or one with no cross-cell edges).
    Duration fallback_epoch = Duration::micros(100.0);
    /// Passed through to ShardedSimulation::Options.
    std::size_t mailbox_capacity = 1024;
    bool parallel = false;
    /// Worker/adaptation/stealing knobs, forwarded wholesale to
    /// ShardedSimulation::Options::exec (adaptive epochs may coarsen
    /// up to Plan::max_epoch, the graph-derived legal ceiling).
    ExecOptions exec;
  };

  /// The derived mapping: a pure function of (graph, options), so two
  /// plans of the same graph are always identical.
  struct Plan {
    std::size_t shards = 1;
    Duration epoch = Duration::zero();
    /// Largest window the engine may ever adapt to: the minimum
    /// cross-shard edge latency (== epoch when the epoch was
    /// auto-picked; larger when a tighter epoch was forced).  With no
    /// cross-shard edges any window is legal; capped at 256x the epoch
    /// so adaptation stays bounded.
    Duration max_epoch = Duration::zero();
    std::vector<ShardId> node_shard;  ///< by NodeId
    std::vector<CellId> shard_cell;   ///< by ShardId, ascending cells
    std::size_t cross_edges = 0;      ///< edges spanning two shards

    [[nodiscard]] ShardId shard_of(NodeId n) const {
      XAR_EXPECTS(n < node_shard.size());
      return node_shard[n];
    }
  };

  /// Register a component.  Nodes sharing `cell` share a shard.
  NodeId add_node(std::string name, CellId cell);

  /// Register an interaction.  Requires both endpoints registered and
  /// a non-negative latency; whether the latency is *large enough* is
  /// the partitioner's call (it depends on the epoch).
  EdgeId add_edge(NodeId src, NodeId dst, Duration latency);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }
  [[nodiscard]] const Node& node(NodeId n) const {
    XAR_EXPECTS(n < nodes_.size());
    return nodes_[n];
  }
  [[nodiscard]] const Edge& edge(EdgeId e) const {
    XAR_EXPECTS(e < edges_.size());
    return edges_[e];
  }

  static constexpr EdgeId kNoEdge = 0xFFFF'FFFFu;

  /// First registered edge src -> dst, or kNoEdge.
  [[nodiscard]] EdgeId find_edge(NodeId src, NodeId dst) const;

  /// Partition the graph.  Deterministic; throws xartrek::Error with
  /// the offending edge named when the lookahead contract cannot hold.
  [[nodiscard]] Plan plan(const PartitionOptions& opts) const;
  [[nodiscard]] Plan plan() const { return plan(PartitionOptions{}); }

 private:
  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
};

/// A realized topology: the ShardedSimulation built from a Plan plus
/// the channel derivation that used to be hand-assembled per
/// component.  Components are constructed against `sim_of(node)` and
/// register their cross-shard interactions through `channel`, so the
/// same experiment code runs on one shard or many.
class PartitionedEngine {
 public:
  explicit PartitionedEngine(Topology topo,
                             Topology::PartitionOptions opts = {});
  PartitionedEngine(const PartitionedEngine&) = delete;
  PartitionedEngine& operator=(const PartitionedEngine&) = delete;

  [[nodiscard]] ShardedSimulation& engine() { return ssim_; }
  [[nodiscard]] const Topology& topology() const { return topo_; }
  [[nodiscard]] const Topology::Plan& plan() const { return plan_; }

  [[nodiscard]] ShardId shard_of(NodeId n) const {
    return plan_.shard_of(n);
  }

  /// The execution lane currently running the node's shard.  The plan
  /// fixes *which shard* a node lives on; with stealing enabled, the
  /// engine's live shard -> worker map decides *which lane* runs it
  /// and may change at window boundaries.  Diagnostics only -- code
  /// never needs it for correctness, because traces are independent of
  /// the assignment.
  [[nodiscard]] std::size_t worker_of(NodeId n) const {
    return ssim_.worker_of(plan_.shard_of(n));
  }

  /// The node's home engine -- what its components are constructed
  /// against.
  [[nodiscard]] Simulation& sim_of(NodeId n) {
    return ssim_.shard(plan_.shard_of(n));
  }

  /// Derive the channel for a registered edge: inert when both
  /// endpoints share a shard (the component falls back to its local
  /// behavior), a mailbox-backed channel carrying the edge's modeled
  /// latency otherwise.  The lookahead contract already held at plan
  /// time, so this cannot fail it.
  [[nodiscard]] CrossShardChannel channel(EdgeId e);

  /// Same, looked up by endpoints.  Throws xartrek::Error when no such
  /// edge was registered -- deriving a channel for an undeclared
  /// interaction is exactly the hand-wiring mistake this API removes.
  [[nodiscard]] CrossShardChannel channel_between(NodeId src, NodeId dst);

 private:
  Topology topo_;
  Topology::Plan plan_;
  ShardedSimulation ssim_;
};

}  // namespace xartrek::sim
