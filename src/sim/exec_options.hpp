// Execution-lane tunables shared by every layer that drives the
// sharded engine.
//
// ShardedSimulation::Options, Topology::PartitionOptions and
// exp::ClusterSpec each used to carry their own copies of these seven
// knobs, forwarded field-by-field -- adding a knob meant three-way
// mirroring (and PR 7 in fact forgot to forward three of them at the
// cluster layer).  They now embed this one struct and forward it
// wholesale.
#pragma once

#include <cstddef>
#include <cstdint>

namespace xartrek::sim {

/// How the engine maps shards onto OS threads and adapts its windows.
/// None of these affect the simulated trace -- only wall-clock
/// performance (see shard.hpp's determinism notes).
struct ExecOptions {
  /// Execution lanes in parallel mode; 0 means one per shard.  Fewer
  /// workers than shards is what gives the stealing rebalancer room
  /// to isolate a hot shard.
  std::size_t workers = 0;
  /// Pin each pool thread to a CPU (worker w -> CPU w mod ncpu).
  /// The caller's thread (worker 0) is never touched.
  bool pin_threads = false;
  /// Adaptive epochs: coarsen the window (doubling, up to the model's
  /// legal maximum) after `adapt_quiet_windows` consecutive windows
  /// with zero cross-shard posts; snap back on traffic.
  bool adaptive = false;
  /// Consecutive quiet windows before the first coarsening step.
  std::uint32_t adapt_quiet_windows = 4;
  /// Deterministic shard stealing across workers (parallel balance;
  /// evaluated -- map and stats maintained -- in serial mode too so
  /// both modes agree on every decision).
  bool steal = false;
  /// Windows between rebalance evaluations.
  std::uint32_t steal_period = 16;
  /// Trigger: move a shard when the busiest worker's window load
  /// exceeds `steal_imbalance` times the idlest worker's.
  double steal_imbalance = 1.5;
};

}  // namespace xartrek::sim
