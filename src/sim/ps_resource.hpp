// Processor-sharing resource.
//
// Models a pool of identical servers (CPU cores) or a shared channel
// (Ethernet, PCIe) under egalitarian processor sharing: with `n` active
// jobs the resource serves each at rate
//
//     r(n) = min(per_job_cap, capacity / n)
//
// For a c-core cluster running single-threaded processes, capacity = c
// core-units and per_job_cap = 1 (a process cannot use more than one
// core), which is exactly the contention model behind the paper's
// load-threshold estimation: an application that takes T ms alone takes
// ~T*n/c ms when n > c instances share the cluster.
//
// For a link, capacity = bandwidth (bytes/ms) and per_job_cap = capacity
// (one transfer may saturate the link); concurrent transfers share
// bandwidth fairly.
//
// Formulation: the resource keeps a *virtual clock* V that advances at
// the current per-job service rate r(n) -- V is the attained service of
// a hypothetical job that has been resident since time zero.  A job
// submitted with demand d when the clock reads V0 finishes exactly when
// V reaches V0 + d, so the bookkeeping per submit/cancel/complete is a
// constant-time clock update plus one min-heap operation on the finish
// virtual times: O(log n) instead of charging every resident job.  The
// completion instants are arithmetically identical to the naive
// per-job-decrement formulation (same products, same divisions), and
// same-instant completions still fire in submission order (the heap
// breaks finish-time ties on a submission sequence number).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/time.hpp"
#include "sim/callback.hpp"
#include "sim/simulation.hpp"
#include "sim/slot_pool.hpp"

namespace xartrek::sim {

/// A processor-sharing multi-server resource inside a Simulation.
class PsResource {
 public:
  /// Opaque job handle: encodes a pool slot plus the generation the
  /// slot had when the job was submitted, so a stale id (completed or
  /// cancelled long ago, slot since recycled) can never alias a live
  /// job.
  using JobId = std::uint64_t;
  using Callback = UniqueCallback;

  struct Config {
    std::string name;     ///< for diagnostics
    double capacity;      ///< total service units per ms (> 0)
    double per_job_cap;   ///< max service units per ms for one job (> 0)
  };

  PsResource(Simulation& sim, Config cfg);
  PsResource(const PsResource&) = delete;
  PsResource& operator=(const PsResource&) = delete;

  /// Submit a job demanding `demand` service units (>= 0).  `on_complete`
  /// fires from the event loop when the job's demand has been served.
  /// Completion order among jobs finishing at the same instant follows
  /// submission order.  O(log n) in the number of resident jobs.
  JobId submit(double demand, Callback on_complete);

  /// Remove a job before completion.  Returns false if the job already
  /// completed (or never existed).  The callback does not fire.
  /// O(log n) amortized (the heap entry is reaped lazily).
  bool cancel(JobId id);

  /// Jobs currently in service.  This is the paper's "CPU load" metric
  /// when the resource is the x86 cluster: *every* resident process
  /// counts, whether or not it currently holds a core.
  [[nodiscard]] std::size_t active_jobs() const { return live_; }

  /// Service rate a job enjoys right now (0 when idle).
  [[nodiscard]] double current_rate_per_job() const {
    return rate_per_job(live_);
  }

  /// Scale total capacity by `scale` (> 0) from this instant on; 1.0
  /// restores the configured rate.  Gray-failure hook (kCellSlow): work
  /// already served stays served -- the virtual clock is settled at the
  /// old rate before the new one takes effect, so completion instants
  /// stay arithmetically exact across the change.
  void set_capacity_scale(double scale);
  [[nodiscard]] double capacity_scale() const { return scale_; }

  /// Total service units delivered since construction (for conservation
  /// checks in tests).
  [[nodiscard]] double delivered_work() const;

  /// Remaining demand of a job (for tests).  Requires the job be active.
  [[nodiscard]] double remaining_demand(JobId id) const;

  [[nodiscard]] const Config& config() const { return cfg_; }

  /// Grow the job pool and heap up front so a known load level runs
  /// without a single reallocation (benchmarks; optional).
  void reserve_jobs(std::size_t n) {
    slots_.reserve(n);
    heap_.reserve(n);
    done_scratch_.reserve(n);
  }

 private:
  static constexpr std::uint32_t kNoSlot = SlotPool<int>::kNoSlot;

  /// One pooled job.  `finish_v` is the virtual-clock reading at which
  /// the job's demand is exhausted; `seq` is the global submission
  /// sequence number used to break finish-time ties.
  struct JobSlot {
    double finish_v = 0.0;
    std::uint64_t seq = 0;
    Callback on_complete;
  };

  /// Heap entry: ordering key only; the callback stays in the slab so
  /// sift operations move 24-byte PODs.
  struct HeapEntry {
    double finish_v;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t generation;
  };

  [[nodiscard]] static bool later(const HeapEntry& a, const HeapEntry& b) {
    if (a.finish_v != b.finish_v) return a.finish_v > b.finish_v;
    return a.seq > b.seq;
  }

  [[nodiscard]] double rate_per_job(std::size_t n) const {
    if (n == 0) return 0.0;
    // Both the pool and the per-core cap slow down together: a slowed
    // cell's cores clock down, they do not disappear.
    const double fair = cfg_.capacity * scale_ / static_cast<double>(n);
    const double cap = cfg_.per_job_cap * scale_;
    return fair < cap ? fair : cap;
  }

  [[nodiscard]] static JobId encode_id(std::uint32_t slot,
                                       std::uint32_t generation) {
    return (static_cast<JobId>(slot) << 32) | generation;
  }
  /// The slot a live id names, or kNoSlot if the id is stale/unknown.
  [[nodiscard]] std::uint32_t resolve(JobId id) const {
    const auto slot = static_cast<std::uint32_t>(id >> 32);
    const auto generation = static_cast<std::uint32_t>(id);
    return slots_.live_at(slot, generation) ? slot : kNoSlot;
  }
  [[nodiscard]] bool entry_live(const HeapEntry& e) const {
    return slots_.live_at(e.slot, e.generation);
  }

  void release_slot(std::uint32_t slot);

  void heap_push(HeapEntry entry);
  void heap_pop_root();

  /// Advance the virtual clock (and delivered-work accounting) to now.
  void advance();

  /// (Re)arm the next-completion event from current state.
  void reschedule();

  /// Event body: complete every job whose finish virtual time has been
  /// reached.
  void on_tick();

  Simulation& sim_;
  Config cfg_;
  SlotPool<JobSlot> slots_;
  std::vector<HeapEntry> heap_;  ///< binary min-heap on (finish_v, seq)
  std::size_t live_ = 0;
  std::uint64_t next_seq_ = 0;
  double scale_ = 1.0;           ///< capacity multiplier (gray faults)
  double vtime_ = 0.0;           ///< attained service per resident job
  TimePoint last_advance_ = TimePoint::origin();
  double delivered_ = 0.0;
  Simulation::EventHandle pending_;
  /// (submission seq, callback) of the jobs completing in the current
  /// tick; reused across ticks.  Kept as pairs so a batch containing
  /// near-ties (finish times equal up to rounding) can be put back into
  /// exact submission order before the callbacks run.
  std::vector<std::pair<std::uint64_t, Callback>> done_scratch_;
};

}  // namespace xartrek::sim
