// Processor-sharing resource.
//
// Models a pool of identical servers (CPU cores) or a shared channel
// (Ethernet, PCIe) under egalitarian processor sharing: with `n` active
// jobs the resource serves each at rate
//
//     r(n) = min(per_job_cap, capacity / n)
//
// For a c-core cluster running single-threaded processes, capacity = c
// core-units and per_job_cap = 1 (a process cannot use more than one
// core), which is exactly the contention model behind the paper's
// load-threshold estimation: an application that takes T ms alone takes
// ~T*n/c ms when n > c instances share the cluster.
//
// For a link, capacity = bandwidth (bytes/ms) and per_job_cap = capacity
// (one transfer may saturate the link); concurrent transfers share
// bandwidth fairly.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "common/assert.hpp"
#include "common/time.hpp"
#include "sim/simulation.hpp"

namespace xartrek::sim {

/// A processor-sharing multi-server resource inside a Simulation.
class PsResource {
 public:
  using JobId = std::uint64_t;
  using Callback = std::function<void()>;

  struct Config {
    std::string name;     ///< for diagnostics
    double capacity;      ///< total service units per ms (> 0)
    double per_job_cap;   ///< max service units per ms for one job (> 0)
  };

  PsResource(Simulation& sim, Config cfg);
  PsResource(const PsResource&) = delete;
  PsResource& operator=(const PsResource&) = delete;

  /// Submit a job demanding `demand` service units (>= 0).  `on_complete`
  /// fires from the event loop when the job's demand has been served.
  /// Completion order among jobs finishing at the same instant follows
  /// submission order.
  JobId submit(double demand, Callback on_complete);

  /// Remove a job before completion.  Returns false if the job already
  /// completed (or never existed).  The callback does not fire.
  bool cancel(JobId id);

  /// Jobs currently in service.  This is the paper's "CPU load" metric
  /// when the resource is the x86 cluster: *every* resident process
  /// counts, whether or not it currently holds a core.
  [[nodiscard]] std::size_t active_jobs() const { return jobs_.size(); }

  /// Service rate a job enjoys right now (0 when idle).
  [[nodiscard]] double current_rate_per_job() const {
    return rate_per_job(jobs_.size());
  }

  /// Total service units delivered since construction (for conservation
  /// checks in tests).
  [[nodiscard]] double delivered_work() const;

  /// Remaining demand of a job (for tests).  Requires the job be active.
  [[nodiscard]] double remaining_demand(JobId id) const;

  [[nodiscard]] const Config& config() const { return cfg_; }

 private:
  struct Job {
    double remaining;
    Callback on_complete;
  };

  [[nodiscard]] double rate_per_job(std::size_t n) const {
    if (n == 0) return 0.0;
    const double fair = cfg_.capacity / static_cast<double>(n);
    return fair < cfg_.per_job_cap ? fair : cfg_.per_job_cap;
  }

  /// Charge elapsed service to every active job and update accounting.
  void advance();

  /// (Re)arm the next-completion event from current state.
  void reschedule();

  /// Event body: complete every job whose demand is exhausted.
  void on_tick();

  Simulation& sim_;
  Config cfg_;
  std::map<JobId, Job> jobs_;  // ordered: completion ties resolve by id
  JobId next_id_ = 1;
  TimePoint last_advance_ = TimePoint::origin();
  double delivered_ = 0.0;
  Simulation::EventHandle pending_;
};

}  // namespace xartrek::sim
