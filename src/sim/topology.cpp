#include "sim/topology.hpp"

#include <algorithm>
#include <limits>
#include <utility>

namespace xartrek::sim {

namespace {

/// "cell3/x86 -> cell0/sched" for error messages.
std::string edge_name(const Topology& topo, const Topology::Edge& e) {
  return topo.node(e.src).name + " -> " + topo.node(e.dst).name;
}

std::string ms_string(Duration d) {
  // Error-path only; iostream formatting would be fine but keeps the
  // message style of the contract macros (plain what() strings).
  std::string s = std::to_string(d.to_ms());
  // Trim trailing zeros of the fixed to_string rendering for
  // readability ("2.000000" -> "2").
  while (!s.empty() && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s + " ms";
}

}  // namespace

NodeId Topology::add_node(std::string name, CellId cell) {
  XAR_EXPECTS(nodes_.size() < std::numeric_limits<NodeId>::max());
  nodes_.push_back(Node{std::move(name), cell});
  return static_cast<NodeId>(nodes_.size() - 1);
}

EdgeId Topology::add_edge(NodeId src, NodeId dst, Duration latency) {
  XAR_EXPECTS(src < nodes_.size() && dst < nodes_.size());
  XAR_EXPECTS(latency >= Duration::zero());
  edges_.push_back(Edge{src, dst, latency});
  return static_cast<EdgeId>(edges_.size() - 1);
}

EdgeId Topology::find_edge(NodeId src, NodeId dst) const {
  for (std::size_t e = 0; e < edges_.size(); ++e) {
    if (edges_[e].src == src && edges_[e].dst == dst) {
      return static_cast<EdgeId>(e);
    }
  }
  return kNoEdge;
}

Topology::Plan Topology::plan(const PartitionOptions& opts) const {
  Plan p;

  // Shard assignment: one shard per distinct cell, shards ordered by
  // ascending CellId.  Sorting (not first-appearance order) is what
  // makes the map a pure function of the graph: registering the same
  // components in a different order yields the same plan.
  std::vector<CellId> cells;
  cells.reserve(nodes_.size());
  for (const Node& n : nodes_) cells.push_back(n.cell);
  std::sort(cells.begin(), cells.end());
  cells.erase(std::unique(cells.begin(), cells.end()), cells.end());
  if (cells.empty()) cells.push_back(0);  // empty graph: one idle shard
  p.shard_cell = cells;
  p.shards = cells.size();

  p.node_shard.reserve(nodes_.size());
  for (const Node& n : nodes_) {
    const auto it =
        std::lower_bound(cells.begin(), cells.end(), n.cell);
    p.node_shard.push_back(
        static_cast<ShardId>(std::distance(cells.begin(), it)));
  }

  // Lookahead survey: the partitioner owns the contract the hand-wired
  // call sites used to eyeball.
  const Edge* tightest = nullptr;
  Duration min_cross = Duration::zero();
  for (const Edge& e : edges_) {
    if (p.node_shard[e.src] == p.node_shard[e.dst]) continue;
    ++p.cross_edges;
    if (tightest == nullptr || e.latency < min_cross) {
      tightest = &e;
      min_cross = e.latency;
    }
  }

  if (opts.epoch.has_value()) {
    const Duration epoch = *opts.epoch;
    if (epoch <= Duration::zero()) {
      throw Error("topology partition: the forced epoch must be > 0");
    }
    if (tightest != nullptr && min_cross < epoch) {
      throw Error(
          "topology partition: cross-cell edge `" +
          edge_name(*this, *tightest) + "` models " + ms_string(min_cross) +
          ", below the " + ms_string(epoch) +
          " epoch; the conservative lookahead contract needs every "
          "cross-shard latency >= the epoch (largest legal epoch for "
          "this graph: " +
          ms_string(min_cross) + ")");
    }
    p.epoch = epoch;
  } else if (tightest == nullptr) {
    // Nothing crosses shards (single cell, or isolated cells): any
    // epoch is legal; use the configured fallback.
    XAR_EXPECTS(opts.fallback_epoch > Duration::zero());
    p.epoch = opts.fallback_epoch;
  } else {
    if (min_cross <= Duration::zero()) {
      throw Error(
          "topology partition: cross-cell edge `" +
          edge_name(*this, *tightest) +
          "` models zero latency; no epoch can satisfy the "
          "conservative lookahead contract (cross-cell interactions "
          "must model a positive delay)");
    }
    // The largest legal epoch: synchronize as coarsely as the model
    // allows.
    p.epoch = min_cross;
  }

  // The adaptive ceiling: windows may legally coarsen up to the
  // minimum cross-shard latency regardless of the (possibly tighter)
  // epoch in force.  With nothing crossing shards any window is legal;
  // cap at 256x so adaptation stays bounded.
  p.max_epoch = tightest != nullptr ? min_cross
                                    : Duration::ms(p.epoch.to_ms() * 256.0);
  return p;
}

namespace {

ShardedSimulation::Options engine_options(const Topology::Plan& plan,
                                          const Topology::PartitionOptions&
                                              opts) {
  ShardedSimulation::Options o;
  o.shards = plan.shards;
  o.epoch = plan.epoch;
  o.mailbox_capacity = opts.mailbox_capacity;
  o.parallel = opts.parallel;
  o.max_epoch = plan.max_epoch;
  o.exec = opts.exec;  // one assignment, no three-way mirroring
  return o;
}

}  // namespace

PartitionedEngine::PartitionedEngine(Topology topo,
                                     Topology::PartitionOptions opts)
    : topo_(std::move(topo)),
      plan_(topo_.plan(opts)),
      ssim_(engine_options(plan_, opts)) {}

CrossShardChannel PartitionedEngine::channel(EdgeId e) {
  const Topology::Edge& edge = topo_.edge(e);
  const ShardId src = plan_.shard_of(edge.src);
  const ShardId dst = plan_.shard_of(edge.dst);
  if (src == dst) return CrossShardChannel{};  // in-shard: stay local
  return CrossShardChannel(ssim_, src, dst, edge.latency);
}

CrossShardChannel PartitionedEngine::channel_between(NodeId src,
                                                     NodeId dst) {
  const EdgeId e = topo_.find_edge(src, dst);
  if (e == Topology::kNoEdge) {
    throw Error("topology: no edge registered between `" +
                topo_.node(src).name + "` and `" + topo_.node(dst).name +
                "`; register the interaction before deriving its "
                "channel");
  }
  return channel(e);
}

}  // namespace xartrek::sim
