// NPB-style CG: conjugate-gradient eigenvalue estimation.
//
// The paper uses NAS Parallel Benchmarks CG class A as the representative
// application that is *slower* on the FPGA than on x86 (Table 1's first
// row, and the "non-compute-intensive" pole of Figure 9): the sparse
// matrix-vector product's column gathers are irregular.  Structure
// follows NPB: an outer inverse-power iteration calls an inner 25-step
// conjugate-gradient solve on a random sparse symmetric positive-definite
// matrix and sharpens an eigenvalue estimate `zeta`.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "hls/hls_compiler.hpp"

namespace xartrek::workloads {

/// Sparse symmetric matrix in CSR form.
struct CsrMatrix {
  int n = 0;
  std::vector<std::int32_t> row_ptr;  ///< size n+1
  std::vector<std::int32_t> col_idx;
  std::vector<double> values;

  [[nodiscard]] std::int64_t nonzeros() const {
    return static_cast<std::int64_t>(values.size());
  }
};

/// Random sparse SPD matrix: ~`nz_per_row` symmetric off-diagonal entries
/// per row, diagonally dominant (hence positive-definite).
[[nodiscard]] CsrMatrix make_spd_matrix(Rng& rng, int n, int nz_per_row);

/// y = A x.
void spmv(const CsrMatrix& a, const std::vector<double>& x,
          std::vector<double>& y);

/// Result of the full benchmark run.
struct CgResult {
  double zeta = 0.0;            ///< eigenvalue estimate
  double final_residual = 0.0;  ///< ||r|| from the last inner solve
  int outer_iterations = 0;
};

/// NPB problem-class parameters.
struct CgClass {
  int n;
  int nz_per_row;
  int outer_iters;
  double shift;

  /// Class A: n=14000, 11 nonzeros/row, 15 outer iterations, shift 20
  /// (the paper's CG-A).
  [[nodiscard]] static CgClass class_a() { return {14'000, 11, 15, 20.0}; }
  /// Scaled-down class for unit tests.
  [[nodiscard]] static CgClass class_t() { return {256, 7, 4, 10.0}; }
};

/// Inner solve: 25 CG iterations on A z = x; returns ||r||.
double conj_grad(const CsrMatrix& a, const std::vector<double>& x,
                 std::vector<double>& z, int iterations = 25);

/// The selected function: full outer iteration (NPB main loop).
[[nodiscard]] CgResult cg_benchmark(const CsrMatrix& a, const CgClass& cls);

/// Per-outer-iteration op profile for the HLS model: SpMV column gathers
/// are data-dependent -- irregular on a PCIe FPGA.
[[nodiscard]] hls::OpProfile cg_op_profile(const CgClass& cls);

}  // namespace xartrek::workloads
