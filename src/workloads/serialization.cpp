#include "workloads/serialization.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "common/assert.hpp"
#include "common/binary_io.hpp"

namespace xartrek::workloads {

namespace {
constexpr char kDigitMagic[4] = {'X', 'D', 'I', 'G'};
constexpr const char* kDigitContext = "digit dataset";
// One digit on disk: the packed bit words followed by a label byte.
constexpr std::size_t kWordsPerDigit =
    sizeof(LabeledDigit{}.bits) / sizeof(std::uint64_t);
constexpr std::size_t kDigitRecordBytes = kWordsPerDigit * 8 + 1;

void write_digits(std::ostream& os, const std::vector<LabeledDigit>& v) {
  unsigned char record[kDigitRecordBytes];
  put_le_u32(record, static_cast<std::uint32_t>(v.size()));
  write_block(os, record, 4);
  for (const auto& d : v) {
    unsigned char* p = record;
    for (std::uint64_t w : d.bits) {
      put_le_u64(p, w);
      p += 8;
    }
    *p = static_cast<unsigned char>(d.label);
    write_block(os, record, kDigitRecordBytes);
  }
}
std::vector<LabeledDigit> read_digits(std::istream& is) {
  unsigned char record[kDigitRecordBytes];
  read_block(is, record, 4, kDigitContext);
  const std::uint32_t n = get_le_u32(record);
  std::vector<LabeledDigit> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    read_block(is, record, kDigitRecordBytes, kDigitContext);
    LabeledDigit d;
    const unsigned char* p = record;
    for (auto& w : d.bits) {
      w = get_le_u64(p);
      p += 8;
    }
    const int label = *p;
    if (label < 0 || label > 9) {
      throw Error("digit dataset: label out of range");
    }
    d.label = label;
    out.push_back(d);
  }
  return out;
}
}  // namespace

void write_digit_dataset(std::ostream& os, const DigitDataset& dataset) {
  os.write(kDigitMagic, 4);
  write_digits(os, dataset.training);
  write_digits(os, dataset.tests);
}

DigitDataset read_digit_dataset(std::istream& is) {
  char magic[4];
  is.read(magic, 4);
  if (!is || std::string(magic, 4) != std::string(kDigitMagic, 4)) {
    throw Error("digit dataset: bad magic");
  }
  DigitDataset ds;
  ds.training = read_digits(is);
  ds.tests = read_digits(is);
  return ds;
}

void write_cascade(std::ostream& os, const Cascade& cascade) {
  os << "cascade window " << cascade.base_window << "\n";
  for (const auto& stage : cascade.stages) {
    os << "stage\n";
    for (const auto& f : stage.features) {
      os << "  feature A " << f.ax << " " << f.ay << " " << f.aw << " "
         << f.ah << " B " << f.bx << " " << f.by << " " << f.bw << " "
         << f.bh << " thr " << f.threshold << "\n";
    }
    os << "end\n";
  }
}

Cascade read_cascade(std::istream& is) {
  Cascade cascade;
  cascade.stages.clear();
  std::string line;
  int lineno = 0;
  bool saw_header = false;
  CascadeStage* current = nullptr;
  auto fail = [&lineno](const std::string& msg) -> void {
    throw Error("cascade, line " + std::to_string(lineno) + ": " + msg);
  };
  while (std::getline(is, line)) {
    ++lineno;
    std::istringstream ls(line);
    std::string keyword;
    if (!(ls >> keyword)) continue;
    if (keyword == "cascade") {
      std::string window_kw;
      if (!(ls >> window_kw >> cascade.base_window) ||
          window_kw != "window" || cascade.base_window < 8) {
        fail("malformed cascade header");
      }
      saw_header = true;
    } else if (keyword == "stage") {
      if (!saw_header) fail("stage before cascade header");
      if (current != nullptr) fail("nested stage");
      cascade.stages.emplace_back();
      current = &cascade.stages.back();
    } else if (keyword == "feature") {
      if (current == nullptr) fail("feature outside stage");
      HaarFeature f;
      std::string a_kw;
      std::string b_kw;
      std::string thr_kw;
      if (!(ls >> a_kw >> f.ax >> f.ay >> f.aw >> f.ah >> b_kw >> f.bx >>
            f.by >> f.bw >> f.bh >> thr_kw >> f.threshold) ||
          a_kw != "A" || b_kw != "B" || thr_kw != "thr") {
        fail("malformed feature");
      }
      if (f.aw <= 0 || f.ah <= 0 || f.bw <= 0 || f.bh <= 0) {
        fail("feature with non-positive rectangle");
      }
      current->features.push_back(f);
    } else if (keyword == "end") {
      if (current == nullptr) fail("end without stage");
      if (current->features.empty()) fail("empty stage");
      current = nullptr;
    } else {
      fail("unknown keyword `" + keyword + "`");
    }
  }
  if (current != nullptr) fail("unterminated stage");
  if (!saw_header) fail("missing cascade header");
  if (cascade.stages.empty()) fail("cascade has no stages");
  return cascade;
}

std::string cascade_to_string(const Cascade& cascade) {
  std::ostringstream os;
  os.precision(12);
  write_cascade(os, cascade);
  return os.str();
}

Cascade cascade_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_cascade(is);
}

}  // namespace xartrek::workloads
