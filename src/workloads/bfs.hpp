// Breadth-first search over CSR graphs.
//
// The paper's §4.4 "profitable workloads" study uses BFS as the
// archetypal pointer-chasing application that FPGAs lose badly on
// (Table 4: x86 wins by multiple orders of magnitude at every graph
// size).  The implementation is a standard frontier BFS; its op profile
// marks almost every access irregular, which is what makes the HLS
// latency model produce Table 4's shape.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "hls/hls_compiler.hpp"

namespace xartrek::workloads {

/// A directed graph in compressed-sparse-row form.
struct CsrGraph {
  int nodes = 0;
  std::vector<std::int32_t> row_ptr;  ///< size nodes+1
  std::vector<std::int32_t> adj;      ///< size row_ptr.back()

  [[nodiscard]] std::int64_t edges() const {
    return static_cast<std::int64_t>(adj.size());
  }
};

/// Uniform random digraph with `nodes` vertices and ~`avg_degree`
/// out-edges per vertex; guarantees a Hamiltonian-ish backbone
/// (i -> i+1) so BFS from 0 reaches everything.
[[nodiscard]] CsrGraph make_random_graph(Rng& rng, int nodes,
                                         double avg_degree);

/// The selected function: BFS depths from `source` (-1 = unreachable).
[[nodiscard]] std::vector<std::int32_t> bfs_depths(const CsrGraph& graph,
                                                   int source);

/// Per-node op profile for the HLS model: frontier expansion is
/// dominated by data-dependent neighbour-list gathers.
[[nodiscard]] hls::OpProfile bfs_op_profile(double avg_degree);

}  // namespace xartrek::workloads
