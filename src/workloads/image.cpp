#include "workloads/image.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <string>

namespace xartrek::workloads {

GrayImage::GrayImage(int width, int height, std::uint8_t fill)
    : width_(width),
      height_(height),
      pixels_(static_cast<std::size_t>(width) *
                  static_cast<std::size_t>(height),
              fill) {
  XAR_EXPECTS(width > 0 && height > 0);
}

void write_pgm(std::ostream& os, const GrayImage& image) {
  os << "P5\n"
     << image.width() << " " << image.height() << "\n"
     << "255\n";
  os.write(reinterpret_cast<const char*>(image.pixels().data()),
           static_cast<std::streamsize>(image.pixels().size()));
}

GrayImage read_pgm(std::istream& is) {
  std::string magic;
  is >> magic;
  if (magic != "P5") throw Error("read_pgm: not a binary PGM (P5) stream");
  int width = 0;
  int height = 0;
  int maxval = 0;
  is >> width >> height >> maxval;
  if (!is || width <= 0 || height <= 0 || maxval != 255) {
    throw Error("read_pgm: malformed header");
  }
  is.get();  // single whitespace after header
  GrayImage image(width, height);
  std::vector<char> buf(static_cast<std::size_t>(width) *
                        static_cast<std::size_t>(height));
  is.read(buf.data(), static_cast<std::streamsize>(buf.size()));
  if (!is) throw Error("read_pgm: truncated pixel data");
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      image.set(x, y,
                static_cast<std::uint8_t>(
                    buf[static_cast<std::size_t>(y) *
                            static_cast<std::size_t>(width) +
                        static_cast<std::size_t>(x)]));
    }
  }
  return image;
}

namespace {
void draw_face(GrayImage& img, const PlantedFace& f, Rng& rng) {
  constexpr std::uint8_t kSkin = 205;
  constexpr std::uint8_t kEyes = 80;
  constexpr std::uint8_t kMouth = 105;
  const int s = f.size;
  auto band = [&](double top_frac, double bot_frac) {
    return std::pair<int, int>{f.y + static_cast<int>(top_frac * s),
                               f.y + static_cast<int>(bot_frac * s)};
  };
  const auto [eye_top, eye_bot] = band(0.25, 0.42);
  const auto [mouth_top, mouth_bot] = band(0.67, 0.83);
  for (int y = f.y; y < f.y + s; ++y) {
    for (int x = f.x; x < f.x + s; ++x) {
      std::uint8_t v = kSkin;
      if (y >= eye_top && y < eye_bot) v = kEyes;
      else if (y >= mouth_top && y < mouth_bot) v = kMouth;
      const int noisy =
          static_cast<int>(v) + static_cast<int>(rng.normal(0.0, 4.0));
      img.set(x, y, static_cast<std::uint8_t>(std::clamp(noisy, 0, 255)));
    }
  }
}

[[nodiscard]] bool overlaps(const PlantedFace& a, const PlantedFace& b,
                            int margin) {
  return a.x < b.x + b.size + margin && b.x < a.x + a.size + margin &&
         a.y < b.y + b.size + margin && b.y < a.y + a.size + margin;
}
}  // namespace

SyntheticScene make_scene(Rng& rng, int width, int height, int num_faces,
                          int min_face, int max_face) {
  XAR_EXPECTS(width >= min_face && height >= min_face);
  XAR_EXPECTS(min_face >= 24 && max_face >= min_face);
  SyntheticScene scene;
  scene.image = GrayImage(width, height);
  // Mid-gray noisy background, clearly darker than face skin.
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      const int v = 120 + static_cast<int>(rng.normal(0.0, 10.0));
      scene.image.set(x, y, static_cast<std::uint8_t>(std::clamp(v, 0, 255)));
    }
  }
  int attempts = 0;
  while (static_cast<int>(scene.faces.size()) < num_faces &&
         attempts < 200 * std::max(1, num_faces)) {
    ++attempts;
    const int cap = std::min({max_face, width, height});
    const int size = static_cast<int>(rng.uniform_int(min_face, cap));
    if (width - size < 0 || height - size < 0) continue;
    PlantedFace f{static_cast<int>(rng.uniform_int(0, width - size)),
                  static_cast<int>(rng.uniform_int(0, height - size)), size};
    bool ok = true;
    for (const auto& other : scene.faces) {
      if (overlaps(f, other, 6)) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    draw_face(scene.image, f, rng);
    scene.faces.push_back(f);
  }
  return scene;
}

}  // namespace xartrek::workloads
