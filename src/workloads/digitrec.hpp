// Digit recognition: K-nearest-neighbours over 196-bit digit digests.
//
// Follows the Rosetta `digitrec` benchmark the paper evaluates
// (Digit500 / Digit2000): each handwritten digit is downsampled to a
// 14x14 binary image (196 bits); classification finds the K=3 nearest
// training digests under Hamming distance and majority-votes their
// labels.  This is the genuinely-executed software path; the hardware
// kernel path computes the identical function under the HLS latency
// model (popcount-dense, no irregular access -- exactly why the paper's
// FPGA wins on it).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "hls/hls_compiler.hpp"

namespace xartrek::workloads {

/// A 196-bit digest (14x14 binary image), little-endian across words;
/// bits 196..255 are always zero.
using DigitBits = std::array<std::uint64_t, 4>;

/// One labelled digit.
struct LabeledDigit {
  DigitBits bits{};
  int label = 0;  ///< 0..9
};

/// Training + test corpus.
struct DigitDataset {
  std::vector<LabeledDigit> training;
  std::vector<LabeledDigit> tests;
};

/// Number of set bits in the (masked) 196-bit digest.
[[nodiscard]] int popcount196(const DigitBits& bits);

/// Hamming distance between two digests.
[[nodiscard]] int hamming196(const DigitBits& a, const DigitBits& b);

/// Classify `sample` by K-NN majority vote over `training` (ties break
/// toward the smaller label, matching Rosetta).  Requires k >= 1 and a
/// non-empty training set.
[[nodiscard]] int knn_classify(std::span<const LabeledDigit> training,
                               const DigitBits& sample, int k = 3);

/// Synthetic corpus: ten random 196-bit class prototypes; every sample is
/// its class prototype with a Binomial(noise_flip_bits)-ish number of
/// random bits flipped.  Low noise => near-perfect KNN accuracy, which
/// the tests assert.
[[nodiscard]] DigitDataset make_synthetic_digits(Rng& rng,
                                                 int train_per_class,
                                                 int num_tests,
                                                 double noise_flip_bits);

/// Batch-classification result.
struct DigitRecResult {
  int total = 0;
  int correct = 0;
  [[nodiscard]] double accuracy() const {
    return total == 0 ? 0.0 : static_cast<double>(correct) / total;
  }
};

/// The selected function: classify every test digit (this whole routine
/// is what migrates between x86, ARM and the FPGA).
[[nodiscard]] DigitRecResult digitrec_kernel(const DigitDataset& dataset,
                                             int k = 3);

/// Per-test-item op profile for the HLS model, given the training-set
/// size (the kernel streams the whole training set per test digit).
[[nodiscard]] hls::OpProfile digitrec_op_profile(std::size_t training_size);

}  // namespace xartrek::workloads
