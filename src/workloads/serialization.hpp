// Workload artifact serialization.
//
// The paper's modified benchmarks read their inputs from files (images
// from WIDER-converted PGMs, digit corpora from data files); detector
// cascades are deployment artifacts an operator may tune.  This module
// provides the file formats: a binary digit-corpus format and a text
// cascade format, both strict round-trippers.
#pragma once

#include <iosfwd>
#include <string>

#include "workloads/digitrec.hpp"
#include "workloads/face_detect.hpp"

namespace xartrek::workloads {

/// Binary digit corpus: magic "XDIG", u32 counts, then packed 4x u64
/// words + u8 label per digit.
void write_digit_dataset(std::ostream& os, const DigitDataset& dataset);
[[nodiscard]] DigitDataset read_digit_dataset(std::istream& is);

/// Text cascade format:
///
///   cascade window 24
///   stage
///     feature A 0 0 24 6 B 0 6 24 4 thr 0.15
///   end
///
void write_cascade(std::ostream& os, const Cascade& cascade);
[[nodiscard]] Cascade read_cascade(std::istream& is);

/// Convenience string forms.
[[nodiscard]] std::string cascade_to_string(const Cascade& cascade);
[[nodiscard]] Cascade cascade_from_string(const std::string& text);

}  // namespace xartrek::workloads
