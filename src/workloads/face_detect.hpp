// Viola-Jones-style face detection.
//
// Follows the Rosetta `face-detection` benchmark (the paper's
// FaceDet320/FaceDet640 workloads): an integral image feeds a cascade of
// two-rectangle Haar-like contrast features evaluated over a sliding
// 24x24 base window at multiple scales; windows surviving every stage
// are detections, cleaned up by non-maximum suppression.  The default
// cascade encodes the canonical frontal-face layout (dark eye band, dark
// mouth band on bright skin) that the synthetic scene generator plants,
// so recall/precision are testable against ground truth.
//
// The whole of `detect_faces` is the "selected function" that Xar-Trek
// migrates: dense rectangle sums pipeline beautifully on an FPGA, which
// is why the paper's larger image wins there (Table 1, FaceDet640).
#pragma once

#include <cstdint>
#include <vector>

#include "hls/hls_compiler.hpp"
#include "workloads/image.hpp"

namespace xartrek::workloads {

/// Summed-area table with O(1) rectangle sums.
class IntegralImage {
 public:
  explicit IntegralImage(const GrayImage& image);

  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }

  /// Sum of pixels in [x, x+w) x [y, y+h); the rectangle must lie within
  /// the image.
  [[nodiscard]] std::uint64_t rect_sum(int x, int y, int w, int h) const;

  /// Mean pixel value of the same rectangle.
  [[nodiscard]] double rect_mean(int x, int y, int w, int h) const;

 private:
  [[nodiscard]] std::uint64_t tab(int x, int y) const {
    return table_[static_cast<std::size_t>(y) *
                      (static_cast<std::size_t>(width_) + 1) +
                  static_cast<std::size_t>(x)];
  }
  int width_ = 0;
  int height_ = 0;
  std::vector<std::uint64_t> table_;  // (w+1) x (h+1)
};

/// A two-rectangle contrast feature in base-window (24x24) coordinates:
/// value = (mean(rect A) - mean(rect B)) / 255, in [-1, 1].
struct HaarFeature {
  int ax = 0, ay = 0, aw = 0, ah = 0;  ///< rectangle A (expected brighter)
  int bx = 0, by = 0, bw = 0, bh = 0;  ///< rectangle B (expected darker)
  double threshold = 0.0;              ///< pass when value >= threshold
};

/// One cascade stage: every feature must pass (margins accumulate into
/// the detection score).
struct CascadeStage {
  std::vector<HaarFeature> features;
};

/// A detection cascade over a square base window.
struct Cascade {
  int base_window = 24;
  std::vector<CascadeStage> stages;

  /// The handcrafted frontal-face cascade matched to make_scene's layout.
  [[nodiscard]] static Cascade default_frontal();
};

/// One detected face.
struct Detection {
  int x = 0;
  int y = 0;
  int size = 0;
  double score = 0.0;
};

/// Scan parameters.
struct DetectParams {
  double scale_step = 1.25;  ///< geometric window growth
  int min_window = 24;
  double step_fraction = 0.08;  ///< slide step as a fraction of window
  double nms_iou = 0.3;
};

/// Intersection-over-union of two square detections.
[[nodiscard]] double detection_iou(const Detection& a, const Detection& b);

/// Greedy non-maximum suppression (highest score wins).
[[nodiscard]] std::vector<Detection> non_max_suppress(
    std::vector<Detection> detections, double iou_threshold);

/// The selected function: multi-scale cascade scan + NMS.
[[nodiscard]] std::vector<Detection> detect_faces(
    const GrayImage& image, const Cascade& cascade = Cascade::default_frontal(),
    const DetectParams& params = {});

/// Per-image op profile for the HLS model.
[[nodiscard]] hls::OpProfile face_detect_op_profile(int width, int height);

}  // namespace xartrek::workloads
