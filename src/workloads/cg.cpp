#include "workloads/cg.hpp"

#include <cmath>
#include <map>

#include "common/assert.hpp"

namespace xartrek::workloads {

CsrMatrix make_spd_matrix(Rng& rng, int n, int nz_per_row) {
  XAR_EXPECTS(n >= 2);
  XAR_EXPECTS(nz_per_row >= 1);

  // Build symmetric off-diagonal structure with a map-of-rows, then add a
  // dominant diagonal.
  std::vector<std::map<std::int32_t, double>> rows(
      static_cast<std::size_t>(n));
  const int half = std::max(1, nz_per_row / 2);
  for (int i = 0; i < n; ++i) {
    for (int e = 0; e < half; ++e) {
      const auto j = static_cast<std::int32_t>(rng.uniform_int(0, n - 1));
      if (j == i) continue;
      const double v = rng.uniform_real(-0.5, 0.5);
      rows[static_cast<std::size_t>(i)][j] = v;
      rows[static_cast<std::size_t>(j)][static_cast<std::int32_t>(i)] = v;
    }
  }
  for (int i = 0; i < n; ++i) {
    double dominance = 1.0;
    for (const auto& [j, v] : rows[static_cast<std::size_t>(i)]) {
      dominance += std::abs(v);
    }
    rows[static_cast<std::size_t>(i)][static_cast<std::int32_t>(i)] =
        dominance;
  }

  CsrMatrix a;
  a.n = n;
  a.row_ptr.reserve(static_cast<std::size_t>(n) + 1);
  a.row_ptr.push_back(0);
  for (int i = 0; i < n; ++i) {
    for (const auto& [j, v] : rows[static_cast<std::size_t>(i)]) {
      a.col_idx.push_back(j);
      a.values.push_back(v);
    }
    a.row_ptr.push_back(static_cast<std::int32_t>(a.col_idx.size()));
  }
  return a;
}

void spmv(const CsrMatrix& a, const std::vector<double>& x,
          std::vector<double>& y) {
  XAR_EXPECTS(static_cast<int>(x.size()) == a.n);
  y.assign(static_cast<std::size_t>(a.n), 0.0);
  for (int i = 0; i < a.n; ++i) {
    double sum = 0.0;
    for (std::int32_t p = a.row_ptr[static_cast<std::size_t>(i)];
         p < a.row_ptr[static_cast<std::size_t>(i) + 1]; ++p) {
      sum += a.values[static_cast<std::size_t>(p)] *
             x[static_cast<std::size_t>(
                 a.col_idx[static_cast<std::size_t>(p)])];
    }
    y[static_cast<std::size_t>(i)] = sum;
  }
}

namespace {
[[nodiscard]] double dot(const std::vector<double>& a,
                         const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}
}  // namespace

double conj_grad(const CsrMatrix& a, const std::vector<double>& x,
                 std::vector<double>& z, int iterations) {
  const auto n = static_cast<std::size_t>(a.n);
  z.assign(n, 0.0);
  std::vector<double> r = x;
  std::vector<double> p = r;
  std::vector<double> q(n, 0.0);
  double rho = dot(r, r);

  for (int it = 0; it < iterations; ++it) {
    spmv(a, p, q);
    const double alpha = rho / dot(p, q);
    for (std::size_t i = 0; i < n; ++i) {
      z[i] += alpha * p[i];
      r[i] -= alpha * q[i];
    }
    const double rho_new = dot(r, r);
    const double beta = rho_new / rho;
    rho = rho_new;
    for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
  }

  // NPB reports ||x - A z|| as the residual.
  spmv(a, z, q);
  double norm = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = x[i] - q[i];
    norm += d * d;
  }
  return std::sqrt(norm);
}

CgResult cg_benchmark(const CsrMatrix& a, const CgClass& cls) {
  const auto n = static_cast<std::size_t>(a.n);
  std::vector<double> x(n, 1.0);
  std::vector<double> z;
  CgResult result;
  for (int outer = 0; outer < cls.outer_iters; ++outer) {
    result.final_residual = conj_grad(a, x, z);
    result.zeta = cls.shift + 1.0 / dot(x, z);
    const double znorm = std::sqrt(dot(z, z));
    XAR_ASSERT(znorm > 0.0);
    for (std::size_t i = 0; i < n; ++i) x[i] = z[i] / znorm;
    ++result.outer_iterations;
  }
  return result;
}

hls::OpProfile cg_op_profile(const CgClass& cls) {
  // Body = one SpMV nonzero: multiply-accumulate plus a data-dependent
  // x[col] gather (irregular on a PCIe/HBM FPGA).  One work item = one
  // outer iteration = 25 CG steps over n rows x nz nonzeros, plus vector
  // updates folded into the per-iteration regular cost.
  const auto n = static_cast<double>(cls.n);
  const auto nz = static_cast<double>(cls.nz_per_row);
  hls::OpProfile ops;
  ops.fp_ops = 2;
  ops.int_ops = 1;
  ops.mem_ops = 1;
  ops.irregular_mem_ops = 1;  // the x[col] gather
  ops.iterations_per_item = 25.0 * n * nz * (1.0 + 10.0 / nz);
  return ops;
}

}  // namespace xartrek::workloads
