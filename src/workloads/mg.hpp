// NPB-style MG: 3-D multigrid Poisson solver.
//
// The paper uses NPB MG class B purely as the *background load
// generator* for the medium/high-load experiments (Figures 4-8): n
// simultaneous MG-B processes soak the x86 cores.  The solver here is a
// standard V-cycle on a periodic cube -- weighted-Jacobi smoothing,
// full-weighting restriction, trilinear prolongation -- functional
// enough to unit-test convergence, plus a work model for the simulator.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace xartrek::workloads {

/// A periodic n x n x n grid of doubles (n a power of two).
class Grid3 {
 public:
  explicit Grid3(int n, double fill = 0.0);

  [[nodiscard]] int n() const { return n_; }

  [[nodiscard]] double at(int i, int j, int k) const {
    return data_[index(i, j, k)];
  }
  void set(int i, int j, int k, double v) { data_[index(i, j, k)] = v; }

  [[nodiscard]] std::vector<double>& data() { return data_; }
  [[nodiscard]] const std::vector<double>& data() const { return data_; }

 private:
  [[nodiscard]] std::size_t index(int i, int j, int k) const {
    auto wrap = [this](int v) {
      const int m = v % n_;
      return static_cast<std::size_t>(m < 0 ? m + n_ : m);
    };
    return (wrap(i) * static_cast<std::size_t>(n_) + wrap(j)) *
               static_cast<std::size_t>(n_) +
           wrap(k);
  }
  int n_;
  std::vector<double> data_;
};

/// r = rhs - A u for the 7-point periodic Laplacian (A = -lap, h = 1).
void mg_residual(const Grid3& u, const Grid3& rhs, Grid3& r);

/// ||rhs - A u||_2.
[[nodiscard]] double mg_residual_norm(const Grid3& u, const Grid3& rhs);

/// One weighted-Jacobi sweep (weight 2/3) on A u = rhs.
void mg_smooth(Grid3& u, const Grid3& rhs);

/// Full-weighting restriction to the n/2 grid.
void mg_restrict(const Grid3& fine, Grid3& coarse);

/// Trilinear prolongation and correction: u_fine += P(e_coarse).
void mg_prolong_add(const Grid3& coarse, Grid3& fine);

/// One V-cycle with `pre`/`post` smoothing sweeps, recursing to a 4^3
/// coarsest grid (smoothed heavily there).
void mg_vcycle(Grid3& u, const Grid3& rhs, int pre = 2, int post = 2);

/// Random zero-mean right-hand side (solvable on a periodic domain).
[[nodiscard]] Grid3 mg_random_rhs(Rng& rng, int n);

/// Work model: grid points touched by one V-cycle (for the simulator's
/// load-generator cost).
[[nodiscard]] std::uint64_t mg_vcycle_points(int n, int pre = 2, int post = 2);

}  // namespace xartrek::workloads
