#include "workloads/face_detect.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace xartrek::workloads {

IntegralImage::IntegralImage(const GrayImage& image)
    : width_(image.width()), height_(image.height()) {
  table_.assign((static_cast<std::size_t>(width_) + 1) *
                    (static_cast<std::size_t>(height_) + 1),
                0);
  for (int y = 1; y <= height_; ++y) {
    std::uint64_t row = 0;
    for (int x = 1; x <= width_; ++x) {
      row += image.at(x - 1, y - 1);
      table_[static_cast<std::size_t>(y) *
                 (static_cast<std::size_t>(width_) + 1) +
             static_cast<std::size_t>(x)] = tab(x, y - 1) + row;
    }
  }
}

std::uint64_t IntegralImage::rect_sum(int x, int y, int w, int h) const {
  XAR_EXPECTS(x >= 0 && y >= 0 && w > 0 && h > 0);
  XAR_EXPECTS(x + w <= width_ && y + h <= height_);
  return tab(x + w, y + h) + tab(x, y) - tab(x + w, y) - tab(x, y + h);
}

double IntegralImage::rect_mean(int x, int y, int w, int h) const {
  return static_cast<double>(rect_sum(x, y, w, h)) /
         (static_cast<double>(w) * static_cast<double>(h));
}

Cascade Cascade::default_frontal() {
  // Layout constants mirror make_scene: eye band rows 6..10 of 24
  // (25%-42%), mouth band rows 16..20 (67%-83%).  Rectangle A is the
  // bright region, B the dark one; thresholds leave margin for the
  // generator's noise.
  Cascade c;
  c.base_window = 24;
  // Stage 1 -- cheapest, highest rejection: forehead brighter than eyes.
  c.stages.push_back(CascadeStage{{
      HaarFeature{/*A=*/0, 0, 24, 6, /*B=*/0, 6, 24, 4, /*thr=*/0.15},
  }});
  // Stage 2: cheeks brighter than eyes, cheeks brighter than mouth.
  c.stages.push_back(CascadeStage{{
      HaarFeature{0, 10, 24, 6, 0, 6, 24, 4, 0.15},
      HaarFeature{0, 10, 24, 6, 0, 16, 24, 4, 0.10},
  }});
  // Stage 3: chin brighter than mouth; eye band darker than whole face
  // average (guards against uniform bright blobs).
  c.stages.push_back(CascadeStage{{
      HaarFeature{0, 20, 24, 4, 0, 16, 24, 4, 0.10},
      HaarFeature{0, 0, 24, 24, 0, 6, 24, 4, 0.08},
  }});
  return c;
}

double detection_iou(const Detection& a, const Detection& b) {
  const int x1 = std::max(a.x, b.x);
  const int y1 = std::max(a.y, b.y);
  const int x2 = std::min(a.x + a.size, b.x + b.size);
  const int y2 = std::min(a.y + a.size, b.y + b.size);
  const double inter = std::max(0, x2 - x1) * std::max(0, y2 - y1);
  const double uni = static_cast<double>(a.size) * a.size +
                     static_cast<double>(b.size) * b.size - inter;
  return uni <= 0.0 ? 0.0 : inter / uni;
}

std::vector<Detection> non_max_suppress(std::vector<Detection> detections,
                                        double iou_threshold) {
  std::sort(detections.begin(), detections.end(),
            [](const Detection& a, const Detection& b) {
              return a.score > b.score;
            });
  std::vector<Detection> kept;
  for (const auto& d : detections) {
    bool suppressed = false;
    for (const auto& k : kept) {
      if (detection_iou(d, k) > iou_threshold) {
        suppressed = true;
        break;
      }
    }
    if (!suppressed) kept.push_back(d);
  }
  return kept;
}

namespace {
/// Evaluate one feature on a `w`-pixel window at (wx, wy) scaled by
/// `scale`.  Scaled rectangles are clamped to the window: rounding can
/// otherwise overshoot the integer window size by a pixel and fall off
/// the image at the right/bottom edges.  Returns the margin above
/// threshold; negative means failure.
[[nodiscard]] double feature_margin(const IntegralImage& ii,
                                    const HaarFeature& f, int wx, int wy,
                                    int w, double scale) {
  auto sx = [&](int v) { return static_cast<int>(std::lround(v * scale)); };
  auto rect_mean = [&](int rx, int ry, int rw, int rh) {
    rx = std::min(rx, w - 1);
    ry = std::min(ry, w - 1);
    rw = std::max(1, std::min(rw, w - rx));
    rh = std::max(1, std::min(rh, w - ry));
    return ii.rect_mean(wx + rx, wy + ry, rw, rh);
  };
  const double mean_a =
      rect_mean(sx(f.ax), sx(f.ay), std::max(1, sx(f.aw)),
                std::max(1, sx(f.ah)));
  const double mean_b =
      rect_mean(sx(f.bx), sx(f.by), std::max(1, sx(f.bw)),
                std::max(1, sx(f.bh)));
  const double value = (mean_a - mean_b) / 255.0;
  return value - f.threshold;
}
}  // namespace

std::vector<Detection> detect_faces(const GrayImage& image,
                                    const Cascade& cascade,
                                    const DetectParams& params) {
  XAR_EXPECTS(params.scale_step > 1.0);
  XAR_EXPECTS(params.min_window >= cascade.base_window);
  const IntegralImage ii(image);
  std::vector<Detection> raw;

  for (double window = params.min_window;
       window <= std::min(image.width(), image.height());
       window *= params.scale_step) {
    const double scale = window / cascade.base_window;
    const int w = static_cast<int>(window);
    const int step = std::max(
        1, static_cast<int>(std::lround(window * params.step_fraction)));
    for (int wy = 0; wy + w <= image.height(); wy += step) {
      for (int wx = 0; wx + w <= image.width(); wx += step) {
        double score = 0.0;
        bool alive = true;
        for (const auto& stage : cascade.stages) {
          for (const auto& f : stage.features) {
            const double margin = feature_margin(ii, f, wx, wy, w, scale);
            if (margin < 0.0) {
              alive = false;
              break;
            }
            score += margin;
          }
          if (!alive) break;  // cascade early exit
        }
        if (alive) raw.push_back(Detection{wx, wy, w, score});
      }
    }
  }
  return non_max_suppress(std::move(raw), params.nms_iou);
}

hls::OpProfile face_detect_op_profile(int width, int height) {
  // Body = one feature evaluation on one window: 8 integral-image
  // fetches, address math + compares, two normalization divides.  Window
  // count across the scale pyramid is ~2.8x the base-scale count for a
  // 1.25 step; the cascade kills most windows at stage 1, so ~2 feature
  // evaluations happen per window on average.  One work item = one image.
  const double base_windows =
      (static_cast<double>(width) / 2.0) * (static_cast<double>(height) / 2.0);
  hls::OpProfile ops;
  ops.int_ops = 10;
  ops.mem_ops = 8;
  ops.fp_ops = 2;
  ops.irregular_mem_ops = 0;  // raster scan -- FPGA-friendly
  ops.iterations_per_item = 2.8 * base_windows * 2.0;
  return ops;
}

}  // namespace xartrek::workloads
