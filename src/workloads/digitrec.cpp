#include "workloads/digitrec.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <utility>

#include "common/assert.hpp"

namespace xartrek::workloads {

namespace {
// Mask for the top word: 196 = 3*64 + 4 bits.
constexpr std::uint64_t kTopWordMask = 0xFull;

void mask_digit(DigitBits& bits) { bits[3] &= kTopWordMask; }
}  // namespace

int popcount196(const DigitBits& bits) {
  int n = 0;
  for (std::size_t w = 0; w < bits.size(); ++w) {
    const std::uint64_t v = w == 3 ? (bits[w] & kTopWordMask) : bits[w];
    n += std::popcount(v);
  }
  return n;
}

int hamming196(const DigitBits& a, const DigitBits& b) {
  DigitBits x;
  for (std::size_t w = 0; w < x.size(); ++w) x[w] = a[w] ^ b[w];
  return popcount196(x);
}

int knn_classify(std::span<const LabeledDigit> training,
                 const DigitBits& sample, int k) {
  XAR_EXPECTS(k >= 1);
  XAR_EXPECTS(!training.empty());
  const std::size_t kk = std::min<std::size_t>(
      static_cast<std::size_t>(k), training.size());

  // Maintain the k best (distance, label) pairs -- same structure the
  // Rosetta HLS kernel keeps in registers.
  std::vector<std::pair<int, int>> best;  // (distance, label)
  best.reserve(kk + 1);
  for (const auto& t : training) {
    const int d = hamming196(t.bits, sample);
    if (best.size() < kk) {
      best.emplace_back(d, t.label);
      std::push_heap(best.begin(), best.end());
    } else if (d < best.front().first) {
      std::pop_heap(best.begin(), best.end());
      best.back() = {d, t.label};
      std::push_heap(best.begin(), best.end());
    }
  }

  int votes[10] = {0};
  for (const auto& [d, label] : best) ++votes[label];
  int winner = 0;
  for (int c = 1; c < 10; ++c) {
    if (votes[c] > votes[winner]) winner = c;  // ties -> smaller label
  }
  return winner;
}

DigitDataset make_synthetic_digits(Rng& rng, int train_per_class,
                                   int num_tests, double noise_flip_bits) {
  XAR_EXPECTS(train_per_class >= 1);
  XAR_EXPECTS(num_tests >= 0);
  XAR_EXPECTS(noise_flip_bits >= 0.0);

  std::array<DigitBits, 10> prototypes;
  for (auto& p : prototypes) {
    for (auto& w : p) w = static_cast<std::uint64_t>(
                          rng.uniform_int(0, std::numeric_limits<std::int64_t>::max())) |
                      (static_cast<std::uint64_t>(rng.uniform_int(0, 1)) << 63);
    mask_digit(p);
  }

  auto noisy_sample = [&](int label) {
    LabeledDigit d;
    d.label = label;
    d.bits = prototypes[static_cast<std::size_t>(label)];
    const int flips = static_cast<int>(rng.exponential_mean(
        std::max(noise_flip_bits, 1e-9)));
    for (int f = 0; f < flips; ++f) {
      const auto bit = static_cast<std::uint64_t>(rng.uniform_int(0, 195));
      d.bits[bit / 64] ^= (1ull << (bit % 64));
    }
    mask_digit(d.bits);
    return d;
  };

  DigitDataset ds;
  ds.training.reserve(static_cast<std::size_t>(train_per_class) * 10);
  for (int c = 0; c < 10; ++c) {
    for (int i = 0; i < train_per_class; ++i) {
      ds.training.push_back(noisy_sample(c));
    }
  }
  ds.tests.reserve(static_cast<std::size_t>(num_tests));
  for (int i = 0; i < num_tests; ++i) {
    ds.tests.push_back(noisy_sample(static_cast<int>(rng.uniform_int(0, 9))));
  }
  return ds;
}

DigitRecResult digitrec_kernel(const DigitDataset& dataset, int k) {
  DigitRecResult result;
  for (const auto& test : dataset.tests) {
    const int predicted = knn_classify(dataset.training, test.bits, k);
    ++result.total;
    if (predicted == test.label) ++result.correct;
  }
  return result;
}

hls::OpProfile digitrec_op_profile(std::size_t training_size) {
  // Body = one training digest: 4 XOR + 4 popcount + compare/insert
  // bookkeeping; the kernel streams the whole training set per test
  // digit (one work item = one test digit).
  hls::OpProfile ops;
  ops.int_ops = 14;
  ops.mem_ops = 4;
  ops.fp_ops = 0;
  ops.irregular_mem_ops = 0;  // fully streaming -- FPGA-friendly
  ops.iterations_per_item = static_cast<double>(training_size);
  return ops;
}

}  // namespace xartrek::workloads
