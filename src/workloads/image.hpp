// Grayscale images, PGM I/O and synthetic scene generation.
//
// The paper's throughput experiments (Figures 6 and 8) feed the face
// detector WIDER-dataset images converted to PGM.  We have no WIDER
// here, so scenes are synthesized: noisy background plus planted
// face-like patterns whose geometry matches what the detector cascade
// looks for (see face_detect.hpp).  Tests assert recall/precision on
// the planted ground truth.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace xartrek::workloads {

/// An 8-bit grayscale image.
class GrayImage {
 public:
  GrayImage() = default;
  GrayImage(int width, int height, std::uint8_t fill = 0);

  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }

  [[nodiscard]] std::uint8_t at(int x, int y) const {
    XAR_EXPECTS(x >= 0 && x < width_ && y >= 0 && y < height_);
    return pixels_[static_cast<std::size_t>(y) *
                       static_cast<std::size_t>(width_) +
                   static_cast<std::size_t>(x)];
  }
  void set(int x, int y, std::uint8_t v) {
    XAR_EXPECTS(x >= 0 && x < width_ && y >= 0 && y < height_);
    pixels_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
            static_cast<std::size_t>(x)] = v;
  }

  [[nodiscard]] const std::vector<std::uint8_t>& pixels() const {
    return pixels_;
  }
  [[nodiscard]] std::uint64_t byte_size() const { return pixels_.size(); }

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<std::uint8_t> pixels_;
};

/// Binary PGM (P5) serialization.
void write_pgm(std::ostream& os, const GrayImage& image);
[[nodiscard]] GrayImage read_pgm(std::istream& is);

/// Ground truth for one planted face.
struct PlantedFace {
  int x = 0;     ///< top-left
  int y = 0;
  int size = 0;  ///< square side
};

/// A generated scene and its ground truth.
struct SyntheticScene {
  GrayImage image;
  std::vector<PlantedFace> faces;
};

/// Generate a noisy scene with `num_faces` non-overlapping faces of sizes
/// in [min_face, max_face].  Faces follow the canonical layout the
/// default cascade detects: bright skin, dark eye band at 25-42% height,
/// dark mouth band at 67-83% height.
[[nodiscard]] SyntheticScene make_scene(Rng& rng, int width, int height,
                                        int num_faces, int min_face = 24,
                                        int max_face = 72);

}  // namespace xartrek::workloads
