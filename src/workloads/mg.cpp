#include "workloads/mg.hpp"

#include <cmath>

namespace xartrek::workloads {

namespace {
[[nodiscard]] constexpr bool is_pow2(int v) {
  return v > 0 && (v & (v - 1)) == 0;
}
}  // namespace

Grid3::Grid3(int n, double fill)
    : n_(n),
      data_(static_cast<std::size_t>(n) * static_cast<std::size_t>(n) *
                static_cast<std::size_t>(n),
            fill) {
  XAR_EXPECTS(is_pow2(n) && n >= 2);
}

void mg_residual(const Grid3& u, const Grid3& rhs, Grid3& r) {
  const int n = u.n();
  XAR_EXPECTS(rhs.n() == n && r.n() == n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      for (int k = 0; k < n; ++k) {
        const double lap = u.at(i - 1, j, k) + u.at(i + 1, j, k) +
                           u.at(i, j - 1, k) + u.at(i, j + 1, k) +
                           u.at(i, j, k - 1) + u.at(i, j, k + 1) -
                           6.0 * u.at(i, j, k);
        r.set(i, j, k, rhs.at(i, j, k) + lap);  // rhs - (-lap u)
      }
    }
  }
}

double mg_residual_norm(const Grid3& u, const Grid3& rhs) {
  Grid3 r(u.n());
  mg_residual(u, rhs, r);
  double s = 0.0;
  for (double v : r.data()) s += v * v;
  return std::sqrt(s);
}

void mg_smooth(Grid3& u, const Grid3& rhs) {
  const int n = u.n();
  XAR_EXPECTS(rhs.n() == n);
  constexpr double kWeight = 2.0 / 3.0;
  Grid3 next(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      for (int k = 0; k < n; ++k) {
        const double neighbours = u.at(i - 1, j, k) + u.at(i + 1, j, k) +
                                  u.at(i, j - 1, k) + u.at(i, j + 1, k) +
                                  u.at(i, j, k - 1) + u.at(i, j, k + 1);
        const double jacobi = (rhs.at(i, j, k) + neighbours) / 6.0;
        next.set(i, j, k,
                 (1.0 - kWeight) * u.at(i, j, k) + kWeight * jacobi);
      }
    }
  }
  u = next;
}

void mg_restrict(const Grid3& fine, Grid3& coarse) {
  const int nc = coarse.n();
  XAR_EXPECTS(fine.n() == 2 * nc);
  for (int i = 0; i < nc; ++i) {
    for (int j = 0; j < nc; ++j) {
      for (int k = 0; k < nc; ++k) {
        // Average of the 2x2x2 fine children (full weighting, simplified).
        double s = 0.0;
        for (int di = 0; di < 2; ++di) {
          for (int dj = 0; dj < 2; ++dj) {
            for (int dk = 0; dk < 2; ++dk) {
              s += fine.at(2 * i + di, 2 * j + dj, 2 * k + dk);
            }
          }
        }
        coarse.set(i, j, k, s / 8.0);
      }
    }
  }
}

void mg_prolong_add(const Grid3& coarse, Grid3& fine) {
  const int nc = coarse.n();
  XAR_EXPECTS(fine.n() == 2 * nc);
  for (int i = 0; i < 2 * nc; ++i) {
    for (int j = 0; j < 2 * nc; ++j) {
      for (int k = 0; k < 2 * nc; ++k) {
        // Piecewise-constant prolongation (adequate for a V-cycle
        // correction step with post-smoothing).
        const double e = coarse.at(i / 2, j / 2, k / 2);
        fine.set(i, j, k, fine.at(i, j, k) + e);
      }
    }
  }
}

void mg_vcycle(Grid3& u, const Grid3& rhs, int pre, int post) {
  const int n = u.n();
  if (n <= 4) {
    for (int s = 0; s < 20; ++s) mg_smooth(u, rhs);
    return;
  }
  for (int s = 0; s < pre; ++s) mg_smooth(u, rhs);

  Grid3 r(n);
  mg_residual(u, rhs, r);
  Grid3 r_coarse(n / 2);
  mg_restrict(r, r_coarse);
  // Scale the restricted residual for the coarse operator: with h
  // doubling, the discrete Laplacian weakens by 4x.
  for (double& v : r_coarse.data()) v *= 4.0;

  Grid3 e_coarse(n / 2, 0.0);
  mg_vcycle(e_coarse, r_coarse, pre, post);
  mg_prolong_add(e_coarse, u);

  for (int s = 0; s < post; ++s) mg_smooth(u, rhs);
}

Grid3 mg_random_rhs(Rng& rng, int n) {
  Grid3 rhs(n);
  double mean = 0.0;
  for (double& v : rhs.data()) {
    v = rng.uniform_real(-1.0, 1.0);
    mean += v;
  }
  mean /= static_cast<double>(rhs.data().size());
  for (double& v : rhs.data()) v -= mean;  // solvability on periodic domain
  return rhs;
}

std::uint64_t mg_vcycle_points(int n, int pre, int post) {
  if (n <= 4) {
    return 20ull * static_cast<std::uint64_t>(n) * n * n;
  }
  const auto points = static_cast<std::uint64_t>(n) * n * n;
  // pre+post smoothing + residual + restrict + prolong at this level.
  const std::uint64_t here =
      points * static_cast<std::uint64_t>(pre + post + 3);
  return here + mg_vcycle_points(n / 2, pre, post);
}

}  // namespace xartrek::workloads
