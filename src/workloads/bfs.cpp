#include "workloads/bfs.hpp"

#include <algorithm>
#include <deque>

#include "common/assert.hpp"

namespace xartrek::workloads {

CsrGraph make_random_graph(Rng& rng, int nodes, double avg_degree) {
  XAR_EXPECTS(nodes >= 2);
  XAR_EXPECTS(avg_degree >= 1.0);

  std::vector<std::vector<std::int32_t>> out(
      static_cast<std::size_t>(nodes));
  // Backbone: a path through all vertices keeps the graph connected.
  for (int v = 0; v + 1 < nodes; ++v) {
    out[static_cast<std::size_t>(v)].push_back(v + 1);
  }
  // Random extra edges up to the requested average degree.
  const std::int64_t extra =
      static_cast<std::int64_t>(avg_degree * nodes) - (nodes - 1);
  for (std::int64_t e = 0; e < extra; ++e) {
    const auto u = static_cast<std::size_t>(rng.uniform_int(0, nodes - 1));
    const auto v = static_cast<std::int32_t>(rng.uniform_int(0, nodes - 1));
    out[u].push_back(v);
  }

  CsrGraph g;
  g.nodes = nodes;
  g.row_ptr.reserve(static_cast<std::size_t>(nodes) + 1);
  g.row_ptr.push_back(0);
  for (const auto& neighbours : out) {
    for (std::int32_t v : neighbours) g.adj.push_back(v);
    g.row_ptr.push_back(static_cast<std::int32_t>(g.adj.size()));
  }
  return g;
}

std::vector<std::int32_t> bfs_depths(const CsrGraph& graph, int source) {
  XAR_EXPECTS(source >= 0 && source < graph.nodes);
  std::vector<std::int32_t> depth(static_cast<std::size_t>(graph.nodes), -1);
  std::deque<std::int32_t> frontier;
  depth[static_cast<std::size_t>(source)] = 0;
  frontier.push_back(source);
  while (!frontier.empty()) {
    const std::int32_t u = frontier.front();
    frontier.pop_front();
    const std::int32_t d = depth[static_cast<std::size_t>(u)];
    for (std::int32_t i = graph.row_ptr[static_cast<std::size_t>(u)];
         i < graph.row_ptr[static_cast<std::size_t>(u) + 1]; ++i) {
      const std::int32_t v = graph.adj[static_cast<std::size_t>(i)];
      if (depth[static_cast<std::size_t>(v)] < 0) {
        depth[static_cast<std::size_t>(v)] = d + 1;
        frontier.push_back(v);
      }
    }
  }
  return depth;
}

hls::OpProfile bfs_op_profile(double avg_degree) {
  // Body = one frontier edge: depth check + enqueue (regular) around two
  // data-dependent gathers (neighbour id, depth entry) -- the
  // FPGA-hostile part (paper §4.4: pointer chasing on a PCIe-attached
  // FPGA).  One work item = one visited node expanding avg_degree edges.
  hls::OpProfile ops;
  ops.int_ops = 5;
  ops.mem_ops = 1;
  ops.irregular_mem_ops = 2;
  ops.iterations_per_item = std::max(1.0, avg_degree);
  return ops;
}

}  // namespace xartrek::workloads
