#include "exp/experiment.hpp"

#include <utility>

#include "common/assert.hpp"

namespace xartrek::exp {

Experiment::Experiment(std::vector<apps::BenchmarkSpec> specs,
                       const runtime::ThresholdTable& seed_table,
                       ExperimentOptions options)
    : specs_(std::move(specs)), options_(std::move(options)) {
  XAR_EXPECTS(!specs_.empty());

  platform::TestbedConfig tb_cfg = options_.testbed;
  tb_cfg.log = options_.log;
  testbed_ = std::make_unique<platform::Testbed>(tb_cfg);

  // Pipeline steps A-F over the whole suite.
  const compiler::XarCompiler xar_compiler;
  suite_ = xar_compiler.compile(apps::make_profile_spec(specs_),
                                apps::make_irs(specs_),
                                apps::make_kernel_profiles(specs_));

  // Threshold table: seeded rows where step G provided them, otherwise
  // cold (zero-threshold) rows that Algorithm 1 will refine.
  for (const auto& spec : specs_) {
    if (seed_table.contains(spec.name)) {
      table_.upsert(seed_table.at(spec.name));
    } else {
      runtime::ThresholdEntry entry;
      entry.app = spec.name;
      entry.kernel_name = spec.kernel_name;
      table_.upsert(entry);
    }
  }

  monitor_ = std::make_unique<runtime::LoadMonitor>(testbed_->simulation(),
                                                    testbed_->x86());
  runtime::SchedulerServer::Options server_opts;
  server_opts.hide_reconfiguration = options_.hide_reconfiguration;
  server_ = std::make_unique<runtime::SchedulerServer>(
      testbed_->simulation(), *monitor_, testbed_->fpga(), table_,
      suite_.xclbins, server_opts, options_.log);

  runtime::SchedulerClient::Options client_opts;
  client_opts.refinement_enabled = options_.dynamic_thresholds;
  client_ = std::make_unique<runtime::SchedulerClient>(table_, client_opts,
                                                       options_.log);
  executor_ = std::make_unique<runtime::MigrationExecutor>(*testbed_,
                                                           options_.log);
}

apps::RuntimeEnv Experiment::env() {
  apps::RuntimeEnv e;
  e.testbed = testbed_.get();
  e.executor = executor_.get();
  e.table = &table_;
  e.server = server_.get();
  e.client = client_.get();
  e.eager_configure = options_.eager_configure;
  e.log = options_.log;
  return e;
}

void Experiment::launch(const std::string& app_name) {
  apps::AppProcess::launch(env(), spec(app_name), options_.mode,
                           [this](const apps::AppResult& r) {
                             results_.push_back(r);
                           });
}

void Experiment::launch_forced(const std::string& app_name,
                               runtime::Target target) {
  const apps::BenchmarkSpec& s = spec(app_name);
  struct ForcedRun {
    apps::AppResult result;
  };
  auto run = std::make_shared<ForcedRun>();
  run->result.app = s.name;
  run->result.started = simulation().now();
  run->result.func_target = target;

  testbed_->x86().attach_process();
  auto finish = [this, run] {
    testbed_->x86().detach_process();
    run->result.finished = simulation().now();
    results_.push_back(run->result);
  };
  auto post = [this, &s, finish] {
    testbed_->x86().run(s.post, finish);
  };
  // A forced-FPGA scenario measures the *offload* cost, not
  // configuration: warm the image up front if it is absent (the
  // instrumented binary would have configured it at main start).
  if (target == runtime::Target::kFpga) {
    server_->ensure_resident(s.kernel_name);
  }
  testbed_->x86().run(s.pre, [this, &s, target, post] {
    executor_->execute(target, s.function_costs(),
                       [post](Duration) { post(); },
                       /*wait_for_fpga=*/target == runtime::Target::kFpga);
  });
}

void Experiment::warm_fpga_for(const std::string& app_name) {
  const apps::BenchmarkSpec& s = spec(app_name);
  auto& device = testbed_->fpga();
  if (device.has_kernel(s.kernel_name)) return;
  server_->ensure_resident(s.kernel_name);
  const TimePoint horizon = simulation().now() + Duration::minutes(5);
  while (!device.has_kernel(s.kernel_name) && simulation().step_one(horizon)) {
  }
  XAR_ENSURES(device.has_kernel(s.kernel_name));
}

void Experiment::add_background_load(int n) {
  if (n <= 0) return;
  load_.push_back(std::make_unique<apps::LoadGenerator>(*testbed_, n));
}

void Experiment::set_background_load(int n) {
  XAR_EXPECTS(n >= 0);
  load_.clear();  // generators stop themselves on destruction
  if (n > 0) add_background_load(n);
}

bool Experiment::run_until_complete(std::size_t expected, Duration horizon) {
  const TimePoint h = simulation().now() + horizon;
  while (results_.size() < expected && simulation().step_one(h)) {
  }
  return results_.size() >= expected;
}

}  // namespace xartrek::exp
