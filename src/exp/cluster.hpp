// Cluster experiment: N testbed cells on the sharded engine, derived.
//
// A ClusterExperiment builds an N-cell cluster from a declarative
// ClusterSpec: it registers every cell's components as nodes of a
// sim::Topology (cell i's components carry affinity group i), registers
// the interactions -- the FPGA's reconfiguration notify, the scheduler
// reply hop, and the inter-cell links (a ring, each carrying the
// modeled Ethernet latency) -- as edges, and lets the partitioner map
// the graph onto ShardedSimulation shards, auto-picking the largest
// legal epoch.  Each cell is then a full exp::Experiment (compiler
// pipeline, threshold table, scheduler, executor) constructed against
// its shard's engine through the testbed's shard-aware hook, so the
// sharded core is the default execution engine rather than a
// hand-wired special case:
//
//   * 1 cell degenerates to one shard whose trace is identical to
//     exp::Experiment on the classic single-queue testbed (pinned by
//     tests/topology_test.cpp);
//   * N cells run the same per-cell model on N shards, serial or
//     parallel, trace-identical either way, with cross-cell job
//     handoffs riding the inter-cell links through the derived
//     channels.
//
// Background load scales with the cluster: set_background_load spreads
// the cohort over the cells through apps::ShardedLoadGenerator, whose
// attach/detach bookkeeping is batched per shard -- the million-user
// sweep no longer funnels through one CpuCluster process table.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "apps/benchmark_spec.hpp"
#include "apps/load_generator.hpp"
#include "exp/experiment.hpp"
#include "hw/link.hpp"
#include "sim/topology.hpp"

namespace xartrek::exp {

/// Declarative description of an N-cell cluster.
struct ClusterSpec {
  std::size_t cells = 1;
  /// Per-cell platform (every cell is one paper testbed by default).
  platform::TestbedConfig cell_config = {};
  /// The cell-to-cell interconnect (ring: cell i feeds cell (i+1) mod
  /// N).  Its latency is the lookahead the partitioner derives the
  /// epoch from.
  hw::LinkSpec intercell = hw::ethernet_1gbps();
  /// Force a synchronization window; unset auto-picks the largest
  /// legal epoch (the minimum cross-cell latency).
  std::optional<Duration> epoch;
  std::size_t mailbox_capacity = 4096;
  /// Run shards on threads.  Traces are identical either way.
  bool parallel = false;
  /// How often run_until_complete re-checks the completion count.
  /// Completions carry exact event timestamps, so this affects polling
  /// granularity only, never the trace.
  Duration completion_poll = Duration::seconds(1.0);
};

/// N cells, one shard each, one experiment stack per cell.
class ClusterExperiment {
 public:
  ClusterExperiment(std::vector<apps::BenchmarkSpec> specs,
                    const runtime::ThresholdTable& seed_table,
                    ClusterSpec cluster = {},
                    ExperimentOptions options = {});
  ClusterExperiment(const ClusterExperiment&) = delete;
  ClusterExperiment& operator=(const ClusterExperiment&) = delete;

  [[nodiscard]] std::size_t cell_count() const { return cells_.size(); }
  [[nodiscard]] sim::PartitionedEngine& engine() { return *engine_; }
  [[nodiscard]] const sim::Topology& topology() const {
    return engine_->topology();
  }

  /// Cell i's full experiment stack.  Cells are numbered like their
  /// shards (cell i is affinity group i, hence shard i).  Use it to
  /// launch apps and read results; drive time through *this* (the
  /// sharded engine), not through the cell's own run_until_complete.
  [[nodiscard]] Experiment& cell(std::size_t i) {
    XAR_EXPECTS(i < cells_.size());
    return *cells_[i];
  }

  /// Every cell's testbed (the ShardedLoadGenerator input).
  [[nodiscard]] std::vector<platform::Testbed*> testbeds();

  /// Launch one run of `app_name` on cell `i` now.
  void launch(std::size_t i, const std::string& app_name) {
    cell(i).launch(app_name);
  }

  /// Spread `total_jobs` background processes across the cells (0
  /// tears the current cohort down).  Bookkeeping is batched per
  /// shard; see apps::ShardedLoadGenerator.  The two-argument form
  /// picks the looped run's shape (demand, jitter) -- the load metric
  /// each scheduler samples depends only on the job count.
  void set_background_load(std::uint64_t total_jobs);
  void set_background_load(std::uint64_t total_jobs,
                           apps::ShardedLoadGenerator::Options opts);
  [[nodiscard]] apps::ShardedLoadGenerator* background_load() {
    return load_.get();
  }

  /// Hand a job off from cell `from` to its ring neighbor: `bytes` of
  /// state ride the inter-cell link, and `on_arrival` fires on the
  /// neighbor's shard once the last byte lands (plus the registered
  /// edge latency).  Requires a multi-cell cluster.
  void handoff(std::size_t from, std::uint64_t bytes,
               sim::UniqueCallback on_arrival);
  [[nodiscard]] std::size_t handoff_target(std::size_t from) const {
    return (from + 1) % cells_.size();
  }
  [[nodiscard]] std::uint64_t handoffs() const {
    return handoffs_.load(std::memory_order_relaxed);
  }

  /// Advance the whole cluster in epoch windows until `expected`
  /// launched apps (across all cells) have exited or the horizon
  /// passes.  Returns true if the count was reached.
  bool run_until_complete(std::size_t expected,
                          Duration horizon = Duration::minutes(120));

  /// Advance the whole cluster to now() + `d`.
  void run_for(Duration d);

  [[nodiscard]] std::size_t completed_apps() const;
  [[nodiscard]] const std::vector<apps::AppResult>& results(
      std::size_t i) const {
    XAR_EXPECTS(i < cells_.size());
    return cells_[i]->results();
  }

  [[nodiscard]] TimePoint now() const { return engine_->engine().now(); }

 private:
  ClusterSpec cluster_;
  /// Per-cell topology nodes (index = cell).
  std::vector<sim::NodeId> x86_nodes_;
  std::vector<sim::NodeId> fpga_nodes_;
  std::vector<sim::NodeId> sched_nodes_;
  std::unique_ptr<sim::PartitionedEngine> engine_;
  std::vector<std::unique_ptr<Experiment>> cells_;
  /// Ring link i: cell i -> cell (i+1) mod N (empty for one cell).
  std::vector<std::unique_ptr<hw::Link>> intercell_;
  std::unique_ptr<apps::ShardedLoadGenerator> load_;
  /// Atomic: in parallel mode every cell's shard thread may hand off
  /// concurrently.
  std::atomic<std::uint64_t> handoffs_{0};
};

}  // namespace xartrek::exp
