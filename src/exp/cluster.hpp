// Cluster experiment: N testbed cells on the sharded engine, derived.
//
// A ClusterExperiment builds an N-cell cluster from a declarative
// ClusterSpec: it registers every cell's components as nodes of a
// sim::Topology (cell i's components carry affinity group i), registers
// the interactions -- the FPGA's reconfiguration notify, the scheduler
// reply hop, and the inter-cell links (a ring, each carrying the
// modeled Ethernet latency) -- as edges, and lets the partitioner map
// the graph onto ShardedSimulation shards, auto-picking the largest
// legal epoch.  Each cell is then a full exp::Experiment (compiler
// pipeline, threshold table, scheduler, executor) constructed against
// its shard's engine through the testbed's shard-aware hook, so the
// sharded core is the default execution engine rather than a
// hand-wired special case:
//
//   * 1 cell degenerates to one shard whose trace is identical to
//     exp::Experiment on the classic single-queue testbed (pinned by
//     tests/topology_test.cpp);
//   * N cells run the same per-cell model on N shards, serial or
//     parallel, trace-identical either way, with cross-cell job
//     handoffs riding the inter-cell links through the derived
//     channels.
//
// Background load scales with the cluster: set_background_load spreads
// the cohort over the cells through apps::ShardedLoadGenerator, whose
// attach/detach bookkeeping is batched per shard -- the million-user
// sweep no longer funnels through one CpuCluster process table.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "apps/benchmark_spec.hpp"
#include "apps/load_generator.hpp"
#include "exp/experiment.hpp"
#include "hw/link.hpp"
#include "hw/reliable_channel.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "popcorn/checkpoint.hpp"
#include "popcorn/state_transform.hpp"
#include "runtime/scheduler_server.hpp"
#include "sim/exec_options.hpp"
#include "sim/fault.hpp"
#include "sim/shard.hpp"
#include "sim/topology.hpp"

namespace xartrek::exp {

/// Declarative description of an N-cell cluster.
struct ClusterSpec {
  std::size_t cells = 1;
  /// Per-cell platform (every cell is one paper testbed by default).
  platform::TestbedConfig cell_config = {};
  /// The cell-to-cell interconnect (ring: cell i feeds cell (i+1) mod
  /// N).  Its latency is the lookahead the partitioner derives the
  /// epoch from.
  hw::LinkSpec intercell = hw::ethernet_1gbps();
  /// Force a synchronization window; unset auto-picks the largest
  /// legal epoch (the minimum cross-cell latency).
  std::optional<Duration> epoch;
  std::size_t mailbox_capacity = 4096;
  /// Run shards on threads.  Traces are identical either way.
  bool parallel = false;
  /// Worker mapping (0 workers = one lane per cell), adaptive epochs
  /// and deterministic cell stealing, forwarded wholesale down through
  /// Topology::PartitionOptions to the engine.  None of these change
  /// the trace -- only wall-clock behavior.
  sim::ExecOptions exec;
  /// How often run_until_complete re-checks the completion count.
  /// Completions carry exact event timestamps, so this affects polling
  /// granularity only, never the trace.
  Duration completion_poll = Duration::seconds(1.0);
};

/// Tunables for fault handling (apply_fault_plan).
struct FaultInjectionOptions {
  /// First re-placement delay after finding a dead cell; doubles per
  /// attempt (exponential backoff), capped at base * 2^cap_exponent.
  Duration backoff_base = Duration::ms(1.0);
  std::uint32_t backoff_cap_exponent = 6;
  /// Working-set bytes shipped alongside a drained job's checkpoint.
  std::uint64_t drain_payload_bytes = 64 * 1024;
  /// Heartbeat tunables for every cell's scheduler (health checking
  /// starts when a non-empty plan is applied).
  runtime::SchedulerServer::HealthOptions health = {};
  /// Latency inflation on a kLinkDegraded ring link (the drop
  /// probability rides in the fault event's magnitude).
  double degraded_latency_factor = 4.0;
  /// Shape of the reliable drain channels (end-to-end retry of
  /// checkpoint payloads).  The timeout must clear one drain payload's
  /// worst healthy transfer; attempts are generous because an abandoned
  /// drain is a lost job.
  hw::ReliableChannel::Options drain_channel = {
      Duration::ms(10.0), Duration::ms(1.0), 6, 0.25, 16};
  /// Seed of the gray-fault randomness streams (drop/corrupt/flaky
  /// draws and retry jitter), split per victim and kind so injection
  /// never perturbs the workload's own draws.
  std::uint64_t gray_seed = 0x6772617946616CULL;  // "grayFal"
};

/// N cells, one shard each, one experiment stack per cell.
class ClusterExperiment {
 public:
  ClusterExperiment(std::vector<apps::BenchmarkSpec> specs,
                    const runtime::ThresholdTable& seed_table,
                    ClusterSpec cluster = {},
                    ExperimentOptions options = {});
  ClusterExperiment(const ClusterExperiment&) = delete;
  ClusterExperiment& operator=(const ClusterExperiment&) = delete;

  [[nodiscard]] std::size_t cell_count() const { return cells_.size(); }
  [[nodiscard]] sim::PartitionedEngine& engine() { return *engine_; }
  [[nodiscard]] const sim::Topology& topology() const {
    return engine_->topology();
  }

  /// Cell i's full experiment stack.  Cells are numbered like their
  /// shards (cell i is affinity group i, hence shard i).  Use it to
  /// launch apps and read results; drive time through *this* (the
  /// sharded engine), not through the cell's own run_until_complete.
  [[nodiscard]] Experiment& cell(std::size_t i) {
    XAR_EXPECTS(i < cells_.size());
    return *cells_[i];
  }

  /// Every cell's testbed (the ShardedLoadGenerator input).
  [[nodiscard]] std::vector<platform::Testbed*> testbeds();

  /// Launch one run of `app_name` on cell `i` now.
  void launch(std::size_t i, const std::string& app_name) {
    cell(i).launch(app_name);
  }

  /// Spread `total_jobs` background processes across the cells (0
  /// tears the current cohort down).  Bookkeeping is batched per
  /// shard; see apps::ShardedLoadGenerator.  The two-argument form
  /// picks the looped run's shape (demand, jitter) -- the load metric
  /// each scheduler samples depends only on the job count.
  void set_background_load(std::uint64_t total_jobs);
  void set_background_load(std::uint64_t total_jobs,
                           apps::ShardedLoadGenerator::Options opts);
  [[nodiscard]] apps::ShardedLoadGenerator* background_load() {
    return load_.get();
  }

  /// Hand a job off from cell `from` to its ring neighbor: `bytes` of
  /// state ride the inter-cell link, and `on_arrival` fires on the
  /// neighbor's shard once the last byte lands (plus the registered
  /// edge latency).  Requires a multi-cell cluster.
  void handoff(std::size_t from, std::uint64_t bytes,
               sim::UniqueCallback on_arrival);
  [[nodiscard]] std::size_t handoff_target(std::size_t from) const {
    return (from + 1) % cells_.size();
  }
  [[nodiscard]] std::uint64_t handoffs() const {
    return handoffs_.load(std::memory_order_relaxed);
  }

  /// Advance the whole cluster in epoch windows until `expected`
  /// launched apps (across all cells) have exited or the horizon
  /// passes.  Returns true if the count was reached.
  bool run_until_complete(std::size_t expected,
                          Duration horizon = Duration::minutes(120));

  /// Advance the whole cluster to now() + `d`.
  void run_for(Duration d);

  [[nodiscard]] std::size_t completed_apps() const;
  [[nodiscard]] const std::vector<apps::AppResult>& results(
      std::size_t i) const {
    XAR_EXPECTS(i < cells_.size());
    return cells_[i]->results();
  }

  [[nodiscard]] TimePoint now() const { return engine_->engine().now(); }

  // --- fault injection & tracked jobs -----------------------------------
  //
  // Mutable cross-cell state (job records, death flags, cell epochs)
  // obeys one discipline: it is touched only from its owning cell's
  // shard thread during runs, or from the main thread between runs, and
  // ownership moves between cells only inside channel messages -- which
  // cross at window boundaries.  That single rule is what makes chaos
  // runs memory-safe in parallel mode AND trace-identical to serial.

  /// Schedule every event of `plan` onto its victim's shard and start
  /// health checks on every cell's scheduler.  Call between runs; all
  /// events must lie in the future.  An empty plan changes nothing --
  /// the subsequent run is bit-identical to never having called this.
  void apply_fault_plan(const sim::FaultPlan& plan,
                        FaultInjectionOptions opts = {});

  /// Immediate conveniences (tests): inject one fault at now().
  void kill_cell(std::size_t i);
  void set_link_down(std::size_t i, bool down);
  [[nodiscard]] bool cell_dead(std::size_t i) const {
    XAR_EXPECTS(i < cell_dead_.size());
    return cell_dead_[i] != 0;
  }

  /// Submit a *tracked* run of `app_name` on cell `i` (between runs).
  /// Unlike launch(), the job carries a cluster-wide id and the chaos
  /// invariant: if its cell dies it is checkpointed, drained to a ring
  /// neighbor, and re-placed until it completes exactly once.  Returns
  /// the job id.
  std::uint64_t submit(std::size_t i, const std::string& app_name);

  /// Advance the cluster until every submitted job has completed or the
  /// horizon passes.  Returns true when all jobs completed.
  bool run_until_jobs_complete(Duration horizon = Duration::minutes(120));

  [[nodiscard]] std::size_t submitted_jobs() const { return jobs_.size(); }
  [[nodiscard]] std::size_t completed_jobs() const;

  /// Per-job completion instant in ms by job id (-1 when incomplete).
  /// The serial/parallel determinism contract is pinned on these.
  [[nodiscard]] std::vector<double> job_completion_times_ms() const;

  struct JobStats {
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t drained = 0;  ///< checkpoint-drain hops at cell death
    std::uint64_t retries = 0;  ///< backoff re-placements on dead cells
    double p99_latency_ms = 0.0;
    double max_latency_ms = 0.0;
    // Gray-failure telemetry, aggregated across cells between runs.
    std::uint64_t channel_retries = 0;    ///< drain re-transmissions
    std::uint64_t corrupt_recovered = 0;  ///< checksum catches, re-sent
    std::uint64_t duplicates_suppressed = 0;  ///< slow copies swallowed
    std::uint64_t link_drops = 0;    ///< frames lost on degraded links
    std::uint64_t slow_replies = 0;  ///< in-time-but-sluggish heartbeats
    std::uint64_t late_replies = 0;  ///< replies that lost to the timeout
    std::uint64_t breaker_trips = 0;   ///< closed -> open transitions
    std::uint64_t breaker_closes = 0;  ///< half-open -> closed recoveries
    std::uint64_t slots_quarantined = 0;  ///< fabric taken out of rotation
  };
  /// Aggregate over completed jobs (main thread, between runs).
  /// p99/max come from the registry's `cluster.job.latency_ms`
  /// histogram (exact max/min; p99 is a lower-edge estimate that never
  /// exceeds the true quantile) instead of re-sorting a raw latency
  /// vector on every call.
  [[nodiscard]] JobStats job_stats() const;

  // --- observability ----------------------------------------------------

  /// The cluster's metrics registry.  Every cell's scheduler (and slot
  /// scheduler), the ring/drain links, the drain channels, and the
  /// sharded engine are registered at construction under
  /// "cell<i>.sched", "cell<i>.link", "cell<i>.drain" and "sim";
  /// tracked-job latencies feed the "cluster.job.latency_ms" histogram.
  /// Snapshot only between runs (the drained boundary or a join orders
  /// the single-writer lanes against the reader); snapshots are
  /// byte-identical serial vs parallel.
  [[nodiscard]] obs::Registry& registry() { return registry_; }

  /// Attach a tracer (one lane per cell) and wire every span source:
  /// job lifecycle (submit/run/backoff/complete), checkpointed drain
  /// legs (transform/transfer), scheduler batches and decisions, and
  /// slot programmings.  Call between runs, before the traced workload.
  void enable_tracing() { enable_tracing(obs::Tracer::Options{}); }
  void enable_tracing(obs::Tracer::Options opts);
  [[nodiscard]] obs::Tracer* tracer() { return tracer_.get(); }

  /// The trace id a tracked job's spans carry (job id + 1; 0 is
  /// reserved for untracked infrastructure work).
  [[nodiscard]] static std::uint64_t trace_id_of(std::uint64_t job_id) {
    return job_id + 1;
  }

 private:
  enum class JobState : std::uint8_t {
    kPending,     ///< placement event scheduled on the owner's shard
    kBackoff,     ///< owner found dead; forward scheduled after backoff
    kForwarding,  ///< checkpoint in flight to the ring neighbor
    kRunning,     ///< launched as an AppProcess on the owner cell
    kCompleted,
  };

  /// One tracked job.  Owned by jobs_[id].cell's shard during runs;
  /// ownership moves only inside the drain channel's messages.
  struct TrackedJob {
    std::uint32_t app_index = 0;  ///< index into cell(0).specs()
    std::uint32_t cell = 0;       ///< current owner
    std::uint32_t attempts = 0;   ///< dead-cell re-placements (backoff)
    std::uint32_t drains = 0;     ///< kill-time checkpoint drains
    JobState state = JobState::kPending;
    TimePoint submitted_at;
    TimePoint completed_at;
  };

  /// Register every stable component's counters (and probes for the
  /// rebuildable drain channels) with registry_.  Construction only.
  void register_all_metrics();

  // All of these run on the owning cell's shard.
  void place_job(std::uint64_t id);
  void launch_tracked(std::uint64_t id);
  void forward_job(std::uint64_t id);
  /// Re-materialize a drained checkpoint on `dst` (runs on dst's shard).
  void land_job(std::size_t dst, popcorn::ThreadStack stack);
  void kill_cell_impl(std::size_t c);
  void set_link_down_impl(std::size_t l, bool down);
  /// (Re)build the per-cell reliable drain channels from fault_opts_.
  void build_drain_channels();

 private:
  ClusterSpec cluster_;
  /// Per-cell topology nodes (index = cell).
  std::vector<sim::NodeId> x86_nodes_;
  std::vector<sim::NodeId> fpga_nodes_;
  std::vector<sim::NodeId> sched_nodes_;
  std::unique_ptr<sim::PartitionedEngine> engine_;
  std::vector<std::unique_ptr<Experiment>> cells_;
  /// Ring link i: cell i -> cell (i+1) mod N (empty for one cell).
  std::vector<std::unique_ptr<hw::Link>> intercell_;
  std::unique_ptr<apps::ShardedLoadGenerator> load_;
  /// Atomic: in parallel mode every cell's shard thread may hand off
  /// concurrently.
  std::atomic<std::uint64_t> handoffs_{0};

  // Fault-injection state (see the ownership discipline above).
  FaultInjectionOptions fault_opts_;
  /// Tracked jobs by id.  The vector grows only between runs (submit);
  /// during runs each element is touched only by its owner's shard.
  std::vector<TrackedJob> jobs_;
  /// Ids owned by each cell, in arrival order -- what kill_cell drains.
  /// cell_jobs_[c] is owned by shard c (submit appends between runs).
  std::vector<std::vector<std::uint64_t>> cell_jobs_;
  /// cell_dead_[c] / cell_epoch_[c] are owned by shard c.  The epoch
  /// bumps at kill time; exit callbacks capture the epoch at launch and
  /// a mismatch marks a ghost completion from before the kill.
  std::vector<std::uint8_t> cell_dead_;
  std::vector<std::uint64_t> cell_epoch_;
  /// Drain path, one per cell (multi-cell only): a dedicated route-less
  /// local link (same physical pipe as intercell_[i], so partitions and
  /// degradations hit both -- and its completions fire on the *sender's*
  /// shard, which is what lets the reliable channel keep all its retry
  /// state on one shard), a ReliableChannel restoring exactly-once
  /// delivery over it, and the registered ring edge as the cross-shard
  /// arrival hop -- checkpoints transform on the dying shard and
  /// re-materialize on the neighbor's.
  std::unique_ptr<popcorn::StateTransformer> drain_transformer_;
  std::vector<std::unique_ptr<hw::Link>> drain_links_;
  std::vector<std::unique_ptr<hw::ReliableChannel>> drain_channels_;
  std::vector<sim::CrossShardChannel> drain_arrivals_;

  // Observability.  The registry owns the job-latency histogram (one
  // lane per cell: completions record on the completing cell's shard);
  // the tracer is created by enable_tracing() and is inert -- the event
  // trace is bit-identical attached or not.
  obs::Registry registry_;
  obs::Histogram* job_latency_ = nullptr;
  std::unique_ptr<obs::Tracer> tracer_;
};

}  // namespace xartrek::exp
