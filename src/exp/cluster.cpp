#include "exp/cluster.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"
#include "runtime/scheduler_server.hpp"

namespace xartrek::exp {

ClusterExperiment::ClusterExperiment(
    std::vector<apps::BenchmarkSpec> specs,
    const runtime::ThresholdTable& seed_table, ClusterSpec cluster,
    ExperimentOptions options)
    : cluster_(std::move(cluster)) {
  XAR_EXPECTS(cluster_.cells >= 1);
  XAR_EXPECTS(cluster_.completion_poll > Duration::zero());
  const std::size_t n = cluster_.cells;

  // Declare the graph: cell i's components are nodes with affinity
  // group i, interactions are edges carrying their modeled latency.
  // The partitioner derives everything else (shard map, epoch,
  // channels) from this declaration.
  sim::Topology topo;
  x86_nodes_.reserve(n);
  fpga_nodes_.reserve(n);
  sched_nodes_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::string prefix = "cell" + std::to_string(i) + "/";
    const auto cell_id = static_cast<sim::CellId>(i);
    x86_nodes_.push_back(topo.add_node(prefix + "x86", cell_id));
    fpga_nodes_.push_back(topo.add_node(prefix + "fpga", cell_id));
    sched_nodes_.push_back(topo.add_node(prefix + "sched", cell_id));
    // In-cell interactions: the FPGA's reconfiguration notify crosses
    // the PCIe stack, the scheduler's reply the loopback socket.  Both
    // endpoints share a cell, so the derived channels are inert -- the
    // registration is what keeps the wiring correct if a later spec
    // ever splits a cell's components across cells.
    topo.add_edge(fpga_nodes_[i], sched_nodes_[i],
                  cluster_.cell_config.pcie.latency);
    topo.add_edge(sched_nodes_[i], x86_nodes_[i],
                  runtime::SchedulerServer::Options{}.request_overhead);
  }
  if (n > 1) {
    for (std::size_t i = 0; i < n; ++i) {
      // The ring interconnect: its latency is the cross-cell lookahead
      // the auto-picked epoch derives from.
      topo.add_edge(x86_nodes_[i], x86_nodes_[(i + 1) % n],
                    cluster_.intercell.latency);
    }
  }

  sim::Topology::PartitionOptions popts;
  popts.epoch = cluster_.epoch;
  popts.mailbox_capacity = cluster_.mailbox_capacity;
  popts.parallel = cluster_.parallel;
  engine_ = std::make_unique<sim::PartitionedEngine>(std::move(topo),
                                                     popts);

  // One full experiment stack per cell, constructed against the cell's
  // shard through the testbed's shard-aware hook.  Construction order
  // within a cell is exactly exp::Experiment's, so a 1-cell cluster
  // schedules the identical event sequence.
  cells_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ExperimentOptions cell_options = options;
    cell_options.testbed = cluster_.cell_config;
    cell_options.testbed.external_sim = &engine_->sim_of(x86_nodes_[i]);
    cells_.push_back(std::make_unique<Experiment>(specs, seed_table,
                                                  cell_options));
    // Derived wiring instead of hand-assembled channels: in-cell
    // registrations resolve to inert channels (local behavior), and
    // would resolve to mailbox channels automatically if the plan ever
    // placed the endpoints apart.
    cells_[i]->testbed().fpga().register_notify(*engine_, fpga_nodes_[i],
                                                sched_nodes_[i]);
    cells_[i]->server().register_reply(*engine_, sched_nodes_[i],
                                       x86_nodes_[i]);
  }

  if (n > 1) {
    intercell_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      intercell_.push_back(std::make_unique<hw::Link>(
          engine_->sim_of(x86_nodes_[i]), cluster_.intercell));
      intercell_[i]->register_route(*engine_, x86_nodes_[i],
                                    x86_nodes_[(i + 1) % n]);
    }
  }
}

std::vector<platform::Testbed*> ClusterExperiment::testbeds() {
  std::vector<platform::Testbed*> out;
  out.reserve(cells_.size());
  for (auto& cell : cells_) out.push_back(&cell->testbed());
  return out;
}

void ClusterExperiment::set_background_load(std::uint64_t total_jobs) {
  set_background_load(total_jobs, apps::ShardedLoadGenerator::Options{});
}

void ClusterExperiment::set_background_load(
    std::uint64_t total_jobs, apps::ShardedLoadGenerator::Options opts) {
  load_.reset();  // the old cohort detaches before the new one attaches
  if (total_jobs > 0) {
    load_ = std::make_unique<apps::ShardedLoadGenerator>(testbeds(),
                                                         total_jobs, opts);
  }
}

void ClusterExperiment::handoff(std::size_t from, std::uint64_t bytes,
                                sim::UniqueCallback on_arrival) {
  XAR_EXPECTS(cells_.size() > 1);
  XAR_EXPECTS(from < cells_.size());
  handoffs_.fetch_add(1, std::memory_order_relaxed);
  intercell_[from]->transfer(bytes, std::move(on_arrival));
}

std::size_t ClusterExperiment::completed_apps() const {
  std::size_t total = 0;
  for (const auto& cell : cells_) total += cell->completed_apps();
  return total;
}

bool ClusterExperiment::run_until_complete(std::size_t expected,
                                           Duration horizon) {
  sim::ShardedSimulation& ssim = engine_->engine();
  const TimePoint h = ssim.now() + horizon;
  while (completed_apps() < expected && ssim.now() < h) {
    ssim.run_until(std::min(h, ssim.now() + cluster_.completion_poll));
  }
  return completed_apps() >= expected;
}

void ClusterExperiment::run_for(Duration d) {
  XAR_EXPECTS(d >= Duration::zero());
  sim::ShardedSimulation& ssim = engine_->engine();
  ssim.run_until(ssim.now() + d);
}

}  // namespace xartrek::exp
