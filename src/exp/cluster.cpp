#include "exp/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "apps/application.hpp"
#include "common/assert.hpp"
#include "popcorn/checkpoint.hpp"
#include "runtime/scheduler_server.hpp"

namespace xartrek::exp {

ClusterExperiment::ClusterExperiment(
    std::vector<apps::BenchmarkSpec> specs,
    const runtime::ThresholdTable& seed_table, ClusterSpec cluster,
    ExperimentOptions options)
    : cluster_(std::move(cluster)) {
  XAR_EXPECTS(cluster_.cells >= 1);
  XAR_EXPECTS(cluster_.completion_poll > Duration::zero());
  const std::size_t n = cluster_.cells;

  // Declare the graph: cell i's components are nodes with affinity
  // group i, interactions are edges carrying their modeled latency.
  // The partitioner derives everything else (shard map, epoch,
  // channels) from this declaration.
  sim::Topology topo;
  x86_nodes_.reserve(n);
  fpga_nodes_.reserve(n);
  sched_nodes_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::string prefix = "cell" + std::to_string(i) + "/";
    const auto cell_id = static_cast<sim::CellId>(i);
    x86_nodes_.push_back(topo.add_node(prefix + "x86", cell_id));
    fpga_nodes_.push_back(topo.add_node(prefix + "fpga", cell_id));
    sched_nodes_.push_back(topo.add_node(prefix + "sched", cell_id));
    // In-cell interactions: the FPGA's reconfiguration notify crosses
    // the PCIe stack, the scheduler's reply the loopback socket.  Both
    // endpoints share a cell, so the derived channels are inert -- the
    // registration is what keeps the wiring correct if a later spec
    // ever splits a cell's components across cells.
    topo.add_edge(fpga_nodes_[i], sched_nodes_[i],
                  cluster_.cell_config.pcie.latency);
    topo.add_edge(sched_nodes_[i], x86_nodes_[i],
                  runtime::SchedulerServer::Options{}.request_overhead);
  }
  if (n > 1) {
    for (std::size_t i = 0; i < n; ++i) {
      // The ring interconnect: its latency is the cross-cell lookahead
      // the auto-picked epoch derives from.
      topo.add_edge(x86_nodes_[i], x86_nodes_[(i + 1) % n],
                    cluster_.intercell.latency);
    }
  }

  sim::Topology::PartitionOptions popts;
  popts.epoch = cluster_.epoch;
  popts.mailbox_capacity = cluster_.mailbox_capacity;
  popts.parallel = cluster_.parallel;
  popts.exec = cluster_.exec;  // all seven knobs, nothing forgotten
  engine_ = std::make_unique<sim::PartitionedEngine>(std::move(topo),
                                                     popts);

  // One full experiment stack per cell, constructed against the cell's
  // shard through the testbed's shard-aware hook.  Construction order
  // within a cell is exactly exp::Experiment's, so a 1-cell cluster
  // schedules the identical event sequence.
  cells_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ExperimentOptions cell_options = options;
    cell_options.testbed = cluster_.cell_config;
    cell_options.testbed.external_sim = &engine_->sim_of(x86_nodes_[i]);
    cells_.push_back(std::make_unique<Experiment>(specs, seed_table,
                                                  cell_options));
    // Derived wiring instead of hand-assembled channels: in-cell
    // registrations resolve to inert channels (local behavior), and
    // would resolve to mailbox channels automatically if the plan ever
    // placed the endpoints apart.
    cells_[i]->testbed().fpga().register_notify(*engine_, fpga_nodes_[i],
                                                sched_nodes_[i]);
    cells_[i]->server().register_reply(*engine_, sched_nodes_[i],
                                       x86_nodes_[i]);
  }

  if (n > 1) {
    intercell_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      intercell_.push_back(std::make_unique<hw::Link>(
          engine_->sim_of(x86_nodes_[i]), cluster_.intercell));
      intercell_[i]->register_route(*engine_, x86_nodes_[i],
                                    x86_nodes_[(i + 1) % n]);
    }
  }

  // Tracked-job and fault-injection state.  Construction schedules
  // nothing, so a cluster that never submits or applies a plan runs a
  // bit-identical trace to a pre-fault-injection build.
  cell_jobs_.resize(n);
  cell_dead_.assign(n, 0);
  cell_epoch_.assign(n, 0);
  if (n > 1) {
    // The drain path rides the ring: each cell gets a route-less local
    // link (same spec as intercell_[i], so a partition parks both -- see
    // set_link_down_impl) and a MigrationRuntime whose registered
    // arrival edge carries the checkpoint to the neighbor's shard.
    drain_transformer_ = std::make_unique<popcorn::StateTransformer>(
        popcorn::drain_metadata());
    drain_links_.reserve(n);
    drain_runtimes_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      drain_links_.push_back(std::make_unique<hw::Link>(
          engine_->sim_of(x86_nodes_[i]), cluster_.intercell));
      drain_runtimes_.push_back(std::make_unique<popcorn::MigrationRuntime>(
          engine_->sim_of(x86_nodes_[i]), *drain_links_[i],
          *drain_transformer_));
      drain_runtimes_[i]->register_arrival(*engine_, x86_nodes_[i],
                                           x86_nodes_[(i + 1) % n]);
    }
  }
}

std::vector<platform::Testbed*> ClusterExperiment::testbeds() {
  std::vector<platform::Testbed*> out;
  out.reserve(cells_.size());
  for (auto& cell : cells_) out.push_back(&cell->testbed());
  return out;
}

void ClusterExperiment::set_background_load(std::uint64_t total_jobs) {
  set_background_load(total_jobs, apps::ShardedLoadGenerator::Options{});
}

void ClusterExperiment::set_background_load(
    std::uint64_t total_jobs, apps::ShardedLoadGenerator::Options opts) {
  load_.reset();  // the old cohort detaches before the new one attaches
  if (total_jobs > 0) {
    load_ = std::make_unique<apps::ShardedLoadGenerator>(testbeds(),
                                                         total_jobs, opts);
  }
}

void ClusterExperiment::handoff(std::size_t from, std::uint64_t bytes,
                                sim::UniqueCallback on_arrival) {
  XAR_EXPECTS(cells_.size() > 1);
  XAR_EXPECTS(from < cells_.size());
  handoffs_.fetch_add(1, std::memory_order_relaxed);
  intercell_[from]->transfer(bytes, std::move(on_arrival));
}

std::size_t ClusterExperiment::completed_apps() const {
  std::size_t total = 0;
  for (const auto& cell : cells_) total += cell->completed_apps();
  return total;
}

bool ClusterExperiment::run_until_complete(std::size_t expected,
                                           Duration horizon) {
  sim::ShardedSimulation& ssim = engine_->engine();
  const TimePoint h = ssim.now() + horizon;
  while (completed_apps() < expected && ssim.now() < h) {
    ssim.run_until(std::min(h, ssim.now() + cluster_.completion_poll));
  }
  return completed_apps() >= expected;
}

void ClusterExperiment::run_for(Duration d) {
  XAR_EXPECTS(d >= Duration::zero());
  sim::ShardedSimulation& ssim = engine_->engine();
  ssim.run_until(ssim.now() + d);
}

void ClusterExperiment::apply_fault_plan(const sim::FaultPlan& plan,
                                         FaultInjectionOptions opts) {
  fault_opts_ = opts;
  // An empty plan must leave the run bit-identical to never having
  // called this -- so don't even start health checks.
  if (plan.empty()) return;
  const std::size_t n = cells_.size();
  for (const sim::FaultEvent& ev : plan.events()) {
    XAR_EXPECTS(ev.at >= now());
    const std::size_t victim = ev.index;
    switch (ev.kind) {
      case sim::FaultEvent::Kind::kCellKill:
        // Drained jobs need a surviving ring neighbor to land on.
        XAR_EXPECTS(n > 1 && victim < n);
        engine_->sim_of(x86_nodes_[victim])
            .schedule_at(ev.at, [this, victim] { kill_cell_impl(victim); });
        break;
      case sim::FaultEvent::Kind::kLinkDown:
      case sim::FaultEvent::Kind::kLinkUp: {
        XAR_EXPECTS(n > 1 && victim < intercell_.size());
        const bool down = ev.kind == sim::FaultEvent::Kind::kLinkDown;
        engine_->sim_of(x86_nodes_[victim])
            .schedule_at(ev.at, [this, victim, down] {
              set_link_down_impl(victim, down);
            });
        break;
      }
      case sim::FaultEvent::Kind::kReconfigureFail:
        XAR_EXPECTS(victim < n);
        engine_->sim_of(x86_nodes_[victim]).schedule_at(ev.at, [this, victim] {
          cells_[victim]->testbed().fpga().inject_reconfigure_failure();
        });
        break;
    }
  }
  for (auto& cell : cells_) cell->server().start_health_checks(opts.health);
}

void ClusterExperiment::kill_cell(std::size_t i) {
  XAR_EXPECTS(cells_.size() > 1 && i < cells_.size());
  // Route through the victim's shard so the immediate form and a
  // FaultPlan event produce the same trace.
  engine_->sim_of(x86_nodes_[i]).schedule_at(
      now(), [this, i] { kill_cell_impl(i); });
}

void ClusterExperiment::set_link_down(std::size_t i, bool down) {
  XAR_EXPECTS(cells_.size() > 1 && i < intercell_.size());
  engine_->sim_of(x86_nodes_[i]).schedule_at(
      now(), [this, i, down] { set_link_down_impl(i, down); });
}

std::uint64_t ClusterExperiment::submit(std::size_t i,
                                        const std::string& app_name) {
  XAR_EXPECTS(i < cells_.size());
  const auto& specs = cells_[i]->specs();
  std::size_t app_index = specs.size();
  for (std::size_t k = 0; k < specs.size(); ++k) {
    if (specs[k].name == app_name) {
      app_index = k;
      break;
    }
  }
  XAR_EXPECTS(app_index < specs.size());

  const std::uint64_t id = jobs_.size();
  TrackedJob job;
  job.app_index = static_cast<std::uint32_t>(app_index);
  job.cell = static_cast<std::uint32_t>(i);
  job.submitted_at = now();
  jobs_.push_back(job);
  cell_jobs_[i].push_back(id);
  engine_->sim_of(x86_nodes_[i]).schedule_at(now(),
                                             [this, id] { place_job(id); });
  return id;
}

void ClusterExperiment::place_job(std::uint64_t id) {
  TrackedJob& job = jobs_[id];
  const std::size_t c = job.cell;
  if (cell_dead_[c] == 0) {
    launch_tracked(id);
    return;
  }
  // Owner is dead: back off exponentially, then checkpoint-forward to
  // the ring neighbor.  The delay is charged on the dead cell's shard,
  // which stays live in the simulation -- only the modeled cell died.
  ++job.attempts;
  job.state = JobState::kBackoff;
  const std::uint32_t exp =
      std::min(job.attempts - 1, fault_opts_.backoff_cap_exponent);
  const Duration delay =
      fault_opts_.backoff_base * static_cast<double>(std::uint64_t{1} << exp);
  engine_->sim_of(x86_nodes_[c]).schedule_in(delay,
                                             [this, id] { forward_job(id); });
}

void ClusterExperiment::launch_tracked(std::uint64_t id) {
  TrackedJob& job = jobs_[id];
  const std::size_t c = job.cell;
  job.state = JobState::kRunning;
  const std::uint64_t epoch = cell_epoch_[c];
  apps::AppProcess::launch(
      cells_[c]->env(), cells_[c]->specs()[job.app_index],
      cells_[c]->options().mode,
      [this, id, c, epoch](const apps::AppResult&) {
        // Ghost completion: the cell died after this run launched, so
        // the job was drained and re-placed -- another shard owns its
        // record now.  Drop the exit without touching anything.
        if (cell_epoch_[c] != epoch) return;
        TrackedJob& done = jobs_[id];
        done.state = JobState::kCompleted;
        done.completed_at = engine_->sim_of(x86_nodes_[c]).now();
      });
}

void ClusterExperiment::forward_job(std::uint64_t id) {
  TrackedJob& job = jobs_[id];
  const std::size_t c = job.cell;
  job.state = JobState::kForwarding;
  auto& owned = cell_jobs_[c];
  const auto it = std::find(owned.begin(), owned.end(), id);
  XAR_ASSERT(it != owned.end());
  owned.erase(it);

  // Snapshot the job as a drain ticket, lay it out as a real popcorn
  // stack, and ship it through the migration machinery.  The arrival
  // fires on the neighbor's shard; until then the record travels
  // inside the channel message and nobody touches it.
  popcorn::DrainTicket ticket;
  ticket.job = id;
  ticket.app_index = job.app_index;
  ticket.attempts = job.attempts;
  const popcorn::ThreadStack stack =
      popcorn::checkpoint_drain(ticket, isa::IsaKind::kX86_64);
  const std::size_t dst = handoff_target(c);
  drain_runtimes_[c]->migrate_stack(
      stack, isa::IsaKind::kX86_64, fault_opts_.drain_payload_bytes,
      [this, dst](popcorn::ThreadStack arrived) {
        const popcorn::DrainTicket t = popcorn::decode_drain(arrived);
        TrackedJob& job = jobs_[t.job];
        job.cell = static_cast<std::uint32_t>(dst);
        job.attempts = t.attempts;
        job.state = JobState::kPending;
        cell_jobs_[dst].push_back(t.job);
        // If dst is dead too, place_job forwards onward around the
        // ring -- the plan's kill budget guarantees a survivor.
        place_job(t.job);
      },
      /*charge_transform_cost=*/true);
}

void ClusterExperiment::kill_cell_impl(std::size_t c) {
  if (cell_dead_[c] != 0) return;
  cell_dead_[c] = 1;
  // Exits that race the kill (already-running AppProcesses on this
  // cell's shard) see a stale epoch and drop themselves.
  ++cell_epoch_[c];
  cells_[c]->testbed().fpga().set_offline(true);
  // Snapshot: forward_job edits the live list.
  const std::vector<std::uint64_t> doomed = cell_jobs_[c];
  for (const std::uint64_t id : doomed) {
    TrackedJob& job = jobs_[id];
    // Only force-drain running jobs.  Pending/backoff jobs already
    // have an event scheduled here that will observe cell_dead_ and
    // forward themselves; draining them now would run them twice.
    if (job.state != JobState::kRunning) continue;
    ++job.drains;
    forward_job(id);
  }
}

void ClusterExperiment::set_link_down_impl(std::size_t l, bool down) {
  // The drain link models the same physical pipe as the handoff link,
  // so a partition parks checkpoints and handoffs alike.
  intercell_[l]->set_down(down);
  drain_links_[l]->set_down(down);
}

bool ClusterExperiment::run_until_jobs_complete(Duration horizon) {
  sim::ShardedSimulation& ssim = engine_->engine();
  const TimePoint h = ssim.now() + horizon;
  while (completed_jobs() < jobs_.size() && ssim.now() < h) {
    ssim.run_until(std::min(h, ssim.now() + cluster_.completion_poll));
  }
  return completed_jobs() >= jobs_.size();
}

std::size_t ClusterExperiment::completed_jobs() const {
  return static_cast<std::size_t>(
      std::count_if(jobs_.begin(), jobs_.end(), [](const TrackedJob& j) {
        return j.state == JobState::kCompleted;
      }));
}

std::vector<double> ClusterExperiment::job_completion_times_ms() const {
  std::vector<double> out;
  out.reserve(jobs_.size());
  for (const TrackedJob& j : jobs_) {
    out.push_back(j.state == JobState::kCompleted ? j.completed_at.to_ms()
                                                  : -1.0);
  }
  return out;
}

ClusterExperiment::JobStats ClusterExperiment::job_stats() const {
  JobStats s;
  s.submitted = jobs_.size();
  std::vector<double> latencies;
  for (const TrackedJob& j : jobs_) {
    s.drained += j.drains;
    s.retries += j.attempts;
    if (j.state != JobState::kCompleted) continue;
    ++s.completed;
    latencies.push_back((j.completed_at - j.submitted_at).to_ms());
  }
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    s.max_latency_ms = latencies.back();
    const auto idx = static_cast<std::size_t>(
                         std::ceil(0.99 * static_cast<double>(
                                              latencies.size()))) -
                     1;
    s.p99_latency_ms = latencies[std::min(idx, latencies.size() - 1)];
  }
  return s;
}

}  // namespace xartrek::exp
