#include "exp/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "apps/application.hpp"
#include "common/assert.hpp"
#include "popcorn/checkpoint.hpp"
#include "runtime/scheduler_server.hpp"

namespace xartrek::exp {

ClusterExperiment::ClusterExperiment(
    std::vector<apps::BenchmarkSpec> specs,
    const runtime::ThresholdTable& seed_table, ClusterSpec cluster,
    ExperimentOptions options)
    : cluster_(std::move(cluster)) {
  XAR_EXPECTS(cluster_.cells >= 1);
  XAR_EXPECTS(cluster_.completion_poll > Duration::zero());
  const std::size_t n = cluster_.cells;

  // Declare the graph: cell i's components are nodes with affinity
  // group i, interactions are edges carrying their modeled latency.
  // The partitioner derives everything else (shard map, epoch,
  // channels) from this declaration.
  sim::Topology topo;
  x86_nodes_.reserve(n);
  fpga_nodes_.reserve(n);
  sched_nodes_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::string prefix = "cell" + std::to_string(i) + "/";
    const auto cell_id = static_cast<sim::CellId>(i);
    x86_nodes_.push_back(topo.add_node(prefix + "x86", cell_id));
    fpga_nodes_.push_back(topo.add_node(prefix + "fpga", cell_id));
    sched_nodes_.push_back(topo.add_node(prefix + "sched", cell_id));
    // In-cell interactions: the FPGA's reconfiguration notify crosses
    // the PCIe stack, the scheduler's reply the loopback socket.  Both
    // endpoints share a cell, so the derived channels are inert -- the
    // registration is what keeps the wiring correct if a later spec
    // ever splits a cell's components across cells.
    topo.add_edge(fpga_nodes_[i], sched_nodes_[i],
                  cluster_.cell_config.pcie.latency);
    topo.add_edge(sched_nodes_[i], x86_nodes_[i],
                  runtime::SchedulerServer::Options{}.request_overhead);
  }
  if (n > 1) {
    for (std::size_t i = 0; i < n; ++i) {
      // The ring interconnect: its latency is the cross-cell lookahead
      // the auto-picked epoch derives from.
      topo.add_edge(x86_nodes_[i], x86_nodes_[(i + 1) % n],
                    cluster_.intercell.latency);
    }
  }

  sim::Topology::PartitionOptions popts;
  popts.epoch = cluster_.epoch;
  popts.mailbox_capacity = cluster_.mailbox_capacity;
  popts.parallel = cluster_.parallel;
  popts.exec = cluster_.exec;  // all seven knobs, nothing forgotten
  engine_ = std::make_unique<sim::PartitionedEngine>(std::move(topo),
                                                     popts);

  // One full experiment stack per cell, constructed against the cell's
  // shard through the testbed's shard-aware hook.  Construction order
  // within a cell is exactly exp::Experiment's, so a 1-cell cluster
  // schedules the identical event sequence.
  cells_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ExperimentOptions cell_options = options;
    cell_options.testbed = cluster_.cell_config;
    cell_options.testbed.external_sim = &engine_->sim_of(x86_nodes_[i]);
    cells_.push_back(std::make_unique<Experiment>(specs, seed_table,
                                                  cell_options));
    // Derived wiring instead of hand-assembled channels: in-cell
    // registrations resolve to inert channels (local behavior), and
    // would resolve to mailbox channels automatically if the plan ever
    // placed the endpoints apart.
    cells_[i]->testbed().fpga().register_notify(*engine_, fpga_nodes_[i],
                                                sched_nodes_[i]);
    cells_[i]->server().register_reply(*engine_, sched_nodes_[i],
                                       x86_nodes_[i]);
  }

  if (n > 1) {
    intercell_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      intercell_.push_back(std::make_unique<hw::Link>(
          engine_->sim_of(x86_nodes_[i]), cluster_.intercell));
      intercell_[i]->register_route(*engine_, x86_nodes_[i],
                                    x86_nodes_[(i + 1) % n]);
    }
  }

  // Tracked-job and fault-injection state.  Construction schedules
  // nothing, so a cluster that never submits or applies a plan runs a
  // bit-identical trace to a pre-fault-injection build.
  cell_jobs_.resize(n);
  cell_dead_.assign(n, 0);
  cell_epoch_.assign(n, 0);
  if (n > 1) {
    // The drain path rides the ring: each cell gets a route-less local
    // link (same spec as intercell_[i], so a partition or degradation
    // parks or drops on both -- see set_link_down_impl and
    // apply_fault_plan), a ReliableChannel restoring exactly-once
    // delivery over it, and the registered ring edge as the arrival hop
    // carrying the checkpoint to the neighbor's shard.
    drain_transformer_ = std::make_unique<popcorn::StateTransformer>(
        popcorn::drain_metadata());
    drain_links_.reserve(n);
    drain_arrivals_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      drain_links_.push_back(std::make_unique<hw::Link>(
          engine_->sim_of(x86_nodes_[i]), cluster_.intercell));
      drain_arrivals_.push_back(engine_->channel_between(
          x86_nodes_[i], x86_nodes_[(i + 1) % n]));
    }
    build_drain_channels();
  }

  // Observability: registration allocates everything up front (pooled
  // counters, histogram lanes), so snapshots later never touch the hot
  // path.  Registration order is fixed by construction order, which is
  // what makes exported snapshots byte-identical serial vs parallel.
  register_all_metrics();
}

void ClusterExperiment::register_all_metrics() {
  const std::size_t n = cells_.size();
  obs::Histogram::Options hopts;
  hopts.lanes = n;  // completions record on the completing cell's shard
  job_latency_ = registry_.histogram("cluster.job.latency_ms", hopts);
  engine_->engine().register_metrics(registry_, "sim");
  for (std::size_t i = 0; i < n; ++i) {
    const std::string prefix = "cell" + std::to_string(i);
    cells_[i]->server().register_metrics(registry_, prefix + ".sched");
    if (i < intercell_.size()) {
      intercell_[i]->register_metrics(registry_, prefix + ".link");
    }
    if (i < drain_links_.size()) {
      drain_links_[i]->register_metrics(registry_, prefix + ".drain.link");
    }
    if (i < drain_channels_.size()) {
      // The drain channels are torn down and rebuilt by
      // apply_fault_plan (build_drain_channels), so linking their
      // counter addresses would dangle.  Probes re-resolve the current
      // channel at snapshot time instead -- never on the hot path.
      const auto probe = [&](const char* name,
                             std::uint64_t hw::ReliableChannel::Stats::*f) {
        registry_.probe(prefix + ".drain." + name, [this, i, f]() {
          return i < drain_channels_.size()
                     ? static_cast<double>(drain_channels_[i]->stats().*f)
                     : 0.0;
        });
      };
      probe("sends", &hw::ReliableChannel::Stats::sends);
      probe("retries", &hw::ReliableChannel::Stats::retries);
      probe("corrupt_detected", &hw::ReliableChannel::Stats::corrupt_detected);
      probe("duplicates_suppressed",
            &hw::ReliableChannel::Stats::duplicates_suppressed);
      probe("delivered", &hw::ReliableChannel::Stats::delivered);
      probe("abandoned", &hw::ReliableChannel::Stats::abandoned);
    }
  }
}

void ClusterExperiment::enable_tracing(obs::Tracer::Options opts) {
  tracer_ = std::make_unique<obs::Tracer>(cells_.size(), opts);
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    cells_[i]->server().set_tracer(tracer_.get(),
                                   static_cast<std::uint32_t>(i));
  }
}

void ClusterExperiment::build_drain_channels() {
  const std::size_t n = cells_.size();
  drain_channels_.clear();
  drain_channels_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Each channel's jitter stream is split per cell from the gray
    // seed: deterministic, but de-synchronized across cells.
    drain_channels_.push_back(std::make_unique<hw::ReliableChannel>(
        engine_->sim_of(x86_nodes_[i]), *drain_links_[i],
        fault_opts_.drain_channel,
        Rng(fault_opts_.gray_seed).split(0x5000 + i)));
  }
}

std::vector<platform::Testbed*> ClusterExperiment::testbeds() {
  std::vector<platform::Testbed*> out;
  out.reserve(cells_.size());
  for (auto& cell : cells_) out.push_back(&cell->testbed());
  return out;
}

void ClusterExperiment::set_background_load(std::uint64_t total_jobs) {
  set_background_load(total_jobs, apps::ShardedLoadGenerator::Options{});
}

void ClusterExperiment::set_background_load(
    std::uint64_t total_jobs, apps::ShardedLoadGenerator::Options opts) {
  load_.reset();  // the old cohort detaches before the new one attaches
  if (total_jobs > 0) {
    load_ = std::make_unique<apps::ShardedLoadGenerator>(testbeds(),
                                                         total_jobs, opts);
  }
}

void ClusterExperiment::handoff(std::size_t from, std::uint64_t bytes,
                                sim::UniqueCallback on_arrival) {
  XAR_EXPECTS(cells_.size() > 1);
  XAR_EXPECTS(from < cells_.size());
  handoffs_.fetch_add(1, std::memory_order_relaxed);
  intercell_[from]->transfer(bytes, std::move(on_arrival));
}

std::size_t ClusterExperiment::completed_apps() const {
  std::size_t total = 0;
  for (const auto& cell : cells_) total += cell->completed_apps();
  return total;
}

bool ClusterExperiment::run_until_complete(std::size_t expected,
                                           Duration horizon) {
  sim::ShardedSimulation& ssim = engine_->engine();
  const TimePoint h = ssim.now() + horizon;
  while (completed_apps() < expected && ssim.now() < h) {
    ssim.run_until(std::min(h, ssim.now() + cluster_.completion_poll));
  }
  return completed_apps() >= expected;
}

void ClusterExperiment::run_for(Duration d) {
  XAR_EXPECTS(d >= Duration::zero());
  sim::ShardedSimulation& ssim = engine_->engine();
  ssim.run_until(ssim.now() + d);
}

void ClusterExperiment::apply_fault_plan(const sim::FaultPlan& plan,
                                         FaultInjectionOptions opts) {
  fault_opts_ = opts;
  // An empty plan must leave the run bit-identical to never having
  // called this -- so don't even start health checks.
  if (plan.empty()) return;
  const std::size_t n = cells_.size();
  std::string error;
  if (!plan.validate(static_cast<std::uint32_t>(n),
                     static_cast<std::uint32_t>(intercell_.size()),
                     &error)) {
    throw Error("fault plan rejected: " + error);
  }
  if (n > 1) build_drain_channels();  // pick up opts.drain_channel
  // Every gray draw stream is split from (kind, victim): reproducible
  // from the seed, independent of event order, and never perturbing the
  // workload's own randomness.
  const Rng gray(fault_opts_.gray_seed);
  const auto stream = [&gray](sim::FaultEvent::Kind kind,
                              std::size_t victim, std::uint64_t leg) {
    return gray.split((static_cast<std::uint64_t>(kind) << 32) |
                      (static_cast<std::uint64_t>(victim) << 8) | leg);
  };
  for (const sim::FaultEvent& ev : plan.events()) {
    XAR_EXPECTS(ev.at >= now());
    const std::size_t victim = ev.index;
    sim::Simulation& shard = engine_->sim_of(x86_nodes_[victim]);
    switch (ev.kind) {
      case sim::FaultEvent::Kind::kCellKill:
        // Drained jobs need a surviving ring neighbor to land on.
        XAR_EXPECTS(n > 1 && victim < n);
        shard.schedule_at(ev.at, [this, victim] { kill_cell_impl(victim); });
        break;
      case sim::FaultEvent::Kind::kLinkDown:
      case sim::FaultEvent::Kind::kLinkUp: {
        XAR_EXPECTS(n > 1 && victim < intercell_.size());
        const bool down = ev.kind == sim::FaultEvent::Kind::kLinkDown;
        shard.schedule_at(ev.at, [this, victim, down] {
          set_link_down_impl(victim, down);
        });
        break;
      }
      case sim::FaultEvent::Kind::kReconfigureFail:
        XAR_EXPECTS(victim < n);
        shard.schedule_at(ev.at, [this, victim] {
          cells_[victim]->testbed().fpga().inject_reconfigure_failure();
        });
        break;
      case sim::FaultEvent::Kind::kCellSlow: {
        XAR_EXPECTS(victim < n);
        // The cell's CPUs serve at magnitude x rate; the modeled
        // heartbeat handler rides the same starved cores, so replies
        // stretch by the inverse -- that is what the breaker sees.
        const double factor = ev.magnitude;
        shard.schedule_at(ev.at, [this, victim, factor] {
          cells_[victim]->testbed().x86().set_service_scale(factor);
          cells_[victim]->server().set_reply_latency_scale(1.0 / factor);
        });
        shard.schedule_at(ev.until, [this, victim] {
          cells_[victim]->testbed().x86().set_service_scale(1.0);
          cells_[victim]->server().set_reply_latency_scale(1.0);
        });
        break;
      }
      case sim::FaultEvent::Kind::kLinkDegraded: {
        XAR_EXPECTS(n > 1 && victim < intercell_.size());
        // Handoffs and drains share the physical pipe, so both links
        // degrade together (distinct drop streams: they are separate
        // flows on it).
        const double drop = ev.magnitude;
        const double factor = fault_opts_.degraded_latency_factor;
        Rng ic = stream(ev.kind, victim, 0);
        Rng dr = stream(ev.kind, victim, 1);
        shard.schedule_at(ev.at, [this, victim, factor, drop, ic, dr] {
          intercell_[victim]->set_degraded(factor, drop, ic);
          drain_links_[victim]->set_degraded(factor, drop, dr);
        });
        shard.schedule_at(ev.until, [this, victim] {
          intercell_[victim]->clear_degraded();
          drain_links_[victim]->clear_degraded();
        });
        break;
      }
      case sim::FaultEvent::Kind::kPortFlaky: {
        XAR_EXPECTS(victim < n);
        const double p = ev.magnitude;
        Rng rng = stream(ev.kind, victim, 0);
        shard.schedule_at(ev.at, [this, victim, p, rng] {
          cells_[victim]->testbed().fpga().set_port_flaky(p, rng);
        });
        shard.schedule_at(ev.until, [this, victim] {
          cells_[victim]->testbed().fpga().clear_port_flaky();
        });
        break;
      }
      case sim::FaultEvent::Kind::kDsmCorrupt: {
        // The victim's DSM-backed drain path starts corrupting
        // payloads; the frame checksum catches each one and the
        // reliable channel re-sends it.
        XAR_EXPECTS(n > 1 && victim < n);
        const double p = ev.magnitude;
        Rng rng = stream(ev.kind, victim, 0);
        shard.schedule_at(ev.at, [this, victim, p, rng] {
          drain_links_[victim]->set_corrupting(p, rng);
        });
        shard.schedule_at(ev.until, [this, victim] {
          drain_links_[victim]->clear_corrupting();
        });
        break;
      }
    }
  }
  for (auto& cell : cells_) cell->server().start_health_checks(opts.health);
}

void ClusterExperiment::kill_cell(std::size_t i) {
  XAR_EXPECTS(cells_.size() > 1 && i < cells_.size());
  // Route through the victim's shard so the immediate form and a
  // FaultPlan event produce the same trace.
  engine_->sim_of(x86_nodes_[i]).schedule_at(
      now(), [this, i] { kill_cell_impl(i); });
}

void ClusterExperiment::set_link_down(std::size_t i, bool down) {
  XAR_EXPECTS(cells_.size() > 1 && i < intercell_.size());
  engine_->sim_of(x86_nodes_[i]).schedule_at(
      now(), [this, i, down] { set_link_down_impl(i, down); });
}

std::uint64_t ClusterExperiment::submit(std::size_t i,
                                        const std::string& app_name) {
  XAR_EXPECTS(i < cells_.size());
  const auto& specs = cells_[i]->specs();
  std::size_t app_index = specs.size();
  for (std::size_t k = 0; k < specs.size(); ++k) {
    if (specs[k].name == app_name) {
      app_index = k;
      break;
    }
  }
  XAR_EXPECTS(app_index < specs.size());

  const std::uint64_t id = jobs_.size();
  TrackedJob job;
  job.app_index = static_cast<std::uint32_t>(app_index);
  job.cell = static_cast<std::uint32_t>(i);
  job.submitted_at = now();
  jobs_.push_back(job);
  cell_jobs_[i].push_back(id);
  if (tracer_ != nullptr && tracer_->sampled(trace_id_of(id))) {
    // submit() runs on the main thread between runs, when no worker
    // writes any lane -- touching lane i here is single-writer safe.
    tracer_->instant(static_cast<std::uint32_t>(i), obs::kTrackJob,
                     "job.submit", trace_id_of(id), now());
  }
  engine_->sim_of(x86_nodes_[i]).schedule_at(now(),
                                             [this, id] { place_job(id); });
  return id;
}

void ClusterExperiment::place_job(std::uint64_t id) {
  TrackedJob& job = jobs_[id];
  const std::size_t c = job.cell;
  if (cell_dead_[c] == 0) {
    launch_tracked(id);
    return;
  }
  // Owner is dead: back off exponentially, then checkpoint-forward to
  // the ring neighbor.  The delay is charged on the dead cell's shard,
  // which stays live in the simulation -- only the modeled cell died.
  ++job.attempts;
  job.state = JobState::kBackoff;
  const std::uint32_t exp =
      std::min(job.attempts - 1, fault_opts_.backoff_cap_exponent);
  const Duration delay =
      fault_opts_.backoff_base * static_cast<double>(std::uint64_t{1} << exp);
  if (tracer_ != nullptr && tracer_->sampled(trace_id_of(id))) {
    tracer_->emit(static_cast<std::uint32_t>(c), obs::kTrackJob,
                  "job.backoff", trace_id_of(id),
                  engine_->sim_of(x86_nodes_[c]).now(),
                  engine_->sim_of(x86_nodes_[c]).now() + delay);
  }
  engine_->sim_of(x86_nodes_[c]).schedule_in(delay,
                                             [this, id] { forward_job(id); });
}

void ClusterExperiment::launch_tracked(std::uint64_t id) {
  TrackedJob& job = jobs_[id];
  const std::size_t c = job.cell;
  job.state = JobState::kRunning;
  const std::uint64_t epoch = cell_epoch_[c];
  const std::uint64_t tid = trace_id_of(id);
  obs::SpanRef run_span;
  if (tracer_ != nullptr && tracer_->sampled(tid)) {
    run_span = tracer_->begin(static_cast<std::uint32_t>(c), obs::kTrackJob,
                              "job.run", tid,
                              engine_->sim_of(x86_nodes_[c]).now());
  }
  apps::AppProcess::launch(
      cells_[c]->env(), cells_[c]->specs()[job.app_index],
      cells_[c]->options().mode,
      [this, id, c, epoch, run_span](const apps::AppResult&) {
        const TimePoint at = engine_->sim_of(x86_nodes_[c]).now();
        // The span closes either way (an abandoned attempt genuinely
        // ran until this exit event); the ref travels by value because
        // a ghost must not touch the job record below.
        if (tracer_ != nullptr) tracer_->end(run_span, at);
        // Ghost completion: the cell died after this run launched, so
        // the job was drained and re-placed -- another shard owns its
        // record now.  Drop the exit without touching anything.
        if (cell_epoch_[c] != epoch) return;
        TrackedJob& done = jobs_[id];
        done.state = JobState::kCompleted;
        done.completed_at = at;
        job_latency_->record(c, (at - done.submitted_at).to_ms());
        if (tracer_ != nullptr && tracer_->sampled(trace_id_of(id))) {
          tracer_->instant(static_cast<std::uint32_t>(c), obs::kTrackJob,
                           "job.complete", trace_id_of(id), at);
        }
      },
      static_cast<std::uint32_t>(tid));
}

void ClusterExperiment::forward_job(std::uint64_t id) {
  TrackedJob& job = jobs_[id];
  const std::size_t c = job.cell;
  job.state = JobState::kForwarding;
  auto& owned = cell_jobs_[c];
  const auto it = std::find(owned.begin(), owned.end(), id);
  XAR_ASSERT(it != owned.end());
  owned.erase(it);

  // Snapshot the job as a drain ticket, lay it out as a real popcorn
  // stack, and ship it through the reliable drain channel.  The state
  // transform is charged concurrently with the (possibly re-sent) wire
  // payload, exactly like MigrationRuntime overlaps them; the arrival
  // fires on the neighbor's shard once both legs finish.  Until then
  // the record travels inside the channel message and nobody touches
  // it -- every retry timer and duplicate-suppression decision runs on
  // *this* (the sender's) shard, because the drain link is route-less.
  popcorn::DrainTicket ticket;
  ticket.job = id;
  ticket.app_index = job.app_index;
  ticket.attempts = job.attempts;
  const popcorn::ThreadStack stack =
      popcorn::checkpoint_drain(ticket, isa::IsaKind::kX86_64);
  const std::size_t dst = handoff_target(c);
  popcorn::ThreadStack transformed =
      drain_transformer_->transform_stack(stack, isa::IsaKind::kX86_64);
  const Duration transform_cost =
      drain_transformer_->stack_transform_cost(stack);
  const std::uint64_t payload = fault_opts_.drain_payload_bytes +
                                transformed.total_frame_bytes() + 64 * 8;
  struct Join {
    popcorn::ThreadStack stack;
    int remaining = 2;
  };
  auto join = std::make_shared<Join>(Join{std::move(transformed)});
  auto leg = [this, join, c, dst]() mutable {
    if (--join->remaining != 0) return;
    // Both legs done on shard c: cross to the neighbor's shard (the
    // registered ring edge) and re-materialize there.
    popcorn::ThreadStack arrived = std::move(join->stack);
    if (drain_arrivals_[c].connected()) {
      drain_arrivals_[c].deliver(
          [this, dst, arrived = std::move(arrived)]() mutable {
            land_job(dst, std::move(arrived));
          });
      return;
    }
    land_job(dst, std::move(arrived));
  };
  sim::Simulation& src = engine_->sim_of(x86_nodes_[c]);
  const std::uint64_t tid = trace_id_of(id);
  if (tracer_ != nullptr && tracer_->sampled(tid)) {
    const auto lane = static_cast<std::uint32_t>(c);
    tracer_->instant(lane, obs::kTrackDrain, "drain.checkpoint", tid,
                     src.now());
    // The transform leg's duration is known up front; the transfer leg
    // closes when the reliable channel delivers (retries included) --
    // its completion fires on this shard because the drain link is
    // route-less.
    tracer_->emit(lane, obs::kTrackDrain, "drain.transform", tid, src.now(),
                  src.now() + transform_cost);
    obs::SpanRef span = tracer_->begin(lane, obs::kTrackDrain,
                                       "drain.transfer", tid, src.now());
    src.schedule_in(transform_cost, leg);
    drain_channels_[c]->send(payload, [this, c, span, leg]() mutable {
      tracer_->end(span, engine_->sim_of(x86_nodes_[c]).now());
      leg();
    });
    return;
  }
  src.schedule_in(transform_cost, leg);
  drain_channels_[c]->send(payload, leg);
}

void ClusterExperiment::land_job(std::size_t dst,
                                 popcorn::ThreadStack stack) {
  const popcorn::DrainTicket t = popcorn::decode_drain(stack);
  TrackedJob& job = jobs_[t.job];
  job.cell = static_cast<std::uint32_t>(dst);
  job.attempts = t.attempts;
  job.state = JobState::kPending;
  cell_jobs_[dst].push_back(t.job);
  if (tracer_ != nullptr && tracer_->sampled(trace_id_of(t.job))) {
    // The ticket's job id is the trace context across the drain hop:
    // this marker lands on the *destination* lane, which is what
    // stitches one job's spans across cells.
    tracer_->instant(static_cast<std::uint32_t>(dst), obs::kTrackJob,
                     "job.land", trace_id_of(t.job),
                     engine_->sim_of(x86_nodes_[dst]).now());
  }
  // If dst is dead too, place_job forwards onward around the ring --
  // the plan's kill budget guarantees a survivor.
  place_job(t.job);
}

void ClusterExperiment::kill_cell_impl(std::size_t c) {
  if (cell_dead_[c] != 0) return;
  cell_dead_[c] = 1;
  // Exits that race the kill (already-running AppProcesses on this
  // cell's shard) see a stale epoch and drop themselves.
  ++cell_epoch_[c];
  cells_[c]->testbed().fpga().set_offline(true);
  // Snapshot: forward_job edits the live list.
  const std::vector<std::uint64_t> doomed = cell_jobs_[c];
  for (const std::uint64_t id : doomed) {
    TrackedJob& job = jobs_[id];
    // Only force-drain running jobs.  Pending/backoff jobs already
    // have an event scheduled here that will observe cell_dead_ and
    // forward themselves; draining them now would run them twice.
    if (job.state != JobState::kRunning) continue;
    ++job.drains;
    forward_job(id);
  }
}

void ClusterExperiment::set_link_down_impl(std::size_t l, bool down) {
  // The drain link models the same physical pipe as the handoff link,
  // so a partition parks checkpoints and handoffs alike.
  intercell_[l]->set_down(down);
  drain_links_[l]->set_down(down);
}

bool ClusterExperiment::run_until_jobs_complete(Duration horizon) {
  sim::ShardedSimulation& ssim = engine_->engine();
  const TimePoint h = ssim.now() + horizon;
  while (completed_jobs() < jobs_.size() && ssim.now() < h) {
    ssim.run_until(std::min(h, ssim.now() + cluster_.completion_poll));
  }
  return completed_jobs() >= jobs_.size();
}

std::size_t ClusterExperiment::completed_jobs() const {
  return static_cast<std::size_t>(
      std::count_if(jobs_.begin(), jobs_.end(), [](const TrackedJob& j) {
        return j.state == JobState::kCompleted;
      }));
}

std::vector<double> ClusterExperiment::job_completion_times_ms() const {
  std::vector<double> out;
  out.reserve(jobs_.size());
  for (const TrackedJob& j : jobs_) {
    out.push_back(j.state == JobState::kCompleted ? j.completed_at.to_ms()
                                                  : -1.0);
  }
  return out;
}

ClusterExperiment::JobStats ClusterExperiment::job_stats() const {
  JobStats s;
  s.submitted = jobs_.size();
  for (const TrackedJob& j : jobs_) {
    s.drained += j.drains;
    s.retries += j.attempts;
    if (j.state == JobState::kCompleted) ++s.completed;
  }
  // Latencies come from the registry's histogram (fed at completion on
  // the completing cell's shard) instead of re-sorting a raw vector on
  // every call: max is exact, p99 is a lower-edge estimate that never
  // exceeds the true quantile (so `p99 <= budget` assertions stay safe).
  if (job_latency_->count() > 0) {
    s.max_latency_ms = job_latency_->max();
    s.p99_latency_ms = job_latency_->percentile(0.99);
  }
  // Gray-failure telemetry: sum the per-cell reliability layers (all
  // shard-owned state, read from the main thread between runs).
  for (const auto& ch : drain_channels_) {
    s.channel_retries += ch->stats().retries;
    s.corrupt_recovered += ch->stats().corrupt_detected;
    s.duplicates_suppressed += ch->stats().duplicates_suppressed;
  }
  for (const auto& link : drain_links_) {
    s.link_drops += link->stats().dropped_transfers;
  }
  for (const auto& link : intercell_) {
    s.link_drops += link->stats().dropped_transfers;
  }
  for (const auto& cell : cells_) {
    const runtime::SchedulerServer::Stats& srv = cell->server().stats();
    s.slow_replies += srv.slow_replies;
    s.late_replies += srv.late_replies;
    s.breaker_trips += srv.breaker_trips;
    s.breaker_closes += srv.breaker_closes;
    if (const fpga::SlotScheduler* slots = cell->server().slot_scheduler()) {
      s.slots_quarantined += slots->stats().quarantined;
    }
  }
  return s;
}

}  // namespace xartrek::exp
