// Experiment runners for every figure in the paper's evaluation.
//
// Each runner builds fresh Experiment instances per (system, run),
// executes the workload the paper describes, and returns structured
// results; the bench binaries format them into the paper's tables and
// series.  All runners are deterministic given the seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "apps/application.hpp"
#include "apps/benchmark_spec.hpp"
#include "apps/multi_image_app.hpp"
#include "common/rng.hpp"
#include "exp/experiment.hpp"
#include "runtime/threshold_table.hpp"

namespace xartrek::exp {

/// Uniformly random application set drawn from `specs` (paper §4.1:
/// "randomly selected (using an uniform distribution)").
[[nodiscard]] std::vector<std::string> random_app_set(
    Rng& rng, const std::vector<apps::BenchmarkSpec>& specs, int count);

/// Table 3's load classes for the 6 + 96 core testbed.
enum class LoadClass { kLow, kMedium, kHigh };
[[nodiscard]] LoadClass classify_load(int processes, int x86_cores,
                                      int total_cores);
[[nodiscard]] const char* to_string(LoadClass c);

// ---------------------------------------------------------------------
// Figures 3-5: average execution time of randomized application sets.
// ---------------------------------------------------------------------

struct AvgExecConfig {
  std::vector<int> set_sizes;
  /// Total resident x86 processes including the set (0 = no background
  /// load; Figure 3).  Background load is MG-B, as in the paper.
  int total_processes = 0;
  std::vector<apps::SystemMode> systems;
  int runs = 10;
  std::uint64_t seed = 42;
  ExperimentOptions base_options = {};
};

struct AvgExecCell {
  apps::SystemMode system;
  int set_size;
  double mean_ms = 0.0;
  double stddev_ms = 0.0;
};

struct AvgExecResult {
  std::vector<AvgExecCell> cells;
  [[nodiscard]] const AvgExecCell& cell(apps::SystemMode system,
                                        int set_size) const;
};

[[nodiscard]] AvgExecResult run_avg_exec_experiment(
    const std::vector<apps::BenchmarkSpec>& specs,
    const runtime::ThresholdTable& seed_table, const AvgExecConfig& config);

// ---------------------------------------------------------------------
// Figure 6: face-detection throughput under fixed background load.
// ---------------------------------------------------------------------

struct ThroughputConfig {
  std::vector<int> background_loads = {0, 25, 50, 75, 100};
  std::vector<apps::SystemMode> systems;
  int runs = 10;
  std::uint64_t seed = 42;
  apps::MultiImageConfig image_config = {};
  std::string face_app = "facedet320";
  ExperimentOptions base_options = {};
};

struct ThroughputCell {
  apps::SystemMode system;
  int background_load;
  double mean_images = 0.0;       ///< images processed per 60 s window
  double images_per_second = 0.0;
};

struct ThroughputResult {
  std::vector<ThroughputCell> cells;
  [[nodiscard]] const ThroughputCell& cell(apps::SystemMode system,
                                           int load) const;
};

[[nodiscard]] ThroughputResult run_throughput_experiment(
    const std::vector<apps::BenchmarkSpec>& specs,
    const runtime::ThresholdTable& seed_table,
    const ThroughputConfig& config);

// ---------------------------------------------------------------------
// Figure 7: periodic workload, average execution time.
// ---------------------------------------------------------------------

struct PeriodicExecConfig {
  int waves = 30;
  int apps_per_wave = 20;
  Duration wave_interval = Duration::seconds(30);
  std::vector<apps::SystemMode> systems;
  std::uint64_t seed = 42;
  ExperimentOptions base_options = {};
  /// Record the x86 load wave (1-second sampling) and report its
  /// min/mean/max alongside the results.
  bool record_load_trace = true;
};

struct PeriodicExecCell {
  apps::SystemMode system;
  double mean_ms = 0.0;
  double stddev_ms = 0.0;
  std::size_t completed = 0;
  double makespan_minutes = 0.0;
  /// x86 load wave statistics (when record_load_trace).
  double load_min = 0.0;
  double load_mean = 0.0;
  double load_max = 0.0;
};

[[nodiscard]] std::vector<PeriodicExecCell> run_periodic_exec_experiment(
    const std::vector<apps::BenchmarkSpec>& specs,
    const runtime::ThresholdTable& seed_table,
    const PeriodicExecConfig& config);

// ---------------------------------------------------------------------
// Figure 8: periodic workload, face-detection throughput.
// ---------------------------------------------------------------------

struct PeriodicTputConfig {
  int min_load = 10;
  int max_load = 120;
  Duration load_period = Duration::minutes(7);  ///< one up-down cycle
  Duration load_step_interval = Duration::seconds(15);
  int app_runs = 10;  ///< sequential 60 s face-detection runs
  std::vector<apps::SystemMode> systems;
  std::uint64_t seed = 42;
  apps::MultiImageConfig image_config = {};
  std::string face_app = "facedet320";
  ExperimentOptions base_options = {};
};

struct PeriodicTputCell {
  apps::SystemMode system;
  double mean_images_per_second = 0.0;
  double stddev = 0.0;
};

[[nodiscard]] std::vector<PeriodicTputCell>
run_periodic_throughput_experiment(
    const std::vector<apps::BenchmarkSpec>& specs,
    const runtime::ThresholdTable& seed_table,
    const PeriodicTputConfig& config);

// ---------------------------------------------------------------------
// Figure 9: profitability vs. workload mix.
// ---------------------------------------------------------------------

struct ProfitabilityConfig {
  /// Number of CG-A instances per 10-app set (rest are Digit2000);
  /// seven mixes, 0%..100% as in the paper.
  std::vector<int> cg_counts = {0, 2, 4, 5, 6, 8, 10};
  int set_size = 10;
  int total_processes = 120;
  std::vector<apps::SystemMode> systems;
  int runs = 10;
  std::uint64_t seed = 42;
  ExperimentOptions base_options = {};
};

struct ProfitabilityCell {
  apps::SystemMode system;
  int cg_count;
  double mean_ms = 0.0;
};

struct ProfitabilityResult {
  std::vector<ProfitabilityCell> cells;
  [[nodiscard]] const ProfitabilityCell& cell(apps::SystemMode system,
                                              int cg_count) const;
};

[[nodiscard]] ProfitabilityResult run_profitability_experiment(
    const std::vector<apps::BenchmarkSpec>& specs,
    const runtime::ThresholdTable& seed_table,
    const ProfitabilityConfig& config);

}  // namespace xartrek::exp
