#include "exp/contention.hpp"

#include <bit>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "fpga/device.hpp"
#include "hw/link.hpp"
#include "sim/topology.hpp"

namespace xartrek::exp {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFFu;
    h *= kFnvPrime;
  }
  return h;
}

/// Everything one cell owns, living on that cell's shard.  Counters
/// and the running trace hash are touched only from the cell's own
/// events, so parallel runs race nothing.
struct CellState {
  std::uint32_t index = 0;
  sim::Simulation* sim = nullptr;
  std::unique_ptr<hw::Link> pcie;
  std::unique_ptr<fpga::FpgaDevice> device;
  std::unique_ptr<fpga::SlotScheduler> sched;  ///< slot mode only
  /// Whole-image baseline: one single-kernel image per tenant, packed
  /// with as many CUs as the fabric holds (equal area budget).
  std::vector<fpga::XclbinImage> images;
  sim::CrossShardChannel spill;     ///< ring edge to the next cell
  CellState* next_cell = nullptr;

  std::uint64_t arrivals = 0;
  std::uint64_t completions = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t hash = kFnvOffset;
  /// Baseline dwell bookkeeping.
  bool has_resident = false;
  TimePoint resident_since = TimePoint::origin();
};

struct Workload {
  ContentionSpec spec;
  std::vector<fpga::HwKernelConfig> kernels;  ///< by tenant
  std::vector<std::unique_ptr<CellState>> cells;
  TimePoint end = TimePoint::origin();
};

/// The tenant holding the hot role at `at` (rotating hotspot).
std::uint32_t hot_tenant_at(const ContentionSpec& spec, TimePoint at) {
  const double phase = at.to_ms() / spec.hot_phase.to_ms();
  return static_cast<std::uint32_t>(phase) % spec.tenants;
}

Duration period_of(const ContentionSpec& spec, std::uint32_t tenant,
                   TimePoint at) {
  if (tenant == hot_tenant_at(spec, at)) {
    return Duration::ms(spec.period.to_ms() / spec.hot_factor);
  }
  return spec.period;
}

void on_arrival(Workload& w, CellState& cell, std::uint32_t tenant,
                bool spilled) {
  ++cell.arrivals;
  const std::string& name = w.kernels[tenant].name;
  fpga::FpgaDevice& device = *cell.device;

  if (w.spec.slots > 0) {
    cell.sched->note_demand(name);
    if (device.has_kernel(name)) {
      device.execute(name, w.spec.items, [&cell, tenant] {
        ++cell.completions;
        cell.hash = fnv_mix(cell.hash, cell.index);
        cell.hash = fnv_mix(cell.hash, tenant);
        cell.hash = fnv_mix(
            cell.hash, std::bit_cast<std::uint64_t>(cell.sim->now().to_ms()));
      });
    } else {
      ++cell.fallbacks;
    }
    // Every arrival is a decision opportunity: place an absent kernel,
    // or grow a hot resident one.  The scheduler early-outs while the
    // reconfiguration port is busy.
    cell.sched->provision(name);
  } else {
    if (device.has_kernel(name)) {
      device.execute(name, w.spec.items, [&cell, tenant] {
        ++cell.completions;
        cell.hash = fnv_mix(cell.hash, cell.index);
        cell.hash = fnv_mix(cell.hash, tenant);
        cell.hash = fnv_mix(
            cell.hash, std::bit_cast<std::uint64_t>(cell.sim->now().to_ms()));
      });
    } else {
      ++cell.fallbacks;
      // Demand-driven whole-image swap with dwell hysteresis: the
      // resident tenant keeps the fabric for at least the dwell, so the
      // baseline serves *someone* instead of thrashing to zero.
      const TimePoint now = cell.sim->now();
      const bool dwell_over =
          !cell.has_resident ||
          now - cell.resident_since >= w.spec.whole_image_dwell;
      if (!device.reconfiguring() && dwell_over) {
        cell.has_resident = false;
        device.reconfigure(
            cell.images[tenant], [&cell](fpga::ReconfigureResult r) {
              if (fpga::succeeded(r)) {
                cell.has_resident = true;
                cell.resident_since = cell.sim->now();
              }
            });
      }
    }
  }

  // Tenant 0's demand spills to the next cell around the ring -- real
  // cross-shard traffic, so parallel determinism is load-bearing.
  // Spilled arrivals don't re-spill (no amplification loop).
  if (tenant == 0 && !spilled && w.cells.size() > 1) {
    CellState* next = cell.next_cell;
    auto deliver = [&w, next] { on_arrival(w, *next, 0, true); };
    if (cell.spill.connected()) {
      cell.spill.deliver(std::move(deliver));
    } else {
      // Neighbor shares the shard: same latency, local event.
      cell.sim->schedule_in(w.spec.spill_latency, std::move(deliver));
    }
  }
}

void schedule_arrivals(Workload& w, CellState& cell, std::uint32_t tenant,
                       TimePoint at) {
  if (at > w.end) return;
  cell.sim->schedule_at(at, [&w, &cell, tenant, at] {
    on_arrival(w, cell, tenant, /*spilled=*/false);
    schedule_arrivals(w, cell, tenant, at + period_of(w.spec, tenant, at));
  });
}

}  // namespace

ContentionResult run_fpga_contention(const ContentionSpec& spec) {
  XAR_EXPECTS(spec.cells >= 1);
  XAR_EXPECTS(spec.tenants >= 1);
  XAR_EXPECTS(spec.hot_factor >= 1.0);
  XAR_EXPECTS(spec.period > Duration::zero());
  XAR_EXPECTS(spec.hot_phase > Duration::zero());

  Workload w;
  w.spec = spec;
  w.end = TimePoint::origin() + spec.span;

  // Tenant kernels sized so a 4-slot carve holds up to 4 CUs per slot,
  // and the baseline's whole image packs 16 CUs of one tenant: both
  // models can spend the entire usable region.
  const fpga::FpgaSpec card = fpga::alveo_u50_spec();
  const fpga::FpgaResources footprint = card.usable() / 16;
  for (std::uint32_t t = 0; t < spec.tenants; ++t) {
    fpga::HwKernelConfig k;
    k.name = "TEN_" + std::to_string(t);
    k.resources = footprint;
    k.fixed_cycles = 30'000;
    k.cycles_per_item = 7.0;
    w.kernels.push_back(std::move(k));
  }

  sim::Topology topo;
  std::vector<sim::NodeId> nodes;
  for (std::size_t c = 0; c < spec.cells; ++c) {
    nodes.push_back(topo.add_node("cell" + std::to_string(c) + "/fpga",
                                  static_cast<sim::CellId>(c)));
  }
  std::vector<sim::EdgeId> ring;
  if (spec.cells > 1) {
    for (std::size_t c = 0; c < spec.cells; ++c) {
      ring.push_back(topo.add_edge(nodes[c], nodes[(c + 1) % spec.cells],
                                   spec.spill_latency));
    }
  }
  sim::Topology::PartitionOptions popts;
  popts.parallel = spec.parallel;
  sim::PartitionedEngine engine(std::move(topo), popts);

  for (std::size_t c = 0; c < spec.cells; ++c) {
    auto cell = std::make_unique<CellState>();
    cell->index = static_cast<std::uint32_t>(c);
    cell->sim = &engine.sim_of(nodes[c]);
    cell->pcie = std::make_unique<hw::Link>(*cell->sim, hw::pcie_gen3());
    cell->device = std::make_unique<fpga::FpgaDevice>(*cell->sim, *cell->pcie,
                                                      card);
    if (spec.slots > 0) {
      fpga::SlotConfig slot_cfg;
      slot_cfg.slots = spec.slots;
      cell->device->enable_slots(slot_cfg);
      cell->sched = std::make_unique<fpga::SlotScheduler>(*cell->device,
                                                          spec.policy);
      for (const auto& k : w.kernels) cell->sched->register_kernel(k);
    } else {
      for (const auto& k : w.kernels) {
        fpga::XclbinImage image;
        image.id = "xclbin_" + k.name;
        fpga::HwKernelConfig packed = k;
        packed.compute_units = 16;
        image.kernels.push_back(std::move(packed));
        image.size_bytes = 25ull << 20;
        cell->images.push_back(std::move(image));
      }
    }
    if (spec.cells > 1) cell->spill = engine.channel(ring[c]);
    w.cells.push_back(std::move(cell));
  }
  for (std::size_t c = 0; c < spec.cells; ++c) {
    w.cells[c]->next_cell = w.cells[(c + 1) % spec.cells].get();
  }

  // Stagger tenant start phases deterministically so same-instant
  // pileups don't mask per-tenant behavior.
  for (std::size_t c = 0; c < spec.cells; ++c) {
    for (std::uint32_t t = 0; t < spec.tenants; ++t) {
      const TimePoint first = TimePoint::origin() +
                              Duration::micros(10.0 * (t + 1)) +
                              period_of(spec, t, TimePoint::origin());
      schedule_arrivals(w, *w.cells[c], t, first);
    }
  }

  engine.engine().run_until(w.end);

  ContentionResult r;
  r.executed_events = engine.engine().executed_events();
  r.trace_hash = kFnvOffset;
  for (const auto& cell : w.cells) {
    r.arrivals += cell->arrivals;
    r.fpga_completions += cell->completions;
    r.fallbacks += cell->fallbacks;
    r.reconfigurations += cell->device->reconfigurations();
    if (cell->sched != nullptr) {
      r.evictions += cell->sched->stats().evictions;
      r.replications += cell->sched->stats().replications;
    }
    r.trace_hash = fnv_mix(r.trace_hash, cell->hash);
  }
  const double sim_seconds = spec.span.to_ms() / 1e3;
  r.completions_per_sim_sec =
      sim_seconds > 0.0 ? static_cast<double>(r.fpga_completions) / sim_seconds
                        : 0.0;
  return r;
}

}  // namespace xartrek::exp
