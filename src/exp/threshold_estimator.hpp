// Step G -- threshold estimation.
//
// For each application, in isolation (paper §3.1):
//   1. measure the total execution time in the two migration scenarios,
//      x86-to-ARM and x86-to-FPGA, *with* all communication overhead
//      ("in locus"), and the plain-x86 time -- Table 1;
//   2. re-run the application on x86 while increasing the CPU load
//      (by launching additional instances of the same application)
//      until its execution time exceeds each recorded scenario time;
//   3. record those crossing loads as FPGA_THR and ARM_THR -- Table 2.
//
// A threshold of 0 means the scenario beats plain x86 even on an idle
// machine (the FPGA-favoured applications); a threshold equal to
// `max_load` means the scenario never won within the sweep.
#pragma once

#include <string>
#include <vector>

#include "apps/benchmark_spec.hpp"
#include "common/time.hpp"
#include "runtime/threshold_table.hpp"

namespace xartrek::exp {

/// Per-application estimation record (one Table 1 + Table 2 row).
struct EstimationRow {
  std::string app;
  std::string kernel;
  Duration x86_exec = Duration::zero();   // Table 1 "Vanilla Linux"
  Duration fpga_exec = Duration::zero();  // Table 1 "Xar-Trek x86/FPGA"
  Duration arm_exec = Duration::zero();   // Table 1 "Xar-Trek x86/ARM"
  int fpga_threshold = 0;                 // Table 2 FPGA_THR
  int arm_threshold = 0;                  // Table 2 ARM_THR
};

/// The estimation output: the seed table the run-time consumes plus the
/// per-application rows the paper tabulates.
struct EstimationResult {
  runtime::ThresholdTable table;
  std::vector<EstimationRow> rows;
};

/// The estimator.
class ThresholdEstimator {
 public:
  struct Options {
    int max_load = 128;  ///< sweep ceiling (processes)
  };

  ThresholdEstimator() : ThresholdEstimator(Options()) {}
  explicit ThresholdEstimator(Options opts) : opts_(opts) {}

  /// Run scenarios + sweeps for every benchmark.  Deterministic.
  [[nodiscard]] EstimationResult estimate(
      const std::vector<apps::BenchmarkSpec>& specs) const;

  /// Measure one scenario time in isolation (exposed for tests).
  [[nodiscard]] Duration scenario_time(
      const std::vector<apps::BenchmarkSpec>& specs, const std::string& app,
      runtime::Target target) const;

  /// Measure the app's x86 time with `load` total resident processes
  /// (itself + load-1 instances of the same application).
  [[nodiscard]] Duration x86_time_under_load(
      const std::vector<apps::BenchmarkSpec>& specs, const std::string& app,
      int load) const;

 private:
  Options opts_;
};

}  // namespace xartrek::exp
