#include "exp/trace.hpp"

#include <algorithm>
#include <sstream>

#include "common/assert.hpp"

namespace xartrek::exp {

TraceRecorder::TraceRecorder(sim::Simulation& sim, Duration period)
    : sim_(sim), period_(period) {
  XAR_EXPECTS(period > Duration::zero());
  tick_ = sim_.schedule_in(period_, [this] { tick(); });
}

void TraceRecorder::add_probe(const std::string& name, Probe probe) {
  XAR_EXPECTS(probe != nullptr);
  XAR_EXPECTS(timestamps_.empty());  // align all series
  probes_.emplace_back(std::move(probe), TraceSeries{name, {}});
}

void TraceRecorder::tick() {
  timestamps_.push_back(sim_.now());
  for (auto& [probe, series] : probes_) {
    series.values.push_back(probe());
  }
  tick_ = sim_.schedule_in(period_, [this] { tick(); });
}

const TraceSeries& TraceRecorder::series(const std::string& name) const {
  for (const auto& [probe, s] : probes_) {
    if (s.name == name) return s;
  }
  throw Error("trace: no series named `" + name + "`");
}

TraceRecorder::Summary TraceRecorder::summarize(
    const std::string& name) const {
  const TraceSeries& s = series(name);
  XAR_EXPECTS(!s.values.empty());
  Summary out;
  out.min = *std::min_element(s.values.begin(), s.values.end());
  out.max = *std::max_element(s.values.begin(), s.values.end());
  double sum = 0.0;
  for (double v : s.values) sum += v;
  out.mean = sum / static_cast<double>(s.values.size());
  return out;
}

std::string TraceRecorder::to_csv() const {
  std::ostringstream os;
  os << "time_ms";
  for (const auto& [probe, s] : probes_) os << "," << s.name;
  os << "\n";
  for (std::size_t i = 0; i < timestamps_.size(); ++i) {
    os << timestamps_[i].to_ms();
    for (const auto& [probe, s] : probes_) os << "," << s.values[i];
    os << "\n";
  }
  return os.str();
}

}  // namespace xartrek::exp
