// Multi-tenant FPGA contention workload.
//
// K tenant kernels per cell contend for one card.  The same arrival
// schedule is run against either residency model:
//
//  * slot-virtualized (spec.slots > 0): an fpga::SlotScheduler places
//    and grows tenants across PR slots -- several resident at once,
//    cheap per-slot reconfigurations, replicate-hottest under load;
//  * whole-image baseline (spec.slots == 0): one tenant resident at a
//    time, each switch a full bitstream download, with a dwell-time
//    hysteresis so the baseline doesn't degenerate into pure thrash.
//
// Both models get the same total area budget (the baseline image packs
// as many CUs of its single kernel as the fabric holds), so the
// BENCH_fpga "slots" gate measures virtualization, not extra silicon.
//
// The hot tenant's arrivals also spill a mirrored arrival to the next
// cell around the ring (through the partitioned engine's cross-shard
// channels), so the serial-vs-parallel trace-identity claim is
// exercised by real cross-cell traffic, not independent cells.
#pragma once

#include <cstdint>

#include "common/time.hpp"
#include "fpga/slots.hpp"

namespace xartrek::exp {

struct ContentionSpec {
  std::size_t cells = 2;
  std::uint32_t tenants = 6;   ///< kernels contending per cell
  /// PR slots per device; 0 selects the whole-image baseline.
  std::uint32_t slots = 4;
  /// Base inter-arrival per tenant; the currently hot tenant arrives
  /// `hot_factor`x as often.  The hot role rotates round-robin every
  /// `hot_phase` of simulated time, so tenants parked outside the slot
  /// table heat up and force evictions (both policy arms fire mid-run,
  /// which the bench's slot_activity flag pins).
  Duration period = Duration::ms(2.0);
  double hot_factor = 4.0;
  Duration hot_phase = Duration::ms(60.0);
  Duration span = Duration::seconds(2.0);
  /// Ring-edge latency between neighboring cells (the epoch source).
  Duration spill_latency = Duration::ms(2.0);
  bool parallel = false;
  std::uint64_t items = 4096;  ///< work items per invocation
  /// Baseline hysteresis: a resident image keeps the fabric at least
  /// this long before demand may swap it out.
  Duration whole_image_dwell = Duration::ms(100.0);
  fpga::SlotScheduler::Options policy;
};

struct ContentionResult {
  std::uint64_t arrivals = 0;
  std::uint64_t fpga_completions = 0;  ///< invocations retired on-fabric
  std::uint64_t fallbacks = 0;  ///< arrivals finding the kernel absent
  std::uint64_t reconfigurations = 0;  ///< completed programmings
  std::uint64_t evictions = 0;     ///< slot mode only
  std::uint64_t replications = 0;  ///< slot mode only
  double completions_per_sim_sec = 0.0;
  /// FNV-1a over every completion's (cell, tenant, time) in execution
  /// order -- bitwise identical across serial and parallel runs.
  std::uint64_t trace_hash = 0;
  std::uint64_t executed_events = 0;
};

/// Run the workload.  Deterministic: same spec, same result --
/// including trace_hash -- regardless of spec.parallel.
[[nodiscard]] ContentionResult run_fpga_contention(const ContentionSpec& spec);

}  // namespace xartrek::exp
