// Time-series tracing for experiments.
//
// Records sampled values (x86 load, ARM load, FPGA busy state,
// placement counts) over simulated time so experiments can report the
// load waves they generated and operators can plot them.  Sampling is
// event-driven on a fixed period, like the scheduler's own monitor.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "common/time.hpp"
#include "sim/simulation.hpp"

namespace xartrek::exp {

/// One named, periodically-sampled series.
struct TraceSeries {
  std::string name;
  std::vector<double> values;  ///< one per sample tick
};

/// A multi-series sampler bound to one simulation.
class TraceRecorder {
 public:
  using Probe = std::function<double()>;

  /// Sampling starts at construction and continues until the recorder
  /// is destroyed (or the simulation stops being stepped).
  TraceRecorder(sim::Simulation& sim, Duration period);
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;
  ~TraceRecorder() { tick_.cancel(); }

  /// Register a probe evaluated at every tick.  Add probes before the
  /// first tick fires (construction time) for aligned series.
  void add_probe(const std::string& name, Probe probe);

  [[nodiscard]] const std::vector<TimePoint>& timestamps() const {
    return timestamps_;
  }
  [[nodiscard]] const TraceSeries& series(const std::string& name) const;
  [[nodiscard]] std::size_t sample_count() const {
    return timestamps_.size();
  }

  /// Min/mean/max summary of one series.
  struct Summary {
    double min = 0.0;
    double mean = 0.0;
    double max = 0.0;
  };
  [[nodiscard]] Summary summarize(const std::string& name) const;

  /// CSV: time_ms,series1,series2,...
  [[nodiscard]] std::string to_csv() const;

 private:
  void tick();

  sim::Simulation& sim_;
  Duration period_;
  std::vector<TimePoint> timestamps_;
  std::vector<std::pair<Probe, TraceSeries>> probes_;
  sim::Simulation::EventHandle tick_;
};

}  // namespace xartrek::exp
