#include "exp/figures.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/assert.hpp"
#include "common/stats.hpp"
#include "exp/trace.hpp"

namespace xartrek::exp {

std::vector<std::string> random_app_set(
    Rng& rng, const std::vector<apps::BenchmarkSpec>& specs, int count) {
  XAR_EXPECTS(count >= 1 && !specs.empty());
  std::vector<std::string> set;
  set.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    set.push_back(specs[rng.pick_index(specs.size())].name);
  }
  return set;
}

LoadClass classify_load(int processes, int x86_cores, int total_cores) {
  XAR_EXPECTS(x86_cores > 0 && total_cores >= x86_cores);
  if (processes < x86_cores) return LoadClass::kLow;
  if (processes < total_cores) return LoadClass::kMedium;
  return LoadClass::kHigh;
}

const char* to_string(LoadClass c) {
  switch (c) {
    case LoadClass::kLow:    return "low";
    case LoadClass::kMedium: return "medium";
    case LoadClass::kHigh:   return "high";
  }
  return "?";
}

// ---------------------------------------------------------------------

const AvgExecCell& AvgExecResult::cell(apps::SystemMode system,
                                       int set_size) const {
  for (const auto& c : cells) {
    if (c.system == system && c.set_size == set_size) return c;
  }
  throw Error("AvgExecResult: no such cell");
}

AvgExecResult run_avg_exec_experiment(
    const std::vector<apps::BenchmarkSpec>& specs,
    const runtime::ThresholdTable& seed_table, const AvgExecConfig& config) {
  XAR_EXPECTS(!config.set_sizes.empty() && !config.systems.empty());
  XAR_EXPECTS(config.runs >= 1);

  AvgExecResult result;
  for (int size : config.set_sizes) {
    std::vector<RunningStats> stats(config.systems.size());
    Rng set_rng(config.seed + static_cast<std::uint64_t>(size) * 1009);
    for (int run = 0; run < config.runs; ++run) {
      // One random set, evaluated under every system (paired design).
      const std::vector<std::string> set =
          random_app_set(set_rng, specs, size);
      for (std::size_t s = 0; s < config.systems.size(); ++s) {
        ExperimentOptions options = config.base_options;
        options.mode = config.systems[s];
        Experiment exp(specs, seed_table, options);
        const int background =
            config.total_processes > 0
                ? std::max(0, config.total_processes - size)
                : 0;
        exp.add_background_load(background);
        for (const auto& app : set) exp.launch(app);
        const bool done = exp.run_until_complete(set.size());
        XAR_ENSURES(done);
        for (const auto& r : exp.results()) {
          stats[s].add(r.elapsed().to_ms());
        }
      }
    }
    for (std::size_t s = 0; s < config.systems.size(); ++s) {
      result.cells.push_back(AvgExecCell{config.systems[s], size,
                                         stats[s].mean(),
                                         stats[s].stddev()});
    }
  }
  return result;
}

// ---------------------------------------------------------------------

const ThroughputCell& ThroughputResult::cell(apps::SystemMode system,
                                             int load) const {
  for (const auto& c : cells) {
    if (c.system == system && c.background_load == load) return c;
  }
  throw Error("ThroughputResult: no such cell");
}

ThroughputResult run_throughput_experiment(
    const std::vector<apps::BenchmarkSpec>& specs,
    const runtime::ThresholdTable& seed_table,
    const ThroughputConfig& config) {
  XAR_EXPECTS(!config.systems.empty() && config.runs >= 1);
  ThroughputResult result;
  const apps::BenchmarkSpec& face =
      apps::benchmark_by_name(specs, config.face_app);

  for (int load : config.background_loads) {
    for (apps::SystemMode system : config.systems) {
      RunningStats images;
      for (int run = 0; run < config.runs; ++run) {
        ExperimentOptions options = config.base_options;
        options.mode = system;
        Experiment exp(specs, seed_table, options);
        exp.add_background_load(load);

        bool finished = false;
        apps::MultiImageResult mi_result;
        apps::MultiImageFaceApp::launch(
            exp.env(), face, system, config.image_config,
            [&finished, &mi_result](const apps::MultiImageResult& r) {
              finished = true;
              mi_result = r;
            });
        const TimePoint horizon =
            exp.simulation().now() + config.image_config.deadline +
            Duration::minutes(5);
        while (!finished && exp.simulation().step_one(horizon)) {
        }
        XAR_ENSURES(finished);
        images.add(static_cast<double>(mi_result.images_processed));
      }
      ThroughputCell cell;
      cell.system = system;
      cell.background_load = load;
      cell.mean_images = images.mean();
      cell.images_per_second =
          images.mean() / config.image_config.deadline.to_seconds();
      result.cells.push_back(cell);
    }
  }
  return result;
}

// ---------------------------------------------------------------------

std::vector<PeriodicExecCell> run_periodic_exec_experiment(
    const std::vector<apps::BenchmarkSpec>& specs,
    const runtime::ThresholdTable& seed_table,
    const PeriodicExecConfig& config) {
  XAR_EXPECTS(config.waves >= 1 && config.apps_per_wave >= 1);
  std::vector<PeriodicExecCell> cells;

  // The same wave schedule (same random sets) is replayed per system.
  Rng schedule_rng(config.seed);
  std::vector<std::vector<std::string>> waves;
  waves.reserve(static_cast<std::size_t>(config.waves));
  for (int w = 0; w < config.waves; ++w) {
    waves.push_back(random_app_set(schedule_rng, specs,
                                   config.apps_per_wave));
  }
  const std::size_t total_apps =
      static_cast<std::size_t>(config.waves) *
      static_cast<std::size_t>(config.apps_per_wave);

  for (apps::SystemMode system : config.systems) {
    ExperimentOptions options = config.base_options;
    options.mode = system;
    Experiment exp(specs, seed_table, options);

    std::unique_ptr<TraceRecorder> trace;
    if (config.record_load_trace) {
      trace = std::make_unique<TraceRecorder>(exp.simulation(),
                                              Duration::seconds(1));
      trace->add_probe("x86_load", [&exp] {
        return static_cast<double>(exp.testbed().x86().load());
      });
    }

    for (int w = 0; w < config.waves; ++w) {
      exp.simulation().schedule_at(
          TimePoint::origin() + config.wave_interval * static_cast<double>(w),
          [&exp, &waves, w] {
            for (const auto& app :
                 waves[static_cast<std::size_t>(w)]) {
              exp.launch(app);
            }
          });
    }
    const bool done =
        exp.run_until_complete(total_apps, Duration::minutes(360));
    XAR_ENSURES(done);

    RunningStats stats;
    for (const auto& r : exp.results()) stats.add(r.elapsed().to_ms());
    PeriodicExecCell cell;
    cell.system = system;
    cell.mean_ms = stats.mean();
    cell.stddev_ms = stats.stddev();
    cell.completed = exp.results().size();
    TimePoint last = TimePoint::origin();
    for (const auto& r : exp.results()) last = std::max(last, r.finished);
    cell.makespan_minutes = (last - TimePoint::origin()).to_ms() / 60'000.0;
    if (trace != nullptr && trace->sample_count() > 0) {
      const auto summary = trace->summarize("x86_load");
      cell.load_min = summary.min;
      cell.load_mean = summary.mean;
      cell.load_max = summary.max;
    }
    cells.push_back(cell);
  }
  return cells;
}

// ---------------------------------------------------------------------

std::vector<PeriodicTputCell> run_periodic_throughput_experiment(
    const std::vector<apps::BenchmarkSpec>& specs,
    const runtime::ThresholdTable& seed_table,
    const PeriodicTputConfig& config) {
  XAR_EXPECTS(config.app_runs >= 1);
  XAR_EXPECTS(config.max_load >= config.min_load);
  std::vector<PeriodicTputCell> cells;
  const apps::BenchmarkSpec& face =
      apps::benchmark_by_name(specs, config.face_app);

  for (apps::SystemMode system : config.systems) {
    ExperimentOptions options = config.base_options;
    options.mode = system;
    Experiment exp(specs, seed_table, options);

    // Triangular load wave: min -> max -> min per period, adjusted every
    // step interval for the lifetime of the experiment.
    const double period_ms = config.load_period.to_ms();
    const auto load_at = [&](TimePoint t) {
      const double phase =
          std::fmod(t.to_ms(), period_ms) / period_ms;  // 0..1
      const double tri = phase < 0.5 ? 2.0 * phase : 2.0 * (1.0 - phase);
      return config.min_load +
             static_cast<int>(std::lround(
                 tri * (config.max_load - config.min_load)));
    };
    // Self-rescheduling load controller.
    std::function<void()> adjust = [&exp, &load_at, &adjust, &config] {
      exp.set_background_load(load_at(exp.simulation().now()));
      exp.simulation().schedule_in(config.load_step_interval,
                                   [&adjust] { adjust(); });
    };
    adjust();

    // Ten sequential 60 s face-detection runs (paper §4.3).
    RunningStats tput;
    for (int r = 0; r < config.app_runs; ++r) {
      bool finished = false;
      apps::MultiImageResult mi_result;
      apps::MultiImageFaceApp::launch(
          exp.env(), face, system, config.image_config,
          [&finished, &mi_result](const apps::MultiImageResult& res) {
            finished = true;
            mi_result = res;
          });
      const TimePoint horizon = exp.simulation().now() +
                                config.image_config.deadline +
                                Duration::minutes(5);
      while (!finished && exp.simulation().step_one(horizon)) {
      }
      XAR_ENSURES(finished);
      tput.add(mi_result.images_processed /
               config.image_config.deadline.to_seconds());
    }
    exp.set_background_load(0);

    PeriodicTputCell cell;
    cell.system = system;
    cell.mean_images_per_second = tput.mean();
    cell.stddev = tput.stddev();
    cells.push_back(cell);
  }
  return cells;
}

// ---------------------------------------------------------------------

const ProfitabilityCell& ProfitabilityResult::cell(apps::SystemMode system,
                                                   int cg_count) const {
  for (const auto& c : cells) {
    if (c.system == system && c.cg_count == cg_count) return c;
  }
  throw Error("ProfitabilityResult: no such cell");
}

ProfitabilityResult run_profitability_experiment(
    const std::vector<apps::BenchmarkSpec>& specs,
    const runtime::ThresholdTable& seed_table,
    const ProfitabilityConfig& config) {
  XAR_EXPECTS(!config.cg_counts.empty());
  ProfitabilityResult result;

  for (int cg : config.cg_counts) {
    XAR_EXPECTS(cg >= 0 && cg <= config.set_size);
    for (apps::SystemMode system : config.systems) {
      RunningStats stats;
      for (int run = 0; run < config.runs; ++run) {
        ExperimentOptions options = config.base_options;
        options.mode = system;
        Experiment exp(specs, seed_table, options);
        exp.add_background_load(
            std::max(0, config.total_processes - config.set_size));
        for (int i = 0; i < config.set_size; ++i) {
          exp.launch(i < cg ? "cg_a" : "digit2000");
        }
        const bool done = exp.run_until_complete(
            static_cast<std::size_t>(config.set_size));
        XAR_ENSURES(done);
        for (const auto& r : exp.results()) stats.add(r.elapsed().to_ms());
      }
      result.cells.push_back(ProfitabilityCell{system, cg, stats.mean()});
    }
  }
  return result;
}

}  // namespace xartrek::exp
