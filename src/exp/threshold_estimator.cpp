#include "exp/threshold_estimator.hpp"

#include "exp/experiment.hpp"

namespace xartrek::exp {

Duration ThresholdEstimator::scenario_time(
    const std::vector<apps::BenchmarkSpec>& specs, const std::string& app,
    runtime::Target target) const {
  ExperimentOptions options;
  options.mode = apps::SystemMode::kVanillaX86;  // no scheduler involved
  Experiment exp(specs, runtime::ThresholdTable{}, options);
  if (target == runtime::Target::kFpga) exp.warm_fpga_for(app);
  exp.launch_forced(app, target);
  const bool done = exp.run_until_complete(1);
  XAR_ENSURES(done);
  return exp.results().front().elapsed();
}

Duration ThresholdEstimator::x86_time_under_load(
    const std::vector<apps::BenchmarkSpec>& specs, const std::string& app,
    int load) const {
  XAR_EXPECTS(load >= 1);
  ExperimentOptions options;
  options.mode = apps::SystemMode::kVanillaX86;
  Experiment exp(specs, runtime::ThresholdTable{}, options);
  // `load` simultaneous instances of the same application; the measured
  // one is simply the first to be launched (they are identical).
  for (int i = 0; i < load; ++i) exp.launch_forced(app, runtime::Target::kX86);
  const bool done = exp.run_until_complete(static_cast<std::size_t>(load));
  XAR_ENSURES(done);
  Duration measured = Duration::zero();
  for (const auto& r : exp.results()) {
    if (r.elapsed() > measured) measured = r.elapsed();
  }
  return measured;
}

EstimationResult ThresholdEstimator::estimate(
    const std::vector<apps::BenchmarkSpec>& specs) const {
  EstimationResult result;
  for (const auto& spec : specs) {
    EstimationRow row;
    row.app = spec.name;
    row.kernel = spec.kernel_name;
    row.x86_exec = scenario_time(specs, spec.name, runtime::Target::kX86);
    row.fpga_exec = scenario_time(specs, spec.name, runtime::Target::kFpga);
    row.arm_exec = scenario_time(specs, spec.name, runtime::Target::kArm);

    // Sweep the load upward; a threshold is the last load at which
    // plain x86 still beats the scenario (0 if it never does).
    int fpga_thr = -1;
    int arm_thr = -1;
    for (int load = 1; load <= opts_.max_load; ++load) {
      if (fpga_thr >= 0 && arm_thr >= 0) break;
      const Duration t = x86_time_under_load(specs, spec.name, load);
      if (fpga_thr < 0 && t > row.fpga_exec) fpga_thr = load - 1;
      if (arm_thr < 0 && t > row.arm_exec) arm_thr = load - 1;
    }
    row.fpga_threshold = fpga_thr >= 0 ? fpga_thr : opts_.max_load;
    row.arm_threshold = arm_thr >= 0 ? arm_thr : opts_.max_load;

    runtime::ThresholdEntry entry;
    entry.app = spec.name;
    entry.kernel_name = spec.kernel_name;
    entry.fpga_threshold = row.fpga_threshold;
    entry.arm_threshold = row.arm_threshold;
    entry.x86_exec = row.x86_exec;
    entry.arm_exec = row.arm_exec;
    entry.fpga_exec = row.fpga_exec;
    result.table.upsert(entry);
    result.rows.push_back(row);
  }
  return result;
}

}  // namespace xartrek::exp
