// Experiment context: one system under test on one fresh testbed.
//
// Owns the whole stack an experiment run needs -- the simulated
// platform, the compiled suite (pipeline steps A-F), the threshold
// table, the load monitor, the scheduler server and client, and the
// migration executor -- with construction order and lifetimes in one
// place.  Every paper figure boils down to: build an Experiment per
// (system, run), launch applications and background load, step the
// simulation until the measured set completes, and collect times.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "apps/application.hpp"
#include "apps/benchmark_spec.hpp"
#include "apps/load_generator.hpp"
#include "common/log.hpp"
#include "compiler/xar_compiler.hpp"
#include "platform/testbed.hpp"
#include "runtime/load_monitor.hpp"
#include "runtime/migration_executor.hpp"
#include "runtime/scheduler_client.hpp"
#include "runtime/scheduler_server.hpp"
#include "runtime/threshold_table.hpp"

namespace xartrek::exp {

/// Ablation and policy switches for one experiment.
struct ExperimentOptions {
  apps::SystemMode mode = apps::SystemMode::kXarTrek;
  bool eager_configure = true;          ///< ablation 1 (Figure 6 driver)
  bool dynamic_thresholds = true;       ///< ablation 2 (Algorithm 1 on/off)
  bool hide_reconfiguration = true;     ///< ablation 3 (Algorithm 2 overlap)
  /// Platform description for the testbed this experiment builds.  A
  /// ClusterExperiment cell sets `testbed.external_sim` to its shard's
  /// engine; the default stays the paper's self-contained testbed.
  platform::TestbedConfig testbed = {};
  Logger log = {};
};

/// One system-under-test instance.
class Experiment {
 public:
  /// Compiles `specs` through the pipeline (A-F) onto a fresh testbed.
  /// `seed_table` carries step-G thresholds; pass an empty table for a
  /// cold start (ablation 4).
  Experiment(std::vector<apps::BenchmarkSpec> specs,
             const runtime::ThresholdTable& seed_table,
             ExperimentOptions options = {});

  Experiment(const Experiment&) = delete;
  Experiment& operator=(const Experiment&) = delete;

  [[nodiscard]] platform::Testbed& testbed() { return *testbed_; }
  [[nodiscard]] sim::Simulation& simulation() {
    return testbed_->simulation();
  }
  [[nodiscard]] runtime::ThresholdTable& table() { return table_; }
  [[nodiscard]] const compiler::CompiledSuite& suite() const {
    return suite_;
  }
  [[nodiscard]] runtime::SchedulerServer& server() { return *server_; }
  [[nodiscard]] runtime::MigrationExecutor& executor() { return *executor_; }
  [[nodiscard]] const ExperimentOptions& options() const { return options_; }
  [[nodiscard]] const std::vector<apps::BenchmarkSpec>& specs() const {
    return specs_;
  }
  [[nodiscard]] const apps::BenchmarkSpec& spec(const std::string& name) const {
    return apps::benchmark_by_name(specs_, name);
  }

  /// The environment handed to application processes.
  [[nodiscard]] apps::RuntimeEnv env();

  /// Launch one run of `app_name` now; its result is appended to
  /// `results()` and counted toward `completed_apps()`.
  void launch(const std::string& app_name);

  /// Launch a forced-target run (pre/post on x86, function on `target`)
  /// -- the step-G measurement scenarios.
  void launch_forced(const std::string& app_name, runtime::Target target);

  /// Block (in simulated time) until the XCLBIN holding `app_name`'s
  /// kernel is live on the FPGA.  Step-G's forced-FPGA scenario measures
  /// offload cost with a warm image, as the instrumented binary's eager
  /// main-start configuration would provide.
  void warm_fpga_for(const std::string& app_name);

  /// Start `n` background MG-B load processes (kept until teardown).
  void add_background_load(int n);

  /// Adjust background load to exactly `n` processes (periodic
  /// experiments ramp load up and down).
  void set_background_load(int n);

  /// Step the simulation until `expected` launched apps have exited or
  /// the horizon passes.  Returns true if the count was reached.
  bool run_until_complete(std::size_t expected,
                          Duration horizon = Duration::minutes(120));

  [[nodiscard]] std::size_t completed_apps() const { return results_.size(); }
  [[nodiscard]] const std::vector<apps::AppResult>& results() const {
    return results_;
  }

 private:
  std::vector<apps::BenchmarkSpec> specs_;
  ExperimentOptions options_;
  std::unique_ptr<platform::Testbed> testbed_;
  compiler::CompiledSuite suite_;
  runtime::ThresholdTable table_;
  std::unique_ptr<runtime::LoadMonitor> monitor_;
  std::unique_ptr<runtime::SchedulerServer> server_;
  std::unique_ptr<runtime::SchedulerClient> client_;
  std::unique_ptr<runtime::MigrationExecutor> executor_;
  std::vector<std::unique_ptr<apps::LoadGenerator>> load_;
  std::vector<apps::AppResult> results_;
};

}  // namespace xartrek::exp
