// Fat-binary image format.
//
// A multi-ISA executable is distributed as one artifact containing the
// per-ISA images, the cross-ISA-aligned symbol table, and the migration
// metadata section.  This module defines that container: writing a
// MultiIsaBinary to a byte image and parsing it back losslessly.  It
// gives the compiler pipeline a concrete deliverable (what would be
// `app.xar` on disk) and the size model a ground truth: the encoded
// *descriptor* plus the section payload sizes equals
// MultiIsaBinary::file_bytes() up to the fixed container overhead.
//
// Layout (little-endian):
//   magic "XFAT" | version u8 | name str
//   n_isas u8 { isa u8, text u64, rodata u64, data u64, bss u64 }
//   layout: image_span u64, n_paddings u8 { isa u8, bytes u64 },
//           n_symbols u32 { name str, vaddr u64 }
//   metadata: n_sites u32 { function str, site_id i32,
//             n_frames u8 { isa u8, frame_size u64 },
//             n_values u32 { name str, type u8,
//                            n_locations u8 { isa u8, kind u8,
//                                             reg str, offset u64 } } }
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "popcorn/multi_isa_binary.hpp"

namespace xartrek::popcorn {

/// Encode the binary's descriptor image.
[[nodiscard]] std::vector<std::byte> write_fat_binary(
    const MultiIsaBinary& binary);

/// Parse a descriptor image; throws xartrek::Error on bad magic,
/// version, truncation, unknown ISA/type tags, or trailing bytes.
[[nodiscard]] MultiIsaBinary read_fat_binary(
    std::span<const std::byte> image);

inline constexpr std::uint32_t kFatMagic = 0x54414658;  // "XFAT"
inline constexpr std::uint8_t kFatVersion = 1;

}  // namespace xartrek::popcorn
