// The Popcorn migration run-time (software x86 <-> ARM migration).
//
// When the Xar-Trek scheduler decides to move a function to the ARM
// server, this run-time (1) transforms the thread's dynamic state to the
// destination ISA format (source-CPU work), (2) ships the transformed
// state plus the function's working set over the shared Ethernet link,
// and (3) resumes at the same migration point on the destination.  The
// return trip mirrors it.  All of this is the "communication overhead"
// the paper folds into its in-locus threshold measurements.
//
// State transformation is *hidden behind* the transfer: the working-set
// burst (the bulk of the payload) enters the wire immediately while the
// source CPU rewrites the register/stack state concurrently, and the
// destination resumes once both are done -- migration latency is
// max(transform, transfer), not their sum.  The transformed state
// itself is a few hundred bytes riding at the tail of a multi-megabyte
// burst, so overlapping is sound (Mavrogeorgis et al. make the same
// observation for x86<->ARM migration).
#pragma once

#include <cstdint>

#include "common/time.hpp"
#include "hw/link.hpp"
#include "obs/trace.hpp"
#include "popcorn/machine_state.hpp"
#include "popcorn/state_transform.hpp"
#include "sim/callback.hpp"
#include "sim/shard.hpp"
#include "sim/simulation.hpp"
#include "sim/topology.hpp"

namespace xartrek::popcorn {

/// Orchestrates one-way thread migrations between ISA-different nodes.
class MigrationRuntime {
 public:
  using MigrationCallback = sim::UniqueFunction<void(MachineState)>;
  using StackCallback = sim::UniqueFunction<void(ThreadStack)>;

  MigrationRuntime(sim::Simulation& sim, hw::Link& ethernet,
                   const StateTransformer& transformer)
      : sim_(sim), ethernet_(ethernet), transformer_(&transformer) {}

  /// Migrate a thread whose state is `state` to `dst_isa`, shipping
  /// `working_set_bytes` of program data along with the transformed
  /// state.  `on_arrival` fires on the destination with the transformed
  /// state once the transfer completes.
  ///
  /// Timing: the transfer starts immediately and the transform cost is
  /// charged concurrently -- arrival happens when the later of the two
  /// finishes.  Callers who model CPU contention should charge the
  /// transform on their CPU pool themselves (concurrently with the
  /// wire) and pass charge_transform_cost = false, which makes this
  /// call transfer-only.
  void migrate(const MachineState& state, isa::IsaKind dst_isa,
               std::uint64_t working_set_bytes, MigrationCallback on_arrival,
               bool charge_transform_cost = true);

  /// Migrate a whole call stack: every activation record is rewritten
  /// and the payload includes all frames (real Popcorn ships the full
  /// stack region).
  void migrate_stack(const ThreadStack& stack, isa::IsaKind dst_isa,
                     std::uint64_t working_set_bytes,
                     StackCallback on_arrival,
                     bool charge_transform_cost = true);

  /// Topology registration: this runtime's source side is node `self`,
  /// the migration destination node `destination`.  When the
  /// partitioner put them on different shards, `on_arrival` fires on
  /// the destination's shard, the registered edge's latency after the
  /// last byte lands (the destination-side resume cost); otherwise
  /// arrivals keep firing on this runtime's shard.
  void register_arrival(sim::PartitionedEngine& eng, sim::NodeId self,
                        sim::NodeId destination) {
    arrival_ = eng.channel_between(self, destination);
  }

  /// The transformer's CPU cost for this state (exposed so callers can
  /// charge it to a contended CPU pool).
  [[nodiscard]] Duration transform_cost(const MachineState& state) const {
    return transformer_->transform_cost(state);
  }

  /// Completed migrations (diagnostics).
  [[nodiscard]] std::uint64_t migrations() const { return migrations_; }

  /// Emit "popcorn.transform" / "popcorn.transfer" leg spans on `lane`
  /// (the shard this runtime's simulation runs on); the span trace id
  /// is the migration sequence number.  Null detaches.
  void set_tracer(obs::Tracer* tracer, std::uint32_t lane) {
    tracer_ = tracer;
    trace_lane_ = lane;
  }

 private:
  /// Ship `payload` and (optionally) charge the transform concurrently;
  /// the arrival delivers when the later of the two completes.
  template <typename State, typename Cb>
  void overlap_and_deliver(Duration transform_cost, std::uint64_t payload,
                           State state, Cb cb, bool charge_transform_cost) {
    if (!charge_transform_cost || transform_cost <= Duration::zero()) {
      if (tracer_ != nullptr) {
        const std::uint64_t mig_id = ++started_;
        if (tracer_->sampled(mig_id)) {
          obs::SpanRef span =
              tracer_->begin(trace_lane_, obs::kTrackMigration,
                             "popcorn.transfer", mig_id, sim_.now());
          ethernet_.transfer(payload, [this, span, state = std::move(state),
                                       cb = std::move(cb)]() mutable {
            tracer_->end(span, sim_.now());
            deliver_arrival(std::move(state), std::move(cb));
          });
          return;
        }
      }
      ethernet_.transfer(payload, [this, state = std::move(state),
                                   cb = std::move(cb)]() mutable {
        deliver_arrival(std::move(state), std::move(cb));
      });
      return;
    }
    // Two concurrent legs meet in a shared join node; migrations are
    // per-burst events (the payload itself is heap state), so the one
    // allocation here is noise next to the transfer it hides.
    struct Join {
      MigrationRuntime* rt;
      State state;
      Cb cb;
      int remaining = 2;
    };
    auto join =
        std::make_shared<Join>(Join{this, std::move(state), std::move(cb)});
    auto leg = [join]() mutable {
      if (--join->remaining == 0) {
        join->rt->deliver_arrival(std::move(join->state),
                                  std::move(join->cb));
      }
    };
    const std::uint64_t mig_id = ++started_;
    if (tracer_ != nullptr && tracer_->sampled(mig_id)) {
      // The transform leg's duration is known up front; the transfer
      // leg closes when the last byte lands (link contention decides).
      tracer_->emit(trace_lane_, obs::kTrackMigration, "popcorn.transform",
                    mig_id, sim_.now(), sim_.now() + transform_cost);
      obs::SpanRef span =
          tracer_->begin(trace_lane_, obs::kTrackMigration,
                         "popcorn.transfer", mig_id, sim_.now());
      sim_.schedule_in(transform_cost, leg);
      ethernet_.transfer(payload, [this, span, leg]() mutable {
        tracer_->end(span, sim_.now());
        leg();
      });
      return;
    }
    sim_.schedule_in(transform_cost, leg);
    ethernet_.transfer(payload, std::move(leg));
  }

  /// Count the migration and run (or cross-shard-deliver) one arrival
  /// callback with its transformed payload.
  template <typename State, typename Callback>
  void deliver_arrival(State state, Callback cb) {
    ++migrations_;
    if (arrival_.connected()) {
      // The destination node lives on another shard: resume there.
      arrival_.deliver(
          [state = std::move(state), cb = std::move(cb)]() mutable {
            cb(std::move(state));
          });
      return;
    }
    cb(std::move(state));
  }

  sim::Simulation& sim_;
  hw::Link& ethernet_;
  const StateTransformer* transformer_;
  sim::CrossShardChannel arrival_;
  std::uint64_t migrations_ = 0;
  std::uint64_t started_ = 0;  ///< migrations begun (span trace ids)
  obs::Tracer* tracer_ = nullptr;
  std::uint32_t trace_lane_ = 0;
};

}  // namespace xartrek::popcorn
