// The Popcorn migration run-time (software x86 <-> ARM migration).
//
// When the Xar-Trek scheduler decides to move a function to the ARM
// server, this run-time (1) transforms the thread's dynamic state to the
// destination ISA format (source-CPU work), (2) ships the transformed
// state plus the function's working set over the shared Ethernet link,
// and (3) resumes at the same migration point on the destination.  The
// return trip mirrors it.  All of this is the "communication overhead"
// the paper folds into its in-locus threshold measurements.
#pragma once

#include <cstdint>

#include "common/time.hpp"
#include "hw/link.hpp"
#include "popcorn/machine_state.hpp"
#include "popcorn/state_transform.hpp"
#include "sim/callback.hpp"
#include "sim/shard.hpp"
#include "sim/simulation.hpp"

namespace xartrek::popcorn {

/// Orchestrates one-way thread migrations between ISA-different nodes.
class MigrationRuntime {
 public:
  using MigrationCallback = sim::UniqueFunction<void(MachineState)>;
  using StackCallback = sim::UniqueFunction<void(ThreadStack)>;

  MigrationRuntime(sim::Simulation& sim, hw::Link& ethernet,
                   const StateTransformer& transformer)
      : sim_(sim), ethernet_(ethernet), transformer_(&transformer) {}

  /// Migrate a thread whose state is `state` to `dst_isa`, shipping
  /// `working_set_bytes` of program data along with the transformed
  /// state.  `on_arrival` fires on the destination with the transformed
  /// state once the transfer completes.
  ///
  /// Timing: transform cost elapses first (it runs on the source CPU;
  /// callers who model CPU contention should charge it there instead and
  /// pass charge_transform_cost = false), then the Ethernet transfer.
  void migrate(const MachineState& state, isa::IsaKind dst_isa,
               std::uint64_t working_set_bytes, MigrationCallback on_arrival,
               bool charge_transform_cost = true);

  /// Migrate a whole call stack: every activation record is rewritten
  /// and the payload includes all frames (real Popcorn ships the full
  /// stack region).
  void migrate_stack(const ThreadStack& stack, isa::IsaKind dst_isa,
                     std::uint64_t working_set_bytes,
                     StackCallback on_arrival,
                     bool charge_transform_cost = true);

  /// Route arrivals to a destination node living on another simulation
  /// shard: `on_arrival` then fires there, the channel's latency after
  /// the last byte lands (the destination-side resume cost).  Inert by
  /// default -- arrivals fire on this runtime's shard.
  void set_arrival_channel(sim::CrossShardChannel channel) {
    arrival_ = channel;
  }

  /// The transformer's CPU cost for this state (exposed so callers can
  /// charge it to a contended CPU pool).
  [[nodiscard]] Duration transform_cost(const MachineState& state) const {
    return transformer_->transform_cost(state);
  }

  /// Completed migrations (diagnostics).
  [[nodiscard]] std::uint64_t migrations() const { return migrations_; }

 private:
  /// Count the migration and run (or cross-shard-deliver) one arrival
  /// callback with its transformed payload.
  template <typename State, typename Callback>
  void deliver_arrival(State state, Callback cb) {
    ++migrations_;
    if (arrival_.connected()) {
      // The destination node lives on another shard: resume there.
      arrival_.deliver(
          [state = std::move(state), cb = std::move(cb)]() mutable {
            cb(std::move(state));
          });
      return;
    }
    cb(std::move(state));
  }

  sim::Simulation& sim_;
  hw::Link& ethernet_;
  const StateTransformer* transformer_;
  sim::CrossShardChannel arrival_;
  std::uint64_t migrations_ = 0;
};

}  // namespace xartrek::popcorn
