// Migration-point metadata.
//
// The multi-ISA compiler emits, for every migration point (a call site
// where program state is provably equivalent across ISAs), the set of
// live values together with each value's location *per ISA* -- a register
// or a stack slot -- and the frame size per ISA.  The run-time state
// transformer consumes this to re-materialize a thread's state in the
// destination ISA's format (paper §2, "Heterogeneous-ISA Platforms").
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "isa/isa.hpp"

namespace xartrek::popcorn {

/// Primitive value types tracked by the liveness pass (the migrate-able
/// subset: Xar-Trek is limited to C, so no non-POD types appear).
enum class ValueType { kI8, kI16, kI32, kI64, kF32, kF64, kPtr };

[[nodiscard]] constexpr unsigned size_of(ValueType t) {
  switch (t) {
    case ValueType::kI8:  return 1;
    case ValueType::kI16: return 2;
    case ValueType::kI32: return 4;
    case ValueType::kF32: return 4;
    case ValueType::kI64: return 8;
    case ValueType::kF64: return 8;
    case ValueType::kPtr: return 8;
  }
  return 0;
}

[[nodiscard]] constexpr const char* to_string(ValueType t) {
  switch (t) {
    case ValueType::kI8:  return "i8";
    case ValueType::kI16: return "i16";
    case ValueType::kI32: return "i32";
    case ValueType::kI64: return "i64";
    case ValueType::kF32: return "f32";
    case ValueType::kF64: return "f64";
    case ValueType::kPtr: return "ptr";
  }
  return "?";
}

/// Where a live value resides at a migration point for one ISA.
struct ValueLocation {
  enum class Kind { kRegister, kStackSlot };
  Kind kind = Kind::kStackSlot;
  std::string reg;          ///< valid when kind == kRegister
  std::uint64_t offset = 0; ///< byte offset from the frame base
                            ///< (lowest address), when kind == kStackSlot

  [[nodiscard]] static ValueLocation in_register(std::string name) {
    return ValueLocation{Kind::kRegister, std::move(name), 0};
  }
  [[nodiscard]] static ValueLocation on_stack(std::uint64_t offset) {
    return ValueLocation{Kind::kStackSlot, {}, offset};
  }
};

/// One live value with its per-ISA locations.
struct LiveValue {
  std::string name;
  ValueType type = ValueType::kI64;
  std::map<isa::IsaKind, ValueLocation> location;
};

/// Everything the transformer needs about one migration point.
struct CallSiteMetadata {
  std::string function;
  int site_id = 0;
  std::vector<LiveValue> live_values;
  std::map<isa::IsaKind, std::uint64_t> frame_size;

  [[nodiscard]] std::uint64_t frame_size_for(isa::IsaKind isa) const;
};

/// The per-binary migration metadata table (one entry per migration
/// point), plus an encoded-size model for the binary-size accounting.
class MigrationMetadata {
 public:
  void add_site(CallSiteMetadata site);

  /// Find the metadata for (function, site), or nullptr.
  [[nodiscard]] const CallSiteMetadata* find(const std::string& function,
                                             int site_id) const;

  [[nodiscard]] const std::vector<CallSiteMetadata>& sites() const {
    return sites_;
  }

  /// Approximate encoded size of the metadata section: per-site header +
  /// per-value records per ISA (mirrors the .llvm_pcn metadata sections
  /// real Popcorn binaries carry).
  [[nodiscard]] std::uint64_t encoded_size_bytes() const;

 private:
  std::vector<CallSiteMetadata> sites_;
};

}  // namespace xartrek::popcorn
