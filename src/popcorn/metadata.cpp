#include "popcorn/metadata.hpp"

#include "common/assert.hpp"

namespace xartrek::popcorn {

std::uint64_t CallSiteMetadata::frame_size_for(isa::IsaKind isa) const {
  auto it = frame_size.find(isa);
  XAR_EXPECTS(it != frame_size.end());
  return it->second;
}

void MigrationMetadata::add_site(CallSiteMetadata site) {
  XAR_EXPECTS(find(site.function, site.site_id) == nullptr);
  sites_.push_back(std::move(site));
}

const CallSiteMetadata* MigrationMetadata::find(const std::string& function,
                                                int site_id) const {
  for (const auto& s : sites_) {
    if (s.function == function && s.site_id == site_id) return &s;
  }
  return nullptr;
}

std::uint64_t MigrationMetadata::encoded_size_bytes() const {
  // Encoding model: 32-byte site header, then per live value a 16-byte
  // record for each ISA that has a location entry (type tag, location
  // kind, register id / frame offset).
  std::uint64_t total = 0;
  for (const auto& s : sites_) {
    total += 32;
    for (const auto& v : s.live_values) total += 16 * v.location.size();
  }
  return total;
}

}  // namespace xartrek::popcorn
