// Page-granularity distributed shared memory.
//
// Popcorn Linux implements DSM as a first-class OS abstraction so that a
// thread resuming on the other server observes sequentially-consistent
// memory (paper §2).  This model implements an MSI protocol over the
// inter-server link: each node holds a full-size memory replica plus a
// per-page state; reads pull remote pages, writes invalidate remote
// copies.  It is both *functional* (bytes really move; tests check
// coherence invariants) and *costed* (each page pull occupies the shared
// Ethernet link, which is where the paper's x86->ARM migration overhead
// comes from).
//
// The data path is a pipelined streaming engine.  Operations live in a
// recycled slot slab (no per-op heap allocation), overlapping ops are
// ordered through per-page pending lists (FIFO claim queues -- the MSI
// state of a page is only ever mutated by the page's single active
// claim, so invariants hold with any number of transactions in flight),
// runs of contiguous Invalid pages pulled from the same owner coalesce
// into one link transfer of run_length * page_size bytes, and transfers
// are windowed per (destination, source) node pair so a migration burst
// keeps `window_depth` pulls on the wire at once instead of paying the
// per-transfer latency serially.  Completion callbacks always retire in
// submission order, so the observable transaction order is exactly the
// legacy serialized engine's; `window_depth = 1` degrades to that
// engine outright (one transaction at a time, page by page, no
// coalescing) and reproduces its trace bit-for-bit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "hw/link.hpp"
#include "obs/trace.hpp"
#include "sim/callback.hpp"
#include "sim/simulation.hpp"
#include "sim/slot_pool.hpp"

namespace xartrek::popcorn {

/// MSI page state.
enum class PageState { kInvalid, kShared, kModified };

/// A multi-node DSM instance.
class Dsm {
 public:
  using Callback = sim::UniqueCallback;
  using ReadCallback = sim::UniqueFunction<void(std::vector<std::byte>)>;

  struct Config {
    std::size_t nodes = 2;
    std::uint64_t memory_bytes = 1 << 20;
    std::uint64_t page_size = 4096;
    /// Maximum in-flight link transfers per (destination, source) node
    /// pair.  Depth 1 selects the fully-serialized legacy engine: one
    /// memory transaction at a time, its pages ensured one after
    /// another, every Invalid page its own wire transfer.
    std::size_t window_depth = 8;
    /// Times a corrupted wire transfer is re-requested before the DSM
    /// gives up (throws) -- gray-failure resilience bound.
    std::uint32_t max_transfer_retries = 3;
  };

  struct Stats {
    std::uint64_t local_page_hits = 0;
    std::uint64_t page_transfers = 0;  ///< pages moved over the link
    std::uint64_t invalidations = 0;
    std::uint64_t link_transfers = 0;  ///< wire transfers issued
    std::uint64_t coalesced_runs = 0;  ///< transfers carrying >1 page
    std::uint64_t bytes_transferred = 0;
    std::uint64_t max_in_flight = 0;  ///< peak concurrent wire transfers
    std::uint64_t corrupt_detected = 0;  ///< checksum-verify failures
    std::uint64_t retries = 0;           ///< corrupted runs re-requested
    [[nodiscard]] double bytes_per_transfer() const {
      return link_transfers == 0 ? 0.0
                                 : static_cast<double>(bytes_transferred) /
                                       static_cast<double>(link_transfers);
    }
  };

  /// Node 0 starts as the exclusive (Modified) owner of every page: the
  /// application begins life on the x86 host.
  Dsm(sim::Simulation& sim, hw::Link& link, Config cfg);

  /// Read `len` bytes at `addr` as seen by `node`; pulls pages as needed.
  void read(std::size_t node, std::uint64_t addr, std::uint64_t len,
            ReadCallback on_done);

  /// Zero-copy read: the bytes land in the caller-owned buffer `out`
  /// (`len` bytes; may be null when `len == 0`).  The buffer must stay
  /// valid until `on_done` fires.  This is the streaming path migration
  /// bursts use -- no result vector is materialized per op.
  void read_into(std::size_t node, std::uint64_t addr, std::uint64_t len,
                 std::byte* out, Callback on_done);

  /// Write `data` at `addr` from `node`; acquires exclusive ownership of
  /// the spanned pages (invalidating remote copies) first.
  void write(std::size_t node, std::uint64_t addr,
             std::vector<std::byte> data, Callback on_done);

  /// Zero-copy write: `data` is staged into the op slot's warm buffer
  /// at submit time (the caller's span may die immediately after the
  /// call).  The streaming sibling of read_into -- no per-op vector
  /// allocation in steady state.
  void write_from(std::size_t node, std::uint64_t addr,
                  std::span<const std::byte> data, Callback on_done);

  [[nodiscard]] PageState page_state(std::size_t node,
                                     std::uint64_t page) const;
  [[nodiscard]] std::uint64_t page_count() const { return pages_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const Config& config() const { return cfg_; }

  /// Link the stats counters into a metrics registry under `prefix`.
  void register_metrics(obs::Registry& registry,
                        const std::string& prefix) const;

  /// Emit a "dsm.burst" span per wire transfer on `lane` (the shard
  /// this DSM's simulation runs on).  The span's trace id is the wire
  /// transfer sequence number, so the tracer's sampling knob thins
  /// burst spans without touching DSM behavior.  Null detaches.
  void set_tracer(obs::Tracer* tracer, std::uint32_t lane) {
    tracer_ = tracer;
    trace_lane_ = lane;
  }

  /// Protocol invariants: per page, at most one Modified copy and no
  /// Shared copy coexisting with a Modified one; all Shared copies hold
  /// identical bytes.  Throws on violation (tests call this).
  void check_invariants() const;

 private:
  static constexpr std::uint32_t kNone = sim::SlotPool<int>::kNoSlot;

  enum class ClaimStatus : std::uint8_t {
    kWaiting,   ///< queued behind an earlier op's claim on the page
    kReady,     ///< head of the page queue, action not yet started
    kInFlight,  ///< upgrade latency or wire transfer outstanding
    kDone,      ///< ensured for this op; held until the op's data phase
  };

  /// One in-flight memory transaction.  Slots recycle; the `data` and
  /// `claims` vectors keep their capacity across ops, so the steady
  /// state performs no engine-side allocation.
  struct Op {
    bool is_write = false;
    bool wants_vector = false;  ///< read(): materialize a result vector
    std::size_t node = 0;
    std::uint64_t addr = 0;
    std::uint64_t len = 0;
    std::vector<std::byte> data;  ///< write payload / read result
    std::byte* out = nullptr;     ///< read_into destination
    ReadCallback on_read;
    Callback on_done;  ///< write / read_into completion
    std::uint64_t first_page = 0;
    std::uint64_t npages = 0;  ///< 0 for empty (len == 0) ops
    std::uint64_t waiting = 0;
    std::uint64_t cursor = 0;             ///< serialized-mode page cursor
    std::vector<std::uint32_t> claims;    ///< claim slot per page
    std::uint32_t order_next = kNone;     ///< submission-order chain
    bool ensured = false;
  };

  /// One op's membership in one page's pending list.
  struct Claim {
    std::uint32_t op = kNone;
    std::uint64_t page = 0;
    std::uint32_t next = kNone;  ///< next claim in the page queue
    ClaimStatus status = ClaimStatus::kWaiting;
  };

  /// One wire transfer: a coalesced run of contiguous Invalid pages
  /// pulled from `source` for `op`.
  struct Unit {
    std::uint32_t op = kNone;
    std::size_t source = 0;
    std::uint64_t first_page = 0;
    std::uint64_t npages = 0;
    std::uint32_t next = kNone;  ///< next unit waiting on the pair window
    std::uint32_t attempts = 0;  ///< wire attempts so far (retry bound)
    obs::SpanRef span;           ///< open "dsm.burst" span, if traced
  };

  /// Window state for one (destination, source) node pair.
  struct Pair {
    std::size_t in_flight = 0;
    std::uint32_t head = kNone;
    std::uint32_t tail = kNone;
  };

  [[nodiscard]] std::uint64_t page_of(std::uint64_t addr) const {
    return addr / cfg_.page_size;
  }
  [[nodiscard]] std::size_t pair_index(std::size_t node,
                                       std::size_t source) const {
    return node * cfg_.nodes + source;
  }
  [[nodiscard]] bool serialized() const { return cfg_.window_depth == 1; }

  /// Slot setup shared by read/read_into/write.
  std::uint32_t enqueue_op(bool is_write, std::size_t node,
                           std::uint64_t addr, std::uint64_t len);
  void begin_op(std::uint32_t op_slot);

  /// Invalidate every remote copy and take Modified ownership.
  void finish_exclusive(std::size_t node, std::uint64_t page);
  /// Owner (Modified holder) if any, else the lowest-indexed sharer.
  [[nodiscard]] std::size_t pick_source(std::size_t node,
                                        std::uint64_t page) const;

  // Pipelined engine (window_depth >= 2).
  void request_pump(std::uint32_t op_slot);
  void drain_pumps();
  void pump(std::uint32_t op_slot);
  void upgrade_done(std::uint32_t claim_slot);

  // Serialized engine (window_depth == 1).
  void serial_start_next();
  void serial_advance(std::uint32_t op_slot);

  // Wire transfers (both engines).
  void issue_unit(std::uint32_t unit_slot);
  void start_unit(std::uint32_t unit_slot);
  void unit_done(std::uint32_t unit_slot, bool intact);
  /// Close one wire slot in the (node, source) pair window and start
  /// the next parked unit, if any.
  void retire_wire_slot(std::size_t node, std::size_t source);

  void op_ensured(std::uint32_t op_slot);
  void schedule_retire();
  void drain_retire();

  sim::Simulation& sim_;
  hw::Link& link_;
  Config cfg_;
  std::uint64_t pages_;
  std::vector<std::vector<std::byte>> memory_;       // [node][byte]
  std::vector<std::vector<PageState>> page_states_;  // [node][page]
  Stats stats_;
  obs::Tracer* tracer_ = nullptr;
  std::uint32_t trace_lane_ = 0;

  sim::SlotPool<Op> ops_;
  sim::SlotPool<Claim> claims_;
  sim::SlotPool<Unit> units_;
  std::vector<std::uint32_t> page_head_;  ///< per-page claim FIFO
  std::vector<std::uint32_t> page_tail_;
  std::vector<Pair> pairs_;  ///< [node * nodes + source]
  std::size_t in_flight_total_ = 0;

  /// Submission-order FIFO: ops retire (fire their callbacks) strictly
  /// in this order, whatever order their transfers complete in.
  std::uint32_t order_head_ = kNone;
  std::uint32_t order_tail_ = kNone;
  bool retire_scheduled_ = false;

  /// Serialized mode: the op currently being ensured (kNone when idle),
  /// and the re-entrancy guard that turns back-to-back synchronous
  /// completions into a loop instead of recursion.
  std::uint32_t serial_active_ = kNone;
  bool serial_starting_ = false;

  /// Pump work queue: ops whose claims just became ready.  Drained by
  /// the outermost frame only, so an op ensured mid-pump cannot
  /// invalidate an iteration in progress.  Keeps its capacity.
  std::vector<std::uint32_t> pump_queue_;
  std::size_t pump_next_ = 0;
  bool pumping_ = false;
};

}  // namespace xartrek::popcorn
