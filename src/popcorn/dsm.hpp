// Page-granularity distributed shared memory.
//
// Popcorn Linux implements DSM as a first-class OS abstraction so that a
// thread resuming on the other server observes sequentially-consistent
// memory (paper §2).  This model implements an MSI protocol over the
// inter-server link: each node holds a full-size memory replica plus a
// per-page state; reads pull remote pages, writes invalidate remote
// copies.  It is both *functional* (bytes really move; tests check
// coherence invariants) and *costed* (each page pull occupies the shared
// Ethernet link, which is where the paper's x86->ARM migration overhead
// comes from).
//
// Simplification: operations are serialized through a single FIFO -- one
// memory transaction is in flight at a time.  Migration traffic in
// Xar-Trek is coarse (one burst per migration), so per-page pipelining
// would change nothing the scheduler can observe.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/assert.hpp"
#include "hw/link.hpp"
#include "sim/callback.hpp"
#include "sim/simulation.hpp"

namespace xartrek::popcorn {

/// MSI page state.
enum class PageState { kInvalid, kShared, kModified };

/// A multi-node DSM instance.
class Dsm {
 public:
  using Callback = sim::UniqueCallback;
  using ReadCallback = sim::UniqueFunction<void(std::vector<std::byte>)>;

  struct Config {
    std::size_t nodes = 2;
    std::uint64_t memory_bytes = 1 << 20;
    std::uint64_t page_size = 4096;
  };

  struct Stats {
    std::uint64_t local_page_hits = 0;
    std::uint64_t page_transfers = 0;
    std::uint64_t invalidations = 0;
  };

  /// Node 0 starts as the exclusive (Modified) owner of every page: the
  /// application begins life on the x86 host.
  Dsm(sim::Simulation& sim, hw::Link& link, Config cfg);

  /// Read `len` bytes at `addr` as seen by `node`; pulls pages as needed.
  void read(std::size_t node, std::uint64_t addr, std::uint64_t len,
            ReadCallback on_done);

  /// Write `data` at `addr` from `node`; acquires exclusive ownership of
  /// the spanned pages (invalidating remote copies) first.
  void write(std::size_t node, std::uint64_t addr,
             std::vector<std::byte> data, Callback on_done);

  [[nodiscard]] PageState page_state(std::size_t node,
                                     std::uint64_t page) const;
  [[nodiscard]] std::uint64_t page_count() const { return pages_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const Config& config() const { return cfg_; }

  /// Protocol invariants: per page, at most one Modified copy and no
  /// Shared copy coexisting with a Modified one; all Shared copies hold
  /// identical bytes.  Throws on violation (tests call this).
  void check_invariants() const;

 private:
  struct Op {
    bool is_write;
    std::size_t node;
    std::uint64_t addr;
    std::uint64_t len;
    std::vector<std::byte> data;  // writes
    ReadCallback on_read;
    Callback on_write;
  };

  void start_next_op();
  void ensure_pages(std::size_t node, std::uint64_t first_page,
                    std::uint64_t last_page, bool exclusive,
                    Callback on_ready);
  void ensure_one_page(std::size_t node, std::uint64_t page, bool exclusive,
                       Callback on_ready);

  [[nodiscard]] std::uint64_t page_of(std::uint64_t addr) const {
    return addr / cfg_.page_size;
  }

  sim::Simulation& sim_;
  hw::Link& link_;
  Config cfg_;
  std::uint64_t pages_;
  std::vector<std::vector<std::byte>> memory_;        // [node][byte]
  std::vector<std::vector<PageState>> page_states_;   // [node][page]
  Stats stats_;
  std::deque<Op> op_queue_;
  bool op_active_ = false;
};

}  // namespace xartrek::popcorn
