// Cross-ISA program-state transformation.
//
// At a migration point the Popcorn run-time rewrites the thread's dynamic
// state (registers + stack frame) from the source ISA's format to the
// destination's, guided by compiler-emitted liveness metadata.  This is
// the "state transformation" of paper §2; Xar-Trek invokes it on every
// x86 <-> ARM migration (FPGA offloads skip it -- hardware kernels take
// self-contained in-memory data, paper footnote 4).
#pragma once

#include "common/time.hpp"
#include "popcorn/machine_state.hpp"
#include "popcorn/metadata.hpp"

namespace xartrek::popcorn {

/// Transforms MachineStates between ISA formats using a metadata table.
class StateTransformer {
 public:
  explicit StateTransformer(const MigrationMetadata& metadata)
      : metadata_(&metadata) {}

  /// Produce `src`'s state re-laid-out for `dst_isa`.
  ///
  /// Every live value recorded for the (function, site) pair is read from
  /// its source location and written to its destination location; the
  /// destination frame is sized per the destination frame-size table and
  /// its stack/frame pointers are set to the frame bounds.  Throws if the
  /// migration point is unknown or a value lacks a location for either
  /// ISA (a compiler bug in real Popcorn; a metadata bug here).
  [[nodiscard]] MachineState transform(const MachineState& src,
                                       isa::IsaKind dst_isa) const;

  /// CPU cost model for one transformation: per-site fixed overhead plus
  /// a per-live-value cost.  Charged on the *source* CPU by the migration
  /// run-time.
  [[nodiscard]] Duration transform_cost(const MachineState& src) const;

  /// Rewrite a whole call stack, outermost to innermost: every
  /// activation record is re-laid-out for the destination ISA so the
  /// thread unwinds correctly after it resumes there.
  [[nodiscard]] ThreadStack transform_stack(const ThreadStack& src,
                                            isa::IsaKind dst_isa) const;

  /// Cost of a whole-stack rewrite (the per-frame costs, with the fixed
  /// machinery overhead paid once).
  [[nodiscard]] Duration stack_transform_cost(const ThreadStack& src) const;

 private:
  const MigrationMetadata* metadata_;
};

}  // namespace xartrek::popcorn
