#include "popcorn/checkpoint.hpp"

#include "common/assert.hpp"

namespace xartrek::popcorn {

namespace {

constexpr const char* kDrainFunction = "__xar_drain";
constexpr int kDrainSite = 0;

[[nodiscard]] MigrationMetadata build_drain_metadata() {
  // The ticket's fields as the site's live values.  On x86 they live in
  // the frame (spilled across the call that reaches the checkpoint); on
  // aarch64 in callee-saved registers, exercising both location kinds
  // of the transformer on every cross-ISA drain.
  CallSiteMetadata site;
  site.function = kDrainFunction;
  site.site_id = kDrainSite;

  LiveValue job;
  job.name = "job";
  job.type = ValueType::kI64;
  job.location[isa::IsaKind::kX86_64] = ValueLocation::on_stack(0);
  job.location[isa::IsaKind::kAarch64] = ValueLocation::in_register("x19");
  site.live_values.push_back(std::move(job));

  LiveValue app;
  app.name = "app";
  app.type = ValueType::kI32;
  app.location[isa::IsaKind::kX86_64] = ValueLocation::on_stack(8);
  app.location[isa::IsaKind::kAarch64] = ValueLocation::in_register("x20");
  site.live_values.push_back(std::move(app));

  LiveValue attempts;
  attempts.name = "attempts";
  attempts.type = ValueType::kI32;
  attempts.location[isa::IsaKind::kX86_64] = ValueLocation::on_stack(12);
  attempts.location[isa::IsaKind::kAarch64] =
      ValueLocation::in_register("x21");
  site.live_values.push_back(std::move(attempts));

  site.frame_size[isa::IsaKind::kX86_64] = 32;
  site.frame_size[isa::IsaKind::kAarch64] = 16;

  MigrationMetadata md;
  md.add_site(std::move(site));
  return md;
}

}  // namespace

const MigrationMetadata& drain_metadata() {
  static const MigrationMetadata md = build_drain_metadata();
  return md;
}

ThreadStack checkpoint_drain(const DrainTicket& ticket, isa::IsaKind isa) {
  const CallSiteMetadata* site =
      drain_metadata().find(kDrainFunction, kDrainSite);
  XAR_ASSERT(site != nullptr);
  MachineState frame(isa, kDrainFunction, kDrainSite,
                     site->frame_size_for(isa));
  for (const LiveValue& value : site->live_values) {
    const auto loc = value.location.find(isa);
    XAR_ASSERT(loc != value.location.end());
    std::uint64_t raw = 0;
    if (value.name == "job") raw = ticket.job;
    if (value.name == "app") raw = ticket.app_index;
    if (value.name == "attempts") raw = ticket.attempts;
    frame.write_value(loc->second, value.type, raw);
  }
  ThreadStack stack(isa);
  stack.push_frame(std::move(frame));
  return stack;
}

DrainTicket decode_drain(const ThreadStack& stack) {
  XAR_EXPECTS(!stack.empty());
  const MachineState& frame = stack.top();
  XAR_EXPECTS(frame.function() == kDrainFunction &&
              frame.site_id() == kDrainSite);
  const CallSiteMetadata* site =
      drain_metadata().find(kDrainFunction, kDrainSite);
  XAR_ASSERT(site != nullptr);
  DrainTicket ticket;
  for (const LiveValue& value : site->live_values) {
    const auto loc = value.location.find(frame.isa());
    XAR_ASSERT(loc != value.location.end());
    const std::uint64_t raw = frame.read_value(loc->second, value.type);
    if (value.name == "job") ticket.job = raw;
    if (value.name == "app") {
      ticket.app_index = static_cast<std::uint32_t>(raw);
    }
    if (value.name == "attempts") {
      ticket.attempts = static_cast<std::uint32_t>(raw);
    }
  }
  return ticket;
}

}  // namespace xartrek::popcorn
