#include "popcorn/migration_runtime.hpp"

#include <utility>

#include "common/assert.hpp"

namespace xartrek::popcorn {

void MigrationRuntime::migrate(const MachineState& state,
                               isa::IsaKind dst_isa,
                               std::uint64_t working_set_bytes,
                               MigrationCallback on_arrival,
                               bool charge_transform_cost) {
  XAR_EXPECTS(on_arrival != nullptr);
  // Transform eagerly (functional result); its cost is charged
  // concurrently with the wire burst, which starts right away.
  MachineState transformed = transformer_->transform(state, dst_isa);
  const std::uint64_t payload =
      working_set_bytes + transformed.frame_size() +
      64 * 8;  // register file image
  overlap_and_deliver(transformer_->transform_cost(state), payload,
                      std::move(transformed), std::move(on_arrival),
                      charge_transform_cost);
}

void MigrationRuntime::migrate_stack(
    const ThreadStack& stack, isa::IsaKind dst_isa,
    std::uint64_t working_set_bytes, StackCallback on_arrival,
    bool charge_transform_cost) {
  XAR_EXPECTS(on_arrival != nullptr);
  XAR_EXPECTS(!stack.empty());
  ThreadStack transformed = transformer_->transform_stack(stack, dst_isa);
  const std::uint64_t payload =
      working_set_bytes + transformed.total_frame_bytes() + 64 * 8;
  overlap_and_deliver(transformer_->stack_transform_cost(stack), payload,
                      std::move(transformed), std::move(on_arrival),
                      charge_transform_cost);
}

}  // namespace xartrek::popcorn
