#include "popcorn/migration_runtime.hpp"

#include <utility>

#include "common/assert.hpp"

namespace xartrek::popcorn {

void MigrationRuntime::migrate(const MachineState& state,
                               isa::IsaKind dst_isa,
                               std::uint64_t working_set_bytes,
                               MigrationCallback on_arrival,
                               bool charge_transform_cost) {
  XAR_EXPECTS(on_arrival != nullptr);
  // Transform eagerly (functional result), optionally charging its CPU
  // time before the wire transfer starts.
  MachineState transformed = transformer_->transform(state, dst_isa);
  const std::uint64_t payload =
      working_set_bytes + transformed.frame_size() +
      64 * 8;  // register file image

  auto send = [this, payload, transformed = std::move(transformed),
               cb = std::move(on_arrival)]() mutable {
    ethernet_.transfer(payload, [this, transformed = std::move(transformed),
                                 cb = std::move(cb)]() mutable {
      deliver_arrival(std::move(transformed), std::move(cb));
    });
  };

  if (charge_transform_cost) {
    sim_.schedule_in(transformer_->transform_cost(state), std::move(send));
  } else {
    send();
  }
}

void MigrationRuntime::migrate_stack(
    const ThreadStack& stack, isa::IsaKind dst_isa,
    std::uint64_t working_set_bytes, StackCallback on_arrival,
    bool charge_transform_cost) {
  XAR_EXPECTS(on_arrival != nullptr);
  XAR_EXPECTS(!stack.empty());
  ThreadStack transformed = transformer_->transform_stack(stack, dst_isa);
  const std::uint64_t payload =
      working_set_bytes + transformed.total_frame_bytes() + 64 * 8;

  auto send = [this, payload, transformed = std::move(transformed),
               cb = std::move(on_arrival)]() mutable {
    ethernet_.transfer(payload, [this, transformed = std::move(transformed),
                                 cb = std::move(cb)]() mutable {
      deliver_arrival(std::move(transformed), std::move(cb));
    });
  };
  if (charge_transform_cost) {
    sim_.schedule_in(transformer_->stack_transform_cost(stack),
                     std::move(send));
  } else {
    send();
  }
}

}  // namespace xartrek::popcorn
