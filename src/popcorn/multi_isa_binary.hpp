// Multi-ISA binary model.
//
// The product of the Popcorn compiler (Xar-Trek step C): one fat
// executable containing machine code for every target ISA, symbols
// aligned at identical virtual addresses (with padding), plus the
// migration metadata section.  The size accounting here feeds the
// paper's Figure 10 comparison.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/isa.hpp"
#include "isa/symbol.hpp"
#include "popcorn/metadata.hpp"

namespace xartrek::popcorn {

/// Per-ISA section byte counts (before alignment padding).
struct SectionSizes {
  std::uint64_t text = 0;
  std::uint64_t rodata = 0;
  std::uint64_t data = 0;
  std::uint64_t bss = 0;

  [[nodiscard]] std::uint64_t file_bytes() const {
    return text + rodata + data;  // bss occupies no file space
  }
};

/// A built multi-ISA executable.
class MultiIsaBinary {
 public:
  MultiIsaBinary(std::string name, std::vector<isa::IsaKind> isas,
                 std::map<isa::IsaKind, SectionSizes> sections,
                 isa::AlignedLayout layout, MigrationMetadata metadata);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<isa::IsaKind>& isas() const { return isas_; }
  [[nodiscard]] const isa::AlignedLayout& layout() const { return layout_; }
  [[nodiscard]] const MigrationMetadata& metadata() const { return metadata_; }
  [[nodiscard]] const SectionSizes& sections_for(isa::IsaKind isa) const;

  /// File bytes contributed by one ISA's image, including its share of
  /// alignment padding.
  [[nodiscard]] std::uint64_t image_file_bytes(isa::IsaKind isa) const;

  /// Total on-disk size of the fat binary: ELF/program-header overhead +
  /// every ISA image + the migration metadata section.
  [[nodiscard]] std::uint64_t file_bytes() const;

  /// On-disk size of a hypothetical single-ISA build (no padding, no
  /// migration metadata) -- the "Vanilla" baseline in Figure 10.
  [[nodiscard]] std::uint64_t single_isa_file_bytes(isa::IsaKind isa) const;

 private:
  std::string name_;
  std::vector<isa::IsaKind> isas_;
  std::map<isa::IsaKind, SectionSizes> sections_;
  isa::AlignedLayout layout_;
  MigrationMetadata metadata_;
};

/// Fixed per-executable container overhead (ELF header, program/section
/// headers, dynamic linking tables).
inline constexpr std::uint64_t kElfOverheadBytes = 12 * 1024;

}  // namespace xartrek::popcorn
