#include "popcorn/dsm.hpp"

#include <algorithm>
#include <utility>

#include "common/hash.hpp"
#include "obs/registry.hpp"

namespace xartrek::popcorn {

Dsm::Dsm(sim::Simulation& sim, hw::Link& link, Config cfg)
    : sim_(sim), link_(link), cfg_(cfg) {
  XAR_EXPECTS(cfg_.nodes >= 2);
  XAR_EXPECTS(cfg_.page_size > 0);
  XAR_EXPECTS(cfg_.memory_bytes % cfg_.page_size == 0);
  XAR_EXPECTS(cfg_.window_depth >= 1);
  pages_ = cfg_.memory_bytes / cfg_.page_size;
  memory_.resize(cfg_.nodes);
  page_states_.resize(cfg_.nodes);
  for (std::size_t n = 0; n < cfg_.nodes; ++n) {
    memory_[n].assign(cfg_.memory_bytes, std::byte{0});
    page_states_[n].assign(pages_,
                           n == 0 ? PageState::kModified : PageState::kInvalid);
  }
  page_head_.assign(pages_, kNone);
  page_tail_.assign(pages_, kNone);
  pairs_.assign(cfg_.nodes * cfg_.nodes, Pair{});
}

PageState Dsm::page_state(std::size_t node, std::uint64_t page) const {
  XAR_EXPECTS(node < cfg_.nodes && page < pages_);
  return page_states_[node][page];
}

// --- submission -------------------------------------------------------------

std::uint32_t Dsm::enqueue_op(bool is_write, std::size_t node,
                              std::uint64_t addr, std::uint64_t len) {
  XAR_EXPECTS(node < cfg_.nodes);
  XAR_EXPECTS(addr + len <= cfg_.memory_bytes);
  const std::uint32_t s = ops_.acquire();
  Op& op = ops_[s];
  op.is_write = is_write;
  op.wants_vector = false;
  op.node = node;
  op.addr = addr;
  op.len = len;
  op.out = nullptr;
  op.on_read = nullptr;
  op.on_done = nullptr;
  // A zero-length op spans no pages: it touches no state and sends no
  // traffic -- in particular `addr == memory_bytes` is a legal no-op
  // (the old engine derived a page index from `addr` even for empty
  // ops, walking off the page table at the boundary).
  op.first_page = len == 0 ? 0 : page_of(addr);
  op.npages = len == 0 ? 0 : page_of(addr + len - 1) - op.first_page + 1;
  op.waiting = 0;
  op.cursor = 0;
  op.claims.clear();
  op.order_next = kNone;
  op.ensured = false;
  if (order_tail_ == kNone) {
    order_head_ = s;
  } else {
    ops_[order_tail_].order_next = s;
  }
  order_tail_ = s;
  return s;
}

void Dsm::read(std::size_t node, std::uint64_t addr, std::uint64_t len,
               ReadCallback on_done) {
  XAR_EXPECTS(on_done != nullptr);
  const std::uint32_t s = enqueue_op(false, node, addr, len);
  ops_[s].wants_vector = true;
  ops_[s].data.clear();
  ops_[s].on_read = std::move(on_done);
  begin_op(s);
}

void Dsm::read_into(std::size_t node, std::uint64_t addr, std::uint64_t len,
                    std::byte* out, Callback on_done) {
  XAR_EXPECTS(on_done != nullptr);
  XAR_EXPECTS(len == 0 || out != nullptr);
  const std::uint32_t s = enqueue_op(false, node, addr, len);
  ops_[s].out = out;
  ops_[s].on_done = std::move(on_done);
  begin_op(s);
}

void Dsm::write(std::size_t node, std::uint64_t addr,
                std::vector<std::byte> data, Callback on_done) {
  XAR_EXPECTS(on_done != nullptr);
  const std::uint32_t s = enqueue_op(true, node, addr, data.size());
  ops_[s].data = std::move(data);
  ops_[s].on_done = std::move(on_done);
  begin_op(s);
}

void Dsm::write_from(std::size_t node, std::uint64_t addr,
                     std::span<const std::byte> data, Callback on_done) {
  XAR_EXPECTS(on_done != nullptr);
  const std::uint32_t s = enqueue_op(true, node, addr, data.size());
  ops_[s].data.assign(data.begin(), data.end());  // warm slot buffer
  ops_[s].on_done = std::move(on_done);
  begin_op(s);
}

void Dsm::begin_op(std::uint32_t op_slot) {
  if (ops_[op_slot].npages == 0) {
    op_ensured(op_slot);
    return;
  }
  if (serialized()) {
    // One transaction at a time, strictly oldest-first: a submission
    // landing between a completion and its retire drain must not jump
    // ahead of ops already queued.
    serial_start_next();
    return;
  }
  // Pipelined: claim every spanned page.  A claim at the head of its
  // page queue is ready to act; the rest wait for the earlier
  // transactions on that page, which is all the ordering MSI needs.
  const std::uint64_t first = ops_[op_slot].first_page;
  const std::uint64_t npages = ops_[op_slot].npages;
  ops_[op_slot].waiting = npages;
  for (std::uint64_t i = 0; i < npages; ++i) {
    const std::uint64_t page = first + i;
    const std::uint32_t c = claims_.acquire();
    claims_[c].op = op_slot;
    claims_[c].page = page;
    claims_[c].next = kNone;
    if (page_head_[page] == kNone) {
      page_head_[page] = c;
      page_tail_[page] = c;
      claims_[c].status = ClaimStatus::kReady;
    } else {
      claims_[page_tail_[page]].next = c;
      page_tail_[page] = c;
      claims_[c].status = ClaimStatus::kWaiting;
    }
    ops_[op_slot].claims.push_back(c);
  }
  request_pump(op_slot);
  drain_pumps();
}

// --- MSI helpers ------------------------------------------------------------

void Dsm::finish_exclusive(std::size_t node, std::uint64_t page) {
  for (std::size_t n = 0; n < cfg_.nodes; ++n) {
    if (n != node && page_states_[n][page] != PageState::kInvalid) {
      page_states_[n][page] = PageState::kInvalid;
      ++stats_.invalidations;
    }
  }
  page_states_[node][page] = PageState::kModified;
}

std::size_t Dsm::pick_source(std::size_t node, std::uint64_t page) const {
  std::size_t source = cfg_.nodes;
  for (std::size_t n = 0; n < cfg_.nodes; ++n) {
    if (n == node) continue;
    if (page_states_[n][page] == PageState::kModified) return n;
    if (page_states_[n][page] == PageState::kShared && source == cfg_.nodes) {
      source = n;
    }
  }
  XAR_ASSERT(source < cfg_.nodes);  // some node always holds the page
  return source;
}

// --- pipelined engine (window_depth >= 2) -----------------------------------

void Dsm::request_pump(std::uint32_t op_slot) {
  pump_queue_.push_back(op_slot);
}

void Dsm::drain_pumps() {
  if (pumping_) return;  // the outermost frame drains
  pumping_ = true;
  while (pump_next_ < pump_queue_.size()) {
    pump(pump_queue_[pump_next_++]);
  }
  pump_queue_.clear();
  pump_next_ = 0;
  pumping_ = false;
}

void Dsm::pump(std::uint32_t op_slot) {
  Op& op = ops_[op_slot];
  if (op.ensured) return;  // queued twice and completed on the first pass
  std::uint64_t i = 0;
  while (i < op.npages) {
    if (claims_[op.claims[i]].status != ClaimStatus::kReady) {
      ++i;
      continue;
    }
    const std::uint64_t page = op.first_page + i;
    const PageState st = page_states_[op.node][page];
    if (st == PageState::kModified ||
        (st == PageState::kShared && !op.is_write)) {
      ++stats_.local_page_hits;
      claims_[op.claims[i]].status = ClaimStatus::kDone;
      XAR_ASSERT(op.waiting > 0);
      --op.waiting;
      ++i;
      continue;
    }
    if (st == PageState::kShared) {
      // Write upgrade: invalidation round trip, no payload.  Control
      // traffic only, so it does not occupy the pair window.
      const std::uint32_t c = op.claims[i];
      claims_[c].status = ClaimStatus::kInFlight;
      sim_.schedule_in(link_.spec().latency, [this, c] { upgrade_done(c); });
      ++i;
      continue;
    }
    // Invalid: open a coalesced run -- every following page of this op
    // that is also ready, Invalid and served by the same source joins
    // this wire transfer.
    const std::size_t source = pick_source(op.node, page);
    std::uint64_t j = i + 1;
    while (j < op.npages &&
           claims_[op.claims[j]].status == ClaimStatus::kReady &&
           page_states_[op.node][op.first_page + j] == PageState::kInvalid &&
           pick_source(op.node, op.first_page + j) == source) {
      ++j;
    }
    for (std::uint64_t k = i; k < j; ++k) {
      claims_[op.claims[k]].status = ClaimStatus::kInFlight;
    }
    const std::uint32_t u = units_.acquire();
    units_[u] = Unit{op_slot, source, page, j - i, kNone};
    issue_unit(u);
    i = j;
  }
  if (op.waiting == 0 && !op.ensured) op_ensured(op_slot);
}

void Dsm::upgrade_done(std::uint32_t claim_slot) {
  const std::uint32_t op_slot = claims_[claim_slot].op;
  finish_exclusive(ops_[op_slot].node, claims_[claim_slot].page);
  claims_[claim_slot].status = ClaimStatus::kDone;
  Op& op = ops_[op_slot];
  XAR_ASSERT(op.waiting > 0);
  if (--op.waiting == 0) op_ensured(op_slot);
}

// --- serialized engine (window_depth == 1) ----------------------------------

void Dsm::serial_start_next() {
  if (serial_starting_) return;  // the outermost frame loops
  serial_starting_ = true;
  while (serial_active_ == kNone) {
    // The oldest unensured op runs next; the ensured prefix is only
    // awaiting the retire drain.
    std::uint32_t s = order_head_;
    while (s != kNone && ops_[s].ensured) s = ops_[s].order_next;
    if (s == kNone) break;
    serial_active_ = s;
    // May complete synchronously (all hits) and clear serial_active_;
    // the loop then starts its successor instead of recursing.
    serial_advance(s);
  }
  serial_starting_ = false;
}

void Dsm::serial_advance(std::uint32_t op_slot) {
  Op& op = ops_[op_slot];
  while (op.cursor < op.npages) {
    const std::uint64_t page = op.first_page + op.cursor;
    const PageState st = page_states_[op.node][page];
    if (st == PageState::kModified ||
        (st == PageState::kShared && !op.is_write)) {
      ++stats_.local_page_hits;
      ++op.cursor;
      continue;
    }
    if (st == PageState::kShared) {
      // Upgrade: invalidation round trip, no payload.
      sim_.schedule_in(link_.spec().latency, [this, op_slot] {
        Op& o = ops_[op_slot];
        finish_exclusive(o.node, o.first_page + o.cursor);
        ++o.cursor;
        serial_advance(op_slot);
      });
      return;
    }
    // Invalid: one page, one transfer (no coalescing at depth 1).
    const std::uint32_t u = units_.acquire();
    units_[u] = Unit{op_slot, pick_source(op.node, page), page, 1, kNone};
    issue_unit(u);
    return;
  }
  op_ensured(op_slot);
}

// --- wire transfers (both engines) ------------------------------------------

void Dsm::issue_unit(std::uint32_t unit_slot) {
  const Unit& unit = units_[unit_slot];
  Pair& pair = pairs_[pair_index(ops_[unit.op].node, unit.source)];
  if (pair.in_flight < cfg_.window_depth) {
    start_unit(unit_slot);
    return;
  }
  // Window full: park the unit; completions re-issue FIFO.
  if (pair.tail == kNone) {
    pair.head = unit_slot;
  } else {
    units_[pair.tail].next = unit_slot;
  }
  pair.tail = unit_slot;
}

void Dsm::start_unit(std::uint32_t unit_slot) {
  const Unit& unit = units_[unit_slot];
  Pair& pair = pairs_[pair_index(ops_[unit.op].node, unit.source)];
  ++pair.in_flight;
  ++in_flight_total_;
  if (in_flight_total_ > stats_.max_in_flight) {
    stats_.max_in_flight = in_flight_total_;
  }
  ++stats_.link_transfers;
  if (unit.npages > 1) ++stats_.coalesced_runs;
  const std::uint64_t bytes = unit.npages * cfg_.page_size;
  stats_.bytes_transferred += bytes;
  if (tracer_ != nullptr) {
    units_[unit_slot].span =
        tracer_->begin(trace_lane_, obs::kTrackDsm, "dsm.burst",
                       stats_.link_transfers, sim_.now());
  }
  // Checksummed frame: the receiver re-derives the checksum when the
  // run lands and unit_done learns whether the wire corrupted it.
  const std::uint64_t checksum = fnv1a_frame(
      bytes, fnv_mix(fnv_mix(kFnvOffset, unit.first_page), unit.source));
  link_.transfer_verified(bytes, checksum, [this, unit_slot](bool intact) {
    unit_done(unit_slot, intact);
  });
}

void Dsm::retire_wire_slot(std::size_t node, std::size_t source) {
  Pair& pair = pairs_[pair_index(node, source)];
  XAR_ASSERT(pair.in_flight > 0);
  --pair.in_flight;
  --in_flight_total_;
  if (pair.head != kNone) {
    const std::uint32_t next = pair.head;
    pair.head = units_[next].next;
    if (pair.head == kNone) pair.tail = kNone;
    units_[next].next = kNone;
    start_unit(next);
  }
}

void Dsm::unit_done(std::uint32_t unit_slot, bool intact) {
  if (tracer_ != nullptr) {
    tracer_->end(units_[unit_slot].span, sim_.now());
    units_[unit_slot].span = {};
  }
  if (!intact) {
    // The wire corrupted the run: nothing lands -- no bytes, no MSI
    // transitions, claims stay in flight.  Free the wire slot (a parked
    // unit may start) and re-request the identical run, bounded by the
    // retry budget.
    ++stats_.corrupt_detected;
    const std::uint32_t op_slot = units_[unit_slot].op;
    retire_wire_slot(ops_[op_slot].node, units_[unit_slot].source);
    if (++units_[unit_slot].attempts > cfg_.max_transfer_retries) {
      throw Error("DSM: transfer corrupted past the retry budget");
    }
    ++stats_.retries;
    issue_unit(unit_slot);
    return;
  }
  const Unit unit = units_[unit_slot];
  units_.release(unit_slot);
  Op& op = ops_[unit.op];

  // The run lands in one piece: bytes, then per-page MSI transitions.
  const std::uint64_t off = unit.first_page * cfg_.page_size;
  const std::uint64_t bytes = unit.npages * cfg_.page_size;
  std::copy(memory_[unit.source].begin() + static_cast<long>(off),
            memory_[unit.source].begin() + static_cast<long>(off + bytes),
            memory_[op.node].begin() + static_cast<long>(off));
  stats_.page_transfers += unit.npages;
  for (std::uint64_t p = unit.first_page; p < unit.first_page + unit.npages;
       ++p) {
    if (op.is_write) {
      finish_exclusive(op.node, p);
    } else {
      // Owner downgrades to Shared on a read pull.
      page_states_[unit.source][p] = PageState::kShared;
      page_states_[op.node][p] = PageState::kShared;
    }
  }

  retire_wire_slot(op.node, unit.source);

  if (serialized()) {
    op.cursor += unit.npages;
    serial_advance(unit.op);
    return;
  }
  for (std::uint64_t p = unit.first_page; p < unit.first_page + unit.npages;
       ++p) {
    claims_[op.claims[p - op.first_page]].status = ClaimStatus::kDone;
  }
  XAR_ASSERT(op.waiting >= unit.npages);
  op.waiting -= unit.npages;
  if (op.waiting == 0) op_ensured(unit.op);
}

// --- completion -------------------------------------------------------------

void Dsm::op_ensured(std::uint32_t op_slot) {
  Op& op = ops_[op_slot];
  XAR_ASSERT(!op.ensured);
  // Data phase.  Runs while the op still holds every page claim, so no
  // later transaction can observe or overwrite the spanned bytes first:
  // the memory image serializes exactly in submission order.
  auto& mem = memory_[op.node];
  if (op.is_write) {
    std::copy(op.data.begin(), op.data.end(),
              mem.begin() + static_cast<long>(op.addr));
  } else if (op.out != nullptr) {
    std::copy(mem.begin() + static_cast<long>(op.addr),
              mem.begin() + static_cast<long>(op.addr + op.len), op.out);
  } else if (op.wants_vector) {
    op.data.assign(mem.begin() + static_cast<long>(op.addr),
                   mem.begin() + static_cast<long>(op.addr + op.len));
  }
  op.ensured = true;

  if (serialized()) {
    // Begin the successor inside this completion event -- exactly the
    // legacy engine's start_next_op-before-callback order (the retire
    // drain only fires callbacks).
    if (serial_active_ == op_slot) serial_active_ = kNone;
    schedule_retire();
    serial_start_next();
    return;
  }
  if (op.npages > 0) {
    // Release the page claims; each successor that reaches the head of
    // its queue becomes ready.  Successors are pumped only after every
    // page is released, so a successor spanning several of our pages
    // sees them all at once and coalesces its pull into one run.
    for (std::uint64_t i = 0; i < op.npages; ++i) {
      const std::uint64_t page = op.first_page + i;
      const std::uint32_t c = op.claims[i];
      XAR_ASSERT(page_head_[page] == c);
      const std::uint32_t next = claims_[c].next;
      claims_.release(c);
      page_head_[page] = next;
      if (next == kNone) {
        page_tail_[page] = kNone;
        continue;
      }
      claims_[next].status = ClaimStatus::kReady;
      request_pump(claims_[next].op);
    }
    op.claims.clear();
  }
  schedule_retire();
  // Pump the released successors (a no-op when an enclosing pump frame
  // is already draining, e.g. when an all-hit op ensures synchronously).
  drain_pumps();
}

void Dsm::schedule_retire() {
  if (retire_scheduled_) return;
  retire_scheduled_ = true;
  // Zero-delay event: callbacks never fire synchronously from within
  // read()/write(), and they fire strictly in submission order.
  sim_.schedule_in(Duration::zero(), [this] { drain_retire(); });
}

void Dsm::drain_retire() {
  retire_scheduled_ = false;
  while (order_head_ != kNone && ops_[order_head_].ensured) {
    const std::uint32_t s = order_head_;
    Op& op = ops_[s];
    order_head_ = op.order_next;
    if (order_head_ == kNone) order_tail_ = kNone;
    ReadCallback on_read = std::move(op.on_read);
    Callback on_done = std::move(op.on_done);
    std::vector<std::byte> result;
    const bool vector_read = op.wants_vector;
    if (vector_read) result = std::move(op.data);
    ops_.release(s);  // the slot's buffers stay warm for reuse
    if (vector_read) {
      on_read(std::move(result));
    } else {
      on_done();
    }
  }
}

// --- invariants -------------------------------------------------------------

void Dsm::check_invariants() const {
  for (std::uint64_t p = 0; p < pages_; ++p) {
    std::size_t modified = 0;
    std::size_t shared = 0;
    for (std::size_t n = 0; n < cfg_.nodes; ++n) {
      if (page_states_[n][p] == PageState::kModified) ++modified;
      if (page_states_[n][p] == PageState::kShared) ++shared;
    }
    if (modified > 1) throw Error("DSM: two Modified copies of a page");
    if (modified == 1 && shared > 0) {
      throw Error("DSM: Modified coexists with Shared");
    }
    if (modified + shared == 0) throw Error("DSM: page with no valid copy");
    // All Shared copies must agree bytewise.
    if (shared >= 2) {
      const std::vector<std::byte>* ref = nullptr;
      for (std::size_t n = 0; n < cfg_.nodes; ++n) {
        if (page_states_[n][p] != PageState::kShared) continue;
        if (ref == nullptr) {
          ref = &memory_[n];
          continue;
        }
        const std::uint64_t off = p * cfg_.page_size;
        if (!std::equal(ref->begin() + static_cast<long>(off),
                        ref->begin() + static_cast<long>(off + cfg_.page_size),
                        memory_[n].begin() + static_cast<long>(off))) {
          throw Error("DSM: divergent Shared copies");
        }
      }
    }
  }
}

void Dsm::register_metrics(obs::Registry& registry,
                           const std::string& prefix) const {
  registry.link_counter(prefix + ".local_page_hits",
                        &stats_.local_page_hits);
  registry.link_counter(prefix + ".page_transfers", &stats_.page_transfers);
  registry.link_counter(prefix + ".invalidations", &stats_.invalidations);
  registry.link_counter(prefix + ".link_transfers", &stats_.link_transfers);
  registry.link_counter(prefix + ".coalesced_runs", &stats_.coalesced_runs);
  registry.link_counter(prefix + ".bytes_transferred",
                        &stats_.bytes_transferred);
  registry.link_gauge(prefix + ".max_in_flight", &stats_.max_in_flight);
  registry.link_counter(prefix + ".corrupt_detected",
                        &stats_.corrupt_detected);
  registry.link_counter(prefix + ".retries", &stats_.retries);
}

}  // namespace xartrek::popcorn
