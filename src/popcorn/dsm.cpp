#include "popcorn/dsm.hpp"

#include <algorithm>
#include <utility>

namespace xartrek::popcorn {

Dsm::Dsm(sim::Simulation& sim, hw::Link& link, Config cfg)
    : sim_(sim), link_(link), cfg_(cfg) {
  XAR_EXPECTS(cfg_.nodes >= 2);
  XAR_EXPECTS(cfg_.page_size > 0);
  XAR_EXPECTS(cfg_.memory_bytes % cfg_.page_size == 0);
  pages_ = cfg_.memory_bytes / cfg_.page_size;
  memory_.resize(cfg_.nodes);
  page_states_.resize(cfg_.nodes);
  for (std::size_t n = 0; n < cfg_.nodes; ++n) {
    memory_[n].assign(cfg_.memory_bytes, std::byte{0});
    page_states_[n].assign(pages_,
                           n == 0 ? PageState::kModified : PageState::kInvalid);
  }
}

PageState Dsm::page_state(std::size_t node, std::uint64_t page) const {
  XAR_EXPECTS(node < cfg_.nodes && page < pages_);
  return page_states_[node][page];
}

void Dsm::read(std::size_t node, std::uint64_t addr, std::uint64_t len,
               ReadCallback on_done) {
  XAR_EXPECTS(node < cfg_.nodes);
  XAR_EXPECTS(addr + len <= cfg_.memory_bytes);
  XAR_EXPECTS(on_done != nullptr);
  op_queue_.push_back(
      Op{false, node, addr, len, {}, std::move(on_done), nullptr});
  if (!op_active_) start_next_op();
}

void Dsm::write(std::size_t node, std::uint64_t addr,
                std::vector<std::byte> data, Callback on_done) {
  XAR_EXPECTS(node < cfg_.nodes);
  XAR_EXPECTS(addr + data.size() <= cfg_.memory_bytes);
  XAR_EXPECTS(on_done != nullptr);
  op_queue_.push_back(Op{true, node, addr, data.size(), std::move(data),
                         nullptr, std::move(on_done)});
  if (!op_active_) start_next_op();
}

void Dsm::start_next_op() {
  if (op_queue_.empty()) {
    op_active_ = false;
    return;
  }
  op_active_ = true;
  // Keep the op alive across the asynchronous page-ensure chain.
  auto op = std::make_shared<Op>(std::move(op_queue_.front()));
  op_queue_.pop_front();

  const std::uint64_t first = page_of(op->addr);
  const std::uint64_t last =
      op->len == 0 ? first : page_of(op->addr + op->len - 1);
  ensure_pages(op->node, first, last, op->is_write, [this, op] {
    if (op->is_write) {
      std::copy(op->data.begin(), op->data.end(),
                memory_[op->node].begin() + static_cast<long>(op->addr));
      auto cb = std::move(op->on_write);
      start_next_op();
      cb();
    } else {
      std::vector<std::byte> out(
          memory_[op->node].begin() + static_cast<long>(op->addr),
          memory_[op->node].begin() + static_cast<long>(op->addr + op->len));
      auto cb = std::move(op->on_read);
      start_next_op();
      cb(std::move(out));
    }
  });
}

void Dsm::ensure_pages(std::size_t node, std::uint64_t first_page,
                       std::uint64_t last_page, bool exclusive,
                       Callback on_ready) {
  if (first_page > last_page) {
    on_ready();
    return;
  }
  ensure_one_page(node, first_page, exclusive,
                  [this, node, first_page, last_page, exclusive,
                   cb = std::move(on_ready)]() mutable {
                    ensure_pages(node, first_page + 1, last_page, exclusive,
                                 std::move(cb));
                  });
}

void Dsm::ensure_one_page(std::size_t node, std::uint64_t page,
                          bool exclusive, Callback on_ready) {
  PageState& mine = page_states_[node][page];

  auto finish_exclusive = [this, node, page] {
    for (std::size_t n = 0; n < cfg_.nodes; ++n) {
      if (n != node && page_states_[n][page] != PageState::kInvalid) {
        page_states_[n][page] = PageState::kInvalid;
        ++stats_.invalidations;
      }
    }
    page_states_[node][page] = PageState::kModified;
  };

  if (mine == PageState::kModified ||
      (mine == PageState::kShared && !exclusive)) {
    ++stats_.local_page_hits;
    // Local hit: complete asynchronously for uniform caller semantics.
    sim_.schedule_in(Duration::zero(), std::move(on_ready));
    return;
  }

  if (mine == PageState::kShared && exclusive) {
    // Upgrade: invalidation round trip, no payload.
    sim_.schedule_in(link_.spec().latency,
                     [finish_exclusive, cb = std::move(on_ready)]() mutable {
                       finish_exclusive();
                       cb();
                     });
    return;
  }

  // Invalid: pull the page from the owner or any sharer.
  std::size_t source = cfg_.nodes;
  for (std::size_t n = 0; n < cfg_.nodes; ++n) {
    if (n == node) continue;
    if (page_states_[n][page] == PageState::kModified) {
      source = n;
      break;
    }
    if (page_states_[n][page] == PageState::kShared && source == cfg_.nodes) {
      source = n;
    }
  }
  XAR_ASSERT(source < cfg_.nodes);  // some node always holds the page

  link_.transfer(
      cfg_.page_size,
      [this, node, page, source, exclusive, finish_exclusive,
       cb = std::move(on_ready)]() mutable {
        const std::uint64_t off = page * cfg_.page_size;
        std::copy(memory_[source].begin() + static_cast<long>(off),
                  memory_[source].begin() +
                      static_cast<long>(off + cfg_.page_size),
                  memory_[node].begin() + static_cast<long>(off));
        ++stats_.page_transfers;
        if (exclusive) {
          finish_exclusive();
        } else {
          // Owner downgrades to Shared on a read pull.
          page_states_[source][page] = PageState::kShared;
          page_states_[node][page] = PageState::kShared;
        }
        cb();
      });
}

void Dsm::check_invariants() const {
  for (std::uint64_t p = 0; p < pages_; ++p) {
    std::size_t modified = 0;
    std::size_t shared = 0;
    for (std::size_t n = 0; n < cfg_.nodes; ++n) {
      if (page_states_[n][p] == PageState::kModified) ++modified;
      if (page_states_[n][p] == PageState::kShared) ++shared;
    }
    if (modified > 1) throw Error("DSM: two Modified copies of a page");
    if (modified == 1 && shared > 0) {
      throw Error("DSM: Modified coexists with Shared");
    }
    if (modified + shared == 0) throw Error("DSM: page with no valid copy");
    // All Shared copies must agree bytewise.
    if (shared >= 2) {
      const std::vector<std::byte>* ref = nullptr;
      for (std::size_t n = 0; n < cfg_.nodes; ++n) {
        if (page_states_[n][p] != PageState::kShared) continue;
        if (ref == nullptr) {
          ref = &memory_[n];
          continue;
        }
        const std::uint64_t off = p * cfg_.page_size;
        if (!std::equal(ref->begin() + static_cast<long>(off),
                        ref->begin() + static_cast<long>(off + cfg_.page_size),
                        memory_[n].begin() + static_cast<long>(off))) {
          throw Error("DSM: divergent Shared copies");
        }
      }
    }
  }
}

}  // namespace xartrek::popcorn
