#include "popcorn/machine_state.hpp"

#include <utility>

#include "common/assert.hpp"

namespace xartrek::popcorn {

MachineState::MachineState(isa::IsaKind isa, std::string function,
                           int site_id, std::uint64_t frame_size)
    : isa_(isa),
      function_(std::move(function)),
      site_id_(site_id),
      frame_(frame_size, std::byte{0}) {}

std::uint64_t MachineState::read_register(const std::string& name) const {
  if (!isa::info_for(isa_).has_register(name)) {
    throw Error("register `" + name + "` does not exist on " +
                isa::to_string(isa_));
  }
  auto it = regs_.find(name);
  return it == regs_.end() ? 0 : it->second;
}

void MachineState::write_register(const std::string& name,
                                  std::uint64_t value) {
  if (!isa::info_for(isa_).has_register(name)) {
    throw Error("register `" + name + "` does not exist on " +
                isa::to_string(isa_));
  }
  regs_[name] = value;
}

std::uint64_t MachineState::read_stack(std::uint64_t offset,
                                       unsigned size) const {
  XAR_EXPECTS(size >= 1 && size <= 8);
  if (offset + size > frame_.size()) {
    throw Error("stack read past frame end in " + function_);
  }
  std::uint64_t v = 0;
  for (unsigned i = 0; i < size; ++i) {
    v |= static_cast<std::uint64_t>(std::to_integer<std::uint8_t>(
             frame_[offset + i]))
         << (8 * i);
  }
  return v;
}

void MachineState::write_stack(std::uint64_t offset, unsigned size,
                               std::uint64_t value) {
  XAR_EXPECTS(size >= 1 && size <= 8);
  if (offset + size > frame_.size()) {
    throw Error("stack write past frame end in " + function_);
  }
  for (unsigned i = 0; i < size; ++i) {
    frame_[offset + i] =
        static_cast<std::byte>((value >> (8 * i)) & 0xFFu);
  }
}

std::uint64_t MachineState::read_value(const ValueLocation& loc,
                                       ValueType type) const {
  const std::uint64_t raw =
      loc.kind == ValueLocation::Kind::kRegister
          ? read_register(loc.reg)
          : read_stack(loc.offset, size_of(type));
  return mask_to_type(raw, type);
}

void MachineState::write_value(const ValueLocation& loc, ValueType type,
                               std::uint64_t raw) {
  const std::uint64_t masked = mask_to_type(raw, type);
  if (loc.kind == ValueLocation::Kind::kRegister) {
    write_register(loc.reg, masked);
  } else {
    write_stack(loc.offset, size_of(type), masked);
  }
}

std::uint64_t mask_to_type(std::uint64_t raw, ValueType type) {
  switch (size_of(type)) {
    case 1: return raw & 0xFFu;
    case 2: return raw & 0xFFFFu;
    case 4: return raw & 0xFFFF'FFFFu;
    default: return raw;
  }
}

void ThreadStack::push_frame(MachineState frame) {
  XAR_EXPECTS(frame.isa() == isa_);
  frames_.push_back(std::move(frame));
}

const MachineState& ThreadStack::top() const {
  XAR_EXPECTS(!frames_.empty());
  return frames_.back();
}

MachineState& ThreadStack::top_mutable() {
  XAR_EXPECTS(!frames_.empty());
  return frames_.back();
}

std::uint64_t ThreadStack::total_frame_bytes() const {
  std::uint64_t total = 0;
  for (const auto& f : frames_) total += f.frame_size();
  return total;
}

}  // namespace xartrek::popcorn
