#include "popcorn/multi_isa_binary.hpp"

#include <utility>

#include "common/assert.hpp"

namespace xartrek::popcorn {

MultiIsaBinary::MultiIsaBinary(std::string name,
                               std::vector<isa::IsaKind> isas,
                               std::map<isa::IsaKind, SectionSizes> sections,
                               isa::AlignedLayout layout,
                               MigrationMetadata metadata)
    : name_(std::move(name)),
      isas_(std::move(isas)),
      sections_(std::move(sections)),
      layout_(std::move(layout)),
      metadata_(std::move(metadata)) {
  XAR_EXPECTS(!isas_.empty());
  for (isa::IsaKind isa : isas_) {
    XAR_EXPECTS(sections_.contains(isa));
  }
}

const SectionSizes& MultiIsaBinary::sections_for(isa::IsaKind isa) const {
  auto it = sections_.find(isa);
  XAR_EXPECTS(it != sections_.end());
  return it->second;
}

std::uint64_t MultiIsaBinary::image_file_bytes(isa::IsaKind isa) const {
  std::uint64_t padding = 0;
  auto it = layout_.padding_bytes.find(isa);
  if (it != layout_.padding_bytes.end()) padding = it->second;
  return sections_for(isa).file_bytes() + padding;
}

std::uint64_t MultiIsaBinary::file_bytes() const {
  std::uint64_t total = kElfOverheadBytes;
  for (isa::IsaKind isa : isas_) total += image_file_bytes(isa);
  total += metadata_.encoded_size_bytes();
  return total;
}

std::uint64_t MultiIsaBinary::single_isa_file_bytes(isa::IsaKind isa) const {
  return kElfOverheadBytes + sections_for(isa).file_bytes();
}

}  // namespace xartrek::popcorn
