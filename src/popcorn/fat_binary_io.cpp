#include "popcorn/fat_binary_io.hpp"

#include "common/binary_io.hpp"

namespace xartrek::popcorn {

namespace {

[[nodiscard]] std::uint8_t isa_tag(isa::IsaKind kind) {
  return kind == isa::IsaKind::kX86_64 ? 0 : 1;
}
[[nodiscard]] isa::IsaKind isa_from_tag(std::uint8_t tag) {
  switch (tag) {
    case 0: return isa::IsaKind::kX86_64;
    case 1: return isa::IsaKind::kAarch64;
    default: throw Error("fat binary: unknown ISA tag");
  }
}
[[nodiscard]] ValueType type_from_tag(std::uint8_t tag) {
  if (tag > static_cast<std::uint8_t>(ValueType::kPtr)) {
    throw Error("fat binary: unknown value-type tag");
  }
  return static_cast<ValueType>(tag);
}

}  // namespace

std::vector<std::byte> write_fat_binary(const MultiIsaBinary& binary) {
  BinaryWriter w;
  w.u32(kFatMagic);
  w.u8(kFatVersion);
  w.str(binary.name());

  w.u8(static_cast<std::uint8_t>(binary.isas().size()));
  for (isa::IsaKind kind : binary.isas()) {
    const SectionSizes& s = binary.sections_for(kind);
    w.u8(isa_tag(kind));
    w.u64(s.text);
    w.u64(s.rodata);
    w.u64(s.data);
    w.u64(s.bss);
  }

  const isa::AlignedLayout& layout = binary.layout();
  w.u64(layout.image_span);
  w.u8(static_cast<std::uint8_t>(layout.padding_bytes.size()));
  for (const auto& [kind, bytes] : layout.padding_bytes) {
    w.u8(isa_tag(kind));
    w.u64(bytes);
  }
  w.u32(static_cast<std::uint32_t>(layout.vaddr_of.size()));
  for (const auto& [name, vaddr] : layout.vaddr_of) {
    w.str(name);
    w.u64(vaddr);
  }

  const auto& sites = binary.metadata().sites();
  w.u32(static_cast<std::uint32_t>(sites.size()));
  for (const auto& site : sites) {
    w.str(site.function);
    w.i32(site.site_id);
    w.u8(static_cast<std::uint8_t>(site.frame_size.size()));
    for (const auto& [kind, size] : site.frame_size) {
      w.u8(isa_tag(kind));
      w.u64(size);
    }
    w.u32(static_cast<std::uint32_t>(site.live_values.size()));
    for (const auto& value : site.live_values) {
      w.str(value.name);
      w.u8(static_cast<std::uint8_t>(value.type));
      w.u8(static_cast<std::uint8_t>(value.location.size()));
      for (const auto& [kind, loc] : value.location) {
        w.u8(isa_tag(kind));
        w.u8(loc.kind == ValueLocation::Kind::kRegister ? 0 : 1);
        w.str(loc.reg);
        w.u64(loc.offset);
      }
    }
  }
  return w.take();
}

MultiIsaBinary read_fat_binary(std::span<const std::byte> image) {
  BinaryReader r(image);
  if (r.u32() != kFatMagic) throw Error("fat binary: bad magic");
  if (r.u8() != kFatVersion) throw Error("fat binary: unsupported version");
  const std::string name = r.str();

  const std::uint8_t n_isas = r.u8();
  std::vector<isa::IsaKind> isas;
  std::map<isa::IsaKind, SectionSizes> sections;
  for (std::uint8_t i = 0; i < n_isas; ++i) {
    const isa::IsaKind kind = isa_from_tag(r.u8());
    SectionSizes s;
    s.text = r.u64();
    s.rodata = r.u64();
    s.data = r.u64();
    s.bss = r.u64();
    isas.push_back(kind);
    sections[kind] = s;
  }

  isa::AlignedLayout layout;
  layout.image_span = r.u64();
  const std::uint8_t n_paddings = r.u8();
  for (std::uint8_t i = 0; i < n_paddings; ++i) {
    const isa::IsaKind kind = isa_from_tag(r.u8());
    layout.padding_bytes[kind] = r.u64();
  }
  const std::uint32_t n_symbols = r.u32();
  for (std::uint32_t i = 0; i < n_symbols; ++i) {
    const std::string sym = r.str();
    layout.vaddr_of[sym] = r.u64();
  }

  MigrationMetadata metadata;
  const std::uint32_t n_sites = r.u32();
  for (std::uint32_t i = 0; i < n_sites; ++i) {
    CallSiteMetadata site;
    site.function = r.str();
    site.site_id = r.i32();
    const std::uint8_t n_frames = r.u8();
    for (std::uint8_t f = 0; f < n_frames; ++f) {
      const isa::IsaKind kind = isa_from_tag(r.u8());
      site.frame_size[kind] = r.u64();
    }
    const std::uint32_t n_values = r.u32();
    for (std::uint32_t v = 0; v < n_values; ++v) {
      LiveValue value;
      value.name = r.str();
      value.type = type_from_tag(r.u8());
      const std::uint8_t n_locs = r.u8();
      for (std::uint8_t l = 0; l < n_locs; ++l) {
        const isa::IsaKind kind = isa_from_tag(r.u8());
        ValueLocation loc;
        loc.kind = r.u8() == 0 ? ValueLocation::Kind::kRegister
                               : ValueLocation::Kind::kStackSlot;
        loc.reg = r.str();
        loc.offset = r.u64();
        value.location[kind] = loc;
      }
      site.live_values.push_back(std::move(value));
    }
    metadata.add_site(std::move(site));
  }

  if (r.remaining() != 0) {
    throw Error("fat binary: trailing bytes after descriptor");
  }
  return MultiIsaBinary(name, std::move(isas), std::move(sections),
                        std::move(layout), std::move(metadata));
}

}  // namespace xartrek::popcorn
