// Checkpointed drain tickets.
//
// When a cell dies mid-run, its in-flight jobs are not lost: the dying
// cell snapshots each job as a DrainTicket, lays the ticket out as a
// real popcorn::ThreadStack at a synthetic migration point
// ("__xar_drain"), and ships it through the MigrationRuntime to a ring
// neighbor, which decodes the ticket and re-places the job.  Riding the
// ordinary migration machinery -- metadata-described live values,
// per-ISA locations, StateTransformer rewrite, wire burst over the
// inter-cell link -- means a drain pays the same modeled costs as any
// Popcorn migration and works across ISA boundaries for free.
#pragma once

#include <cstdint>

#include "isa/isa.hpp"
#include "popcorn/machine_state.hpp"
#include "popcorn/metadata.hpp"

namespace xartrek::popcorn {

/// Everything a neighbor needs to re-materialize one drained job.
struct DrainTicket {
  std::uint64_t job = 0;        ///< cluster-wide job id
  std::uint32_t app_index = 0;  ///< index into the experiment's specs
  std::uint32_t attempts = 0;   ///< placement attempts so far (backoff)
};

/// Migration metadata for the synthetic "__xar_drain" checkpoint site:
/// the ticket's fields as live values with x86 stack-slot and aarch64
/// callee-saved-register locations.  One shared immutable table.
[[nodiscard]] const MigrationMetadata& drain_metadata();

/// Lay `ticket` out as a single-frame ThreadStack in `isa`'s format at
/// the "__xar_drain" site.
[[nodiscard]] ThreadStack checkpoint_drain(const DrainTicket& ticket,
                                           isa::IsaKind isa);

/// Recover the ticket from a (possibly ISA-transformed) drain stack.
/// Requires the stack's top frame to be at the "__xar_drain" site.
[[nodiscard]] DrainTicket decode_drain(const ThreadStack& stack);

}  // namespace xartrek::popcorn
