#include "popcorn/state_transform.hpp"

#include "common/assert.hpp"

namespace xartrek::popcorn {

MachineState StateTransformer::transform(const MachineState& src,
                                         isa::IsaKind dst_isa) const {
  const CallSiteMetadata* site =
      metadata_->find(src.function(), src.site_id());
  if (site == nullptr) {
    throw Error("no migration metadata for " + src.function() + "@" +
                std::to_string(src.site_id()));
  }

  MachineState dst(dst_isa, src.function(), src.site_id(),
                   site->frame_size_for(dst_isa));

  for (const auto& value : site->live_values) {
    auto src_loc = value.location.find(src.isa());
    auto dst_loc = value.location.find(dst_isa);
    if (src_loc == value.location.end() ||
        dst_loc == value.location.end()) {
      throw Error("live value `" + value.name +
                  "` lacks a location for one of the ISAs at " +
                  src.function() + "@" + std::to_string(src.site_id()));
    }
    const std::uint64_t raw = src.read_value(src_loc->second, value.type);
    dst.write_value(dst_loc->second, value.type, raw);
  }

  // Establish the ABI frame anchors in the destination format.  The
  // simulated address space is symbol-aligned across ISAs, so a nominal
  // canonical stack base works for both.
  const auto& cc = isa::info_for(dst_isa).cc;
  constexpr std::uint64_t kCanonicalStackTop = 0x7fff'ffff'0000ull;
  dst.write_register(cc.stack_pointer,
                     kCanonicalStackTop - dst.frame_size());
  if (!cc.frame_pointer.empty()) {
    dst.write_register(cc.frame_pointer, kCanonicalStackTop);
  }
  return dst;
}

ThreadStack StateTransformer::transform_stack(const ThreadStack& src,
                                              isa::IsaKind dst_isa) const {
  ThreadStack dst(dst_isa);
  for (const auto& frame : src.frames()) {
    dst.push_frame(transform(frame, dst_isa));
  }
  return dst;
}

Duration StateTransformer::stack_transform_cost(
    const ThreadStack& src) const {
  XAR_EXPECTS(!src.empty());
  // The fixed rewrite machinery is set up once; the per-frame work
  // (live-value relocation, frame layout) accrues per activation record.
  constexpr Duration kFixed = Duration::micros(150.0);
  Duration total = kFixed;
  for (const auto& frame : src.frames()) {
    total += transform_cost(frame) - kFixed;
  }
  return total;
}

Duration StateTransformer::transform_cost(const MachineState& src) const {
  const CallSiteMetadata* site =
      metadata_->find(src.function(), src.site_id());
  XAR_EXPECTS(site != nullptr);
  // Measured Popcorn state transformation runs in the hundreds of
  // microseconds for small frames: fixed rewrite machinery plus a few
  // microseconds per live value and per frame kilobyte.
  const double fixed_us = 150.0;
  const double per_value_us = 3.0;
  const double per_frame_kb_us = 8.0;
  const double us =
      fixed_us +
      per_value_us * static_cast<double>(site->live_values.size()) +
      per_frame_kb_us * static_cast<double>(src.frame_size()) / 1024.0;
  return Duration::micros(us);
}

}  // namespace xartrek::popcorn
