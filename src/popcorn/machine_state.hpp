// A thread's ISA-specific dynamic state at a migration point.
//
// The state transformer reads live values out of one MachineState and
// writes them into a freshly laid-out one for the destination ISA.  The
// program counter is kept symbolic -- (function, site_id) -- because
// multi-ISA binaries align symbols at identical virtual addresses, so a
// migration point's identity is ISA-independent.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/isa.hpp"
#include "popcorn/metadata.hpp"

namespace xartrek::popcorn {

/// Register file + active frame of one thread, in one ISA's format.
class MachineState {
 public:
  MachineState(isa::IsaKind isa, std::string function, int site_id,
               std::uint64_t frame_size);

  [[nodiscard]] isa::IsaKind isa() const { return isa_; }
  [[nodiscard]] const std::string& function() const { return function_; }
  [[nodiscard]] int site_id() const { return site_id_; }
  [[nodiscard]] std::uint64_t frame_size() const { return frame_.size(); }

  /// Read / write a register (raw 64-bit).  The register must exist in
  /// this state's ISA; reads of never-written registers return 0.
  [[nodiscard]] std::uint64_t read_register(const std::string& name) const;
  void write_register(const std::string& name, std::uint64_t value);

  /// Read / write `size` bytes at a frame offset (little-endian raw).
  /// Requires offset + size <= frame_size().
  [[nodiscard]] std::uint64_t read_stack(std::uint64_t offset,
                                         unsigned size) const;
  void write_stack(std::uint64_t offset, unsigned size, std::uint64_t value);

  /// Read / write a value at a metadata-described location, masked to the
  /// value type's width.
  [[nodiscard]] std::uint64_t read_value(const ValueLocation& loc,
                                         ValueType type) const;
  void write_value(const ValueLocation& loc, ValueType type,
                   std::uint64_t raw);

  /// All registers that have been written (tests / diagnostics).
  [[nodiscard]] const std::map<std::string, std::uint64_t>& registers() const {
    return regs_;
  }

 private:
  isa::IsaKind isa_;
  std::string function_;
  int site_id_;
  std::map<std::string, std::uint64_t> regs_;
  std::vector<std::byte> frame_;  ///< frame_[0] is the lowest address
};

/// Mask `raw` to the width of `type` (no-op for 8-byte types).
[[nodiscard]] std::uint64_t mask_to_type(std::uint64_t raw, ValueType type);

/// A thread's whole call stack at a migration point: one MachineState
/// per activation record, outermost (main) first.  Real Popcorn rewrites
/// *every* frame, not just the innermost -- each frame's saved live
/// values must land at its destination-ISA locations so that returns
/// unwind correctly after migration.
class ThreadStack {
 public:
  explicit ThreadStack(isa::IsaKind isa) : isa_(isa) {}

  [[nodiscard]] isa::IsaKind isa() const { return isa_; }
  [[nodiscard]] std::size_t depth() const { return frames_.size(); }
  [[nodiscard]] bool empty() const { return frames_.empty(); }

  /// Push the next-inner activation record.  Its ISA must match.
  void push_frame(MachineState frame);

  /// frames()[0] is the outermost; back() the active frame.
  [[nodiscard]] const std::vector<MachineState>& frames() const {
    return frames_;
  }
  [[nodiscard]] const MachineState& top() const;
  [[nodiscard]] MachineState& top_mutable();

  /// Total stack bytes across all frames (transfer-size accounting).
  [[nodiscard]] std::uint64_t total_frame_bytes() const;

 private:
  isa::IsaKind isa_;
  std::vector<MachineState> frames_;
};

}  // namespace xartrek::popcorn
