// Exporters for the observability layer.
//
//  * perfetto_trace_json: Chrome trace-event JSON ("traceEvents" with
//    ph:"X" complete events, timestamps in microseconds) -- loads
//    directly in Perfetto / chrome://tracing.  Lanes (cells) map to
//    pids, tracks to tids, the trace id rides in args.
//  * metrics_json / metrics_text: registry snapshot dumps, in
//    registration order.
//
// All floating-point output is formatted with fixed "%.3f"/"%.6g"
// conversions so the bytes are a pure function of the values: two runs
// with identical snapshots export identical files.
#pragma once

#include <string>

#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace xartrek::obs {

// Chrome trace-event / Perfetto JSON for every completed span.
std::string perfetto_trace_json(const Tracer& tracer);

// Registry snapshot as JSON: {"metrics": {...}, "histograms": {...}}.
std::string metrics_json(const Snapshot& snap);

// Registry snapshot as aligned human-readable text.
std::string metrics_text(const Snapshot& snap);

// Write `contents` to `path`, creating parent directories.  Returns
// false (and logs nothing) on failure so callers in examples can warn.
bool write_file(const std::string& path, const std::string& contents);

}  // namespace xartrek::obs
