#include "obs/registry.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace xartrek::obs {

// --- Histogram --------------------------------------------------------------

Histogram::Histogram(Options opts)
    : min_exp2_(opts.min_exp2), max_exp2_(opts.max_exp2) {
  XAR_EXPECTS(opts.max_exp2 > opts.min_exp2);
  XAR_EXPECTS(opts.lanes >= 1);
  const std::size_t octaves =
      static_cast<std::size_t>(max_exp2_ - min_exp2_);
  // [underflow] [octaves * 32 linear sub-buckets] [overflow]
  n_buckets_ = 1 + octaves * kSubBuckets + 1;
  lanes_.resize(opts.lanes);
  for (auto& lane : lanes_) lane.buckets.assign(n_buckets_, 0);
}

std::size_t Histogram::index_of(double value) const {
  // Underflow bucket catches everything below the range floor
  // (including zero-latency events; negatives are a caller bug but
  // degrade to the underflow bucket rather than UB).
  const double lo = std::ldexp(1.0, min_exp2_);
  if (!(value >= lo)) return 0;
  int exp = 0;
  std::frexp(value, &exp);  // value = m * 2^exp, m in [0.5, 1)
  const int octave = (exp - 1) - min_exp2_;  // value in [2^(exp-1), 2^exp)
  if (octave >= max_exp2_ - min_exp2_) return n_buckets_ - 1;  // overflow
  const double base = std::ldexp(1.0, exp - 1);
  auto sub = static_cast<std::size_t>((value / base - 1.0) *
                                      static_cast<double>(kSubBuckets));
  if (sub >= kSubBuckets) sub = kSubBuckets - 1;
  return 1 + static_cast<std::size_t>(octave) * kSubBuckets + sub;
}

void Histogram::record(std::size_t lane, double value) {
  XAR_EXPECTS(lane < lanes_.size());
  Lane& l = lanes_[lane];
  ++l.buckets[index_of(value)];
  ++l.count;
  l.sum += value;
  if (value < l.min) l.min = value;
  if (value > l.max) l.max = value;
}

std::uint64_t Histogram::count() const {
  std::uint64_t c = 0;
  for (const auto& l : lanes_) c += l.count;
  return c;
}

double Histogram::sum() const {
  // Lane order is fixed, so the float summation order is deterministic.
  double s = 0.0;
  for (const auto& l : lanes_) s += l.sum;
  return s;
}

double Histogram::min() const {
  double m = std::numeric_limits<double>::infinity();
  for (const auto& l : lanes_) m = std::min(m, l.min);
  return m;
}

double Histogram::max() const {
  double m = -std::numeric_limits<double>::infinity();
  for (const auto& l : lanes_) m = std::max(m, l.max);
  return m;
}

std::vector<std::uint64_t> Histogram::merged_buckets() const {
  std::vector<std::uint64_t> out(n_buckets_, 0);
  for (const auto& l : lanes_) {
    for (std::size_t b = 0; b < n_buckets_; ++b) out[b] += l.buckets[b];
  }
  return out;
}

double Histogram::bucket_lower_edge(std::size_t bucket) const {
  if (bucket == 0) return 0.0;
  if (bucket >= n_buckets_ - 1) return std::ldexp(1.0, max_exp2_);
  const std::size_t k = bucket - 1;
  const auto octave = static_cast<int>(k / kSubBuckets);
  const auto sub = static_cast<double>(k % kSubBuckets);
  return std::ldexp(1.0, min_exp2_ + octave) *
         (1.0 + sub / static_cast<double>(kSubBuckets));
}

double Histogram::percentile_from_buckets(
    const std::vector<std::uint64_t>& buckets, std::uint64_t count,
    int min_exp2, double q, double clamp_lo, double clamp_hi) {
  if (count == 0) return 0.0;
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count))));
  std::uint64_t cum = 0;
  std::size_t chosen = buckets.size() - 1;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    cum += buckets[b];
    if (cum >= rank) {
      chosen = b;
      break;
    }
  }
  double edge;
  if (chosen == 0) {
    edge = 0.0;
  } else if (chosen >= buckets.size() - 1) {
    edge = std::ldexp(1.0, min_exp2) *
           std::ldexp(1.0, static_cast<int>((buckets.size() - 2) /
                                            Histogram::kSubBuckets));
  } else {
    const std::size_t k = chosen - 1;
    const auto octave = static_cast<int>(k / kSubBuckets);
    const auto sub = static_cast<double>(k % kSubBuckets);
    edge = std::ldexp(1.0, min_exp2 + octave) *
           (1.0 + sub / static_cast<double>(kSubBuckets));
  }
  // Clamp into the exact observed range: a singleton histogram reports
  // its one value exactly, and no quantile can stray outside [min, max].
  return std::clamp(edge, clamp_lo, clamp_hi);
}

double Histogram::percentile(double q) const {
  const std::uint64_t c = count();
  if (c == 0) return 0.0;
  return percentile_from_buckets(merged_buckets(), c, min_exp2_, q, min(),
                                 max());
}

void Histogram::reset() {
  for (auto& l : lanes_) {
    std::fill(l.buckets.begin(), l.buckets.end(), 0);
    l.count = 0;
    l.sum = 0.0;
    l.min = std::numeric_limits<double>::infinity();
    l.max = -std::numeric_limits<double>::infinity();
  }
}

// --- Snapshot ---------------------------------------------------------------

Snapshot Snapshot::delta(const Snapshot& earlier) const {
  Snapshot out;
  out.scalars.reserve(scalars.size());
  for (std::size_t i = 0; i < scalars.size(); ++i) {
    Scalar s = scalars[i];
    if (s.kind == Kind::kCounter && i < earlier.scalars.size() &&
        earlier.scalars[i].name == s.name) {
      s.value -= earlier.scalars[i].value;
    }
    out.scalars.push_back(std::move(s));
  }
  out.hists.reserve(hists.size());
  for (std::size_t i = 0; i < hists.size(); ++i) {
    Hist h = hists[i];
    if (i < earlier.hists.size() && earlier.hists[i].name == h.name &&
        earlier.hists[i].buckets.size() == h.buckets.size()) {
      const Hist& e = earlier.hists[i];
      h.count -= e.count;
      h.sum -= e.sum;
      for (std::size_t b = 0; b < h.buckets.size(); ++b) {
        h.buckets[b] -= e.buckets[b];
      }
      // min/max are not recoverable from a bucket delta; report the
      // bucket-resolution bounds of the delta population instead.
      if (h.count == 0) {
        h.min = h.max = h.p50 = h.p99 = h.p999 = 0.0;
      } else {
        const double lo = 0.0;
        const double hi = std::numeric_limits<double>::infinity();
        h.p50 = Histogram::percentile_from_buckets(h.buckets, h.count,
                                                   h.min_exp2, 0.50, lo, hi);
        h.p99 = Histogram::percentile_from_buckets(h.buckets, h.count,
                                                   h.min_exp2, 0.99, lo, hi);
        h.p999 = Histogram::percentile_from_buckets(h.buckets, h.count,
                                                    h.min_exp2, 0.999, lo, hi);
        h.min = h.p50;  // conservative: no exact extrema for a window
        h.max = h.p999;
      }
    }
    out.hists.push_back(std::move(h));
  }
  return out;
}

// --- Registry ---------------------------------------------------------------

Registry::Counter* Registry::counter(std::string name) {
  owned_.emplace_back();
  Counter* cell = &owned_.back();
  Entry e;
  e.name = std::move(name);
  e.kind = Kind::kCounter;
  e.u64 = &cell->value;
  entries_.push_back(std::move(e));
  return cell;
}

void Registry::link_counter(std::string name, const std::uint64_t* cell) {
  XAR_EXPECTS(cell != nullptr);
  Entry e;
  e.name = std::move(name);
  e.kind = Kind::kCounter;
  e.u64 = cell;
  entries_.push_back(std::move(e));
}

void Registry::link_gauge(std::string name, const std::uint64_t* cell) {
  XAR_EXPECTS(cell != nullptr);
  Entry e;
  e.name = std::move(name);
  e.kind = Kind::kGauge;
  e.u64 = cell;
  entries_.push_back(std::move(e));
}

void Registry::link_value(std::string name, const double* cell, Kind kind) {
  XAR_EXPECTS(cell != nullptr);
  Entry e;
  e.name = std::move(name);
  e.kind = kind;
  e.f64 = cell;
  entries_.push_back(std::move(e));
}

void Registry::probe(std::string name, Probe fn, Kind kind) {
  XAR_EXPECTS(fn != nullptr);
  Entry e;
  e.name = std::move(name);
  e.kind = kind;
  e.fn = std::move(fn);
  entries_.push_back(std::move(e));
}

Histogram* Registry::histogram(std::string name, Histogram::Options opts) {
  hists_.emplace_back(std::move(name), opts);
  return &hists_.back().hist;
}

Snapshot Registry::snapshot() const {
  Snapshot out;
  out.scalars.reserve(entries_.size());
  for (const Entry& e : entries_) {
    Snapshot::Scalar s;
    s.name = e.name;
    s.kind = e.kind;
    if (e.u64 != nullptr) {
      s.value = static_cast<double>(*e.u64);
    } else if (e.f64 != nullptr) {
      s.value = *e.f64;
    } else {
      s.value = e.fn();
    }
    out.scalars.push_back(std::move(s));
  }
  out.hists.reserve(hists_.size());
  for (const HistEntry& he : hists_) {
    Snapshot::Hist h;
    h.name = he.name;
    h.count = he.hist.count();
    h.sum = he.hist.sum();
    h.min = h.count > 0 ? he.hist.min() : 0.0;
    h.max = h.count > 0 ? he.hist.max() : 0.0;
    h.p50 = he.hist.percentile(0.50);
    h.p99 = he.hist.percentile(0.99);
    h.p999 = he.hist.percentile(0.999);
    h.min_exp2 = he.hist.min_exp2();
    h.buckets = he.hist.merged_buckets();
    out.hists.push_back(std::move(h));
  }
  return out;
}

}  // namespace xartrek::obs
