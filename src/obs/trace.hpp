// Simulated-time span tracing of the job lifecycle.
//
// Spans are drawn from a per-lane `sim::SlotPool` slab (zero
// steady-state allocations once the pools and done-lists have reached
// their high-water capacity).  A lane is a single-writer domain -- one
// lane per cell/shard -- so the hot path needs no atomics; the
// `ShardedSimulation` epoch barriers (or a thread join) order the
// writers against the exporting reader, exactly like the metrics
// registry.
//
// Trace context rides in existing protocol frames: the tracked-job
// trace id (cluster job id + 1; 0 means "untracked infrastructure
// work") is carried in `PlacementRequestMsg::pid` through the
// scheduler's batch pass and in `popcorn::DrainTicket::job` across the
// checkpointed drain hop, which is what lets one job's spans stitch
// across cells.
//
// Sampling: `sampling == 0` disables tracing entirely (a bit-identical
// no-op -- the tracer never touches simulation state, so attached or
// not the event trace is unchanged); `sampling == N` keeps trace ids
// with `id % N == 0`.  Defining XARTREK_OBS_NO_TRACING compiles every
// emission site down to nothing.
//
// Exported span order is (start_ms, lane, seq) -- a pure function of
// the deterministic event trace, so serial and parallel runs export
// byte-identical traces.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.hpp"
#include "sim/slot_pool.hpp"

namespace xartrek::obs {

// Track ids group spans into named rows inside one lane (Perfetto
// renders lanes as processes and tracks as threads).
enum Track : std::uint32_t {
  kTrackJob = 0,        // submit / run / backoff / complete
  kTrackSched = 1,      // batch decide / placement decisions
  kTrackFpga = 2,       // slot programming / whole-image reconfigure
  kTrackMigration = 3,  // popcorn transform/transfer legs
  kTrackDsm = 4,        // DSM bursts
  kTrackDrain = 5,      // checkpointed drain legs
};

struct Span {
  const char* name = nullptr;  // static string (taxonomy in docs/observability.md)
  std::uint64_t trace_id = 0;  // 0 = untracked infrastructure work
  std::uint64_t seq = 0;       // per-lane emission order (deterministic)
  double start_ms = 0.0;
  double end_ms = 0.0;
  std::uint32_t lane = 0;   // cell / shard (exported as pid)
  std::uint32_t track = 0;  // Track (exported as tid)
};

// Handle to an open span; generation-checked so a stale ref after
// clear() is harmless.
struct SpanRef {
  std::uint32_t lane = 0;
  std::uint32_t slot = sim::SlotPool<Span>::kNoSlot;
  std::uint32_t generation = 0;
  [[nodiscard]] bool valid() const {
    return slot != sim::SlotPool<Span>::kNoSlot;
  }
};

class Tracer {
 public:
  struct Options {
    // 0 = off (bit-identical no-op), N = trace ids with id % N == 0.
    std::uint64_t sampling = 1;
    // Per-lane capacity reserved up front for completed spans.
    std::size_t reserve = 4096;
  };

  explicit Tracer(std::size_t lanes) : Tracer(lanes, Options{}) {}
  Tracer(std::size_t lanes, Options opts);

  [[nodiscard]] bool enabled() const {
#ifdef XARTREK_OBS_NO_TRACING
    return false;
#else
    return opts_.sampling != 0;
#endif
  }

  // True when spans for this trace id should be recorded.  id 0
  // (infrastructure) is sampled whenever tracing is on.
  [[nodiscard]] bool sampled(std::uint64_t trace_id) const {
#ifdef XARTREK_OBS_NO_TRACING
    (void)trace_id;
    return false;
#else
    return opts_.sampling != 0 && trace_id % opts_.sampling == 0;
#endif
  }

#ifdef XARTREK_OBS_NO_TRACING
  SpanRef begin(std::uint32_t, std::uint32_t, const char*, std::uint64_t,
                TimePoint) {
    return {};
  }
  void end(SpanRef, TimePoint) {}
  void emit(std::uint32_t, std::uint32_t, const char*, std::uint64_t,
            TimePoint, TimePoint) {}
  void instant(std::uint32_t, std::uint32_t, const char*, std::uint64_t,
               TimePoint) {}
#else
  // Open a span on `lane` (must be the executing shard); zero-alloc in
  // steady state.  Returns an invalid ref when the id is not sampled.
  SpanRef begin(std::uint32_t lane, std::uint32_t track, const char* name,
                std::uint64_t trace_id, TimePoint start);
  // Close an open span; invalid/stale refs are ignored.
  void end(SpanRef ref, TimePoint end);
  // Record a complete span in one call (both endpoints known).
  void emit(std::uint32_t lane, std::uint32_t track, const char* name,
            std::uint64_t trace_id, TimePoint start, TimePoint end);
  // Record a zero-duration marker.
  void instant(std::uint32_t lane, std::uint32_t track, const char* name,
               std::uint64_t trace_id, TimePoint at) {
    emit(lane, track, name, trace_id, at, at);
  }
#endif

  [[nodiscard]] std::size_t lanes() const { return lanes_.size(); }
  // Completed spans across all lanes (read only when writers are
  // quiescent).
  [[nodiscard]] std::size_t span_count() const;
  // Deterministic export order: (start_ms, lane, seq).
  [[nodiscard]] std::vector<Span> sorted_spans() const;
  // Drop all spans, keeping slab and vector capacity.
  void clear();

 private:
  struct alignas(64) Lane {
    sim::SlotPool<Span> open;
    std::vector<Span> done;
    std::uint64_t seq = 0;
  };

  Options opts_;
  std::vector<Lane> lanes_;
};

}  // namespace xartrek::obs
