#include "obs/export.hpp"

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>

namespace xartrek::obs {
namespace {

// Deterministic float formatting: fixed conversions, never locale- or
// platform-dependent shortest-round-trip output.
void append_fixed(std::string& out, double v, const char* fmt) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

}  // namespace

std::string perfetto_trace_json(const Tracer& tracer) {
  const auto spans = tracer.sorted_spans();
  std::string out;
  out.reserve(128 + spans.size() * 120);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const Span& s : spans) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    out += s.name;
    out += "\",\"cat\":\"xartrek\",\"ph\":\"X\",\"ts\":";
    // trace-event timestamps are microseconds; spans are simulated ms.
    append_fixed(out, s.start_ms * 1000.0, "%.3f");
    out += ",\"dur\":";
    append_fixed(out, (s.end_ms - s.start_ms) * 1000.0, "%.3f");
    out += ",\"pid\":";
    append_u64(out, s.lane);
    out += ",\"tid\":";
    append_u64(out, s.track);
    out += ",\"args\":{\"trace_id\":";
    append_u64(out, s.trace_id);
    out += "}}";
  }
  out += "]}";
  return out;
}

std::string metrics_json(const Snapshot& snap) {
  std::string out;
  out.reserve(64 + snap.scalars.size() * 48 + snap.hists.size() * 160);
  out += "{\"metrics\":{";
  bool first = true;
  for (const auto& s : snap.scalars) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += s.name;
    out += "\":";
    append_fixed(out, s.value, "%.6g");
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& h : snap.hists) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += h.name;
    out += "\":{\"count\":";
    append_u64(out, h.count);
    out += ",\"sum\":";
    append_fixed(out, h.sum, "%.6g");
    out += ",\"min\":";
    append_fixed(out, h.min, "%.6g");
    out += ",\"max\":";
    append_fixed(out, h.max, "%.6g");
    out += ",\"p50\":";
    append_fixed(out, h.p50, "%.6g");
    out += ",\"p99\":";
    append_fixed(out, h.p99, "%.6g");
    out += ",\"p999\":";
    append_fixed(out, h.p999, "%.6g");
    out += '}';
  }
  out += "}}";
  return out;
}

std::string metrics_text(const Snapshot& snap) {
  std::string out;
  for (const auto& s : snap.scalars) {
    out += s.name;
    if (s.name.size() < 52) out.append(52 - s.name.size(), ' ');
    out += ' ';
    append_fixed(out, s.value, "%.6g");
    if (s.kind == Snapshot::Kind::kGauge) out += "  (gauge)";
    out += '\n';
  }
  for (const auto& h : snap.hists) {
    out += h.name;
    if (h.name.size() < 52) out.append(52 - h.name.size(), ' ');
    out += " count=";
    append_u64(out, h.count);
    out += " p50=";
    append_fixed(out, h.p50, "%.6g");
    out += " p99=";
    append_fixed(out, h.p99, "%.6g");
    out += " p999=";
    append_fixed(out, h.p999, "%.6g");
    out += " max=";
    append_fixed(out, h.max, "%.6g");
    out += '\n';
  }
  return out;
}

bool write_file(const std::string& path, const std::string& contents) {
  std::error_code ec;
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f.write(contents.data(),
          static_cast<std::streamsize>(contents.size()));
  return f.good();
}

}  // namespace xartrek::obs
