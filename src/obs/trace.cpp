#include "obs/trace.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace xartrek::obs {

Tracer::Tracer(std::size_t lanes, Options opts) : opts_(opts) {
  XAR_EXPECTS(lanes >= 1);
  lanes_ = std::vector<Lane>(lanes);
  for (auto& lane : lanes_) {
    lane.open.reserve(64);
    lane.done.reserve(opts_.reserve);
  }
}

#ifndef XARTREK_OBS_NO_TRACING

SpanRef Tracer::begin(std::uint32_t lane, std::uint32_t track,
                      const char* name, std::uint64_t trace_id,
                      TimePoint start) {
  if (!sampled(trace_id)) return {};
  XAR_EXPECTS(lane < lanes_.size());
  Lane& l = lanes_[lane];
  const std::uint32_t slot = l.open.acquire();
  Span& s = l.open[slot];
  s.name = name;
  s.trace_id = trace_id;
  s.seq = l.seq++;
  s.start_ms = start.to_ms();
  s.end_ms = start.to_ms();
  s.lane = lane;
  s.track = track;
  return SpanRef{lane, slot, l.open.generation_of(slot)};
}

void Tracer::end(SpanRef ref, TimePoint end) {
  if (!ref.valid()) return;
  XAR_EXPECTS(ref.lane < lanes_.size());
  Lane& l = lanes_[ref.lane];
  if (!l.open.live_at(ref.slot, ref.generation)) return;  // stale after clear()
  Span s = l.open[ref.slot];
  s.end_ms = end.to_ms();
  l.open.release(ref.slot);
  l.done.push_back(s);
}

void Tracer::emit(std::uint32_t lane, std::uint32_t track, const char* name,
                  std::uint64_t trace_id, TimePoint start, TimePoint end) {
  if (!sampled(trace_id)) return;
  XAR_EXPECTS(lane < lanes_.size());
  Lane& l = lanes_[lane];
  Span s;
  s.name = name;
  s.trace_id = trace_id;
  s.seq = l.seq++;
  s.start_ms = start.to_ms();
  s.end_ms = end.to_ms();
  s.lane = lane;
  s.track = track;
  l.done.push_back(s);
}

#endif  // XARTREK_OBS_NO_TRACING

std::size_t Tracer::span_count() const {
  std::size_t n = 0;
  for (const auto& l : lanes_) n += l.done.size();
  return n;
}

std::vector<Span> Tracer::sorted_spans() const {
  std::vector<Span> out;
  out.reserve(span_count());
  for (const auto& l : lanes_) {
    out.insert(out.end(), l.done.begin(), l.done.end());
  }
  std::sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
    if (a.start_ms != b.start_ms) return a.start_ms < b.start_ms;
    if (a.lane != b.lane) return a.lane < b.lane;
    return a.seq < b.seq;
  });
  return out;
}

void Tracer::clear() {
  for (auto& l : lanes_) {
    // Release any still-open spans (their refs go stale via the
    // generation check) and drop completed ones, keeping capacity.
    for (std::uint32_t s = 0; s < l.open.size(); ++s) {
      if (l.open.live_at(s, l.open.generation_of(s))) l.open.release(s);
    }
    l.done.clear();
    l.seq = 0;
  }
}

}  // namespace xartrek::obs
