// Central metrics registry: named counters, gauges, and log2 latency
// histograms, pooled at registration time so the hot path is a plain
// single-writer increment with zero steady-state allocations.
//
// Design: components keep their cheap `Stats` structs as the storage
// (they remain valid views); the registry *links* to those fields at
// registration and only reads them when a snapshot is taken.  Values
// that live in objects which can be rebuilt mid-run (e.g. the drain
// `ReliableChannel`s, torn down and rebuilt by `apply_fault_plan`) are
// registered as probes -- a callable evaluated at snapshot time -- so
// no dangling pointer can ever be dereferenced on the hot path.
//
// Histograms are lane-sharded: each lane is written by exactly one
// shard/worker thread during an epoch window and merged in lane order
// at snapshot time, which the `ShardedSimulation` drained boundary (or
// a join) orders against the writers.  Because the per-lane event
// order is itself deterministic (the sharded engine is trace-identical
// serial vs parallel), merged snapshots are byte-identical across
// serial and parallel runs.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <string>
#include <vector>

namespace xartrek::obs {

// Fixed-bucket log2 histogram: 32 linear sub-buckets per octave over
// [2^min_exp2, 2^max_exp2) plus an underflow and an overflow bucket.
// Defaults cover ~1 us .. ~18.6 h when values are milliseconds.
//
// record() touches one bucket and four scalars -- no allocation, no
// atomics (single writer per lane).  Percentiles report the LOWER edge
// of the selected sub-bucket, clamped to the exact observed [min, max]:
// a reported quantile never exceeds the true one (relative
// under-report is bounded by the sub-bucket width, 1/32 ~ 3.1%), so
// budget assertions of the form `p99 <= B` stay safe.
class Histogram {
 public:
  static constexpr std::size_t kSubBuckets = 32;

  struct Options {
    int min_exp2 = -10;      // 2^-10 ms ~ 1 us
    int max_exp2 = 26;       // 2^26 ms ~ 18.6 h
    std::size_t lanes = 1;   // one independent writer per lane
  };

  Histogram() : Histogram(Options{}) {}
  explicit Histogram(Options opts);

  // Hot path: single-writer per lane, zero allocations.
  void record(std::size_t lane, double value);
  void record(double value) { record(0, value); }

  // Aggregates merged across lanes (call only when writers are
  // quiescent -- between epoch windows or after a join).
  std::uint64_t count() const;
  double sum() const;
  double min() const;  // exact; +inf when empty
  double max() const;  // exact; -inf when empty
  double percentile(double q) const;  // lower-edge estimate; 0 if empty

  std::size_t lanes() const { return lanes_.size(); }
  std::size_t bucket_count() const { return n_buckets_; }
  std::vector<std::uint64_t> merged_buckets() const;
  double bucket_lower_edge(std::size_t bucket) const;
  int min_exp2() const { return min_exp2_; }

  void reset();

  // Shared with Snapshot deltas: lower-edge percentile over an
  // arbitrary bucket array laid out like this histogram's.
  static double percentile_from_buckets(const std::vector<std::uint64_t>& b,
                                        std::uint64_t count, int min_exp2,
                                        double q, double clamp_lo,
                                        double clamp_hi);

 private:
  struct alignas(64) Lane {
    std::vector<std::uint64_t> buckets;
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
  };

  std::size_t index_of(double value) const;

  int min_exp2_;
  int max_exp2_;
  std::size_t n_buckets_;
  std::vector<Lane> lanes_;
};

// A deterministic snapshot of every registered metric, in registration
// order.  Two runs that execute the same event trace and register the
// same metrics in the same order produce byte-identical exports.
struct Snapshot {
  enum class Kind : std::uint8_t {
    kCounter,  // monotonic; delta() subtracts
    kGauge,    // level/peak; delta() keeps the later value
  };
  struct Scalar {
    std::string name;
    double value = 0.0;
    Kind kind = Kind::kCounter;
  };
  struct Hist {
    std::string name;
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;   // exact (0 when empty)
    double max = 0.0;   // exact (0 when empty)
    double p50 = 0.0;
    double p99 = 0.0;
    double p999 = 0.0;
    int min_exp2 = 0;
    std::vector<std::uint64_t> buckets;
  };

  std::vector<Scalar> scalars;
  std::vector<Hist> hists;

  // Per-phase delta: counters subtract, gauges keep the later value,
  // histogram buckets subtract (percentiles recomputed on the delta).
  Snapshot delta(const Snapshot& earlier) const;
};

class Registry {
 public:
  using Kind = Snapshot::Kind;
  using Probe = std::function<double()>;

  // An owned counter cell with a registry-stable address.  Hot path:
  // `cell->add()` -- a plain increment (single writer).
  struct Counter {
    std::uint64_t value = 0;
    void add(std::uint64_t n = 1) { value += n; }
  };

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Owned counter (stable address until the registry dies).
  Counter* counter(std::string name);

  // Linked scalar: reads `*cell` at snapshot time.  The cell must
  // outlive the registry or be unregistered-by-destruction of the
  // whole registry; use probe() for rebuildable objects.
  void link_counter(std::string name, const std::uint64_t* cell);
  void link_gauge(std::string name, const std::uint64_t* cell);
  void link_value(std::string name, const double* cell,
                  Kind kind = Kind::kGauge);

  // Snapshot-time callable; never invoked on the hot path.
  void probe(std::string name, Probe fn, Kind kind = Kind::kCounter);

  // Owned lane-sharded histogram (stable address).
  Histogram* histogram(std::string name,
                       Histogram::Options opts = Histogram::Options{});

  Snapshot snapshot() const;

  std::size_t size() const { return entries_.size() + hists_.size(); }

 private:
  struct Entry {
    std::string name;
    Kind kind = Kind::kCounter;
    const std::uint64_t* u64 = nullptr;  // linked or owned counter
    const double* f64 = nullptr;         // linked gauge
    Probe fn;                            // probe
  };
  struct HistEntry {
    std::string name;
    Histogram hist;
    HistEntry(std::string n, Histogram::Options opts)
        : name(std::move(n)), hist(opts) {}
  };

  std::deque<Counter> owned_;      // stable addresses
  std::vector<Entry> entries_;     // registration order
  std::deque<HistEntry> hists_;    // stable addresses, registration order
};

}  // namespace xartrek::obs
