#include "compiler/profile_spec.hpp"

#include <sstream>

#include "common/assert.hpp"

namespace xartrek::compiler {

const SelectedFunction* ApplicationProfile::find(
    const std::string& fn) const {
  for (const auto& f : functions) {
    if (f.function == fn) return &f;
  }
  return nullptr;
}

const ApplicationProfile* ProfileSpec::find_application(
    const std::string& name) const {
  for (const auto& a : applications) {
    if (a.name == name) return &a;
  }
  return nullptr;
}

namespace {
[[noreturn]] void fail(int line, const std::string& msg) {
  throw Error("profile spec, line " + std::to_string(line) + ": " + msg);
}
}  // namespace

ProfileSpec ProfileSpec::parse(std::istream& is) {
  ProfileSpec spec;
  ApplicationProfile* current = nullptr;
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    // Strip comments and surrounding whitespace.
    if (auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream ls(line);
    std::string keyword;
    if (!(ls >> keyword)) continue;  // blank

    if (keyword == "platform") {
      if (!(ls >> spec.platform)) fail(lineno, "platform needs a name");
    } else if (keyword == "application") {
      if (current != nullptr) {
        fail(lineno, "nested application (missing `end`?)");
      }
      ApplicationProfile app;
      if (!(ls >> app.name)) fail(lineno, "application needs a name");
      if (spec.find_application(app.name) != nullptr) {
        fail(lineno, "duplicate application `" + app.name + "`");
      }
      spec.applications.push_back(std::move(app));
      current = &spec.applications.back();
    } else if (keyword == "function") {
      if (current == nullptr) fail(lineno, "function outside application");
      SelectedFunction fn;
      if (!(ls >> fn.function)) fail(lineno, "function needs a symbol name");
      std::string key;
      while (ls >> key) {
        if (key == "kernel") {
          if (!(ls >> fn.kernel_name)) fail(lineno, "kernel needs a value");
        } else if (key == "input_bytes") {
          if (!(ls >> fn.input_bytes)) {
            fail(lineno, "input_bytes needs a value");
          }
        } else if (key == "output_bytes") {
          if (!(ls >> fn.output_bytes)) {
            fail(lineno, "output_bytes needs a value");
          }
        } else if (key == "items") {
          if (!(ls >> fn.items_per_call) || fn.items_per_call == 0) {
            fail(lineno, "items needs a positive value");
          }
        } else {
          fail(lineno, "unknown attribute `" + key + "`");
        }
      }
      if (fn.kernel_name.empty()) {
        fail(lineno, "function `" + fn.function + "` needs a kernel name");
      }
      if (current->find(fn.function) != nullptr) {
        fail(lineno, "duplicate function `" + fn.function + "`");
      }
      current->functions.push_back(std::move(fn));
    } else if (keyword == "end") {
      if (current == nullptr) fail(lineno, "`end` without application");
      if (current->functions.empty()) {
        fail(lineno,
             "application `" + current->name + "` selects no functions");
      }
      current = nullptr;
    } else {
      fail(lineno, "unknown keyword `" + keyword + "`");
    }
  }
  if (current != nullptr) {
    fail(lineno, "unterminated application `" + current->name + "`");
  }
  if (spec.platform.empty()) fail(lineno, "missing `platform` line");
  return spec;
}

ProfileSpec ProfileSpec::parse_string(const std::string& text) {
  std::istringstream is(text);
  return parse(is);
}

std::string ProfileSpec::serialize() const {
  std::ostringstream os;
  os << "# xar-trek profiling spec (step A)\n";
  os << "platform " << platform << "\n";
  for (const auto& app : applications) {
    os << "application " << app.name << "\n";
    for (const auto& fn : app.functions) {
      os << "  function " << fn.function << " kernel " << fn.kernel_name
         << " input_bytes " << fn.input_bytes << " output_bytes "
         << fn.output_bytes << " items " << fn.items_per_call << "\n";
    }
    os << "end\n";
  }
  return os.str();
}

}  // namespace xartrek::compiler
