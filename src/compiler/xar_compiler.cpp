#include "compiler/xar_compiler.hpp"

#include <utility>

#include "common/assert.hpp"
#include "compiler/validate.hpp"

namespace xartrek::compiler {

const CompiledApp* CompiledSuite::find_app(const std::string& name) const {
  for (const auto& a : apps) {
    if (a.name == name) return &a;
  }
  return nullptr;
}

const fpga::XclbinImage* CompiledSuite::xclbin_with(
    const std::string& kernel) const {
  for (const auto& image : xclbins) {
    if (image.contains_kernel(kernel)) return &image;
  }
  return nullptr;
}

XarCompiler::XarCompiler(XarCompilerConfig cfg) : cfg_(std::move(cfg)) {}

CompiledSuite XarCompiler::compile(
    const ProfileSpec& spec, const std::map<std::string, AppIr>& irs,
    const std::map<std::string, KernelProfile>& kernel_profiles) const {
  CompiledSuite suite;

  const Instrumenter instrumenter;
  const MultiIsaBuilder fat_builder(cfg_.multi_isa);
  MultiIsaBuildOptions x86_opts = cfg_.multi_isa;
  x86_opts.targets = {isa::IsaKind::kX86_64};
  const MultiIsaBuilder x86_builder(x86_opts);
  const XoGenerator xo_gen(cfg_.hls);

  std::vector<hls::XoFile> all_xos;
  for (const auto& app_profile : spec.applications) {
    auto ir_it = irs.find(app_profile.name);
    if (ir_it == irs.end()) {
      throw Error("compile: no IR provided for application `" +
                  app_profile.name + "`");
    }
    validate_ir_or_throw(ir_it->second);

    CompiledApp app{
        app_profile.name,
        instrumenter.instrument(ir_it->second, app_profile),  // B
        fat_builder.build(ir_it->second),                     // placeholder
        x86_builder.build(ir_it->second),                     // baseline
        {},
    };
    // Step C operates on the *instrumented* IR (the dispatch stubs and
    // their call sites are migration points with metadata).
    app.binary = fat_builder.build(app.instrumented.ir);
    app.xos = xo_gen.generate(app_profile, kernel_profiles);  // D
    for (const auto& xo : app.xos) all_xos.push_back(xo);
    suite.apps.push_back(std::move(app));
  }

  // E: one shared partitioning across the whole suite -- kernels from
  // different tenants share images, which is the multi-tenant premise.
  const hls::XclbinPartitioner partitioner(cfg_.platform);
  suite.xclbin_specs = partitioner.partition(all_xos);

  // F: build loadable images.
  const hls::XclbinBuilder builder(cfg_.platform);
  suite.xclbins.reserve(suite.xclbin_specs.size());
  for (const auto& spec_e : suite.xclbin_specs) {
    suite.xclbins.push_back(builder.build(spec_e));
  }
  return suite;
}

}  // namespace xartrek::compiler
