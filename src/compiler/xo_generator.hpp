// Step D -- Xilinx object generation.
//
// Moves each selected function into its own compilation unit and invokes
// the HLS compiler on it, producing one XO per function (paper §3.1).
// The op profile for each function comes from the profiling pass; the
// caller supplies it alongside the profile-spec entry.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "compiler/profile_spec.hpp"
#include "hls/hls_compiler.hpp"

namespace xartrek::compiler {

/// Per-kernel synthesis inputs gathered by profiling.
struct KernelProfile {
  hls::OpProfile ops;
  double unroll_factor = 1.0;
  int lines_of_code = 200;
  int compute_units = 1;  ///< Vitis `nk` replication
};

/// The step-D driver.
class XoGenerator {
 public:
  explicit XoGenerator(hls::HlsOptions opts = {});

  /// Generate XOs for every selected function of `app`.  `profiles` maps
  /// kernel names to their synthesis inputs; a missing entry throws.
  [[nodiscard]] std::vector<hls::XoFile> generate(
      const ApplicationProfile& app,
      const std::map<std::string, KernelProfile>& profiles) const;

 private:
  hls::HlsCompiler hls_;
};

}  // namespace xartrek::compiler
