// The Xar-Trek compiler facade: pipeline steps A-F.
//
//   A  ProfileSpec           (parsed text file; manual step)
//   B  Instrumenter          (scheduler hooks + dispatch stubs)
//   C  MultiIsaBuilder       (Popcorn fat binaries)
//   D  XoGenerator           (HLS objects per selected function)
//   E  XclbinPartitioner     (group kernels under the area budget)
//   F  XclbinBuilder         (loadable images)
//
// Step G (threshold estimation) is a *measurement* stage -- it runs the
// compiled applications on the platform under increasing load -- so it
// lives with the experiment infrastructure (exp::ThresholdEstimator) and
// is invoked after compile().
#pragma once

#include <map>
#include <string>
#include <vector>

#include "compiler/app_ir.hpp"
#include "compiler/instrumenter.hpp"
#include "compiler/multi_isa_builder.hpp"
#include "compiler/profile_spec.hpp"
#include "compiler/xo_generator.hpp"
#include "fpga/device.hpp"
#include "hls/xclbin.hpp"
#include "popcorn/multi_isa_binary.hpp"

namespace xartrek::compiler {

/// Everything produced for one application.
struct CompiledApp {
  std::string name;
  InstrumentedApp instrumented;
  popcorn::MultiIsaBinary binary;          ///< fat (x86 + ARM) build
  popcorn::MultiIsaBinary x86_only_binary; ///< baseline single-ISA build
  std::vector<hls::XoFile> xos;
};

/// The whole suite: per-app artifacts plus the shared XCLBIN images.
struct CompiledSuite {
  std::vector<CompiledApp> apps;
  std::vector<hls::XclbinSpec> xclbin_specs;
  std::vector<fpga::XclbinImage> xclbins;

  [[nodiscard]] const CompiledApp* find_app(const std::string& name) const;
  /// The image holding `kernel`, or nullptr.
  [[nodiscard]] const fpga::XclbinImage* xclbin_with(
      const std::string& kernel) const;
};

/// Facade configuration.
struct XarCompilerConfig {
  fpga::FpgaSpec platform = fpga::alveo_u50_spec();
  hls::HlsOptions hls = {};
  MultiIsaBuildOptions multi_isa = {};
};

/// Runs A-F over a suite of applications.
class XarCompiler {
 public:
  explicit XarCompiler(XarCompilerConfig cfg = {});

  /// Compile every application in `spec`.  `irs` maps application names
  /// to their IR; `kernel_profiles` maps kernel names to synthesis
  /// inputs.  Missing entries throw.
  [[nodiscard]] CompiledSuite compile(
      const ProfileSpec& spec, const std::map<std::string, AppIr>& irs,
      const std::map<std::string, KernelProfile>& kernel_profiles) const;

  [[nodiscard]] const XarCompilerConfig& config() const { return cfg_; }

 private:
  XarCompilerConfig cfg_;
};

}  // namespace xartrek::compiler
