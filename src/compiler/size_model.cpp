#include "compiler/size_model.hpp"

#include "common/assert.hpp"

namespace xartrek::compiler {

double BinarySizeReport::increase_over(std::uint64_t baseline_total) const {
  XAR_EXPECTS(baseline_total > 0);
  return 100.0 *
         (static_cast<double>(xartrek_total()) -
          static_cast<double>(baseline_total)) /
         static_cast<double>(baseline_total);
}

BinarySizeReport size_report(const CompiledApp& app,
                             const hls::XclbinBuilder& builder) {
  BinarySizeReport report;
  report.app = app.name;
  report.x86_executable =
      app.x86_only_binary.single_isa_file_bytes(isa::IsaKind::kX86_64);
  report.multi_isa_executable = app.binary.file_bytes();
  report.migration_metadata = app.binary.metadata().encoded_size_bytes();
  for (const auto& [isa_kind, padding] :
       app.binary.layout().padding_bytes) {
    report.alignment_padding += padding;
  }
  // Marginal XCLBIN bytes: this app's kernel regions + a header share.
  report.xclbin_marginal = 128 * 1024;
  for (const auto& xo : app.xos) {
    report.xclbin_marginal += builder.kernel_region_bytes(xo);
  }
  return report;
}

}  // namespace xartrek::compiler
