// Step C -- multi-ISA binary generation (the Popcorn compiler wrapper).
//
// Takes the instrumented IR and produces a fat binary: per-ISA machine
// code (sized by each ISA's code density), symbols aligned at identical
// virtual addresses across ISAs, and migration metadata synthesized for
// every call site (live values with per-ISA register/stack locations and
// per-ISA frame sizes).  This is the one pipeline step the paper
// leverages wholesale from Popcorn Linux.
#pragma once

#include <vector>

#include "compiler/app_ir.hpp"
#include "isa/isa.hpp"
#include "isa/symbol.hpp"
#include "popcorn/metadata.hpp"
#include "popcorn/multi_isa_binary.hpp"

namespace xartrek::compiler {

/// Options for the build.
struct MultiIsaBuildOptions {
  std::vector<isa::IsaKind> targets = isa::all_isas();
  /// Statically linked base runtime (crt + libc subset) text bytes; the
  /// Popcorn migration runtime adds on top of this per ISA.
  std::uint64_t base_runtime_text_bytes = 620 * 1024;
  std::uint64_t popcorn_runtime_text_bytes = 140 * 1024;
};

/// The Popcorn-compiler stand-in.
class MultiIsaBuilder {
 public:
  explicit MultiIsaBuilder(MultiIsaBuildOptions opts = {});

  /// Build the fat binary for `ir`.  Requires at least one target ISA.
  [[nodiscard]] popcorn::MultiIsaBinary build(const AppIr& ir) const;

  /// Synthesize the per-call-site liveness metadata the real compiler's
  /// liveness pass would emit: each function's locals become live values
  /// with ABI-correct locations per ISA (first arguments in argument
  /// registers, the rest in frame slots).
  [[nodiscard]] popcorn::MigrationMetadata synthesize_metadata(
      const AppIr& ir) const;

  /// Per-ISA encoded size of one function (the code-density model).
  [[nodiscard]] std::uint64_t code_bytes(const IrFunction& fn,
                                         isa::IsaKind isa) const;

  [[nodiscard]] const MultiIsaBuildOptions& options() const { return opts_; }

 private:
  MultiIsaBuildOptions opts_;
};

}  // namespace xartrek::compiler
