#include "compiler/app_ir.hpp"

#include "common/assert.hpp"

namespace xartrek::compiler {

AppIr make_app_ir(const std::string& app_name,
                  const std::string& hot_function, int total_loc,
                  int hot_loc, std::uint64_t hot_rodata_bytes) {
  XAR_EXPECTS(total_loc > hot_loc && hot_loc > 0);

  // C compiles at roughly 7-9 IR ops per source line; split across
  // categories in typical proportions for compute codes.
  auto ops_for = [](int loc) {
    const auto total = static_cast<std::uint64_t>(loc) * 8;
    IrOpCounts ops;
    ops.int_ops = total * 45 / 100;
    ops.fp_ops = total * 15 / 100;
    ops.mem_ops = total * 30 / 100;
    ops.branch_ops = total - ops.int_ops - ops.fp_ops - ops.mem_ops;
    return ops;
  };

  const int support_loc = (total_loc - hot_loc) / 3;
  const int main_loc = total_loc - hot_loc - support_loc;

  AppIr ir;
  ir.name = app_name;

  IrFunction main_fn;
  main_fn.name = "main";
  main_fn.lines_of_code = main_loc;
  main_fn.ops = ops_for(main_loc);
  main_fn.call_sites = {IrCallSite{"load_input", 0},
                        IrCallSite{hot_function, 1},
                        IrCallSite{"report_output", 2}};
  main_fn.num_locals = 12;
  main_fn.global_bytes = 4 * 1024;
  ir.functions.push_back(main_fn);

  IrFunction hot;
  hot.name = hot_function;
  hot.lines_of_code = hot_loc;
  hot.ops = ops_for(hot_loc);
  hot.call_sites = {};  // self-contained: the HLS requirement
  hot.num_locals = 18;
  hot.global_bytes = 16 * 1024;
  hot.rodata_bytes = hot_rodata_bytes;
  ir.functions.push_back(hot);

  IrFunction support;
  support.name = "load_input";
  support.lines_of_code = support_loc / 2;
  support.ops = ops_for(support_loc / 2);
  support.num_locals = 6;
  support.global_bytes = 1024;
  ir.functions.push_back(support);

  IrFunction report;
  report.name = "report_output";
  report.lines_of_code = support_loc - support_loc / 2;
  report.ops = ops_for(support_loc - support_loc / 2);
  report.num_locals = 4;
  ir.functions.push_back(report);

  return ir;
}

}  // namespace xartrek::compiler
