#include "compiler/validate.hpp"

#include <set>

#include "common/assert.hpp"

namespace xartrek::compiler {

std::vector<ValidationIssue> validate_ir(const AppIr& ir) {
  std::vector<ValidationIssue> issues;
  auto error = [&issues](std::string msg) {
    issues.push_back({ValidationIssue::Severity::kError, std::move(msg)});
  };
  auto warning = [&issues](std::string msg) {
    issues.push_back({ValidationIssue::Severity::kWarning, std::move(msg)});
  };

  if (ir.name.empty()) error("application has no name");
  if (!ir.has_main()) error("application `" + ir.name + "` has no main");
  if (ir.functions.empty()) {
    error("application `" + ir.name + "` has no functions");
    return issues;
  }

  std::set<std::string> names;
  for (const auto& fn : ir.functions) {
    if (fn.name.empty()) {
      error("a function has an empty name");
      continue;
    }
    if (!names.insert(fn.name).second) {
      error("duplicate function `" + fn.name + "`");
    }
    if (fn.lines_of_code <= 0) {
      warning("function `" + fn.name + "` has non-positive LOC");
    }
    if (fn.ops.total() == 0) {
      warning("function `" + fn.name + "` has no operations");
    }
    if (fn.num_locals < 0) {
      error("function `" + fn.name + "` has negative locals");
    }
    std::set<int> sites;
    for (const auto& site : fn.call_sites) {
      if (!sites.insert(site.site_id).second) {
        error("function `" + fn.name + "` reuses call-site id " +
              std::to_string(site.site_id));
      }
    }
  }

  for (const auto& fn : ir.functions) {
    for (const auto& site : fn.call_sites) {
      if (site.callee.rfind("__xar_", 0) == 0) continue;  // runtime hook
      if (ir.find(site.callee) == nullptr) {
        error("function `" + fn.name + "` calls unknown `" + site.callee +
              "`");
      }
      if (site.callee == fn.name) {
        warning("function `" + fn.name +
                "` is directly recursive; recursive selected functions "
                "cannot be synthesized");
      }
    }
  }
  return issues;
}

void validate_ir_or_throw(const AppIr& ir) {
  std::string combined;
  for (const auto& issue : validate_ir(ir)) {
    if (issue.severity != ValidationIssue::Severity::kError) continue;
    if (!combined.empty()) combined += "; ";
    combined += issue.message;
  }
  if (!combined.empty()) {
    throw Error("IR validation failed: " + combined);
  }
}

}  // namespace xartrek::compiler
