#include "compiler/instrumenter.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace xartrek::compiler {

std::size_t InstrumentedApp::count(Insertion::Kind kind) const {
  return static_cast<std::size_t>(
      std::count_if(insertions.begin(), insertions.end(),
                    [kind](const Insertion& i) { return i.kind == kind; }));
}

InstrumentedApp Instrumenter::instrument(
    const AppIr& ir, const ApplicationProfile& profile) const {
  if (!ir.has_main()) {
    throw Error("instrumenter: application `" + ir.name + "` has no main");
  }

  InstrumentedApp out;
  out.ir = ir;

  // Validate selections first (fail before mutating anything).
  for (const auto& sel : profile.functions) {
    const IrFunction* fn = ir.find(sel.function);
    if (fn == nullptr) {
      throw Error("instrumenter: selected function `" + sel.function +
                  "` not found in `" + ir.name + "`");
    }
    if (!fn->call_sites.empty()) {
      throw Error("instrumenter: selected function `" + sel.function +
                  "` is not self-contained (calls other functions); "
                  "Vitis-style synthesis requires self-contained bodies");
    }
  }

  IrFunction* main_fn = out.ir.find_mutable("main");
  XAR_ASSERT(main_fn != nullptr);

  // Calls inserted at the start of main: client registration, then the
  // eager FPGA configuration (site ids below 0 mark synthetic sites).
  main_fn->call_sites.insert(
      main_fn->call_sites.begin(),
      {IrCallSite{"__xar_client_init", -1},
       IrCallSite{"__xar_fpga_configure", -2}});
  out.insertions.push_back(
      {Insertion::Kind::kSchedulerClientInit, "main", "__xar_client_init"});
  out.insertions.push_back(
      {Insertion::Kind::kFpgaPreconfigure, "main", "__xar_fpga_configure"});

  // Call inserted at the end of main: the client's dynamic threshold
  // update runs after the selected functions have returned (paper §3.2).
  main_fn->call_sites.push_back(IrCallSite{"__xar_client_fini", -3});
  out.insertions.push_back(
      {Insertion::Kind::kSchedulerClientFini, "main", "__xar_client_fini"});

  // Rewrite every call to a selected function, wherever it appears, to
  // the three-way dispatch stub; add the stub function itself.
  for (const auto& sel : profile.functions) {
    const std::string stub = dispatch_stub_name(sel.function);
    for (auto& fn : out.ir.functions) {
      for (auto& site : fn.call_sites) {
        if (site.callee == sel.function) {
          site.callee = stub;
          out.insertions.push_back({Insertion::Kind::kDispatchRewrite,
                                    fn.name, sel.function + " -> " + stub});
        }
      }
    }
    IrFunction stub_fn;
    stub_fn.name = stub;
    stub_fn.lines_of_code = 40;  // flag check + 3-way call + XRT plumbing
    stub_fn.ops = IrOpCounts{120, 0, 60, 40};
    // The stub calls the original software function (flag 0/1) and the
    // XRT offload path (flag 2); these call sites are also the migration
    // points where cross-ISA state equivalence holds.
    stub_fn.call_sites = {IrCallSite{sel.function, 0},
                          IrCallSite{"__xar_xrt_offload", 1}};
    stub_fn.num_locals = 8;
    out.ir.functions.push_back(std::move(stub_fn));
    out.dispatch_stubs.push_back(stub);
  }

  return out;
}

}  // namespace xartrek::compiler
