// Application intermediate representation.
//
// The Xar-Trek pipeline operates on C applications after lowering; what
// its steps actually consume is summarized here: per-function op counts
// (code-size and HLS models), call sites (instrumentation points and
// migration points), locals (liveness metadata synthesis), and global
// data (symbol layout).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace xartrek::compiler {

/// Static operation counts of one function body.
struct IrOpCounts {
  std::uint64_t int_ops = 0;
  std::uint64_t fp_ops = 0;
  std::uint64_t mem_ops = 0;
  std::uint64_t branch_ops = 0;

  [[nodiscard]] std::uint64_t total() const {
    return int_ops + fp_ops + mem_ops + branch_ops;
  }
};

/// A call site inside a function (a candidate migration point).
struct IrCallSite {
  std::string callee;
  int site_id = 0;  ///< unique within the enclosing function
};

/// One C function.
struct IrFunction {
  std::string name;
  int lines_of_code = 0;
  IrOpCounts ops;
  std::vector<IrCallSite> call_sites;
  int num_locals = 0;            ///< live-value count at a typical site
  std::uint64_t global_bytes = 0;  ///< statics/globals attributed here
  std::uint64_t rodata_bytes = 0;  ///< constants (e.g. embedded images)
};

/// A whole application after lowering.
struct AppIr {
  std::string name;
  std::vector<IrFunction> functions;

  [[nodiscard]] const IrFunction* find(const std::string& fn_name) const {
    for (const auto& f : functions) {
      if (f.name == fn_name) return &f;
    }
    return nullptr;
  }
  [[nodiscard]] IrFunction* find_mutable(const std::string& fn_name) {
    for (auto& f : functions) {
      if (f.name == fn_name) return &f;
    }
    return nullptr;
  }
  [[nodiscard]] bool has_main() const { return find("main") != nullptr; }
};

/// Build a plausible IR for a C application of `total_loc` lines whose
/// hot function is `hot_function` with `hot_loc` lines: `main` plus the
/// hot function plus a support function.  Op counts derive from LOC at a
/// fixed ops-per-line density; the paper's apps are 300-900 LOC.
[[nodiscard]] AppIr make_app_ir(const std::string& app_name,
                                const std::string& hot_function,
                                int total_loc, int hot_loc,
                                std::uint64_t hot_rodata_bytes = 0);

}  // namespace xartrek::compiler
