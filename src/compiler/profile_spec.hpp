// Step A -- the profiling specification.
//
// Profiling is the pipeline's one manual step: an application designer,
// guided by gprof/valgrind output, writes a text file naming (1) the
// hardware platform, (2) the applications, and (3) the selected
// functions of each application that can execute on all three targets
// (paper §3.1).  This module defines that file format, its parser and
// serializer.
//
// Format (line-oriented, '#' comments; one `function` attribute list
// per line):
//
//   platform alveo-u50
//   application facedet320
//     function detect_faces kernel KNL_HW_FD320 input_bytes 76800
//   end
//
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace xartrek::compiler {

/// One selected function: migrate-able to ARM and implement-able on the
/// FPGA.
struct SelectedFunction {
  std::string function;      ///< C symbol
  std::string kernel_name;   ///< hardware kernel name
  std::uint64_t input_bytes = 0;
  std::uint64_t output_bytes = 0;
  std::uint64_t items_per_call = 1;  ///< work items per invocation
};

/// One application entry.
struct ApplicationProfile {
  std::string name;
  std::vector<SelectedFunction> functions;

  [[nodiscard]] const SelectedFunction* find(const std::string& fn) const;
};

/// The whole spec file.
struct ProfileSpec {
  std::string platform;
  std::vector<ApplicationProfile> applications;

  [[nodiscard]] const ApplicationProfile* find_application(
      const std::string& name) const;

  /// Parse; throws xartrek::Error with a line number on malformed input.
  [[nodiscard]] static ProfileSpec parse(std::istream& is);
  [[nodiscard]] static ProfileSpec parse_string(const std::string& text);

  /// Serialize in the same format (round-trips through parse).
  [[nodiscard]] std::string serialize() const;
};

}  // namespace xartrek::compiler
