#include "compiler/multi_isa_builder.hpp"

#include <utility>

#include "common/assert.hpp"

namespace xartrek::compiler {

MultiIsaBuilder::MultiIsaBuilder(MultiIsaBuildOptions opts)
    : opts_(std::move(opts)) {
  XAR_EXPECTS(!opts_.targets.empty());
}

std::uint64_t MultiIsaBuilder::code_bytes(const IrFunction& fn,
                                          isa::IsaKind isa) const {
  const double density = isa::info_for(isa).code_bytes_per_op;
  // Prologue/epilogue + alignment overhead per function.
  return 64 + static_cast<std::uint64_t>(
                  density * static_cast<double>(fn.ops.total()));
}

popcorn::MigrationMetadata MultiIsaBuilder::synthesize_metadata(
    const AppIr& ir) const {
  popcorn::MigrationMetadata metadata;
  using popcorn::ValueLocation;
  using popcorn::ValueType;

  // Types cycle through the C-compatible primitive set.
  constexpr ValueType kTypeCycle[] = {ValueType::kI64, ValueType::kPtr,
                                      ValueType::kF64, ValueType::kI32,
                                      ValueType::kI64, ValueType::kF32};

  for (const auto& fn : ir.functions) {
    for (const auto& site : fn.call_sites) {
      popcorn::CallSiteMetadata md;
      md.function = fn.name;
      md.site_id = site.site_id;

      // Frame: 16-byte aligned slots for spilled locals + ABI overhead
      // (x86 pushes the return address; aarch64 stores the fp/lr pair).
      const auto locals = static_cast<std::uint64_t>(fn.num_locals);
      for (isa::IsaKind isa : opts_.targets) {
        const std::uint64_t overhead =
            isa == isa::IsaKind::kX86_64 ? 24 : 16;
        md.frame_size[isa] = ((locals * 8 + overhead + 15) / 16) * 16;
      }

      for (int v = 0; v < fn.num_locals; ++v) {
        popcorn::LiveValue value;
        value.name = fn.name + ".l" + std::to_string(v);
        value.type = kTypeCycle[static_cast<std::size_t>(v) % 6];
        for (isa::IsaKind isa : opts_.targets) {
          const auto& cc = isa::info_for(isa).cc;
          const auto nregs = static_cast<int>(cc.integer_arg_regs.size());
          // Integer-like values prefer argument registers while they
          // last; floats and the spill overflow land in frame slots.
          const bool reg_eligible = value.type != popcorn::ValueType::kF32 &&
                                    value.type != popcorn::ValueType::kF64;
          if (reg_eligible && v < nregs) {
            value.location[isa] = ValueLocation::in_register(
                cc.integer_arg_regs[static_cast<std::size_t>(v)]);
          } else {
            value.location[isa] = ValueLocation::on_stack(
                static_cast<std::uint64_t>(v) * 8);
          }
        }
        md.live_values.push_back(std::move(value));
      }
      metadata.add_site(std::move(md));
    }
  }
  return metadata;
}

popcorn::MultiIsaBinary MultiIsaBuilder::build(const AppIr& ir) const {
  // --- Symbols -----------------------------------------------------
  std::vector<isa::Symbol> symbols;

  // Base + Popcorn runtime text (identical for every app).
  isa::Symbol rt;
  rt.name = "__runtime";
  rt.section = isa::Section::kText;
  rt.alignment = 4096;
  for (isa::IsaKind isa : opts_.targets) {
    const double density_ratio = isa::info_for(isa).code_bytes_per_op /
                                 isa::info_for(isa::IsaKind::kX86_64)
                                     .code_bytes_per_op;
    rt.size_by_isa[isa] = static_cast<std::uint64_t>(
        static_cast<double>(opts_.base_runtime_text_bytes +
                            (opts_.targets.size() > 1
                                 ? opts_.popcorn_runtime_text_bytes
                                 : 0)) *
        density_ratio);
  }
  symbols.push_back(rt);

  for (const auto& fn : ir.functions) {
    isa::Symbol text;
    text.name = fn.name;
    text.section = isa::Section::kText;
    text.alignment = 16;
    for (isa::IsaKind isa : opts_.targets) {
      text.size_by_isa[isa] = code_bytes(fn, isa);
    }
    symbols.push_back(text);

    if (fn.rodata_bytes > 0) {
      isa::Symbol ro;
      ro.name = fn.name + ".rodata";
      ro.section = isa::Section::kRodata;
      ro.alignment = 64;
      for (isa::IsaKind isa : opts_.targets) {
        ro.size_by_isa[isa] = fn.rodata_bytes;  // data agrees across ISAs
      }
      symbols.push_back(ro);
    }
    if (fn.global_bytes > 0) {
      isa::Symbol data;
      data.name = fn.name + ".data";
      data.section = isa::Section::kData;
      data.alignment = 64;
      for (isa::IsaKind isa : opts_.targets) {
        data.size_by_isa[isa] = fn.global_bytes;
      }
      symbols.push_back(data);
    }
  }

  isa::AlignedLayout layout = isa::align_symbols(symbols, opts_.targets);

  // --- Section totals ------------------------------------------------
  std::map<isa::IsaKind, popcorn::SectionSizes> sections;
  for (isa::IsaKind isa : opts_.targets) {
    popcorn::SectionSizes sz;
    for (const auto& sym : symbols) {
      const std::uint64_t bytes = sym.size_for(isa);
      switch (sym.section) {
        case isa::Section::kText:   sz.text += bytes; break;
        case isa::Section::kRodata: sz.rodata += bytes; break;
        case isa::Section::kData:   sz.data += bytes; break;
        case isa::Section::kBss:    sz.bss += bytes; break;
      }
    }
    sections[isa] = sz;
  }

  return popcorn::MultiIsaBinary(ir.name, opts_.targets, std::move(sections),
                                 std::move(layout), synthesize_metadata(ir));
}

}  // namespace xartrek::compiler
