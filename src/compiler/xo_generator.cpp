#include "compiler/xo_generator.hpp"

#include "common/assert.hpp"

namespace xartrek::compiler {

XoGenerator::XoGenerator(hls::HlsOptions opts) : hls_(opts) {}

std::vector<hls::XoFile> XoGenerator::generate(
    const ApplicationProfile& app,
    const std::map<std::string, KernelProfile>& profiles) const {
  std::vector<hls::XoFile> xos;
  xos.reserve(app.functions.size());
  for (const auto& sel : app.functions) {
    auto it = profiles.find(sel.kernel_name);
    if (it == profiles.end()) {
      throw Error("XO generation: no kernel profile for `" +
                  sel.kernel_name + "` (application `" + app.name + "`)");
    }
    hls::KernelSource src;
    src.source_function = sel.function;
    src.kernel_name = sel.kernel_name;
    src.lines_of_code = it->second.lines_of_code;
    src.ops = it->second.ops;
    src.unroll_factor = it->second.unroll_factor;
    src.compute_units = it->second.compute_units;
    src.iface.input_bytes = sel.input_bytes;
    src.iface.output_bytes = sel.output_bytes;
    xos.push_back(hls_.compile(src));
  }
  return xos;
}

}  // namespace xartrek::compiler
