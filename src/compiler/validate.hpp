// IR validation pass.
//
// Runs before instrumentation: catches malformed applications (missing
// main, duplicate functions, calls to nowhere, degenerate op counts)
// with actionable messages instead of letting them surface as mysterious
// failures deeper in the pipeline.
#pragma once

#include <string>
#include <vector>

#include "compiler/app_ir.hpp"

namespace xartrek::compiler {

/// One validation finding.
struct ValidationIssue {
  enum class Severity { kError, kWarning };
  Severity severity = Severity::kError;
  std::string message;
};

/// Collect all findings for `ir`.  Unknown callees prefixed with
/// "__xar_" are runtime hooks and are exempt (they are linked in by the
/// instrumentation step).
[[nodiscard]] std::vector<ValidationIssue> validate_ir(const AppIr& ir);

/// Throw xartrek::Error listing every error-severity finding; warnings
/// are ignored.  No-op for a clean IR.
void validate_ir_or_throw(const AppIr& ir);

}  // namespace xartrek::compiler
