// Step B -- instrumentation.
//
// For each selected function the instrumentation pass (paper §3.1):
//   * inserts a scheduler-client registration call at the start of
//     `main` and a teardown/threshold-update call at its end;
//   * inserts, also at the start of `main`, a call that pre-configures
//     the FPGA with the XCLBIN holding the application's kernels --
//     eager configuration is what lets later kernel calls skip
//     initialization (and what beats the always-FPGA baseline in
//     Figure 6);
//   * replaces every call to a selected function with a call to a
//     three-way dispatch stub that routes to the x86, ARM, or FPGA
//     implementation according to the migration flag set by the
//     scheduler.
#pragma once

#include <string>
#include <vector>

#include "compiler/app_ir.hpp"
#include "compiler/profile_spec.hpp"

namespace xartrek::compiler {

/// A record of one code insertion/rewrite the pass performed.
struct Insertion {
  enum class Kind {
    kSchedulerClientInit,   ///< start of main
    kFpgaPreconfigure,      ///< start of main
    kSchedulerClientFini,   ///< end of main (threshold update hook)
    kDispatchRewrite,       ///< call site redirected to a dispatch stub
  };
  Kind kind;
  std::string in_function;  ///< where the insertion happened
  std::string detail;       ///< e.g. rewritten callee name
};

/// The pass result: the rewritten IR plus an audit trail.
struct InstrumentedApp {
  AppIr ir;
  std::vector<Insertion> insertions;

  /// Names of the dispatch stubs created (one per selected function).
  std::vector<std::string> dispatch_stubs;

  [[nodiscard]] std::size_t count(Insertion::Kind kind) const;
};

/// The instrumentation pass.
class Instrumenter {
 public:
  /// Instrument `ir` per `profile`.  Throws if the app has no `main`, if
  /// a selected function does not exist, or if a selected function is
  /// not self-contained (calls other functions -- the Vitis restriction
  /// from paper §3.1: only whole, self-contained functions synthesize).
  [[nodiscard]] InstrumentedApp instrument(
      const AppIr& ir, const ApplicationProfile& profile) const;

  /// Name of the dispatch stub generated for `function`.
  [[nodiscard]] static std::string dispatch_stub_name(
      const std::string& function) {
    return "__xar_dispatch_" + function;
  }
};

}  // namespace xartrek::compiler
