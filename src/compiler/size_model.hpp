// Binary-size accounting (paper §4.5, Figure 10).
//
// Three development processes produce different artifact sets per app:
//   * traditional FPGA flow:      x86 executable + XCLBIN
//   * Popcorn heterogeneous-ISA:  multi-ISA executable
//   * Xar-Trek:                   multi-ISA executable + XCLBIN
// The XCLBIN bytes charged to an application are the *marginal* kernel
// region bits for its own kernels (the platform shell is shared
// datacenter infrastructure, like the FPGA itself).
#pragma once

#include <cstdint>
#include <string>

#include "compiler/xar_compiler.hpp"
#include "hls/xclbin.hpp"

namespace xartrek::compiler {

/// Per-application size breakdown, in bytes.
struct BinarySizeReport {
  std::string app;
  std::uint64_t x86_executable = 0;
  std::uint64_t multi_isa_executable = 0;
  std::uint64_t migration_metadata = 0;
  std::uint64_t alignment_padding = 0;
  std::uint64_t xclbin_marginal = 0;

  /// Totals per development process.
  [[nodiscard]] std::uint64_t traditional_fpga_total() const {
    return x86_executable + xclbin_marginal;
  }
  [[nodiscard]] std::uint64_t popcorn_total() const {
    return multi_isa_executable;
  }
  [[nodiscard]] std::uint64_t xartrek_total() const {
    return multi_isa_executable + xclbin_marginal;
  }

  /// Percentage increase of Xar-Trek over a baseline total.
  [[nodiscard]] double increase_over(std::uint64_t baseline_total) const;
};

/// Compute the report for one compiled application.
[[nodiscard]] BinarySizeReport size_report(const CompiledApp& app,
                                           const hls::XclbinBuilder& builder);

}  // namespace xartrek::compiler
