// Deterministic random number generation.
//
// Every stochastic choice in the reproduction (random application sets,
// synthetic datasets, noise) flows through an explicitly-seeded Rng that
// is passed by reference to whoever needs it (I.2: no non-const globals;
// determinism makes every experiment re-runnable bit-for-bit).
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "common/assert.hpp"

namespace xartrek {

/// A seedable pseudo-random source with the handful of distributions the
/// library needs.  Concrete, regular, cheap to copy (C.10/C.11).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : seed_(seed), engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).  Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    XAR_EXPECTS(lo <= hi);
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [lo, hi).
  [[nodiscard]] double uniform_real(double lo, double hi) {
    XAR_EXPECTS(lo <= hi);
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// True with probability p.
  [[nodiscard]] bool bernoulli(double p) {
    XAR_EXPECTS(p >= 0.0 && p <= 1.0);
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Normal with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) {
    XAR_EXPECTS(stddev >= 0.0);
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Exponential with the given mean (> 0).
  [[nodiscard]] double exponential_mean(double mean) {
    XAR_EXPECTS(mean > 0.0);
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Uniformly pick an index in [0, n).  Requires n > 0.
  [[nodiscard]] std::size_t pick_index(std::size_t n) {
    XAR_EXPECTS(n > 0);
    return static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(n) - 1));
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[pick_index(i)]);
    }
  }

  /// Derive an independent child stream (for per-run seeding).
  [[nodiscard]] Rng fork() { return Rng(engine_()); }

  /// Derive an independent stream keyed on (construction seed, stream)
  /// WITHOUT advancing this Rng.  fork() consumes engine state, so
  /// interleaving a fork into an existing experiment perturbs every
  /// draw after it; split() is a pure function of the seed, which lets
  /// a fault schedule (or any side channel) get reproducible randomness
  /// while the workload's own draws stay bit-identical.
  [[nodiscard]] Rng split(std::uint64_t stream) const {
    // splitmix64 finalizer over the seed/stream pair: cheap, and
    // adjacent streams land in statistically unrelated states.
    std::uint64_t z = seed_ + 0x9E3779B97F4A7C15ull * (stream + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return Rng(z ^ (z >> 31));
  }

  /// The seed this Rng was constructed with (split() keys off it).
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Direct engine access for <random> interop.
  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::uint64_t seed_;
  std::mt19937_64 engine_;
};

}  // namespace xartrek
