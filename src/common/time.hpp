// Strongly-typed simulated time.
//
// All Xar-Trek experiments run inside a discrete-event simulator whose
// clock is a `TimePoint`; intervals are `Duration`.  Both wrap a double
// count of milliseconds (the unit of every table in the paper).  Strong
// types keep "a point in simulated time" and "an amount of simulated
// time" from being mixed up with each other or with plain doubles
// (Core Guidelines I.4).
#pragma once

#include <compare>
#include <cstdint>
#include <ostream>

namespace xartrek {

/// An amount of simulated time.  Value-semantic, totally ordered.
class Duration {
 public:
  constexpr Duration() = default;

  /// Named constructors; prefer these to a raw-double constructor so the
  /// unit is visible at every call site.
  [[nodiscard]] static constexpr Duration ms(double v) { return Duration{v}; }
  [[nodiscard]] static constexpr Duration seconds(double v) {
    return Duration{v * 1000.0};
  }
  [[nodiscard]] static constexpr Duration minutes(double v) {
    return Duration{v * 60'000.0};
  }
  [[nodiscard]] static constexpr Duration micros(double v) {
    return Duration{v / 1000.0};
  }
  [[nodiscard]] static constexpr Duration zero() { return Duration{0.0}; }

  [[nodiscard]] constexpr double to_ms() const { return ms_; }
  [[nodiscard]] constexpr double to_seconds() const { return ms_ / 1000.0; }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration operator+(Duration o) const { return Duration{ms_ + o.ms_}; }
  constexpr Duration operator-(Duration o) const { return Duration{ms_ - o.ms_}; }
  constexpr Duration operator*(double k) const { return Duration{ms_ * k}; }
  constexpr Duration operator/(double k) const { return Duration{ms_ / k}; }
  [[nodiscard]] constexpr double operator/(Duration o) const {
    return ms_ / o.ms_;
  }
  constexpr Duration& operator+=(Duration o) {
    ms_ += o.ms_;
    return *this;
  }
  constexpr Duration& operator-=(Duration o) {
    ms_ -= o.ms_;
    return *this;
  }

 private:
  explicit constexpr Duration(double ms) : ms_(ms) {}
  double ms_ = 0.0;
};

constexpr Duration operator*(double k, Duration d) { return d * k; }

/// A point on the simulation clock.  Points are compared and subtracted;
/// only a Duration can be added to one.
class TimePoint {
 public:
  constexpr TimePoint() = default;

  [[nodiscard]] static constexpr TimePoint at_ms(double v) {
    return TimePoint{v};
  }
  [[nodiscard]] static constexpr TimePoint origin() { return TimePoint{0.0}; }

  [[nodiscard]] constexpr double to_ms() const { return ms_; }

  constexpr auto operator<=>(const TimePoint&) const = default;

  constexpr TimePoint operator+(Duration d) const {
    return TimePoint{ms_ + d.to_ms()};
  }
  constexpr TimePoint operator-(Duration d) const {
    return TimePoint{ms_ - d.to_ms()};
  }
  [[nodiscard]] constexpr Duration operator-(TimePoint o) const {
    return Duration::ms(ms_ - o.ms_);
  }

 private:
  explicit constexpr TimePoint(double ms) : ms_(ms) {}
  double ms_ = 0.0;
};

inline std::ostream& operator<<(std::ostream& os, Duration d) {
  return os << d.to_ms() << "ms";
}
inline std::ostream& operator<<(std::ostream& os, TimePoint t) {
  return os << "t=" << t.to_ms() << "ms";
}

}  // namespace xartrek
