// Precondition / invariant checking for the Xar-Trek library.
//
// Following the Core Guidelines (I.5/I.6, E.25): preconditions are stated
// at the top of functions with XAR_EXPECTS, postconditions with
// XAR_ENSURES, and internal invariants with XAR_ASSERT.  All three throw
// xartrek::ContractViolation so that tests can observe failures without
// aborting the process; they are active in every build type because the
// library is a research artifact where silent state corruption is far
// more expensive than the check.
#pragma once

#include <stdexcept>
#include <string>

namespace xartrek {

/// Base class of every error thrown by the library (E.14: purpose-designed
/// exception types).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a stated precondition, postcondition or invariant is broken.
class ContractViolation : public Error {
 public:
  ContractViolation(const char* kind, const char* expr, const char* file,
                    int line)
      : Error(std::string(kind) + " violated: `" + expr + "` at " + file +
              ":" + std::to_string(line)) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  throw ContractViolation(kind, expr, file, line);
}
}  // namespace detail

}  // namespace xartrek

#define XAR_EXPECTS(cond)                                                \
  do {                                                                   \
    if (!(cond))                                                         \
      ::xartrek::detail::contract_fail("precondition", #cond, __FILE__,  \
                                       __LINE__);                        \
  } while (0)

#define XAR_ENSURES(cond)                                                \
  do {                                                                   \
    if (!(cond))                                                         \
      ::xartrek::detail::contract_fail("postcondition", #cond, __FILE__, \
                                       __LINE__);                        \
  } while (0)

#define XAR_ASSERT(cond)                                              \
  do {                                                                \
    if (!(cond))                                                      \
      ::xartrek::detail::contract_fail("invariant", #cond, __FILE__,  \
                                       __LINE__);                     \
  } while (0)
