// FNV-1a: the one hash used across the codebase for frame checksums
// and workload fingerprints.  Small, allocation-free, and exactly
// reproducible on every host -- which is what the deterministic
// simulator needs from a checksum (we model *detection*, not
// cryptographic strength).
#pragma once

#include <cstdint>

namespace xartrek {

inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// Fold one 64-bit word into an FNV-1a state.
[[nodiscard]] constexpr std::uint64_t fnv_mix(std::uint64_t h,
                                              std::uint64_t v) {
  return (h ^ v) * kFnvPrime;
}

/// Checksum a byte buffer (frame payloads).
[[nodiscard]] inline std::uint64_t fnv1a(const void* data,
                                         std::uint64_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = kFnvOffset;
  for (std::uint64_t i = 0; i < size; ++i) {
    h = (h ^ p[i]) * kFnvPrime;
  }
  return h;
}

/// Checksum a logical frame described only by metadata (the simulator
/// often models payloads as byte *counts*, not byte *contents*): mix
/// the size and a caller-chosen tag (sequence number, page id).  Two
/// frames agree iff their descriptions agree.
[[nodiscard]] constexpr std::uint64_t fnv1a_frame(std::uint64_t bytes,
                                                  std::uint64_t tag) {
  return fnv_mix(fnv_mix(kFnvOffset, bytes), tag);
}

}  // namespace xartrek
