// Plain-text table rendering for the benchmark harnesses.
//
// Every bench binary prints the same rows/series its paper table or
// figure reports; TextTable renders them with aligned columns so the
// output is diffable run-to-run.
#pragma once

#include <string>
#include <vector>

namespace xartrek {

/// A column-aligned text table with a title, a header row, and data rows.
class TextTable {
 public:
  explicit TextTable(std::string title) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);

  /// Convenience: format a double with fixed precision.
  [[nodiscard]] static std::string num(double v, int precision = 1);

  /// Render with box-drawing separators.
  [[nodiscard]] std::string render() const;

  /// Render as comma-separated values (header + rows, no title).
  [[nodiscard]] std::string render_csv() const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace xartrek
